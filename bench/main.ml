(* Benchmark harness.

   Part 1 regenerates every experiment table of DESIGN.md (the rows the
   paper reproduction reports) and prints them.

   Part 2 benchmarks the parallel trial engine: the full experiment
   suite sequentially vs. fanned out over a domain pool ([-j N]), checks
   the outputs are bit-identical, prints a pretty comparison and writes
   a machine-readable BENCH_parallel.json so the perf trajectory is
   trackable across PRs.

   Part 3 is a Bechamel suite: one [Test.make] per experiment table
   (measuring the cost of regenerating it with a reduced trial count)
   plus micro-benchmarks of the substrate primitives the simulator is
   built from.  Results are printed as OLS time-per-run estimates and
   folded into the JSON.

   Part 4 benchmarks the supervision layer: the same E-table sweep
   through [Experiments.run_supervised] vs. the raw [all_par] fan-out
   (the price of settling every task as a result), plus the retry path
   (a [Raise_once] fault on one table's task, so the cost of one
   recovery is measured directly).  Written to BENCH_supervisor.json;
   runs in [--smoke] too.

   Flags: [-j N] pool size, [--seeds 0,1,...] trial seeds,
   [--json PATH] output path, [--supervisor-json PATH] supervision
   bench output, [--smoke] reduced CI run (tables + bechamel skipped,
   seq-vs-par and supervision comparisons kept). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)

let jobs = ref (Tpro_engine.Pool.recommended ())
let seeds = ref [ 0; 1 ]
let json_path = ref "BENCH_parallel.json"
let sup_json_path = ref "BENCH_supervisor.json"
let smoke = ref false

let parse_seeds s =
  match List.map int_of_string (String.split_on_char ',' s) with
  | l -> seeds := l
  | exception _ ->
    raise (Arg.Bad (Printf.sprintf "--seeds: %S is not a comma-separated list of integers" s))

let () =
  Arg.parse
    [
      ("-j", Arg.Set_int jobs, "N  domains for the parallel engine");
      ("--seeds", Arg.String parse_seeds, "S  comma-separated trial seeds");
      ("--json", Arg.Set_string json_path, "PATH  where to write the JSON");
      ( "--supervisor-json",
        Arg.Set_string sup_json_path,
        "PATH  where to write the supervision-overhead JSON" );
      ("--smoke", Arg.Set smoke, "  reduced run for CI (skips part 1 and 3)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [-j N] [--seeds 0,1] [--json PATH] [--smoke]"

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the tables                                       *)

let regenerate_tables () =
  Format.printf "=== Experiment tables (paper reproduction) ===@.@.";
  List.iter
    (fun t -> Format.printf "%a@." Time_protection.Table.render t)
    (Time_protection.Experiments.all ())

(* ------------------------------------------------------------------ *)
(* Part 2: sequential vs. parallel engine                              *)

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type par_bench = {
  cores : int;
  domains : int;
  bench_seeds : int list;
  seq_seconds : float;
  par_seconds : float;
  speedup : float;
  identical : bool;
  per_table_seq : (string * float) list;
}

let bench_parallel () =
  let seeds = !seeds and domains = max 1 !jobs in
  let per_table_seq =
    List.filter_map
      (fun id ->
        match Time_protection.Experiments.by_id id with
        | None -> None
        | Some f ->
          let _, dt = time_wall (fun () -> f ~seeds ()) in
          Some (id, dt))
      Time_protection.Experiments.ids
  in
  let tables_seq, seq_seconds =
    time_wall (fun () -> Time_protection.Experiments.all ~seeds ())
  in
  let tables_par, par_seconds =
    time_wall (fun () ->
        Time_protection.Experiments.all_par ~seeds ~domains ())
  in
  ( {
      cores = Tpro_engine.Pool.recommended ();
      domains;
      bench_seeds = seeds;
      seq_seconds;
      par_seconds;
      speedup = seq_seconds /. par_seconds;
      identical = tables_seq = tables_par;
      per_table_seq;
    },
    tables_par )

let print_par_bench b =
  Format.printf
    "=== Parallel trial engine: full suite, seq vs. par ===@.@.";
  Format.printf "  recommended domains (cores): %d@." b.cores;
  Format.printf "  pool size (-j):              %d@." b.domains;
  Format.printf "  seeds:                       [%s]@."
    (String.concat "," (List.map string_of_int b.bench_seeds));
  Format.printf "  sequential:                  %.3f s@." b.seq_seconds;
  Format.printf "  parallel:                    %.3f s@." b.par_seconds;
  Format.printf "  speedup:                     %.2fx@." b.speedup;
  Format.printf "  outputs bit-identical:       %b@.@." b.identical

(* ------------------------------------------------------------------ *)
(* JSON emission (no external dependency)                              *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path b micro =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tpro-bench-parallel/1\",\n";
  p "  \"cores\": %d,\n" b.cores;
  p "  \"domains\": %d,\n" b.domains;
  p "  \"seeds\": [%s],\n"
    (String.concat ", " (List.map string_of_int b.bench_seeds));
  p "  \"sequential_seconds\": %.6f,\n" b.seq_seconds;
  p "  \"parallel_seconds\": %.6f,\n" b.par_seconds;
  p "  \"speedup\": %.4f,\n" b.speedup;
  p "  \"outputs_bit_identical\": %b,\n" b.identical;
  p "  \"per_table_sequential_seconds\": {\n";
  let n = List.length b.per_table_seq in
  List.iteri
    (fun i (id, dt) ->
      p "    \"%s\": %.6f%s\n" (json_escape id) dt
        (if i = n - 1 then "" else ","))
    b.per_table_seq;
  p "  },\n";
  p "  \"microbench_ns_per_run\": {\n";
  let n = List.length micro in
  List.iteri
    (fun i (name, ns) ->
      p "    \"%s\": %.2f%s\n" (json_escape name) ns
        (if i = n - 1 then "" else ","))
    micro;
  p "  }\n";
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Part 4: supervision overhead                                        *)

module Supervisor = Tpro_engine.Supervisor

type sup_bench = {
  sup_domains : int;
  raw_seconds : float;  (** all_par from part 2, same seeds *)
  supervised_seconds : float;  (** run_supervised, full sweep *)
  overhead_ratio : float;  (** supervised / raw *)
  sup_identical : bool;  (** supervised tables == raw tables *)
  clean_e2_seconds : float;
  retry_e2_seconds : float;  (** e2 with a Raise_once fault on its task *)
  retry_cost_seconds : float;
}

let bench_supervisor ~raw_seconds ~raw_tables =
  let seeds = !seeds and domains = max 1 !jobs in
  let supervised_run ?fault only =
    Supervisor.with_supervisor ~domains ?fault (fun sup ->
        Time_protection.Experiments.run_supervised ~seeds ~sup ?only ())
  in
  let sweep, supervised_seconds = time_wall (fun () -> supervised_run None) in
  let sup_tables =
    List.filter_map
      (fun (_, r) -> match r with Ok t -> Some t | Error _ -> None)
      sweep.Time_protection.Experiments.tables
  in
  let _, clean_e2_seconds =
    time_wall (fun () -> supervised_run (Some [ "e2" ]))
  in
  (* run_supervised keys tasks by position in the selected list, so the
     single e2 task has key 0: Raise_once hits it and forces exactly one
     retry — the measured delta is the price of one recovery. *)
  let retry_sweep, retry_e2_seconds =
    time_wall (fun () ->
        supervised_run ~fault:(Supervisor.Raise_once { key = 0 })
          (Some [ "e2" ]))
  in
  let retried =
    List.for_all
      (fun (_, r) -> Result.is_ok r)
      retry_sweep.Time_protection.Experiments.tables
  in
  {
    sup_domains = domains;
    raw_seconds;
    supervised_seconds;
    overhead_ratio = supervised_seconds /. raw_seconds;
    sup_identical = (sup_tables = raw_tables) && retried;
    clean_e2_seconds;
    retry_e2_seconds;
    retry_cost_seconds = retry_e2_seconds -. clean_e2_seconds;
  }

let print_sup_bench b =
  Format.printf "=== Supervision layer: settled results vs. raw fan-out ===@.@.";
  Format.printf "  pool size (-j):              %d@." b.sup_domains;
  Format.printf "  raw all_par:                 %.3f s@." b.raw_seconds;
  Format.printf "  supervised sweep:            %.3f s@." b.supervised_seconds;
  Format.printf "  overhead:                    %.2fx@." b.overhead_ratio;
  Format.printf "  e2 clean:                    %.3f s@." b.clean_e2_seconds;
  Format.printf "  e2 with one retry:           %.3f s@." b.retry_e2_seconds;
  Format.printf "  retry-path cost:             %.3f s@." b.retry_cost_seconds;
  Format.printf "  outputs bit-identical:       %b@.@." b.sup_identical

let write_sup_json path b =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tpro-bench-supervisor/1\",\n";
  p "  \"domains\": %d,\n" b.sup_domains;
  p "  \"raw_all_par_seconds\": %.6f,\n" b.raw_seconds;
  p "  \"supervised_sweep_seconds\": %.6f,\n" b.supervised_seconds;
  p "  \"overhead_ratio\": %.4f,\n" b.overhead_ratio;
  p "  \"e2_clean_seconds\": %.6f,\n" b.clean_e2_seconds;
  p "  \"e2_one_retry_seconds\": %.6f,\n" b.retry_e2_seconds;
  p "  \"retry_cost_seconds\": %.6f,\n" b.retry_cost_seconds;
  p "  \"outputs_bit_identical\": %b\n" b.sup_identical;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel suite                                              *)

let bench_seeds = [ 0; 1 ]

let experiment_tests =
  List.filter_map
    (fun id ->
      match Time_protection.Experiments.by_id id with
      | None -> None
      | Some f ->
        Some
          (Test.make ~name:("table:" ^ id)
             (Staged.stage (fun () -> ignore (f ~seeds:bench_seeds ())))))
    Time_protection.Experiments.ids

(* Substrate micro-benchmarks. *)

let cache_access_test =
  let open Tpro_hw in
  let c = Cache.create (Cache.geometry ~sets:1024 ~ways:8 ~line_bits:6 ()) in
  let i = ref 0 in
  Test.make ~name:"hw:cache-access"
    (Staged.stage (fun () ->
         incr i;
         ignore (Cache.access c ~owner:0 ~write:false (!i * 8191 land 0xFFFFF))))

let cache_digest_test =
  let open Tpro_hw in
  let c = Cache.create (Cache.geometry ~sets:64 ~ways:4 ~line_bits:6 ()) in
  for i = 0 to 255 do
    ignore (Cache.access c ~owner:0 ~write:(i land 1 = 0) (i * 64))
  done;
  Test.make ~name:"hw:cache-digest"
    (Staged.stage (fun () -> ignore (Cache.digest c)))

let machine_load_test =
  let open Tpro_hw in
  let m = Machine.create Machine.default_config in
  let i = ref 0 in
  Test.make ~name:"hw:machine-load"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Machine.load m ~core:0 ~asid:1 ~domain:0
              ~translate:(fun vpn -> Some (vpn land 0x3FF))
              ~pc:(!i * 4)
              (!i * 4099 land 0xFFFFF))))

let flush_test =
  let open Tpro_hw in
  let m = Machine.create Machine.default_config in
  Test.make ~name:"hw:flush-core-local"
    (Staged.stage (fun () ->
         ignore
           (Machine.store m ~core:0 ~asid:1 ~domain:0
              ~translate:(fun vpn -> Some (vpn land 0x3FF))
              ~pc:0 0x1000);
         ignore (Machine.flush_core_local m ~core:0)))

let kernel_step_test =
  let open Tpro_kernel in
  Test.make ~name:"kernel:boot+1000-steps"
    (Staged.stage (fun () ->
         let k = Kernel.create Kernel.config_full in
         let d0 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
         let d1 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
         Kernel.map_region k d0 ~vbase:0x20000000 ~pages:2;
         ignore
           (Kernel.spawn k d0
              (Array.append
                 (Array.init 400 (fun i ->
                      Program.Load (0x20000000 + (i * 64 mod 8192))))
                 [| Program.Halt |]));
         ignore (Kernel.spawn k d1 (Array.make 400 (Program.Compute 10)));
         Kernel.run ~max_steps:1_000 k))

let capacity_test =
  let samples =
    List.concat_map
      (fun s -> List.init 16 (fun i -> (s, (s * 3) + (i mod 4))))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Test.make ~name:"analysis:blahut-arimoto"
    (Staged.stage (fun () -> ignore (Tpro_channel.Capacity.of_samples samples)))

let two_run_test =
  Test.make ~name:"proofs:two-run-NI"
    (Staged.stage (fun () ->
         ignore
           (Tpro_secmodel.Nonint.two_run
              ~build:(fun ~secret ->
                Time_protection.Ni_scenario.build
                  ~cfg:Time_protection.Presets.full ~seed:0 ~secret)
              ~secret1:0 ~secret2:1 ())))

let micro_tests =
  [
    cache_access_test;
    cache_digest_test;
    machine_load_test;
    flush_test;
    kernel_step_test;
    capacity_test;
    two_run_test;
  ]

(* Runs the suite and returns (name, ns-per-run) rows for the JSON. *)
let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"tpro" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort compare rows in
  Format.printf "=== Bechamel micro/table benchmarks (time per run) ===@.@.";
  Format.printf "  %-32s %14s %8s@." "benchmark" "time/run" "r^2";
  List.filter_map
    (fun (name, o) ->
      let time_ns =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
      in
      let pretty =
        if time_ns >= 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
        else if time_ns >= 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
        else if time_ns >= 1e3 then Printf.sprintf "%.3f us" (time_ns /. 1e3)
        else Printf.sprintf "%.1f ns" time_ns
      in
      let r2 =
        match Analyze.OLS.r_square o with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Format.printf "  %-32s %14s %8s@." name pretty r2;
      if Float.is_nan time_ns then None else Some (name, time_ns))
    rows

let () =
  if not !smoke then regenerate_tables ();
  let par, raw_tables = bench_parallel () in
  print_par_bench par;
  let sup =
    bench_supervisor ~raw_seconds:par.par_seconds ~raw_tables
  in
  print_sup_bench sup;
  let micro =
    if !smoke then [] else run_bechamel (experiment_tests @ micro_tests)
  in
  write_json !json_path par micro;
  write_sup_json !sup_json_path sup;
  if not par.identical then begin
    Format.printf
      "ERROR: parallel suite diverged from sequential suite output@.";
    exit 1
  end;
  if not sup.sup_identical then begin
    Format.printf
      "ERROR: supervised sweep diverged from raw fan-out output@.";
    exit 1
  end
