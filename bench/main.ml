(* Benchmark harness.

   Part 1 regenerates every experiment table of DESIGN.md (the rows the
   paper reproduction reports) and prints them.

   Part 2 (with part 8 folded in) benchmarks the work-stealing trial
   engine: the full experiment suite sequentially vs. fanned out over
   the *calibrated* pool (the configuration a flagless user gets — 1
   domain on a 1-core container, so the headline speedup must sit at
   ~1.0 there), per-table sequential and parallel times, a forced
   -j 1/2/4 scaling curve with steal counts, and the calibration
   decision itself (cores detected, domains chosen, minor-heap
   sizing).  Every run is checked bit-identical to sequential and the
   whole thing is written as BENCH_parallel.json schema v2 so perf
   regressions are attributable across PRs.
   [--require-speedup-1core T] makes the run fail when calibration
   reports 1 core and the calibrated speedup falls below T (the CI
   oversubscription guard).

   Part 3 is a Bechamel suite: one [Test.make] per experiment table
   (measuring the cost of regenerating it with a reduced trial count)
   plus micro-benchmarks of the substrate primitives the simulator is
   built from.  Results are printed as OLS time-per-run estimates and
   folded into the JSON.

   Part 4 benchmarks the supervision layer: the same E-table sweep
   through [Experiments.run_supervised] vs. the raw [all_par] fan-out
   (the price of settling every task as a result), plus the retry path
   (a [Raise_once] fault on one table's task, so the cost of one
   recovery is measured directly).  Written to BENCH_supervisor.json;
   runs in [--smoke] too.

   Part 5 benchmarks the flat-state digest layer: for every resource
   kind an incremental-vs-fold Bechamel pair (the memoised digest the
   hot path now reads vs. the historical from-scratch fold), plus the
   O(1) clean-flush path and the dirty store+flush pair, written to
   BENCH_flatstate.json together with the E-table seconds and the
   committed pre-flat-state baselines.  This part runs in [--smoke] too:
   it is the CI perf-regression guard's input, and
   [--budget-cache-digest-ns N] makes the run itself fail when the
   incremental cache digest exceeds the budget (0 disables).

   Part 6 benchmarks the composed-theorem prover: the per-kind
   exhaustive lemma checks and one seed's evidence collection
   individually, and the full [Prove.run] derivation sequentially vs.
   fanned over the supervisor ([-j N]), asserting the rendered theorems
   are bit-identical.  Written to BENCH_prove.json; runs in [--smoke]
   too.

   Part 7 benchmarks the topology campaigns: generated N-domain/M-core
   systems at three (max-domains, max-cores) bounds, timing the full
   pairwise-oracle check per topology — topologies/sec and the cost per
   ordered domain pair, written to BENCH_topology.json.  Runs in
   [--smoke] too, and fails the run if a clean campaign reports any
   pairwise violation.

   Flags: [-j N] pool size, [--seeds 0,1,...] trial seeds,
   [--json PATH] output path, [--supervisor-json PATH] supervision
   bench output, [--flatstate-json PATH] flat-state bench output,
   [--prove-json PATH] theorem-prover bench output,
   [--budget-cache-digest-ns N] perf budget, [--smoke] reduced CI run
   (tables + full bechamel skipped; seq-vs-par, supervision,
   flat-state and prover parts kept). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)

let jobs = ref (Tpro_engine.Pool.recommended ())
let seeds = ref [ 0; 1 ]
let json_path = ref "BENCH_parallel.json"
let sup_json_path = ref "BENCH_supervisor.json"
let flat_json_path = ref "BENCH_flatstate.json"
let prove_json_path = ref "BENCH_prove.json"
let topo_json_path = ref "BENCH_topology.json"
let budget_cache_digest_ns = ref 0.0
let require_speedup_1core = ref 0.0
let smoke = ref false

let parse_seeds s =
  match List.map int_of_string (String.split_on_char ',' s) with
  | l -> seeds := l
  | exception _ ->
    raise (Arg.Bad (Printf.sprintf "--seeds: %S is not a comma-separated list of integers" s))

let () =
  Arg.parse
    [
      ("-j", Arg.Set_int jobs, "N  domains for the parallel engine");
      ("--seeds", Arg.String parse_seeds, "S  comma-separated trial seeds");
      ("--json", Arg.Set_string json_path, "PATH  where to write the JSON");
      ( "--supervisor-json",
        Arg.Set_string sup_json_path,
        "PATH  where to write the supervision-overhead JSON" );
      ( "--flatstate-json",
        Arg.Set_string flat_json_path,
        "PATH  where to write the flat-state digest bench JSON" );
      ( "--prove-json",
        Arg.Set_string prove_json_path,
        "PATH  where to write the theorem-prover bench JSON" );
      ( "--topology-json",
        Arg.Set_string topo_json_path,
        "PATH  where to write the topology-campaign bench JSON" );
      ( "--budget-cache-digest-ns",
        Arg.Set_float budget_cache_digest_ns,
        "N  fail the run if the incremental cache digest exceeds N ns/run \
         (0 disables; the CI perf-regression guard)" );
      ( "--require-speedup-1core",
        Arg.Set_float require_speedup_1core,
        "T  fail the run if calibration reports 1 core and the calibrated \
         speedup falls below T (0 disables; the CI oversubscription guard)" );
      ("--smoke", Arg.Set smoke, "  reduced run for CI (skips part 1 and 3)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [-j N] [--seeds 0,1] [--json PATH] [--smoke]"

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the tables                                       *)

let regenerate_tables () =
  Format.printf "=== Experiment tables (paper reproduction) ===@.@.";
  List.iter
    (fun t -> Format.printf "%a@." Time_protection.Table.render t)
    (Time_protection.Experiments.all ())

(* ------------------------------------------------------------------ *)
(* Part 2: sequential vs. parallel engine                              *)

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* One forced pool size on the scaling curve (part 8). *)
type curve_point = {
  cp_j : int;
  cp_seconds : float;
  cp_speedup : float;
  cp_steals : int;
  cp_executed : int;
  cp_identical : bool;
}

type par_bench = {
  cores : int;  (** cores the calibration probe detected *)
  domains : int;  (** calibrated domain count, used for the headline run *)
  minor_heap_words : int;
  probe_note : string;
  bench_seeds : int list;
  seq_seconds : float;
  par_seconds : float;  (** full suite over the calibrated pool *)
  speedup : float;
  identical : bool;  (** headline run and every curve point vs sequential *)
  per_table_seq : (string * float) list;
  per_table_par : (string * float) list;
  curve : curve_point list;
  steals : int;
  executed : int;
  injected : int;
  chunk_estimates : (string * float * int) list;
}

(* The headline numbers use the *calibrated* pool — the configuration a
   user gets without flags.  On a 1-core container calibration picks 1
   domain, the pool runs sequentially, and the speedup must sit at
   ~1.0 (PR 1's committed 0.17 was a 4-domain pool fighting one core).
   The forced -j 1/2/4 curve shows what oversubscription costs and
   what real cores buy, with steal counts for attribution. *)
let bench_parallel () =
  let seeds = !seeds in
  let host = Tpro_engine.Calibrate.host () in
  let tables_seq, seq_seconds =
    time_wall (fun () -> Time_protection.Experiments.all ~seeds ())
  in
  let pool = Tpro_engine.Pool.create () in
  let tables_par, par_seconds =
    time_wall (fun () -> Time_protection.Experiments.all_par ~seeds ~pool ())
  in
  let per_table =
    List.filter_map
      (fun id ->
        match Time_protection.Experiments.by_id id with
        | None -> None
        | Some f ->
          let _, dseq = time_wall (fun () -> f ~seeds ()) in
          let _, dpar = time_wall (fun () -> f ~seeds ~pool ()) in
          Some (id, dseq, dpar))
      Time_protection.Experiments.ids
  in
  let stats = Tpro_engine.Pool.stats pool in
  let chunk_estimates =
    Tpro_engine.Cost_model.snapshot (Tpro_engine.Pool.cost_model pool)
  in
  Tpro_engine.Pool.shutdown pool;
  let curve =
    List.map
      (fun j ->
        let p = Tpro_engine.Pool.create ~domains:j () in
        let tabs, dt =
          time_wall (fun () ->
              Time_protection.Experiments.all_par ~seeds ~pool:p ())
        in
        let st = Tpro_engine.Pool.stats p in
        Tpro_engine.Pool.shutdown p;
        {
          cp_j = j;
          cp_seconds = dt;
          cp_speedup = seq_seconds /. dt;
          cp_steals = st.Tpro_engine.Pool.steals;
          cp_executed = st.Tpro_engine.Pool.tasks_executed;
          cp_identical = tabs = tables_seq;
        })
      [ 1; 2; 4 ]
  in
  ( {
      cores = host.Tpro_engine.Calibrate.cores_detected;
      domains = host.Tpro_engine.Calibrate.recommended;
      minor_heap_words = host.Tpro_engine.Calibrate.minor_heap_words;
      probe_note = host.Tpro_engine.Calibrate.probe_note;
      bench_seeds = seeds;
      seq_seconds;
      par_seconds;
      speedup = seq_seconds /. par_seconds;
      identical =
        tables_seq = tables_par
        && List.for_all (fun c -> c.cp_identical) curve;
      per_table_seq = List.map (fun (id, s, _) -> (id, s)) per_table;
      per_table_par = List.map (fun (id, _, p) -> (id, p)) per_table;
      curve;
      steals = stats.Tpro_engine.Pool.steals;
      executed = stats.Tpro_engine.Pool.tasks_executed;
      injected = stats.Tpro_engine.Pool.tasks_injected;
      chunk_estimates;
    },
    tables_par )

let print_par_bench b =
  Format.printf
    "=== Parallel trial engine: full suite, seq vs. par ===@.@.";
  Format.printf "  cores detected:              %d@." b.cores;
  Format.printf "  calibrated domains:          %d  (%s)@." b.domains
    b.probe_note;
  Format.printf "  minor heap (words):          %d@." b.minor_heap_words;
  Format.printf "  seeds:                       [%s]@."
    (String.concat "," (List.map string_of_int b.bench_seeds));
  Format.printf "  sequential:                  %.3f s@." b.seq_seconds;
  Format.printf "  parallel (calibrated):       %.3f s@." b.par_seconds;
  Format.printf "  speedup:                     %.2fx@." b.speedup;
  Format.printf "  steals/executed/injected:    %d/%d/%d@." b.steals
    b.executed b.injected;
  List.iter
    (fun c ->
      Format.printf
        "  forced -j %d:                 %.3f s (%.2fx, %d steals)@." c.cp_j
        c.cp_seconds c.cp_speedup c.cp_steals)
    b.curve;
  Format.printf "  outputs bit-identical:       %b@.@." b.identical

(* ------------------------------------------------------------------ *)
(* JSON emission (no external dependency)                              *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path b micro =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tpro-bench-parallel/2\",\n";
  p "  \"calibration\": {\n";
  p "    \"cores_detected\": %d,\n" b.cores;
  p "    \"domains_chosen\": %d,\n" b.domains;
  p "    \"minor_heap_words\": %d,\n" b.minor_heap_words;
  p "    \"probe_note\": \"%s\"\n" (json_escape b.probe_note);
  p "  },\n";
  p "  \"seeds\": [%s],\n"
    (String.concat ", " (List.map string_of_int b.bench_seeds));
  p "  \"sequential_seconds\": %.6f,\n" b.seq_seconds;
  p "  \"parallel_seconds\": %.6f,\n" b.par_seconds;
  p "  \"speedup\": %.4f,\n" b.speedup;
  p "  \"outputs_bit_identical\": %b,\n" b.identical;
  p "  \"scheduler\": {\n";
  p "    \"steals\": %d,\n" b.steals;
  p "    \"tasks_executed\": %d,\n" b.executed;
  p "    \"tasks_injected\": %d,\n" b.injected;
  p "    \"chunk_estimates_ns_per_item\": {\n";
  let n = List.length b.chunk_estimates in
  List.iteri
    (fun i (label, ns, samples) ->
      p "      \"%s\": { \"ns\": %.2f, \"samples\": %d }%s\n"
        (json_escape label) ns samples
        (if i = n - 1 then "" else ","))
    b.chunk_estimates;
  p "    }\n";
  p "  },\n";
  p "  \"scaling_curve\": {\n";
  let n = List.length b.curve in
  List.iteri
    (fun i c ->
      p
        "    \"j%d\": { \"seconds\": %.6f, \"speedup\": %.4f, \"steals\": \
         %d, \"tasks_executed\": %d, \"identical\": %b }%s\n"
        c.cp_j c.cp_seconds c.cp_speedup c.cp_steals c.cp_executed
        c.cp_identical
        (if i = n - 1 then "" else ","))
    b.curve;
  p "  },\n";
  p "  \"per_table_seconds\": {\n";
  let n = List.length b.per_table_seq in
  List.iteri
    (fun i (id, dseq) ->
      let dpar =
        Option.value (List.assoc_opt id b.per_table_par) ~default:nan
      in
      p
        "    \"%s\": { \"sequential\": %.6f, \"parallel\": %.6f, \
         \"speedup\": %.4f }%s\n"
        (json_escape id) dseq dpar (dseq /. dpar)
        (if i = n - 1 then "" else ","))
    b.per_table_seq;
  p "  },\n";
  p "  \"microbench_ns_per_run\": {\n";
  let n = List.length micro in
  List.iteri
    (fun i (name, ns) ->
      p "    \"%s\": %.2f%s\n" (json_escape name) ns
        (if i = n - 1 then "" else ","))
    micro;
  p "  }\n";
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Part 4: supervision overhead                                        *)

module Supervisor = Tpro_engine.Supervisor

type sup_bench = {
  sup_domains : int;
  raw_seconds : float;  (** all_par from part 2, same seeds *)
  supervised_seconds : float;  (** run_supervised, full sweep *)
  overhead_ratio : float;  (** supervised / raw *)
  sup_identical : bool;  (** supervised tables == raw tables *)
  clean_e2_seconds : float;
  retry_e2_seconds : float;  (** e2 with a Raise_once fault on its task *)
  retry_cost_seconds : float;
}

let bench_supervisor ~raw_seconds ~raw_tables =
  let seeds = !seeds and domains = max 1 !jobs in
  let supervised_run ?fault only =
    Supervisor.with_supervisor ~domains ?fault (fun sup ->
        Time_protection.Experiments.run_supervised ~seeds ~sup ?only ())
  in
  let sweep, supervised_seconds = time_wall (fun () -> supervised_run None) in
  let sup_tables =
    List.filter_map
      (fun (_, r) -> match r with Ok t -> Some t | Error _ -> None)
      sweep.Time_protection.Experiments.tables
  in
  let _, clean_e2_seconds =
    time_wall (fun () -> supervised_run (Some [ "e2" ]))
  in
  (* run_supervised keys tasks by position in the selected list, so the
     single e2 task has key 0: Raise_once hits it and forces exactly one
     retry — the measured delta is the price of one recovery. *)
  let retry_sweep, retry_e2_seconds =
    time_wall (fun () ->
        supervised_run ~fault:(Supervisor.Raise_once { key = 0 })
          (Some [ "e2" ]))
  in
  let retried =
    List.for_all
      (fun (_, r) -> Result.is_ok r)
      retry_sweep.Time_protection.Experiments.tables
  in
  {
    sup_domains = domains;
    raw_seconds;
    supervised_seconds;
    overhead_ratio = supervised_seconds /. raw_seconds;
    sup_identical = (sup_tables = raw_tables) && retried;
    clean_e2_seconds;
    retry_e2_seconds;
    retry_cost_seconds = retry_e2_seconds -. clean_e2_seconds;
  }

let print_sup_bench b =
  Format.printf "=== Supervision layer: settled results vs. raw fan-out ===@.@.";
  Format.printf "  pool size (-j):              %d@." b.sup_domains;
  Format.printf "  raw all_par:                 %.3f s@." b.raw_seconds;
  Format.printf "  supervised sweep:            %.3f s@." b.supervised_seconds;
  Format.printf "  overhead:                    %.2fx@." b.overhead_ratio;
  Format.printf "  e2 clean:                    %.3f s@." b.clean_e2_seconds;
  Format.printf "  e2 with one retry:           %.3f s@." b.retry_e2_seconds;
  Format.printf "  retry-path cost:             %.3f s@." b.retry_cost_seconds;
  Format.printf "  outputs bit-identical:       %b@.@." b.sup_identical

let write_sup_json path b =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tpro-bench-supervisor/1\",\n";
  p "  \"domains\": %d,\n" b.sup_domains;
  p "  \"raw_all_par_seconds\": %.6f,\n" b.raw_seconds;
  p "  \"supervised_sweep_seconds\": %.6f,\n" b.supervised_seconds;
  p "  \"overhead_ratio\": %.4f,\n" b.overhead_ratio;
  p "  \"e2_clean_seconds\": %.6f,\n" b.clean_e2_seconds;
  p "  \"e2_one_retry_seconds\": %.6f,\n" b.retry_e2_seconds;
  p "  \"retry_cost_seconds\": %.6f,\n" b.retry_cost_seconds;
  p "  \"outputs_bit_identical\": %b\n" b.sup_identical;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel suite                                              *)

let bench_seeds = [ 0; 1 ]

let experiment_tests =
  List.filter_map
    (fun id ->
      match Time_protection.Experiments.by_id id with
      | None -> None
      | Some f ->
        Some
          (Test.make ~name:("table:" ^ id)
             (Staged.stage (fun () -> ignore (f ~seeds:bench_seeds ())))))
    Time_protection.Experiments.ids

(* Substrate micro-benchmarks. *)

let cache_access_test =
  let open Tpro_hw in
  let c = Cache.create (Cache.geometry ~sets:1024 ~ways:8 ~line_bits:6 ()) in
  let i = ref 0 in
  Test.make ~name:"hw:cache-access"
    (Staged.stage (fun () ->
         incr i;
         ignore (Cache.access c ~owner:0 ~write:false (!i * 8191 land 0xFFFFF))))

let cache_digest_test =
  let open Tpro_hw in
  let c = Cache.create (Cache.geometry ~sets:64 ~ways:4 ~line_bits:6 ()) in
  for i = 0 to 255 do
    ignore (Cache.access c ~owner:0 ~write:(i land 1 = 0) (i * 64))
  done;
  Test.make ~name:"hw:cache-digest"
    (Staged.stage (fun () -> ignore (Cache.digest c)))

let machine_load_test =
  let open Tpro_hw in
  let m = Machine.create Machine.default_config in
  let i = ref 0 in
  Test.make ~name:"hw:machine-load"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Machine.load m ~core:0 ~asid:1 ~domain:0
              ~translate:(fun vpn -> Some (vpn land 0x3FF))
              ~pc:(!i * 4)
              (!i * 4099 land 0xFFFFF))))

let flush_test =
  let open Tpro_hw in
  let m = Machine.create Machine.default_config in
  Test.make ~name:"hw:flush-core-local"
    (Staged.stage (fun () ->
         ignore
           (Machine.store m ~core:0 ~asid:1 ~domain:0
              ~translate:(fun vpn -> Some (vpn land 0x3FF))
              ~pc:0 0x1000);
         ignore (Machine.flush_core_local m ~core:0)))

let kernel_step_test =
  let open Tpro_kernel in
  Test.make ~name:"kernel:boot+1000-steps"
    (Staged.stage (fun () ->
         let k = Kernel.create Kernel.config_full in
         let d0 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
         let d1 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
         Kernel.map_region k d0 ~vbase:0x20000000 ~pages:2;
         ignore
           (Kernel.spawn k d0
              (Array.append
                 (Array.init 400 (fun i ->
                      Program.Load (0x20000000 + (i * 64 mod 8192))))
                 [| Program.Halt |]));
         ignore (Kernel.spawn k d1 (Array.make 400 (Program.Compute 10)));
         Kernel.run ~max_steps:1_000 k))

let capacity_test =
  let samples =
    List.concat_map
      (fun s -> List.init 16 (fun i -> (s, (s * 3) + (i mod 4))))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Test.make ~name:"analysis:blahut-arimoto"
    (Staged.stage (fun () -> ignore (Tpro_channel.Capacity.of_samples samples)))

let two_run_test =
  Test.make ~name:"proofs:two-run-NI"
    (Staged.stage (fun () ->
         ignore
           (Tpro_secmodel.Nonint.two_run
              ~build:(fun ~secret ->
                Time_protection.Ni_scenario.build
                  ~cfg:Time_protection.Presets.full ~seed:0 ~secret)
              ~secret1:0 ~secret2:1 ())))

let micro_tests =
  [
    cache_access_test;
    cache_digest_test;
    machine_load_test;
    flush_test;
    kernel_step_test;
    capacity_test;
    two_run_test;
  ]

(* Runs the suite and returns (name, ns-per-run) rows for the JSON. *)
let run_bechamel ?(header = "Bechamel micro/table benchmarks") tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"tpro" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort compare rows in
  Format.printf "=== %s (time per run) ===@.@." header;
  Format.printf "  %-32s %14s %8s@." "benchmark" "time/run" "r^2";
  List.filter_map
    (fun (name, o) ->
      let time_ns =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
      in
      let pretty =
        if time_ns >= 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
        else if time_ns >= 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
        else if time_ns >= 1e3 then Printf.sprintf "%.3f us" (time_ns /. 1e3)
        else Printf.sprintf "%.1f ns" time_ns
      in
      let r2 =
        match Analyze.OLS.r_square o with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Format.printf "  %-32s %14s %8s@." name pretty r2;
      if Float.is_nan time_ns then None else Some (name, time_ns))
    rows

(* ------------------------------------------------------------------ *)
(* Part 5: flat-state digest layer (incremental vs. from-scratch fold) *)

(* Committed pre-flat-state numbers (BENCH_parallel.json at the parent
   commit, same container class): the "before" this PR is measured
   against. *)
let baseline_cache_digest_ns = 11393.63
let baseline_flush_dirty_ns = 55977.07
let baseline_e7_seconds = 5.896419

(* One warmed structure per resource kind, each benched twice: the
   memoised [digest] the hot path now reads, and the historical
   from-scratch [digest_fold].  Shapes match the part-3 baselines where
   one exists (the 64x4 warmed cache is exactly the old hw:cache-digest
   subject; the dirty store+flush pair is the old hw:flush-core-local). *)
let flatstate_tests () =
  let open Tpro_hw in
  let pair name incr fold =
    [
      Test.make ~name:("hw:digest-incremental:" ^ name) (Staged.stage incr);
      Test.make ~name:("hw:digest-fold:" ^ name) (Staged.stage fold);
    ]
  in
  let l1 = Cache.create (Cache.geometry ~sets:64 ~ways:4 ~line_bits:6 ()) in
  for i = 0 to 255 do
    ignore (Cache.access l1 ~owner:0 ~write:(i land 1 = 0) (i * 64))
  done;
  let llc = Cache.create (Cache.geometry ~sets:1024 ~ways:8 ~line_bits:6 ()) in
  for i = 0 to 8191 do
    ignore (Cache.access llc ~owner:0 ~write:(i land 3 = 0) (i * 64))
  done;
  let tlb = Tlb.create ~capacity:32 in
  for i = 0 to 63 do
    Tlb.insert tlb ~asid:(i land 3) ~vpn:i ~pfn:(i * 7 land 0xFF)
  done;
  let bp = Bpred.create () in
  for i = 0 to 4095 do
    ignore (Bpred.update bp ~pc:(i * 4) ~taken:(i land 3 <> 0))
  done;
  let btb = Btb.create ~entries:64 () in
  for i = 0 to 255 do
    Btb.update btb ~pc:(i * 4) ~target:(i * 16)
  done;
  let pf = Prefetch.create () in
  for i = 0 to 255 do
    ignore (Prefetch.observe pf ~pc:(i land 7 * 4) ~addr:(i * 64))
  done;
  let m = Machine.create Machine.default_config in
  for i = 0 to 1023 do
    ignore
      (Machine.touch_paddr m ~core:0 ~owner:0 ~write:(i land 3 = 0)
         (i * 4099 land 0xFFFFF));
    ignore (Machine.branch m ~core:0 ~pc:(i land 63 * 4) ~taken:(i land 1 = 0))
  done;
  let clean = Machine.create Machine.default_config in
  ignore (Machine.flush_core_local clean ~core:0);
  let dirty = Machine.create Machine.default_config in
  pair "cache" (fun () -> ignore (Cache.digest l1)) (fun () -> ignore (Cache.digest_fold l1))
  @ pair "llc" (fun () -> ignore (Cache.digest llc)) (fun () -> ignore (Cache.digest_fold llc))
  @ pair "tlb" (fun () -> ignore (Tlb.digest tlb)) (fun () -> ignore (Tlb.digest_fold tlb))
  @ pair "bpred" (fun () -> ignore (Bpred.digest bp)) (fun () -> ignore (Bpred.digest_fold bp))
  @ pair "btb" (fun () -> ignore (Btb.digest btb)) (fun () -> ignore (Btb.digest_fold btb))
  @ pair "prefetch" (fun () -> ignore (Prefetch.digest pf)) (fun () -> ignore (Prefetch.digest_fold pf))
  @ pair "machine-core"
      (fun () -> ignore (Machine.digest_core m ~core:0))
      (fun () -> ignore (Machine.digest_core_fold m ~core:0))
  @ [
      Test.make ~name:"hw:flush-clean"
        (Staged.stage (fun () ->
             ignore (Machine.flush_core_local clean ~core:0)));
      Test.make ~name:"hw:flush-dirty"
        (Staged.stage (fun () ->
             ignore
               (Machine.store dirty ~core:0 ~asid:1 ~domain:0
                  ~translate:(fun vpn -> Some (vpn land 0x3FF))
                  ~pc:0 0x1000);
             ignore (Machine.flush_core_local dirty ~core:0)));
    ]

type flat_bench = {
  kinds : (string * float * float) list;  (** kind, fold ns, incremental ns *)
  flush_clean_ns : float;
  flush_dirty_ns : float;
  flat_e7_seconds : float;
  flat_e_table : (string * float) list;
  flat_identical : bool;
}

let bench_flatstate (par : par_bench) =
  let rows = run_bechamel ~header:"Flat-state digests: incremental vs. fold" (flatstate_tests ()) in
  let ns name = match List.assoc_opt ("tpro/hw:" ^ name) rows with
    | Some v -> v
    | None -> nan
  in
  let kinds =
    List.map
      (fun k -> (k, ns ("digest-fold:" ^ k), ns ("digest-incremental:" ^ k)))
      [ "cache"; "llc"; "tlb"; "bpred"; "btb"; "prefetch"; "machine-core" ]
  in
  {
    kinds;
    flush_clean_ns = ns "flush-clean";
    flush_dirty_ns = ns "flush-dirty";
    flat_e7_seconds =
      Option.value (List.assoc_opt "e7" par.per_table_seq) ~default:nan;
    flat_e_table = par.per_table_seq;
    flat_identical = par.identical;
  }

let incr_cache_digest_ns b =
  match List.find_opt (fun (k, _, _) -> k = "cache") b.kinds with
  | Some (_, _, incr) -> incr
  | None -> nan

let print_flat_bench b =
  Format.printf "=== Flat-state digest layer vs. committed baselines ===@.@.";
  Format.printf "  %-14s %12s %12s %9s@." "resource" "fold ns" "incr ns"
    "speedup";
  List.iter
    (fun (k, fold, incr) ->
      Format.printf "  %-14s %12.1f %12.1f %8.1fx@." k fold incr (fold /. incr))
    b.kinds;
  Format.printf "  clean flush:                 %.1f ns@." b.flush_clean_ns;
  Format.printf "  dirty store+flush:           %.1f ns (baseline %.1f)@."
    b.flush_dirty_ns baseline_flush_dirty_ns;
  Format.printf "  cache digest vs baseline:    %.1fx (%.1f -> %.1f ns)@."
    (baseline_cache_digest_ns /. incr_cache_digest_ns b)
    baseline_cache_digest_ns (incr_cache_digest_ns b);
  Format.printf "  e7 sequential:               %.3f s (baseline %.3f, %.1fx)@."
    b.flat_e7_seconds baseline_e7_seconds
    (baseline_e7_seconds /. b.flat_e7_seconds);
  Format.printf "  outputs bit-identical:       %b@.@." b.flat_identical

let write_flat_json path b =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tpro-bench-flatstate/1\",\n";
  p "  \"baseline\": {\n";
  p "    \"cache_digest_ns\": %.2f,\n" baseline_cache_digest_ns;
  p "    \"flush_core_local_ns\": %.2f,\n" baseline_flush_dirty_ns;
  p "    \"e7_sequential_seconds\": %.6f\n" baseline_e7_seconds;
  p "  },\n";
  p "  \"digest_ns_per_run\": {\n";
  let n = List.length b.kinds in
  List.iteri
    (fun i (k, fold, incr) ->
      p
        "    \"%s\": { \"fold\": %.2f, \"incremental\": %.2f, \"speedup\": \
         %.2f }%s\n"
        (json_escape k) fold incr (fold /. incr)
        (if i = n - 1 then "" else ","))
    b.kinds;
  p "  },\n";
  p "  \"flush_clean_ns\": %.2f,\n" b.flush_clean_ns;
  p "  \"flush_dirty_ns\": %.2f,\n" b.flush_dirty_ns;
  p "  \"e7_sequential_seconds\": %.6f,\n" b.flat_e7_seconds;
  p "  \"e_table_seconds\": {\n";
  let n = List.length b.flat_e_table in
  List.iteri
    (fun i (id, dt) ->
      p "    \"%s\": %.6f%s\n" (json_escape id) dt
        (if i = n - 1 then "" else ","))
    b.flat_e_table;
  p "  },\n";
  p "  \"headline\": {\n";
  p "    \"cache_digest_speedup_vs_baseline\": %.2f,\n"
    (baseline_cache_digest_ns /. incr_cache_digest_ns b);
  p "    \"flush_speedup_vs_baseline\": %.2f,\n"
    (baseline_flush_dirty_ns /. b.flush_dirty_ns);
  p "    \"e7_speedup_vs_baseline\": %.2f\n"
    (baseline_e7_seconds /. b.flat_e7_seconds);
  p "  },\n";
  p "  \"outputs_bit_identical\": %b\n" b.flat_identical;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Part 6: composed-theorem prover                                      *)

type prove_bench = {
  prove_domains : int;
  lemma_kind_seconds : (string * float) list;
      (** per-kind exhaustive small-model lemma cost *)
  collect_seconds : float;  (** one seed's full evidence collection *)
  prove_seq_seconds : float;  (** Prove.run on 1 domain *)
  prove_par_seconds : float;  (** Prove.run on -j domains *)
  prove_speedup : float;
  prove_identical : bool;  (** rendered theorems bit-identical *)
  prove_holds : bool;  (** the full preset's theorem holds *)
}

let bench_prove () =
  let domains = max 1 !jobs in
  let seeds = [ 0; 1 ] and secrets = [ 0; 1 ] in
  let cfg = Time_protection.Presets.full in
  let presets = [ ("full", cfg) ] in
  let acknowledge = [ "memory interconnect" ] in
  let run_with n =
    Supervisor.with_supervisor ~domains:n (fun sup ->
        Time_protection.Prove.run ~sup ~acknowledge ~seeds ~secrets ~presets ())
  in
  let o_seq, prove_seq_seconds = time_wall (fun () -> run_with 1) in
  let o_par, prove_par_seconds = time_wall (fun () -> run_with domains) in
  let render o =
    String.concat "\n"
      (List.map
         (fun r -> Format.asprintf "%a" Time_protection.Prove.pp_report r)
         o.Time_protection.Prove.reports)
  in
  let _, collect_seconds =
    time_wall (fun () ->
        ignore
          (Tpro_secmodel.Theorem.collect ~seed:0
             ~build:(fun ~secret ->
               Time_protection.Ni_scenario.build_with ~with_btb:true ~cfg
                 ~seed:0 ~secret)
             ~secrets ()))
  in
  let machine =
    Tpro_hw.Machine.create
      (Time_protection.Ni_scenario.machine_config_with ~with_btb:true ~seed:0)
  in
  let lemma_kind_seconds =
    List.map
      (fun ku ->
        let _, dt =
          time_wall (fun () ->
              ignore
                (Tpro_secmodel.Exhaustive.check
                   ~build:(fun ~hi_prog ~seed ->
                     Time_protection.Ni_scenario.build_with_program_on
                       ~with_btb:true ~cfg ~seed ~hi_prog)
                   ku.Tpro_secmodel.Exhaustive.ku_universe))
        in
        (ku.Tpro_secmodel.Exhaustive.ku_label, dt))
      (Tpro_secmodel.Exhaustive.kind_universes ~machine ())
  in
  {
    prove_domains = domains;
    lemma_kind_seconds;
    collect_seconds;
    prove_seq_seconds;
    prove_par_seconds;
    prove_speedup = prove_seq_seconds /. prove_par_seconds;
    prove_identical = render o_seq = render o_par;
    prove_holds =
      List.for_all
        (fun r ->
          r.Time_protection.Prove.theorem.Tpro_secmodel.Theorem.holds)
        o_seq.Time_protection.Prove.reports;
  }

let print_prove_bench b =
  Format.printf
    "=== Composed-theorem prover: supervised derivation ===@.@.";
  Format.printf "  pool size (-j):              %d@." b.prove_domains;
  List.iter
    (fun (k, dt) ->
      Format.printf "  exhaustive:%-17s %.3f s@." k dt)
    b.lemma_kind_seconds;
  Format.printf "  evidence, one seed:          %.3f s@." b.collect_seconds;
  Format.printf "  Prove.run sequential:        %.3f s@." b.prove_seq_seconds;
  Format.printf "  Prove.run parallel:          %.3f s@." b.prove_par_seconds;
  Format.printf "  speedup:                     %.2fx@." b.prove_speedup;
  Format.printf "  theorems bit-identical:      %b@." b.prove_identical;
  Format.printf "  full-preset theorem holds:   %b@.@." b.prove_holds

let write_prove_json path b =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tpro-bench-prove/1\",\n";
  p "  \"domains\": %d,\n" b.prove_domains;
  p "  \"exhaustive_kind_seconds\": {\n";
  let n = List.length b.lemma_kind_seconds in
  List.iteri
    (fun i (k, dt) ->
      p "    \"%s\": %.6f%s\n" (json_escape k) dt
        (if i = n - 1 then "" else ","))
    b.lemma_kind_seconds;
  p "  },\n";
  p "  \"collect_one_seed_seconds\": %.6f,\n" b.collect_seconds;
  p "  \"prove_sequential_seconds\": %.6f,\n" b.prove_seq_seconds;
  p "  \"prove_parallel_seconds\": %.6f,\n" b.prove_par_seconds;
  p "  \"speedup\": %.4f,\n" b.prove_speedup;
  p "  \"theorems_bit_identical\": %b,\n" b.prove_identical;
  p "  \"full_theorem_holds\": %b\n" b.prove_holds;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Part 7: topology campaigns (N-domain/M-core pairwise oracles)        *)

type topo_shape = {
  shape_label : string;
  shape_trials : int;
  shape_domains : int;  (** total domains drawn across the trials *)
  shape_pairs : int;  (** total ordered (varied, observer) pairs checked *)
  shape_seconds : float;
  shape_violations : int;
}

type topo_bench = {
  topo_shapes : topo_shape list;
  topo_clean : bool;  (** zero violations across every shape *)
}

(* One shape = one (max_domains, max_cores) bound pair; the pairwise
   oracle's cost is dominated by N+3 executions per topology plus the
   N·(N-1) evidence comparisons, so the interesting fit is seconds
   against the drawn pair count, not the trial count. *)
let bench_topology () =
  let trials = if !smoke then 4 else 12 in
  let shapes =
    List.map
      (fun (max_domains, max_cores) ->
        let label = Printf.sprintf "%dx%d" max_domains max_cores in
        let topos =
          List.init trials
            (Tpro_fuzz.Topology.generate ~seed:42 ~max_domains ~max_cores)
        in
        let violations = ref 0 in
        let _, dt =
          time_wall (fun () ->
              List.iter
                (fun t ->
                  match Tpro_fuzz.Oracle.check_topology t with
                  | Tpro_fuzz.Oracle.Pass -> ()
                  | Tpro_fuzz.Oracle.Fail _ -> incr violations)
                topos)
        in
        {
          shape_label = label;
          shape_trials = trials;
          shape_domains =
            List.fold_left
              (fun acc t -> acc + Tpro_fuzz.Topology.n_domains t)
              0 topos;
          shape_pairs =
            List.fold_left
              (fun acc t ->
                acc + List.length (Tpro_fuzz.Topology.pairs t))
              0 topos;
          shape_seconds = dt;
          shape_violations = !violations;
        })
      [ (2, 1); (4, 2); (8, 4) ]
  in
  {
    topo_shapes = shapes;
    topo_clean = List.for_all (fun s -> s.shape_violations = 0) shapes;
  }

let print_topo_bench b =
  Format.printf
    "=== Topology campaigns: pairwise oracle cost vs. N.M ===@.@.";
  Format.printf "  %-8s %7s %8s %7s %10s %11s %10s@." "bound" "trials"
    "domains" "pairs" "seconds" "topo/sec" "ms/pair";
  List.iter
    (fun s ->
      Format.printf "  %-8s %7d %8d %7d %10.3f %11.1f %10.2f@." s.shape_label
        s.shape_trials s.shape_domains s.shape_pairs s.shape_seconds
        (float_of_int s.shape_trials /. s.shape_seconds)
        (1000.0 *. s.shape_seconds /. float_of_int s.shape_pairs))
    b.topo_shapes;
  Format.printf "  zero pairwise violations:    %b@.@." b.topo_clean

let write_topo_json path b =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"tpro-bench-topology/1\",\n";
  p "  \"shapes\": {\n";
  let n = List.length b.topo_shapes in
  List.iteri
    (fun i s ->
      p
        "    \"%s\": { \"trials\": %d, \"domains\": %d, \"pairs\": %d, \
         \"seconds\": %.6f, \"topologies_per_second\": %.4f, \
         \"ms_per_pair\": %.4f, \"violations\": %d }%s\n"
        (json_escape s.shape_label) s.shape_trials s.shape_domains
        s.shape_pairs s.shape_seconds
        (float_of_int s.shape_trials /. s.shape_seconds)
        (1000.0 *. s.shape_seconds /. float_of_int s.shape_pairs)
        s.shape_violations
        (if i = n - 1 then "" else ","))
    b.topo_shapes;
  p "  },\n";
  p "  \"zero_pairwise_violations\": %b\n" b.topo_clean;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path

let () =
  if not !smoke then regenerate_tables ();
  let par, raw_tables = bench_parallel () in
  print_par_bench par;
  let sup =
    bench_supervisor ~raw_seconds:par.par_seconds ~raw_tables
  in
  print_sup_bench sup;
  let micro =
    if !smoke then [] else run_bechamel (experiment_tests @ micro_tests)
  in
  let flat = bench_flatstate par in
  print_flat_bench flat;
  let prove = bench_prove () in
  print_prove_bench prove;
  let topo = bench_topology () in
  print_topo_bench topo;
  write_json !json_path par micro;
  write_sup_json !sup_json_path sup;
  write_flat_json !flat_json_path flat;
  write_prove_json !prove_json_path prove;
  write_topo_json !topo_json_path topo;
  if not topo.topo_clean then begin
    Format.printf
      "ERROR: clean topology campaign reported pairwise violations@.";
    exit 1
  end;
  if not prove.prove_identical then begin
    Format.printf
      "ERROR: parallel theorem derivation diverged from sequential output@.";
    exit 1
  end;
  if not par.identical then begin
    Format.printf
      "ERROR: parallel suite diverged from sequential suite output@.";
    exit 1
  end;
  if not sup.sup_identical then begin
    Format.printf
      "ERROR: supervised sweep diverged from raw fan-out output@.";
    exit 1
  end;
  let floor = !require_speedup_1core in
  if floor > 0.0 && par.cores = 1 then begin
    if par.speedup < floor then begin
      Format.printf
        "ERROR: calibrated 1-core speedup %.2f < required %.2f \
         (oversubscription regression)@."
        par.speedup floor;
      exit 1
    end
    else
      Format.printf "1-core speedup guard ok: %.2f >= %.2f@." par.speedup
        floor
  end;
  let budget = !budget_cache_digest_ns in
  if budget > 0.0 then begin
    let got = incr_cache_digest_ns flat in
    if Float.is_nan got || got > budget then begin
      Format.printf
        "ERROR: perf budget exceeded: incremental cache digest %.2f ns/run > \
         budget %.2f ns/run@."
        got budget;
      exit 1
    end
    else
      Format.printf
        "perf budget ok: incremental cache digest %.2f ns/run <= %.2f \
         ns/run@."
        got budget
  end
