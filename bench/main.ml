(* Benchmark harness.

   Part 1 regenerates every experiment table of DESIGN.md (the rows the
   paper reproduction reports) and prints them.

   Part 2 is a Bechamel suite: one [Test.make] per experiment table
   (measuring the cost of regenerating it with a reduced trial count) plus
   micro-benchmarks of the substrate primitives the simulator is built
   from.  Results are printed as OLS time-per-run estimates. *)

open Bechamel
open Toolkit

let bench_seeds = [ 0; 1 ]

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the tables                                       *)

let regenerate_tables () =
  Format.printf "=== Experiment tables (paper reproduction) ===@.@.";
  List.iter
    (fun t -> Format.printf "%a@." Time_protection.Table.render t)
    (Time_protection.Experiments.all ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel suite                                              *)

let experiment_tests =
  List.filter_map
    (fun id ->
      match Time_protection.Experiments.by_id id with
      | None -> None
      | Some f ->
        Some
          (Test.make ~name:("table:" ^ id)
             (Staged.stage (fun () -> ignore (f ~seeds:bench_seeds ())))))
    Time_protection.Experiments.ids

(* Substrate micro-benchmarks. *)

let cache_access_test =
  let open Tpro_hw in
  let c = Cache.create (Cache.geometry ~sets:1024 ~ways:8 ~line_bits:6 ()) in
  let i = ref 0 in
  Test.make ~name:"hw:cache-access"
    (Staged.stage (fun () ->
         incr i;
         ignore (Cache.access c ~owner:0 ~write:false (!i * 8191 land 0xFFFFF))))

let machine_load_test =
  let open Tpro_hw in
  let m = Machine.create Machine.default_config in
  let i = ref 0 in
  Test.make ~name:"hw:machine-load"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Machine.load m ~core:0 ~asid:1 ~domain:0
              ~translate:(fun vpn -> Some (vpn land 0x3FF))
              ~pc:(!i * 4)
              (!i * 4099 land 0xFFFFF))))

let flush_test =
  let open Tpro_hw in
  let m = Machine.create Machine.default_config in
  Test.make ~name:"hw:flush-core-local"
    (Staged.stage (fun () ->
         ignore
           (Machine.store m ~core:0 ~asid:1 ~domain:0
              ~translate:(fun vpn -> Some (vpn land 0x3FF))
              ~pc:0 0x1000);
         ignore (Machine.flush_core_local m ~core:0)))

let kernel_step_test =
  let open Tpro_kernel in
  Test.make ~name:"kernel:boot+1000-steps"
    (Staged.stage (fun () ->
         let k = Kernel.create Kernel.config_full in
         let d0 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
         let d1 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
         Kernel.map_region k d0 ~vbase:0x20000000 ~pages:2;
         ignore
           (Kernel.spawn k d0
              (Array.append
                 (Array.init 400 (fun i ->
                      Program.Load (0x20000000 + (i * 64 mod 8192))))
                 [| Program.Halt |]));
         ignore (Kernel.spawn k d1 (Array.make 400 (Program.Compute 10)));
         Kernel.run ~max_steps:1_000 k))

let capacity_test =
  let samples =
    List.concat_map
      (fun s -> List.init 16 (fun i -> (s, (s * 3) + (i mod 4))))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Test.make ~name:"analysis:blahut-arimoto"
    (Staged.stage (fun () -> ignore (Tpro_channel.Capacity.of_samples samples)))

let two_run_test =
  Test.make ~name:"proofs:two-run-NI"
    (Staged.stage (fun () ->
         ignore
           (Tpro_secmodel.Nonint.two_run
              ~build:(fun ~secret ->
                Time_protection.Ni_scenario.build
                  ~cfg:Time_protection.Presets.full ~seed:0 ~secret)
              ~secret1:0 ~secret2:1 ())))

let micro_tests =
  [
    cache_access_test;
    machine_load_test;
    flush_test;
    kernel_step_test;
    capacity_test;
    two_run_test;
  ]

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"tpro" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort compare rows in
  Format.printf "=== Bechamel micro/table benchmarks (time per run) ===@.@.";
  Format.printf "  %-32s %14s %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, o) ->
      let time_ns =
        match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
      in
      let pretty =
        if time_ns >= 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
        else if time_ns >= 1e6 then Printf.sprintf "%.3f ms" (time_ns /. 1e6)
        else if time_ns >= 1e3 then Printf.sprintf "%.3f us" (time_ns /. 1e3)
        else Printf.sprintf "%.1f ns" time_ns
      in
      let r2 =
        match Analyze.OLS.r_square o with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Format.printf "  %-32s %14s %8s@." name pretty r2)
    rows

let () =
  regenerate_tables ();
  run_bechamel (experiment_tests @ micro_tests)
