(* The full Figure 1 pipeline: a web server (Hi) hands secrets to an
   encryption component (Hi, trusted downgrader), which publishes
   ciphertext to the network stack (Lo).

   The ciphertext itself is safe — but the *arrival time* of the message
   encodes how long the crypto ran, which depends on the secret.  This
   example builds the three-domain pipeline, leaks a secret through the
   arrival time, and then closes the channel with deterministic delivery.

   Run with: dune exec examples/downgrader_pipeline.exe *)

open Tpro_hw
open Tpro_kernel
open Tpro_channel
open Time_protection

let slice = 20_000
let pad = 12_000

(* Crypto with a secret-dependent code path: the classic algorithmic
   channel (e.g. a square-and-multiply loop keyed by secret bits). *)
let crypto_work ~secret = 2_000 + (secret * 600)

let build ~cfg ~seed ~secret =
  let machine_config =
    { Machine.default_config with
      Machine.lat = Latency.with_seed Latency.default seed }
  in
  let k = Kernel.create ~machine_config cfg in
  let web = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let crypto = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let net = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  (* web server: produce the secret and hand it to the crypto component *)
  ignore
    (Kernel.spawn k web
       [|
         Program.Compute 500;
         Program.Syscall (Program.Sys_send { ep = 0; msg = secret });
         Program.Halt;
       |]);
  (* encryption downgrader: receive, "encrypt" (secret-dependent time),
     publish the ciphertext (always 0 — the storage channel is closed) *)
  ignore
    (Kernel.spawn k crypto
       [|
         Program.Syscall (Program.Sys_recv { ep = 0 });
         Program.Compute (crypto_work ~secret);
         Program.Syscall (Program.Sys_send { ep = 1; msg = 0 });
         Program.Halt;
       |]);
  (* network stack: note when the ciphertext arrives *)
  let nic =
    Kernel.spawn k net
      [|
        Program.Syscall (Program.Sys_recv { ep = 1 });
        Program.Read_clock;
        Program.Halt;
      |]
  in
  (k, nic)

let arrival ~cfg ~seed ~secret =
  let k, nic = build ~cfg ~seed ~secret in
  Kernel.run ~max_steps:100_000 k;
  match Prime_probe.clock_values (Thread.observations nic) with
  | [ t ] -> t
  | _ -> -1

let () =
  Format.printf "== Figure 1: web server -> encryption -> network ==@.@.";
  Format.printf "ciphertext arrival time at the network stack (Lo):@.";
  Format.printf "  %-8s %16s %16s@." "secret" "no protection" "full TP";
  List.iter
    (fun secret ->
      Format.printf "  %-8d %16d %16d@." secret
        (arrival ~cfg:Presets.none ~seed:0 ~secret)
        (arrival ~cfg:Presets.full ~seed:0 ~secret))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  let capacity cfg =
    let samples =
      List.concat_map
        (fun secret ->
          List.map (fun seed -> (secret, arrival ~cfg ~seed ~secret))
            [ 0; 1; 2; 3; 4 ])
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    in
    Capacity.of_samples samples
  in
  Format.printf "@.channel capacity: %.3f bits unprotected, %.3f bits under full TP@."
    (capacity Presets.none) (capacity Presets.full);
  Format.printf
    "@.the arrival column under full TP is quantised to the schedule: the@.";
  Format.printf
    "switch to Lo happens at the crypto domain's padded slice boundary, not@.";
  Format.printf "when the crypto happens to finish (Cock et al. delivery).@."
