(* Exfiltrate real data over the microarchitecture: encode a text string
   as octal digits and transmit it through the L1 prime-and-probe channel
   with a trained decoder — then watch time protection garble it.

   Run with: dune exec examples/send_a_message.exe *)

open Tpro_channel
open Time_protection

let text = "SEL4"

(* 3 bits per symbol: each character becomes three octal digits. *)
let encode s =
  List.concat_map
    (fun c ->
      let b = Char.code c in
      [ (b lsr 6) land 7; (b lsr 3) land 7; b land 7 ])
    (List.init (String.length s) (String.get s))

let decode_digits ds =
  let rec go acc = function
    | a :: b :: c :: rest ->
      go (acc ^ String.make 1 (Char.chr ((a lsl 6) lor (b lsl 3) lor c))) rest
    | _ -> acc
  in
  go "" ds

let printable s =
  String.map (fun c -> if c >= ' ' && c <= '~' then c else '?') s

let () =
  let scenario = Cache_channel.l1_scenario () in
  let message = encode text in
  Format.printf "Trojan wants to exfiltrate %S = %d octal symbols@." text
    (List.length message);
  List.iter
    (fun (name, cfg) ->
      let t = Protocol.transmit scenario ~cfg ~message in
      Format.printf "@.%s:@.  %a@.  spy decoded: %S@." name
        Protocol.pp_transmission t
        (printable (decode_digits t.Protocol.received)))
    [ ("no protection", Presets.none); ("full time protection", Presets.full) ]
