(* "Can we prove time protection?" — the executable answer.

   Runs the Sect. 5.2 proof stack (Cases 1, 2a, 2b, top-level
   noninterference, and the partitioning invariants), quantified over
   several unspecified latency functions, against the fully protected
   kernel and against one with a single mechanism knocked out.

   Run with: dune exec examples/prove_it.exe *)

open Time_protection

let () =
  Format.printf "== proving time protection (executable analogue) ==@.@.";
  let report = Verify.run ~cfg:Presets.full () in
  Format.printf "%a@.@." Verify.pp_report report;

  Format.printf
    "-- now remove one mechanism (no kernel clone) and watch the checkers@.";
  Format.printf "   find the counter-example: --@.@.";
  let broken = Verify.run ~cfg:Presets.without_clone () in
  Format.printf "%a@.@." Verify.pp_report broken;

  Format.printf "summary over the whole ablation grid:@.";
  List.iter
    (fun (name, cfg) ->
      let r = Verify.run ~cfg () in
      Format.printf "  %-16s %s@." name
        (if r.Verify.all_hold then "proof obligations hold"
         else "VIOLATED (counter-example found)"))
    Presets.ablations
