(* Quickstart: build a two-domain system, mount a prime-and-probe covert
   channel through the L1 cache, measure its capacity, then turn on time
   protection and watch it die.

   Run with: dune exec examples/quickstart.exe *)

open Tpro_kernel
open Tpro_channel
open Time_protection

let () =
  Format.printf "== time protection quickstart ==@.@.";

  (* A scenario is a Trojan/spy pair; this one is the classic
     prime-and-probe attack of Sect. 3.1 through the core-private L1. *)
  let scenario = Cache_channel.l1_scenario () in

  (* One end-to-end transmission without any protection: the Trojan
     encodes the symbol 5 in its cache footprint; the spy decodes it from
     its probe latencies. *)
  let decoded =
    Attack.run_trial scenario ~cfg:Presets.none ~seed:0 ~secret:5
  in
  Format.printf "Trojan sent symbol 5; spy decoded a footprint of %d slow probes@."
    decoded;

  (* Capacity measurement: all 8 symbols, several trials each (the trials
     vary the machine's latency function — the model's noise source). *)
  let measure name cfg =
    let o = Attack.measure ~seeds:[ 0; 1; 2; 3; 4 ] scenario ~cfg () in
    Format.printf "  %-42s %6.3f bits/use@." name o.Attack.capacity_bits
  in
  Format.printf "@.channel capacity by configuration:@.";
  measure "no protection" Presets.none;
  measure "cache colouring only (cannot reach the L1)" Presets.colour_only;
  measure "flush + padded switch (the right defence)" Presets.flush_pad;
  measure "full time protection" Presets.full;

  (* The same kernel API used directly: build your own system. *)
  Format.printf "@.direct kernel API:@.";
  let k = Kernel.create Kernel.config_full in
  let d0 = Kernel.create_domain k ~slice:10_000 ~pad_cycles:9_000 () in
  let d1 = Kernel.create_domain k ~slice:10_000 ~pad_cycles:9_000 () in
  Kernel.map_region k d0 ~vbase:0x2000_0000 ~pages:2;
  let worker =
    Kernel.spawn k d0
      [|
        Program.Read_clock;
        Program.Load 0x2000_0000;
        Program.Load 0x2000_0040;
        Program.Syscall Program.Sys_null;
        Program.Read_clock;
        Program.Halt;
      |]
  in
  ignore (Kernel.spawn k d1 [| Program.Compute 500; Program.Halt |]);
  Kernel.run k;
  Format.printf "  worker observations: %a@."
    (Format.pp_print_list ~pp_sep:(fun p () -> Format.pp_print_string p ", ")
       Event.pp_obs)
    (Thread.observations worker);
  Format.printf "  kernel events: %d, all domains halted: %b@."
    (List.length (Kernel.events k))
    (Kernel.all_halted k)
