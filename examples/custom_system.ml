(* Building your own time-protected system with the declarative API:
   a three-domain sensor pipeline (sensor -> filter -> logger), padding
   attributes derived automatically from the WCET analysis, and the
   execution timeline reconstructed afterwards.

   Run with: dune exec examples/custom_system.exe *)

open Tpro_hw
open Tpro_kernel
open Time_protection

let buf = 0x2000_0000

let sensor =
  [|
    Program.Read_clock;
    Program.Compute 800; (* sample the ADC *)
    Program.Syscall (Program.Sys_send { ep = 0; msg = 21 });
    Program.Halt;
  |]

let filter =
  [|
    Program.Syscall (Program.Sys_recv { ep = 0 });
    Program.Load buf;
    Program.Store buf;
    Program.Compute 1_500; (* run the filter kernel *)
    Program.Syscall (Program.Sys_send { ep = 1; msg = 42 });
    Program.Halt;
  |]

let logger =
  [|
    Program.Syscall (Program.Sys_recv { ep = 1 });
    Program.Read_clock;
    Program.Store buf;
    Program.Halt;
  |]

let () =
  let recommended = Wcet.recommended_pad Machine.default_config in
  Format.printf "WCET analysis recommends a padding attribute of %d cycles@.@."
    recommended;
  let sys =
    System.build
      (System.spec ~protection:Presets.full
         [
           System.domain ~name:"sensor" ~slice:12_000 [ sensor ];
           System.domain ~name:"filter" ~slice:12_000
             ~regions:[ { System.vbase = buf; pages = 1 } ]
             [ filter ];
           System.domain ~name:"logger" ~slice:12_000
             ~regions:[ { System.vbase = buf; pages = 1 } ]
             [ logger ];
         ])
  in
  System.run sys;
  let k = System.kernel sys in
  Format.printf "pipeline completed: %b@.@." (Kernel.all_halted k);
  (match System.observations sys "logger" with
  | [ obs ] ->
    Format.printf "logger saw: %a@.@."
      (Format.pp_print_list ~pp_sep:(fun p () -> Format.pp_print_string p ", ")
         Event.pp_obs)
      obs
  | _ -> ());
  Format.printf "execution timeline:@.%a@." (Trace.pp ~limit:16) k;
  Format.printf
    "every switch slot above is exactly slice + pad: the filter's@.";
  Format.printf
    "message reaches the logger at a schedule-determined instant, however@.";
  Format.printf "long the filter kernel actually ran.@."
