(* The cloud scenario of Sect. 2: two tenants on different cores of the
   same machine.  Cache colouring isolates their shared LLC — but the
   stateless memory interconnect still leaks, exactly as the paper
   concedes; only (hypothetical) hardware bandwidth partitioning closes
   that final channel.

   Run with: dune exec examples/cloud_covert.exe *)

open Tpro_channel
open Time_protection

let show what scenario cfg =
  let o = Attack.measure ~seeds:[ 0; 1; 2; 3; 4 ] scenario ~cfg () in
  Format.printf "  %-52s %6.3f bits/use@." what o.Attack.capacity_bits

let () =
  Format.printf "== co-located tenants on a public cloud (Sect. 2) ==@.@.";

  Format.printf "shared-LLC prime-and-probe between tenants:@.";
  let llc = Cache_channel.llc_scenario () in
  show "no protection" llc Presets.none;
  show "full time protection (colouring)" llc Presets.full;

  Format.printf "@.bandwidth-contention channel over the memory interconnect:@.";
  let shared =
    Interconnect_channel.scenario ~bus:Interconnect_channel.shared_bus ()
  in
  let tdma =
    Interconnect_channel.scenario ~bus:Interconnect_channel.tdma_bus ()
  in
  show "no protection, shared bus" shared Presets.none;
  show "FULL time protection, shared bus (still open!)" shared Presets.full;
  show "full TP + hardware TDMA partitioning" tdma Presets.full;

  Format.printf
    "@.the last rows reproduce the paper's scope limit: stateless@.";
  Format.printf
    "interconnects defeat every OS mechanism; closing them needs hardware@.";
  Format.printf
    "support that no mainstream processor provides (Sect. 2, footnote on@.";
  Format.printf "Intel MBA's approximate enforcement).@."
