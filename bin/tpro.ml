(* Command-line driver: run experiments, verify configurations, inspect
   the model.

   Long-running entry points (fuzz campaigns, the experiment sweep) go
   through the engine's supervision layer: deterministic output — the
   report a resumed run prints is bit-identical to an uninterrupted one
   — stays on stdout; operational chatter (run summaries, resume notes,
   per-task failures) goes to stderr. *)

module Supervisor = Tpro_engine.Supervisor

(* Exit codes: 0 clean, 1 operational failure (oracle violation, bad
   replay), 2 campaign incomplete (supervised tasks failed), 124
   usage/parse errors (cmdliner's convention, shared by the replay
   parser). *)
let exit_incomplete = 2

let print_supervision_stderr sup notes =
  List.iter (fun n -> Format.eprintf "note: %s@." n) notes;
  Format.eprintf "%a@." Supervisor.pp_summary (Supervisor.summary sup)

let list_experiments () =
  print_endline "experiments (see DESIGN.md for the paper mapping):";
  List.iter (fun id -> Printf.printf "  %s\n" id) Time_protection.Experiments.ids

let print_table csv table =
  if csv then print_string (Time_protection.Table.to_csv table)
  else Format.printf "%a@." Time_protection.Table.render table

(* Resolve the --checkpoint / --resume pair: --resume FILE implies
   checkpointing to the same FILE unless --checkpoint overrides it. *)
let checkpoint_path checkpoint resume =
  match (checkpoint, resume) with
  | Some c, _ -> Some c
  | None, r -> r

(* Supervised sweep shared by `tpro all` and `tpro exp` when a
   checkpoint is in play: print the tables that settled, report the ones
   that did not, exit 2 if the sweep is incomplete. *)
let run_sweep_supervised ?seeds ?only ~csv ~jobs ~path ~resume () =
  Supervisor.with_supervisor ~domains:jobs (fun sup ->
      let sw =
        Time_protection.Experiments.run_supervised ?seeds ~sup
          ~checkpoint:path ~resume ?only ()
      in
      print_supervision_stderr sup sw.Time_protection.Experiments.sweep_notes;
      let incomplete = ref false in
      List.iter
        (fun (id, r) ->
          match r with
          | Ok t -> print_table csv t
          | Error e ->
            incomplete := true;
            Format.eprintf "experiment %s lost: %s@." id
              (Supervisor.task_error_to_string e))
        sw.Time_protection.Experiments.tables;
      if !incomplete then exit exit_incomplete)

let run_experiment id seeds csv jobs checkpoint resume =
  match Time_protection.Experiments.by_id id with
  | None ->
    Printf.eprintf "unknown experiment %s; try `tpro list`\n" id;
    exit 1
  | Some f -> (
    let seeds = match seeds with [] -> None | l -> Some l in
    match checkpoint_path checkpoint resume with
    | Some path ->
      run_sweep_supervised ?seeds ~only:[ String.lowercase_ascii id ] ~csv
        ~jobs ~path ~resume:(resume <> None) ()
    | None ->
      if jobs <= 1 then print_table csv (f ?seeds ())
      else
        Tpro_engine.Pool.with_pool ~domains:jobs (fun pool ->
            print_table csv (f ?seeds ~pool ())))

let run_all seeds csv jobs checkpoint resume =
  let seeds = match seeds with [] -> None | l -> Some l in
  match checkpoint_path checkpoint resume with
  | Some path ->
    run_sweep_supervised ?seeds ~csv ~jobs ~path ~resume:(resume <> None) ()
  | None ->
    let tables =
      if jobs <= 1 then Time_protection.Experiments.all ?seeds ()
      else Time_protection.Experiments.all_par ?seeds ~domains:jobs ()
    in
    List.iter (print_table csv) tables

let configs =
  Time_protection.Presets.standard @ Time_protection.Presets.ablations

let verify cfg_name =
  match List.assoc_opt cfg_name configs with
  | None ->
    Printf.eprintf "unknown configuration %s; known: %s\n" cfg_name
      (String.concat ", " (List.map fst configs));
    exit 1
  | Some cfg ->
    let report = Time_protection.Verify.run ~cfg () in
    Format.printf "%a@." Time_protection.Verify.pp_report report;
    if not report.Time_protection.Verify.all_hold then exit 2

let show_trace cfg_name =
  match List.assoc_opt cfg_name configs with
  | None ->
    Printf.eprintf "unknown configuration %s\n" cfg_name;
    exit 1
  | Some cfg ->
    let run =
      Tpro_secmodel.Nonint.execute
        (fun ~secret -> Time_protection.Ni_scenario.build ~cfg ~seed:0 ~secret)
        0
    in
    let k = run.Tpro_secmodel.Nonint.kernel in
    Format.printf "timeline of the verification scenario under %s:@.%a@."
      cfg_name
      (Time_protection.Trace.pp ~limit:30)
      k;
    Format.printf "recommended padding for this machine (WCET analysis): %d cycles@."
      (Time_protection.Wcet.recommended_pad
         (Tpro_hw.Machine.config (Tpro_kernel.Kernel.machine k)))

let scenario_of_id id =
  match String.lowercase_ascii id with
  | "e2" | "l1" -> Tpro_channel.Cache_channel.l1_scenario ()
  | "e3" | "llc" -> Tpro_channel.Cache_channel.llc_scenario ()
  | "e5" | "text" -> Tpro_channel.Kernel_text.scenario ()
  | "e1" | "downgrader" -> Tpro_channel.Downgrader.scenario ()
  | "e8" | "tlb" -> Tpro_channel.Tlb_channel.scenario ()
  | "e6" | "irq" -> Tpro_channel.Irq_channel.scenario ()
  | "e17" | "bp" -> Tpro_channel.Bp_channel.scenario ()
  | "e20" | "btb" -> Tpro_channel.Btb_channel.scenario ()
  | other ->
    Printf.eprintf
      "no channel scenario for %s (try e1/e2/e3/e5/e6/e8/e17/e20)\n" other;
    exit 1

let show_matrix id cfg_name =
  match List.assoc_opt cfg_name configs with
  | None ->
    Printf.eprintf "unknown configuration %s\n" cfg_name;
    exit 1
  | Some cfg ->
    let scenario = scenario_of_id id in
    let o =
      Tpro_channel.Attack.measure ~seeds:(List.init 8 (fun i -> i)) scenario
        ~cfg ()
    in
    Format.printf "%a@.@.channel matrix P(output | input):@.%a@."
      Tpro_channel.Attack.pp_outcome o Tpro_channel.Matrix.pp
      (Tpro_channel.Attack.matrix o)

let run_protocol id message_len =
  let scenario = scenario_of_id id in
  List.iter
    (fun (name, cfg) ->
      let t =
        Tpro_channel.Protocol.transmit scenario ~cfg
          ~message:(Tpro_channel.Protocol.random_message scenario ~len:message_len)
      in
      Format.printf "%-6s %a@." name Tpro_channel.Protocol.pp_transmission t)
    [ ("none", Time_protection.Presets.none); ("full", Time_protection.Presets.full) ]

(* Composed-theorem proving: fan evidence collection (one task per
   preset x latency seed) over the supervisor, compose the per-lemma
   verdict table, and render one theorem per preset.  Exit codes follow
   the lemma semantics: 1 if any lemma is refuted, 2 if an out-of-scope
   registration is unacknowledged (or evidence was lost), 0 otherwise. *)
let run_prove preset all seeds secrets smoke jobs acknowledge json checkpoint
    checkpoint_every resume =
  let presets =
    if all then configs
    else
      match List.assoc_opt preset configs with
      | None ->
        Printf.eprintf "unknown configuration %s; known: %s\n" preset
          (String.concat ", " (List.map fst configs));
        exit 1
      | Some cfg -> [ (preset, cfg) ]
  in
  let seeds =
    match seeds with
    | [] -> if smoke then [ 0 ] else Time_protection.Ni_scenario.default_seeds
    | l -> l
  in
  let secrets =
    match secrets with
    | [] ->
      if smoke then [ 0; 1 ] else Time_protection.Ni_scenario.default_secrets
    | l -> l
  in
  Supervisor.with_supervisor ~domains:jobs (fun sup ->
      let open Time_protection.Prove in
      let o =
        run ~sup
          ?checkpoint:(checkpoint_path checkpoint resume)
          ~checkpoint_every ~resume:(resume <> None) ~acknowledge ~seeds
          ~secrets ~presets ()
      in
      print_supervision_stderr sup o.notes;
      List.iter
        (fun r ->
          Format.printf "%a@." pp_report r;
          List.iter
            (fun (i, m) -> Format.eprintf "task %d lost: %s@." i m)
            r.lost)
        o.reports;
      (match json with
      | Some path ->
        let oc = open_out path in
        output_string oc (to_json o.reports);
        close_out oc
      | None -> ());
      let any f = List.exists f o.reports in
      if any (fun r -> r.theorem.Tpro_secmodel.Theorem.refuted <> []) then
        exit 1
      else if
        any (fun r -> r.theorem.Tpro_secmodel.Theorem.unacknowledged <> [])
      then exit 2
      else if any (fun r -> r.lost <> []) then exit exit_incomplete)

(* Scenario fuzzing: generated workloads checked by the differential
   security oracles, with shrunk counterexamples persisted for replay.
   The campaign runs under supervision: one bad task costs one result,
   the run completes, and the missing trials are reported (exit 2). *)
(* One replay path for both fuzz and topo: the loader dispatches on the
   file's format line, so either subcommand replays anything the tool
   ever wrote (format-1 scenarios, format-2 topologies, and
   pre-versioning scenario files with no format line). *)
let run_replay path =
  match Tpro_fuzz.Replay.load path with
  | Error (Tpro_fuzz.Scenario.Io msg) ->
    Printf.eprintf "cannot replay %s: %s\n" path msg;
    exit 1
  | Error (Tpro_fuzz.Scenario.Parse pe) ->
    Format.eprintf "cannot replay %s: %a@." path
      Tpro_fuzz.Scenario.pp_parse_error pe;
    exit 124
  | Ok (Tpro_fuzz.Replay.Scenario s) -> (
    Format.printf "replaying %a@." Tpro_fuzz.Scenario.pp s;
    match Tpro_fuzz.Oracle.check s with
    | Tpro_fuzz.Oracle.Pass -> print_endline "replay: PASS"
    | Tpro_fuzz.Oracle.Fail m ->
      Printf.printf "replay: FAIL: %s\n" m;
      exit 1)
  | Ok (Tpro_fuzz.Replay.Topology t) -> (
    Format.printf "replaying %a@." Tpro_fuzz.Topology.pp t;
    match Tpro_fuzz.Oracle.check_topology t with
    | Tpro_fuzz.Oracle.Pass -> print_endline "replay: PASS"
    | Tpro_fuzz.Oracle.Fail m ->
      Printf.printf "replay: FAIL: %s\n" m;
      exit 1)

let run_fuzz seed trials jobs mutant replay out checkpoint checkpoint_every
    resume =
  match replay with
  | Some path -> run_replay path
  | None ->
    Supervisor.with_supervisor ~domains:jobs (fun sup ->
        let c =
          Tpro_fuzz.Driver.campaign ~sup ~mutant
            ?checkpoint:(checkpoint_path checkpoint resume)
            ~checkpoint_every ~resume:(resume <> None) ~seed ~trials ()
        in
        print_supervision_stderr sup c.Tpro_fuzz.Driver.notes;
        List.iter
          (fun { Tpro_fuzz.Driver.trial; error } ->
            Format.eprintf "trial %d lost: %s@." trial
              (Supervisor.task_error_to_string error))
          c.Tpro_fuzz.Driver.task_failures;
        let incomplete = c.Tpro_fuzz.Driver.task_failures <> [] in
        match c.Tpro_fuzz.Driver.failures with
        | [] ->
          Format.printf "fuzz: %d trials (seed %d): zero oracle violations@."
            trials seed;
          if incomplete then exit exit_incomplete
        | f :: _ ->
          Format.printf "fuzz: %d violation(s) in %d trials (seed %d)@.%a@."
            (List.length c.Tpro_fuzz.Driver.failures)
            trials seed Tpro_fuzz.Driver.pp_failure f;
          Tpro_fuzz.Scenario.save out f.Tpro_fuzz.Driver.shrunk;
          Format.printf
            "shrunk counterexample written to %s (replay with: tpro fuzz \
             --replay %s)@."
            out out;
          exit 1)

(* Topology campaigns: N-domain/M-core systems with the noninterference
   and capacity oracles demanded pairwise across every (varied,
   observer) domain pair.  Same supervision/checkpoint/exit-code
   contract as `tpro fuzz`. *)
let run_topo seed trials jobs mutant max_domains max_cores replay out
    checkpoint checkpoint_every resume =
  match replay with
  | Some path -> run_replay path
  | None ->
    Supervisor.with_supervisor ~domains:jobs (fun sup ->
        let c =
          Tpro_fuzz.Driver.topo_campaign ~sup ~mutant
            ?checkpoint:(checkpoint_path checkpoint resume)
            ~checkpoint_every ~resume:(resume <> None) ~max_domains ~max_cores
            ~seed ~trials ()
        in
        print_supervision_stderr sup c.Tpro_fuzz.Driver.topo_notes;
        List.iter
          (fun { Tpro_fuzz.Driver.trial; error } ->
            Format.eprintf "trial %d lost: %s@." trial
              (Supervisor.task_error_to_string error))
          c.Tpro_fuzz.Driver.topo_task_failures;
        let incomplete = c.Tpro_fuzz.Driver.topo_task_failures <> [] in
        match c.Tpro_fuzz.Driver.topo_failures with
        | [] ->
          Format.printf
            "topo: %d topologies (seed %d, <=%d domains, <=%d cores): zero \
             pairwise violations@."
            trials seed max_domains max_cores;
          if incomplete then exit exit_incomplete
        | f :: _ ->
          Format.printf
            "topo: %d violation(s) in %d topologies (seed %d)@.%a@."
            (List.length c.Tpro_fuzz.Driver.topo_failures)
            trials seed Tpro_fuzz.Driver.pp_topo_failure f;
          Tpro_fuzz.Topology.save out f.Tpro_fuzz.Driver.topology;
          Format.printf
            "counterexample written to %s (replay with: tpro topo --replay \
             %s)@."
            out out;
          exit 1)

(* The campaign daemon and its client.  `tpro serve` owns a Unix-domain
   socket, journals every accepted job before acknowledging it, and
   multiplexes all tenants over one supervised pool; `tpro client`
   submits jobs and survives the server being killed and restarted
   (reconnect + idempotent resubmission).  Exit codes: serve exits 0 on
   a clean shutdown and 1 when an injected fault crashed it; client
   exits 0 when every job settled, 1 when a submitted job failed, 2
   when the campaign could not be completed. *)
let run_serve socket journal resume jobs queue_max deadline retries batch
    outq_limit fault =
  let open Tpro_serve.Server in
  let cfg =
    {
      (default_config ~socket) with
      journal;
      resume;
      domains = jobs;
      queue_max;
      default_deadline = deadline;
      retries;
      batch;
      outq_limit;
      fault;
    }
  in
  Format.eprintf "serve: listening on %s%s@." socket
    (match journal with
    | Some j -> Printf.sprintf " (journal %s%s)" j (if resume then ", resumed" else "")
    | None -> " (no journal: accepted jobs are not crash-safe)");
  let stats = run cfg in
  List.iter (fun n -> Format.eprintf "note: %s@." n) stats.notes;
  Format.eprintf
    "serve: accepted %d, completed %d (%d failed), busy %d, idempotent %d, \
     executed %d, tenants %d, recovered %d jobs + %d results%s@."
    stats.accepted stats.completed stats.failed stats.busy_rejections
    stats.idempotent_hits stats.executed stats.tenants stats.recovered_jobs
    stats.recovered_results
    (if stats.degraded then " [degraded]" else "");
  if fault = Torn_journal_crash then exit 1

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_client socket tenant stats shutdown bench count kind deadline window
    json dump id_prefix specs =
  let module Client = Tpro_serve.Client in
  let module Job = Tpro_serve.Job in
  if stats then (
    match Client.server_stats ~socket with
    | Ok kvs -> List.iter (fun (k, v) -> Printf.printf "%s %s\n" k v) kvs
    | Error e ->
      Printf.eprintf "client: %s\n" e;
      exit 1)
  else if shutdown then (
    match Client.shutdown_server ~socket with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "client: %s\n" e;
      exit 1)
  else begin
    let mk spec =
      match Job.bench_kind spec with
      | Ok f -> f
      | Error e ->
        Printf.eprintf "client: %s\n" e;
        exit 124
    in
    let jobs =
      if bench then
        let f = mk kind in
        List.init count (fun i ->
            { Job.id = Printf.sprintf "%s-%06d" id_prefix i; deadline; kind = f i })
      else if specs = [] then begin
        Printf.eprintf
          "client: nothing to do (give job specs, or --bench/--stats/--shutdown)\n";
        exit 124
      end
      else
        List.mapi
          (fun i spec ->
            {
              Job.id = Printf.sprintf "%s-%06d" id_prefix i;
              deadline;
              kind = (mk spec) i;
            })
          specs
    in
    let progress =
      if bench then
        Some
          (fun ~done_ ~total ->
            if done_ mod 1000 = 0 || done_ = total then
              Printf.eprintf "client: %d/%d\n%!" done_ total)
      else None
    in
    match Client.run_jobs ~socket ~tenant ~window ?progress jobs with
    | Error e ->
      Printf.eprintf "client: %s\n" e;
      exit exit_incomplete
    | Ok report ->
      (match dump with
      | Some path -> write_file path (Client.dump_results report)
      | None -> ());
      (match json with
      | Some path ->
        write_file path
          (Client.bench_json ~kind ~jobs:(List.length jobs) report)
      | None -> ());
      let failed =
        List.length (List.filter (fun (_, o) -> Result.is_error o) report.results)
      in
      if bench then begin
        let lat = Array.copy report.Client.latencies in
        Array.sort compare lat;
        Printf.printf
          "client: %d jobs in %.2fs (%.0f jobs/s), p50 %.2fms p99 %.2fms, \
           failed %d, busy retries %d, reconnects %d, duplicates dropped %d\n"
          report.Client.total report.Client.duration
          (if report.Client.duration > 0. then
             float_of_int report.Client.total /. report.Client.duration
           else 0.)
          (Client.percentile lat 50. *. 1000.)
          (Client.percentile lat 99. *. 1000.)
          failed report.Client.busy_retries report.Client.reconnects
          report.Client.duplicate_deliveries
      end
      else begin
        List.iter
          (fun (id, outcome) ->
            match outcome with
            | Ok payload -> Printf.printf "%s: ok: %s\n" id payload
            | Error (code, detail) ->
              Printf.printf "%s: failed (%s): %s\n" id
                (Tpro_serve.Wire.failure_code_to_string code)
                detail)
          report.Client.results;
        if failed > 0 then exit 1
      end
  end

open Cmdliner

let seeds_arg =
  Arg.(value & opt (list int) [] & info [ "seeds" ] ~doc:"Latency-function seeds.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit tables as CSV.")

let jobs_arg =
  Arg.(
    value
    & opt int (Tpro_engine.Pool.recommended ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Number of domains for the parallel trial engine (default: the \
           calibrated domain count for this host — 1 on a single-core or \
           CPU-quota'd container, where fan-out would only add overhead).  \
           Results are bit-identical for any value.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Snapshot progress into $(docv) (crash-safe: written to a \
           temporary file, fsynced and atomically renamed) so an \
           interrupted run can be resumed with $(b,--resume).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 200
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Trials between checkpoint snapshots (default 200).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from the checkpoint in $(docv) — and keep checkpointing \
           there — producing output bit-identical to an uninterrupted run.  \
           A missing, corrupt or mismatched checkpoint restarts from \
           scratch with a note on stderr.")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List experiment ids")
    Term.(const list_experiments $ const ())

(* What would the engine do on this host, and why?  `--fresh` re-probes
   instead of using the cached answer, for checking a quota change
   without restarting anything. *)
let run_calibrate fresh =
  let h =
    if fresh then Tpro_engine.Calibrate.probe ()
    else Tpro_engine.Calibrate.host ()
  in
  Format.printf "%a@." Tpro_engine.Calibrate.pp_host h

let calibrate_cmd =
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ] ~doc:"Re-run the probe instead of using the cache.")
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Probe the host and report the calibrated domain count the engine \
          will use")
    Term.(const run_calibrate $ fresh)

let exp_cmd =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "exp" ~doc:"Run one experiment (e.g. e2)")
    Term.(
      const run_experiment $ id $ seeds_arg $ csv_arg $ jobs_arg
      $ checkpoint_arg $ resume_arg)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment")
    Term.(
      const run_all $ seeds_arg $ csv_arg $ jobs_arg $ checkpoint_arg
      $ resume_arg)

let trace_cmd =
  let cfg = Arg.(value & pos 0 string "full" & info [] ~docv:"CONFIG") in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Show the execution timeline of the verification scenario")
    Term.(const show_trace $ cfg)

let matrix_cmd =
  let id = Arg.(value & pos 0 string "e2" & info [] ~docv:"CHANNEL") in
  let cfg = Arg.(value & pos 1 string "none" & info [] ~docv:"CONFIG") in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Show a channel's empirical matrix and capacity")
    Term.(const show_matrix $ id $ cfg)

let protocol_cmd =
  let id = Arg.(value & pos 0 string "e2" & info [] ~docv:"CHANNEL") in
  let len =
    Arg.(value & opt int 24 & info [ "length" ] ~doc:"Message length in symbols.")
  in
  Cmd.v
    (Cmd.info "protocol"
       ~doc:"Transmit a message over a covert channel and report error rate")
    Term.(const run_protocol $ id $ len)

let verify_cmd =
  let cfg =
    Arg.(value & pos 0 string "full"
         & info [] ~docv:"CONFIG"
             ~doc:"One of: none, flush+pad, colour-only, full, full\\\\flush, ...")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the Sect. 5.2 proof stack against a configuration")
    Term.(const verify $ cfg)

let prove_cmd =
  let preset =
    Arg.(
      value & opt string "full"
      & info [ "preset" ] ~docv:"CONFIG"
          ~doc:"Preset to prove (default full); see `tpro verify`.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Prove every preset (standard four plus ablations).")
  in
  let secrets =
    Arg.(
      value & opt (list int) []
      & info [ "secrets" ] ~doc:"Hi secrets to sample (default 0,1,2,3).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Thin the evidence to one latency seed and two secrets — the CI \
             smoke configuration.  Explicit $(b,--seeds)/$(b,--secrets) \
             override it.")
  in
  let acknowledge =
    Arg.(
      value & opt (list string) []
      & info [ "acknowledge" ] ~docv:"RESOURCES"
          ~doc:
            "Accept the named out-of-scope resources' $(b,scope:) \
             obligations.  An out-of-scope registration that is not \
             acknowledged refutes the composed theorem (exit 2).")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the per-lemma verdict table as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Derive the composed time-protection theorem (one unwinding lemma \
          per registered resource, kernel cases, exhaustive small models) \
          under supervision")
    Term.(
      const run_prove $ preset $ all $ seeds_arg $ secrets $ smoke $ jobs_arg
      $ acknowledge $ json $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg)

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~doc:"Root seed; every trial is derived from it.")
  in
  let trials =
    Arg.(value & opt int 1000 & info [ "trials" ] ~doc:"Number of trials.")
  in
  let mutant =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Tpro_fuzz.Scenario.No_mutant);
               ("skip-flush", Tpro_fuzz.Scenario.Skip_flush);
               ("drop-padding", Tpro_fuzz.Scenario.Drop_padding);
               ("miscolour", Tpro_fuzz.Scenario.Miscolour);
             ])
          Tpro_fuzz.Scenario.No_mutant
      & info [ "mutant" ]
          ~doc:
            "Inject a defence bypass (skip-flush, drop-padding, miscolour) \
             to validate that the oracles catch it.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run one saved scenario instead of fuzzing.")
  in
  let out =
    Arg.(
      value
      & opt string "fuzz-counterexample.txt"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the shrunk counterexample on failure.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz generated scenarios against the differential security \
          oracles (noninterference, capacity, legacy equivalence)")
    Term.(
      const run_fuzz $ seed $ trials $ jobs_arg $ mutant $ replay $ out
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg)

let topo_cmd =
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~doc:"Root seed; every topology is derived from it.")
  in
  let trials =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~doc:"Number of generated topologies.")
  in
  let mutant =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Tpro_fuzz.Scenario.No_mutant);
               ("skip-flush", Tpro_fuzz.Scenario.Skip_flush);
               ("drop-padding", Tpro_fuzz.Scenario.Drop_padding);
               ("miscolour", Tpro_fuzz.Scenario.Miscolour);
             ])
          Tpro_fuzz.Scenario.No_mutant
      & info [ "mutant" ]
          ~doc:
            "Inject a defence bypass (skip-flush, drop-padding, miscolour) \
             to validate that some domain pair's oracle catches it.")
  in
  let max_domains =
    Arg.(
      value & opt int 8
      & info [ "domains" ] ~docv:"N"
          ~doc:"Upper bound on drawn domain counts (clamped to 2-8).")
  in
  let max_cores =
    Arg.(
      value & opt int 4
      & info [ "cores" ] ~docv:"M"
          ~doc:"Upper bound on drawn core counts (clamped to 1-4).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-run one saved replay file instead of fuzzing; the format \
             line dispatches, so both topology (format 2) and scenario \
             (format 1) files are accepted.")
  in
  let out =
    Arg.(
      value
      & opt string "topo-counterexample.txt"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the failing topology on violation.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 50
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Topologies between checkpoint snapshots (default 50; a \
             topology trial is roughly an order of magnitude heavier than \
             a scenario trial).")
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Fuzz procedurally generated N-domain/M-core topologies, demanding \
          noninterference pairwise from every domain's viewpoint")
    Term.(
      const run_topo $ seed $ trials $ jobs_arg $ mutant $ max_domains
      $ max_cores $ replay $ out $ checkpoint_arg $ checkpoint_every
      $ resume_arg)

let socket_arg =
  Arg.(
    value
    & opt string "tpro.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon listens on.")

let serve_cmd =
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append-only job journal.  Every accepted job is fsynced here \
             before it is acknowledged, so a killed daemon restarted with \
             $(b,--resume) loses zero accepted jobs and re-runs none whose \
             completion was recorded.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the journal on startup: re-queue unfinished jobs, \
             re-cache finished results.  A torn journal tail (the crash \
             case) is dropped with a note.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the shared pool (default: the calibrated \
             count for this host).")
  in
  let queue_max =
    Arg.(
      value & opt int 65536
      & info [ "queue-max" ] ~docv:"N"
          ~doc:
            "Bound on queued jobs; past it submissions get a typed busy \
             rejection with a retry-after hint instead of an unbounded \
             queue.")
  in
  let deadline =
    Arg.(
      value
      & opt int 50_000_000
      & info [ "deadline" ] ~docv:"FUEL"
          ~doc:
            "Default per-job fuel budget for jobs submitted with deadline 0; \
             a job that burns past its budget settles as a typed deadline \
             failure.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Additional attempts for a job that raises (deterministic \
             exponential backoff between attempts).")
  in
  let batch =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Jobs per scheduling pass; tenants are drained round-robin, one \
             job per tenant per pass.")
  in
  let outq_limit =
    Arg.(
      value
      & opt int (1024 * 1024)
      & info [ "outq-limit" ] ~docv:"BYTES"
          ~doc:
            "Per-connection write-queue cap; a slow reader's further \
             results are parked until it drains (backpressure), never \
             blocking other tenants.")
  in
  let fault =
    let open Tpro_serve.Server in
    Arg.(
      value
      & opt
          (enum
             [
               ("none", No_fault);
               ("torn-result", Torn_result_frame);
               ("drop-after-accept", Drop_after_accept);
               ("torn-journal-crash", Torn_journal_crash);
               ("spawn-failure", Spawn_failure);
             ])
          No_fault
      & info [ "fault" ]
          ~doc:
            "Inject one server-side fault (torn-result, drop-after-accept, \
             torn-journal-crash, spawn-failure) to exercise the recovery \
             paths.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign daemon: multi-tenant job streams over a \
          Unix-domain socket, journaled crash-safe, executed on one shared \
          supervised pool")
    Term.(
      const run_serve $ socket_arg $ journal $ resume $ jobs $ queue_max
      $ deadline $ retries $ batch $ outq_limit $ fault)

let client_cmd =
  let tenant =
    Arg.(
      value & opt string "default"
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Tenant name: the server's fairness and re-attach key.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print the server's counters and exit.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to drain and exit.")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Load-generator mode: submit $(b,--count) jobs of $(b,--kind) \
             and report throughput and latency percentiles.")
  in
  let count =
    Arg.(
      value & opt int 10000
      & info [ "count"; "n" ] ~docv:"N" ~doc:"Jobs to submit in bench mode.")
  in
  let kind =
    Arg.(
      value & opt string "spin:50"
      & info [ "kind" ] ~docv:"SPEC"
          ~doc:
            "Bench job kind: $(b,ping), $(b,spin:N), $(b,fuzz:SEED) or \
             $(b,topo:SEED).")
  in
  let deadline =
    Arg.(
      value & opt int 0
      & info [ "deadline" ] ~docv:"FUEL"
          ~doc:"Per-job fuel budget (0 = the server's default).")
  in
  let window =
    Arg.(
      value & opt int 64
      & info [ "window" ] ~docv:"N"
          ~doc:"Unacknowledged submissions in flight at once.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the bench report (BENCH_serve.json shape) to $(docv).")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE"
          ~doc:
            "Write every result, one wire payload line per job in \
             submission order, for bit-identity diffing between runs.")
  in
  let id_prefix =
    Arg.(
      value & opt string "job"
      & info [ "id-prefix" ] ~docv:"STR"
          ~doc:
            "Job-id prefix; ids are $(docv)-000000..  Ids are idempotency \
             keys — reusing them against a live journal replays cached \
             results instead of re-running.")
  in
  let specs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SPEC"
          ~doc:"Job specs to submit outside bench mode (same syntax as \
                $(b,--kind)).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit campaign jobs to a running daemon; survives server \
          restarts by reconnecting and resubmitting idempotent job ids")
    Term.(
      const run_client $ socket_arg $ tenant $ stats $ shutdown $ bench
      $ count $ kind $ deadline $ window $ json $ dump $ id_prefix $ specs)

let () =
  let info =
    Cmd.info "tpro" ~version:"1.8.0"
      ~doc:"Time protection: executable model, attacks and proofs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; exp_cmd; all_cmd; verify_cmd; prove_cmd; trace_cmd;
            protocol_cmd; matrix_cmd; fuzz_cmd; topo_cmd; calibrate_cmd;
            serve_cmd; client_cmd;
          ]))
