open Tpro_hw
open Tpro_kernel

let mk () =
  let mem = Mem.create ~n_frames:64 () in
  let alloc = Frame_alloc.create mem ~n_colours:4 in
  (mem, alloc, Kclone.boot alloc mem ~line_bits:6)

let test_boot_in_kernel_colour () =
  let _, alloc, img = mk () in
  List.iter
    (fun f ->
      Alcotest.(check int) "text frame colour" Frame_alloc.reserved_kernel_colour
        (Frame_alloc.colour_of_frame alloc f))
    (Kclone.text_frames img);
  List.iter
    (fun f ->
      Alcotest.(check int) "data frame colour" Frame_alloc.reserved_kernel_colour
        (Frame_alloc.colour_of_frame alloc f))
    (Kclone.data_frames img);
  Alcotest.(check int) "shared image owner" Cache.shared_owner
    (Kclone.owner img)

let test_paths_within_text () =
  let _, _, img = mk () in
  List.iter
    (fun kind ->
      let p = Kclone.path_of_kind kind in
      let addrs = Kclone.text_paddrs img ~line_bits:6 p in
      Alcotest.(check int)
        (kind ^ " path length")
        p.Kclone.n_lines (List.length addrs))
    Kclone.trap_kinds

let test_paths_disjoint () =
  let _, _, img = mk () in
  let all_kinds = Kclone.trap_kinds in
  List.iteri
    (fun i k1 ->
      List.iteri
        (fun j k2 ->
          if i < j then begin
            let a1 = Kclone.text_paddrs img ~line_bits:6 (Kclone.path_of_kind k1) in
            let a2 = Kclone.text_paddrs img ~line_bits:6 (Kclone.path_of_kind k2) in
            List.iter
              (fun a ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s and %s disjoint" k1 k2)
                  false (List.mem a a2))
              a1
          end)
        all_kinds)
    all_kinds

let test_unknown_kind () =
  Alcotest.check_raises "unknown trap kind"
    (Invalid_argument "Kclone.path_of_kind: unknown trap kind bogus") (fun () ->
      ignore (Kclone.path_of_kind "bogus"))

let test_clone_separate_text_shared_data () =
  let mem, alloc, shared = mk () in
  let clone =
    Kclone.clone alloc mem ~line_bits:6 ~shared ~colours:[ 2 ] ~owner:7
  in
  Alcotest.(check bool) "text frames differ" false (Kclone.same_text shared clone);
  Alcotest.(check (list int)) "data frames shared"
    (Kclone.data_frames shared) (Kclone.data_frames clone);
  Alcotest.(check int) "clone owner" 7 (Kclone.owner clone);
  List.iter
    (fun f ->
      Alcotest.(check int) "clone text colour" 2
        (Frame_alloc.colour_of_frame alloc f))
    (Kclone.text_frames clone)

let test_data_paddrs () =
  let _, _, img = mk () in
  let addrs = Kclone.data_paddrs img ~line_bits:6 in
  Alcotest.(check int) "all data lines" Kclone.data_lines (List.length addrs);
  (* consecutive lines are 64 bytes apart within a frame *)
  match addrs with
  | a :: b :: _ -> Alcotest.(check int) "line stride" 64 (b - a)
  | _ -> Alcotest.fail "expected at least two data lines"

let test_path_bounds_checked () =
  let _, _, img = mk () in
  Alcotest.check_raises "path outside text"
    (Invalid_argument "Kclone.text_paddrs: path outside kernel text")
    (fun () ->
      ignore
        (Kclone.text_paddrs img ~line_bits:6
           { Kclone.first_line = 60; n_lines = 10 }))

let suite =
  [
    Alcotest.test_case "boot in kernel colour" `Quick test_boot_in_kernel_colour;
    Alcotest.test_case "paths within text" `Quick test_paths_within_text;
    Alcotest.test_case "trap paths disjoint" `Quick test_paths_disjoint;
    Alcotest.test_case "unknown kind" `Quick test_unknown_kind;
    Alcotest.test_case "clone separates text, shares data" `Quick
      test_clone_separate_text_shared_data;
    Alcotest.test_case "data paddrs" `Quick test_data_paddrs;
    Alcotest.test_case "path bounds checked" `Quick test_path_bounds_checked;
  ]
