open Tpro_kernel

(* ------------------------- Irq ------------------------------------ *)

let test_irq_owner () =
  let t = Irq.create ~n_irqs:4 in
  Alcotest.(check int) "unassigned" (-1) (Irq.owner t 2);
  Irq.set_owner t ~irq:2 ~dom:5;
  Alcotest.(check int) "assigned" 5 (Irq.owner t 2)

let test_irq_pending_order () =
  let t = Irq.create ~n_irqs:4 in
  Irq.arm t ~irq:1 ~at:200;
  Irq.arm t ~irq:2 ~at:100;
  Alcotest.(check (option int)) "not yet due" None
    (Irq.take_pending t ~now:50 ~allowed:(fun _ -> true));
  Alcotest.(check (option int)) "earliest first" (Some 2)
    (Irq.take_pending t ~now:150 ~allowed:(fun _ -> true));
  Alcotest.(check (option int)) "second stays pending" (Some 1)
    (Irq.take_pending t ~now:300 ~allowed:(fun _ -> true));
  Alcotest.(check (option int)) "drained" None
    (Irq.take_pending t ~now:400 ~allowed:(fun _ -> true))

let test_irq_masking_defers () =
  let t = Irq.create ~n_irqs:4 in
  Irq.arm t ~irq:1 ~at:10;
  Alcotest.(check (option int)) "masked irq stays pending" None
    (Irq.take_pending t ~now:100 ~allowed:(fun _ -> false));
  Alcotest.(check int) "still armed" 1 (List.length (Irq.pending t));
  Alcotest.(check (option int)) "delivered when unmasked" (Some 1)
    (Irq.take_pending t ~now:100 ~allowed:(fun irq -> irq = 1))

let test_irq_bounds () =
  let t = Irq.create ~n_irqs:2 in
  Alcotest.check_raises "irq out of range"
    (Invalid_argument "Irq: irq out of range") (fun () ->
      Irq.arm t ~irq:2 ~at:0)

(* ------------------------- Ipc ------------------------------------ *)

let dummy_thread tid = Thread.create ~tid ~dom:0 ~code_vbase:0 [| Program.Halt |]

let test_ipc_queue_sender () =
  let t = Ipc.create ~n_endpoints:2 in
  let th = dummy_thread 1 in
  Alcotest.(check bool) "empty" true (Ipc.queued_sender t ~ep:0 = None);
  Ipc.queue_sender t ~ep:0 th ~msg:42;
  (match Ipc.queued_sender t ~ep:0 with
  | Some (th', msg) ->
    Alcotest.(check int) "thread id" 1 th'.Thread.tid;
    Alcotest.(check int) "message" 42 msg
  | None -> Alcotest.fail "sender should be queued");
  Ipc.clear_sender t ~ep:0;
  Alcotest.(check bool) "cleared" true (Ipc.queued_sender t ~ep:0 = None)

let test_ipc_busy_endpoint () =
  let t = Ipc.create ~n_endpoints:1 in
  Ipc.queue_receiver t ~ep:0 (dummy_thread 1);
  Alcotest.check_raises "second receiver rejected"
    (Invalid_argument "Ipc.queue_receiver: endpoint busy") (fun () ->
      Ipc.queue_receiver t ~ep:0 (dummy_thread 2))

let test_ipc_endpoint_bounds () =
  let t = Ipc.create ~n_endpoints:1 in
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Ipc: endpoint out of range") (fun () ->
      ignore (Ipc.queued_sender t ~ep:3))

(* ------------------------- Sched ---------------------------------- *)

let test_sched_cycle () =
  let s = Sched.create [| 3; 1; 4 |] in
  Alcotest.(check int) "starts at first" 3 (Sched.current s);
  Alcotest.(check int) "advance" 1 (Sched.advance s);
  Alcotest.(check int) "advance" 4 (Sched.advance s);
  Alcotest.(check int) "wraps" 3 (Sched.advance s)

let test_sched_empty () =
  Alcotest.check_raises "empty schedule"
    (Invalid_argument "Sched.create: empty schedule") (fun () ->
      ignore (Sched.create [||]))

(* Satellite: [Sched.make] validates orders at construction time with
   typed errors, instead of surfacing as array accesses deep inside a
   switch. *)
let test_sched_make_valid () =
  match Sched.make ~n_domains:5 [| 3; 1; 4 |] with
  | Error e -> Alcotest.failf "valid order rejected: %s" (Sched.error_to_string e)
  | Ok s ->
    Alcotest.(check int) "starts at first" 3 (Sched.current s);
    Alcotest.(check int) "advance" 1 (Sched.advance s)

let test_sched_make_empty () =
  match Sched.make ~n_domains:4 [||] with
  | Error Sched.Empty_order -> ()
  | Error e ->
    Alcotest.failf "wrong error for empty order: %s" (Sched.error_to_string e)
  | Ok _ -> Alcotest.fail "empty order accepted"

let test_sched_make_out_of_range () =
  (match Sched.make ~n_domains:3 [| 0; 3; 1 |] with
  | Error (Sched.Out_of_range { index; n_domains }) ->
    Alcotest.(check int) "offending index" 3 index;
    Alcotest.(check int) "domain count" 3 n_domains
  | Error e ->
    Alcotest.failf "wrong error for out-of-range: %s" (Sched.error_to_string e)
  | Ok _ -> Alcotest.fail "out-of-range index accepted");
  match Sched.make ~n_domains:3 [| -1 |] with
  | Error (Sched.Out_of_range { index = -1; n_domains = 3 }) -> ()
  | _ -> Alcotest.fail "negative index accepted"

let test_sched_make_copies () =
  let order = [| 0; 1; 2 |] in
  match Sched.make ~n_domains:3 order with
  | Error e -> Alcotest.failf "valid order rejected: %s" (Sched.error_to_string e)
  | Ok s ->
    order.(0) <- 9;
    Alcotest.(check int) "mutation of argument cannot corrupt the schedule" 0
      (Sched.current s)

(* QCheck: make's verdict always agrees with a direct check of the
   order, and an accepted schedule replays the order verbatim. *)
let prop_sched_make_agrees =
  QCheck.Test.make ~name:"make accepts exactly the in-range non-empty orders"
    ~count:500
    QCheck.(pair (int_range 1 8) (array (int_range (-2) 9)))
    (fun (n_domains, order) ->
      match Sched.make ~n_domains order with
      | Ok s ->
        Array.length order > 0
        && Array.for_all (fun d -> d >= 0 && d < n_domains) order
        && Sched.order s = order
      | Error Sched.Empty_order -> Array.length order = 0
      | Error (Sched.Out_of_range { index; n_domains = n }) ->
        n = n_domains && (index < 0 || index >= n_domains)
        && Array.exists (fun d -> d = index) order)

let test_sched_static_order () =
  (* the schedule never depends on anything dynamic: 10 rounds repeat
     exactly *)
  let s = Sched.create [| 0; 1 |] in
  let seq = List.init 10 (fun _ -> Sched.advance s) in
  Alcotest.(check (list int)) "strict alternation" [ 1; 0; 1; 0; 1; 0; 1; 0; 1; 0 ]
    seq

(* ------------------------- Event ---------------------------------- *)

let test_event_switch_duration () =
  let e =
    Event.Switch
      {
        core = 0;
        from_dom = 0;
        to_dom = 1;
        reason = Event.Timer;
        slice_start = 100;
        start = 150;
        finish = 400;
        flush_cycles = 30;
        padded = true;
        overrun = false;
      }
  in
  Alcotest.(check (option (pair int int))) "duration and slot" (Some (250, 300))
    (Event.switch_duration e);
  Alcotest.(check bool) "not an overrun" false (Event.is_overrun e)

let test_event_pp_smoke () =
  let s =
    Format.asprintf "%a" Event.pp
      (Event.Trap { core = 0; dom = 1; kind = "null"; start = 5; cycles = 10 })
  in
  Alcotest.(check bool) "pp output" true (String.length s > 5)

let suite =
  [
    Alcotest.test_case "irq owner" `Quick test_irq_owner;
    Alcotest.test_case "irq pending order" `Quick test_irq_pending_order;
    Alcotest.test_case "irq masking defers" `Quick test_irq_masking_defers;
    Alcotest.test_case "irq bounds" `Quick test_irq_bounds;
    Alcotest.test_case "ipc queue sender" `Quick test_ipc_queue_sender;
    Alcotest.test_case "ipc busy endpoint" `Quick test_ipc_busy_endpoint;
    Alcotest.test_case "ipc endpoint bounds" `Quick test_ipc_endpoint_bounds;
    Alcotest.test_case "sched cycle" `Quick test_sched_cycle;
    Alcotest.test_case "sched empty" `Quick test_sched_empty;
    Alcotest.test_case "sched make valid" `Quick test_sched_make_valid;
    Alcotest.test_case "sched make empty" `Quick test_sched_make_empty;
    Alcotest.test_case "sched make out of range" `Quick
      test_sched_make_out_of_range;
    Alcotest.test_case "sched make copies order" `Quick test_sched_make_copies;
    QCheck_alcotest.to_alcotest prop_sched_make_agrees;
    Alcotest.test_case "sched static order" `Quick test_sched_static_order;
    Alcotest.test_case "event switch duration" `Quick test_event_switch_duration;
    Alcotest.test_case "event pp smoke" `Quick test_event_pp_smoke;
  ]
