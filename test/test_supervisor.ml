(* The supervision layer's own guarantees, proved through the
   engine-level fault-injection matrix: every injected fault (task
   raises once/always, task hangs past its fuel budget, duplicate
   submission, torn checkpoint write, worker-spawn failure) must be
   detected and reported — never silently absorbed — and the recovery
   paths (retry, degrade-to-sequential, restart-from-scratch) must
   leave campaign output bit-identical to a run that never faulted. *)

open Tpro_engine

let sq ~fuel:_ x = (x * x) + 1

let results_testable =
  Alcotest.(list (result int (testable (Fmt.of_to_string Supervisor.task_error_to_string) ( = ))))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let with_tmp f =
  let path = Filename.temp_file "tpro-sup" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Basic supervised fan-out                                            *)

let test_run_basic () =
  Supervisor.with_supervisor ~domains:3 (fun sup ->
      let xs = List.init 50 Fun.id in
      let got = Supervisor.run sup ~key:Fun.id sq xs in
      Alcotest.check results_testable "all ok, input order"
        (List.map (fun x -> Ok ((x * x) + 1)) xs)
        got;
      let s = Supervisor.summary sup in
      Alcotest.(check int) "total" 50 s.Supervisor.total;
      Alcotest.(check int) "ok" 50 s.Supervisor.ok;
      Alcotest.(check int) "failed" 0 s.Supervisor.failed;
      Alcotest.(check bool) "not degraded" false s.Supervisor.degraded)

let test_sequential_matches_parallel () =
  let xs = List.init 40 Fun.id in
  let seq =
    Supervisor.with_supervisor ~domains:1 (fun sup ->
        Supervisor.run sup ~key:Fun.id sq xs)
  in
  let par =
    Supervisor.with_supervisor ~domains:4 (fun sup ->
        Supervisor.run sup ~chunk:4 ~key:Fun.id sq xs)
  in
  Alcotest.check results_testable "sequential == parallel" seq par

(* ------------------------------------------------------------------ *)
(* Fault matrix                                                        *)

let test_fault_raise_once_retried () =
  let xs = List.init 10 Fun.id in
  let clean =
    Supervisor.with_supervisor ~domains:2 (fun sup ->
        Supervisor.run sup ~key:Fun.id sq xs)
  in
  Supervisor.with_supervisor ~domains:2
    ~fault:(Supervisor.Raise_once { key = 3 })
    (fun sup ->
      let got = Supervisor.run sup ~key:Fun.id sq xs in
      Alcotest.check results_testable
        "retried result bit-identical to a faultless run" clean got;
      let s = Supervisor.summary sup in
      Alcotest.(check int) "exactly one task retried" 1 s.Supervisor.retried;
      Alcotest.(check int) "nothing failed" 0 s.Supervisor.failed;
      Alcotest.(check bool) "the absorbed fault left a warning" true
        (s.Supervisor.warnings <> []))

let test_fault_raise_always_settles () =
  Supervisor.with_supervisor ~domains:2 ~retries:2
    ~fault:(Supervisor.Raise_always { key = 1 })
    (fun sup ->
      let got = Supervisor.run sup ~key:Fun.id sq [ 0; 1; 2 ] in
      (match got with
      | [ Ok 1; Error (Supervisor.Task_raised r); Ok 5 ] ->
        Alcotest.(check int) "all attempts used" 3 r.attempts;
        Alcotest.(check int) "error names the key" 1 r.key
      | _ -> Alcotest.fail "expected exactly task 1 to fail, others ok");
      let s = Supervisor.summary sup in
      Alcotest.(check int) "one failure tallied" 1 s.Supervisor.failed;
      Alcotest.(check int) "others ok" 2 s.Supervisor.ok;
      Alcotest.(check bool) "failure reported in warnings" true
        (s.Supervisor.warnings <> []))

let test_fault_hang_tripped_by_watchdog () =
  Supervisor.with_supervisor ~domains:2 ~fuel:500
    ~fault:(Supervisor.Hang { key = 2 })
    (fun sup ->
      let got = Supervisor.run sup ~key:Fun.id sq [ 0; 1; 2; 3 ] in
      match got with
      | [ Ok _; Ok _; Error (Supervisor.Fuel_exhausted e); Ok _ ] ->
        Alcotest.(check int) "budget reported" 500 e.budget;
        Alcotest.(check int) "key reported" 2 e.key
      | _ -> Alcotest.fail "expected the hanging task to exhaust its fuel")

let test_fault_duplicate_submission () =
  Supervisor.with_supervisor ~domains:2
    ~fault:(Supervisor.Duplicate { key = 1 })
    (fun sup ->
      let got = Supervisor.run sup ~key:Fun.id sq [ 0; 1; 2 ] in
      Alcotest.check results_testable "real tasks unaffected"
        [ Ok 1; Ok 2; Ok 5 ] got;
      let s = Supervisor.summary sup in
      Alcotest.(check int) "duplicate detected" 1 s.Supervisor.duplicates;
      Alcotest.(check bool) "duplicate reported" true
        (s.Supervisor.warnings <> []))

let test_genuine_duplicate_keys_rejected () =
  Supervisor.with_supervisor ~domains:2 (fun sup ->
      let got =
        Supervisor.run sup ~key:(fun x -> x mod 3) sq [ 0; 1; 2; 3; 4; 5 ]
      in
      match got with
      | [ Ok 1; Ok 2; Ok 5; Error (Supervisor.Duplicate_submission a);
          Error (Supervisor.Duplicate_submission b);
          Error (Supervisor.Duplicate_submission c) ] ->
        Alcotest.(check (list int))
          "rejections name the colliding keys" [ 0; 1; 2 ]
          [ a.key; b.key; c.key ]
      | _ ->
        Alcotest.fail
          "first occurrence of each key must run; later ones must be rejected")

let test_fault_spawn_failure_degrades () =
  let xs = List.init 20 Fun.id in
  let clean =
    Supervisor.with_supervisor ~domains:1 (fun sup ->
        Supervisor.run sup ~key:Fun.id sq xs)
  in
  Supervisor.with_supervisor ~domains:4 ~fault:Supervisor.Spawn_failure
    (fun sup ->
      Alcotest.(check bool) "degraded to sequential" true
        (Supervisor.degraded sup);
      Alcotest.(check bool) "no pool in degraded mode" true
        (Supervisor.pool sup = None);
      let got = Supervisor.run sup ~key:Fun.id sq xs in
      Alcotest.check results_testable
        "degraded run returns the same results" clean got;
      let s = Supervisor.summary sup in
      Alcotest.(check bool) "summary flags degradation" true
        s.Supervisor.degraded;
      Alcotest.(check bool) "degradation carries a warning" true
        (List.exists
           (fun w ->
             let has_sub needle hay =
               let lh = String.length hay and ln = String.length needle in
               let rec go i =
                 i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
               in
               go 0
             in
             has_sub "sequential" w)
           s.Supervisor.warnings))

(* Retry backoff is a pure, capped exponential schedule; enabling it
   spaces attempts out but must not change a single output byte. *)
let test_backoff_schedule_pinned () =
  let d = Supervisor.backoff_delay ~base:0.05 ~cap:1.0 in
  Alcotest.(check (list (float 1e-9)))
    "capped exponential doubling"
    [ 0.05; 0.1; 0.2; 0.4; 0.8; 1.0; 1.0 ]
    (List.map d [ 1; 2; 3; 4; 5; 6; 7 ]);
  Alcotest.(check (float 1e-9)) "attempt 0 clamps to base" 0.05 (d 0)

let test_backoff_results_bit_identical () =
  let xs = List.init 10 Fun.id in
  let run ?backoff () =
    Supervisor.with_supervisor ~domains:2 ?backoff
      ~fault:(Supervisor.Raise_once { key = 4 })
      (fun sup ->
        let got = Supervisor.run sup ~key:Fun.id sq xs in
        (got, Supervisor.summary sup))
  in
  let plain, s_plain = run () in
  let backed, s_backed = run ~backoff:(0.001, 0.004) () in
  Alcotest.check results_testable
    "retried-with-backoff results bit-identical to no-backoff" plain backed;
  Alcotest.(check int) "both runs retried exactly once" s_plain.Supervisor.retried
    s_backed.Supervisor.retried;
  Alcotest.(check int) "one retry" 1 s_backed.Supervisor.retried

(* Satellite: the watchdog must also trip on a calibrated-sequential
   host (1-core container), where no worker domain exists and the hang
   burns fuel in the calling domain. *)
let test_hang_tripped_on_one_core_host () =
  let seq_host =
    {
      Calibrate.cores_detected = 1;
      recommended = 1;
      minor_heap_words = Calibrate.default_minor_heap_words;
      parallel_efficiency = 1.0;
      probe_note = "forced sequential for the 1-core watchdog test";
    }
  in
  Calibrate.with_override seq_host (fun () ->
      Supervisor.with_supervisor ~fuel:300
        ~fault:(Supervisor.Hang { key = 1 })
        (fun sup ->
          Alcotest.(check bool) "calibrated-sequential: no pool" true
            (Supervisor.pool sup = None);
          Alcotest.(check bool) "sequential is not degradation" false
            (Supervisor.degraded sup);
          let got = Supervisor.run sup ~key:Fun.id sq [ 0; 1; 2 ] in
          match got with
          | [ Ok 1; Error (Supervisor.Fuel_exhausted e); Ok 5 ] ->
            Alcotest.(check int) "budget reported" 300 e.budget;
            Alcotest.(check int) "key reported" 1 e.key
          | _ ->
            Alcotest.fail
              "the hanging task must exhaust its fuel on a 1-core host"))

let test_fuel_budget_enforced () =
  Supervisor.with_supervisor ~domains:1 ~fuel:10 (fun sup ->
      let burn ~fuel x =
        Supervisor.Fuel.burn ~amount:x fuel;
        x
      in
      match Supervisor.run sup ~key:Fun.id burn [ 5; 20 ] with
      | [ Ok 5; Error (Supervisor.Fuel_exhausted _) ] -> ()
      | _ -> Alcotest.fail "only the over-budget task may be cut off")

(* ------------------------------------------------------------------ *)
(* Checkpoint file integrity                                           *)

let payload = "kind test\nline two\ttabbed\nthird \\ line\n"

let check_load_error name path expect_pred =
  match Checkpoint.load ~path with
  | Ok _ -> Alcotest.failf "%s: damaged checkpoint loaded successfully" name
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: rejected as %s" name (Checkpoint.error_to_string e))
      true (expect_pred e)

let test_checkpoint_roundtrip () =
  with_tmp (fun path ->
      Checkpoint.save ~path payload;
      match Checkpoint.load ~path with
      | Ok p -> Alcotest.(check string) "payload round-trips" payload p
      | Error e ->
        Alcotest.failf "load failed: %s" (Checkpoint.error_to_string e));
  match Checkpoint.load ~path:"/nonexistent/tpro-checkpoint" with
  | Error (Checkpoint.Io _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "missing checkpoint must be an Io error"

let test_checkpoint_truncated () =
  with_tmp (fun path ->
      Checkpoint.save ~path payload;
      let raw = read_file path in
      write_file path (String.sub raw 0 (String.length raw - 4));
      check_load_error "truncated" path (function
        | Checkpoint.Truncated _ -> true
        | _ -> false))

let test_checkpoint_bad_crc () =
  with_tmp (fun path ->
      Checkpoint.save ~path payload;
      let raw = read_file path in
      let b = Bytes.of_string raw in
      let last = Bytes.length b - 2 in
      Bytes.set b last (if Bytes.get b last = 'x' then 'y' else 'x');
      write_file path (Bytes.to_string b);
      check_load_error "flipped byte" path (function
        | Checkpoint.Bad_crc _ -> true
        | _ -> false))

let test_checkpoint_stale_version () =
  with_tmp (fun path ->
      Checkpoint.save ~path payload;
      let raw = read_file path in
      let nl = String.index raw '\n' in
      let rest = String.sub raw nl (String.length raw - nl) in
      write_file path ("tpro-checkpoint 99" ^ rest);
      check_load_error "stale version" path (function
        | Checkpoint.Bad_version 99 -> true
        | _ -> false))

let test_checkpoint_bad_magic () =
  with_tmp (fun path ->
      write_file path "utter nonsense\n";
      check_load_error "bad magic" path (function
        | Checkpoint.Bad_magic -> true
        | _ -> false))

let test_fault_torn_checkpoint_rejected () =
  with_tmp (fun path ->
      Supervisor.with_supervisor ~domains:1
        ~fault:Supervisor.Torn_checkpoint (fun sup ->
          Supervisor.checkpoint_save sup ~path payload);
      check_load_error "torn write" path (function
        | Checkpoint.Truncated _ | Checkpoint.Bad_crc _ -> true
        | _ -> false))

let test_escape_roundtrip () =
  List.iter
    (fun s ->
      match Checkpoint.unescape (Checkpoint.escape s) with
      | Some s' -> Alcotest.(check string) "escape round-trip" s s'
      | None -> Alcotest.failf "escape produced malformed output for %S" s)
    [ ""; "plain"; "tab\there"; "new\nline"; "back\\slash"; "\\n\t\n\\" ];
  Alcotest.(check bool) "dangling escape rejected" true
    (Checkpoint.unescape "broken\\" = None);
  Alcotest.(check bool) "unknown escape rejected" true
    (Checkpoint.unescape "\\q" = None)

(* ------------------------------------------------------------------ *)
(* Table serialisation (the experiment sweep's checkpoint form)        *)

let test_table_serialise_roundtrip () =
  let nasty =
    {
      Time_protection.Table.id = "E99";
      title = "cells with\ttabs and\nnewlines";
      anchor = "Sect. \\ 0";
      headers = [ "a\tb"; "c" ];
      rows = [ [ "1\n2"; "3\\4" ]; [ ""; "tab\there" ] ];
      note = "round\ntrip";
    }
  in
  List.iter
    (fun t ->
      match Time_protection.Table.deserialise
              (Time_protection.Table.serialise t)
      with
      | Ok t' ->
        Alcotest.(check bool) "table round-trips exactly" true (t = t')
      | Error e -> Alcotest.failf "deserialise failed: %s" e)
    [ nasty; Time_protection.Experiments.e10_colours () ]

(* ------------------------------------------------------------------ *)
(* Campaign checkpoint/resume equivalence                              *)

let run_campaign ?checkpoint ?resume ~trials () =
  Supervisor.with_supervisor ~domains:2 (fun sup ->
      Tpro_fuzz.Driver.campaign ~sup ~mutant:Tpro_fuzz.Scenario.Drop_padding
        ?checkpoint ?resume ~checkpoint_every:2 ~seed:42 ~trials ())

let render_failures c =
  String.concat "\n---\n"
    (List.map
       (Format.asprintf "%a" Tpro_fuzz.Driver.pp_failure)
       c.Tpro_fuzz.Driver.failures)

let test_campaign_resume_bit_identical () =
  let uninterrupted = run_campaign ~trials:6 () in
  Alcotest.(check bool) "the mutant produces violations" true
    (uninterrupted.Tpro_fuzz.Driver.failures <> []);
  with_tmp (fun path ->
      Sys.remove path;
      let partial = run_campaign ~checkpoint:path ~trials:3 () in
      Alcotest.(check int) "partial run started fresh" 0
        partial.Tpro_fuzz.Driver.resumed_from;
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
      let resumed =
        run_campaign ~checkpoint:path ~resume:true ~trials:6 ()
      in
      Alcotest.(check int) "resumed from the last completed chunk" 3
        resumed.Tpro_fuzz.Driver.resumed_from;
      Alcotest.(check string)
        "resumed report byte-identical to uninterrupted"
        (render_failures uninterrupted)
        (render_failures resumed);
      Alcotest.(check bool) "resume decision noted" true
        (resumed.Tpro_fuzz.Driver.notes <> []))

let test_campaign_corrupt_checkpoint_restarts () =
  let fresh = run_campaign ~trials:4 () in
  with_tmp (fun path ->
      write_file path "this is not a checkpoint\n";
      let c = run_campaign ~checkpoint:path ~resume:true ~trials:4 () in
      Alcotest.(check int) "restarted from scratch" 0
        c.Tpro_fuzz.Driver.resumed_from;
      Alcotest.(check string) "clean restart reproduces the fresh run"
        (render_failures fresh) (render_failures c);
      Alcotest.(check bool) "rejection noted" true
        (List.exists
           (fun n ->
             let has_sub needle hay =
               let lh = String.length hay and ln = String.length needle in
               let rec go i =
                 i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
               in
               go 0
             in
             has_sub "rejected" n)
           c.Tpro_fuzz.Driver.notes))

let test_campaign_missing_checkpoint_starts_fresh () =
  with_tmp (fun path ->
      Sys.remove path;
      let c = run_campaign ~checkpoint:path ~resume:true ~trials:2 () in
      Alcotest.(check int) "no checkpoint means a fresh start" 0
        c.Tpro_fuzz.Driver.resumed_from;
      Alcotest.(check bool) "the fresh start is noted" true
        (c.Tpro_fuzz.Driver.notes <> []))

(* A checkpoint from a different campaign (other seed) must be
   rejected, not resumed into wrong state. *)
let test_campaign_mismatched_checkpoint_rejected () =
  with_tmp (fun path ->
      Sys.remove path;
      let _partial =
        Supervisor.with_supervisor ~domains:1 (fun sup ->
            Tpro_fuzz.Driver.campaign ~sup ~checkpoint:path ~seed:7 ~trials:2
              ())
      in
      let c =
        Supervisor.with_supervisor ~domains:1 (fun sup ->
            Tpro_fuzz.Driver.campaign ~sup ~checkpoint:path ~resume:true
              ~seed:8 ~trials:2 ())
      in
      Alcotest.(check int) "different seed restarts from scratch" 0
        c.Tpro_fuzz.Driver.resumed_from)

(* ------------------------------------------------------------------ *)
(* Supervised experiment sweep resume                                  *)

let test_sweep_resume_reuses_tables () =
  with_tmp (fun path ->
      Sys.remove path;
      let fresh =
        Supervisor.with_supervisor ~domains:1 (fun sup ->
            Time_protection.Experiments.run_supervised ~sup ~checkpoint:path
              ~only:[ "e10" ] ())
      in
      let resumed =
        Supervisor.with_supervisor ~domains:1 (fun sup ->
            Time_protection.Experiments.run_supervised ~sup ~checkpoint:path
              ~resume:true ~only:[ "e10" ] ())
      in
      Alcotest.(check int) "table reloaded, not recomputed" 1
        resumed.Time_protection.Experiments.sweep_resumed;
      match
        ( fresh.Time_protection.Experiments.tables,
          resumed.Time_protection.Experiments.tables )
      with
      | [ (_, Ok a) ], [ (_, Ok b) ] ->
        Alcotest.(check string) "re-rendered byte-identically"
          (Time_protection.Table.to_string a)
          (Time_protection.Table.to_string b);
        Alcotest.(check bool) "tables structurally equal" true (a = b)
      | _ -> Alcotest.fail "expected exactly one settled table per sweep")

let suite =
  [
    Alcotest.test_case "supervised fan-out: all ok, input order" `Quick
      test_run_basic;
    Alcotest.test_case "sequential == parallel" `Quick
      test_sequential_matches_parallel;
    Alcotest.test_case "fault: raise-once is retried bit-identically" `Quick
      test_fault_raise_once_retried;
    Alcotest.test_case "fault: raise-always settles as Task_raised" `Quick
      test_fault_raise_always_settles;
    Alcotest.test_case "fault: hang tripped by the fuel watchdog" `Quick
      test_fault_hang_tripped_by_watchdog;
    Alcotest.test_case "fault: duplicate submission detected" `Quick
      test_fault_duplicate_submission;
    Alcotest.test_case "genuine duplicate keys rejected" `Quick
      test_genuine_duplicate_keys_rejected;
    Alcotest.test_case "fault: spawn failure degrades to sequential" `Quick
      test_fault_spawn_failure_degrades;
    Alcotest.test_case "fuel budget enforced" `Quick test_fuel_budget_enforced;
    Alcotest.test_case "backoff: schedule pinned" `Quick
      test_backoff_schedule_pinned;
    Alcotest.test_case "backoff: retried results bit-identical" `Quick
      test_backoff_results_bit_identical;
    Alcotest.test_case "fault: hang tripped on a 1-core host" `Quick
      test_hang_tripped_on_one_core_host;
    Alcotest.test_case "checkpoint round-trip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint: truncation rejected" `Quick
      test_checkpoint_truncated;
    Alcotest.test_case "checkpoint: bad CRC rejected" `Quick
      test_checkpoint_bad_crc;
    Alcotest.test_case "checkpoint: stale version rejected" `Quick
      test_checkpoint_stale_version;
    Alcotest.test_case "checkpoint: bad magic rejected" `Quick
      test_checkpoint_bad_magic;
    Alcotest.test_case "fault: torn checkpoint write rejected on load" `Quick
      test_fault_torn_checkpoint_rejected;
    Alcotest.test_case "escape/unescape round-trip" `Quick
      test_escape_roundtrip;
    Alcotest.test_case "table serialise/deserialise exact round-trip" `Quick
      test_table_serialise_roundtrip;
    Alcotest.test_case "campaign: resume is bit-identical" `Quick
      test_campaign_resume_bit_identical;
    Alcotest.test_case "campaign: corrupt checkpoint restarts cleanly" `Quick
      test_campaign_corrupt_checkpoint_restarts;
    Alcotest.test_case "campaign: missing checkpoint starts fresh" `Quick
      test_campaign_missing_checkpoint_starts_fresh;
    Alcotest.test_case "campaign: mismatched checkpoint rejected" `Quick
      test_campaign_mismatched_checkpoint_rejected;
    Alcotest.test_case "sweep: resume reloads tables byte-identically" `Quick
      test_sweep_resume_reuses_tables;
  ]
