open Tpro_kernel
open Tpro_secmodel
open Time_protection

(* A reduced universe keeps the exhaustive tests quick: 4^2 = 16 programs
   under one seed. *)
let small_universe =
  {
    Exhaustive.hi_len = 2;
    hi_alphabet =
      [
        Program.Load 0x4000_0000;
        Program.Store 0x4000_0000;
        Program.Compute 7;
        Program.Syscall Program.Sys_null;
      ];
    seeds = [ 0 ];
  }

let build cfg ~hi_prog ~seed =
  Ni_scenario.build_with_program ~cfg ~seed ~hi_prog

let test_enumerate_complete () =
  let programs = Exhaustive.enumerate small_universe in
  Alcotest.(check int) "4^2 programs" 16 (List.length programs);
  Alcotest.(check int) "universe_size agrees" 16
    (Exhaustive.universe_size small_universe);
  Alcotest.(check int) "no duplicates" 16
    (List.length (List.sort_uniq compare programs));
  List.iter
    (fun p ->
      Alcotest.(check int) "length + halt" 3 (Array.length p);
      match p.(2) with
      | Program.Halt -> ()
      | _ -> Alcotest.fail "must end in Halt")
    programs

let test_exhaustive_full_holds () =
  let r = Exhaustive.check ~build:(build Presets.full) small_universe in
  Alcotest.(check int) "zero divergent programs" 0 r.Exhaustive.violations;
  Alcotest.(check int) "all executed" 16 r.Exhaustive.executions

let test_exhaustive_none_leaks () =
  let r = Exhaustive.check ~build:(build Presets.none) small_universe in
  Alcotest.(check bool) "most programs leak" true (r.Exhaustive.violations > 8);
  Alcotest.(check bool) "counter-example reported" true
    (r.Exhaustive.first_violation <> None)

let test_exhaustive_ablation_leaks () =
  (* the clone ablation must be caught even in the small universe: the
     alphabet contains a system call, whose kernel path is shared *)
  let u = { small_universe with Exhaustive.hi_len = 3 } in
  let r = Exhaustive.check ~build:(build Presets.without_clone) u in
  Alcotest.(check bool) "shared kernel text found by enumeration" true
    (r.Exhaustive.violations > 0)

let test_mutual_full_holds () =
  let c = Mutual.check ~seeds:[ 0 ] ~secret_values:[ 0; 1 ] ~cfg:Presets.full () in
  Alcotest.(check bool) "mutual NI holds" true c.Proofs.holds

let test_mutual_none_fails () =
  let c = Mutual.check ~seeds:[ 0 ] ~secret_values:[ 0; 1 ] ~cfg:Presets.none () in
  Alcotest.(check bool) "mutual NI violated" false c.Proofs.holds

let test_mutual_build_shape () =
  let k, observers = Mutual.build ~cfg:Presets.full ~seed:0 ~secrets:[| 0; 0; 0 |] in
  Alcotest.(check int) "three observers" Mutual.n_domains (Array.length observers);
  Alcotest.(check int) "three domains" 3 (List.length (Kernel.domains k));
  Alcotest.check_raises "secret count enforced"
    (Invalid_argument "Mutual.build: need one secret per domain") (fun () ->
      ignore (Mutual.build ~cfg:Presets.full ~seed:0 ~secrets:[| 1 |]))

let suite =
  [
    Alcotest.test_case "enumerate complete" `Quick test_enumerate_complete;
    Alcotest.test_case "exhaustive: full holds" `Slow test_exhaustive_full_holds;
    Alcotest.test_case "exhaustive: none leaks" `Slow test_exhaustive_none_leaks;
    Alcotest.test_case "exhaustive: ablation leaks" `Slow
      test_exhaustive_ablation_leaks;
    Alcotest.test_case "mutual: full holds" `Slow test_mutual_full_holds;
    Alcotest.test_case "mutual: none fails" `Slow test_mutual_none_fails;
    Alcotest.test_case "mutual: build shape" `Quick test_mutual_build_shape;
  ]
