open Tpro_hw
open Tpro_kernel
open Tpro_channel
open Time_protection

(* ------------------------- replacement policies ------------------- *)

let small = Cache.geometry ~sets:4 ~ways:2 ~line_bits:6 ()

let addr ~set ~tag = (tag lsl 8) lor (set lsl 6)

let test_fifo_evicts_oldest_fill () =
  let c = Cache.create ~replacement:Cache.Fifo small in
  let a0 = addr ~set:1 ~tag:1 and a1 = addr ~set:1 ~tag:2 in
  ignore (Cache.access c ~owner:0 ~write:false a0);
  ignore (Cache.access c ~owner:0 ~write:false a1);
  (* re-touching a0 must NOT save it under FIFO *)
  ignore (Cache.access c ~owner:0 ~write:false a0);
  ignore (Cache.access c ~owner:0 ~write:false (addr ~set:1 ~tag:3));
  Alcotest.(check bool) "oldest fill evicted despite recent touch" false
    (Cache.probe c a0);
  Alcotest.(check bool) "younger line survives" true (Cache.probe c a1)

let test_pseudo_random_deterministic () =
  let run () =
    let c = Cache.create ~replacement:(Cache.Pseudo_random 7) small in
    for i = 0 to 20 do
      ignore (Cache.access c ~owner:0 ~write:false (addr ~set:1 ~tag:i))
    done;
    Cache.digest c
  in
  Alcotest.(check int64) "same seed, same behaviour" (run ()) (run ())

let test_pseudo_random_set_local () =
  (* accesses to OTHER sets must not change victim choice in this set:
     the replacement state is set-local, as Case 1 requires *)
  let victim_with_noise noise =
    let c = Cache.create ~replacement:(Cache.Pseudo_random 7) small in
    for i = 0 to noise - 1 do
      ignore (Cache.access c ~owner:0 ~write:false (addr ~set:2 ~tag:i))
    done;
    ignore (Cache.access c ~owner:0 ~write:false (addr ~set:1 ~tag:1));
    ignore (Cache.access c ~owner:0 ~write:false (addr ~set:1 ~tag:2));
    ignore (Cache.access c ~owner:0 ~write:false (addr ~set:1 ~tag:3));
    (Cache.probe c (addr ~set:1 ~tag:1), Cache.probe c (addr ~set:1 ~tag:2))
  in
  Alcotest.(check (pair bool bool)) "victim independent of other sets"
    (victim_with_noise 0) (victim_with_noise 17)

let test_replacement_exposed () =
  let c = Cache.create ~replacement:Cache.Fifo small in
  Alcotest.(check bool) "policy recorded" true (Cache.replacement c = Cache.Fifo)

(* NI must hold under full TP for every replacement policy. *)
let test_ni_holds_under_all_policies () =
  List.iter
    (fun repl ->
      let build ~secret =
        let base = Ni_scenario.build ~cfg:Presets.full ~seed:0 ~secret in
        ignore base;
        (* rebuild with the policy in the machine config *)
        let machine_config =
          { (Ni_scenario.machine_config ~seed:0) with Machine.replacement = repl }
        in
        let k = Kernel.create ~machine_config Presets.full in
        let hi = Kernel.create_domain k ~slice:Ni_scenario.slice
            ~pad_cycles:Ni_scenario.pad () in
        let lo = Kernel.create_domain k ~slice:Ni_scenario.slice
            ~pad_cycles:Ni_scenario.pad () in
        Kernel.map_region k hi ~vbase:0x4000_0000 ~pages:32;
        Kernel.map_region k lo ~vbase:0x2000_0000 ~pages:4;
        Kernel.set_irq_owner k ~irq:1 ~dom:hi;
        ignore (Kernel.spawn k hi (Ni_scenario.hi_program ~secret));
        let obs = Kernel.spawn k lo Ni_scenario.observer in
        { Tpro_secmodel.Nonint.kernel = k; observers = [ obs ] }
      in
      let report =
        Tpro_secmodel.Nonint.two_run ~build ~secret1:0 ~secret2:3 ()
      in
      Alcotest.(check bool)
        (Format.asprintf "NI holds under %s replacement"
           (match repl with
           | Cache.Lru -> "LRU"
           | Cache.Fifo -> "FIFO"
           | Cache.Pseudo_random _ -> "pseudo-random"))
        true
        (Tpro_secmodel.Nonint.secure report))
    [ Cache.Lru; Cache.Fifo; Cache.Pseudo_random 99 ]

(* ------------------------- L2 ------------------------------------- *)

let l2_config =
  {
    Machine.default_config with
    Machine.l2_geom = Some (Cache.geometry ~sets:128 ~ways:4 ~line_bits:6 ());
  }

let ident vpn = Some vpn

let test_l2_between_l1_and_llc () =
  let m = Machine.create l2_config in
  let lat = Machine.lat m in
  let load v =
    match Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident ~pc:0 v with
    | Ok c -> c
    | Error `Fault -> Alcotest.fail "fault"
  in
  ignore (load 0x3000);
  (* evict from the 64-set L1 with a 4 KiB stride (same L1 set every
     time); in the 128-set L2 the same stride alternates between two
     sets, so the victim line survives there *)
  for i = 1 to 4 do
    ignore (load (0x3000 + (i * 4096)))
  done;
  let c = load 0x3000 in
  Alcotest.(check bool) "L1 miss, L2 hit" true
    (c > lat.Latency.l1_hit && c < lat.Latency.llc_hit)

let test_l2_flushed_with_core () =
  let m = Machine.create l2_config in
  ignore (Machine.store m ~core:0 ~asid:1 ~domain:0 ~translate:ident ~pc:0 0x3000);
  let l2 = match Machine.l2 m ~core:0 with Some c -> c | None -> Alcotest.fail "no l2" in
  (* push the dirty line out of L1 into L2 *)
  for i = 1 to 4 do
    ignore (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident ~pc:0
              (0x3000 + (i * 16384)))
  done;
  Alcotest.(check bool) "dirty line reached L2" true (Cache.dirty_count l2 > 0);
  ignore (Machine.flush_core_local m ~core:0);
  Alcotest.(check int) "L2 flushed" 0 (Cache.valid_count l2)

let test_l2_flush_cost_counts_l2_dirt () =
  let cost_with_l2_dirt dirty =
    let m = Machine.create l2_config in
    for i = 0 to dirty - 1 do
      ignore (Machine.store m ~core:0 ~asid:1 ~domain:0 ~translate:ident ~pc:0
                (0x10000 + (i * 64)))
    done;
    Machine.flush_core_local m ~core:0
  in
  Alcotest.(check bool) "more dirt, slower flush" true
    (cost_with_l2_dirt 64 > cost_with_l2_dirt 0)

let test_no_l2_by_default () =
  let m = Machine.create Machine.default_config in
  Alcotest.(check bool) "default has no L2" true (Machine.l2 m ~core:0 = None)

(* ------------------------- SMT ------------------------------------ *)

let smt_config = { Machine.default_config with Machine.n_cores = 2; smt = true }

let test_smt_shares_private_state () =
  let m = Machine.create smt_config in
  ignore (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident ~pc:0 0x5000);
  Alcotest.(check bool) "sibling thread sees the line" true
    (Cache.probe (Machine.l1d m ~core:1) 0x5000);
  (* but the clocks are separate *)
  ignore (Machine.compute m ~core:0 ~cycles:100);
  Alcotest.(check bool) "clocks independent" true
    (Machine.now m ~core:0 > Machine.now m ~core:1)

let test_no_sharing_without_smt () =
  let m = Machine.create { smt_config with Machine.smt = false } in
  ignore (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident ~pc:0 0x5000);
  Alcotest.(check bool) "separate L1s" false
    (Cache.probe (Machine.l1d m ~core:1) 0x5000)

let test_smt_channel_defies_full_tp () =
  let cap smt =
    (Attack.measure ~seeds:[ 0; 1 ] (Smt_channel.scenario ~smt ())
       ~cfg:Presets.full ())
      .Attack.capacity_bits
  in
  Alcotest.(check bool) "open across hyperthreads under full TP" true
    (cap true > 0.5);
  Alcotest.(check bool) "closed across physical cores" true (cap false < 0.01)

(* ------------------------- MBA throttling ------------------------- *)

let test_throttle_caps_rate () =
  let b =
    Interconnect.create ~service:8
      ~mode:(Interconnect.Throttled { window = 1000; max_per_window = 2; n_domains = 2 })
      ()
  in
  let l1 = Interconnect.request b ~domain:0 ~now:10 in
  let l2 = Interconnect.request b ~domain:0 ~now:20 in
  let l3 = Interconnect.request b ~domain:0 ~now:30 in
  Alcotest.(check bool) "first two within the window are cheap" true
    (l1 <= 16 && l2 <= 16);
  Alcotest.(check bool) "third deferred to the next window" true (l3 > 900)

let test_throttle_still_leaks () =
  (* the queue stays shared: a busy sibling still delays us *)
  let mk () =
    Interconnect.create ~service:64
      ~mode:(Interconnect.Throttled { window = 1000; max_per_window = 4; n_domains = 2 })
      ()
  in
  let quiet = mk () and busy = mk () in
  ignore (Interconnect.request busy ~domain:0 ~now:100);
  ignore (Interconnect.request busy ~domain:0 ~now:101);
  let l_quiet = Interconnect.request quiet ~domain:1 ~now:102 in
  let l_busy = Interconnect.request busy ~domain:1 ~now:102 in
  Alcotest.(check bool) "cross-domain interference survives throttling" true
    (l_busy > l_quiet)

let suite =
  [
    Alcotest.test_case "FIFO evicts oldest fill" `Quick test_fifo_evicts_oldest_fill;
    Alcotest.test_case "pseudo-random deterministic" `Quick
      test_pseudo_random_deterministic;
    Alcotest.test_case "pseudo-random set-local" `Quick
      test_pseudo_random_set_local;
    Alcotest.test_case "replacement exposed" `Quick test_replacement_exposed;
    Alcotest.test_case "NI holds under all policies" `Slow
      test_ni_holds_under_all_policies;
    Alcotest.test_case "L2 between L1 and LLC" `Quick test_l2_between_l1_and_llc;
    Alcotest.test_case "L2 flushed with core" `Quick test_l2_flushed_with_core;
    Alcotest.test_case "L2 dirt raises flush cost" `Quick
      test_l2_flush_cost_counts_l2_dirt;
    Alcotest.test_case "no L2 by default" `Quick test_no_l2_by_default;
    Alcotest.test_case "SMT shares private state" `Quick
      test_smt_shares_private_state;
    Alcotest.test_case "no sharing without SMT" `Quick test_no_sharing_without_smt;
    Alcotest.test_case "SMT channel defies full TP" `Slow
      test_smt_channel_defies_full_tp;
    Alcotest.test_case "throttle caps rate" `Quick test_throttle_caps_rate;
    Alcotest.test_case "throttle still leaks" `Quick test_throttle_still_leaks;
  ]
