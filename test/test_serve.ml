(* The serve layer's robustness contract, driven by the server-side
   fault matrix: framing survives torn/corrupt/garbage streams, the
   journal survives torn tails, and the daemon+client pair survives
   disconnects, overload, slow readers, injected crashes and a real
   SIGKILL — with the delivered results bit-identical to an
   uninterrupted run.  In-process tests run the daemon in a separate
   domain on a temp-dir socket; the final tests drive the installed
   binary like CI's kill-and-resume job does. *)

open Tpro_serve
module Frame = Tpro_engine.Frame
module Checkpoint = Tpro_engine.Checkpoint
module Fuel = Tpro_engine.Supervisor.Fuel

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let counter = ref 0

let fresh_dir () =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpro-serve-%d-%d" (Unix.getpid ()) !counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ());
  dir

(* ------------------------------------------------------------------ *)
(* Frame                                                                *)

let m = "test-magic"
let v = 3

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match Frame.decode ~magic:m ~version:v (Frame.encode ~magic:m ~version:v payload) with
      | Ok got -> Alcotest.(check string) "round-trip" payload got
      | Error e -> Alcotest.failf "decode failed: %s" (Frame.error_to_string e))
    [ ""; "x"; "line one\nline two\n"; String.init 256 Char.chr ]

let test_frame_decode_prefix_stream () =
  let payloads = [ "alpha"; ""; "gamma\nwith\nnewlines" ] in
  let stream =
    String.concat "" (List.map (Frame.encode ~magic:m ~version:v) payloads)
  in
  let rec collect pos acc =
    if pos >= String.length stream then List.rev acc
    else
      match Frame.decode_prefix ~magic:m ~version:v ~pos stream with
      | `Frame (p, next) -> collect next (p :: acc)
      | `Incomplete -> Alcotest.fail "unexpected incomplete"
      | `Error e -> Alcotest.failf "decode error: %s" (Frame.error_to_string e)
  in
  Alcotest.(check (list string)) "all frames recovered" payloads (collect 0 [])

let test_frame_decoder_byte_at_a_time () =
  let payloads = [ "first"; "second"; "third" ] in
  let stream =
    String.concat "" (List.map (Frame.encode ~magic:m ~version:v) payloads)
  in
  let dec = Frame.Decoder.create ~magic:m ~version:v () in
  let got = ref [] in
  String.iter
    (fun c ->
      Frame.Decoder.feed dec (String.make 1 c);
      match Frame.Decoder.pop dec with
      | Ok (Some p) -> got := p :: !got
      | Ok None -> ()
      | Error e -> Alcotest.failf "decoder error: %s" (Frame.error_to_string e))
    stream;
  Alcotest.(check (list string)) "byte-fed frames in order" payloads
    (List.rev !got);
  Alcotest.(check bool) "nothing pending at a frame boundary" false
    (Frame.Decoder.pending dec)

let test_frame_decoder_torn_is_pending () =
  let dec = Frame.Decoder.create ~magic:m ~version:v () in
  Frame.Decoder.feed dec (Frame.encode_torn ~magic:m ~version:v "payload-bytes");
  (match Frame.Decoder.pop dec with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "torn frame decoded as complete"
  | Error e ->
    Alcotest.failf "torn tail must read as incomplete, got %s"
      (Frame.error_to_string e));
  Alcotest.(check bool) "pending bytes flag the mid-frame EOF" true
    (Frame.Decoder.pending dec)

let test_frame_decoder_corrupt_is_sticky () =
  let frame = Frame.encode ~magic:m ~version:v "corrupt-me" in
  let bad = Bytes.of_string frame in
  Bytes.set bad (Bytes.length bad - 1) '!';
  let dec = Frame.Decoder.create ~magic:m ~version:v () in
  Frame.Decoder.feed dec (Bytes.to_string bad);
  (match Frame.Decoder.pop dec with
  | Error (Frame.Bad_crc _) -> ()
  | _ -> Alcotest.fail "corrupted payload must fail its CRC");
  Frame.Decoder.feed dec (Frame.encode ~magic:m ~version:v "good");
  match Frame.Decoder.pop dec with
  | Error (Frame.Bad_crc _) -> ()
  | _ -> Alcotest.fail "decoder errors must be sticky"

let test_frame_decoder_garbage_and_oversized () =
  let dec = Frame.Decoder.create ~magic:m ~version:v () in
  Frame.Decoder.feed dec (String.make 300 'g');
  (match Frame.Decoder.pop dec with
  | Error Frame.Bad_magic -> ()
  | _ -> Alcotest.fail "a long newline-free prefix is garbage, not a header");
  let dec = Frame.Decoder.create ~max_payload:8 ~magic:m ~version:v () in
  Frame.Decoder.feed dec (Frame.encode ~magic:m ~version:v "123456789");
  (match Frame.Decoder.pop dec with
  | Error (Frame.Oversized { limit = 8; got = 9 }) -> ()
  | _ -> Alcotest.fail "over-limit frames must be rejected before buffering");
  let dec = Frame.Decoder.create ~magic:m ~version:v () in
  Frame.Decoder.feed dec (Frame.encode ~magic:m ~version:(v + 1) "x");
  match Frame.Decoder.pop dec with
  | Error (Frame.Bad_version got) -> Alcotest.(check int) "version" (v + 1) got
  | _ -> Alcotest.fail "wrong version must be typed"

(* ------------------------------------------------------------------ *)
(* Checkpoint golden fixture: the Frame extraction must keep the
   on-disk checkpoint format byte-identical.                            *)

let golden_payload =
  "kind golden-fixture\nline two\ttabbed\nback\\slash\nseed 42\n"

let golden_path = Filename.concat "fixtures" "checkpoint_golden.ckpt"

let test_checkpoint_golden_bytes () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "now.ckpt" in
  Checkpoint.save ~path golden_payload;
  Alcotest.(check string)
    "checkpoint bytes identical to the committed golden file"
    (read_file golden_path) (read_file path);
  (match Checkpoint.load ~path:golden_path with
  | Ok p -> Alcotest.(check string) "golden file loads" golden_payload p
  | Error e ->
    Alcotest.failf "golden fixture unreadable: %s"
      (Checkpoint.error_to_string e));
  (* the pid-suffixed temporary never survives a completed save *)
  Alcotest.(check (list string)) "no temporary left behind" [ "now.ckpt" ]
    (Array.to_list (Sys.readdir dir));
  Checkpoint.fsync_dir dir;
  Checkpoint.fsync_dir "/nonexistent-directory-for-fsync"

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                        *)

let test_wire_request_roundtrip () =
  let reqs =
    [
      Wire.Hello "tenant-a";
      Wire.Submit { Job.id = "j-1"; deadline = 1234; kind = Job.Ping };
      Wire.Submit
        {
          Job.id = "j-2";
          deadline = 0;
          kind =
            Job.Topo
              {
                seed = 7;
                idx = 3;
                max_domains = 5;
                max_cores = 2;
                mutant = Tpro_fuzz.Scenario.Skip_flush;
              };
        };
      Wire.Submit
        {
          Job.id = "j-3";
          deadline = 9;
          kind = Job.Prove { preset = "full"; seed = 1; secrets = [ 0; 3 ] };
        };
      Wire.Submit
        { Job.id = "j-4"; deadline = 9; kind = Job.Table { id = "e2"; seeds = [] } };
      Wire.Ping;
      Wire.Get_stats;
      Wire.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Wire.request_of_payload (Wire.request_to_payload r) with
      | Ok got ->
        Alcotest.(check bool)
          (Printf.sprintf "request round-trip: %s" (Wire.request_to_payload r))
          true (got = r)
      | Error e -> Alcotest.failf "request rejected: %s" e)
    reqs

let test_wire_response_roundtrip () =
  let multiline = "table e2\nrow 1\t2\t3\nrow 4\t5\t6\nback\\slash" in
  let resps =
    [
      Wire.Welcome 1;
      Wire.Accepted "j-1";
      Wire.Busy { id = "j-9"; retry_after_ms = 250; queued = 4096 };
      Wire.Result { id = "j-1"; outcome = Ok multiline };
      Wire.Result
        { id = "j-2"; outcome = Error (Wire.Deadline, "fuel budget 100") };
      Wire.Result
        { id = "j-3"; outcome = Error (Wire.Raised, "boom\nwith newline") };
      Wire.Result { id = "j-4"; outcome = Error (Wire.Rejected, "no such id") };
      Wire.Pong;
      Wire.Stats_reply [ ("accepted", "10"); ("completed", "9") ];
      Wire.Error_msg "bad request: nope";
      Wire.Bye;
    ]
  in
  List.iter
    (fun r ->
      match Wire.response_of_payload (Wire.response_to_payload r) with
      | Ok got ->
        Alcotest.(check bool)
          (Printf.sprintf "response round-trip: %s"
             (String.sub (Wire.response_to_payload r) 0
                (min 30 (String.length (Wire.response_to_payload r)))))
          true (got = r)
      | Error e -> Alcotest.failf "response rejected: %s" e)
    resps

let test_wire_rejects_malformed () =
  List.iter
    (fun payload ->
      match Wire.request_of_payload payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed request accepted: %s" payload)
    [ "frobnicate"; "hello"; "hello two tokens"; "submit j-1 noint ping";
      "submit j-1 -5 ping"; "submit bad\tid 0 ping" ];
  List.iter
    (fun payload ->
      match Wire.response_of_payload payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed response accepted: %s" payload)
    [ "nope"; "busy j 1"; "result j ok \\q"; "result j failed wat detail";
      "welcome x" ]

(* ------------------------------------------------------------------ *)
(* Job                                                                  *)

let test_job_kind_roundtrip () =
  let kinds =
    [
      Job.Ping;
      Job.Spin 500;
      Job.Fuzz { seed = 11; idx = 42; mutant = Tpro_fuzz.Scenario.Miscolour };
      Job.Topo
        {
          seed = 2;
          idx = 9;
          max_domains = 8;
          max_cores = 4;
          mutant = Tpro_fuzz.Scenario.No_mutant;
        };
      Job.Prove { preset = "flush+pad"; seed = 3; secrets = [ 1; 2; 5 ] };
      Job.Prove { preset = "full"; seed = 0; secrets = [] };
      Job.Table { id = "e5"; seeds = [ 0; 1 ] };
    ]
  in
  List.iter
    (fun k ->
      match Job.kind_of_string (Job.kind_to_string k) with
      | Ok got ->
        Alcotest.(check bool)
          (Printf.sprintf "kind round-trip: %s" (Job.kind_to_string k))
          true (got = k)
      | Error e -> Alcotest.failf "kind rejected: %s" e)
    kinds

let test_job_execute_and_deadline () =
  let unlimited () = Fuel.make None in
  (match Job.execute ~fuel:(unlimited ()) Job.Ping with
  | Ok "pong" -> ()
  | _ -> Alcotest.fail "ping must pong");
  let spin1 = Job.execute ~fuel:(unlimited ()) (Job.Spin 100) in
  let spin2 = Job.execute ~fuel:(unlimited ()) (Job.Spin 100) in
  Alcotest.(check bool) "spin is deterministic" true (spin1 = spin2);
  (match
     Job.execute ~fuel:(unlimited ())
       (Job.Prove { preset = "no-such-preset"; seed = 0; secrets = [] })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown preset must be rejected");
  (match
     Job.execute ~fuel:(unlimited ()) (Job.Table { id = "e99"; seeds = [] })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown experiment must be rejected");
  (* a deadline gauge cuts a runaway spin off mid-flight *)
  match Job.execute ~fuel:(Fuel.make (Some 50)) (Job.Spin 10_000) with
  | exception Fuel.Out_of_fuel { budget = 50 } -> ()
  | _ -> Alcotest.fail "the deadline gauge must trip inside the spin"

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)

let sample_records =
  [
    Journal.Accepted
      {
        job = { Job.id = "a-1"; deadline = 100; kind = Job.Spin 7 };
        tenant = "ta";
      };
    Journal.Accepted
      {
        job =
          {
            Job.id = "a-2";
            deadline = 0;
            kind = Job.Fuzz { seed = 1; idx = 2; mutant = Tpro_fuzz.Scenario.No_mutant };
          };
        tenant = "tb";
      };
    Journal.Done { id = "a-1"; outcome = Ok "spun 7 (0)" };
    Journal.Done
      { id = "a-2"; outcome = Error (Wire.Deadline, "budget 9 exhausted") };
  ]

let test_journal_roundtrip () =
  let path = Filename.concat (fresh_dir ()) "j.bin" in
  let j, r0 = Journal.open_ ~path ~resume:false in
  Alcotest.(check int) "fresh journal is empty" 0 (List.length r0.Journal.records);
  List.iter (Journal.append j) sample_records;
  Journal.sync j;
  Journal.close j;
  let j2, r = Journal.open_ ~path ~resume:true in
  Journal.close j2;
  Alcotest.(check bool) "no damage" false r.Journal.dropped;
  Alcotest.(check bool) "records replayed in order" true
    (r.Journal.records = sample_records)

let test_journal_torn_tail_recovery () =
  let path = Filename.concat (fresh_dir ()) "j.bin" in
  let j, _ = Journal.open_ ~path ~resume:false in
  List.iter (Journal.append j) sample_records;
  Journal.append_torn j (Journal.Done { id = "a-9"; outcome = Ok "never-lands" });
  Journal.close j;
  let j2, r = Journal.open_ ~path ~resume:true in
  Alcotest.(check bool) "tear detected and dropped" true r.Journal.dropped;
  Alcotest.(check bool) "note explains the damage" true
    (List.exists
       (fun n -> String.length n > 0 && r.Journal.dropped)
       r.Journal.notes);
  Alcotest.(check bool) "valid prefix survives" true
    (r.Journal.records = sample_records);
  (* the file was truncated back to the valid prefix: appending after
     recovery yields a clean journal *)
  Journal.append j2 (Journal.Done { id = "a-3"; outcome = Ok "post-recovery" });
  Journal.sync j2;
  Journal.close j2;
  let j3, r3 = Journal.open_ ~path ~resume:true in
  Journal.close j3;
  Alcotest.(check bool) "clean after recovery + append" false r3.Journal.dropped;
  Alcotest.(check int) "prefix plus the new record" 5
    (List.length r3.Journal.records)

let test_journal_fresh_open_truncates () =
  let path = Filename.concat (fresh_dir ()) "j.bin" in
  let j, _ = Journal.open_ ~path ~resume:false in
  List.iter (Journal.append j) sample_records;
  Journal.close j;
  let j2, r = Journal.open_ ~path ~resume:false in
  Journal.close j2;
  Alcotest.(check int) "non-resume open starts a fresh campaign" 0
    (List.length r.Journal.records);
  Alcotest.(check int) "file truncated" 0
    (String.length (read_file path))

(* ------------------------------------------------------------------ *)
(* In-process server end-to-end                                         *)

let with_server ?(tweak = fun c -> c) f =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let journal = Filename.concat dir "j.bin" in
  let cfg =
    tweak
      {
        (Server.default_config ~socket) with
        journal = Some journal;
        domains = Some 1;
      }
  in
  let ready = Atomic.make false in
  let srv =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  let t0 = Unix.gettimeofday () in
  while (not (Atomic.get ready)) && Unix.gettimeofday () -. t0 < 10. do
    Unix.sleepf 0.002
  done;
  let out =
    try f ~socket ~journal
    with e ->
      (try ignore (Client.shutdown_server ~socket) with _ -> ());
      ignore (Domain.join srv);
      raise e
  in
  (match Client.shutdown_server ~socket with
  | Ok () -> ()
  | Error _ -> ());
  (out, Domain.join srv)

let jobs_of_kinds prefix kinds =
  List.mapi
    (fun i kind ->
      { Job.id = Printf.sprintf "%s-%03d" prefix i; deadline = 0; kind })
    kinds

let stat kvs k =
  match List.assoc_opt k kvs with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "stats reply lacks %s" k

let test_serve_end_to_end () =
  let kinds =
    [
      Job.Ping;
      Job.Spin 100;
      Job.Fuzz { seed = 3; idx = 1; mutant = Tpro_fuzz.Scenario.No_mutant };
      Job.Prove { preset = "no-such-preset"; seed = 0; secrets = [] };
    ]
  in
  let (report, kvs), stats =
    with_server (fun ~socket ~journal:_ ->
        let report =
          match
            Client.run_jobs ~socket ~tenant:"t0" (jobs_of_kinds "e2e" kinds)
          with
          | Ok r -> r
          | Error e -> Alcotest.failf "run_jobs failed: %s" e
        in
        let kvs =
          match Client.server_stats ~socket with
          | Ok kvs -> kvs
          | Error e -> Alcotest.failf "stats failed: %s" e
        in
        (report, kvs))
  in
  let expect kind =
    match Job.execute ~fuel:(Fuel.make None) kind with
    | Ok p -> Ok p
    | Error e -> Error e
  in
  List.iteri
    (fun i (id, outcome) ->
      Alcotest.(check string) "ids in submission order"
        (Printf.sprintf "e2e-%03d" i) id;
      match (outcome, expect (List.nth kinds i)) with
      | Ok got, Ok want ->
        Alcotest.(check string) "served result identical to direct execution"
          want got
      | Error (Wire.Rejected, detail), Error want ->
        Alcotest.(check string) "rejection carries the job's own error" want
          detail
      | _ -> Alcotest.failf "unexpected outcome for %s" id)
    report.Client.results;
  Alcotest.(check int) "stats: accepted" 4 (stat kvs "accepted");
  Alcotest.(check int) "stats: completed" 4 (stat kvs "completed");
  Alcotest.(check int) "stats: failed counts the rejection" 1 (stat kvs "failed");
  Alcotest.(check int) "server stats agree" 4 stats.Server.accepted;
  Alcotest.(check int) "nothing recovered on a fresh journal" 0
    stats.Server.recovered_jobs

let test_serve_deadline_cuts_hung_job () =
  let jobs =
    [
      { Job.id = "hung-0"; deadline = 200; kind = Job.Spin 1_000_000 };
      { Job.id = "hung-1"; deadline = 0; kind = Job.Spin 50 };
    ]
  in
  let report, stats =
    with_server (fun ~socket ~journal:_ ->
        match Client.run_jobs ~socket ~tenant:"t0" jobs with
        | Ok r -> r
        | Error e -> Alcotest.failf "run_jobs failed: %s" e)
  in
  (match report.Client.results with
  | [ (_, Error (Wire.Deadline, detail)); (_, Ok _) ] ->
    Alcotest.(check bool) "detail names the budget" true
      (String.length detail > 0)
  | _ -> Alcotest.fail "the runaway job must fail Deadline; the other runs");
  Alcotest.(check int) "one failure tallied" 1 stats.Server.failed

let test_serve_idempotent_resubmission () =
  let jobs = jobs_of_kinds "idem" [ Job.Spin 64; Job.Ping ] in
  let (first, second), stats =
    with_server (fun ~socket ~journal:_ ->
        let run () =
          match Client.run_jobs ~socket ~tenant:"t0" jobs with
          | Ok r -> r.Client.results
          | Error e -> Alcotest.failf "run_jobs failed: %s" e
        in
        let first = run () in
        let second = run () in
        (first, second))
  in
  Alcotest.(check bool) "resubmitted ids replay identical results" true
    (first = second);
  Alcotest.(check int) "executed once, not twice" 2 stats.Server.executed;
  Alcotest.(check bool) "idempotent hits recorded" true
    (stats.Server.idempotent_hits >= 2)

let test_serve_busy_overload_typed () =
  let jobs = jobs_of_kinds "busy" (List.init 12 (fun _ -> Job.Spin 50_000)) in
  let report, stats =
    with_server
      ~tweak:(fun c -> { c with Server.queue_max = 2; batch = 1 })
      (fun ~socket ~journal:_ ->
        match Client.run_jobs ~socket ~tenant:"t0" ~window:12 jobs with
        | Ok r -> r
        | Error e -> Alcotest.failf "overload must not fail the run: %s" e)
  in
  Alcotest.(check int) "every job completed despite overload" 12
    (List.length report.Client.results);
  Alcotest.(check bool) "all ok" true
    (List.for_all (fun (_, o) -> Result.is_ok o) report.Client.results);
  Alcotest.(check bool) "typed busy rejections were issued" true
    (stats.Server.busy_rejections > 0);
  Alcotest.(check bool) "client retried after the hint" true
    (report.Client.busy_retries > 0)

let test_serve_two_tenants_fair () =
  let heavy = jobs_of_kinds "heavy" (List.init 60 (fun _ -> Job.Spin 200_000)) in
  let light = jobs_of_kinds "light" (List.init 5 (fun _ -> Job.Spin 200_000)) in
  let (ra, rb), _stats =
    with_server
      ~tweak:(fun c -> { c with Server.batch = 4 })
      (fun ~socket ~journal:_ ->
        let da =
          Domain.spawn (fun () ->
              Client.run_jobs ~socket ~tenant:"heavy" ~window:64 heavy)
        in
        Unix.sleepf 0.05;
        let db =
          Domain.spawn (fun () ->
              Client.run_jobs ~socket ~tenant:"light" ~window:8 light)
        in
        (Domain.join da, Domain.join db))
  in
  match (ra, rb) with
  | Ok ra, Ok rb ->
    Alcotest.(check int) "heavy tenant completed" 60
      (List.length ra.Client.results);
    Alcotest.(check int) "light tenant completed" 5
      (List.length rb.Client.results);
    (* round-robin: the light tenant's five jobs interleave with the
       heavy backlog instead of waiting behind all sixty *)
    Alcotest.(check bool)
      (Printf.sprintf "light (%.3fs) finishes well before heavy (%.3fs)"
         rb.Client.duration ra.Client.duration)
      true
      (rb.Client.duration < ra.Client.duration *. 0.75)
  | Error e, _ | _, Error e -> Alcotest.failf "tenant run failed: %s" e

(* A slow reader: submits jobs and then refuses to read its socket.
   Its results park behind the per-connection write cap; a second
   tenant's campaign must run to completion meanwhile. *)
let test_serve_slow_reader_backpressure () =
  let n_slow = 20 in
  let (), _stats =
    with_server
      ~tweak:(fun c -> { c with Server.outq_limit = 1024 })
      (fun ~socket ~journal:_ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket);
        let send r =
          let s = Wire.encode_request r in
          ignore (Unix.write_substring fd s 0 (String.length s))
        in
        send (Wire.Hello "slow");
        for i = 0 to n_slow - 1 do
          send
            (Wire.Submit
               {
                 Job.id = Printf.sprintf "slow-%03d" i;
                 deadline = 0;
                 kind = Job.Spin 4000;
               })
        done;
        (* do not read; let results pile up against the cap *)
        Unix.sleepf 0.2;
        (* the other tenant must be unaffected *)
        (match
           Client.run_jobs ~socket ~tenant:"nimble"
             (jobs_of_kinds "nimble" (List.init 5 (fun _ -> Job.Spin 100)))
         with
        | Ok r ->
          Alcotest.(check int) "nimble tenant ran past the slow reader" 5
            (List.length r.Client.results)
        | Error e -> Alcotest.failf "nimble tenant stalled: %s" e);
        (* now drain: everything parked must still arrive, in order *)
        let dec = Wire.decoder () in
        let buf = Bytes.create 65536 in
        let got = ref 0 in
        let t0 = Unix.gettimeofday () in
        while !got < n_slow && Unix.gettimeofday () -. t0 < 20. do
          (match Frame.Decoder.pop dec with
          | Ok (Some payload) -> (
            match Wire.response_of_payload payload with
            | Ok (Wire.Result _) -> incr got
            | Ok _ -> ()
            | Error e -> Alcotest.failf "bad payload while draining: %s" e)
          | Ok None -> (
            match Unix.select [ fd ] [] [] 5. with
            | [], _, _ -> Alcotest.fail "server stopped delivering parked results"
            | _ ->
              let n = Unix.read fd buf 0 (Bytes.length buf) in
              if n = 0 then Alcotest.fail "server closed the slow connection"
              else Frame.Decoder.feed dec (Bytes.sub_string buf 0 n))
          | Error e ->
            Alcotest.failf "stream corrupt while draining: %s"
              (Frame.error_to_string e))
        done;
        Alcotest.(check int) "every parked result delivered" n_slow !got;
        Unix.close fd)
  in
  ()

let test_serve_fault_torn_result_recovered () =
  let jobs = jobs_of_kinds "torn" (List.init 5 (fun _ -> Job.Spin 128)) in
  let report, stats =
    with_server
      ~tweak:(fun c -> { c with Server.fault = Server.Torn_result_frame })
      (fun ~socket ~journal:_ ->
        match Client.run_jobs ~socket ~tenant:"t0" jobs with
        | Ok r -> r
        | Error e -> Alcotest.failf "client must recover from the tear: %s" e)
  in
  Alcotest.(check int) "all results despite the torn frame" 5
    (List.length report.Client.results);
  Alcotest.(check bool) "recovery took a reconnect" true
    (report.Client.reconnects >= 1);
  Alcotest.(check bool) "server noted the injected tear" true
    (List.exists (fun n -> String.length n > 0) stats.Server.notes)

let test_serve_fault_drop_after_accept_recovered () =
  let jobs = jobs_of_kinds "drop" (List.init 5 (fun _ -> Job.Spin 128)) in
  let report, _stats =
    with_server
      ~tweak:(fun c -> { c with Server.fault = Server.Drop_after_accept })
      (fun ~socket ~journal:_ ->
        match Client.run_jobs ~socket ~tenant:"t0" jobs with
        | Ok r -> r
        | Error e -> Alcotest.failf "client must survive the disconnect: %s" e)
  in
  Alcotest.(check int) "all results despite the mid-job disconnect" 5
    (List.length report.Client.results);
  Alcotest.(check bool) "recovery took a reconnect" true
    (report.Client.reconnects >= 1)

let test_serve_fault_spawn_failure_degrades () =
  let jobs = jobs_of_kinds "spawn" (List.init 4 (fun _ -> Job.Spin 64)) in
  let report, stats =
    with_server
      ~tweak:(fun c ->
        { c with Server.fault = Server.Spawn_failure; domains = Some 4 })
      (fun ~socket ~journal:_ ->
        match Client.run_jobs ~socket ~tenant:"t0" jobs with
        | Ok r -> r
        | Error e -> Alcotest.failf "degraded server must still serve: %s" e)
  in
  Alcotest.(check int) "all jobs served sequentially" 4
    (List.length report.Client.results);
  Alcotest.(check bool) "degradation reported" true stats.Server.degraded

(* Torn-journal crash: the first completion record is written torn and
   the daemon stops cold.  A resumed daemon must drop the tear, re-run
   the affected job, and the client (which never saw a result) finishes
   with results bit-identical to direct execution. *)
let test_serve_torn_journal_crash_then_resume () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let journal = Filename.concat dir "j.bin" in
  let jobs = jobs_of_kinds "crash" (List.init 6 (fun _ -> Job.Spin 777)) in
  let base =
    {
      (Server.default_config ~socket) with
      journal = Some journal;
      domains = Some 1;
    }
  in
  let ready = Atomic.make false in
  let srv1 =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          { base with Server.fault = Server.Torn_journal_crash })
  in
  let t0 = Unix.gettimeofday () in
  while (not (Atomic.get ready)) && Unix.gettimeofday () -. t0 < 10. do
    Unix.sleepf 0.002
  done;
  let client =
    Domain.spawn (fun () ->
        Client.run_jobs ~socket ~tenant:"t0" ~op_timeout:5. jobs)
  in
  let stats1 = Domain.join srv1 in
  Alcotest.(check bool) "first daemon died to the injected crash" true
    (List.exists
       (fun n -> String.length n > 0)
       stats1.Server.notes);
  Alcotest.(check int) "crash delivered nothing" 0 stats1.Server.completed;
  let ready2 = Atomic.make false in
  let srv2 =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready2 true)
          { base with Server.resume = true })
  in
  let report =
    match Domain.join client with
    | Ok r -> r
    | Error e -> Alcotest.failf "client lost the campaign: %s" e
  in
  (match Client.shutdown_server ~socket with Ok () -> () | Error _ -> ());
  let stats2 = Domain.join srv2 in
  let want =
    match Job.execute ~fuel:(Fuel.make None) (Job.Spin 777) with
    | Ok p -> p
    | Error e -> Alcotest.failf "direct execution failed: %s" e
  in
  Alcotest.(check int) "all six results" 6 (List.length report.Client.results);
  List.iter
    (fun (_, o) ->
      match o with
      | Ok got ->
        Alcotest.(check string)
          "post-crash results bit-identical to direct execution" want got
      | Error _ -> Alcotest.fail "no job may be lost to the crash")
    report.Client.results;
  Alcotest.(check bool) "resume re-queued the journaled jobs" true
    (stats2.Server.recovered_jobs >= 1);
  Alcotest.(check bool) "the torn record was dropped with a note" true
    (List.exists (fun n -> String.length n > 0) stats2.Server.notes)

(* ------------------------------------------------------------------ *)
(* Process-level kill-and-resume, driving the installed binary          *)

let tpro = Filename.concat (Filename.concat ".." "bin") "tpro.exe"

let devnull_fd () = Unix.openfile Filename.null [ Unix.O_WRONLY ] 0o644

let spawn args =
  let null = devnull_fd () in
  let pid =
    Unix.create_process tpro
      (Array.of_list (tpro :: args))
      Unix.stdin null null
  in
  Unix.close null;
  pid

let wait_for_socket socket =
  let t0 = Unix.gettimeofday () in
  while (not (Sys.file_exists socket)) && Unix.gettimeofday () -. t0 < 10. do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "daemon socket appeared" true (Sys.file_exists socket)

(* the daemon may still be starting (or restarting over a stale socket
   file, where connect says refused rather than noent): keep trying *)
let shutdown_when_up socket =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match Client.shutdown_server ~socket with
    | Ok () -> ()
    | Error e ->
      if Unix.gettimeofday () -. t0 > 15. then
        Alcotest.failf "shutdown never reached the daemon: %s" e
      else (
        Unix.sleepf 0.05;
        go ())
  in
  go ()

let test_kill_and_resume_binary () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "kr.sock" in
  let journal = Filename.concat dir "kr.bin" in
  let dump = Filename.concat dir "kr.dump" in
  let ref_socket = Filename.concat dir "ref.sock" in
  let ref_journal = Filename.concat dir "ref.bin" in
  let ref_dump = Filename.concat dir "ref.dump" in
  let n = 3000 in
  let client_args sock out =
    [
      "client"; "--socket"; sock; "--tenant"; "bench"; "--bench"; "-n";
      string_of_int n; "--kind"; "spin:20"; "--dump"; out;
    ]
  in
  (* reference: uninterrupted run *)
  let ref_srv =
    spawn [ "serve"; "--socket"; ref_socket; "--journal"; ref_journal; "-j"; "2" ]
  in
  wait_for_socket ref_socket;
  let ref_cli = spawn (client_args ref_socket ref_dump) in
  let _, ref_cli_status = Unix.waitpid [] ref_cli in
  Alcotest.(check bool) "reference client exits 0" true
    (ref_cli_status = Unix.WEXITED 0);
  shutdown_when_up ref_socket;
  ignore (Unix.waitpid [] ref_srv);
  (* the run under test: SIGKILL mid-burst, restart with --resume *)
  let srv1 =
    spawn [ "serve"; "--socket"; socket; "--journal"; journal; "-j"; "2" ]
  in
  wait_for_socket socket;
  let cli = spawn (client_args socket dump) in
  Unix.sleepf 0.08;
  Unix.kill srv1 Sys.sigkill;
  ignore (Unix.waitpid [] srv1);
  Unix.sleepf 0.1;
  let srv2 =
    spawn
      [
        "serve"; "--socket"; socket; "--journal"; journal; "--resume"; "-j"; "2";
      ]
  in
  let _, cli_status = Unix.waitpid [] cli in
  Alcotest.(check bool) "client finished the burst across the kill (exit 0)"
    true
    (cli_status = Unix.WEXITED 0);
  shutdown_when_up socket;
  let _, srv2_status = Unix.waitpid [] srv2 in
  Alcotest.(check bool) "resumed daemon exits 0" true
    (srv2_status = Unix.WEXITED 0);
  (* zero lost, zero duplicated, bit-identical *)
  let dump_lines path =
    String.split_on_char '\n' (String.trim (read_file path))
  in
  let killed = dump_lines dump in
  Alcotest.(check int) "zero jobs lost across the kill" n (List.length killed);
  let uniq = List.sort_uniq compare killed in
  Alcotest.(check int) "zero duplicated results" n (List.length uniq);
  Alcotest.(check string)
    "dump bit-identical to the uninterrupted reference run"
    (read_file ref_dump) (read_file dump)

let suite =
  [
    Alcotest.test_case "frame: round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: multi-frame stream" `Quick
      test_frame_decode_prefix_stream;
    Alcotest.test_case "frame: decoder fed byte-at-a-time" `Quick
      test_frame_decoder_byte_at_a_time;
    Alcotest.test_case "frame: torn tail reads as pending" `Quick
      test_frame_decoder_torn_is_pending;
    Alcotest.test_case "frame: corrupt stream error is sticky" `Quick
      test_frame_decoder_corrupt_is_sticky;
    Alcotest.test_case "frame: garbage, oversized, wrong version" `Quick
      test_frame_decoder_garbage_and_oversized;
    Alcotest.test_case "checkpoint: golden fixture byte-identical" `Quick
      test_checkpoint_golden_bytes;
    Alcotest.test_case "wire: request round-trip" `Quick
      test_wire_request_roundtrip;
    Alcotest.test_case "wire: response round-trip" `Quick
      test_wire_response_roundtrip;
    Alcotest.test_case "wire: malformed rejected" `Quick
      test_wire_rejects_malformed;
    Alcotest.test_case "job: kind round-trip" `Quick test_job_kind_roundtrip;
    Alcotest.test_case "job: execution and deadline gauge" `Quick
      test_job_execute_and_deadline;
    Alcotest.test_case "journal: round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal: torn tail dropped and truncated" `Quick
      test_journal_torn_tail_recovery;
    Alcotest.test_case "journal: fresh open truncates" `Quick
      test_journal_fresh_open_truncates;
    Alcotest.test_case "serve: end-to-end campaign" `Quick test_serve_end_to_end;
    Alcotest.test_case "serve: deadline cuts a hung job" `Quick
      test_serve_deadline_cuts_hung_job;
    Alcotest.test_case "serve: idempotent resubmission" `Quick
      test_serve_idempotent_resubmission;
    Alcotest.test_case "serve: overload is typed busy, not a hang" `Quick
      test_serve_busy_overload_typed;
    Alcotest.test_case "serve: two tenants, round-robin fairness" `Quick
      test_serve_two_tenants_fair;
    Alcotest.test_case "serve: slow reader parks, never stalls others" `Quick
      test_serve_slow_reader_backpressure;
    Alcotest.test_case "serve: fault - torn result frame recovered" `Quick
      test_serve_fault_torn_result_recovered;
    Alcotest.test_case "serve: fault - drop after accept recovered" `Quick
      test_serve_fault_drop_after_accept_recovered;
    Alcotest.test_case "serve: fault - spawn failure degrades" `Quick
      test_serve_fault_spawn_failure_degrades;
    Alcotest.test_case "serve: fault - torn journal crash, then resume" `Quick
      test_serve_torn_journal_crash_then_resume;
    Alcotest.test_case "serve: SIGKILL mid-burst, resume, bit-identical" `Quick
      test_kill_and_resume_binary;
  ]
