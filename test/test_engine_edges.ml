open Tpro_hw
open Tpro_kernel

(* Edge cases of the kernel execution engine. *)

let small_machine =
  {
    Machine.default_config with
    Machine.n_frames = 512;
    llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
  }

let boot cfg = Kernel.create ~machine_config:small_machine cfg

let test_intra_domain_round_robin () =
  (* two threads of one domain interleave without domain switches *)
  let k = boot Kernel.config_full in
  let d = Kernel.create_domain k ~slice:1_000_000 ~pad_cycles:0 () in
  let a = Kernel.spawn k d (Array.make 10 (Program.Compute 5)) in
  let b = Kernel.spawn k d (Array.make 10 (Program.Compute 5)) in
  (* step a few times: both threads must make progress *)
  for _ = 1 to 10 do
    ignore (Kernel.step k)
  done;
  Alcotest.(check bool) "both progressed" true (a.Thread.pc > 0 && b.Thread.pc > 0);
  Alcotest.(check bool) "no switch happened" true
    (not
       (List.exists
          (function Event.Switch _ -> true | _ -> false)
          (Kernel.events k)))

let test_cross_core_ipc () =
  let k =
    Kernel.create
      ~machine_config:{ small_machine with Machine.n_cores = 2 }
      Kernel.config_full
  in
  let d0 = Kernel.create_domain k ~core:0 ~slice:10_000 ~pad_cycles:100 () in
  let d1 = Kernel.create_domain k ~core:1 ~slice:10_000 ~pad_cycles:100 () in
  ignore
    (Kernel.spawn k d0
       [| Program.Syscall (Program.Sys_send { ep = 0; msg = 77 }); Program.Halt |]);
  let rx =
    Kernel.spawn k d1
      [| Program.Compute 2_000;
         Program.Syscall (Program.Sys_recv { ep = 0 });
         Program.Halt |]
  in
  Kernel.run k;
  Alcotest.(check bool) "message crossed cores" true
    (List.mem (Event.Recv 77) (Thread.observations rx))

let test_colour_exhaustion () =
  (* 4 colours, one reserved for the kernel: a fourth 1-colour domain
     cannot be created *)
  let k = boot Kernel.config_full in
  for _ = 1 to 3 do
    ignore (Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 ())
  done;
  Alcotest.check_raises "out of colours"
    (Failure "Kernel.create_domain: out of page colours") (fun () ->
      ignore (Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 ()))

let test_store_fault () =
  let k = boot Kernel.config_none in
  let d = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  let th = Kernel.spawn k d [| Program.Store 0x6000_0000; Program.Halt |] in
  Kernel.run k;
  Alcotest.(check bool) "store to unmapped memory faults" true
    (th.Thread.state = Thread.Halted
    && List.exists
         (function Event.Fault _ -> true | _ -> false)
         (Kernel.events k))

let test_run_respects_max_steps () =
  let k = boot Kernel.config_none in
  let d = Kernel.create_domain k ~slice:1_000_000 ~pad_cycles:0 () in
  let th = Kernel.spawn k d (Array.make 1_000 (Program.Compute 1)) in
  Kernel.run ~max_steps:10 k;
  Alcotest.(check bool) "stopped early" true (th.Thread.pc <= 10)

let test_deadlock_detected () =
  (* both threads block on receives that can never be satisfied: the
     engine must stop rather than idle-switch forever *)
  let k = boot Kernel.config_none in
  let d0 = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  let d1 = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  ignore
    (Kernel.spawn k d0
       [| Program.Syscall (Program.Sys_recv { ep = 0 }); Program.Halt |]);
  ignore
    (Kernel.spawn k d1
       [| Program.Syscall (Program.Sys_recv { ep = 1 }); Program.Halt |]);
  Kernel.run ~max_steps:100_000 k;
  Alcotest.(check bool) "engine quiesced" false (Kernel.step k)

let test_accessors () =
  let k = boot Kernel.config_full in
  let d = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  Alcotest.(check int) "line bits" 6 (Kernel.line_bits k);
  Alcotest.(check int) "page bits" 12 (Kernel.page_bits k);
  Alcotest.(check int) "colours" 4 (Kernel.n_colours k);
  Alcotest.(check int) "current domain" d.Domain.did
    (Kernel.current_domain k ~core:0).Domain.did;
  Alcotest.(check (option int)) "unmapped vaddr" None
    (Kernel.vaddr_to_paddr k d 0x7777_0000)

let test_single_domain_slice_rollover () =
  (* a sole domain with an armed future irq: the slice must roll forward
     so the interrupt is eventually delivered *)
  let k = boot Kernel.config_none in
  let d = Kernel.create_domain k ~slice:2_000 ~pad_cycles:0 () in
  Kernel.set_irq_owner k ~irq:1 ~dom:d;
  ignore
    (Kernel.spawn k d
       [| Program.Syscall (Program.Sys_arm_irq { irq = 1; delay = 30_000 });
          Program.Halt |]);
  Kernel.run ~max_steps:10_000 k;
  Alcotest.(check bool) "irq delivered after idle rollover" true
    (List.exists
       (function Event.Irq_handled _ -> true | _ -> false)
       (Kernel.events k))

let test_machine_digest_shared_stable () =
  let m = Machine.create small_machine in
  let d0 = Machine.digest_shared m in
  ignore (Machine.compute m ~core:0 ~cycles:100);
  Alcotest.(check int64) "compute does not disturb shared state" d0
    (Machine.digest_shared m);
  ignore
    (Machine.load m ~core:0 ~asid:1 ~domain:0
       ~translate:(fun v -> Some v)
       ~pc:0 0x9000);
  Alcotest.(check bool) "a memory access does" true
    (d0 <> Machine.digest_shared m)

let test_machine_wait_until () =
  let m = Machine.create small_machine in
  ignore (Machine.compute m ~core:0 ~cycles:50);
  Alcotest.(check int) "waited" 50 (Machine.wait_until m ~core:0 100);
  Alcotest.(check int) "no backwards wait" 0 (Machine.wait_until m ~core:0 10);
  Alcotest.(check int) "clock at deadline" 100 (Machine.now m ~core:0)

let test_fetch_fault_on_unmapped_code () =
  let k = boot Kernel.config_none in
  let d = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  let th = Kernel.spawn k d [| Program.Compute 5; Program.Halt |] in
  (* sabotage: unmap the code page to force a fetch fault *)
  Domain.unmap_page d ~vpn:(th.Thread.code_vbase lsr 12);
  Kernel.run k;
  Alcotest.(check bool) "fetch fault halts the thread" true
    (th.Thread.state = Thread.Halted);
  Alcotest.(check bool) "fault recorded" true
    (List.exists
       (function Event.Fault _ -> true | _ -> false)
       (Kernel.events k))

let suite =
  [
    Alcotest.test_case "intra-domain round robin" `Quick
      test_intra_domain_round_robin;
    Alcotest.test_case "cross-core IPC" `Quick test_cross_core_ipc;
    Alcotest.test_case "colour exhaustion" `Quick test_colour_exhaustion;
    Alcotest.test_case "store fault" `Quick test_store_fault;
    Alcotest.test_case "run respects max_steps" `Quick test_run_respects_max_steps;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "single-domain slice rollover" `Quick
      test_single_domain_slice_rollover;
    Alcotest.test_case "digest_shared stability" `Quick
      test_machine_digest_shared_stable;
    Alcotest.test_case "machine wait_until" `Quick test_machine_wait_until;
    Alcotest.test_case "fetch fault on unmapped code" `Quick
      test_fetch_fault_on_unmapped_code;
  ]
