(* The parallel trial engine: Pool semantics, and the determinism
   guarantee that fanning trials out over domains never changes a
   reported outcome. *)

open Tpro_engine

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)

let test_map_ordering () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int))
        "results in input order"
        (List.map (fun x -> (x * x) + 1) xs)
        (Pool.map pool (fun x -> (x * x) + 1) xs))

let test_map_empty () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (list int)) "empty input" []
        (Pool.map pool (fun x -> x) []))

let test_pool_of_one_is_sequential () =
  let pool = Pool.create ~domains:1 () in
  let order = ref [] in
  let xs = [ 5; 3; 9; 1 ] in
  let ys =
    Pool.map pool
      (fun x ->
        order := x :: !order;
        x * 2)
      xs
  in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "same results as List.map" (List.map (( * ) 2) xs) ys;
  Alcotest.(check (list int))
    "executed left to right, in the calling domain" xs (List.rev !order)

let test_exceptions_propagate () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "raises the submitted exception" (Boom 3)
        (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x = 3 then raise (Boom x) else x)
               [ 1; 2; 3; 4; 5 ])))

let test_lowest_index_exception_wins () =
  (* several elements fail; the propagated exception is deterministically
     the one a sequential left-to-right map would have hit first *)
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "lowest-indexed failure" (Boom 2) (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
               [ 1; 2; 3; 4; 5; 6 ])))

let test_pool_reuse_and_shutdown () =
  let pool = Pool.create ~domains:3 () in
  let a = Pool.map pool succ [ 1; 2; 3 ] in
  let b = Pool.map pool pred [ 1; 2; 3 ] in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (* a shut-down pool still maps, sequentially *)
  let c = Pool.map pool succ [ 10; 20 ] in
  Alcotest.(check (list int)) "first map" [ 2; 3; 4 ] a;
  Alcotest.(check (list int)) "second map" [ 0; 1; 2 ] b;
  Alcotest.(check (list int)) "after shutdown" [ 11; 21 ] c

(* Regression (supervision work): map_chunks on a shut-down pool must
   keep both halves of the contract — run sequentially in the calling
   domain honouring ~chunk boundaries, and re-raise the lowest-indexed
   failure even when a failure in a later chunk executes first within
   its batch. *)
let test_map_chunks_after_shutdown () =
  let pool = Pool.create ~domains:3 () in
  Pool.shutdown pool;
  let order = ref [] in
  let ys =
    Pool.map_chunks pool ~chunk:4
      (fun x ->
        order := x :: !order;
        x * 3)
      (List.init 10 Fun.id)
  in
  Alcotest.(check (list int))
    "sequential fallback maps in order"
    (List.init 10 (fun i -> i * 3))
    ys;
  Alcotest.(check (list int))
    "executed left to right in the calling domain"
    (List.init 10 Fun.id) (List.rev !order);
  Alcotest.check_raises "lowest-indexed failure re-raised" (Boom 3)
    (fun () ->
      ignore
        (Pool.map_chunks pool ~chunk:2
           (fun x -> if x >= 3 then raise (Boom x) else x)
           [ 0; 1; 2; 3; 4; 5; 6; 7 ]))

let test_parallel_sum () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 500 (fun i -> i) in
      let squares = Pool.map pool (fun x -> x * x) xs in
      Alcotest.(check int) "sum of squares"
        (List.fold_left (fun a x -> a + (x * x)) 0 xs)
        (List.fold_left ( + ) 0 squares))

let test_nested_map () =
  (* a job that itself maps on the same pool must not deadlock *)
  Pool.with_pool ~domains:3 (fun pool ->
      let rows =
        Pool.map pool
          (fun r -> Pool.map pool (fun c -> (r * 10) + c) [ 0; 1; 2 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list (list int)))
        "nested results"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
        rows)

(* ------------------------------------------------------------------ *)
(* Determinism: measure_par == measure, bit for bit                    *)

let check_outcome_equal name (a : Tpro_channel.Attack.outcome)
    (b : Tpro_channel.Attack.outcome) =
  Alcotest.(check (list (pair int int)))
    (name ^ ": samples") a.Tpro_channel.Attack.samples
    b.Tpro_channel.Attack.samples;
  Alcotest.(check bool)
    (name ^ ": capacity bit-identical") true
    (Int64.bits_of_float a.Tpro_channel.Attack.capacity_bits
    = Int64.bits_of_float b.Tpro_channel.Attack.capacity_bits);
  Alcotest.(check int)
    (name ^ ": distinct outputs") a.Tpro_channel.Attack.distinct_outputs
    b.Tpro_channel.Attack.distinct_outputs

let presets =
  Time_protection.Presets.standard @ Time_protection.Presets.ablations

let test_measure_par_every_preset () =
  let scenario = Tpro_channel.Cache_channel.l1_scenario () in
  let seeds = [ 0; 1 ] in
  List.iter
    (fun (name, cfg) ->
      let seq = Tpro_channel.Attack.measure ~seeds scenario ~cfg () in
      let par =
        Tpro_channel.Attack.measure_par ~seeds ~domains:4 scenario ~cfg ()
      in
      check_outcome_equal name seq par)
    presets

let test_measure_par_shared_pool () =
  (* reusing one pool across scenarios and configs changes nothing *)
  let seeds = [ 0 ] in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun scenario ->
          List.iter
            (fun (name, cfg) ->
              let seq = Tpro_channel.Attack.measure ~seeds scenario ~cfg () in
              let par =
                Tpro_channel.Attack.measure_par ~seeds ~pool scenario ~cfg ()
              in
              check_outcome_equal name seq par)
            Time_protection.Presets.standard)
        [
          Tpro_channel.Cache_channel.llc_scenario ();
          Tpro_channel.Tlb_channel.scenario ();
        ])

let test_experiment_table_par () =
  (* a full experiment table through by_id: pool vs. no pool *)
  match Time_protection.Experiments.by_id "e2" with
  | None -> Alcotest.fail "e2 missing"
  | Some f ->
    let seeds = [ 0; 1 ] in
    let seq = f ~seeds () in
    let par =
      Pool.with_pool ~domains:4 (fun pool -> f ~seeds ~pool ())
    in
    Alcotest.(check bool) "table identical" true (seq = par)

(* ------------------------------------------------------------------ *)
(* Exhaustive sweep: check_par == check                                *)

let small_universe =
  let open Tpro_secmodel.Exhaustive in
  {
    hi_len = 2;
    hi_alphabet =
      (match default_universe.hi_alphabet with
      | a :: b :: c :: _ -> [ a; b; c ]
      | l -> l);
    seeds = [ 0 ];
  }

let exhaustive_result_testable =
  Alcotest.testable
    (fun ppf (r : Tpro_secmodel.Exhaustive.result) ->
      Format.fprintf ppf "{programs=%d; executions=%d; violations=%d; first=%s}"
        r.Tpro_secmodel.Exhaustive.programs r.Tpro_secmodel.Exhaustive.executions
        r.Tpro_secmodel.Exhaustive.violations
        (Option.value ~default:"-" r.Tpro_secmodel.Exhaustive.first_violation))
    ( = )

let exhaustive_build ~cfg ~hi_prog ~seed =
  Time_protection.Ni_scenario.build_with_program ~cfg ~seed ~hi_prog

let test_check_par_matches_check () =
  List.iter
    (fun (_, cfg) ->
      let build = exhaustive_build ~cfg in
      let seq = Tpro_secmodel.Exhaustive.check ~build small_universe in
      let par =
        Tpro_secmodel.Exhaustive.check_par ~domains:4 ~build small_universe
      in
      Alcotest.check exhaustive_result_testable "same sweep result" seq par)
    [
      ("none", Time_protection.Presets.none);
      ("full", Time_protection.Presets.full);
    ]

(* ------------------------------------------------------------------ *)
(* Scheduler determinism regressions: the adaptive work-stealing pool
   must leave every user-facing report byte-identical whatever the
   fan-out — campaign, prove and topology sweeps at -j 1, -j 4 and
   pool-less sequential, on two seeds, including runs resumed from a
   checkpoint written under a *different* fan-out. *)

let with_tmp f =
  let path = Filename.temp_file "tpro-par-ck" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let render_failure_list fs =
  String.concat "\n---\n"
    (List.map (Format.asprintf "%a" Tpro_fuzz.Driver.pp_failure) fs)

let render_campaign c = render_failure_list c.Tpro_fuzz.Driver.failures

let campaign_at ?checkpoint ?resume ~domains ~seed ~trials () =
  Supervisor.with_supervisor ~domains (fun sup ->
      Tpro_fuzz.Driver.campaign ~sup ~mutant:Tpro_fuzz.Scenario.Drop_padding
        ?checkpoint ?resume ~checkpoint_every:2 ~seed ~trials ())

let test_campaign_identical_across_j () =
  List.iter
    (fun seed ->
      (* pool-less Driver.run is the sequential reference *)
      let reference =
        Tpro_fuzz.Driver.run ~mutant:Tpro_fuzz.Scenario.Drop_padding ~seed
          ~trials:6 ()
      in
      let seq = render_failure_list reference in
      let j1 = campaign_at ~domains:1 ~seed ~trials:6 () in
      let j4 = campaign_at ~domains:4 ~seed ~trials:6 () in
      if seed = 42 then
        Alcotest.(check bool) "the mutant produces violations" true
          (j4.Tpro_fuzz.Driver.failures <> []);
      Alcotest.(check string)
        (Printf.sprintf "seed %d: -j 1 == sequential" seed)
        seq (render_campaign j1);
      Alcotest.(check string)
        (Printf.sprintf "seed %d: -j 4 == sequential" seed)
        seq (render_campaign j4))
    [ 42; 7 ]

let test_campaign_resume_across_j () =
  (* checkpoint written under -j 1, resumed under -j 4: the fan-out of
     either half must not leak into the report *)
  let uninterrupted = campaign_at ~domains:1 ~seed:42 ~trials:6 () in
  with_tmp (fun path ->
      Sys.remove path;
      let partial = campaign_at ~checkpoint:path ~domains:1 ~seed:42 ~trials:3 () in
      Alcotest.(check int) "partial run started fresh" 0
        partial.Tpro_fuzz.Driver.resumed_from;
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
      let resumed =
        campaign_at ~checkpoint:path ~resume:true ~domains:4 ~seed:42
          ~trials:6 ()
      in
      Alcotest.(check int) "resumed from the -j 1 checkpoint" 3
        resumed.Tpro_fuzz.Driver.resumed_from;
      Alcotest.(check string)
        "-j 4 resume byte-identical to -j 1 uninterrupted"
        (render_campaign uninterrupted)
        (render_campaign resumed))

let prove_presets =
  [ ("full", Time_protection.Presets.full);
    ("none", Time_protection.Presets.none) ]

let prove_at ?checkpoint ?resume ~domains () =
  Supervisor.with_supervisor ~domains (fun sup ->
      Time_protection.Prove.run ~sup ?checkpoint ?resume
        ~acknowledge:[ "memory interconnect" ] ~seeds:[ 0 ] ~secrets:[ 0; 1 ]
        ~presets:prove_presets ())

let render_prove (o : Time_protection.Prove.outcome) =
  Time_protection.Prove.to_json o.Time_protection.Prove.reports
  ^ "\n"
  ^ String.concat "\n"
      (List.map
         (Format.asprintf "%a" Time_protection.Prove.pp_report)
         o.Time_protection.Prove.reports)

let test_prove_identical_across_j () =
  let j1 = prove_at ~domains:1 () in
  let j4 = prove_at ~domains:4 () in
  Alcotest.(check string)
    "prove: -j 4 lemma table and reports == -j 1"
    (render_prove j1) (render_prove j4)

let test_prove_resume_across_j () =
  (* evidence checkpointed under -j 4, recomposed from the checkpoint
     under -j 1: same theorem, bit for bit *)
  with_tmp (fun path ->
      Sys.remove path;
      let reference = prove_at ~checkpoint:path ~domains:4 () in
      let resumed = prove_at ~checkpoint:path ~resume:true ~domains:1 () in
      Alcotest.(check bool) "tasks reused from the checkpoint" true
        (resumed.Time_protection.Prove.resumed_tasks > 0);
      Alcotest.(check string)
        "resumed -j 1 report == uninterrupted -j 4 report"
        (render_prove reference) (render_prove resumed))

let render_topo_list fs =
  String.concat "\n---\n"
    (List.map (Format.asprintf "%a" Tpro_fuzz.Driver.pp_topo_failure) fs)

let test_topo_identical_across_j () =
  List.iter
    (fun seed ->
      let run ?pool () =
        Tpro_fuzz.Driver.topo_run ?pool
          ~mutant:Tpro_fuzz.Scenario.Drop_padding ~max_domains:3 ~max_cores:2
          ~seed ~trials:8 ()
      in
      let seq = render_topo_list (run ()) in
      let j1 =
        Pool.with_pool ~domains:1 (fun pool -> render_topo_list (run ~pool ()))
      in
      let j4 =
        Pool.with_pool ~domains:4 (fun pool -> render_topo_list (run ~pool ()))
      in
      if seed = 42 then
        Alcotest.(check bool) "the mutant kills some topology" true (seq <> "");
      Alcotest.(check string)
        (Printf.sprintf "topo seed %d: -j 1 == sequential" seed)
        seq j1;
      Alcotest.(check string)
        (Printf.sprintf "topo seed %d: -j 4 == sequential" seed)
        seq j4)
    [ 42; 7 ]

let topo_campaign_at ?checkpoint ?resume ~domains ~trials () =
  Supervisor.with_supervisor ~domains (fun sup ->
      Tpro_fuzz.Driver.topo_campaign ~sup
        ~mutant:Tpro_fuzz.Scenario.Drop_padding ?checkpoint ?resume
        ~checkpoint_every:2 ~max_domains:3 ~max_cores:2 ~seed:42 ~trials ())

let test_topo_campaign_resume_across_j () =
  let uninterrupted = topo_campaign_at ~domains:4 ~trials:6 () in
  with_tmp (fun path ->
      Sys.remove path;
      let _partial = topo_campaign_at ~checkpoint:path ~domains:4 ~trials:3 () in
      let resumed =
        topo_campaign_at ~checkpoint:path ~resume:true ~domains:1 ~trials:6 ()
      in
      Alcotest.(check bool) "resumed from the -j 4 checkpoint" true
        (resumed.Tpro_fuzz.Driver.topo_resumed_from > 0);
      Alcotest.(check string)
        "topo -j 1 resume byte-identical to -j 4 uninterrupted"
        (render_topo_list uninterrupted.Tpro_fuzz.Driver.topo_failures)
        (render_topo_list resumed.Tpro_fuzz.Driver.topo_failures))

let suite =
  [
    Alcotest.test_case "pool: map preserves order" `Quick test_map_ordering;
    Alcotest.test_case "pool: empty input" `Quick test_map_empty;
    Alcotest.test_case "pool of 1 == sequential" `Quick
      test_pool_of_one_is_sequential;
    Alcotest.test_case "pool: exceptions propagate" `Quick
      test_exceptions_propagate;
    Alcotest.test_case "pool: lowest-index exception wins" `Quick
      test_lowest_index_exception_wins;
    Alcotest.test_case "pool: reuse and idempotent shutdown" `Quick
      test_pool_reuse_and_shutdown;
    Alcotest.test_case "pool: map_chunks after shutdown" `Quick
      test_map_chunks_after_shutdown;
    Alcotest.test_case "pool: 500-way fan-out sums" `Quick test_parallel_sum;
    Alcotest.test_case "pool: nested map does not deadlock" `Quick
      test_nested_map;
    Alcotest.test_case "measure_par bit-identical for every preset" `Quick
      test_measure_par_every_preset;
    Alcotest.test_case "measure_par over a shared pool" `Quick
      test_measure_par_shared_pool;
    Alcotest.test_case "experiment table identical with pool" `Quick
      test_experiment_table_par;
    Alcotest.test_case "exhaustive check_par == check" `Quick
      test_check_par_matches_check;
    Alcotest.test_case "campaign identical across -j, two seeds" `Quick
      test_campaign_identical_across_j;
    Alcotest.test_case "campaign resumed across -j stays identical" `Quick
      test_campaign_resume_across_j;
    Alcotest.test_case "prove identical across -j" `Quick
      test_prove_identical_across_j;
    Alcotest.test_case "prove resumed across -j stays identical" `Quick
      test_prove_resume_across_j;
    Alcotest.test_case "topology sweep identical across -j, two seeds" `Quick
      test_topo_identical_across_j;
    Alcotest.test_case "topo campaign resumed across -j stays identical" `Quick
      test_topo_campaign_resume_across_j;
  ]
