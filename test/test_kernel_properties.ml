open Tpro_hw
open Tpro_kernel
open Time_protection

(* Property tests over whole-kernel executions with random workloads. *)

let run_random ~cfg ~seed ~prog_seed =
  let machine_config =
    {
      Machine.default_config with
      Machine.lat = Latency.with_seed Latency.default seed;
    }
  in
  let k = Kernel.create ~machine_config cfg in
  let d0 = Kernel.create_domain k ~slice:8_000 ~pad_cycles:15_000 () in
  let d1 = Kernel.create_domain k ~slice:8_000 ~pad_cycles:15_000 () in
  Kernel.map_region k d0 ~vbase:0x2000_0000 ~pages:2;
  Kernel.map_region k d1 ~vbase:0x2000_0000 ~pages:2;
  let mk s =
    Program.random (Rng.create s) ~len:120 ~data_base:0x2000_0000
      ~data_bytes:(2 * 4096)
  in
  ignore (Kernel.spawn k d0 (mk prog_seed));
  ignore (Kernel.spawn k d1 (mk (prog_seed + 1)));
  Kernel.run ~max_steps:50_000 k;
  k

let event_time = function
  | Event.Switch { start; _ } -> Some start
  | Event.Trap { start; _ } -> Some start
  | Event.Irq_handled { at; _ } -> Some at
  | Event.Ipc_delivered { at; _ } -> Some at
  | Event.Thread_halted { at; _ } -> Some at
  | Event.Fault { at; _ } -> Some at

let configs = [ Presets.none; Presets.flush_pad; Presets.full ]

let gen =
  QCheck.make
    QCheck.Gen.(
      triple (int_bound 20) (int_bound 1000) (int_bound (List.length configs - 1)))

let prop_event_times_monotone =
  QCheck.Test.make ~name:"kernel events are time-monotone" ~count:30 gen
    (fun (seed, prog_seed, ci) ->
      let k = run_random ~cfg:(List.nth configs ci) ~seed ~prog_seed in
      let times = List.filter_map event_time (Kernel.events k) in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono times)

let prop_switches_follow_schedule =
  QCheck.Test.make ~name:"switches alternate 0->1->0 per the static schedule"
    ~count:30 gen (fun (seed, prog_seed, ci) ->
      let k = run_random ~cfg:(List.nth configs ci) ~seed ~prog_seed in
      let switches =
        List.filter_map
          (function
            | Event.Switch { from_dom; to_dom; _ } -> Some (from_dom, to_dom)
            | _ -> None)
          (Kernel.events k)
      in
      let rec ok expected_from = function
        | [] -> true
        | (f, t) :: rest -> f = expected_from && t = 1 - f && ok t rest
      in
      ok 0 switches)

let prop_switch_slots_padded =
  QCheck.Test.make
    ~name:"every padded switch ends exactly at slice + pad, regardless of workload"
    ~count:30
    QCheck.(pair (int_bound 20) (int_bound 1000))
    (fun (seed, prog_seed) ->
      let k = run_random ~cfg:Presets.full ~seed ~prog_seed in
      List.for_all
        (function
          | Event.Switch { slice_start; finish; padded = true; _ } ->
            finish - slice_start = 8_000 + 15_000
          | _ -> true)
        (Kernel.events k))

let prop_observations_clock_monotone =
  QCheck.Test.make ~name:"a thread's clock observations never go backwards"
    ~count:30 gen (fun (seed, prog_seed, ci) ->
      let k = run_random ~cfg:(List.nth configs ci) ~seed ~prog_seed in
      List.for_all
        (fun (d : Domain.t) ->
          List.for_all
            (fun th ->
              let clocks =
                List.filter_map
                  (function Event.Clock c -> Some c | _ -> None)
                  (Thread.observations th)
              in
              let rec mono = function
                | a :: (b :: _ as rest) -> a <= b && mono rest
                | _ -> true
              in
              mono clocks)
            (Domain.threads d))
        (Kernel.domains k))

let prop_no_cross_owner_frames =
  QCheck.Test.make
    ~name:"frame ownership is a partition: no frame mapped by two domains"
    ~count:30
    QCheck.(pair (int_bound 20) (int_bound 1000))
    (fun (seed, prog_seed) ->
      let k = run_random ~cfg:Presets.full ~seed ~prog_seed in
      let frames_of (d : Domain.t) =
        List.filter_map (Domain.translate d) (Domain.mapped_vpns d)
      in
      match Kernel.domains k with
      | [ a; b ] ->
        List.for_all (fun f -> not (List.mem f (frames_of b))) (frames_of a)
      | _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_event_times_monotone;
    QCheck_alcotest.to_alcotest prop_switches_follow_schedule;
    QCheck_alcotest.to_alcotest prop_switch_slots_padded;
    QCheck_alcotest.to_alcotest prop_observations_clock_monotone;
    QCheck_alcotest.to_alcotest prop_no_cross_owner_frames;
  ]
