open Tpro_hw
open Tpro_secmodel

(* ----------------------------------------------------------------- *)
(* Legacy reference implementations: the per-field digest and flush
   code exactly as it stood before the resource registry.  The registry
   folds must reproduce these bit-for-bit on machines without a BTB.    *)

let legacy_digest_core m ~core =
  let open Rng in
  let l2d =
    match Machine.l2 m ~core with Some l2 -> Cache.digest l2 | None -> 17L
  in
  combine
    (combine
       (Cache.digest (Machine.l1i m ~core))
       (combine (Cache.digest (Machine.l1d m ~core)) l2d))
    (combine
       (Tlb.digest (Machine.tlb m ~core))
       (combine
          (Bpred.digest (Machine.bpred m ~core))
          (Prefetch.digest (Machine.prefetch m ~core))))

let legacy_digest_shared m =
  Rng.combine (Cache.digest (Machine.llc m)) (Interconnect.digest (Machine.bus m))

let legacy_flush_cost m ~core =
  let l = Machine.lat m in
  let pre = legacy_digest_core m ~core in
  let dirty =
    Cache.dirty_count (Machine.l1d m ~core)
    + (match Machine.l2 m ~core with Some c -> Cache.dirty_count c | None -> 0)
  in
  l.Latency.flush_base + (dirty * l.Latency.dirty_wb) + Latency.jitter l pre

(* ----------------------------------------------------------------- *)
(* Machine presets: every structural variation the config can express  *)

let with_l2 =
  {
    Machine.default_config with
    Machine.l2_geom = Some (Cache.geometry ~sets:256 ~ways:8 ~line_bits:6 ());
  }

let quad = { Machine.default_config with Machine.n_cores = 4 }

let smt2 = { Machine.default_config with Machine.n_cores = 2; smt = true }

let prand =
  { Machine.default_config with Machine.replacement = Cache.Pseudo_random 7 }

let small_llc =
  {
    Machine.default_config with
    Machine.llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
    n_frames = 512;
  }

let presets =
  [
    ("default", Machine.default_config);
    ("with-l2", with_l2);
    ("quad-core", quad);
    ("smt", smt2);
    ("pseudo-random", prand);
    ("small-llc", small_llc);
  ]

(* Drive a core through a random mix of physical touches, fetches and
   branches — enough to dirty caches, fill the TLB-free paths, train the
   predictor and stride the prefetcher. *)
let run_trace m ~core ~seed ~steps =
  let rng = Rng.create seed in
  let span = 0x40000 in
  for _ = 1 to steps do
    match Rng.int rng 5 with
    | 0 | 1 ->
      ignore
        (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:false
           (Rng.int rng span))
    | 2 ->
      ignore
        (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:true
           (Rng.int rng span))
    | 3 -> ignore (Machine.fetch_paddr m ~core ~owner:0 (Rng.int rng span))
    | _ ->
      ignore
        (Machine.branch m ~core ~pc:(Rng.int rng 256 * 4)
           ~taken:(Rng.bool rng))
  done

let test_digests_match_legacy () =
  List.iter
    (fun (pname, cfg) ->
      List.iter
        (fun seed ->
          let m = Machine.create cfg in
          for core = 0 to Machine.n_cores m - 1 do
            run_trace m ~core ~seed:(seed + core) ~steps:400
          done;
          for core = 0 to Machine.n_cores m - 1 do
            Alcotest.(check int64)
              (Printf.sprintf "%s/seed %d/core %d digest_core" pname seed core)
              (legacy_digest_core m ~core)
              (Machine.digest_core m ~core)
          done;
          Alcotest.(check int64)
            (Printf.sprintf "%s/seed %d digest_shared" pname seed)
            (legacy_digest_shared m) (Machine.digest_shared m))
        [ 0; 1; 2 ])
    presets

let test_flush_matches_legacy () =
  List.iter
    (fun (pname, cfg) ->
      List.iter
        (fun seed ->
          let m = Machine.create cfg in
          run_trace m ~core:0 ~seed ~steps:600;
          let expect = legacy_flush_cost m ~core:0 in
          let got = Machine.flush_core_local m ~core:0 in
          Alcotest.(check int)
            (Printf.sprintf "%s/seed %d flush cost" pname seed)
            expect got;
          (* post-flush private state is indistinguishable from fresh *)
          Alcotest.(check int64)
            (Printf.sprintf "%s/seed %d post-flush digest" pname seed)
            (Machine.digest_core (Machine.create cfg) ~core:0)
            (Machine.digest_core m ~core:0))
        [ 0; 3; 5 ])
    presets

let prop_digest_matches_legacy =
  QCheck.Test.make ~name:"registry digest == legacy digest (random traces)"
    ~count:60
    QCheck.(pair small_int (int_bound (List.length presets - 1)))
    (fun (seed, pidx) ->
      let _, cfg = List.nth presets pidx in
      let m = Machine.create cfg in
      for core = 0 to Machine.n_cores m - 1 do
        run_trace m ~core ~seed:(seed + (17 * core)) ~steps:200
      done;
      let ok = ref (Machine.digest_shared m = legacy_digest_shared m) in
      for core = 0 to Machine.n_cores m - 1 do
        ok :=
          !ok && Machine.digest_core m ~core = legacy_digest_core m ~core
      done;
      !ok)

(* ----------------------------------------------------------------- *)
(* A dummy resource registered at runtime must show up everywhere:
   digests, flush accounting (count and cost) and the derived taxonomy. *)

let test_dummy_resource_registration () =
  let m = Machine.create Machine.default_config in
  let flushes = ref 0 in
  let state = ref 42L in
  let dummy =
    Resource.make ~name:"victim write buffer"
      ~classification:Resource.Flushable
      ~digest:(fun () -> !state)
      ~flush:(fun () ->
        incr flushes;
        state := 0L;
        { Resource.dirty_writebacks = 3; extra_cycles = 7 })
      ()
  in
  let before = Machine.digest_core m ~core:0 in
  Machine.register_core_resource m ~core:0 dummy;
  Alcotest.(check bool) "listed among core resources" true
    (List.exists
       (fun r -> Resource.name r = "victim write buffer")
       (Machine.core_resources m ~core:0));
  let after = Machine.digest_core m ~core:0 in
  Alcotest.(check bool) "participates in digest_core" true (before <> after);
  state := 43L;
  Alcotest.(check bool) "digest tracks its state" true
    (Machine.digest_core m ~core:0 <> after);
  (* derived taxonomy picks it up, still classified and in scope *)
  (match Mstate.find (Mstate.of_machine m) "victim write buffer" with
  | Some c ->
    Alcotest.(check bool) "classified flushable" true
      (Mstate.classify c = Mstate.Flushable);
    Alcotest.(check bool) "in scope" true (Mstate.in_scope c)
  | None -> Alcotest.fail "dummy resource missing from derived taxonomy");
  Alcotest.(check bool) "aISA still satisfied" true
    (Mstate.aisa_satisfied ~machine:m ());
  (* flush accounting: the report names it, and the cost includes its
     write-backs and extra cycles (fresh caches contribute nothing) *)
  let l = Machine.lat m in
  let pre = Machine.digest_core m ~core:0 in
  let cost, reports = Machine.flush_core_local_report m ~core:0 in
  Alcotest.(check bool) "named in flush report" true
    (List.mem_assoc "victim write buffer" reports);
  Alcotest.(check int) "flushed exactly once" 1 !flushes;
  Alcotest.(check int) "cost includes its write-backs and extra cycles"
    (l.Latency.flush_base + (3 * l.Latency.dirty_wb) + 7
    + Latency.jitter l pre)
    cost;
  Alcotest.(check int64) "flush reset its state" 0L !state

(* A Neither resource registered as shared must fail the aISA audit if
   claimed in scope, and pass if declared out of scope. *)
let test_neither_scope_audit () =
  let m = Machine.create Machine.default_config in
  Machine.register_shared_resource m
    (Resource.make ~name:"row buffer" ~classification:Resource.Neither
       ~in_scope:true
       ~digest:(fun () -> 0L)
       ~flush:(fun () -> Resource.no_flush)
       ());
  Alcotest.(check bool) "in-scope Neither state violates the aISA" false
    (Mstate.aisa_satisfied ~machine:m ());
  let m2 = Machine.create Machine.default_config in
  Machine.register_shared_resource m2
    (Resource.make ~name:"row buffer" ~classification:Resource.Neither
       ~digest:(fun () -> 0L)
       ~flush:(fun () -> Resource.no_flush)
       ());
  Alcotest.(check bool) "out-of-scope Neither state is admissible" true
    (Mstate.aisa_satisfied ~machine:m2 ())

(* ----------------------------------------------------------------- *)
(* BTB: the resource added end-to-end through the registry alone       *)

let btb_cfg = { Machine.default_config with Machine.btb_entries = Some 64 }

let test_btb_end_to_end () =
  let m = Machine.create btb_cfg in
  let plain = Machine.create Machine.default_config in
  (* timing: against an identical BTB-less machine, the first taken
     branch pays one extra misprediction (target unknown), a repeat of
     the same branch pays nothing extra (BTB hit) *)
  let miss = (Machine.lat m).Latency.branch_miss in
  let c1 = Machine.branch m ~core:0 ~pc:68 ~taken:true in
  let p1 = Machine.branch plain ~core:0 ~pc:68 ~taken:true in
  Alcotest.(check int) "first taken branch pays the BTB-miss penalty"
    (p1 + miss) c1;
  let c2 = Machine.branch m ~core:0 ~pc:68 ~taken:true in
  let p2 = Machine.branch plain ~core:0 ~pc:68 ~taken:true in
  Alcotest.(check int) "repeat is a BTB hit" p2 c2;
  (* state: visible to digest_core through the registry alone *)
  let d = Machine.digest_core m ~core:0 in
  (match Machine.btb m ~core:0 with
  | Some b ->
    Alcotest.(check int) "target installed" 1 (Btb.entry_count b);
    Btb.update b ~pc:132 ~target:136;
    Alcotest.(check bool) "BTB-only change moves digest_core" true
      (Machine.digest_core m ~core:0 <> d)
  | None -> Alcotest.fail "btb_entries did not configure a BTB");
  (* flush: reset with everything else, back to the fresh digest *)
  let (_ : int) = Machine.flush_core_local m ~core:0 in
  (match Machine.btb m ~core:0 with
  | Some b -> Alcotest.(check int) "flush empties the BTB" 0 (Btb.entry_count b)
  | None -> assert false);
  Alcotest.(check int64) "post-flush digest is fresh"
    (Machine.digest_core (Machine.create btb_cfg) ~core:0)
    (Machine.digest_core m ~core:0);
  (* taxonomy: derived, no enum edit anywhere *)
  match Mstate.find (Mstate.of_machine m) "branch target buffer" with
  | Some c ->
    Alcotest.(check bool) "classified flushable" true
      (Mstate.classify c = Mstate.Flushable);
    Alcotest.(check bool) "aISA satisfied with BTB" true
      (Mstate.aisa_satisfied ~machine:m ())
  | None -> Alcotest.fail "BTB missing from derived taxonomy"

let test_btb_default_absent () =
  let m = Machine.create Machine.default_config in
  Alcotest.(check bool) "no BTB by default" true (Machine.btb m ~core:0 = None);
  Alcotest.(check bool) "not in the taxonomy when absent" true
    (Mstate.find (Mstate.of_machine m) "branch target buffer" = None)

(* ----------------------------------------------------------------- *)
(* Flush coverage: on every structural preset, with and without a BTB,
   a core-local flush must report every Flushable resource by name —
   this is the invariant Kernel.do_switch audits with
   Uncovered_flushable, checked here at the machine layer directly.    *)

let flush_presets =
  presets
  @ List.map
      (fun (n, c) -> (n ^ "+btb", { c with Machine.btb_entries = Some 64 }))
      presets

let prop_flush_covers_flushables =
  QCheck.Test.make
    ~name:"flush report covers every flushable (presets incl. BTB)" ~count:40
    QCheck.small_int
    (fun seed ->
      List.for_all
        (fun (_, cfg) ->
          let m = Machine.create cfg in
          run_trace m ~core:0 ~seed ~steps:150;
          let _cost, reports = Machine.flush_core_local_report m ~core:0 in
          List.for_all
            (fun r ->
              (not (Resource.present r && Resource.flushable r))
              || List.mem_assoc (Resource.name r) reports)
            (Machine.core_resources m ~core:0))
        flush_presets)

(* ----------------------------------------------------------------- *)
(* Golden fixture: every experiment table (E1-E20), as captured from
   `tpro all --csv`, must be reproduced bit-for-bit.                    *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_experiment_tables_bit_identical () =
  let golden = read_file "golden_experiments.csv" in
  let tables = Time_protection.Experiments.all_par () in
  let csv =
    String.concat "" (List.map Time_protection.Table.to_csv tables)
  in
  Alcotest.(check string) "E1-E20 tables bit-identical" golden csv

let suite =
  [
    Alcotest.test_case "registry digests match legacy (presets)" `Quick
      test_digests_match_legacy;
    Alcotest.test_case "registry flush matches legacy (presets)" `Quick
      test_flush_matches_legacy;
    QCheck_alcotest.to_alcotest prop_digest_matches_legacy;
    QCheck_alcotest.to_alcotest prop_flush_covers_flushables;
    Alcotest.test_case "dummy resource registration" `Quick
      test_dummy_resource_registration;
    Alcotest.test_case "Neither-state scope audit" `Quick
      test_neither_scope_audit;
    Alcotest.test_case "BTB end-to-end through the registry" `Quick
      test_btb_end_to_end;
    Alcotest.test_case "BTB absent by default" `Quick test_btb_default_absent;
    Alcotest.test_case "experiment tables bit-identical" `Quick
      test_experiment_tables_bit_identical;
  ]
