open Tpro_hw
open Tpro_kernel

let small_machine =
  {
    Machine.default_config with
    Machine.n_frames = 512;
    llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
    (* 256 sets * 64B = 16 KiB span -> 4 colours *)
  }

let boot ?(cfg = Kernel.config_none) () = Kernel.create ~machine_config:small_machine cfg

let test_boot () =
  let k = boot () in
  Alcotest.(check int) "4 colours" 4 (Kernel.n_colours k);
  Alcotest.(check (list int)) "no domains yet" [] (List.map (fun (d : Domain.t) -> d.Domain.did) (Kernel.domains k))

let test_create_domain_colouring_on () =
  let k = boot ~cfg:{ Kernel.config_full with Kernel.kernel_clone = false } () in
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:500 () in
  let d1 = Kernel.create_domain k ~slice:1000 ~pad_cycles:500 () in
  Alcotest.(check (list int)) "domain 0 colours" [ 1 ] d0.Domain.colours;
  Alcotest.(check (list int)) "domain 1 colours" [ 2 ] d1.Domain.colours

let test_create_domain_colouring_off () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:0 () in
  Alcotest.(check (list int)) "all colours" [ 0; 1; 2; 3 ] d0.Domain.colours

let test_kernel_clone () =
  let k = boot ~cfg:Kernel.config_full () in
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:500 () in
  let img = Kernel.image_of_domain k d0 in
  Alcotest.(check bool) "cloned image differs from shared" false
    (Kclone.same_text img (Kernel.shared_image k));
  Alcotest.(check int) "image owned by domain" d0.Domain.did (Kclone.owner img);
  (* clone text frames must have the domain's colours *)
  let alloc = Kernel.allocator k in
  List.iter
    (fun f ->
      Alcotest.(check bool) "text frame in domain colours" true
        (List.mem (Frame_alloc.colour_of_frame alloc f) d0.Domain.colours))
    (Kclone.text_frames img)

let test_no_clone_without_flag () =
  let k = boot ~cfg:{ Kernel.config_full with Kernel.kernel_clone = false } () in
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:500 () in
  Alcotest.(check bool) "uses shared image" true
    (Kclone.same_text (Kernel.image_of_domain k d0) (Kernel.shared_image k))

let test_map_region_colours () =
  let k = boot ~cfg:{ Kernel.config_full with Kernel.kernel_clone = false } () in
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:500 () in
  Kernel.map_region k d0 ~vbase:0x20000000 ~pages:4;
  let alloc = Kernel.allocator k in
  List.iter
    (fun vpn ->
      match Domain.translate d0 vpn with
      | None -> Alcotest.fail "mapped page must translate"
      | Some pfn ->
        Alcotest.(check bool) "frame colour of domain" true
          (List.mem (Frame_alloc.colour_of_frame alloc pfn) d0.Domain.colours))
    (Domain.mapped_vpns d0)

let test_spawn_and_run_halt () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:0 () in
  let th = Kernel.spawn k d0 [| Program.Compute 10; Program.Halt |] in
  Kernel.run k;
  Alcotest.(check bool) "halted" true (th.Thread.state = Thread.Halted);
  Alcotest.(check bool) "everything halted" true (Kernel.all_halted k)

let test_observations_clock () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:100000 ~pad_cycles:0 () in
  let th =
    Kernel.spawn k d0
      [| Program.Read_clock; Program.Compute 100; Program.Read_clock; Program.Halt |]
  in
  Kernel.run k;
  match Thread.observations th with
  | [ Event.Clock a; Event.Clock b ] ->
    Alcotest.(check bool) "time moved forward by at least the compute" true
      (b - a >= 100)
  | _ -> Alcotest.fail "expected two clock observations"

let test_timed_load_warm_cold () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:1000000 ~pad_cycles:0 () in
  Kernel.map_region k d0 ~vbase:0x20000000 ~pages:1;
  let th =
    Kernel.spawn k d0
      [|
        Program.Timed_load 0x20000000;
        Program.Timed_load 0x20000000;
        Program.Halt;
      |]
  in
  Kernel.run k;
  match Thread.observations th with
  | [ Event.Latency cold; Event.Latency warm ] ->
    Alcotest.(check bool) "second access faster" true (warm < cold)
  | _ -> Alcotest.fail "expected two latencies"

let test_fault_halts_thread () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:0 () in
  let th = Kernel.spawn k d0 [| Program.Load 0x66600000; Program.Halt |] in
  Kernel.run k;
  Alcotest.(check bool) "thread halted by fault" true
    (th.Thread.state = Thread.Halted);
  Alcotest.(check bool) "fault event recorded" true
    (List.exists
       (function Event.Fault _ -> true | _ -> false)
       (Kernel.events k))

let test_domain_switching_round_robin () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:2000 ~pad_cycles:0 () in
  let d1 = Kernel.create_domain k ~slice:2000 ~pad_cycles:0 () in
  let mk n = Array.append (Array.make n (Program.Compute 100)) [| Program.Halt |] in
  let t0 = Kernel.spawn k d0 (mk 100) in
  let t1 = Kernel.spawn k d1 (mk 100) in
  Kernel.run k;
  Alcotest.(check bool) "both ran to completion" true
    (t0.Thread.state = Thread.Halted && t1.Thread.state = Thread.Halted);
  let switches =
    List.filter (function Event.Switch _ -> true | _ -> false) (Kernel.events k)
  in
  Alcotest.(check bool) "several switches happened" true
    (List.length switches >= 2)

let test_padded_switch_constant_slot () =
  let cfg = { Kernel.config_full with Kernel.kernel_clone = false } in
  let k = boot ~cfg () in
  let d0 = Kernel.create_domain k ~slice:5000 ~pad_cycles:8000 () in
  let d1 = Kernel.create_domain k ~slice:5000 ~pad_cycles:8000 () in
  Kernel.map_region k d0 ~vbase:0x20000000 ~pages:1;
  (* domain 0 dirties varying amounts of cache; switch slots must not vary *)
  let dirty =
    Array.init 40 (fun i -> Program.Store (0x20000000 + (i * 64 mod 4096)))
  in
  ignore (Kernel.spawn k d0 (Array.append dirty [| Program.Halt |]));
  ignore (Kernel.spawn k d1 (Array.make 1 (Program.Compute 50)));
  Kernel.run k ~max_steps:20000;
  let slots =
    List.filter_map
      (fun e ->
        match e with
        | Event.Switch { from_dom = 0; slice_start; finish; _ } ->
          Some (finish - slice_start)
        | _ -> None)
      (Kernel.events k)
  in
  Alcotest.(check bool) "at least one switch from domain 0" true (slots <> []);
  List.iter
    (fun s -> Alcotest.(check int) "slot = slice + pad" (5000 + 8000) s)
    slots;
  Alcotest.(check bool) "no overrun" true
    (not (List.exists Event.is_overrun (Kernel.events k)))

let test_unpadded_switch_varies () =
  let cfg = { Kernel.config_none with Kernel.flush_on_switch = true } in
  let k = boot ~cfg () in
  let d0 = Kernel.create_domain k ~slice:5000 ~pad_cycles:0 () in
  let _d1 = Kernel.create_domain k ~slice:5000 ~pad_cycles:0 () in
  Kernel.map_region k d0 ~vbase:0x20000000 ~pages:1;
  let dirty =
    Array.init 60 (fun i -> Program.Store (0x20000000 + (i * 64 mod 4096)))
  in
  ignore (Kernel.spawn k d0 (Array.append dirty [| Program.Halt |]));
  Kernel.run k ~max_steps:20000;
  let durations =
    List.filter_map
      (fun e ->
        match e with
        | Event.Switch { from_dom = 0; start; finish; _ } -> Some (finish - start)
        | _ -> None)
      (Kernel.events k)
  in
  (* the first switch (dirty cache) must be slower than a later one
     (cache cleaned by the flush) *)
  match durations with
  | a :: rest when rest <> [] ->
    Alcotest.(check bool) "dirty switch slower than clean" true
      (List.exists (fun b -> a > b) rest)
  | _ -> Alcotest.fail "expected at least two switches from domain 0"

let test_ipc_rendezvous () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:5000 ~pad_cycles:0 () in
  let d1 = Kernel.create_domain k ~slice:5000 ~pad_cycles:0 () in
  ignore
    (Kernel.spawn k d0
       [| Program.Syscall (Program.Sys_send { ep = 0; msg = 1234 }); Program.Halt |]);
  let rx =
    Kernel.spawn k d1
      [| Program.Syscall (Program.Sys_recv { ep = 0 }); Program.Read_clock; Program.Halt |]
  in
  Kernel.run k;
  Alcotest.(check bool) "receiver got the message" true
    (List.exists
       (function Event.Recv 1234 -> true | _ -> false)
       (Thread.observations rx));
  Alcotest.(check bool) "delivery event" true
    (List.exists
       (function Event.Ipc_delivered _ -> true | _ -> false)
       (Kernel.events k))

let test_ipc_sender_blocks_first () =
  (* receiver arrives second: sender must queue and be unblocked later *)
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:2000 ~pad_cycles:0 () in
  let d1 = Kernel.create_domain k ~slice:2000 ~pad_cycles:0 () in
  let tx =
    Kernel.spawn k d0
      [| Program.Syscall (Program.Sys_send { ep = 0; msg = 7 }); Program.Read_clock; Program.Halt |]
  in
  let rx =
    Kernel.spawn k d1
      [| Program.Compute 500; Program.Syscall (Program.Sys_recv { ep = 0 }); Program.Halt |]
  in
  Kernel.run k;
  Alcotest.(check bool) "sender completed" true (tx.Thread.state = Thread.Halted);
  Alcotest.(check bool) "receiver got msg" true
    (List.mem (Event.Recv 7) (Thread.observations rx))

let test_irq_partitioning () =
  let run partition =
    let cfg = { Kernel.config_none with Kernel.partition_irqs = partition } in
    let k = boot ~cfg () in
    let trojan_dom = Kernel.create_domain k ~slice:3000 ~pad_cycles:0 () in
    let victim_dom = Kernel.create_domain k ~slice:3000 ~pad_cycles:0 () in
    Kernel.set_irq_owner k ~irq:1 ~dom:trojan_dom;
    (* trojan arms an interrupt to land in the middle of the victim's slice *)
    ignore
      (Kernel.spawn k trojan_dom
         [| Program.Syscall (Program.Sys_arm_irq { irq = 1; delay = 4000 }); Program.Halt |]);
    ignore
      (Kernel.spawn k victim_dom
         (Array.append
            (Array.make 40 (Program.Compute 50))
            [| Program.Halt |]));
    Kernel.run k ~max_steps:20000;
    List.filter_map
      (function
        | Event.Irq_handled { during_dom; owner_dom; _ } ->
          Some (during_dom, owner_dom)
        | _ -> None)
      (Kernel.events k)
  in
  (match run false with
  | [ (during, owner) ] ->
    Alcotest.(check int) "unpartitioned: handled during victim" 1 during;
    Alcotest.(check int) "owner is trojan" 0 owner
  | l ->
    Alcotest.failf "expected exactly one irq handling, got %d" (List.length l));
  match run true with
  | [ (during, _) ] ->
    Alcotest.(check int) "partitioned: deferred to owner's slice" 0 during
  | l ->
    Alcotest.failf "expected exactly one irq handling, got %d" (List.length l)

let test_cost_tracing () =
  let k = boot () in
  let d0 = Kernel.create_domain k ~slice:100000 ~pad_cycles:0 () in
  Kernel.map_region k d0 ~vbase:0x20000000 ~pages:1;
  let th =
    Kernel.spawn k d0
      [|
        Program.Compute 10;
        Program.Load 0x20000000;
        Program.Syscall Program.Sys_null;
        Program.Halt;
      |]
  in
  Thread.set_traced th true;
  Kernel.run k;
  match Thread.cost_trace th with
  | [ (Thread.User, _); (Thread.User, _); (Thread.Trap, _); (Thread.User, _) ]
    ->
    ()
  | tr ->
    Alcotest.failf "unexpected trace shape (%d entries)" (List.length tr)

let test_deterministic_delivery_holds_core () =
  (* with deterministic delivery the idle switch happens at the slice
     boundary, not when the domain runs out of work *)
  let run det =
    let cfg =
      { Kernel.config_none with Kernel.deterministic_delivery = det }
    in
    let k = boot ~cfg () in
    let d0 = Kernel.create_domain k ~slice:10000 ~pad_cycles:0 () in
    let d1 = Kernel.create_domain k ~slice:10000 ~pad_cycles:0 () in
    ignore (Kernel.spawn k d0 [| Program.Compute 100; Program.Halt |]);
    ignore (Kernel.spawn k d1 [| Program.Compute 100; Program.Halt |]);
    Kernel.run k ~max_steps:2000;
    List.filter_map
      (function
        | Event.Switch { from_dom = 0; slice_start; start; _ } ->
          Some (start - slice_start)
        | _ -> None)
      (Kernel.events k)
    |> List.hd
  in
  Alcotest.(check bool) "eager handover well before slice end" true
    (run false < 5000);
  Alcotest.(check bool) "deterministic delivery waits for the boundary" true
    (run true >= 10000)

let test_kernel_determinism () =
  let run () =
    let k = boot ~cfg:Kernel.config_full () in
    let d0 = Kernel.create_domain k ~slice:4000 ~pad_cycles:9000 () in
    let d1 = Kernel.create_domain k ~slice:4000 ~pad_cycles:9000 () in
    Kernel.map_region k d0 ~vbase:0x20000000 ~pages:1;
    let rng = Rng.create 33 in
    ignore
      (Kernel.spawn k d0
         (Program.random rng ~len:60 ~data_base:0x20000000 ~data_bytes:4096));
    let rx =
      Kernel.spawn k d1
        [| Program.Read_clock; Program.Compute 50; Program.Read_clock; Program.Halt |]
    in
    Kernel.run k ~max_steps:50000;
    Thread.observations rx
  in
  Alcotest.(check bool) "two identical boots give identical traces" true
    (run () = run ())

(* A registered Flushable resource the machine silently fails to flush
   must be caught by the switch-time coverage audit in Kernel.do_switch. *)
let test_uncovered_flushable () =
  let cfg =
    {
      small_machine with
      Machine.fault = Some (Machine.Skip_flush "victim write buffer");
    }
  in
  let k =
    Kernel.create ~machine_config:cfg
      { Kernel.config_full with Kernel.kernel_clone = false }
  in
  Machine.register_core_resource (Kernel.machine k) ~core:0
    (Resource.make ~name:"victim write buffer"
       ~classification:Resource.Flushable
       ~digest:(fun () -> 42L)
       ~flush:(fun () -> Resource.no_flush)
       ());
  let d0 = Kernel.create_domain k ~slice:1000 ~pad_cycles:100_000 () in
  let d1 = Kernel.create_domain k ~slice:1000 ~pad_cycles:100_000 () in
  ignore (Kernel.spawn k d0 [| Program.Compute 5000; Program.Halt |]);
  ignore (Kernel.spawn k d1 [| Program.Compute 5000; Program.Halt |]);
  Alcotest.check_raises "kernel audits flush coverage"
    (Kernel.Uncovered_flushable "victim write buffer") (fun () ->
      Kernel.run k ~max_steps:50_000)

let suite =
  [
    Alcotest.test_case "boot" `Quick test_boot;
    Alcotest.test_case "create domain (colouring)" `Quick
      test_create_domain_colouring_on;
    Alcotest.test_case "create domain (no colouring)" `Quick
      test_create_domain_colouring_off;
    Alcotest.test_case "kernel clone" `Quick test_kernel_clone;
    Alcotest.test_case "no clone without flag" `Quick test_no_clone_without_flag;
    Alcotest.test_case "map_region colours" `Quick test_map_region_colours;
    Alcotest.test_case "spawn and halt" `Quick test_spawn_and_run_halt;
    Alcotest.test_case "clock observations" `Quick test_observations_clock;
    Alcotest.test_case "timed load warm/cold" `Quick test_timed_load_warm_cold;
    Alcotest.test_case "fault halts thread" `Quick test_fault_halts_thread;
    Alcotest.test_case "round-robin switching" `Quick
      test_domain_switching_round_robin;
    Alcotest.test_case "padded switch constant slot" `Quick
      test_padded_switch_constant_slot;
    Alcotest.test_case "unpadded switch varies" `Quick test_unpadded_switch_varies;
    Alcotest.test_case "ipc rendezvous" `Quick test_ipc_rendezvous;
    Alcotest.test_case "ipc sender blocks first" `Quick
      test_ipc_sender_blocks_first;
    Alcotest.test_case "irq partitioning" `Quick test_irq_partitioning;
    Alcotest.test_case "cost tracing" `Quick test_cost_tracing;
    Alcotest.test_case "deterministic delivery holds core" `Quick
      test_deterministic_delivery_holds_core;
    Alcotest.test_case "kernel determinism" `Quick test_kernel_determinism;
    Alcotest.test_case "uncovered flushable raises" `Quick
      test_uncovered_flushable;
  ]
