open Tpro_hw

let test_initial_not_taken () =
  let b = Bpred.create () in
  Alcotest.(check bool) "weakly not-taken at reset" false
    (Bpred.predict b ~pc:0x400)

let test_learns_taken () =
  let b = Bpred.create () in
  ignore (Bpred.update b ~pc:0x400 ~taken:true);
  ignore (Bpred.update b ~pc:0x400 ~taken:true);
  (* history changed, so hammer the same history pattern *)
  let correct = Bpred.update b ~pc:0x400 ~taken:true in
  ignore correct;
  (* after repeated taken outcomes the counter for the current index must
     eventually saturate; drive many iterations *)
  let hits = ref 0 in
  for _ = 1 to 64 do
    if Bpred.update b ~pc:0x400 ~taken:true then incr hits
  done;
  Alcotest.(check bool) "mostly correct on a monotone branch" true (!hits > 48)

let test_flush_resets () =
  let b = Bpred.create () in
  for _ = 1 to 32 do
    ignore (Bpred.update b ~pc:0x400 ~taken:true)
  done;
  let d_trained = Bpred.digest b in
  Bpred.flush b;
  let fresh = Bpred.create () in
  Alcotest.(check int64) "flush equals power-on state" (Bpred.digest fresh)
    (Bpred.digest b);
  Alcotest.(check bool) "training had changed the state" true
    (d_trained <> Bpred.digest b)

let test_aliasing () =
  (* two branches mapping to the same slot interfere — that is the channel *)
  let b = Bpred.create ~history_bits:1 ~table_bits:4 () in
  for _ = 1 to 32 do
    ignore (Bpred.update b ~pc:0x0 ~taken:true)
  done;
  let d_with_training = Bpred.digest b in
  let b2 = Bpred.create ~history_bits:1 ~table_bits:4 () in
  for _ = 1 to 32 do
    ignore (Bpred.update b2 ~pc:(16 * 4) ~taken:true)
  done;
  (* pc 0 and pc 64 alias in a 16-entry table *)
  Alcotest.(check int64) "aliased branches share state" d_with_training
    (Bpred.digest b2)

let test_validation () =
  Alcotest.check_raises "history bits range"
    (Invalid_argument "Bpred.create: history_bits out of range") (fun () ->
      ignore (Bpred.create ~history_bits:0 ()))

let prop_update_returns_prediction =
  QCheck.Test.make ~name:"update reports whether predict was correct"
    ~count:300
    QCheck.(list (pair (int_bound 1023) bool))
    (fun branches ->
      let b = Bpred.create () in
      List.for_all
        (fun (pc, taken) ->
          let predicted = Bpred.predict b ~pc in
          let correct = Bpred.update b ~pc ~taken in
          correct = (predicted = taken))
        branches)

let suite =
  [
    Alcotest.test_case "initial not taken" `Quick test_initial_not_taken;
    Alcotest.test_case "learns taken" `Quick test_learns_taken;
    Alcotest.test_case "flush resets" `Quick test_flush_resets;
    Alcotest.test_case "aliasing" `Quick test_aliasing;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_update_returns_prediction;
  ]
