open Tpro_kernel
open Tpro_channel
open Time_protection

(* ------------------------- registers ------------------------------ *)

let test_register_semantics () =
  let k = Kernel.create Kernel.config_none in
  let d = Kernel.create_domain k ~slice:100_000 ~pad_cycles:0 () in
  Kernel.map_region k d ~vbase:0x2000_0000 ~pages:1;
  let th =
    Kernel.spawn k d ~regs:[| 5 |]
      [|
        Program.Add (1, 0, 3); (* r1 = r0 + 3 = 8 *)
        Program.Set (2, 40);
        Program.Load_idx { base = 0x2000_0000; index = 1; scale = 64 };
        Program.Halt;
      |]
  in
  Kernel.run k;
  Alcotest.(check int) "r0 preserved" 5 (Thread.reg th 0);
  Alcotest.(check int) "r1 computed" 8 (Thread.reg th 1);
  Alcotest.(check int) "r2 set" 40 (Thread.reg th 2);
  Alcotest.(check bool) "indexed load hit the cache" true
    (Tpro_hw.Cache.probe
       (Tpro_hw.Machine.l1d (Kernel.machine k) ~core:0)
       (Option.get (Kernel.vaddr_to_paddr k d (0x2000_0000 + (8 * 64)))))

let test_register_bounds () =
  let th = Thread.create ~tid:0 ~dom:0 ~code_vbase:0 [| Program.Halt |] in
  Alcotest.check_raises "bad register" (Invalid_argument "Thread: bad register")
    (fun () -> ignore (Thread.reg th 9))

let test_indexed_fault () =
  let k = Kernel.create Kernel.config_none in
  let d = Kernel.create_domain k ~slice:100_000 ~pad_cycles:0 () in
  let th =
    Kernel.spawn k d ~regs:[| 100 |]
      [| Program.Load_idx { base = 0x7000_0000; index = 0; scale = 4096 };
         Program.Halt |]
  in
  Kernel.run k;
  Alcotest.(check bool) "unmapped indexed load faults" true
    (th.Thread.state = Thread.Halted
    && List.exists
         (function Event.Fault _ -> true | _ -> false)
         (Kernel.events k))

(* ------------------------- the side channel ----------------------- *)

let test_exact_recovery_without_tp () =
  let scen = Side_channel.scenario () in
  List.iter
    (fun secret ->
      Alcotest.(check int)
        (Printf.sprintf "secret %d recovered exactly" secret)
        secret
        (Attack.run_trial scen ~cfg:Presets.none ~seed:1 ~secret))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_side_channel_capacities () =
  let cap cfg =
    (Attack.measure ~seeds:[ 0; 1; 2 ] (Side_channel.scenario ()) ~cfg ())
      .Attack.capacity_bits
  in
  Alcotest.(check bool) "3 bits without protection" true (cap Presets.none > 2.9);
  Alcotest.(check bool) "colouring cannot reach the L1" true
    (cap Presets.colour_only > 2.9);
  Alcotest.(check bool) "closed by flushing" true (cap Presets.full < 0.01)

(* "Same program, different data": the two-run check with the secret
   only in the register file — the purest form of the side-channel
   setting — must find nothing under full TP. *)
let test_same_program_different_data_ni () =
  let build cfg ~secret =
    let k =
      Kernel.create
        ~machine_config:(Ni_scenario.machine_config ~seed:0)
        cfg
    in
    let hi = Kernel.create_domain k ~slice:20_000 ~pad_cycles:20_000 () in
    let lo = Kernel.create_domain k ~slice:20_000 ~pad_cycles:20_000 () in
    Kernel.map_region k hi ~vbase:0x4000_0000 ~pages:2;
    Kernel.map_region k lo ~vbase:0x2000_0000 ~pages:2;
    (* hi: fixed program, secret in r0, table walk indexed by it *)
    ignore
      (Kernel.spawn k hi ~regs:[| secret |]
         (Program.concat
            [
              Array.concat
                (List.init 16 (fun i ->
                     [|
                       Program.Add (1, 0, i);
                       Program.Load_idx
                         { base = 0x4000_0000; index = 1; scale = 192 };
                     |]));
              [| Program.Halt |];
            ]));
    let lo_th =
      Kernel.spawn k lo
        (Program.concat
           [
             [| Program.Read_clock |];
             Prime_probe.probe ~base:0x2000_0000 ~lines:16 ~line_size:64;
             [| Program.Read_clock; Program.Halt |];
           ])
    in
    { Tpro_secmodel.Nonint.kernel = k; observers = [ lo_th ] }
  in
  let report cfg =
    Tpro_secmodel.Nonint.two_run ~build:(build cfg) ~secret1:0 ~secret2:7 ()
  in
  Alcotest.(check bool) "data-secret invisible under full TP" true
    (Tpro_secmodel.Nonint.secure (report Presets.full));
  Alcotest.(check bool) "data-secret leaks without TP" false
    (Tpro_secmodel.Nonint.secure (report Presets.none))

let suite =
  [
    Alcotest.test_case "register semantics" `Quick test_register_semantics;
    Alcotest.test_case "register bounds" `Quick test_register_bounds;
    Alcotest.test_case "indexed fault" `Quick test_indexed_fault;
    Alcotest.test_case "exact secret recovery" `Slow
      test_exact_recovery_without_tp;
    Alcotest.test_case "side-channel capacities" `Slow
      test_side_channel_capacities;
    Alcotest.test_case "same program, different data" `Slow
      test_same_program_different_data_ni;
  ]
