open Tpro_channel
open Time_protection

(* Channel-capacity regression tests: each attack must work without its
   defence and die with it.  Small seed counts keep them fast; the
   capacities here are the headline numbers of EXPERIMENTS.md. *)

let seeds = [ 0; 1; 2 ]

let capacity scen cfg =
  (Attack.measure ~seeds scen ~cfg ()).Attack.capacity_bits

let open_ c = c > 0.5
let closed c = c < 0.01

let test_l1_channel () =
  let scen = Cache_channel.l1_scenario () in
  Alcotest.(check bool) "open without TP" true (open_ (capacity scen Presets.none));
  Alcotest.(check bool) "closed by flush+pad" true
    (closed (capacity scen Presets.flush_pad));
  Alcotest.(check bool) "colouring alone cannot close it" true
    (open_ (capacity scen Presets.colour_only))

let test_llc_channel () =
  let scen = Cache_channel.llc_scenario () in
  Alcotest.(check bool) "open without TP" true (open_ (capacity scen Presets.none));
  Alcotest.(check bool) "flushing does not close a shared cache" true
    (open_ (capacity scen Presets.flush_pad));
  Alcotest.(check bool) "closed by colouring" true
    (closed (capacity scen Presets.colour_only));
  Alcotest.(check bool) "closed under full TP" true
    (closed (capacity scen Presets.full))

let test_kernel_text_channel () =
  let scen = Kernel_text.scenario () in
  Alcotest.(check bool) "open without TP" true (open_ (capacity scen Presets.none));
  Alcotest.(check bool) "survives everything but the clone" true
    (open_ (capacity scen Presets.without_clone));
  Alcotest.(check bool) "closed by kernel clone" true
    (closed (capacity scen Presets.full))

let test_irq_channel () =
  let scen = Irq_channel.scenario () in
  Alcotest.(check bool) "open without TP" true (open_ (capacity scen Presets.none));
  Alcotest.(check bool) "survives everything but partitioning" true
    (open_ (capacity scen Presets.without_irq_partitioning));
  Alcotest.(check bool) "closed by IRQ partitioning" true
    (closed (capacity scen Presets.full))

let test_downgrader_channel () =
  let scen = Downgrader.scenario () in
  Alcotest.(check bool) "open without TP" true (open_ (capacity scen Presets.none));
  Alcotest.(check bool) "closed by deterministic delivery" true
    (closed (capacity scen Presets.full));
  Alcotest.(check bool) "closed by app-level WCET padding" true
    (closed (capacity (Downgrader.padded_scenario ()) Presets.none))

let test_tlb_channel () =
  let scen = Tlb_channel.scenario () in
  Alcotest.(check bool) "open without TP" true (open_ (capacity scen Presets.none));
  Alcotest.(check bool) "ASID tagging alone leaks" true
    (open_ (capacity scen Presets.without_flush));
  Alcotest.(check bool) "closed by flushing" true
    (closed (capacity scen Presets.full))

let test_bp_channel () =
  let scen = Bp_channel.scenario () in
  Alcotest.(check bool) "open without TP" true (open_ (capacity scen Presets.none));
  Alcotest.(check bool) "survives everything but the flush" true
    (open_ (capacity scen Presets.without_flush));
  Alcotest.(check bool) "closed by flushing" true
    (closed (capacity scen Presets.full))

let test_interconnect_channel () =
  let shared = Interconnect_channel.scenario ~bus:Interconnect_channel.shared_bus () in
  let tdma = Interconnect_channel.scenario ~bus:Interconnect_channel.tdma_bus () in
  Alcotest.(check bool) "open under FULL time protection (the scope limit)" true
    (open_ (capacity shared Presets.full));
  Alcotest.(check bool) "closed by hardware TDMA" true
    (closed (capacity tdma Presets.full))

let test_trial_determinism () =
  let scen = Cache_channel.l1_scenario () in
  let a = Attack.run_trial scen ~cfg:Presets.none ~seed:3 ~secret:5 in
  let b = Attack.run_trial scen ~cfg:Presets.none ~seed:3 ~secret:5 in
  Alcotest.(check int) "trials are reproducible" a b

let test_outcome_fields () =
  let o = Attack.measure ~seeds:[ 0 ] (Kernel_text.scenario ()) ~cfg:Presets.none () in
  Alcotest.(check int) "sample count = symbols x seeds" 2
    (List.length o.Attack.samples);
  Alcotest.(check bool) "matrix builds" true
    (Matrix.n_inputs (Attack.matrix o) = 2)

(* Calibration helpers *)

let test_calibration () =
  let open Tpro_kernel in
  let k =
    Kernel.create
      ~machine_config:(Cache_channel.llc_machine ~seed:0)
      Kernel.config_none
  in
  let d = Kernel.create_domain k ~slice:1000 ~pad_cycles:0 () in
  Kernel.map_region k d ~vbase:0x20000000 ~pages:8;
  (* without colouring the 8 pages cover ascending frames: two of each of
     the 4 colours *)
  let pages =
    Calibrate.pages_of_colour k d ~vbase:0x20000000 ~pages:8 ~colour:2
  in
  Alcotest.(check int) "two pages of colour 2" 2 (List.length pages);
  let picked =
    Calibrate.pick_colour_pages k d ~vbase:0x20000000 ~pages:8 ~colour:2
      ~want:4
  in
  Alcotest.(check int) "padded to want" 4 (List.length picked);
  Alcotest.(check (option int)) "unmapped vaddr has no colour" None
    (Calibrate.colour_of_vaddr k d 0x66600000)

let suite =
  [
    Alcotest.test_case "L1 channel" `Slow test_l1_channel;
    Alcotest.test_case "LLC channel" `Slow test_llc_channel;
    Alcotest.test_case "kernel-text channel" `Slow test_kernel_text_channel;
    Alcotest.test_case "irq channel" `Slow test_irq_channel;
    Alcotest.test_case "downgrader channel" `Slow test_downgrader_channel;
    Alcotest.test_case "TLB channel" `Slow test_tlb_channel;
    Alcotest.test_case "branch-predictor channel" `Slow test_bp_channel;
    Alcotest.test_case "interconnect channel" `Slow test_interconnect_channel;
    Alcotest.test_case "trial determinism" `Quick test_trial_determinism;
    Alcotest.test_case "outcome fields" `Quick test_outcome_fields;
    Alcotest.test_case "calibration" `Quick test_calibration;
  ]
