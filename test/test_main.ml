let () =
  Alcotest.run "time-protection"
    [
      ("rng", Test_rng.suite);
      ("cache", Test_cache.suite);
      ("tlb", Test_tlb.suite);
      ("bpred", Test_bpred.suite);
      ("prefetch", Test_prefetch.suite);
      ("clock/mem/bus/latency", Test_clock_mem_bus.suite);
      ("machine", Test_machine.suite);
      ("kernel", Test_kernel.suite);
      ("program", Test_program.suite);
      ("frame_alloc", Test_frame_alloc.suite);
      ("kclone", Test_kclone.suite);
      ("irq/ipc/sched/event", Test_irq_ipc_sched.suite);
      ("hist/matrix/capacity", Test_hist_matrix_capacity.suite);
      ("prime_probe", Test_prime_probe.suite);
      ("secmodel", Test_secmodel.suite);
      ("resource-registry", Test_resource.suite);
      ("flat-state", Test_flatstate.suite);
      ("nonint/proofs", Test_nonint_proofs.suite);
      ("channels", Test_channels.suite);
      ("core", Test_core_lib.suite);
      ("hw-extensions", Test_hw_extensions.suite);
      ("wcet/trace/protocol", Test_wcet_trace_protocol.suite);
      ("exhaustive/mutual", Test_exhaustive_mutual.suite);
      ("system", Test_system.suite);
      ("kernel-properties", Test_kernel_properties.suite);
      ("side-channel", Test_side_channel.suite);
      ("more-properties", Test_more_properties.suite);
      ("engine-edges", Test_engine_edges.suite);
      ("scheduler", Test_scheduler.suite);
      ("parallel-engine", Test_parallel.suite);
      ("supervisor", Test_supervisor.suite);
      ("prove", Test_prove.suite);
      ("fuzz", Test_fuzz.suite);
      ("cli", Test_cli.suite);
    ]
