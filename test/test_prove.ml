(* The composed theorem and its supervised derivation: composition
   semantics, evidence serialisation, registry-driven scope obligations
   (a resource registered with no defence must be acknowledged or the
   theorem fails — with zero edits to the security model), the per-kind
   exhaustive universes, and [Prove.run] end to end. *)

open Tpro_secmodel
module Resource = Tpro_hw.Resource
module Machine = Tpro_hw.Machine
module Ni_scenario = Time_protection.Ni_scenario
module Presets = Time_protection.Presets
module Prove = Time_protection.Prove

let smoke_seeds = [ 0 ]
let smoke_secrets = [ 0; 1 ]

let lemma ?(verdict = Lemma.Proved "ok") lid =
  {
    Lemma.lid;
    subject = lid;
    mechanism = Lemma.Flush;
    statement = "test lemma";
    verdict;
  }

(* --- compose ------------------------------------------------------- *)

let test_compose_semantics () =
  let t = Theorem.compose [ lemma "a"; lemma "b" ] in
  Alcotest.(check bool) "all proved holds" true t.Theorem.holds;
  Alcotest.(check int) "nothing refuted" 0 (List.length t.Theorem.refuted);
  let t =
    Theorem.compose
      [ lemma "a"; lemma ~verdict:(Lemma.Refuted "broken") "b"; lemma "c" ]
  in
  Alcotest.(check bool) "one refutation sinks it" false t.Theorem.holds;
  (match t.Theorem.first_counter_example with
  | Some (lid, detail) ->
    Alcotest.(check string) "counter-example names the lemma" "b" lid;
    Alcotest.(check string) "counter-example carries the detail" "broken"
      detail
  | None -> Alcotest.fail "refuted theorem must expose a counter-example");
  let unack =
    lemma ~verdict:(Lemma.Unscoped { acknowledged = false }) "scope:x"
  in
  let t = Theorem.compose [ lemma "a"; unack ] in
  Alcotest.(check bool) "unacknowledged scope sinks it" false t.Theorem.holds;
  Alcotest.(check (list string)) "unacknowledged is named" [ "scope:x" ]
    t.Theorem.unacknowledged;
  let ack = lemma ~verdict:(Lemma.Unscoped { acknowledged = true }) "scope:x" in
  let t = Theorem.compose [ lemma "a"; ack ] in
  Alcotest.(check bool) "acknowledged scope passes" true t.Theorem.holds

(* --- evidence serialisation ---------------------------------------- *)

let collect_smoke ?(cfg = Presets.full) () =
  Theorem.collect ~seed:0
    ~build:(fun ~secret ->
      Ni_scenario.build_with ~with_btb:true ~cfg ~seed:0 ~secret)
    ~secrets:smoke_secrets ()

let test_evidence_roundtrip () =
  List.iter
    (fun cfg ->
      let ev = collect_smoke ~cfg () in
      let s = Theorem.evidence_to_string ev in
      match Theorem.evidence_of_string s with
      | Error m -> Alcotest.failf "evidence_of_string: %s" m
      | Ok ev' ->
        Alcotest.(check string)
          "round-trip re-serialises identically"
          s
          (Theorem.evidence_to_string ev');
        (* the reconstructed checks are byte-identical too *)
        let render evidence =
          String.concat "\n"
            (List.map
               (fun c -> Format.asprintf "%a" Proofs.pp c)
               (Theorem.checks_of_evidence ~secrets:smoke_secrets
                  ~evidence:[ evidence ]))
        in
        Alcotest.(check string) "checks from round-tripped evidence" (render ev)
          (render ev'))
    [ Presets.full; Presets.none ];
  match Theorem.evidence_of_string "seed\tnot-a-number\n" with
  | Ok _ -> Alcotest.fail "malformed evidence must not parse"
  | Error _ -> ()

(* --- the verify path consumes the theorem -------------------------- *)

let test_verify_carries_theorem () =
  let r = Time_protection.Verify.run ~seeds:smoke_seeds ~secrets:smoke_secrets
      ~cfg:Presets.full () in
  Alcotest.(check bool) "full verifies" true r.Time_protection.Verify.all_hold;
  let t = r.Time_protection.Verify.theorem in
  Alcotest.(check bool) "theorem holds" true t.Theorem.holds;
  (* the registry's out-of-scope resource is acknowledged by the audit *)
  Alcotest.(check (list string)) "no unacknowledged scope" []
    t.Theorem.unacknowledged;
  Alcotest.(check bool) "interconnect scope lemma present" true
    (List.exists
       (fun l -> l.Lemma.lid = "scope:memory interconnect")
       t.Theorem.lemmas);
  let r = Time_protection.Verify.run ~seeds:smoke_seeds ~secrets:smoke_secrets
      ~cfg:Presets.none () in
  Alcotest.(check bool) "none is refuted" false r.Time_protection.Verify.all_hold;
  Alcotest.(check bool) "theorem refuted under none" true
    (r.Time_protection.Verify.theorem.Theorem.refuted <> [])

(* --- a Neither-resource registration must be loud ------------------ *)

(* Register a bandwidth-shared gadget with no defence on the scenario's
   machine — purely through the public registry, zero security-model
   edits — and demand the composed theorem refuse to hold until the
   gadget is explicitly acknowledged. *)
let build_with_gadget ~seed ~secret =
  let run = Ni_scenario.build ~cfg:Presets.full ~seed ~secret in
  let m = Tpro_kernel.Kernel.machine run.Nonint.kernel in
  Machine.register_shared_resource m
    (Resource.make ~name:"dma gadget" ~classification:Resource.Neither
       ~digest:(fun () -> 0L)
       ~flush:(fun () -> Resource.no_flush)
       ());
  run

let test_neither_needs_acknowledgement () =
  let derive ?acknowledge () =
    (Theorem.derive ?acknowledge ~seeds:smoke_seeds ~build:build_with_gadget
       ~secrets:smoke_secrets ())
      .Theorem.theorem
  in
  let t = derive () in
  Alcotest.(check bool) "unacknowledged gadget sinks the theorem" false
    t.Theorem.holds;
  Alcotest.(check bool) "gadget is named" true
    (List.mem "dma gadget" t.Theorem.unacknowledged);
  Alcotest.(check bool) "nothing is refuted (it is a scope failure)" true
    (t.Theorem.refuted = []);
  let t = derive ~acknowledge:[ "dma gadget"; "memory interconnect" ] () in
  Alcotest.(check bool) "acknowledged gadget restores the theorem" true
    t.Theorem.holds;
  Alcotest.(check bool) "scope lemma still present" true
    (List.exists (fun l -> l.Lemma.lid = "scope:dma gadget") t.Theorem.lemmas)

(* --- per-kind exhaustive universes --------------------------------- *)

let test_kind_universes () =
  let machine =
    Machine.create (Ni_scenario.machine_config_with ~with_btb:true ~seed:0)
  in
  let kus = Exhaustive.kind_universes ~machine () in
  let labels = List.map (fun k -> k.Exhaustive.ku_label) kus in
  Alcotest.(check (list string))
    "kinds with universes, registry order"
    [ "cache"; "tlb"; "predictor"; "prefetcher" ]
    labels;
  let by_label l = List.find (fun k -> k.Exhaustive.ku_label = l) kus in
  Alcotest.(check (list string))
    "predictor universe covers bpred and btb"
    [ "branch predictor"; "branch target buffer" ]
    (by_label "predictor").Exhaustive.ku_resources;
  Alcotest.(check (list string))
    "cache universe covers every cache" [ "l1i0"; "l1d0"; "llc" ]
    (by_label "cache").Exhaustive.ku_resources;
  (* the interconnect (Neither) has no universe *)
  Alcotest.(check bool) "no interconnect universe" true
    (not (List.exists (fun k -> k.Exhaustive.ku_label = "interconnect") kus));
  List.iter
    (fun ku ->
      Alcotest.(check bool)
        (ku.Exhaustive.ku_label ^ " universe is non-trivial")
        true
        (Exhaustive.universe_size ku.Exhaustive.ku_universe > 1))
    kus

(* --- Prove.run end to end ------------------------------------------ *)

let test_prove_run () =
  Tpro_engine.Supervisor.with_supervisor ~domains:2 (fun sup ->
      let o =
        Prove.run ~sup ~acknowledge:[ "memory interconnect" ]
          ~seeds:smoke_seeds ~secrets:smoke_secrets
          ~presets:[ ("full", Presets.full); ("none", Presets.none) ]
          ()
      in
      match o.Prove.reports with
      | [ full; none ] ->
        Alcotest.(check string) "report order" "full" full.Prove.preset;
        Alcotest.(check bool) "full holds" true full.Prove.theorem.Theorem.holds;
        Alcotest.(check bool) "none refuted" true
          (none.Prove.theorem.Theorem.refuted <> []);
        Alcotest.(check bool) "no lost tasks" true
          (full.Prove.lost = [] && none.Prove.lost = []);
        (* every registered resource auto-derives a lemma, BTB included *)
        let lids =
          List.map (fun l -> l.Lemma.lid) full.Prove.theorem.Theorem.lemmas
        in
        List.iter
          (fun lid ->
            Alcotest.(check bool) (lid ^ " derived") true (List.mem lid lids))
          [
            "flush:l1i0"; "flush:l1d0"; "flush:TLB"; "flush:branch predictor";
            "flush:prefetcher"; "flush:branch target buffer"; "partition:llc";
            "scope:memory interconnect"; "kernel:user-step"; "kernel:trap";
            "kernel:padded-switch"; "kernel:noninterference";
            "kernel:invariants"; "exhaustive:cache"; "exhaustive:tlb";
            "exhaustive:predictor"; "exhaustive:prefetcher";
          ];
        (* the JSON artifact mentions every preset and is non-empty *)
        let json = Prove.to_json o.Prove.reports in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("json mentions " ^ needle) true
              (let lh = String.length json and ln = String.length needle in
               let rec go i =
                 i + ln <= lh && (String.sub json i ln = needle || go (i + 1))
               in
               go 0))
          [ "\"preset\": \"full\""; "\"preset\": \"none\""; "flush:l1d0" ]
      | l -> Alcotest.failf "expected 2 reports, got %d" (List.length l))

(* --- partial checkpoint resume ------------------------------------- *)

(* Simulate a crash after the first task: truncate a finished
   checkpoint to its first task line and resume — the surviving task is
   reused (resumed_tasks = 1), the rest recollects, and the composed
   reports are identical to the uninterrupted run's. *)
let test_partial_resume () =
  let ckpt = Filename.temp_file "tpro-prove-ck" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists ckpt then Sys.remove ckpt)
    (fun () ->
      let presets = [ ("full", Presets.full); ("none", Presets.none) ] in
      let run_campaign ~resume =
        Tpro_engine.Supervisor.with_supervisor ~domains:1 (fun sup ->
            Prove.run ~sup ~checkpoint:ckpt ~resume
              ~acknowledge:[ "memory interconnect" ] ~seeds:smoke_seeds
              ~secrets:smoke_secrets ~presets ())
      in
      let reference = run_campaign ~resume:false in
      let payload =
        match Tpro_engine.Checkpoint.load ~path:ckpt with
        | Ok p -> p
        | Error e ->
          Alcotest.failf "finished checkpoint unreadable: %s"
            (Tpro_engine.Checkpoint.error_to_string e)
      in
      (* keep the 4 header lines and the first task line only *)
      let truncated =
        String.concat "\n"
          (List.filteri
             (fun i _ -> i < 5)
             (List.filter
                (fun l -> String.trim l <> "")
                (String.split_on_char '\n' payload)))
        ^ "\n"
      in
      Tpro_engine.Checkpoint.save ~path:ckpt truncated;
      let resumed = run_campaign ~resume:true in
      Alcotest.(check int) "one task survived the crash" 1
        resumed.Prove.resumed_tasks;
      List.iter2
        (fun (a : Prove.report) (b : Prove.report) ->
          Alcotest.(check string) "same preset" a.Prove.preset b.Prove.preset;
          Alcotest.(check string) "bit-identical theorem rendering"
            (Format.asprintf "%a" Prove.pp_report a)
            (Format.asprintf "%a" Prove.pp_report b))
        reference.Prove.reports resumed.Prove.reports)

let suite =
  [
    Alcotest.test_case "compose: conjunction semantics" `Quick
      test_compose_semantics;
    Alcotest.test_case "evidence serialisation round-trips" `Quick
      test_evidence_roundtrip;
    Alcotest.test_case "verify consumes the composed theorem" `Quick
      test_verify_carries_theorem;
    Alcotest.test_case "Neither-resource needs acknowledgement" `Quick
      test_neither_needs_acknowledgement;
    Alcotest.test_case "per-kind exhaustive universes" `Quick
      test_kind_universes;
    Alcotest.test_case "Prove.run derives every lemma" `Quick test_prove_run;
    Alcotest.test_case "partial checkpoint resume recomposes identically"
      `Quick test_partial_resume;
  ]
