open Tpro_hw
open Tpro_kernel

let mk () =
  let mem = Mem.create ~n_frames:64 () in
  (mem, Frame_alloc.create mem ~n_colours:4)

let test_colour_of_frame () =
  let _, a = mk () in
  Alcotest.(check int) "frame 0" 0 (Frame_alloc.colour_of_frame a 0);
  Alcotest.(check int) "frame 5" 1 (Frame_alloc.colour_of_frame a 5);
  Alcotest.(check int) "frame 7" 3 (Frame_alloc.colour_of_frame a 7)

let test_alloc_respects_colours () =
  let mem, a = mk () in
  match Frame_alloc.alloc a ~owner:9 ~colours:[ 2 ] with
  | None -> Alcotest.fail "allocation should succeed"
  | Some f ->
    Alcotest.(check int) "colour 2 frame" 2 (Frame_alloc.colour_of_frame a f);
    Alcotest.(check int) "ownership recorded" 9 (Mem.owner_of_frame mem f)

let test_alloc_ascending () =
  let _, a = mk () in
  let f1 = Frame_alloc.alloc_exn a ~owner:1 ~colours:[ 0; 1; 2; 3 ] in
  let f2 = Frame_alloc.alloc_exn a ~owner:1 ~colours:[ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "lowest frames first" true (f1 < f2);
  Alcotest.(check int) "first frame is 0" 0 f1

let test_exhaustion () =
  let _, a = mk () in
  (* 16 frames of each colour *)
  for _ = 1 to 16 do
    ignore (Frame_alloc.alloc_exn a ~owner:1 ~colours:[ 1 ])
  done;
  Alcotest.(check (option int)) "colour 1 exhausted" None
    (Frame_alloc.alloc a ~owner:1 ~colours:[ 1 ]);
  Alcotest.(check bool) "other colours still available" true
    (Frame_alloc.alloc a ~owner:1 ~colours:[ 2 ] <> None)

let test_free_and_reuse () =
  let mem, a = mk () in
  let f = Frame_alloc.alloc_exn a ~owner:1 ~colours:[ 0 ] in
  Frame_alloc.free a ~frame:f;
  Alcotest.(check int) "freed" Mem.free_owner (Mem.owner_of_frame mem f);
  Alcotest.(check int) "reused" f (Frame_alloc.alloc_exn a ~owner:2 ~colours:[ 0 ])

let test_free_count () =
  let _, a = mk () in
  Alcotest.(check int) "initial" 16 (Frame_alloc.free_count a ~colour:3);
  ignore (Frame_alloc.alloc_exn a ~owner:1 ~colours:[ 3 ]);
  Alcotest.(check int) "one taken" 15 (Frame_alloc.free_count a ~colour:3)

let test_respects_preexisting_ownership () =
  let mem = Mem.create ~n_frames:8 () in
  Mem.set_owner mem ~frame:0 ~owner:42;
  let a = Frame_alloc.create mem ~n_colours:4 in
  let f = Frame_alloc.alloc_exn a ~owner:1 ~colours:[ 0 ] in
  Alcotest.(check bool) "already-owned frame skipped" true (f <> 0)

let prop_alloc_never_two_owners =
  QCheck.Test.make ~name:"no frame handed out twice" ~count:100
    QCheck.(list (int_bound 3))
    (fun colour_requests ->
      let _, a = mk () in
      let frames =
        List.filter_map
          (fun c -> Frame_alloc.alloc a ~owner:1 ~colours:[ c ])
          colour_requests
      in
      List.length frames = List.length (List.sort_uniq compare frames))

let suite =
  [
    Alcotest.test_case "colour_of_frame" `Quick test_colour_of_frame;
    Alcotest.test_case "alloc respects colours" `Quick test_alloc_respects_colours;
    Alcotest.test_case "alloc ascending" `Quick test_alloc_ascending;
    Alcotest.test_case "exhaustion" `Quick test_exhaustion;
    Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
    Alcotest.test_case "free_count" `Quick test_free_count;
    Alcotest.test_case "respects preexisting ownership" `Quick
      test_respects_preexisting_ownership;
    QCheck_alcotest.to_alcotest prop_alloc_never_two_owners;
  ]
