open Tpro_kernel
open Time_protection

let simple_spec () =
  System.spec ~protection:Presets.full
    [
      System.domain ~name:"alice" ~slice:10_000
        ~regions:[ { System.vbase = 0x2000_0000; pages = 2 } ]
        [
          [|
            Program.Read_clock;
            Program.Load 0x2000_0000;
            Program.Read_clock;
            Program.Halt;
          |];
        ];
      System.domain ~name:"bob" ~slice:10_000
        [ [| Program.Compute 500; Program.Halt |] ];
    ]

let test_build_and_run () =
  let sys = System.build (simple_spec ()) in
  System.run sys;
  Alcotest.(check bool) "everything halted" true
    (Kernel.all_halted (System.kernel sys));
  match System.observations sys "alice" with
  | [ [ Event.Clock a; Event.Clock b ] ] ->
    Alcotest.(check bool) "time advanced" true (b > a)
  | _ -> Alcotest.fail "expected one thread with two clock readings"

let test_lookup () =
  let sys = System.build (simple_spec ()) in
  Alcotest.(check int) "alice is domain 0" 0
    (System.domain_named sys "alice").Domain.did;
  Alcotest.(check int) "bob has one thread" 1
    (List.length (System.threads_of sys "bob"));
  Alcotest.check_raises "unknown domain"
    (Invalid_argument "System: unknown domain carol") (fun () ->
      ignore (System.domain_named sys "carol"))

let test_duplicate_names_rejected () =
  let s =
    System.spec ~protection:Presets.none
      [
        System.domain ~name:"x" ~slice:1_000 [];
        System.domain ~name:"x" ~slice:1_000 [];
      ]
  in
  Alcotest.check_raises "duplicates"
    (Invalid_argument "System.build: duplicate domain names") (fun () ->
      ignore (System.build s))

let test_default_pad_is_wcet () =
  let sys = System.build (simple_spec ()) in
  let expected =
    Wcet.recommended_pad Tpro_hw.Machine.default_config
  in
  Alcotest.(check int) "pad filled in by the WCET analysis" expected
    (System.domain_named sys "alice").Domain.pad_cycles

let test_sharing () =
  let s =
    System.spec ~protection:Presets.none
      ~shared:
        [
          {
            System.from_domain = "srv";
            to_domain = "cli";
            region = { System.vbase = 0x5000_0000; pages = 1 };
            at_vbase = 0x6000_0000;
          };
        ]
      [
        System.domain ~name:"srv" ~slice:1_000
          ~regions:[ { System.vbase = 0x5000_0000; pages = 1 } ]
          [];
        System.domain ~name:"cli" ~slice:1_000 [];
      ]
  in
  let sys = System.build s in
  let k = System.kernel sys in
  Alcotest.(check (option int)) "same frame via both views"
    (Kernel.vaddr_to_paddr k (System.domain_named sys "srv") 0x5000_0000)
    (Kernel.vaddr_to_paddr k (System.domain_named sys "cli") 0x6000_0000)

let test_irq_ownership () =
  let s =
    System.spec ~protection:Presets.full
      [ System.domain ~name:"drv" ~slice:1_000 ~irqs:[ 2; 3 ] [] ]
  in
  let sys = System.build s in
  let k = System.kernel sys in
  Alcotest.(check int) "irq 2 owned" 0 (Irq.owner (Kernel.irqs k) 2);
  Alcotest.(check int) "irq 3 owned" 0 (Irq.owner (Kernel.irqs k) 3)

let suite =
  [
    Alcotest.test_case "build and run" `Quick test_build_and_run;
    Alcotest.test_case "lookup" `Quick test_lookup;
    Alcotest.test_case "duplicate names rejected" `Quick
      test_duplicate_names_rejected;
    Alcotest.test_case "default pad is WCET" `Quick test_default_pad_is_wcet;
    Alcotest.test_case "sharing" `Quick test_sharing;
    Alcotest.test_case "irq ownership" `Quick test_irq_ownership;
  ]
