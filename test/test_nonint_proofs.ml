open Tpro_kernel
open Tpro_secmodel
open Time_protection

(* These are the headline verification regression tests: the proof stack
   must hold under full time protection and find counter-examples when any
   single mechanism is removed.  A reduced sampled universe (2 secrets,
   1 seed) keeps them fast. *)

let secrets = [ 0; 1 ]
let seed = 0

let build cfg ~secret = Ni_scenario.build ~cfg ~seed ~secret

let report cfg =
  Nonint.two_run ~build:(build cfg) ~secret1:0 ~secret2:1 ()

let test_full_is_secure () =
  Alcotest.(check bool) "no divergence under full TP" true
    (Nonint.secure (report Presets.full))

let test_none_is_insecure () =
  Alcotest.(check bool) "divergence without TP" false
    (Nonint.secure (report Presets.none))

let test_each_ablation_leaks () =
  (* a knocked-out mechanism may only leak for some secret pairs, so this
     check samples a wider universe than the quick two-run tests *)
  let leaks cfg =
    Nonint.check_secrets ~build:(build cfg) ~secrets:[ 0; 1; 2; 3 ] () <> []
  in
  List.iter
    (fun (name, cfg) ->
      if name <> "full" then
        Alcotest.(check bool) (name ^ " leaks") true (leaks cfg))
    Presets.ablations

let test_case1_full () =
  let c =
    Proofs.case1_user_steps ~build:(fun ~secret -> build Presets.full ~secret)
      ~secrets ()
  in
  Alcotest.(check bool) "case 1 holds" true c.Proofs.holds

let test_case2a_full () =
  let c =
    Proofs.case2a_traps ~build:(fun ~secret -> build Presets.full ~secret)
      ~secrets ()
  in
  Alcotest.(check bool) "case 2a holds" true c.Proofs.holds

let test_case2b_full () =
  let run = Nonint.execute (build Presets.full) 0 in
  let c = Proofs.case2b_constant_switch run.Nonint.kernel in
  Alcotest.(check bool) "case 2b holds" true c.Proofs.holds

let test_case2b_catches_unpadded_idle () =
  (* without deterministic delivery, idle handovers land off the deadline *)
  let run =
    Nonint.execute (build Presets.without_deterministic_delivery) 0
  in
  let c = Proofs.case2b_constant_switch run.Nonint.kernel in
  Alcotest.(check bool) "case 2b detects early handover" false c.Proofs.holds

let test_noninterference_check () =
  let c =
    Proofs.noninterference ~build:(fun ~secret -> build Presets.full ~secret)
      ~secrets ()
  in
  Alcotest.(check bool) "NI holds" true c.Proofs.holds;
  let c' =
    Proofs.noninterference ~build:(fun ~secret -> build Presets.none ~secret)
      ~secrets ()
  in
  Alcotest.(check bool) "NI violated without TP" false c'.Proofs.holds

let test_invariants_throughout () =
  let c =
    Proofs.invariants_throughout ~check_every:100
      ~build:(fun ~secret -> build Presets.full ~secret)
      ~secret:0 ()
  in
  Alcotest.(check bool) "invariants hold" true c.Proofs.holds

let test_across_seeds_conjunction () =
  let c =
    Proofs.across_seeds ~seeds:[ 0; 1 ] (fun ~seed ->
        Proofs.noninterference
          ~build:(fun ~secret -> Ni_scenario.build ~cfg:Presets.full ~seed ~secret)
          ~secrets ())
  in
  Alcotest.(check bool) "holds across seeds" true c.Proofs.holds

let test_across_seeds_reports_failing_seed () =
  let c =
    Proofs.across_seeds ~seeds:[ 7 ] (fun ~seed ->
        Proofs.noninterference
          ~build:(fun ~secret -> Ni_scenario.build ~cfg:Presets.none ~seed ~secret)
          ~secrets ())
  in
  Alcotest.(check bool) "failure surfaces" false c.Proofs.holds;
  Alcotest.(check bool) "seed named in detail" true
    (String.length (Proofs.detail_text c.Proofs.detail) > 0)

let test_unwinding_holds_full () =
  let c =
    Unwinding.check ~build:(build Presets.full) ~secrets:[ 0; 1; 2 ] ()
  in
  Alcotest.(check bool) "unwinding relation preserved" true c.Proofs.holds

let test_unwinding_names_component () =
  match
    Unwinding.check_pair ~build:(build Presets.without_colouring) ~secret1:0
      ~secret2:1 ()
  with
  | None -> Alcotest.fail "colour ablation must break the relation"
  | Some d ->
    Alcotest.(check string) "the LLC partition lemma is the broken component"
      "partition:llc" d.Unwinding.component;
    Alcotest.(check bool) "at a definite Lo step" true (d.Unwinding.lo_step >= 1)

let test_lo_view_shape () =
  let run = Nonint.execute (build Presets.full) 0 in
  let lo_dom = (List.hd run.Nonint.observers).Thread.dom in
  let view = Unwinding.lo_view run.Nonint.kernel ~lo_dom in
  Alcotest.(check (list string)) "view components"
    [
      "lo-threads";
      "lo-observations";
      "flush:l1i0";
      "flush:l1d0";
      "flush:TLB";
      "flush:branch predictor";
      "flush:prefetcher";
      "partition:llc";
      "kernel:clock";
    ]
    (List.map fst view)

let test_execute_traces_observers () =
  let run = Nonint.execute (build Presets.full) 0 in
  List.iter
    (fun th ->
      Alcotest.(check bool) "cost trace recorded" true
        (Thread.cost_trace th <> []))
    run.Nonint.observers

let suite =
  [
    Alcotest.test_case "full is secure" `Quick test_full_is_secure;
    Alcotest.test_case "none is insecure" `Quick test_none_is_insecure;
    Alcotest.test_case "each ablation leaks" `Slow test_each_ablation_leaks;
    Alcotest.test_case "case 1 (user steps)" `Quick test_case1_full;
    Alcotest.test_case "case 2a (traps)" `Quick test_case2a_full;
    Alcotest.test_case "case 2b (switch slot)" `Quick test_case2b_full;
    Alcotest.test_case "case 2b catches early handover" `Quick
      test_case2b_catches_unpadded_idle;
    Alcotest.test_case "noninterference both ways" `Quick
      test_noninterference_check;
    Alcotest.test_case "invariants throughout" `Quick test_invariants_throughout;
    Alcotest.test_case "across seeds conjunction" `Quick
      test_across_seeds_conjunction;
    Alcotest.test_case "across seeds failure reporting" `Quick
      test_across_seeds_reports_failing_seed;
    Alcotest.test_case "execute traces observers" `Quick
      test_execute_traces_observers;
    Alcotest.test_case "unwinding holds under full TP" `Slow
      test_unwinding_holds_full;
    Alcotest.test_case "unwinding names the broken component" `Quick
      test_unwinding_names_component;
    Alcotest.test_case "lo_view shape" `Quick test_lo_view_shape;
  ]
