open Tpro_hw

let test_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.next a <> Rng.next b)

let test_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_int_invalid () =
  let r = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xa = Rng.next a and xb = Rng.next b in
  Alcotest.(check bool) "split streams differ" true (xa <> xb)

let test_copy () =
  let a = Rng.create 9 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next a) (Rng.next b)

let test_hash64_pure () =
  Alcotest.(check int64) "hash64 pure" (Rng.hash64 123L) (Rng.hash64 123L);
  Alcotest.(check bool) "hash64 mixes" true (Rng.hash64 1L <> Rng.hash64 2L)

let test_combine_order () =
  Alcotest.(check bool) "combine is order-sensitive" true
    (Rng.combine 1L 2L <> Rng.combine 2L 1L)

let test_hash_int_nonneg () =
  let seed = 0xABCDL in
  for i = 0 to 1000 do
    Alcotest.(check bool) "hash_int non-negative" true
      (Rng.hash_int seed (Int64.of_int i) >= 0)
  done

let test_bool_balanced () =
  let r = Rng.create 11 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4000 && !trues < 6000)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "hash64 pure" `Quick test_hash64_pure;
    Alcotest.test_case "combine order" `Quick test_combine_order;
    Alcotest.test_case "hash_int non-negative" `Quick test_hash_int_nonneg;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
  ]
