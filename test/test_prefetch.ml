open Tpro_hw

let test_no_prefetch_cold () =
  let p = Prefetch.create () in
  Alcotest.(check (list int)) "first access trains only" []
    (Prefetch.observe p ~pc:0x40 ~addr:0x1000)

let test_stride_detection () =
  let p = Prefetch.create () in
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1000);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1040);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1080);
  let pf = Prefetch.observe p ~pc:0x40 ~addr:0x10C0 in
  Alcotest.(check (list int)) "prefetches next strides" [ 0x1100; 0x1140 ] pf

let test_stride_change_resets_confidence () =
  let p = Prefetch.create () in
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1000);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1040);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1080);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x5000);
  Alcotest.(check (list int)) "irregular access stops prefetching" []
    (Prefetch.observe p ~pc:0x40 ~addr:0x6000)

let test_zero_stride_no_prefetch () =
  let p = Prefetch.create () in
  for _ = 1 to 8 do
    ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1000)
  done;
  Alcotest.(check (list int)) "repeated same address: nothing to prefetch" []
    (Prefetch.observe p ~pc:0x40 ~addr:0x1000)

let test_flush () =
  let p = Prefetch.create () in
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1000);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1040);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1080);
  Prefetch.flush p;
  let fresh = Prefetch.create () in
  Alcotest.(check int64) "flush equals power-on" (Prefetch.digest fresh)
    (Prefetch.digest p);
  Alcotest.(check (list int)) "no prefetch after flush" []
    (Prefetch.observe p ~pc:0x40 ~addr:0x10C0)

let test_per_pc_tracking () =
  let p = Prefetch.create ~slots:16 () in
  (* interleave two streams on different pcs: both should train *)
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1000);
  ignore (Prefetch.observe p ~pc:0x44 ~addr:0x9000);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1040);
  ignore (Prefetch.observe p ~pc:0x44 ~addr:0x9100);
  ignore (Prefetch.observe p ~pc:0x40 ~addr:0x1080);
  ignore (Prefetch.observe p ~pc:0x44 ~addr:0x9200);
  Alcotest.(check (list int)) "stream A prefetches" [ 0x1100; 0x1140 ]
    (Prefetch.observe p ~pc:0x40 ~addr:0x10C0);
  Alcotest.(check (list int)) "stream B prefetches" [ 0x9400; 0x9500 ]
    (Prefetch.observe p ~pc:0x44 ~addr:0x9300)

let suite =
  [
    Alcotest.test_case "cold start" `Quick test_no_prefetch_cold;
    Alcotest.test_case "stride detection" `Quick test_stride_detection;
    Alcotest.test_case "stride change resets" `Quick test_stride_change_resets_confidence;
    Alcotest.test_case "zero stride" `Quick test_zero_stride_no_prefetch;
    Alcotest.test_case "flush" `Quick test_flush;
    Alcotest.test_case "per-pc tracking" `Quick test_per_pc_tracking;
  ]
