open Tpro_hw
open Tpro_channel
open Time_protection

(* A final batch of cross-cutting properties. *)

let prop_matrix_rows_normalised =
  QCheck.Test.make ~name:"channel matrix rows sum to 1" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (pair (int_bound 5) (int_bound 9)))
    (fun samples ->
      match samples with
      | [] -> true
      | _ ->
        let m = Matrix.of_samples samples in
        let ok = ref true in
        for i = 0 to Matrix.n_inputs m - 1 do
          let s = Array.fold_left ( +. ) 0. (Matrix.row m i) in
          if Float.abs (s -. 1.) > 1e-9 then ok := false
        done;
        !ok)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone in q" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 60) (int_bound 1000))
    (fun values ->
      let h = Hist.of_list values in
      let qs = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
      let quantiles = List.map (Hist.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono quantiles)

let prop_mi_bounded_by_entropy =
  QCheck.Test.make ~name:"mutual information <= min(H(X), log |Y|)" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 60) (pair (int_bound 3) (int_bound 7)))
    (fun samples ->
      match List.sort_uniq compare (List.map fst samples) with
      | [] | [ _ ] -> true
      | inputs ->
        let m = Matrix.of_samples samples in
        let mi = Capacity.mutual_information m in
        let hx = log (float_of_int (List.length inputs)) /. log 2. in
        let hy = log (float_of_int (Matrix.n_outputs m)) /. log 2. in
        mi <= hx +. 1e-9 && mi <= hy +. 1e-9)

let prop_tdma_isolation =
  (* under strict TDMA, domain 1's latencies are a function of its own
     request times only, whatever domain 0 does *)
  QCheck.Test.make ~name:"TDMA: foreign traffic never changes own latency"
    ~count:100
    QCheck.(pair (list (int_bound 500)) (list_of_size (Gen.int_range 1 10) (int_bound 500)))
    (fun (foreign, own) ->
      let mk () =
        Interconnect.create ~service:16
          ~mode:(Interconnect.Partitioned { slot = 32; n_domains = 2 })
          ()
      in
      let quiet = mk () and noisy = mk () in
      List.iter
        (fun t -> ignore (Interconnect.request noisy ~domain:0 ~now:t))
        (List.sort compare foreign);
      let own = List.sort compare own in
      let run bus = List.map (fun t -> Interconnect.request bus ~domain:1 ~now:(1000 + t)) own in
      run quiet = run noisy)

let prop_shared_bus_not_isolated =
  (* sanity for the property above: the same experiment on a shared bus
     does find interference for heavy foreign traffic *)
  QCheck.Test.make ~name:"shared bus: saturated foreign traffic delays us"
    ~count:50
    QCheck.(int_bound 100)
    (fun jitter ->
      let mk () = Interconnect.create ~service:64 () in
      let quiet = mk () and noisy = mk () in
      for i = 0 to 19 do
        ignore (Interconnect.request noisy ~domain:0 ~now:(900 + i + jitter))
      done;
      Interconnect.request noisy ~domain:1 ~now:(1000 + jitter)
      > Interconnect.request quiet ~domain:1 ~now:(1000 + jitter))

let prop_exhaustive_universe_size =
  QCheck.Test.make ~name:"exhaustive enumeration covers |alphabet|^len"
    ~count:20
    QCheck.(pair (int_range 1 3) (int_range 1 4))
    (fun (len, alpha_n) ->
      let open Tpro_secmodel in
      let u =
        {
          Exhaustive.hi_len = len;
          hi_alphabet =
            List.init alpha_n (fun i -> Tpro_kernel.Program.Compute (i + 1));
          seeds = [ 0 ];
        }
      in
      let programs = Exhaustive.enumerate u in
      List.length programs = Exhaustive.universe_size u
      && List.length (List.sort_uniq compare programs) = List.length programs)

let prop_wcet_monotone_in_jitter =
  QCheck.Test.make ~name:"WCET bounds grow with jitter magnitude" ~count:50
    QCheck.(int_range 0 10)
    (fun mag ->
      let cfg m =
        {
          Machine.default_config with
          Machine.lat = { Latency.default with Latency.jitter_mag = m };
        }
      in
      Wcet.recommended_pad (cfg (mag + 1)) >= Wcet.recommended_pad (cfg mag))

let prop_protocol_roundtrip_without_tp =
  QCheck.Test.make ~name:"downgrader protocol roundtrips any message" ~count:5
    QCheck.(list_of_size (Gen.int_range 1 6) (int_bound 7))
    (fun message ->
      let t =
        Protocol.transmit (Downgrader.scenario ()) ~cfg:Presets.none ~message
      in
      t.Protocol.received = message)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_matrix_rows_normalised;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_mi_bounded_by_entropy;
    QCheck_alcotest.to_alcotest prop_tdma_isolation;
    QCheck_alcotest.to_alcotest prop_shared_bus_not_isolated;
    QCheck_alcotest.to_alcotest prop_exhaustive_universe_size;
    QCheck_alcotest.to_alcotest prop_wcet_monotone_in_jitter;
    QCheck_alcotest.to_alcotest prop_protocol_roundtrip_without_tp;
  ]
