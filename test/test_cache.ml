open Tpro_hw

let small = Cache.geometry ~sets:4 ~ways:2 ~line_bits:6 ()

let addr ~set ~tag ~geom:_ = (tag lsl (6 + 2)) lor (set lsl 6)
(* 4 sets, 64B lines: set bits are [7:6], tag above. *)

let test_geometry_validation () =
  Alcotest.check_raises "sets must be power of two"
    (Invalid_argument "Cache.geometry: sets must be a power of two") (fun () ->
      ignore (Cache.geometry ~sets:3 ()));
  Alcotest.check_raises "ways positive"
    (Invalid_argument "Cache.geometry: ways must be positive") (fun () ->
      ignore (Cache.geometry ~ways:0 ()))

let test_miss_then_hit () =
  let c = Cache.create small in
  (match Cache.access c ~owner:1 ~write:false 0x1000 with
  | Cache.Miss None -> ()
  | Cache.Miss (Some _) | Cache.Hit -> Alcotest.fail "expected cold miss");
  match Cache.access c ~owner:1 ~write:false 0x1000 with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "expected hit"

let test_same_line_hits () =
  let c = Cache.create small in
  ignore (Cache.access c ~owner:1 ~write:false 0x1000);
  (* same 64-byte line, different offset *)
  match Cache.access c ~owner:1 ~write:false 0x103F with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "same line should hit"

let test_lru_eviction () =
  let c = Cache.create small in
  let a0 = addr ~set:1 ~tag:10 ~geom:small in
  let a1 = addr ~set:1 ~tag:11 ~geom:small in
  let a2 = addr ~set:1 ~tag:12 ~geom:small in
  ignore (Cache.access c ~owner:1 ~write:false a0);
  ignore (Cache.access c ~owner:1 ~write:false a1);
  (* touch a0 so a1 becomes LRU *)
  ignore (Cache.access c ~owner:1 ~write:false a0);
  (match Cache.access c ~owner:1 ~write:false a2 with
  | Cache.Miss (Some { Cache.tag; _ }) ->
    Alcotest.(check int) "evicted LRU tag" 11 tag
  | Cache.Miss None | Cache.Hit -> Alcotest.fail "expected eviction");
  Alcotest.(check bool) "a0 still present" true (Cache.probe c a0);
  Alcotest.(check bool) "a1 evicted" false (Cache.probe c a1)

let test_write_sets_dirty () =
  let c = Cache.create small in
  ignore (Cache.access c ~owner:1 ~write:true 0x1000);
  Alcotest.(check int) "one dirty line" 1 (Cache.dirty_count c);
  ignore (Cache.access c ~owner:1 ~write:false 0x2000);
  Alcotest.(check int) "read does not dirty" 1 (Cache.dirty_count c)

let test_dirty_eviction_reported () =
  let c = Cache.create small in
  let a0 = addr ~set:2 ~tag:1 ~geom:small in
  let a1 = addr ~set:2 ~tag:2 ~geom:small in
  let a2 = addr ~set:2 ~tag:3 ~geom:small in
  ignore (Cache.access c ~owner:1 ~write:true a0);
  ignore (Cache.access c ~owner:1 ~write:false a1);
  match Cache.access c ~owner:1 ~write:false a2 with
  | Cache.Miss (Some { Cache.dirty; owner; _ }) ->
    Alcotest.(check bool) "victim dirty" true dirty;
    Alcotest.(check int) "victim owner" 1 owner
  | Cache.Miss None | Cache.Hit -> Alcotest.fail "expected dirty eviction"

let test_flush_counts_dirty () =
  let c = Cache.create small in
  (* distinct sets so nothing is evicted before the flush *)
  ignore (Cache.access c ~owner:1 ~write:true 0x1000);
  ignore (Cache.access c ~owner:1 ~write:true 0x1040);
  ignore (Cache.access c ~owner:1 ~write:false 0x1080);
  Alcotest.(check int) "flush returns dirty count" 2 (Cache.flush c);
  Alcotest.(check int) "empty after flush" 0 (Cache.valid_count c);
  Alcotest.(check bool) "probe misses after flush" false (Cache.probe c 0x1000)

let test_probe_no_side_effect () =
  let c = Cache.create small in
  ignore (Cache.access c ~owner:1 ~write:false 0x1000);
  let d0 = Cache.digest c in
  ignore (Cache.probe c 0x1000);
  ignore (Cache.probe c 0x9999);
  Alcotest.(check int64) "probe does not change state" d0 (Cache.digest c)

let test_owner_tracking () =
  let c = Cache.create small in
  ignore (Cache.access c ~owner:3 ~write:false 0x1000);
  (match Cache.owner_of c 0x1000 with
  | Some o -> Alcotest.(check int) "owner" 3 o
  | None -> Alcotest.fail "line should be present");
  Alcotest.(check (option int)) "absent line" None (Cache.owner_of c 0x8000)

let test_colours () =
  (* 1024 sets x 64B lines = 64 KiB span; 4 KiB pages -> 16 colours *)
  let g = Cache.geometry ~sets:1024 ~ways:8 ~line_bits:6 () in
  Alcotest.(check int) "colour count" 16 (Cache.n_colours g ~page_bits:12);
  Alcotest.(check int) "colour of paddr 0" 0
    (Cache.colour_of_paddr g ~page_bits:12 0);
  Alcotest.(check int) "colour wraps"
    (Cache.colour_of_paddr g ~page_bits:12 (16 * 4096))
    (Cache.colour_of_paddr g ~page_bits:12 0);
  Alcotest.(check int) "adjacent pages differ" 1
    (Cache.colour_of_paddr g ~page_bits:12 4096)

let test_colour_of_set_consistent () =
  let g = Cache.geometry ~sets:1024 ~ways:8 ~line_bits:6 () in
  let c = Cache.create g in
  (* every line of a page must land in sets of the page's colour *)
  let page = 5 in
  let colour = Cache.colour_of_paddr g ~page_bits:12 (page * 4096) in
  for line = 0 to 63 do
    let pa = (page * 4096) + (line * 64) in
    let set = Cache.set_of_paddr c pa in
    Alcotest.(check int)
      (Printf.sprintf "line %d colour" line)
      colour
      (Cache.colour_of_set g ~page_bits:12 set)
  done

let test_l1_single_colour () =
  (* 64 sets x 64B = 4 KiB span = exactly one colour: L1 is unpartitionable *)
  let g = Cache.geometry ~sets:64 ~ways:4 ~line_bits:6 () in
  Alcotest.(check int) "L1 has one colour" 1 (Cache.n_colours g ~page_bits:12)

let test_digest_set_sensitivity () =
  let c = Cache.create small in
  let d0 = Cache.digest_set c 1 in
  ignore (Cache.access c ~owner:1 ~write:false (addr ~set:1 ~tag:7 ~geom:small));
  Alcotest.(check bool) "digest changes on fill" true (d0 <> Cache.digest_set c 1);
  let d1 = Cache.digest_set c 0 in
  Alcotest.(check bool) "other set unaffected" true (d1 = Cache.digest_set c 0)

let test_digest_ignores_recency () =
  let c = Cache.create small in
  let a0 = addr ~set:1 ~tag:1 ~geom:small in
  let a1 = addr ~set:1 ~tag:2 ~geom:small in
  ignore (Cache.access c ~owner:1 ~write:false a0);
  ignore (Cache.access c ~owner:1 ~write:false a1);
  let d = Cache.digest_set c 1 in
  ignore (Cache.access c ~owner:1 ~write:false a0);
  Alcotest.(check int64) "re-touch does not change digest" d (Cache.digest_set c 1)

let test_iter_lines () =
  let c = Cache.create small in
  ignore (Cache.access c ~owner:1 ~write:true 0x1000);
  ignore (Cache.access c ~owner:2 ~write:false 0x2000);
  let n = ref 0 and owners = ref [] in
  Cache.iter_lines c (fun ~set:_ ~way:_ ~tag:_ ~dirty:_ ~owner ->
      incr n;
      owners := owner :: !owners);
  Alcotest.(check int) "two valid lines" 2 !n;
  Alcotest.(check bool) "owners recorded" true
    (List.mem 1 !owners && List.mem 2 !owners)

let prop_valid_count_bounded =
  QCheck.Test.make ~name:"valid_count never exceeds capacity" ~count:200
    QCheck.(list (int_bound 0xFFFF))
    (fun addrs ->
      let c = Cache.create small in
      List.iter (fun a -> ignore (Cache.access c ~owner:0 ~write:false a)) addrs;
      Cache.valid_count c <= 8)

let prop_probe_after_access =
  QCheck.Test.make ~name:"an address just accessed always probes as hit"
    ~count:200
    QCheck.(pair (int_bound 0xFFFF) (list (int_bound 0xFFFF)))
    (fun (a, addrs) ->
      let c = Cache.create small in
      List.iter (fun x -> ignore (Cache.access c ~owner:0 ~write:false x)) addrs;
      ignore (Cache.access c ~owner:0 ~write:false a);
      Cache.probe c a)

let suite =
  [
    Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "same line hits" `Quick test_same_line_hits;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "write sets dirty" `Quick test_write_sets_dirty;
    Alcotest.test_case "dirty eviction reported" `Quick test_dirty_eviction_reported;
    Alcotest.test_case "flush counts dirty" `Quick test_flush_counts_dirty;
    Alcotest.test_case "probe has no side effect" `Quick test_probe_no_side_effect;
    Alcotest.test_case "owner tracking" `Quick test_owner_tracking;
    Alcotest.test_case "colour arithmetic" `Quick test_colours;
    Alcotest.test_case "colour_of_set consistent" `Quick test_colour_of_set_consistent;
    Alcotest.test_case "L1 has a single colour" `Quick test_l1_single_colour;
    Alcotest.test_case "digest set sensitivity" `Quick test_digest_set_sensitivity;
    Alcotest.test_case "digest ignores recency" `Quick test_digest_ignores_recency;
    Alcotest.test_case "iter_lines" `Quick test_iter_lines;
    QCheck_alcotest.to_alcotest prop_valid_count_bounded;
    QCheck_alcotest.to_alcotest prop_probe_after_access;
  ]
