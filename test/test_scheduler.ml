(* Torture suite for the adaptive work-stealing scheduler: the
   Chase–Lev deque's lock-free invariants, the pool's determinism
   under real domain contention, the calibration fallback that keeps a
   1-core host sequential, and the cost model behind adaptive
   chunking.

   Every randomized test derives its randomness from TPRO_SCHED_SEED
   (default 0), so CI can re-run the whole suite under several seeds
   and a reproduced failure names the seed that found it. *)

open Tpro_engine

exception Boom of int

let stress_seed =
  match Sys.getenv_opt "TPRO_SCHED_SEED" with
  | Some s -> ( try int_of_string s with _ -> 0)
  | None -> 0

(* A little deterministic busy work whose length depends on [i]: gives
   tasks genuinely different durations without any timing dependence
   in their results. *)
let spin i =
  let acc = ref i in
  for k = 1 to 50 + (i * 1103515245 land 0x3FF) do
    acc := (!acc * 31) + k
  done;
  Sys.opaque_identity !acc

let multiset l = List.sort compare l

(* ------------------------------------------------------------------ *)
(* Deque: sequential invariants                                        *)

let test_deque_lifo_owner () =
  let q = Deque.create () in
  List.iter (Deque.push q) [ 1; 2; 3 ];
  (* explicit sequencing: list literals evaluate right-to-left *)
  let p1 = Deque.pop q in
  let p2 = Deque.pop q in
  let p3 = Deque.pop q in
  let p4 = Deque.pop q in
  Alcotest.(check (list (option int)))
    "owner pops newest first"
    [ Some 3; Some 2; Some 1; None ]
    [ p1; p2; p3; p4 ]

let test_deque_fifo_thief () =
  let q = Deque.create () in
  List.iter (Deque.push q) [ 1; 2; 3 ];
  let s1 = Deque.steal_opt q in
  let s2 = Deque.steal_opt q in
  let s3 = Deque.steal_opt q in
  let s4 = Deque.steal_opt q in
  Alcotest.(check (list (option int)))
    "thief steals oldest first"
    [ Some 1; Some 2; Some 3; None ]
    [ s1; s2; s3; s4 ]

let test_deque_empty () =
  let q : int Deque.t = Deque.create () in
  Alcotest.(check (option int)) "pop empty" None (Deque.pop q);
  Alcotest.(check (option int)) "steal empty" None (Deque.steal_opt q);
  Alcotest.(check int) "size empty" 0 (Deque.size q);
  Alcotest.(check bool) "is_empty" true (Deque.is_empty q);
  (* empty after a push/pop cycle too, not just when fresh *)
  Deque.push q 7;
  ignore (Deque.pop q);
  Alcotest.(check (option int)) "pop after drain" None (Deque.pop q)

let test_deque_growth () =
  (* start at the minimum capacity and push two orders of magnitude
     more: the circular array must grow without losing or reordering
     anything, under mixed pop/steal draining *)
  let q = Deque.create ~capacity:2 () in
  let n = 500 in
  for i = 1 to n do
    Deque.push q i
  done;
  Alcotest.(check int) "size" n (Deque.size q);
  let taken = ref [] in
  for i = 1 to n do
    let v = if i mod 2 = 0 then Deque.pop q else Deque.steal_opt q in
    match v with
    | Some v -> taken := v :: !taken
    | None -> Alcotest.fail "deque drained early"
  done;
  Alcotest.(check (list int))
    "multiset preserved across growth"
    (List.init n (fun i -> i + 1))
    (multiset !taken)

let prop_deque_multiset =
  QCheck.Test.make
    ~name:"deque: any push/pop/steal interleaving preserves the multiset"
    ~count:300
    QCheck.(list (int_range 0 2))
    (fun script ->
      let q = Deque.create ~capacity:2 () in
      let next = ref 0 in
      let pushed = ref [] in
      let taken = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            incr next;
            Deque.push q !next;
            pushed := !next :: !pushed
          | 1 -> (
            match Deque.pop q with
            | Some v -> taken := v :: !taken
            | None -> ())
          | _ -> (
            match Deque.steal q with
            | Deque.Stolen v -> taken := v :: !taken
            | Deque.Retry | Deque.Empty -> ()))
        script;
      let rec drain () =
        match Deque.pop q with
        | Some v ->
          taken := v :: !taken;
          drain ()
        | None -> ()
      in
      drain ();
      multiset !pushed = multiset !taken)

(* ------------------------------------------------------------------ *)
(* Deque: real contention (>= 4 domains)                               *)

(* One owner (this domain) pushing and popping against four thief
   domains: every pushed value must be taken exactly once, across any
   steal interleaving the host produces. *)
let test_deque_concurrent_multiset () =
  let rng = Random.State.make [| stress_seed; 1 |] in
  for _round = 1 to 3 do
    let q = Deque.create ~capacity:2 () in
    let n = 2000 + Random.State.int rng 1000 in
    let stop = Atomic.make false in
    let thieves =
      List.init 4 (fun _ ->
          Domain.spawn (fun () ->
              let mine = ref [] in
              let rec sweep () =
                match Deque.steal q with
                | Deque.Stolen v ->
                  mine := v :: !mine;
                  sweep ()
                | Deque.Retry -> sweep ()
                | Deque.Empty -> ()
              in
              while not (Atomic.get stop) do
                (match Deque.steal q with
                | Deque.Stolen v -> mine := v :: !mine
                | Deque.Retry -> ()
                | Deque.Empty -> Domain.cpu_relax ());
                ()
              done;
              sweep ();
              !mine))
    in
    let popped = ref [] in
    for i = 1 to n do
      Deque.push q i;
      if Random.State.int rng 3 = 0 then
        match Deque.pop q with
        | Some v -> popped := v :: !popped
        | None -> ()
    done;
    let rec drain () =
      match Deque.pop q with
      | Some v ->
        popped := v :: !popped;
        drain ()
      | None -> ()
    in
    drain ();
    Atomic.set stop true;
    let stolen = List.concat_map Domain.join thieves in
    Alcotest.(check (list int))
      "taken exactly once each"
      (List.init n (fun i -> i + 1))
      (multiset (!popped @ stolen))
  done

(* The classic Chase–Lev hazard: owner pop racing a thief for the very
   last element.  Exactly one side may win each round. *)
let test_deque_last_element_race () =
  let q = Deque.create () in
  let rounds = 2000 in
  let go = Atomic.make 0 in
  let finished = Atomic.make false in
  let stolen = Atomic.make 0 in
  let thief =
    Domain.spawn (fun () ->
        let seen = ref 0 in
        while not (Atomic.get finished) do
          let r = Atomic.get go in
          if r > !seen then begin
            (match Deque.steal_opt q with
            | Some _ -> Atomic.incr stolen
            | None -> ());
            seen := r
          end
          else Domain.cpu_relax ()
        done)
  in
  let popped = ref 0 in
  for r = 1 to rounds do
    Deque.push q r;
    Atomic.set go r;
    (match Deque.pop q with Some _ -> incr popped | None -> ());
    (* whoever lost the CAS, the element is claimed: the deque is
       empty before the next round begins *)
    while not (Deque.is_empty q) do
      Domain.cpu_relax ()
    done
  done;
  Atomic.set finished true;
  Domain.join thief;
  Alcotest.(check int)
    "every element taken exactly once" rounds
    (!popped + Atomic.get stolen)

let test_deque_empty_steal_race () =
  (* four thieves hammering a mostly-empty deque while the owner
     pushes tiny bursts: exercises the Empty/Retry paths under real
     contention *)
  let q = Deque.create () in
  let stop = Atomic.make false in
  let thieves =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let got = ref 0 in
            while not (Atomic.get stop) do
              match Deque.steal q with
              | Deque.Stolen _ -> incr got
              | Deque.Retry | Deque.Empty -> ()
            done;
            let rec sweep () =
              match Deque.steal q with
              | Deque.Stolen _ ->
                incr got;
                sweep ()
              | Deque.Retry -> sweep ()
              | Deque.Empty -> ()
            in
            sweep ();
            !got))
  in
  let bursts = 200 in
  let kept = ref 0 in
  for b = 1 to bursts do
    Deque.push q b;
    if b mod 2 = 0 then
      match Deque.pop q with Some _ -> incr kept | None -> ()
  done;
  Atomic.set stop true;
  let stolen = List.fold_left (fun a d -> a + Domain.join d) 0 thieves in
  let rec drain n =
    match Deque.pop q with Some _ -> drain (n + 1) | None -> n
  in
  let leftover = drain 0 in
  Alcotest.(check int)
    "pushes = pops + steals + leftovers" bursts
    (!kept + stolen + leftover)

(* ------------------------------------------------------------------ *)
(* Pool: 10k-task stress, determinism under contention                  *)

let test_stress_10k_bit_identical () =
  let rng = Random.State.make [| stress_seed; 2 |] in
  let n = 10_000 in
  (* per-task durations randomized via a seed-derived salt mixed into
     the busy-work length; results stay pure functions of the input *)
  let salt = Random.State.int rng 0xFFFF in
  let f i =
    ignore (spin (i lxor salt));
    (i * i) + salt
  in
  let expected = List.map f (List.init n Fun.id) in
  Pool.with_pool ~domains:4 (fun pool ->
      let via_map = Pool.map_chunks pool ~chunk:7 f (List.init n Fun.id) in
      Alcotest.(check bool)
        "10k results in submission order, bit-identical to sequential" true
        (via_map = expected);
      let via_auto = Pool.map_auto ~label:"stress" pool f (List.init n Fun.id) in
      Alcotest.(check bool)
        "map_auto identical too" true (via_auto = expected))

let test_steal_under_shutdown () =
  (* a map is in flight from a foreign domain when the pool's workers
     are torn down: the call must still complete, correctly ordered,
     with the caller draining what the workers abandoned *)
  let pool = Pool.create ~domains:4 () in
  let xs = List.init 400 Fun.id in
  let f i =
    ignore (spin i);
    i + 1
  in
  let caller =
    Domain.spawn (fun () -> Pool.map_chunks pool ~chunk:3 f xs)
  in
  (* races the caller's submission and drain on purpose *)
  Pool.shutdown pool;
  let got = Domain.join caller in
  Alcotest.(check (list int))
    "map survives shutdown mid-flight" (List.map succ xs) got;
  (* and the pool remains usable sequentially afterwards *)
  Alcotest.(check (list int))
    "pool still usable after shutdown" [ 2; 3 ]
    (Pool.map pool succ [ 1; 2 ])

let test_nested_map_auto () =
  Pool.with_pool ~domains:4 (fun pool ->
      let rows =
        Pool.map_auto ~label:"outer" pool
          (fun r ->
            Pool.map_auto ~label:"inner" pool (fun c -> (r * 10) + c)
              [ 0; 1; 2 ])
          [ 1; 2; 3; 4; 5; 6 ]
      in
      Alcotest.(check (list (list int)))
        "nested adaptive maps"
        (List.map (fun r -> List.map (fun c -> (r * 10) + c) [ 0; 1; 2 ])
           [ 1; 2; 3; 4; 5; 6 ])
        rows)

let test_map_auto_matches_map () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 2000 Fun.id in
      let f x = (x * 7) - 1 in
      let expected = List.map f xs in
      (* repeated runs so the cost model's chunk choice actually moves
         once estimates exist — results must never move with it *)
      for _ = 1 to 5 do
        Alcotest.(check bool)
          "map_auto == sequential map" true
          (Pool.map_auto ~label:"cheap" pool f xs = expected)
      done;
      match Cost_model.estimate_ns (Pool.cost_model pool) ~label:"cheap" with
      | Some ns -> Alcotest.(check bool) "estimate recorded" true (ns >= 0.)
      | None -> Alcotest.fail "no cost estimate after five observations")

let test_map_auto_lowest_failure () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "lowest-indexed failure under adaptive chunks"
        (Boom 10) (fun () ->
          ignore
            (Pool.map_auto ~label:"failing" pool
               (fun x -> if x >= 10 then raise (Boom x) else x)
               (List.init 500 Fun.id))))

let test_pool_stats () =
  let pool = Pool.create ~domains:4 () in
  let st0 = Pool.stats pool in
  Alcotest.(check int) "pool size" 4 st0.Pool.pool_size;
  Alcotest.(check int) "spawned workers" 3 st0.Pool.spawned_domains;
  let n = 500 in
  ignore (Pool.map pool (fun i -> ignore (spin i)) (List.init n Fun.id));
  let st = Pool.stats pool in
  Alcotest.(check int)
    "foreign submission goes through the injector" n
    st.Pool.tasks_injected;
  Alcotest.(check int) "every task executed exactly once" n
    st.Pool.tasks_executed;
  Alcotest.(check bool) "steal counter sane" true (st.Pool.steals >= 0);
  Pool.shutdown pool;
  let st1 = Pool.stats pool in
  Alcotest.(check int) "no spawned workers after shutdown" 0
    st1.Pool.spawned_domains

(* ------------------------------------------------------------------ *)
(* Calibration fallback                                                 *)

let one_core = Calibrate.probe ~force_cores:1 ()

let test_calibrate_force_cores () =
  Alcotest.(check int) "1 core -> sequential" 1 one_core.Calibrate.recommended;
  Alcotest.(check int) "cores recorded" 1 one_core.Calibrate.cores_detected;
  Alcotest.(check int)
    "sequential keeps the default minor heap"
    Calibrate.default_minor_heap_words one_core.Calibrate.minor_heap_words;
  Alcotest.(check bool)
    "note says sequential" true
    (let note = one_core.Calibrate.probe_note in
     let has needle =
       let nl = String.length needle and l = String.length note in
       let rec go i = i + nl <= l && (String.sub note i nl = needle || go (i + 1)) in
       go 0
     in
     has "sequential");
  let big = Calibrate.probe ~force_cores:8 () in
  Alcotest.(check int) "8 forced cores -> 8 domains" 8
    big.Calibrate.recommended;
  Alcotest.(check int)
    "parallel pools get the enlarged minor heap"
    Calibrate.parallel_minor_heap_words big.Calibrate.minor_heap_words

let test_calibrated_pool_degrades_to_sequential () =
  Calibrate.with_override one_core (fun () ->
      Alcotest.(check int) "recommended is overridden" 1 (Pool.recommended ());
      let pool = Pool.create () in
      Alcotest.(check int) "pool size 1" 1 (Pool.size pool);
      Alcotest.(check int)
        "zero spawned domains" 0 (Pool.stats pool).Pool.spawned_domains;
      let order = ref [] in
      let ys =
        Pool.map pool
          (fun x ->
            order := x :: !order;
            x + 1)
          [ 5; 3; 9 ]
      in
      Pool.shutdown pool;
      Alcotest.(check (list int)) "sequential results" [ 6; 4; 10 ] ys;
      Alcotest.(check (list int))
        "executed left to right in the calling domain" [ 5; 3; 9 ]
        (List.rev !order))

let contains_sub note needle =
  let nl = String.length needle and l = String.length note in
  let rec go i = i + nl <= l && (String.sub note i nl = needle || go (i + 1)) in
  go 0

let test_calibrated_supervisor_warns () =
  Calibrate.with_override one_core (fun () ->
      Supervisor.with_supervisor (fun sup ->
          Alcotest.(check bool)
            "no pool on a calibrated 1-core host" true
            (Supervisor.pool sup = None);
          Alcotest.(check bool)
            "calibration fallback is not a degradation" false
            (Supervisor.degraded sup);
          let s = Supervisor.summary sup in
          Alcotest.(check bool)
            "summary carries the calibration note" true
            (List.exists
               (fun w -> contains_sub w "calibration" && contains_sub w "sequential")
               s.Supervisor.warnings)))

let test_create_opt_and_spawn_failure_paths () =
  (* zero-worker create_opt under the 1-core override: nothing to
     spawn, nothing to clean up *)
  Calibrate.with_override one_core (fun () ->
      match Pool.create_opt () with
      | Error e -> Alcotest.fail ("create_opt on 1 core: " ^ e)
      | Ok pool ->
        Alcotest.(check int)
          "no workers spawned" 0 (Pool.stats pool).Pool.spawned_domains;
        Pool.shutdown pool);
  (* and the partial-spawn cleanup path proper: an injected spawn
     failure must degrade the supervisor, not abort it *)
  Supervisor.with_supervisor ~domains:4 ~fault:Supervisor.Spawn_failure
    (fun sup ->
      Alcotest.(check bool) "degraded" true (Supervisor.degraded sup);
      Alcotest.(check bool) "no pool" true (Supervisor.pool sup = None);
      let s = Supervisor.summary sup in
      Alcotest.(check bool)
        "spawn-failure warning mentions sequential" true
        (List.exists (fun w -> contains_sub w "sequential") s.Supervisor.warnings))

let test_override_restored () =
  let before = Calibrate.recommended () in
  (try
     Calibrate.with_override
       (Calibrate.probe ~force_cores:7 ())
       (fun () ->
         Alcotest.(check int) "override active" 7 (Calibrate.recommended ());
         raise Exit)
   with Exit -> ());
  Alcotest.(check int)
    "override removed even on exception" before
    (Calibrate.recommended ())

(* ------------------------------------------------------------------ *)
(* Cost model                                                           *)

let test_cost_model_bounds () =
  let m = Cost_model.create () in
  Alcotest.(check int)
    "single item is one chunk" 1
    (Cost_model.chunk m ~label:"x" ~items:1 ~workers:8);
  let unknown = Cost_model.chunk m ~label:"x" ~items:10_000 ~workers:4 in
  Alcotest.(check bool)
    "unknown label gets a small default batch" true
    (unknown >= 1 && unknown <= 10_000 / (2 * 4));
  Cost_model.observe m ~label:"x" ~items:1000 ~seconds:0.00001 (* 10ns/item *);
  let c = Cost_model.chunk m ~label:"x" ~items:10_000 ~workers:4 in
  Alcotest.(check bool)
    "chunk never exceeds items/(2*workers)" true
    (c >= 1 && c <= 10_000 / (2 * 4))

let test_cost_model_six_orders () =
  let m = Cost_model.create () in
  (* E7-scale: ~0.75 s per item; E10-scale: ~1 us per item *)
  Cost_model.observe m ~label:"e7" ~items:4 ~seconds:3.0;
  Cost_model.observe m ~label:"e10" ~items:1000 ~seconds:0.001;
  Alcotest.(check int)
    "heavy tasks are never batched" 1
    (Cost_model.chunk m ~label:"e7" ~items:100 ~workers:4);
  let light = Cost_model.chunk m ~label:"e10" ~items:100_000 ~workers:4 in
  Alcotest.(check bool)
    "light tasks are batched by orders of magnitude" true (light >= 100)

let test_cost_model_concurrent_observe () =
  let m = Cost_model.create () in
  let per_domain = 1000 in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Cost_model.observe m
                ~label:(if d mod 2 = 0 then "even" else "odd")
                ~items:(1 + (i mod 7))
                ~seconds:1e-6
            done))
  in
  List.iter Domain.join workers;
  let samples =
    List.fold_left (fun a (_, _, s) -> a + s) 0 (Cost_model.snapshot m)
  in
  Alcotest.(check int)
    "no observation lost under contention" (4 * per_domain) samples

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "deque: owner is LIFO" `Quick test_deque_lifo_owner;
    Alcotest.test_case "deque: thief is FIFO" `Quick test_deque_fifo_thief;
    Alcotest.test_case "deque: empty behaviour" `Quick test_deque_empty;
    Alcotest.test_case "deque: growth preserves contents" `Quick
      test_deque_growth;
    QCheck_alcotest.to_alcotest prop_deque_multiset;
    Alcotest.test_case "deque: concurrent multiset (4 thieves)" `Quick
      test_deque_concurrent_multiset;
    Alcotest.test_case "deque: last-element owner/thief race" `Quick
      test_deque_last_element_race;
    Alcotest.test_case "deque: empty-steal race (4 thieves)" `Quick
      test_deque_empty_steal_race;
    Alcotest.test_case "pool: 10k-task stress bit-identical" `Quick
      test_stress_10k_bit_identical;
    Alcotest.test_case "pool: steal under shutdown" `Quick
      test_steal_under_shutdown;
    Alcotest.test_case "pool: nested map_auto" `Quick test_nested_map_auto;
    Alcotest.test_case "pool: map_auto == map across chunk drift" `Quick
      test_map_auto_matches_map;
    Alcotest.test_case "pool: map_auto lowest failure wins" `Quick
      test_map_auto_lowest_failure;
    Alcotest.test_case "pool: scheduling stats" `Quick test_pool_stats;
    Alcotest.test_case "calibrate: force_cores decisions" `Quick
      test_calibrate_force_cores;
    Alcotest.test_case "calibrate: 1-core pool is sequential" `Quick
      test_calibrated_pool_degrades_to_sequential;
    Alcotest.test_case "calibrate: supervisor records the fallback" `Quick
      test_calibrated_supervisor_warns;
    Alcotest.test_case "calibrate: create_opt and spawn-failure paths" `Quick
      test_create_opt_and_spawn_failure_paths;
    Alcotest.test_case "calibrate: override restored on exception" `Quick
      test_override_restored;
    Alcotest.test_case "cost model: chunk bounds" `Quick test_cost_model_bounds;
    Alcotest.test_case "cost model: six orders of magnitude" `Quick
      test_cost_model_six_orders;
    Alcotest.test_case "cost model: concurrent observe" `Quick
      test_cost_model_concurrent_observe;
  ]
