open Tpro_hw

(* ------------------------- Clock ---------------------------------- *)

let test_clock_advance () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.now c);
  Clock.advance c 10;
  Clock.advance c 5;
  Alcotest.(check int) "accumulates" 15 (Clock.now c)

let test_clock_wait_until () =
  let c = Clock.create () in
  Clock.advance c 10;
  Alcotest.(check int) "waits forward" 20 (Clock.wait_until c 30);
  Alcotest.(check int) "now at deadline" 30 (Clock.now c);
  Alcotest.(check int) "past deadline waits zero" 0 (Clock.wait_until c 5);
  Alcotest.(check int) "clock unchanged" 30 (Clock.now c)

let test_clock_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Clock.advance: negative cycles") (fun () ->
      Clock.advance c (-1))

(* ------------------------- Mem ------------------------------------ *)

let test_mem_ownership () =
  let m = Mem.create ~n_frames:8 () in
  Alcotest.(check int) "frames" 8 (Mem.n_frames m);
  Alcotest.(check int) "free initially" Mem.free_owner (Mem.owner_of_frame m 3);
  Mem.set_owner m ~frame:3 ~owner:7;
  Alcotest.(check int) "owner set" 7 (Mem.owner_of_frame m 3);
  Alcotest.(check (list int)) "frames_owned_by" [ 3 ] (Mem.frames_owned_by m 7)

let test_mem_addresses () =
  let m = Mem.create ~n_frames:8 () in
  Alcotest.(check int) "paddr of frame" (5 * 4096) (Mem.paddr_of_frame m 5);
  Alcotest.(check int) "frame of paddr" 5 (Mem.frame_of_paddr m (5 * 4096 + 123))

let test_mem_bounds () =
  let m = Mem.create ~n_frames:8 () in
  Alcotest.check_raises "out of range" (Invalid_argument "Mem: frame out of range")
    (fun () -> ignore (Mem.owner_of_frame m 8))

(* ------------------------- Interconnect --------------------------- *)

let test_bus_uncontended () =
  let b = Interconnect.create ~service:8 () in
  Alcotest.(check int) "service only" 8 (Interconnect.request b ~domain:0 ~now:100)

let test_bus_contention () =
  let b = Interconnect.create ~service:8 () in
  ignore (Interconnect.request b ~domain:0 ~now:100);
  (* second request at the same instant queues behind the first *)
  Alcotest.(check int) "queued" 16 (Interconnect.request b ~domain:1 ~now:100)

let test_bus_drains () =
  let b = Interconnect.create ~service:8 () in
  ignore (Interconnect.request b ~domain:0 ~now:100);
  Alcotest.(check int) "later request sees idle bus" 8
    (Interconnect.request b ~domain:1 ~now:200)

let test_bus_cross_domain_leak () =
  (* the stateless-interconnect channel (Sect. 2): domain 1's latency
     depends on domain 0's concurrent traffic *)
  let quiet = Interconnect.create ~service:8 () in
  let busy = Interconnect.create ~service:8 () in
  for i = 0 to 9 do
    ignore (Interconnect.request busy ~domain:0 ~now:(100 + i))
  done;
  let l_quiet = Interconnect.request quiet ~domain:1 ~now:105 in
  let l_busy = Interconnect.request busy ~domain:1 ~now:105 in
  Alcotest.(check bool) "contention visible across domains" true
    (l_busy > l_quiet)

let test_bus_partitioned_isolation () =
  (* under TDMA partitioning the same experiment shows nothing *)
  let mk () =
    Interconnect.create ~service:4
      ~mode:(Interconnect.Partitioned { slot = 16; n_domains = 2 })
      ()
  in
  let quiet = mk () and busy = mk () in
  for i = 0 to 9 do
    ignore (Interconnect.request busy ~domain:0 ~now:(100 + i))
  done;
  let l_quiet = Interconnect.request quiet ~domain:1 ~now:105 in
  let l_busy = Interconnect.request busy ~domain:1 ~now:105 in
  Alcotest.(check int) "no cross-domain influence" l_quiet l_busy

let test_bus_reset () =
  let b = Interconnect.create ~service:8 () in
  ignore (Interconnect.request b ~domain:0 ~now:0);
  Interconnect.reset b;
  Alcotest.(check int) "idle after reset" 8 (Interconnect.request b ~domain:0 ~now:0)

(* ------------------------- Latency -------------------------------- *)

let test_jitter_deterministic () =
  let l = Latency.default in
  Alcotest.(check int) "same digest same jitter" (Latency.jitter l 42L)
    (Latency.jitter l 42L)

let test_jitter_bounded () =
  let l = Latency.default in
  for i = 0 to 1000 do
    let j = Latency.jitter l (Int64.of_int i) in
    Alcotest.(check bool) "within magnitude" true (j >= 0 && j <= l.Latency.jitter_mag)
  done

let test_jitter_seed_dependent () =
  let l1 = Latency.with_seed Latency.default 1 in
  let l2 = Latency.with_seed Latency.default 2 in
  let differs = ref false in
  for i = 0 to 100 do
    if Latency.jitter l1 (Int64.of_int i) <> Latency.jitter l2 (Int64.of_int i)
    then differs := true
  done;
  Alcotest.(check bool) "different seeds give different functions" true !differs

let test_jitter_zero_mag () =
  let l = { Latency.default with Latency.jitter_mag = 0 } in
  Alcotest.(check int) "no jitter when disabled" 0 (Latency.jitter l 99L)

let suite =
  [
    Alcotest.test_case "clock advance" `Quick test_clock_advance;
    Alcotest.test_case "clock wait_until" `Quick test_clock_wait_until;
    Alcotest.test_case "clock negative" `Quick test_clock_negative;
    Alcotest.test_case "mem ownership" `Quick test_mem_ownership;
    Alcotest.test_case "mem addresses" `Quick test_mem_addresses;
    Alcotest.test_case "mem bounds" `Quick test_mem_bounds;
    Alcotest.test_case "bus uncontended" `Quick test_bus_uncontended;
    Alcotest.test_case "bus contention" `Quick test_bus_contention;
    Alcotest.test_case "bus drains" `Quick test_bus_drains;
    Alcotest.test_case "bus cross-domain leak" `Quick test_bus_cross_domain_leak;
    Alcotest.test_case "bus TDMA isolation" `Quick test_bus_partitioned_isolation;
    Alcotest.test_case "bus reset" `Quick test_bus_reset;
    Alcotest.test_case "jitter deterministic" `Quick test_jitter_deterministic;
    Alcotest.test_case "jitter bounded" `Quick test_jitter_bounded;
    Alcotest.test_case "jitter seed dependent" `Quick test_jitter_seed_dependent;
    Alcotest.test_case "jitter zero magnitude" `Quick test_jitter_zero_mag;
  ]
