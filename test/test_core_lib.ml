open Time_protection

(* ------------------------- Presets -------------------------------- *)

let test_preset_names () =
  Alcotest.(check string) "none" "none" (Presets.name Presets.none);
  Alcotest.(check string) "full" "full" (Presets.name Presets.full);
  Alcotest.(check string) "ablation" "full\\clone"
    (Presets.name Presets.without_clone)

let test_ablations_differ_from_full () =
  List.iter
    (fun (name, cfg) ->
      if name <> "full" then
        Alcotest.(check bool) (name ^ " differs") true (cfg <> Presets.full))
    Presets.ablations

let test_without_colouring_drops_clone () =
  Alcotest.(check bool) "clone needs coloured memory" false
    Presets.without_colouring.Tpro_kernel.Kernel.kernel_clone

(* ------------------------- Table ---------------------------------- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t =
    {
      Table.id = "T0";
      title = "demo";
      anchor = "Sect. 0";
      headers = [ "a"; "b" ];
      rows = [ [ "1"; "22" ]; [ "333"; "4" ] ];
      note = "n";
    }
  in
  let s = Table.to_string t in
  Alcotest.(check bool) "contains title and cells" true
    (contains s "demo" && contains s "333")

let test_cell_float () =
  Alcotest.(check string) "3 decimals" "1.500" (Table.cell_float 1.5)

(* ------------------------- Experiments ---------------------------- *)

let test_by_id_total () =
  List.iter
    (fun id ->
      match Experiments.by_id id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s not resolvable" id)
    Experiments.ids;
  Alcotest.(check bool) "unknown id rejected" true
    (Experiments.by_id "e99" = None)

let test_e10_static () =
  let t = Experiments.e10_colours () in
  Alcotest.(check int) "five geometries" 5 (List.length t.Table.rows);
  (* the 8 MiB row must show >= 64 colours, the paper's claim *)
  match List.nth t.Table.rows 3 with
  | [ _; _; _; colours; _ ] ->
    Alcotest.(check bool) "8MiB LLC has >= 64 colours" true
      (int_of_string colours >= 64)
  | _ -> Alcotest.fail "unexpected row shape"

let test_e4_shape () =
  let t = Experiments.e4_switch_latency ~seeds:[ 0; 1 ] () in
  Alcotest.(check int) "five dirtiness levels" 5 (List.length t.Table.rows);
  let flush_costs =
    List.map
      (fun row -> int_of_string (List.nth row 1))
      t.Table.rows
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "flush cost monotone in dirtiness" true
    (monotone flush_costs);
  List.iter
    (fun row ->
      let slot = List.nth row 3 in
      Alcotest.(check bool) "padded slot constant" true
        (String.length slot >= 8
        && String.sub slot (String.length slot - 10) 10 = "(constant)"))
    t.Table.rows

(* ------------------------- Verify --------------------------------- *)

let test_verify_full_holds () =
  let r = Verify.run ~seeds:[ 0 ] ~secrets:[ 0; 1 ] ~cfg:Presets.full () in
  Alcotest.(check bool) "aISA" true r.Verify.aisa_ok;
  Alcotest.(check bool) "all obligations hold" true r.Verify.all_hold;
  Alcotest.(check int) "six obligations" 6 (List.length r.Verify.checks)

let test_verify_none_fails () =
  let r = Verify.run ~seeds:[ 0 ] ~secrets:[ 0; 1 ] ~cfg:Presets.none () in
  Alcotest.(check bool) "violations found" false r.Verify.all_hold

let test_verify_report_prints () =
  let r = Verify.run ~seeds:[ 0 ] ~secrets:[ 0; 1 ] ~cfg:Presets.full () in
  let s = Format.asprintf "%a" Verify.pp_report r in
  Alcotest.(check bool) "report nonempty" true (String.length s > 100)

let suite =
  [
    Alcotest.test_case "preset names" `Quick test_preset_names;
    Alcotest.test_case "ablations differ" `Quick test_ablations_differ_from_full;
    Alcotest.test_case "colour knockout drops clone" `Quick
      test_without_colouring_drops_clone;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "cell_float" `Quick test_cell_float;
    Alcotest.test_case "experiments by_id total" `Quick test_by_id_total;
    Alcotest.test_case "E10 static" `Quick test_e10_static;
    Alcotest.test_case "E4 shape" `Slow test_e4_shape;
    Alcotest.test_case "verify full holds" `Slow test_verify_full_holds;
    Alcotest.test_case "verify none fails" `Slow test_verify_none_fails;
    Alcotest.test_case "verify report prints" `Slow test_verify_report_prints;
  ]
