open Tpro_channel

(* ------------------------- Hist ----------------------------------- *)

let test_hist_basics () =
  let h = Hist.of_list [ 3; 1; 3; 5 ] in
  Alcotest.(check int) "total" 4 (Hist.total h);
  Alcotest.(check int) "count 3" 2 (Hist.count h 3);
  Alcotest.(check int) "count absent" 0 (Hist.count h 9);
  Alcotest.(check int) "distinct" 3 (Hist.distinct h);
  Alcotest.(check (list (pair int int))) "bins sorted" [ (1, 1); (3, 2); (5, 1) ]
    (Hist.bins h);
  Alcotest.(check (option int)) "min" (Some 1) (Hist.min_value h);
  Alcotest.(check (option int)) "max" (Some 5) (Hist.max_value h)

let test_hist_stats () =
  let h = Hist.of_list [ 2; 4; 4; 4; 5; 5; 7; 9 ] in
  Alcotest.(check (float 0.001)) "mean" 5.0 (Hist.mean h);
  Alcotest.(check (float 0.001)) "stddev" 2.0 (Hist.stddev h)

let test_hist_quantile () =
  let h = Hist.of_list [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  Alcotest.(check int) "median" 5 (Hist.quantile h 0.5);
  Alcotest.(check int) "p90" 9 (Hist.quantile h 0.9);
  Alcotest.(check int) "p0 is min" 1 (Hist.quantile h 0.0);
  Alcotest.(check int) "p100 is max" 10 (Hist.quantile h 1.0)

let test_hist_empty () =
  let h = Hist.create () in
  Alcotest.(check (float 0.001)) "empty mean" 0.0 (Hist.mean h);
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Hist.quantile: empty histogram") (fun () ->
      ignore (Hist.quantile h 0.5))

(* ------------------------- Matrix --------------------------------- *)

let test_matrix_shape () =
  let m = Matrix.of_samples [ (0, 10); (0, 10); (1, 20); (1, 10) ] in
  Alcotest.(check int) "inputs" 2 (Matrix.n_inputs m);
  Alcotest.(check int) "outputs" 2 (Matrix.n_outputs m);
  Alcotest.(check (array int)) "input symbols" [| 0; 1 |] (Matrix.inputs m);
  Alcotest.(check (array int)) "output symbols" [| 10; 20 |] (Matrix.outputs m)

let test_matrix_probabilities () =
  let m = Matrix.of_samples [ (0, 10); (0, 10); (1, 20); (1, 10) ] in
  Alcotest.(check (float 0.001)) "P(10|0)" 1.0 (Matrix.prob m 0 0);
  Alcotest.(check (float 0.001)) "P(20|0)" 0.0 (Matrix.prob m 0 1);
  Alcotest.(check (float 0.001)) "P(10|1)" 0.5 (Matrix.prob m 1 0);
  Alcotest.(check (float 0.001)) "P(20|1)" 0.5 (Matrix.prob m 1 1)

let test_matrix_predicates () =
  let det = Matrix.of_samples [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "deterministic" true (Matrix.deterministic det);
  Alcotest.(check bool) "not constant" false (Matrix.constant det);
  let const = Matrix.of_samples [ (0, 7); (1, 7); (2, 7) ] in
  Alcotest.(check bool) "constant" true (Matrix.constant const)

let test_matrix_empty () =
  Alcotest.check_raises "no samples"
    (Invalid_argument "Matrix.of_samples: no samples") (fun () ->
      ignore (Matrix.of_samples []))

(* ------------------------- Capacity ------------------------------- *)

let test_entropy () =
  Alcotest.(check (float 0.001)) "uniform 2" 1.0 (Capacity.entropy [| 0.5; 0.5 |]);
  Alcotest.(check (float 0.001)) "uniform 4" 2.0
    (Capacity.entropy [| 0.25; 0.25; 0.25; 0.25 |]);
  Alcotest.(check (float 0.001)) "deterministic" 0.0 (Capacity.entropy [| 1.0 |]);
  Alcotest.(check (float 0.001)) "unnormalised" 1.0 (Capacity.entropy [| 2.; 2. |])

let test_perfect_channel_capacity () =
  (* identity channel over 4 symbols: capacity = 2 bits *)
  let samples = List.init 4 (fun i -> (i, i)) in
  Alcotest.(check (float 0.01)) "identity capacity" 2.0
    (Capacity.of_samples samples)

let test_dead_channel_capacity () =
  let samples = List.concat_map (fun i -> [ (i, 0); (i, 0) ]) [ 0; 1; 2; 3 ] in
  Alcotest.(check (float 0.0001)) "dead channel" 0.0 (Capacity.of_samples samples)

let test_bsc_capacity () =
  (* binary symmetric channel with crossover 0.25:
     C = 1 - H(0.25) = 1 - 0.8113 = 0.1887 bits *)
  let samples =
    List.concat
      [
        List.init 3 (fun _ -> (0, 0)); [ (0, 1) ];
        List.init 3 (fun _ -> (1, 1)); [ (1, 0) ];
      ]
  in
  Alcotest.(check (float 0.01)) "BSC(0.25)" 0.1887 (Capacity.of_samples samples)

let test_mutual_information_uniform () =
  let m = Matrix.of_samples [ (0, 0); (1, 1) ] in
  Alcotest.(check (float 0.001)) "identity MI" 1.0 (Capacity.mutual_information m)

let test_mi_with_prior () =
  let m = Matrix.of_samples [ (0, 0); (1, 1) ] in
  (* degenerate prior: all mass on one input -> no information *)
  Alcotest.(check (float 0.001)) "degenerate prior" 0.0
    (Capacity.mutual_information ~prior:[| 1.0; 0.0 |] m)

let test_capacity_at_least_mi () =
  (* capacity maximises over priors, so it dominates uniform-prior MI *)
  let samples =
    [ (0, 0); (0, 0); (0, 1); (1, 1); (1, 1); (1, 0); (2, 2); (2, 2); (2, 2) ]
  in
  let m = Matrix.of_samples samples in
  let mi = Capacity.mutual_information m in
  let c = Capacity.blahut_arimoto m in
  Alcotest.(check bool) "C >= I_uniform" true (c >= mi -. 1e-9)

let test_single_input_zero () =
  Alcotest.(check (float 0.0001)) "one symbol cannot leak" 0.0
    (Capacity.of_samples [ (0, 1); (0, 2); (0, 3) ])

let prop_capacity_bounded =
  QCheck.Test.make ~name:"0 <= capacity <= log2(inputs)" ~count:100
    QCheck.(list_of_size (Gen.int_range 4 40) (pair (int_bound 3) (int_bound 5)))
    (fun samples ->
      match samples with
      | [] -> true
      | _ ->
        let inputs = List.sort_uniq compare (List.map fst samples) in
        let c = Capacity.of_samples samples in
        c >= 0.
        && c <= (log (float_of_int (max 1 (List.length inputs))) /. log 2.) +. 1e-6)

let suite =
  [
    Alcotest.test_case "hist basics" `Quick test_hist_basics;
    Alcotest.test_case "hist stats" `Quick test_hist_stats;
    Alcotest.test_case "hist quantile" `Quick test_hist_quantile;
    Alcotest.test_case "hist empty" `Quick test_hist_empty;
    Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
    Alcotest.test_case "matrix probabilities" `Quick test_matrix_probabilities;
    Alcotest.test_case "matrix predicates" `Quick test_matrix_predicates;
    Alcotest.test_case "matrix empty" `Quick test_matrix_empty;
    Alcotest.test_case "entropy" `Quick test_entropy;
    Alcotest.test_case "perfect channel" `Quick test_perfect_channel_capacity;
    Alcotest.test_case "dead channel" `Quick test_dead_channel_capacity;
    Alcotest.test_case "binary symmetric channel" `Quick test_bsc_capacity;
    Alcotest.test_case "mutual information" `Quick test_mutual_information_uniform;
    Alcotest.test_case "MI with prior" `Quick test_mi_with_prior;
    Alcotest.test_case "capacity dominates MI" `Quick test_capacity_at_least_mi;
    Alcotest.test_case "single input" `Quick test_single_input_zero;
    QCheck_alcotest.to_alcotest prop_capacity_bounded;
  ]
