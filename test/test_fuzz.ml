(* The fuzz harness's own guarantees: deterministic generation, replay
   round-trips, oracle soundness at scale (10,000 trials, zero
   violations) and mutant-kill validation — each injected defence bypass
   must be caught within a bounded trial budget, and the shrinker must
   hand back a smaller scenario that still fails. *)

open Tpro_fuzz

let scenario = Alcotest.testable Scenario.pp ( = )

let test_generate_deterministic () =
  for idx = 0 to 49 do
    Alcotest.check scenario
      (Printf.sprintf "generate ~seed:7 %d is stable" idx)
      (Scenario.generate ~seed:7 idx)
      (Scenario.generate ~seed:7 idx)
  done;
  Alcotest.(check bool) "different indices differ" true
    (Scenario.generate ~seed:7 0 <> Scenario.generate ~seed:7 1);
  Alcotest.(check bool) "different seeds differ" true
    (Scenario.generate ~seed:7 0 <> Scenario.generate ~seed:8 0)

let test_serialisation_roundtrip () =
  List.iter
    (fun mutant ->
      for idx = 0 to 19 do
        let s = Scenario.generate ~seed:3 ~mutant idx in
        match Scenario.of_string (Scenario.to_string s) with
        | Ok s' -> Alcotest.check scenario "to_string/of_string" s s'
        | Error e ->
          Alcotest.failf "of_string failed: %a" Scenario.pp_parse_error e
      done)
    [ Scenario.No_mutant; Scenario.Skip_flush; Scenario.Drop_padding;
      Scenario.Miscolour ]

let test_file_roundtrip () =
  let s = Scenario.generate ~seed:11 4 in
  let path = Filename.temp_file "tpro-fuzz" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scenario.save path s;
      match Scenario.load path with
      | Ok s' -> Alcotest.check scenario "save/load" s s'
      | Error e -> Alcotest.failf "load failed: %s" (Scenario.load_error_to_string e));
  match Scenario.load "/nonexistent/fuzz-scenario" with
  | Ok _ -> Alcotest.fail "loading a missing file must not succeed"
  | Error (Scenario.Io _) -> ()
  | Error (Scenario.Parse _) ->
    Alcotest.fail "a missing file is an Io error, not a Parse error"

(* Satellite: malformed replay files yield a typed parse error naming
   the offending line — never an exception, never a silent default. *)
let check_parse_error name text ~line ~grep =
  match Scenario.of_string text with
  | Ok _ -> Alcotest.failf "%s: malformed input parsed successfully" name
  | Error e ->
    Alcotest.(check int) (name ^ ": line number") line e.Scenario.line;
    let mentions needle hay =
      let lh = String.length hay and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: reason %S mentions %S" name e.Scenario.reason grep)
      true (mentions grep e.Scenario.reason)

let test_parse_errors_typed () =
  let base = Scenario.to_string (Scenario.generate ~seed:3 0) in
  check_parse_error "missing value" (base ^ "orphan\n") ~line:20
    ~grep:"missing value";
  check_parse_error "non-integer" "seed x\n" ~line:1 ~grep:"integer";
  check_parse_error "unknown key" (base ^ "wat 3\n") ~line:20
    ~grep:"unknown key";
  check_parse_error "duplicate key" (base ^ "seed 3\n") ~line:20
    ~grep:"duplicate key";
  check_parse_error "bad mutant" "mutant frobnicate\n" ~line:1 ~grep:"mutant";
  check_parse_error "missing key" "seed 1\n" ~line:0 ~grep:"missing key";
  (* the reported line is the offending one, not the first *)
  check_parse_error "line counting" "seed 1\nidx 2\noracle nonint\nidx 9\n"
    ~line:4 ~grep:"duplicate key"

(* The generator must actually exercise the whole space: every machine
   preset, both BTB settings and all three oracles show up early. *)
let test_generator_coverage () =
  let scenarios = List.init 500 (Scenario.generate ~seed:42) in
  let n_presets = List.length Scenario.machine_presets in
  for p = 0 to n_presets - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "preset %d drawn" p)
      true
      (List.exists (fun s -> s.Scenario.preset = p) scenarios)
  done;
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Scenario.oracle_to_string o ^ " oracle drawn")
        true
        (List.exists (fun s -> s.Scenario.oracle = o) scenarios))
    [ Scenario.Nonint; Scenario.Capacity; Scenario.Legacy ];
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "btb=%b drawn" b)
        true
        (List.exists (fun s -> s.Scenario.btb = b) scenarios))
    [ true; false ]

(* Acceptance criterion: 10,000 seeded trials across all presets with
   zero oracle violations. *)
let test_10k_trials_no_violation () =
  Tpro_engine.Pool.with_pool (fun pool ->
      match Driver.run ~pool ~seed:42 ~trials:10_000 () with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "oracle violation without a mutant:@.%a"
          Driver.pp_failure f)

(* Acceptance criterion: each injected defence bypass is killed within
   1,000 trials, and the shrunk counterexample still fails without
   having grown. *)
let check_mutant_killed mutant =
  match Driver.first_failure ~mutant ~seed:42 ~budget:1_000 () with
  | None ->
    Alcotest.failf "%s mutant survived 1000 trials"
      (Scenario.mutant_to_string mutant)
  | Some (used, f) ->
    Alcotest.(check bool)
      (Printf.sprintf "%s killed within budget (used %d)"
         (Scenario.mutant_to_string mutant)
         used)
      true (used <= 1_000);
    Alcotest.(check bool) "shrunk scenario did not grow" true
      (Scenario.size f.Driver.shrunk <= Scenario.size f.Driver.scenario);
    (match Oracle.check f.Driver.shrunk with
    | Oracle.Fail _ -> ()
    | Oracle.Pass -> Alcotest.fail "shrunk counterexample no longer fails");
    (* the replay file reproduces the violation *)
    let path = Filename.temp_file "tpro-fuzz-kill" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Scenario.save path f.Driver.shrunk;
        match Scenario.load path with
        | Ok s -> (
          match Oracle.check s with
          | Oracle.Fail _ -> ()
          | Oracle.Pass -> Alcotest.fail "replayed scenario no longer fails")
        | Error e ->
          Alcotest.failf "replay load failed: %s"
            (Scenario.load_error_to_string e))

let test_kill_skip_flush () = check_mutant_killed Scenario.Skip_flush
let test_kill_drop_padding () = check_mutant_killed Scenario.Drop_padding
let test_kill_miscolour () = check_mutant_killed Scenario.Miscolour

(* Tentpole acceptance: each mutant is killed by its *matching named
   lemma* — the noninterference oracle's failure message must name
   exactly the lemma of the composed theorem that the bypass refutes
   (skip-flush: the victim resource's [flush:] lemma; drop-padding:
   [kernel:padded-switch]; miscolour: [partition:llc]).  Every Nonint
   kill is checked, and at least three must occur within the scan. *)
let contains needle hay =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_lemma_kills mutant ~expect =
  let kills = ref 0 and idx = ref 0 in
  while !kills < 3 && !idx < 400 do
    let s = Scenario.generate ~seed:42 ~mutant !idx in
    (if s.Scenario.oracle = Scenario.Nonint then
       match Oracle.check s with
       | Oracle.Fail msg ->
         incr kills;
         let lemma = expect s in
         Alcotest.(check bool)
           (Printf.sprintf "%s kill (idx %d) blames lemma %s, message: %s"
              (Scenario.mutant_to_string mutant)
              !idx lemma msg)
           true
           (contains ("lemma " ^ lemma ^ " refuted") msg)
       | Oracle.Pass -> ());
    incr idx
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%s: at least 3 nonint kills within 400 scenarios"
       (Scenario.mutant_to_string mutant))
    true (!kills >= 3)

let test_lemma_skip_flush () =
  check_lemma_kills Scenario.Skip_flush ~expect:(fun s ->
      "flush:" ^ Scenario.skip_target s)

let test_lemma_drop_padding () =
  check_lemma_kills Scenario.Drop_padding ~expect:(fun _ ->
      "kernel:padded-switch")

let test_lemma_miscolour () =
  check_lemma_kills Scenario.Miscolour ~expect:(fun _ -> "partition:llc")

(* Fan-out must not change results: the pool path and the sequential
   path agree failure-for-failure (here: both empty on a clean run). *)
let test_pool_matches_sequential () =
  let seq = Driver.run ~seed:9 ~trials:64 () in
  let par =
    Tpro_engine.Pool.with_pool (fun pool ->
        Driver.run ~pool ~seed:9 ~trials:64 ())
  in
  Alcotest.(check int) "same failure count" (List.length seq)
    (List.length par)

let suite =
  [
    Alcotest.test_case "generation is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "to_string/of_string round-trip" `Quick
      test_serialisation_roundtrip;
    Alcotest.test_case "save/load round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "generator covers the space" `Quick
      test_generator_coverage;
    Alcotest.test_case "10k trials, zero oracle violations" `Slow
      test_10k_trials_no_violation;
    Alcotest.test_case "skip-flush mutant killed" `Quick test_kill_skip_flush;
    Alcotest.test_case "drop-padding mutant killed" `Quick
      test_kill_drop_padding;
    Alcotest.test_case "miscolour mutant killed" `Quick test_kill_miscolour;
    Alcotest.test_case "skip-flush blamed on flush:<victim>" `Quick
      test_lemma_skip_flush;
    Alcotest.test_case "drop-padding blamed on kernel:padded-switch" `Quick
      test_lemma_drop_padding;
    Alcotest.test_case "miscolour blamed on partition:llc" `Quick
      test_lemma_miscolour;
    Alcotest.test_case "pool fan-out matches sequential" `Quick
      test_pool_matches_sequential;
  ]
