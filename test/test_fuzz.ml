(* The fuzz harness's own guarantees: deterministic generation, replay
   round-trips, oracle soundness at scale (10,000 trials, zero
   violations) and mutant-kill validation — each injected defence bypass
   must be caught within a bounded trial budget, and the shrinker must
   hand back a smaller scenario that still fails. *)

open Tpro_fuzz

let scenario = Alcotest.testable Scenario.pp ( = )

let test_generate_deterministic () =
  for idx = 0 to 49 do
    Alcotest.check scenario
      (Printf.sprintf "generate ~seed:7 %d is stable" idx)
      (Scenario.generate ~seed:7 idx)
      (Scenario.generate ~seed:7 idx)
  done;
  Alcotest.(check bool) "different indices differ" true
    (Scenario.generate ~seed:7 0 <> Scenario.generate ~seed:7 1);
  Alcotest.(check bool) "different seeds differ" true
    (Scenario.generate ~seed:7 0 <> Scenario.generate ~seed:8 0)

let test_serialisation_roundtrip () =
  List.iter
    (fun mutant ->
      for idx = 0 to 19 do
        let s = Scenario.generate ~seed:3 ~mutant idx in
        match Scenario.of_string (Scenario.to_string s) with
        | Ok s' -> Alcotest.check scenario "to_string/of_string" s s'
        | Error e ->
          Alcotest.failf "of_string failed: %a" Scenario.pp_parse_error e
      done)
    [ Scenario.No_mutant; Scenario.Skip_flush; Scenario.Drop_padding;
      Scenario.Miscolour ]

let test_file_roundtrip () =
  let s = Scenario.generate ~seed:11 4 in
  let path = Filename.temp_file "tpro-fuzz" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Scenario.save path s;
      match Scenario.load path with
      | Ok s' -> Alcotest.check scenario "save/load" s s'
      | Error e -> Alcotest.failf "load failed: %s" (Scenario.load_error_to_string e));
  match Scenario.load "/nonexistent/fuzz-scenario" with
  | Ok _ -> Alcotest.fail "loading a missing file must not succeed"
  | Error (Scenario.Io _) -> ()
  | Error (Scenario.Parse _) ->
    Alcotest.fail "a missing file is an Io error, not a Parse error"

(* Satellite: malformed replay files yield a typed parse error naming
   the offending line — never an exception, never a silent default. *)
let check_parse_error name text ~line ~grep =
  match Scenario.of_string text with
  | Ok _ -> Alcotest.failf "%s: malformed input parsed successfully" name
  | Error e ->
    Alcotest.(check int) (name ^ ": line number") line e.Scenario.line;
    let mentions needle hay =
      let lh = String.length hay and ln = String.length needle in
      let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s: reason %S mentions %S" name e.Scenario.reason grep)
      true (mentions grep e.Scenario.reason)

let test_parse_errors_typed () =
  let base = Scenario.to_string (Scenario.generate ~seed:3 0) in
  check_parse_error "missing value" (base ^ "orphan\n") ~line:20
    ~grep:"missing value";
  check_parse_error "non-integer" "seed x\n" ~line:1 ~grep:"integer";
  check_parse_error "unknown key" (base ^ "wat 3\n") ~line:20
    ~grep:"unknown key";
  check_parse_error "duplicate key" (base ^ "seed 3\n") ~line:20
    ~grep:"duplicate key";
  check_parse_error "bad mutant" "mutant frobnicate\n" ~line:1 ~grep:"mutant";
  check_parse_error "missing key" "seed 1\n" ~line:0 ~grep:"missing key";
  (* the reported line is the offending one, not the first *)
  check_parse_error "line counting" "seed 1\nidx 2\noracle nonint\nidx 9\n"
    ~line:4 ~grep:"duplicate key"

(* The generator must actually exercise the whole space: every machine
   preset, both BTB settings and all three oracles show up early. *)
let test_generator_coverage () =
  let scenarios = List.init 500 (Scenario.generate ~seed:42) in
  let n_presets = List.length Scenario.machine_presets in
  for p = 0 to n_presets - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "preset %d drawn" p)
      true
      (List.exists (fun s -> s.Scenario.preset = p) scenarios)
  done;
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Scenario.oracle_to_string o ^ " oracle drawn")
        true
        (List.exists (fun s -> s.Scenario.oracle = o) scenarios))
    [ Scenario.Nonint; Scenario.Capacity; Scenario.Legacy ];
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "btb=%b drawn" b)
        true
        (List.exists (fun s -> s.Scenario.btb = b) scenarios))
    [ true; false ]

(* Acceptance criterion: 10,000 seeded trials across all presets with
   zero oracle violations. *)
let test_10k_trials_no_violation () =
  Tpro_engine.Pool.with_pool (fun pool ->
      match Driver.run ~pool ~seed:42 ~trials:10_000 () with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "oracle violation without a mutant:@.%a"
          Driver.pp_failure f)

(* Acceptance criterion: each injected defence bypass is killed within
   1,000 trials, and the shrunk counterexample still fails without
   having grown. *)
let check_mutant_killed mutant =
  match Driver.first_failure ~mutant ~seed:42 ~budget:1_000 () with
  | None ->
    Alcotest.failf "%s mutant survived 1000 trials"
      (Scenario.mutant_to_string mutant)
  | Some (used, f) ->
    Alcotest.(check bool)
      (Printf.sprintf "%s killed within budget (used %d)"
         (Scenario.mutant_to_string mutant)
         used)
      true (used <= 1_000);
    Alcotest.(check bool) "shrunk scenario did not grow" true
      (Scenario.size f.Driver.shrunk <= Scenario.size f.Driver.scenario);
    (match Oracle.check f.Driver.shrunk with
    | Oracle.Fail _ -> ()
    | Oracle.Pass -> Alcotest.fail "shrunk counterexample no longer fails");
    (* the replay file reproduces the violation *)
    let path = Filename.temp_file "tpro-fuzz-kill" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Scenario.save path f.Driver.shrunk;
        match Scenario.load path with
        | Ok s -> (
          match Oracle.check s with
          | Oracle.Fail _ -> ()
          | Oracle.Pass -> Alcotest.fail "replayed scenario no longer fails")
        | Error e ->
          Alcotest.failf "replay load failed: %s"
            (Scenario.load_error_to_string e))

let test_kill_skip_flush () = check_mutant_killed Scenario.Skip_flush
let test_kill_drop_padding () = check_mutant_killed Scenario.Drop_padding
let test_kill_miscolour () = check_mutant_killed Scenario.Miscolour

(* Tentpole acceptance: each mutant is killed by its *matching named
   lemma* — the noninterference oracle's failure message must name
   exactly the lemma of the composed theorem that the bypass refutes
   (skip-flush: the victim resource's [flush:] lemma; drop-padding:
   [kernel:padded-switch]; miscolour: [partition:llc]).  Every Nonint
   kill is checked, and at least three must occur within the scan. *)
let contains needle hay =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_lemma_kills mutant ~expect =
  let kills = ref 0 and idx = ref 0 in
  while !kills < 3 && !idx < 400 do
    let s = Scenario.generate ~seed:42 ~mutant !idx in
    (if s.Scenario.oracle = Scenario.Nonint then
       match Oracle.check s with
       | Oracle.Fail msg ->
         incr kills;
         let lemma = expect s in
         Alcotest.(check bool)
           (Printf.sprintf "%s kill (idx %d) blames lemma %s, message: %s"
              (Scenario.mutant_to_string mutant)
              !idx lemma msg)
           true
           (contains ("lemma " ^ lemma ^ " refuted") msg)
       | Oracle.Pass -> ());
    incr idx
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%s: at least 3 nonint kills within 400 scenarios"
       (Scenario.mutant_to_string mutant))
    true (!kills >= 3)

let test_lemma_skip_flush () =
  check_lemma_kills Scenario.Skip_flush ~expect:(fun s ->
      "flush:" ^ Scenario.skip_target s)

let test_lemma_drop_padding () =
  check_lemma_kills Scenario.Drop_padding ~expect:(fun _ ->
      "kernel:padded-switch")

let test_lemma_miscolour () =
  check_lemma_kills Scenario.Miscolour ~expect:(fun _ -> "partition:llc")

(* Fan-out must not change results: the pool path and the sequential
   path agree failure-for-failure (here: both empty on a clean run). *)
let test_pool_matches_sequential () =
  let seq = Driver.run ~seed:9 ~trials:64 () in
  let par =
    Tpro_engine.Pool.with_pool (fun pool ->
        Driver.run ~pool ~seed:9 ~trials:64 ())
  in
  Alcotest.(check int) "same failure count" (List.length seq)
    (List.length par)

(* ------------------------------------------------------------------ *)
(* Topology campaigns: the N-domain/M-core generalisation.             *)

let topology = Alcotest.testable Topology.pp ( = )

let test_topology_deterministic () =
  for idx = 0 to 29 do
    Alcotest.check topology
      (Printf.sprintf "generate ~seed:7 %d is stable" idx)
      (Topology.generate ~seed:7 idx)
      (Topology.generate ~seed:7 idx)
  done;
  Alcotest.(check bool) "different indices differ" true
    (Topology.generate ~seed:7 0 <> Topology.generate ~seed:7 1);
  Alcotest.(check bool) "different seeds differ" true
    (Topology.generate ~seed:7 0 <> Topology.generate ~seed:8 0)

(* The generator must actually draw multi-core, SMT, TDMA and IPC
   shapes — the whole point of the refactor. *)
let test_topology_coverage () =
  let topos = List.init 200 (Topology.generate ~seed:42) in
  let some name p =
    Alcotest.(check bool) (name ^ " drawn") true (List.exists p topos)
  in
  some "single-core" (fun t -> t.Topology.n_cores = 1);
  some "four-core" (fun t -> t.Topology.n_cores = 4);
  some "smt" (fun t -> t.Topology.smt);
  some "tdma bus" (fun t -> t.Topology.bus_slot > 0);
  some "ipc edges" (fun t -> t.Topology.ipc <> []);
  some "8 domains" (fun t -> Topology.n_domains t = 8);
  some "2 domains" (fun t -> Topology.n_domains t = 2)

let test_topology_roundtrip () =
  List.iter
    (fun mutant ->
      for idx = 0 to 19 do
        let t = Topology.generate ~seed:3 ~mutant idx in
        match Topology.of_string (Topology.to_string t) with
        | Ok t' -> Alcotest.check topology "to_string/of_string" t t'
        | Error e ->
          Alcotest.failf "of_string failed: %a" Scenario.pp_parse_error e
      done)
    [ Scenario.No_mutant; Scenario.Skip_flush; Scenario.Drop_padding;
      Scenario.Miscolour ]

(* Forward compatibility: scenario files are format 1 and still parse
   when the [format] line is absent (files written before the key
   existed); a format this build does not know is a typed error naming
   both versions; and the [Replay] loader dispatches on the line. *)
let test_format_versioning () =
  let s = Scenario.generate ~seed:11 4 in
  let text = Scenario.to_string s in
  Alcotest.(check bool) "scenario files declare format 1" true
    (contains "format 1\n" text);
  let without_format =
    String.concat "\n"
      (List.filter
         (fun l -> not (contains "format" l))
         (String.split_on_char '\n' text))
  in
  (match Scenario.of_string without_format with
  | Ok s' -> Alcotest.check scenario "pre-versioning file still parses" s s'
  | Error e ->
    Alcotest.failf "pre-versioning scenario rejected: %a"
      Scenario.pp_parse_error e);
  (match Scenario.of_string ("format 9\n" ^ without_format) with
  | Ok _ -> Alcotest.fail "alien format version parsed as a scenario"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "alien version error names versions: %s"
         e.Scenario.reason)
      true
      (contains "unsupported replay format 9" e.Scenario.reason));
  let t = Topology.generate ~seed:11 4 in
  Alcotest.(check bool) "topology files declare format 2" true
    (contains "format 2\n" (Topology.to_string t));
  (match Replay.of_string text with
  | Ok (Replay.Scenario s') ->
    Alcotest.check scenario "replay dispatch: scenario" s s'
  | Ok (Replay.Topology _) -> Alcotest.fail "scenario dispatched as topology"
  | Error e ->
    Alcotest.failf "replay dispatch failed: %a" Scenario.pp_parse_error e);
  (match Replay.of_string (Topology.to_string t) with
  | Ok (Replay.Topology t') ->
    Alcotest.check topology "replay dispatch: topology" t t'
  | Ok (Replay.Scenario _) -> Alcotest.fail "topology dispatched as scenario"
  | Error e ->
    Alcotest.failf "replay dispatch failed: %a" Scenario.pp_parse_error e);
  match Replay.of_string ("format 3\nseed 0\n") with
  | Ok _ -> Alcotest.fail "unknown format dispatched"
  | Error e ->
    Alcotest.(check bool) "dispatch error names supported versions" true
      (contains "formats 1 and 2" e.Scenario.reason)

let test_topology_file_roundtrip () =
  let t = Topology.generate ~seed:5 ~mutant:Scenario.Miscolour 2 in
  let path = Filename.temp_file "tpro-topo" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topology.save path t;
      match Topology.load path with
      | Ok t' -> Alcotest.check topology "save/load" t t'
      | Error e ->
        Alcotest.failf "load failed: %s" (Scenario.load_error_to_string e))

(* Acceptance criterion: generated topologies under the full preset show
   zero pairwise violations from any observer domain's viewpoint. *)
let test_topologies_no_violation () =
  match
    Tpro_engine.Pool.with_pool (fun pool ->
        Driver.topo_run ~pool ~seed:42 ~trials:150 ())
  with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "pairwise violation without a mutant:@.%a"
      Driver.pp_topo_failure f

(* Each mutant must be killed on some domain pair within the budget,
   with the matching lemma named in the pair-tagged message. *)
let check_topo_mutant_killed mutant ~expect =
  match Driver.topo_first_failure ~mutant ~seed:42 ~budget:1_000 () with
  | None ->
    Alcotest.failf "%s mutant survived 1000 topologies"
      (Scenario.mutant_to_string mutant)
  | Some (used, f) ->
    Alcotest.(check bool)
      (Printf.sprintf "%s killed within budget (used %d)"
         (Scenario.mutant_to_string mutant)
         used)
      true (used <= 1_000);
    Alcotest.(check bool)
      (Printf.sprintf "%s kill names the pair: %s"
         (Scenario.mutant_to_string mutant)
         f.Driver.topo_message)
      true
      (contains "pair (hi=" f.Driver.topo_message);
    let lemma = expect f.Driver.topology in
    Alcotest.(check bool)
      (Printf.sprintf "%s kill blames %s: %s"
         (Scenario.mutant_to_string mutant)
         lemma f.Driver.topo_message)
      true
      (contains ("lemma " ^ lemma ^ " refuted") f.Driver.topo_message);
    (* the saved file reproduces the violation through the dispatcher *)
    let path = Filename.temp_file "tpro-topo-kill" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Topology.save path f.Driver.topology;
        match Replay.load path with
        | Ok (Replay.Topology t) -> (
          match Oracle.check_topology t with
          | Oracle.Fail _ -> ()
          | Oracle.Pass -> Alcotest.fail "replayed topology no longer fails")
        | Ok (Replay.Scenario _) ->
          Alcotest.fail "topology replay dispatched as scenario"
        | Error e ->
          Alcotest.failf "replay load failed: %s"
            (Scenario.load_error_to_string e))

let test_topo_kill_skip_flush () =
  check_topo_mutant_killed Scenario.Skip_flush ~expect:(fun t ->
      "flush:" ^ Topology.skip_target t)

let test_topo_kill_drop_padding () =
  check_topo_mutant_killed Scenario.Drop_padding ~expect:(fun _ ->
      "kernel:padded-switch")

let test_topo_kill_miscolour () =
  match Driver.topo_first_failure ~mutant:Scenario.Miscolour ~seed:42
          ~budget:1_000 ()
  with
  | None -> Alcotest.fail "miscolour mutant survived 1000 topologies"
  | Some (_, f) ->
    Alcotest.(check bool)
      (Printf.sprintf "miscolour kill names a pair: %s" f.Driver.topo_message)
      true
      (contains "pair (hi=" f.Driver.topo_message)

(* Satellite: a hand-built 4-domain/2-core topology in which the planted
   miscolouring (domain 0's page remapped into a frame of domain 2's
   colour) leaks between exactly that domain pair.  The planted
   direction (vary 0, observer 2) is a state-level breach of 2's slice
   — the violation names the pair and the [partition:llc] lemma.  The
   reverse direction may also fail, as timing: 0's accesses to its
   miscoloured page hit sets shared with 2's lines, whose digests feed
   the latency jitter — a miscoloured mapping breaks isolation both
   ways, which is physically faithful.  What the test pins down is that
   no pair *not* involving both 0 and 2 leaks anything. *)
let test_miscolour_leaks_one_pair () =
  let dom core wseed workload =
    {
      Topology.d_core = core;
      d_colours = 1;
      d_pages = 1;
      d_workload = workload;
      d_wseed = wseed;
      d_slice = 3_000;
    }
  in
  let t =
    {
      Topology.seed = 0;
      idx = 0;
      mutant = Scenario.Miscolour;
      n_cores = 2;
      smt = false;
      btb = false;
      lat_seed = 0;
      secret_a = 1;
      secret_b = 5;
      bus_slot = 64;
      pad_extra = 0;
      domains = [| dom 0 3 0; dom 0 7 1; dom 1 11 2; dom 1 13 3 |];
      scheds = [ (0, [| 0; 1 |]); (1, [| 2; 3 |]) ];
      ipc = [];
      deep_hi = 0;
      deep_lo = 2;
      cap_dom = 1;
      cap_obs = 3;
      skip_idx = 0;
      mis_src = 0;
      mis_dst = 2;
    }
  in
  (match Oracle.check_topology_pair t ~vary:0 ~obs:2 with
  | Oracle.Pass -> Alcotest.fail "planted pair (0,2) did not leak"
  | Oracle.Fail m ->
    Alcotest.(check bool)
      (Printf.sprintf "violation names the planted pair: %s" m)
      true
      (contains "pair (hi=0, lo=2)" m);
    Alcotest.(check bool)
      (Printf.sprintf "violation blames partition:llc: %s" m)
      true
      (contains "partition:llc" m));
  (* The full pairwise sweep reports the planted pair: (0,1) is clean,
     so (0,2) is the first violation in vary-major order. *)
  (match Oracle.check_topology t with
  | Oracle.Pass -> Alcotest.fail "full sweep missed the planted pair"
  | Oracle.Fail m ->
    Alcotest.(check bool)
      (Printf.sprintf "full sweep names the planted pair: %s" m)
      true
      (contains "pair (hi=0, lo=2)" m);
    Alcotest.(check bool)
      (Printf.sprintf "full sweep blames partition:llc: %s" m)
      true
      (contains "partition:llc" m));
  List.iter
    (fun (v, o) ->
      if (v, o) <> (0, 2) && (v, o) <> (2, 0) then
        match Oracle.check_topology_pair t ~vary:v ~obs:o with
        | Oracle.Pass -> ()
        | Oracle.Fail m ->
          Alcotest.failf "pair (%d,%d) unexpectedly leaks: %s" v o m)
    (Topology.pairs t)

(* Topology fan-out must not change verdicts either. *)
let test_topo_pool_matches_sequential () =
  let seq = Driver.topo_run ~seed:9 ~trials:24 () in
  let par =
    Tpro_engine.Pool.with_pool (fun pool ->
        Driver.topo_run ~pool ~seed:9 ~trials:24 ())
  in
  Alcotest.(check int) "same failure count" (List.length seq)
    (List.length par)

(* The hardwired two-domain scenario is the trivial topology instance:
   a 2-domain/1-core draw executes, quiesces and passes the same
   pairwise oracle. *)
let test_two_domain_instance () =
  let t = Topology.generate ~seed:1 ~max_domains:2 ~max_cores:1 0 in
  Alcotest.(check int) "two domains" 2 (Topology.n_domains t);
  Alcotest.(check int) "one core" 1 t.Topology.n_cores;
  Alcotest.(check (list (pair int int)))
    "two ordered pairs"
    [ (0, 1); (1, 0) ]
    (Topology.pairs t);
  match Oracle.check_topology t with
  | Oracle.Pass -> ()
  | Oracle.Fail m -> Alcotest.failf "2-domain instance fails: %s" m

let suite =
  [
    Alcotest.test_case "generation is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "to_string/of_string round-trip" `Quick
      test_serialisation_roundtrip;
    Alcotest.test_case "save/load round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "generator covers the space" `Quick
      test_generator_coverage;
    Alcotest.test_case "10k trials, zero oracle violations" `Slow
      test_10k_trials_no_violation;
    Alcotest.test_case "skip-flush mutant killed" `Quick test_kill_skip_flush;
    Alcotest.test_case "drop-padding mutant killed" `Quick
      test_kill_drop_padding;
    Alcotest.test_case "miscolour mutant killed" `Quick test_kill_miscolour;
    Alcotest.test_case "skip-flush blamed on flush:<victim>" `Quick
      test_lemma_skip_flush;
    Alcotest.test_case "drop-padding blamed on kernel:padded-switch" `Quick
      test_lemma_drop_padding;
    Alcotest.test_case "miscolour blamed on partition:llc" `Quick
      test_lemma_miscolour;
    Alcotest.test_case "pool fan-out matches sequential" `Quick
      test_pool_matches_sequential;
    Alcotest.test_case "topology generation is deterministic" `Quick
      test_topology_deterministic;
    Alcotest.test_case "topology generator covers the space" `Quick
      test_topology_coverage;
    Alcotest.test_case "topology format-2 round-trip" `Quick
      test_topology_roundtrip;
    Alcotest.test_case "replay format versioning and dispatch" `Quick
      test_format_versioning;
    Alcotest.test_case "topology save/load round-trip" `Quick
      test_topology_file_roundtrip;
    Alcotest.test_case "150 topologies, zero pairwise violations" `Slow
      test_topologies_no_violation;
    Alcotest.test_case "topo skip-flush killed, flush:<target> blamed" `Quick
      test_topo_kill_skip_flush;
    Alcotest.test_case "topo drop-padding killed, padded-switch blamed"
      `Quick test_topo_kill_drop_padding;
    Alcotest.test_case "topo miscolour killed on a named pair" `Quick
      test_topo_kill_miscolour;
    Alcotest.test_case "miscolour leaks between exactly one pair" `Quick
      test_miscolour_leaks_one_pair;
    Alcotest.test_case "topology pool fan-out matches sequential" `Quick
      test_topo_pool_matches_sequential;
    Alcotest.test_case "2-domain topology is the legacy instance" `Quick
      test_two_domain_instance;
  ]
