open Tpro_hw
open Tpro_kernel

let test_builders () =
  Alcotest.(check int) "loads length" 3 (Program.length (Program.loads [ 1; 2; 3 ]));
  (match Program.stores [ 5 ] with
  | [| Program.Store 5 |] -> ()
  | _ -> Alcotest.fail "stores builder");
  match Program.timed_loads [ 7 ] with
  | [| Program.Timed_load 7 |] -> ()
  | _ -> Alcotest.fail "timed_loads builder"

let test_strided () =
  match Program.strided ~op:`Load ~base:100 ~stride:10 ~n:3 with
  | [| Program.Load 100; Program.Load 110; Program.Load 120 |] -> ()
  | _ -> Alcotest.fail "strided"

let test_concat_halted () =
  let p = Program.halted (Program.concat [ Program.loads [ 1 ]; Program.loads [ 2 ] ]) in
  Alcotest.(check int) "length" 3 (Program.length p);
  match p.(2) with
  | Program.Halt -> ()
  | _ -> Alcotest.fail "halted appends Halt"

let test_random_deterministic () =
  let mk () =
    Program.random (Rng.create 9) ~len:50 ~data_base:0x1000 ~data_bytes:4096
  in
  Alcotest.(check bool) "same seed same program" true (mk () = mk ())

let test_random_ends_in_halt () =
  let p = Program.random (Rng.create 3) ~len:20 ~data_base:0 ~data_bytes:64 in
  Alcotest.(check int) "length is len+1" 21 (Program.length p);
  match p.(20) with
  | Program.Halt -> ()
  | _ -> Alcotest.fail "random programs end in Halt"

let prop_random_addresses_in_range =
  QCheck.Test.make ~name:"random programs touch only their data window"
    ~count:100
    QCheck.(pair small_int (int_range 64 8192))
    (fun (seed, data_bytes) ->
      let base = 0x2000 in
      let p = Program.random (Rng.create seed) ~len:60 ~data_base:base ~data_bytes in
      Array.for_all
        (function
          | Program.Load a | Program.Store a | Program.Timed_load a
          | Program.Clflush a ->
            a >= base && a < base + data_bytes
          | Program.Compute _ | Program.Branch _ | Program.Read_clock
          | Program.Syscall _ | Program.Halt | Program.Set _ | Program.Add _
          | Program.Load_idx _ | Program.Store_idx _ ->
            true)
        p)

let test_pp_smoke () =
  let p = Program.random (Rng.create 1) ~len:10 ~data_base:0 ~data_bytes:64 in
  let s = Format.asprintf "%a" Program.pp p in
  Alcotest.(check bool) "pretty-printer produces output" true (String.length s > 10)

let suite =
  [
    Alcotest.test_case "builders" `Quick test_builders;
    Alcotest.test_case "strided" `Quick test_strided;
    Alcotest.test_case "concat/halted" `Quick test_concat_halted;
    Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
    Alcotest.test_case "random ends in halt" `Quick test_random_ends_in_halt;
    QCheck_alcotest.to_alcotest prop_random_addresses_in_range;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
