open Tpro_hw

let small_config =
  {
    Machine.default_config with
    Machine.n_frames = 256;
    l1_geom = Cache.geometry ~sets:16 ~ways:2 ~line_bits:6 ();
    llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
  }

let ident_translate vpn = Some vpn

let test_load_advances_clock () =
  let m = Machine.create small_config in
  match
    Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate ~pc:0
      0x1000
  with
  | Error `Fault -> Alcotest.fail "unexpected fault"
  | Ok cycles ->
    Alcotest.(check bool) "cost positive" true (cycles > 0);
    Alcotest.(check int) "clock advanced by cost" cycles (Machine.now m ~core:0)

let test_fault_on_unmapped () =
  let m = Machine.create small_config in
  match
    Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:(fun _ -> None) ~pc:0
      0x1000
  with
  | Error `Fault -> ()
  | Ok _ -> Alcotest.fail "expected fault"

let test_warm_faster_than_cold () =
  let m = Machine.create small_config in
  let cost vaddr =
    match
      Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate ~pc:0
        vaddr
    with
    | Ok c -> c
    | Error `Fault -> Alcotest.fail "fault"
  in
  let cold = cost 0x3000 in
  let warm = cost 0x3000 in
  Alcotest.(check bool) "warm access is faster" true (warm < cold)

let test_llc_backs_l1 () =
  let m = Machine.create small_config in
  let lat = Machine.lat m in
  (* fill L1 set with conflicting lines so the first line falls to LLC only *)
  let target = 0x3000 in
  ignore
    (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate ~pc:0
       target);
  (* evict from L1: same L1 set, different tags; L1 span is 16 sets * 64B = 1 KiB *)
  for i = 1 to 4 do
    ignore
      (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate
         ~pc:0
         (target + (i * 1024)))
  done;
  match
    Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate ~pc:0
      target
  with
  | Error `Fault -> Alcotest.fail "fault"
  | Ok c ->
    Alcotest.(check bool) "L1 miss but LLC hit: between L1 and DRAM" true
      (c > lat.Latency.l1_hit && c < lat.Latency.mem_lat)

let test_flush_cost_depends_on_dirtiness () =
  let cost_with_stores n =
    let m = Machine.create small_config in
    for i = 0 to n - 1 do
      ignore
        (Machine.store m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate
           ~pc:0
           (0x4000 + (i * 64)))
    done;
    Machine.flush_core_local m ~core:0
  in
  let clean = cost_with_stores 0 in
  let dirty = cost_with_stores 16 in
  Alcotest.(check bool) "dirty flush slower" true (dirty > clean)

let test_flush_resets_private_state () =
  let m = Machine.create small_config in
  ignore
    (Machine.store m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate ~pc:0
       0x4000);
  ignore (Machine.branch m ~core:0 ~pc:0x40 ~taken:true);
  ignore (Machine.flush_core_local m ~core:0);
  let fresh = Machine.create small_config in
  Alcotest.(check int64) "private state back to power-on"
    (Machine.digest_core fresh ~core:0)
    (Machine.digest_core m ~core:0)

let test_flush_does_not_touch_llc () =
  let m = Machine.create small_config in
  ignore
    (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate ~pc:0
       0x5000);
  let d = Cache.digest (Machine.llc m) in
  ignore (Machine.flush_core_local m ~core:0);
  Alcotest.(check int64) "LLC unchanged by core-local flush" d
    (Cache.digest (Machine.llc m))

let test_branch_costs () =
  let m = Machine.create small_config in
  let lat = Machine.lat m in
  (* untrained predictor says not-taken; a taken branch mispredicts *)
  let c1 = Machine.branch m ~core:0 ~pc:0x80 ~taken:true in
  Alcotest.(check int) "mispredict penalty" lat.Latency.branch_miss c1;
  (* train *)
  ignore (Machine.branch m ~core:0 ~pc:0x80 ~taken:true);
  ignore (Machine.branch m ~core:0 ~pc:0x80 ~taken:true);
  let hits = ref 0 in
  for _ = 1 to 32 do
    if Machine.branch m ~core:0 ~pc:0x80 ~taken:true = lat.Latency.branch_hit
    then incr hits
  done;
  Alcotest.(check bool) "trained branch mostly cheap" true (!hits > 24)

let test_compute_exact () =
  let m = Machine.create small_config in
  Alcotest.(check int) "compute is exact" 37 (Machine.compute m ~core:0 ~cycles:37)

let test_multicore_clocks_independent () =
  let m = Machine.create { small_config with Machine.n_cores = 2 } in
  ignore (Machine.compute m ~core:0 ~cycles:100);
  Alcotest.(check int) "core 1 clock untouched" 0 (Machine.now m ~core:1)

let test_cross_core_llc_sharing () =
  let m = Machine.create { small_config with Machine.n_cores = 2 } in
  (* core 0 warms the LLC; core 1's first access is then an LLC hit *)
  ignore
    (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate ~pc:0
       0x6000);
  let lat = Machine.lat m in
  match
    Machine.load m ~core:1 ~asid:2 ~domain:1 ~translate:ident_translate ~pc:0
      0x6000
  with
  | Error `Fault -> Alcotest.fail "fault"
  | Ok c ->
    Alcotest.(check bool) "cross-core LLC hit" true (c < lat.Latency.mem_lat)

let test_prefetch_effect () =
  let m =
    Machine.create { small_config with Machine.prefetch_enabled = true }
  in
  (* walk a strided stream to train the prefetcher, then check the next
     line is already cached *)
  for i = 0 to 5 do
    ignore
      (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate
         ~pc:0x40
         (0x7000 + (i * 64)))
  done;
  Alcotest.(check bool) "next line prefetched" true
    (Cache.probe (Machine.l1d m ~core:0) (0x7000 + (6 * 64)))

let test_prefetch_disabled () =
  let m =
    Machine.create { small_config with Machine.prefetch_enabled = false }
  in
  for i = 0 to 5 do
    ignore
      (Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate
         ~pc:0x40
         (0x7000 + (i * 64)))
  done;
  Alcotest.(check bool) "no prefetch when disabled" false
    (Cache.probe (Machine.l1d m ~core:0) (0x7000 + (6 * 64)))

let test_determinism () =
  (* the whole machine is a deterministic function of its inputs *)
  let run () =
    let m = Machine.create small_config in
    let acc = ref 0 in
    for i = 0 to 100 do
      (match
         Machine.load m ~core:0 ~asid:1 ~domain:0 ~translate:ident_translate
           ~pc:(i * 4)
           (0x8000 + (i * 48))
       with
      | Ok c -> acc := !acc + c
      | Error `Fault -> ());
      ignore (Machine.branch m ~core:0 ~pc:(i * 8) ~taken:(i mod 3 = 0))
    done;
    (!acc, Machine.now m ~core:0, Machine.digest_shared m)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let suite =
  [
    Alcotest.test_case "load advances clock" `Quick test_load_advances_clock;
    Alcotest.test_case "fault on unmapped" `Quick test_fault_on_unmapped;
    Alcotest.test_case "warm faster than cold" `Quick test_warm_faster_than_cold;
    Alcotest.test_case "LLC backs L1" `Quick test_llc_backs_l1;
    Alcotest.test_case "flush cost depends on dirtiness" `Quick
      test_flush_cost_depends_on_dirtiness;
    Alcotest.test_case "flush resets private state" `Quick
      test_flush_resets_private_state;
    Alcotest.test_case "flush does not touch LLC" `Quick
      test_flush_does_not_touch_llc;
    Alcotest.test_case "branch costs" `Quick test_branch_costs;
    Alcotest.test_case "compute exact" `Quick test_compute_exact;
    Alcotest.test_case "multicore clocks independent" `Quick
      test_multicore_clocks_independent;
    Alcotest.test_case "cross-core LLC sharing" `Quick
      test_cross_core_llc_sharing;
    Alcotest.test_case "prefetch effect" `Quick test_prefetch_effect;
    Alcotest.test_case "prefetch disabled" `Quick test_prefetch_disabled;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
