open Tpro_kernel
open Tpro_channel

let test_prime_addresses () =
  match Prime_probe.prime ~base:0x1000 ~lines:3 ~line_size:64 with
  | [| Program.Load 0x1000; Program.Load 0x1040; Program.Load 0x1080 |] -> ()
  | _ -> Alcotest.fail "prime addresses"

let test_probe_timed () =
  Array.iter
    (function
      | Program.Timed_load _ -> ()
      | _ -> Alcotest.fail "probe must use timed loads")
    (Prime_probe.probe ~base:0 ~lines:8 ~line_size:64)

let test_shuffled_probe_is_permutation () =
  let plain = Prime_probe.probe ~base:0 ~lines:32 ~line_size:64 in
  let shuffled = Prime_probe.probe_shuffled ~base:0 ~lines:32 ~line_size:64 () in
  let addrs p =
    Array.to_list p
    |> List.filter_map (function Program.Timed_load a -> Some a | _ -> None)
  in
  Alcotest.(check (list int)) "same address set"
    (List.sort compare (addrs plain))
    (List.sort compare (addrs shuffled));
  Alcotest.(check bool) "order actually changed" true
    (addrs plain <> addrs shuffled)

let test_shuffled_deterministic () =
  let a = Prime_probe.probe_shuffled ~seed:5 ~base:0 ~lines:16 ~line_size:64 () in
  let b = Prime_probe.probe_shuffled ~seed:5 ~base:0 ~lines:16 ~line_size:64 () in
  Alcotest.(check bool) "same seed same order" true (a = b)

let test_pages_builders () =
  let prime =
    Prime_probe.prime_pages ~page_vaddrs:[ 0x1000; 0x9000 ] ~lines_per_page:4
      ~line_size:64
  in
  Alcotest.(check int) "two pages x 4 lines" 8 (Array.length prime);
  let probe =
    Prime_probe.probe_pages ~page_vaddrs:[ 0x1000 ] ~lines_per_page:4
      ~line_size:64 ()
  in
  Alcotest.(check int) "one page x 4 lines" 4 (Array.length probe)

let test_filler () =
  let f = Prime_probe.filler ~cycles:100 ~chunk:30 in
  Alcotest.(check int) "ceil(100/30) chunks" 4 (Array.length f);
  Array.iter
    (function
      | Program.Compute 30 -> ()
      | _ -> Alcotest.fail "filler uses fixed chunks")
    f

let test_decoders () =
  let obs =
    [ Event.Latency 10; Event.Clock 99; Event.Latency 50; Event.Latency 12;
      Event.Recv 1 ]
  in
  Alcotest.(check (list int)) "latencies" [ 10; 50; 12 ] (Prime_probe.latencies obs);
  Alcotest.(check int) "slow_count" 1 (Prime_probe.slow_count obs ~threshold:20);
  Alcotest.(check int) "latency_sum" 72 (Prime_probe.latency_sum obs);
  Alcotest.(check (list int)) "clock_values" [ 99 ] (Prime_probe.clock_values obs);
  Alcotest.(check int) "relative slow" 1
    (Prime_probe.slow_count_relative obs ~margin:20)

let test_relative_decoder_shifts () =
  (* adding a constant offset must not change the relative count *)
  let obs k = List.map (fun l -> Event.Latency (l + k)) [ 10; 12; 50; 11 ] in
  Alcotest.(check int) "base" 1
    (Prime_probe.slow_count_relative (obs 0) ~margin:20);
  Alcotest.(check int) "shifted" 1
    (Prime_probe.slow_count_relative (obs 130) ~margin:20)

let suite =
  [
    Alcotest.test_case "prime addresses" `Quick test_prime_addresses;
    Alcotest.test_case "probe timed" `Quick test_probe_timed;
    Alcotest.test_case "shuffled probe is permutation" `Quick
      test_shuffled_probe_is_permutation;
    Alcotest.test_case "shuffled deterministic" `Quick test_shuffled_deterministic;
    Alcotest.test_case "pages builders" `Quick test_pages_builders;
    Alcotest.test_case "filler" `Quick test_filler;
    Alcotest.test_case "decoders" `Quick test_decoders;
    Alcotest.test_case "relative decoder shift-invariant" `Quick
      test_relative_decoder_shifts;
  ]
