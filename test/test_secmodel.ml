open Tpro_hw
open Tpro_kernel
open Tpro_secmodel

(* ------------------------- Mstate --------------------------------- *)

let test_taxonomy_total () =
  (* every component is classified, and the aISA check passes because the
     only Neither component is explicitly out of scope *)
  Alcotest.(check bool) "aISA satisfied" true (Mstate.aisa_satisfied ());
  Alcotest.(check int) "one out-of-scope component" 1
    (List.length (Mstate.out_of_scope_components ()))

let classify_by_name cs n =
  match Mstate.find cs n with
  | Some c -> Mstate.classify c
  | None -> Alcotest.failf "component %S missing from derived taxonomy" n

let test_taxonomy_classes () =
  (* the taxonomy is derived from the default machine's registry *)
  let cs = Mstate.all () in
  Alcotest.(check bool) "L1D flushable" true
    (classify_by_name cs "l1d0" = Mstate.Flushable);
  Alcotest.(check bool) "LLC partitionable" true
    (classify_by_name cs "llc" = Mstate.Partitionable);
  Alcotest.(check bool) "interconnect neither" true
    (classify_by_name cs "memory interconnect" = Mstate.Neither);
  (match Mstate.find cs "memory interconnect" with
  | Some c ->
    Alcotest.(check bool) "interconnect out of scope" false (Mstate.in_scope c)
  | None -> Alcotest.fail "interconnect missing");
  match Mstate.find cs "kernel global data" with
  | Some c ->
    Alcotest.(check bool) "kernel global data partitionable" true
      (Mstate.classify c = Mstate.Partitionable)
  | None -> Alcotest.fail "kernel global data missing"

(* ------------------------- Observation ---------------------------- *)

let test_observation_equal () =
  let a = [ Event.Clock 1; Event.Latency 5 ] in
  Alcotest.(check bool) "equal" true (Observation.equal a a);
  Alcotest.(check bool) "diverges" false
    (Observation.equal a [ Event.Clock 1; Event.Latency 6 ])

let test_first_divergence_position () =
  let a = [ Event.Clock 1; Event.Latency 5; Event.Recv 0 ] in
  let b = [ Event.Clock 1; Event.Latency 6; Event.Recv 0 ] in
  match Observation.first_divergence a b with
  | Some d -> Alcotest.(check int) "position" 1 d.Observation.position
  | None -> Alcotest.fail "expected divergence"

let test_divergence_on_length () =
  let a = [ Event.Clock 1 ] and b = [ Event.Clock 1; Event.Clock 2 ] in
  match Observation.first_divergence a b with
  | Some { Observation.position = 1; left = None; right = Some _ } -> ()
  | _ -> Alcotest.fail "length mismatch must be a divergence"

let test_compare_many () =
  let t1 = [ [ Event.Clock 1 ]; [ Event.Clock 2 ] ] in
  let t2 = [ [ Event.Clock 1 ]; [ Event.Clock 3 ] ] in
  match Observation.compare_many t1 t2 with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "expected divergence in second trace"

(* ----------------------- Lemma.Tlb_asid --------------------------- *)

let test_consistency_definition () =
  let tlb = Tlb.create ~capacity:8 in
  let pt = Hashtbl.create 4 in
  Hashtbl.replace pt 1 100;
  Tlb.insert tlb ~asid:1 ~vpn:1 ~pfn:100;
  Alcotest.(check bool) "consistent" true (Lemma.Tlb_asid.consistent tlb ~asid:1 pt);
  Hashtbl.replace pt 1 200;
  Alcotest.(check bool) "stale entry detected" false
    (Lemma.Tlb_asid.consistent tlb ~asid:1 pt)

let test_apply_map_invalidate () =
  let tlb = Tlb.create ~capacity:8 in
  let pt = Hashtbl.create 4 in
  Lemma.Tlb_asid.apply tlb ~asid:1 pt (Lemma.Tlb_asid.Map { vpn = 3; pfn = 30 });
  Lemma.Tlb_asid.apply tlb ~asid:1 pt (Lemma.Tlb_asid.Touch 3);
  Alcotest.(check (option int)) "cached" (Some 30) (Tlb.peek tlb ~asid:1 ~vpn:3);
  Lemma.Tlb_asid.apply tlb ~asid:1 pt (Lemma.Tlb_asid.Map { vpn = 3; pfn = 99 });
  Alcotest.(check (option int)) "invalidated on remap" None
    (Tlb.peek tlb ~asid:1 ~vpn:3);
  Alcotest.(check bool) "still consistent" true
    (Lemma.Tlb_asid.consistent tlb ~asid:1 pt)

let test_buggy_os_breaks_own () =
  let tlb = Tlb.create ~capacity:8 in
  let pt = Hashtbl.create 4 in
  Lemma.Tlb_asid.apply tlb ~asid:1 pt (Lemma.Tlb_asid.Map { vpn = 3; pfn = 30 });
  Lemma.Tlb_asid.apply tlb ~asid:1 pt (Lemma.Tlb_asid.Touch 3);
  Lemma.Tlb_asid.apply ~invalidate_on_update:false tlb ~asid:1 pt
    (Lemma.Tlb_asid.Map { vpn = 3; pfn = 99 });
  Alcotest.(check bool) "own consistency broken" false
    (Lemma.Tlb_asid.consistent tlb ~asid:1 pt)

let prop_partition_theorem =
  QCheck.Test.make ~name:"ASID A ops preserve ASID B consistency" ~count:200
    QCheck.(pair small_int (list (pair (int_bound 15) (int_bound 3))))
    (fun (seed, raw_ops) ->
      let rng = Rng.create seed in
      let tlb = Tlb.create ~capacity:16 in
      let pt_a = Hashtbl.create 8 and pt_b = Hashtbl.create 8 in
      for vpn = 0 to 5 do
        Hashtbl.replace pt_b vpn (200 + vpn);
        Lemma.Tlb_asid.apply tlb ~asid:2 pt_b (Lemma.Tlb_asid.Touch vpn)
      done;
      let ops =
        List.map
          (fun (vpn, k) ->
            match k with
            | 0 -> Lemma.Tlb_asid.Map { vpn; pfn = Rng.int rng 128 }
            | 1 -> Lemma.Tlb_asid.Unmap vpn
            | 2 -> Lemma.Tlb_asid.Touch vpn
            | _ -> Lemma.Tlb_asid.Flush_asid)
          raw_ops
      in
      Lemma.Tlb_asid.partition_preserved tlb ~actor_asid:1 ~ops ~actor_pt:pt_a
        ~other_asid:2 ~other_pt:pt_b)

(* ------------------------- Invariant ------------------------------ *)

let small_machine =
  {
    Machine.default_config with
    Machine.n_frames = 512;
    llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
  }

let test_invariants_hold_on_full () =
  let k =
    Kernel.create ~machine_config:small_machine Kernel.config_full
  in
  let d0 = Kernel.create_domain k ~slice:5000 ~pad_cycles:9000 () in
  let d1 = Kernel.create_domain k ~slice:5000 ~pad_cycles:9000 () in
  Kernel.map_region k d0 ~vbase:0x20000000 ~pages:2;
  Kernel.map_region k d1 ~vbase:0x20000000 ~pages:2;
  ignore
    (Kernel.spawn k d0
       (Program.halted
          (Array.init 64 (fun i -> Program.Store (0x20000000 + (i * 64))))));
  ignore
    (Kernel.spawn k d1
       (Program.halted
          (Array.init 64 (fun i -> Program.Load (0x20000000 + (i * 64))))));
  Kernel.run ~max_steps:10_000 k;
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Invariant.detail) (Invariant.check_all k))

let test_colour_invariant_detects_foreign_line () =
  let k =
    Kernel.create ~machine_config:small_machine Kernel.config_full
  in
  let d0 = Kernel.create_domain k ~slice:5000 ~pad_cycles:9000 () in
  ignore d0;
  (* plant a line owned by domain 0 in a set of a colour it does not own *)
  let llc = Machine.llc (Kernel.machine k) in
  let geom = Cache.geom llc in
  let foreign_colour = 3 in
  let set_span = geom.Cache.sets / Cache.n_colours geom ~page_bits:12 in
  let paddr = foreign_colour * set_span * 64 in
  ignore (Cache.access llc ~owner:0 ~write:false paddr);
  Alcotest.(check bool) "violation reported" true
    (Invariant.colour_partition k <> [])

let test_tlb_invariant_detects_stale () =
  let k =
    Kernel.create ~machine_config:small_machine Kernel.config_full
  in
  let d0 = Kernel.create_domain k ~slice:5000 ~pad_cycles:9000 () in
  Kernel.map_region k d0 ~vbase:0x20000000 ~pages:1;
  (* insert a mapping that disagrees with the page table *)
  Tlb.insert
    (Machine.tlb (Kernel.machine k) ~core:0)
    ~asid:d0.Domain.asid ~vpn:(0x20000000 lsr 12) ~pfn:0x123;
  Alcotest.(check bool) "stale entry detected" true
    (Invariant.tlb_consistency k <> [])

let test_disjoint_colours_invariant () =
  let k =
    Kernel.create ~machine_config:small_machine Kernel.config_full
  in
  ignore (Kernel.create_domain k ~slice:5000 ~pad_cycles:9000 ());
  ignore (Kernel.create_domain k ~slice:5000 ~pad_cycles:9000 ());
  Alcotest.(check (list string)) "disjoint by construction" []
    (List.map (fun v -> v.Invariant.detail) (Invariant.disjoint_domain_colours k))

let suite =
  [
    Alcotest.test_case "taxonomy total" `Quick test_taxonomy_total;
    Alcotest.test_case "taxonomy classes" `Quick test_taxonomy_classes;
    Alcotest.test_case "observation equal" `Quick test_observation_equal;
    Alcotest.test_case "first divergence position" `Quick
      test_first_divergence_position;
    Alcotest.test_case "divergence on length" `Quick test_divergence_on_length;
    Alcotest.test_case "compare_many" `Quick test_compare_many;
    Alcotest.test_case "tlb consistency definition" `Quick
      test_consistency_definition;
    Alcotest.test_case "apply map invalidates" `Quick test_apply_map_invalidate;
    Alcotest.test_case "buggy OS breaks own consistency" `Quick
      test_buggy_os_breaks_own;
    QCheck_alcotest.to_alcotest prop_partition_theorem;
    Alcotest.test_case "invariants hold on full config" `Quick
      test_invariants_hold_on_full;
    Alcotest.test_case "colour invariant detects foreign line" `Quick
      test_colour_invariant_detects_foreign_line;
    Alcotest.test_case "tlb invariant detects stale entry" `Quick
      test_tlb_invariant_detects_stale;
    Alcotest.test_case "disjoint colours" `Quick test_disjoint_colours_invariant;
  ]
