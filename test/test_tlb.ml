open Tpro_hw

let test_miss_insert_hit () =
  let t = Tlb.create ~capacity:4 in
  Alcotest.(check (option int)) "cold miss" None (Tlb.lookup t ~asid:1 ~vpn:10);
  Tlb.insert t ~asid:1 ~vpn:10 ~pfn:99;
  Alcotest.(check (option int)) "hit" (Some 99) (Tlb.lookup t ~asid:1 ~vpn:10)

let test_asid_isolation () =
  let t = Tlb.create ~capacity:4 in
  Tlb.insert t ~asid:1 ~vpn:10 ~pfn:99;
  Alcotest.(check (option int)) "other asid misses" None
    (Tlb.lookup t ~asid:2 ~vpn:10)

let test_global_entries () =
  let t = Tlb.create ~capacity:4 in
  Tlb.insert ~global:true t ~asid:1 ~vpn:10 ~pfn:50;
  Alcotest.(check (option int)) "global visible to any asid" (Some 50)
    (Tlb.lookup t ~asid:7 ~vpn:10)

let test_lru_replacement () =
  let t = Tlb.create ~capacity:2 in
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:1;
  Tlb.insert t ~asid:1 ~vpn:2 ~pfn:2;
  ignore (Tlb.lookup t ~asid:1 ~vpn:1);
  Tlb.insert t ~asid:1 ~vpn:3 ~pfn:3;
  Alcotest.(check (option int)) "vpn 1 retained" (Some 1)
    (Tlb.peek t ~asid:1 ~vpn:1);
  Alcotest.(check (option int)) "vpn 2 evicted" None (Tlb.peek t ~asid:1 ~vpn:2)

let test_flush_all () =
  let t = Tlb.create ~capacity:4 in
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:1;
  Tlb.insert t ~asid:2 ~vpn:2 ~pfn:2;
  Alcotest.(check int) "flush count" 2 (Tlb.flush_all t);
  Alcotest.(check int) "empty" 0 (Tlb.count t)

let test_flush_asid () =
  let t = Tlb.create ~capacity:4 in
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:1;
  Tlb.insert t ~asid:2 ~vpn:2 ~pfn:2;
  Tlb.insert ~global:true t ~asid:1 ~vpn:3 ~pfn:3;
  Alcotest.(check int) "flushed only asid 1 non-global" 1 (Tlb.flush_asid t 1);
  Alcotest.(check (option int)) "asid 2 intact" (Some 2)
    (Tlb.peek t ~asid:2 ~vpn:2);
  Alcotest.(check (option int)) "global intact" (Some 3)
    (Tlb.peek t ~asid:9 ~vpn:3)

let test_invalidate () =
  let t = Tlb.create ~capacity:4 in
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:1;
  Tlb.invalidate t ~asid:1 ~vpn:1;
  Alcotest.(check (option int)) "entry gone" None (Tlb.peek t ~asid:1 ~vpn:1)

let test_update_in_place () =
  let t = Tlb.create ~capacity:4 in
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:1;
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:42;
  Alcotest.(check int) "no duplicate" 1 (Tlb.count t);
  Alcotest.(check (option int)) "updated" (Some 42) (Tlb.peek t ~asid:1 ~vpn:1)

let test_peek_preserves_lru () =
  let t = Tlb.create ~capacity:2 in
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:1;
  Tlb.insert t ~asid:1 ~vpn:2 ~pfn:2;
  ignore (Tlb.peek t ~asid:1 ~vpn:1);
  (* vpn 1 is still LRU because peek must not refresh *)
  Tlb.insert t ~asid:1 ~vpn:3 ~pfn:3;
  Alcotest.(check (option int)) "vpn 1 evicted despite peek" None
    (Tlb.peek t ~asid:1 ~vpn:1)

let test_digest_changes () =
  let t = Tlb.create ~capacity:4 in
  let d0 = Tlb.digest t in
  Tlb.insert t ~asid:1 ~vpn:1 ~pfn:1;
  Alcotest.(check bool) "digest sensitive to contents" true (d0 <> Tlb.digest t)

(* The Sect. 5.3 partitioning property at the TLB level: inserting or
   invalidating entries under one ASID never changes what another ASID can
   translate, as long as capacity suffices.  (The *timing* side needs the
   full model; see the secmodel tests.) *)
let prop_asid_partition =
  QCheck.Test.make ~name:"ops under asid A preserve asid B translations"
    ~count:300
    QCheck.(list (pair (int_bound 15) (int_bound 7)))
    (fun ops ->
      let t = Tlb.create ~capacity:64 in
      Tlb.insert t ~asid:2 ~vpn:5 ~pfn:55;
      Tlb.insert t ~asid:2 ~vpn:6 ~pfn:66;
      List.iter
        (fun (vpn, k) ->
          if k land 1 = 0 then Tlb.insert t ~asid:1 ~vpn ~pfn:(vpn + 100)
          else Tlb.invalidate t ~asid:1 ~vpn)
        ops;
      Tlb.peek t ~asid:2 ~vpn:5 = Some 55 && Tlb.peek t ~asid:2 ~vpn:6 = Some 66)

let suite =
  [
    Alcotest.test_case "miss insert hit" `Quick test_miss_insert_hit;
    Alcotest.test_case "asid isolation" `Quick test_asid_isolation;
    Alcotest.test_case "global entries" `Quick test_global_entries;
    Alcotest.test_case "LRU replacement" `Quick test_lru_replacement;
    Alcotest.test_case "flush all" `Quick test_flush_all;
    Alcotest.test_case "flush by asid" `Quick test_flush_asid;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "update in place" `Quick test_update_in_place;
    Alcotest.test_case "peek preserves LRU" `Quick test_peek_preserves_lru;
    Alcotest.test_case "digest changes" `Quick test_digest_changes;
    QCheck_alcotest.to_alcotest prop_asid_partition;
  ]
