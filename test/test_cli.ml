(* Exercise the installed `tpro` binary end-to-end: cmdliner parse
   errors must exit 124, operational failures (oracle violation, bad
   replay file) exit 1, and a clean seeded fuzz run exits 0 after
   writing nothing.  The test runs from _build/default/test, so the
   executable lives one directory up. *)

let tpro = Filename.concat (Filename.concat ".." "bin") "tpro.exe"

let run ?stdout args =
  let stdout = match stdout with Some f -> f | None -> Filename.null in
  Sys.command
    (Filename.quote_command tpro ~stdout ~stderr:Filename.null args)

let check_exit msg expected args =
  Alcotest.(check int) msg expected (run args)

let test_parse_errors () =
  check_exit "unknown subcommand" 124 [ "frobnicate" ];
  check_exit "bad -j" 124 [ "fuzz"; "-j"; "nope" ];
  check_exit "bad --mutant" 124 [ "fuzz"; "--mutant"; "wat" ];
  check_exit "bad --trials" 124 [ "fuzz"; "--trials"; "xyz" ]

let test_clean_fuzz_run () =
  check_exit "small clean run exits 0" 0
    [ "fuzz"; "--trials"; "8"; "--seed"; "5"; "-j"; "1" ];
  check_exit "explicit fan-out exits 0" 0
    [ "fuzz"; "--trials"; "8"; "--seed"; "5"; "-j"; "2" ]

let test_mutant_run_and_replay () =
  let out = Filename.temp_file "tpro-cli-cex" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists out then Sys.remove out)
    (fun () ->
      check_exit "mutant run exits 1" 1
        [
          "fuzz"; "--trials"; "3"; "--seed"; "42"; "--mutant"; "drop-padding";
          "-j"; "1"; "--out"; out;
        ];
      Alcotest.(check bool) "counterexample file written" true
        (Sys.file_exists out);
      (match Tpro_fuzz.Scenario.load out with
      | Ok s ->
        Alcotest.(check bool) "saved scenario carries the mutant" true
          (s.Tpro_fuzz.Scenario.mutant = Tpro_fuzz.Scenario.Drop_padding)
      | Error e ->
        Alcotest.failf "counterexample unreadable: %s"
          (Tpro_fuzz.Scenario.load_error_to_string e));
      check_exit "replaying the counterexample exits 1" 1
        [ "fuzz"; "--replay"; out ])

let test_replay_missing_file () =
  check_exit "missing replay file exits 1" 1
    [ "fuzz"; "--replay"; "/nonexistent/replay-file" ]

(* A replay file that exists but does not parse is a usage error: the
   CLI must exit 124 (cmdliner's convention) naming the offending
   line, not 1 and not an uncaught exception. *)
let test_replay_malformed_file () =
  let path = Filename.temp_file "tpro-cli-bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "seed 1\ntrials nope\n";
      close_out oc;
      check_exit "malformed replay file exits 124" 124
        [ "fuzz"; "--replay"; path ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Kill-free version of CI's kill-and-resume job: a run resumed from a
   half-way checkpoint prints stdout byte-identical to an uninterrupted
   run. *)
let test_checkpoint_resume_identical () =
  let ckpt = Filename.temp_file "tpro-cli-ckpt" ".txt" in
  let ref_out = Filename.temp_file "tpro-cli-ref" ".txt" in
  let res_out = Filename.temp_file "tpro-cli-res" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ ckpt; ref_out; res_out ])
    (fun () ->
      Sys.remove ckpt;
      Alcotest.(check int) "reference run exits 0" 0
        (run ~stdout:ref_out
           [ "fuzz"; "--trials"; "24"; "--seed"; "5"; "-j"; "2" ]);
      Alcotest.(check int) "partial run exits 0" 0
        (run
           [
             "fuzz"; "--trials"; "12"; "--seed"; "5"; "-j"; "2";
             "--checkpoint"; ckpt; "--checkpoint-every"; "6";
           ]);
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ckpt);
      Alcotest.(check int) "resumed run exits 0" 0
        (run ~stdout:res_out
           [
             "fuzz"; "--trials"; "24"; "--seed"; "5"; "-j"; "2"; "--resume";
             ckpt; "--checkpoint-every"; "6";
           ]);
      Alcotest.(check string) "resumed stdout is byte-identical"
        (read_file ref_out) (read_file res_out))

(* `tpro prove` exit semantics: 0 when every lemma is proved and scope
   is acknowledged, 1 when a lemma is refuted, 2 when an out-of-scope
   registration is unacknowledged. *)
let smoke = [ "prove"; "--smoke"; "-j"; "2" ]
let ack = [ "--acknowledge"; "memory interconnect" ]

let test_prove_exit_codes () =
  check_exit "full + acknowledge exits 0" 0 (smoke @ ack);
  check_exit "unacknowledged scope exits 2" 2 smoke;
  check_exit "refuted preset exits 1" 1 (smoke @ ack @ [ "--preset"; "none" ]);
  check_exit "unknown preset exits 1" 1 (smoke @ [ "--preset"; "wat" ]);
  check_exit "bad --seeds exits 124" 124 [ "prove"; "--seeds"; "x" ]

let test_prove_json_artifact () =
  let json = Filename.temp_file "tpro-cli-prove" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists json then Sys.remove json)
    (fun () ->
      check_exit "prove --json exits 0" 0 (smoke @ ack @ [ "--json"; json ]);
      let body = read_file json in
      List.iter
        (fun needle ->
          let lh = String.length body and ln = String.length needle in
          let rec go i =
            i + ln <= lh && (String.sub body i ln = needle || go (i + 1))
          in
          Alcotest.(check bool) ("artifact mentions " ^ needle) true (go 0))
        [
          "tpro-prove/1"; "flush:l1d0"; "partition:llc";
          "kernel:padded-switch"; "exhaustive:cache"; "\"holds\": true";
        ])

(* A prove run resumed from a half-way checkpoint (only some of the
   (preset x seed) evidence tasks recorded) prints stdout byte-identical
   to an uninterrupted run. *)
let test_prove_checkpoint_resume () =
  let ckpt = Filename.temp_file "tpro-cli-pck" ".txt" in
  let ref_out = Filename.temp_file "tpro-cli-pref" ".txt" in
  let res_out = Filename.temp_file "tpro-cli-pres" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ ckpt; ref_out; res_out ])
    (fun () ->
      Sys.remove ckpt;
      let base = smoke @ ack @ [ "--seeds"; "0,1" ] in
      Alcotest.(check int) "reference prove exits 0" 0
        (run ~stdout:ref_out base);
      (* partial: only seed 0's evidence lands in the checkpoint *)
      Alcotest.(check int) "partial prove exits 0" 0
        (run
           (smoke @ ack @ [ "--seeds"; "0"; "--checkpoint"; ckpt ]));
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ckpt);
      (* the resumed full run rejects the seed-mismatched checkpoint and
         recollects — still byte-identical output *)
      Alcotest.(check int) "resumed prove exits 0" 0
        (run ~stdout:res_out (base @ [ "--resume"; ckpt ]));
      Alcotest.(check string) "resumed stdout is byte-identical"
        (read_file ref_out) (read_file res_out);
      (* resuming with matching parameters reuses every task *)
      Alcotest.(check int) "second resume exits 0" 0
        (run ~stdout:res_out (base @ [ "--resume"; ckpt ]));
      Alcotest.(check string) "fully-resumed stdout is byte-identical"
        (read_file ref_out) (read_file res_out))

(* `tpro topo` mirrors `tpro fuzz`'s exit semantics over topology
   campaigns: 0 on a clean pairwise sweep, 1 on a violation (writing a
   format-2 counterexample that replays to the same verdict), 124 on
   parse errors. *)
let test_topo_exit_codes () =
  check_exit "small clean topo run exits 0" 0
    [ "topo"; "--trials"; "6"; "--seed"; "5"; "-j"; "2" ];
  check_exit "bad --domains" 124 [ "topo"; "--domains"; "x" ];
  check_exit "bad --mutant" 124 [ "topo"; "--mutant"; "wat" ];
  check_exit "missing replay file exits 1" 1
    [ "topo"; "--replay"; "/nonexistent/topo-replay" ]

let test_topo_mutant_run_and_replay () =
  let out = Filename.temp_file "tpro-cli-topo-cex" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists out then Sys.remove out)
    (fun () ->
      check_exit "mutant topo run exits 1" 1
        [
          "topo"; "--trials"; "40"; "--seed"; "42"; "--mutant"; "skip-flush";
          "-j"; "2"; "--out"; out;
        ];
      Alcotest.(check bool) "counterexample file written" true
        (Sys.file_exists out);
      (match Tpro_fuzz.Replay.load out with
      | Ok (Tpro_fuzz.Replay.Topology t) ->
        Alcotest.(check bool) "saved topology carries the mutant" true
          (t.Tpro_fuzz.Topology.mutant = Tpro_fuzz.Scenario.Skip_flush)
      | Ok (Tpro_fuzz.Replay.Scenario _) ->
        Alcotest.fail "topo counterexample parsed as a scenario"
      | Error e ->
        Alcotest.failf "counterexample unreadable: %s"
          (Tpro_fuzz.Scenario.load_error_to_string e));
      check_exit "replaying the counterexample exits 1" 1
        [ "topo"; "--replay"; out ];
      (* the fuzz subcommand reads format-2 files too — Replay
         dispatches on the declared version *)
      check_exit "fuzz --replay reads a topology file" 1
        [ "fuzz"; "--replay"; out ])

let suite =
  [
    Alcotest.test_case "cmdliner parse errors exit 124" `Quick
      test_parse_errors;
    Alcotest.test_case "clean fuzz run exits 0" `Quick test_clean_fuzz_run;
    Alcotest.test_case "mutant run writes a replayable counterexample" `Quick
      test_mutant_run_and_replay;
    Alcotest.test_case "missing replay file exits 1" `Quick
      test_replay_missing_file;
    Alcotest.test_case "malformed replay file exits 124" `Quick
      test_replay_malformed_file;
    Alcotest.test_case "checkpoint/resume stdout is byte-identical" `Quick
      test_checkpoint_resume_identical;
    Alcotest.test_case "prove exit codes" `Quick test_prove_exit_codes;
    Alcotest.test_case "prove writes the lemma-verdict artifact" `Quick
      test_prove_json_artifact;
    Alcotest.test_case "prove checkpoint/resume stdout is byte-identical"
      `Quick test_prove_checkpoint_resume;
    Alcotest.test_case "topo exit codes" `Quick test_topo_exit_codes;
    Alcotest.test_case "topo mutant run writes a replayable counterexample"
      `Quick test_topo_mutant_run_and_replay;
  ]
