open Tpro_hw
open Tpro_kernel
open Tpro_channel
open Time_protection

(* ------------------------- Wcet ----------------------------------- *)

let cfg = Machine.default_config

let test_bounds_positive_and_ordered () =
  Alcotest.(check bool) "bus wait positive" true (Wcet.worst_bus_wait cfg > 0);
  Alcotest.(check bool) "data access dominates bus wait" true
    (Wcet.worst_data_access cfg > Wcet.worst_bus_wait cfg);
  Alcotest.(check bool) "trap dominates one access" true
    (Wcet.worst_trap cfg > Wcet.worst_data_access cfg);
  Alcotest.(check bool) "pad dominates flush" true
    (Wcet.recommended_pad cfg > Wcet.worst_flush cfg)

let test_l2_raises_bounds () =
  let with_l2 =
    { cfg with Machine.l2_geom = Some (Cache.geometry ~sets:128 ~ways:4 ()) }
  in
  Alcotest.(check bool) "L2 raises the flush bound" true
    (Wcet.worst_flush with_l2 > Wcet.worst_flush cfg);
  Alcotest.(check bool) "L2 raises the access bound" true
    (Wcet.worst_data_access with_l2 > Wcet.worst_data_access cfg)

let test_bus_modes_ordered () =
  let tdma =
    { cfg with Machine.bus_mode = Interconnect.Partitioned { slot = 64; n_domains = 4 } }
  in
  Alcotest.(check bool) "TDMA worst wait includes a frame" true
    (Wcet.worst_bus_wait tdma >= 64 * 4)

(* The paper's assumption made checkable: a kernel padded by the WCET
   analysis never overruns, whatever the domains run. *)
let prop_recommended_pad_never_overruns =
  QCheck.Test.make ~name:"recommended pad never overruns" ~count:25
    QCheck.(pair small_int small_int)
    (fun (seed, prog_seed) ->
      let max_compute = 2_000 in
      let machine_config =
        { cfg with Machine.lat = Latency.with_seed Latency.default seed }
      in
      let pad = Wcet.recommended_pad ~max_compute machine_config in
      let kernel_cfg =
        { Kernel.config_full with Kernel.deterministic_delivery = true }
      in
      let k = Kernel.create ~machine_config kernel_cfg in
      let d0 = Kernel.create_domain k ~slice:20_000 ~pad_cycles:pad () in
      let d1 = Kernel.create_domain k ~slice:20_000 ~pad_cycles:pad () in
      Kernel.map_region k d0 ~vbase:0x2000_0000 ~pages:4;
      Kernel.map_region k d1 ~vbase:0x2000_0000 ~pages:4;
      let mk ds =
        Program.random (Rng.create ds) ~len:200 ~data_base:0x2000_0000
          ~data_bytes:(4 * 4096)
      in
      ignore (Kernel.spawn k d0 (mk prog_seed));
      ignore (Kernel.spawn k d1 (mk (prog_seed + 1)));
      Kernel.run ~max_steps:50_000 k;
      not (List.exists Event.is_overrun (Kernel.events k)))

(* ------------------------- Trace ---------------------------------- *)

let traced_kernel () =
  let k = Kernel.create Kernel.config_full in
  let d0 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
  let d1 = Kernel.create_domain k ~slice:5_000 ~pad_cycles:9_000 () in
  ignore (Kernel.spawn k d0 (Array.make 400 (Program.Compute 50)));
  ignore (Kernel.spawn k d1 (Array.make 400 (Program.Compute 50)));
  ignore d0;
  ignore d1;
  Kernel.run ~max_steps:5_000 k;
  k

let test_timeline_contiguous () =
  let k = traced_kernel () in
  let segs = Trace.timeline k in
  Alcotest.(check bool) "has segments" true (List.length segs > 3);
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "no gaps or overlaps" true (a.Trace.finish = b.Trace.start);
      check rest
    | _ -> ()
  in
  check segs

let test_timeline_alternates () =
  let k = traced_kernel () in
  let rec ok = function
    | { Trace.occupant = `Domain _; _ } :: ({ Trace.occupant = `Switch _; _ } :: _ as rest)
    | { Trace.occupant = `Switch _; _ } :: ({ Trace.occupant = `Domain _; _ } :: _ as rest)
      ->
      ok rest
    | [ _ ] | [] -> true
    | _ -> false
  in
  Alcotest.(check bool) "run and switch segments alternate" true
    (ok (Trace.timeline k))

let test_utilisation_sums_below_one () =
  let k = traced_kernel () in
  let u = Trace.utilisation k in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. u in
  Alcotest.(check bool) "both domains measured" true (List.length u = 2);
  Alcotest.(check bool) "utilisation below 1 (padding takes the rest)" true
    (total > 0.1 && total < 1.0)

(* ------------------------- Protocol ------------------------------- *)

let test_decoder_nearest () =
  let scen = Kernel_text.scenario () in
  ignore scen;
  let decoder =
    (* hand-build via train on a trivially separable channel *)
    Protocol.train ~seeds:[ 0; 1 ] (Downgrader.scenario ())
      ~cfg:Presets.none
  in
  (* arrival times grow with the secret, so decoding a small output gives
     a small secret and a large output a large secret *)
  Alcotest.(check int) "small output, small symbol" 0
    (Protocol.decode decoder 0);
  Alcotest.(check int) "large output, large symbol" 7
    (Protocol.decode decoder 1_000_000)

let test_transmission_faithful_without_tp () =
  let scen = Downgrader.scenario () in
  let msg = Protocol.random_message scen ~len:12 in
  let t = Protocol.transmit scen ~cfg:Presets.none ~message:msg in
  Alcotest.(check (list int)) "message received intact" msg t.Protocol.received;
  Alcotest.(check int) "no errors" 0 t.Protocol.symbol_errors;
  Alcotest.(check bool) "bandwidth positive" true
    (t.Protocol.bandwidth_bits_per_mcycle > 1.)

let test_transmission_dies_with_tp () =
  let scen = Downgrader.scenario () in
  let msg = Protocol.random_message scen ~len:12 in
  let t = Protocol.transmit scen ~cfg:Presets.full ~message:msg in
  Alcotest.(check bool) "errors appear" true (t.Protocol.symbol_errors > 0);
  Alcotest.(check (float 0.0001)) "zero capacity" 0.0 t.Protocol.capacity_bits;
  Alcotest.(check (float 0.0001)) "zero bandwidth" 0.0
    t.Protocol.bandwidth_bits_per_mcycle

let test_alphabet_checked () =
  let scen = Downgrader.scenario () in
  Alcotest.check_raises "symbol outside alphabet"
    (Invalid_argument "Protocol.transmit: symbol outside the alphabet")
    (fun () -> ignore (Protocol.transmit scen ~cfg:Presets.none ~message:[ 99 ]))

(* ------------------------- Flush+Reload --------------------------- *)

let test_flush_reload_open_under_full_tp () =
  let cap shared cfg =
    (Attack.measure ~seeds:[ 0; 1 ] (Flush_reload.scenario ~shared ()) ~cfg ())
      .Attack.capacity_bits
  in
  Alcotest.(check bool) "sharing leaks under full TP" true
    (cap true Presets.full > 0.5);
  Alcotest.(check bool) "copies are safe even unprotected" true
    (cap false Presets.none < 0.01)

let test_clflush_instruction () =
  let k = Kernel.create Kernel.config_none in
  let d = Kernel.create_domain k ~slice:100_000 ~pad_cycles:0 () in
  Kernel.map_region k d ~vbase:0x2000_0000 ~pages:1;
  let th =
    Kernel.spawn k d
      [|
        Program.Load 0x2000_0000;
        Program.Timed_load 0x2000_0000;
        Program.Clflush 0x2000_0000;
        Program.Timed_load 0x2000_0000;
        Program.Halt;
      |]
  in
  Kernel.run k;
  match Prime_probe.latencies (Thread.observations th) with
  | [ warm; after_flush ] ->
    Alcotest.(check bool) "clflush evicts the line" true (after_flush > warm + 50)
  | _ -> Alcotest.fail "expected two latencies"

let test_share_region_same_frame () =
  let k = Kernel.create Kernel.config_none in
  let a = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  let b = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  Kernel.map_region k a ~vbase:0x2000_0000 ~pages:2;
  Kernel.share_region k ~owner:a ~guest:b ~vbase:0x2000_0000 ~pages:2
    ~guest_vbase:0x3000_0000;
  Alcotest.(check (option int)) "same physical frame"
    (Kernel.vaddr_to_paddr k a 0x2000_0040)
    (Kernel.vaddr_to_paddr k b 0x3000_0040)

let test_share_region_validation () =
  let k = Kernel.create Kernel.config_none in
  let a = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  let b = Kernel.create_domain k ~slice:1_000 ~pad_cycles:0 () in
  Alcotest.check_raises "owner must be mapped"
    (Invalid_argument "Kernel.share_region: owner region not mapped")
    (fun () ->
      Kernel.share_region k ~owner:a ~guest:b ~vbase:0x2000_0000 ~pages:1
        ~guest_vbase:0x3000_0000)

let suite =
  [
    Alcotest.test_case "wcet bounds ordered" `Quick test_bounds_positive_and_ordered;
    Alcotest.test_case "L2 raises bounds" `Quick test_l2_raises_bounds;
    Alcotest.test_case "bus modes ordered" `Quick test_bus_modes_ordered;
    QCheck_alcotest.to_alcotest prop_recommended_pad_never_overruns;
    Alcotest.test_case "timeline contiguous" `Quick test_timeline_contiguous;
    Alcotest.test_case "timeline alternates" `Quick test_timeline_alternates;
    Alcotest.test_case "utilisation" `Quick test_utilisation_sums_below_one;
    Alcotest.test_case "decoder nearest" `Quick test_decoder_nearest;
    Alcotest.test_case "faithful transmission without TP" `Slow
      test_transmission_faithful_without_tp;
    Alcotest.test_case "transmission dies with TP" `Slow
      test_transmission_dies_with_tp;
    Alcotest.test_case "alphabet checked" `Quick test_alphabet_checked;
    Alcotest.test_case "flush+reload open under full TP" `Slow
      test_flush_reload_open_under_full_tp;
    Alcotest.test_case "clflush instruction" `Quick test_clflush_instruction;
    Alcotest.test_case "share_region same frame" `Quick
      test_share_region_same_frame;
    Alcotest.test_case "share_region validation" `Quick
      test_share_region_validation;
  ]
