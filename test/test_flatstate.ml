(* Differential suite for the flat-state hardware core: the memoised
   (incremental) digests must equal the from-scratch folds after *every*
   trace step, on every machine preset, and a core-local flush must
   return every resource to the empty-state digest.  This is the test
   harness for the "a digest is a pure function of state" invariant now
   that digests are cached (see Resource.set_digest_debug). *)

open Tpro_hw

let geometry = Cache.geometry

let base_config =
  {
    Machine.default_config with
    Machine.n_frames = 256;
    l1_geom = geometry ~sets:16 ~ways:2 ~line_bits:6 ();
    llc_geom = geometry ~sets:256 ~ways:4 ~line_bits:6 ();
  }

(* Presets span the digest-relevant configuration space: optional private
   L2, optional BTB, every replacement policy, SMT sharing, and the
   memoised Partitioned interconnect. *)
let presets =
  [
    ("base", base_config);
    ( "l2",
      {
        base_config with
        Machine.l2_geom = Some (geometry ~sets:32 ~ways:4 ~line_bits:6 ());
      } );
    ("btb", { base_config with Machine.btb_entries = Some 64 });
    ( "l2+btb+fifo",
      {
        base_config with
        Machine.l2_geom = Some (geometry ~sets:32 ~ways:4 ~line_bits:6 ());
        btb_entries = Some 32;
        replacement = Cache.Fifo;
      } );
    ( "smt+pseudo-random",
      {
        base_config with
        Machine.n_cores = 2;
        smt = true;
        replacement = Cache.Pseudo_random 7;
      } );
    ( "partitioned-bus",
      {
        base_config with
        Machine.bus_mode = Interconnect.Partitioned { slot = 16; n_domains = 2 };
      } );
  ]

let translate vpn = if vpn < 256 then Some vpn else None

(* One random machine event.  The op mix deliberately hits the paths
   whose digest bookkeeping is subtle: writes (dirty bits + write-backs
   on eviction), kernel fetches, branches (saturating counters + BTB),
   virtual accesses (TLB insert/evict), line invalidation, and the
   occasional full core-local flush mid-trace. *)
let step m ~core rng =
  let span = 0x40000 in
  match Rng.int rng 10 with
  | 0 | 1 ->
    ignore
      (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:false
         (Rng.int rng span))
  | 2 | 3 ->
    ignore
      (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:true
         (Rng.int rng span))
  | 4 -> ignore (Machine.fetch_paddr m ~core ~owner:0 (Rng.int rng span))
  | 5 | 6 ->
    ignore
      (Machine.branch m ~core ~pc:(Rng.int rng 256 * 4) ~taken:(Rng.bool rng))
  | 7 ->
    ignore
      (Machine.load m ~core ~asid:(1 + Rng.int rng 3) ~domain:0 ~translate
         ~pc:(Rng.int rng 4096) (Rng.int rng span))
  | 8 ->
    ignore
      (Machine.store m ~core ~asid:(1 + Rng.int rng 3) ~domain:1 ~translate
         ~pc:(Rng.int rng 4096) (Rng.int rng span))
  | _ ->
    if Rng.int rng 8 = 0 then ignore (Machine.flush_core_local m ~core)
    else
      ignore (Machine.flush_line m ~core ~asid:1 ~translate (Rng.int rng span))

let check_digests_agree name m =
  for core = 0 to Machine.n_cores m - 1 do
    Alcotest.(check int64)
      (Printf.sprintf "%s: core %d incremental == fold" name core)
      (Machine.digest_core_fold m ~core)
      (Machine.digest_core m ~core)
  done;
  Alcotest.(check int64)
    (Printf.sprintf "%s: shared incremental == fold" name)
    (Machine.digest_shared_fold m) (Machine.digest_shared m)

(* Every preset, a full random trace, incremental == fold after every
   single step (the per-step comparison is the point of the suite: a
   missed invalidation shows up at the first step that stales state
   without invalidating the memo). *)
let test_trace_differential (name, cfg) () =
  let m = Machine.create cfg in
  check_digests_agree (name ^ " (fresh)") m;
  let rng = Rng.create 0xf1a7 in
  for i = 1 to 300 do
    step m ~core:0 rng;
    if Machine.n_cores m > 1 then step m ~core:1 rng;
    check_digests_agree (Printf.sprintf "%s step %d" name i) m
  done;
  (* per-set LLC digests (the unwinding relation's partition view reads
     these directly) *)
  let llc = Machine.llc m in
  let g = Cache.geom llc in
  for set = 0 to g.Cache.sets - 1 do
    Alcotest.(check int64)
      (Printf.sprintf "%s: LLC set %d memo == fold" name set)
      (Cache.digest_set_fold llc set)
      (Cache.digest_set llc set)
  done

(* Flushing a traced machine returns every core-private digest to the
   empty state: bit-identical to a never-used machine of the same
   configuration. *)
let test_flush_resets (name, cfg) () =
  let m = Machine.create cfg in
  let rng = Rng.create 0xbeef in
  for _ = 1 to 200 do
    step m ~core:0 rng
  done;
  let fresh = Machine.create cfg in
  for core = 0 to Machine.n_cores m - 1 do
    let (_ : int) = Machine.flush_core_local m ~core in
    Alcotest.(check int64)
      (Printf.sprintf "%s: core %d post-flush == fresh" name core)
      (Machine.digest_core fresh ~core)
      (Machine.digest_core m ~core);
    Alcotest.(check int64)
      (Printf.sprintf "%s: core %d post-flush fold agrees" name core)
      (Machine.digest_core_fold m ~core)
      (Machine.digest_core m ~core)
  done

(* O(1) counters agree with the flush's ground truth: [flush] reports
   exactly [dirty_count] write-backs, and a clean (untouched) cache
   flushes to zero write-backs with an unchanged digest. *)
let test_dirty_counter () =
  let c = Cache.create (geometry ~sets:16 ~ways:2 ~line_bits:6 ()) in
  Alcotest.(check int) "fresh cache flush reports 0" 0 (Cache.flush c);
  let rng = Rng.create 42 in
  for _ = 1 to 500 do
    ignore
      (Cache.access c ~owner:0 ~write:(Rng.bool rng) (Rng.int rng 0x10000))
  done;
  let dirty = Cache.dirty_count c in
  Alcotest.(check bool) "trace produced dirty lines" true (dirty > 0);
  Alcotest.(check int) "flush write-backs == dirty_count" dirty (Cache.flush c);
  Alcotest.(check int) "post-flush dirty_count is 0" 0 (Cache.dirty_count c);
  Alcotest.(check int) "post-flush valid_count is 0" 0 (Cache.valid_count c);
  let d0 = Cache.digest c in
  Alcotest.(check int) "clean re-flush reports 0" 0 (Cache.flush c);
  Alcotest.(check int64) "clean re-flush leaves digest unchanged" d0
    (Cache.digest c)

(* The debug re-fold mode actually detects divergence: a resource whose
   cached digest lies must raise. *)
let test_debug_mode_detects () =
  let lying =
    Resource.make ~name:"liar" ~classification:Resource.Flushable
      ~digest:(fun () -> 1L)
      ~digest_fold:(fun () -> 2L)
      ~flush:(fun () -> Resource.no_flush)
      ()
  in
  Alcotest.(check int64)
    "outside debug mode the cached value is served" 1L (Resource.digest lying);
  Alcotest.check_raises "debug mode raises Digest_divergence"
    (Resource.Digest_divergence { resource = "liar"; cached = 1L; fold = 2L })
    (fun () ->
      Resource.with_digest_debug (fun () -> ignore (Resource.digest lying)))

(* QCheck: arbitrary traces under the debug re-fold assertion — every
   registry digest read recomputes its fold and raises on divergence. *)
let prop_random_traces =
  QCheck.Test.make ~name:"random traces keep incremental == fold" ~count:30
    QCheck.(
      triple
        (int_bound (List.length presets - 1))
        (int_bound 10_000) (int_bound 150))
    (fun (p, seed, steps) ->
      let _, cfg = List.nth presets p in
      let m = Machine.create cfg in
      Resource.with_digest_debug (fun () ->
          let rng = Rng.create ((seed * 2) + 1) in
          for _ = 1 to steps do
            step m ~core:0 rng;
            ignore (Machine.digest_core m ~core:0);
            ignore (Machine.digest_shared m)
          done;
          Machine.digest_core m ~core:0 = Machine.digest_core_fold m ~core:0
          && Machine.digest_shared m = Machine.digest_shared_fold m))

(* QCheck: conflict traces aimed at one cache set per colour, forcing
   evictions and dirty write-backs — the paths where a stale per-set
   memo or a miscounted dirty line would hide. *)
let prop_eviction_writeback_colours =
  QCheck.Test.make
    ~name:"eviction/writeback/colour paths keep per-set memo == fold"
    ~count:30
    QCheck.(
      pair
        (small_list (triple (int_bound 15) (int_bound 15) bool))
        (int_bound 10_000))
    (fun (ops, seed) ->
      let m = Machine.create base_config in
      let llc = Machine.llc m in
      let g = Cache.geom llc in
      let pb = Machine.page_bits m in
      let n_colours = Machine.n_colours m in
      let page = 1 lsl pb in
      let rng = Rng.create ((seed * 2) + 1) in
      List.iter
        (fun (colour, conflict, write) ->
          (* same LLC set, different tags: colour * page selects the
             colour, conflict * (colour span) walks the tag bits *)
          let addr =
            ((colour mod n_colours) * page)
            + (conflict * n_colours * page)
            + (Rng.int rng 4 * Cache.line_size g)
          in
          ignore (Machine.touch_paddr m ~core:0 ~owner:0 ~write addr))
        ops;
      let ok = ref true in
      for set = 0 to g.Cache.sets - 1 do
        if Cache.digest_set llc set <> Cache.digest_set_fold llc set then
          ok := false
      done;
      !ok
      && Cache.digest llc = Cache.digest_fold llc
      && Machine.digest_shared m = Machine.digest_shared_fold m)

let suite =
  List.map
    (fun (name, cfg) ->
      Alcotest.test_case
        (Printf.sprintf "trace differential (%s)" name)
        `Quick
        (test_trace_differential (name, cfg)))
    presets
  @ List.map
      (fun (name, cfg) ->
        Alcotest.test_case
          (Printf.sprintf "flush resets to empty state (%s)" name)
          `Quick
          (test_flush_resets (name, cfg)))
      presets
  @ [
      Alcotest.test_case "O(1) dirty counter agrees with flush" `Quick
        test_dirty_counter;
      Alcotest.test_case "debug re-fold detects a lying digest" `Quick
        test_debug_mode_detects;
      QCheck_alcotest.to_alcotest prop_random_traces;
      QCheck_alcotest.to_alcotest prop_eviction_writeback_colours;
    ]
