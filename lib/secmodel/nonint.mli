(** Two-run noninterference checking (Sect. 5.2).

    Time protection is phrased like storage-channel freedom: fix the Lo
    domain's programs, vary only the Hi domain's secret, and require that
    everything Lo can observe — its observation trace *and* the cycle cost
    of each of its execution steps — is identical across runs.

    [two_run] executes a scenario twice with different secrets and reports
    every divergence, separated into the paper's proof cases:
    - observation divergence: the top-level noninterference statement;
    - user-step cost divergence: Case 1 (ordinary instructions);
    - trap cost divergence: Case 2a (system calls, exceptions). *)

open Tpro_kernel

type run = {
  kernel : Kernel.t;
  observers : Thread.t list;  (** the Lo threads whose view matters *)
}

type divergence_report = {
  obs : (int * Observation.divergence) option;
      (** (observer index, divergence) in observation traces *)
  user_costs : (int * int * int * int) option;
      (** (observer, step index, left cycles, right cycles) over Case-1
          steps *)
  trap_costs : (int * int * int * int) option;
      (** same over Case-2a steps *)
}

val secure : divergence_report -> bool

val view_from : run -> dom:int -> run
(** The same run seen from one domain: observers restricted to [dom]'s
    threads (in domain thread order).  [compare_runs] over two such views
    is the (vary, observer) pairwise noninterference check of an N-domain
    topology — the comparison itself is not Hi/Lo specific. *)

val execute : ?max_steps:int -> (secret:int -> run) -> int -> run
(** Build the scenario for one secret, enable cost tracing on the
    observers, and run to quiescence. *)

val compare_runs : run -> run -> divergence_report
(** Compare two already-executed runs: observation traces plus Case-1 and
    Case-2a cost traces of the observers.  [two_run] is [execute] twice
    followed by [compare_runs]; callers that need the final kernels as
    well (e.g. to compare machine digests) can execute the runs
    themselves and use this directly. *)

val two_run :
  ?max_steps:int ->
  build:(secret:int -> run) ->
  secret1:int ->
  secret2:int ->
  unit ->
  divergence_report

val check_secrets :
  ?max_steps:int ->
  build:(secret:int -> run) ->
  secrets:int list ->
  unit ->
  (int * int * divergence_report) list
(** Compare every secret against the first one; returns the insecure
    pairs (empty = noninterference holds on this sample). *)

val pp_report : Format.formatter -> divergence_report -> unit
