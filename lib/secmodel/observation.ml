open Tpro_kernel

type t = Event.obs list

type divergence = {
  position : int;
  left : Event.obs option;
  right : Event.obs option;
}

let of_thread = Thread.observations

let of_threads = List.map of_thread

let equal a b = a = b

let first_divergence a b =
  let rec go i a b =
    match (a, b) with
    | [], [] -> None
    | x :: a', y :: b' ->
      if x = y then go (i + 1) a' b'
      else Some { position = i; left = Some x; right = Some y }
    | x :: _, [] -> Some { position = i; left = Some x; right = None }
    | [], y :: _ -> Some { position = i; left = None; right = Some y }
  in
  go 0 a b

let compare_many la lb =
  if List.length la <> List.length lb then
    invalid_arg "Observation.compare_many: trace count mismatch";
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | a :: la', b :: lb' -> (
      match first_divergence a b with
      | Some d -> Some (i, d)
      | None -> go (i + 1) la' lb')
    | _, _ -> assert false
  in
  go 0 la lb

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Event.pp_obs)
    t

let pp_opt ppf = function
  | None -> Format.pp_print_string ppf "<end>"
  | Some o -> Event.pp_obs ppf o

let pp_divergence ppf d =
  Format.fprintf ppf "at #%d: %a vs %a" d.position pp_opt d.left pp_opt
    d.right
