open Tpro_hw

type classification = Resource.classification =
  | Flushable
  | Partitionable
  | Neither

type component = {
  cname : string;
  cls : classification;
  scope : bool;
  cdefence : string;
}

let of_resource r =
  {
    cname = Resource.name r;
    cls = Resource.classification r;
    scope = Resource.in_scope r;
    cdefence = Resource.defence r;
  }

(* Kernel global data is micro-architecturally just lines in the caches,
   but the paper calls it out as its own taxonomy entry because its
   defence is a *kernel* policy (a reserved colour plus deterministic
   touching on entry), not a hardware mechanism — so it has no hw-level
   resource to derive from and stays synthetic. *)
let kernel_global_data =
  {
    cname = "kernel global data";
    cls = Partitionable;
    scope = true;
    cdefence =
      "reserved kernel colour + deterministic access on every kernel entry";
  }

let of_machine m =
  let core = List.map of_resource (Machine.core_resources m ~core:0) in
  let shared_in, shared_out =
    List.partition Resource.in_scope (Machine.shared_resources m)
  in
  core
  @ List.map of_resource shared_in
  @ [ kernel_global_data ]
  @ List.map of_resource shared_out

let default_machine = lazy (Machine.create Machine.default_config)

let all ?machine () =
  of_machine
    (match machine with Some m -> m | None -> Lazy.force default_machine)

let name c = c.cname
let classify c = c.cls
let in_scope c = c.scope
let defence c = c.cdefence

let find cs cname =
  List.find_opt (fun c -> String.equal c.cname cname) cs

let aisa_satisfied ?machine () =
  List.for_all
    (fun c ->
      match c.cls with
      | Flushable | Partitionable -> true
      | Neither -> not c.scope)
    (all ?machine ())

let out_of_scope_components ?machine () =
  List.filter (fun c -> not c.scope) (all ?machine ())

let pp_component ppf c = Format.pp_print_string ppf c.cname

let pp_classification = Resource.pp_classification
