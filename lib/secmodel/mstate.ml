type component =
  | L1I
  | L1D
  | TLB
  | Branch_predictor
  | Prefetcher
  | LLC
  | Kernel_global_data
  | Interconnect

type classification = Flushable | Partitionable | Neither

let all =
  [ L1I; L1D; TLB; Branch_predictor; Prefetcher; LLC; Kernel_global_data;
    Interconnect ]

let classify = function
  | L1I | L1D | TLB | Branch_predictor | Prefetcher -> Flushable
  | LLC | Kernel_global_data -> Partitionable
  | Interconnect -> Neither

let in_scope = function
  | Interconnect -> false
  | L1I | L1D | TLB | Branch_predictor | Prefetcher | LLC
  | Kernel_global_data ->
    true

let defence = function
  | L1I | L1D | TLB | Branch_predictor | Prefetcher ->
    "flush_on_switch + pad_switch (latency of the flush is itself hidden)"
  | LLC -> "page colouring (colouring) + kernel_clone for kernel text"
  | Kernel_global_data ->
    "reserved kernel colour + deterministic access on every kernel entry"
  | Interconnect ->
    "out of scope: needs hardware bandwidth partitioning (e.g. strict TDMA)"

let aisa_satisfied () =
  List.for_all
    (fun c ->
      match classify c with
      | Flushable | Partitionable -> true
      | Neither -> not (in_scope c))
    all

let out_of_scope_components () = List.filter (fun c -> not (in_scope c)) all

let name = function
  | L1I -> "L1 I-cache"
  | L1D -> "L1 D-cache"
  | TLB -> "TLB"
  | Branch_predictor -> "branch predictor"
  | Prefetcher -> "prefetcher"
  | LLC -> "last-level cache"
  | Kernel_global_data -> "kernel global data"
  | Interconnect -> "memory interconnect"

let pp_component ppf c = Format.pp_print_string ppf (name c)

let pp_classification ppf = function
  | Flushable -> Format.pp_print_string ppf "flushable"
  | Partitionable -> Format.pp_print_string ppf "partitionable"
  | Neither -> Format.pp_print_string ppf "neither"
