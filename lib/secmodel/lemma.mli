(** Per-mechanism unwinding lemmas (after Buckley/Sison et al.).

    The follow-up proof to the paper — "Proving the Absence of
    Microarchitectural Timing Channels" — decomposes time protection
    into one unwinding lemma per defence mechanism and conjoins them
    into the top-level noninterference theorem.  A {!t} is the
    executable analogue of one such lemma: a named, per-subject
    statement carrying its verdict.  Resource lemmas are derived from
    the registry ({!Theorem}), never hand-enumerated; kernel-level
    lemmas wrap the {!Proofs} cases.

    Lemma identifiers follow {!Tpro_hw.Resource.component_id}:
    [flush:<resource>], [partition:<resource>], [scope:<resource>],
    [kernel:user-step], [kernel:trap], [kernel:padded-switch],
    [kernel:noninterference], [kernel:invariants],
    [exhaustive:<kind>]. *)

open Tpro_hw

type mechanism =
  | Flush  (** flushable resource: post-switch Lo-view equality *)
  | Partition  (** partitionable resource: Lo-slice equality *)
  | Padding  (** case 2b: padded switches end exactly on deadline *)
  | User_step  (** case 1: constant user-mode instruction cost *)
  | Trap  (** case 2a: constant trap cost *)
  | Invariants  (** partitioning invariants in every reachable state *)
  | Top_level  (** observation-trace noninterference *)
  | Scope  (** explicit out-of-scope acknowledgement obligation *)
  | Small_model  (** exhaustive per-kind small-model enumeration *)

val mechanism_label : mechanism -> string

type verdict =
  | Proved of string  (** evidence statistics *)
  | Refuted of string  (** first counter-example *)
  | Unscoped of { acknowledged : bool }
      (** no defence claimed; the composed theorem only holds if the
          out-of-scope resource was explicitly acknowledged *)

type t = {
  lid : string;  (** lemma identifier, e.g. ["flush:l1d0"] *)
  subject : string;  (** resource name, or ["kernel"] *)
  mechanism : mechanism;
  statement : string;
  verdict : verdict;
}

val proved : t -> bool
val refuted : t -> bool

val unacknowledged : t -> bool
(** [true] iff the verdict is an unacknowledged [Unscoped]. *)

val verdict_label : t -> string
val detail : t -> string

val of_check : lid:string -> subject:string -> mechanism -> Proofs.check -> t
(** Wrap a kernel-level proof obligation as a lemma: [holds] maps to
    [Proved]/[Refuted] with the check's rendered detail. *)

val pp : Format.formatter -> t -> unit
(** One fixed-width verdict-table row. *)

(** The Sect. 5.3 TLB partitioning theorem, after Syeda & Klein
    (ITP'18) — the functional sub-lemma behind the TLB instance of the
    generic flush lemma.  The paper cites a functional-correctness
    logic for an ARM-style TLB in which "page-table modifications under
    one ASID do not affect TLB consistency for any other ASID"; this
    states that theorem over our TLB model and checks it by executing
    operation sequences.  (Ported unchanged from the retired
    [Tlb_theorem] module.) *)
module Tlb_asid : sig
  type page_table = (int, int) Hashtbl.t

  type op =
    | Map of { vpn : int; pfn : int }  (** create or change a mapping *)
    | Unmap of int
    | Touch of int
        (** access a page: TLB lookup, page walk + refill on miss *)
    | Flush_asid  (** invalidate own entries *)

  val apply :
    ?invalidate_on_update:bool -> Tlb.t -> asid:int -> page_table -> op -> unit
  (** Perform one operation under [asid], maintaining the hardware
      discipline ([invalidate_on_update] defaults to [true]; pass
      [false] to model a buggy OS that skips the invalidation). *)

  val consistent : Tlb.t -> asid:int -> page_table -> bool

  val partition_preserved :
    Tlb.t ->
    actor_asid:int ->
    ops:op list ->
    actor_pt:page_table ->
    other_asid:int ->
    other_pt:page_table ->
    bool
  (** Run [ops] under [actor_asid] and report whether consistency for
      [other_asid] held after every single operation. *)

  val pp_op : Format.formatter -> op -> unit
end
