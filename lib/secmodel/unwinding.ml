open Tpro_hw
open Tpro_kernel

type divergence = { lo_step : int; component : string }

let hash_int64s = List.fold_left Rng.combine 0x11L

let obs_code = function
  | Event.Clock c -> Int64.of_int ((c lsl 2) lor 1)
  | Event.Latency l -> Int64.of_int ((l lsl 2) lor 2)
  | Event.Recv m -> Int64.of_int ((m lsl 2) lor 3)

let state_code = function
  | Thread.Ready -> 0
  | Thread.Blocked_send ep -> 4 + (ep lsl 2)
  | Thread.Blocked_recv ep -> 5 + (ep lsl 2)
  | Thread.Halted -> 2

(* Incremental observation-trace hash.

   [lo_view] hashes Lo's complete observation trace at every Lo
   instruction boundary; folding the whole trace each time is quadratic
   in trace length and dominated E7.  Observation lists are strictly
   append-only, so the memo keeps, per thread, the running boundary
   accumulator of the original left fold and extends it by folding only
   the observations recorded since the previous boundary — the returned
   value is bit-identical to the from-scratch [hash_int64s] fold. *)
type obs_memo = {
  mutable m_threads : Thread.t array;
  mutable m_counts : int array;
  mutable m_accs : int64 array;
      (** [m_accs.(i)]: the fold accumulator after thread [i]'s codes *)
  m_res : (string, int64 * int64) Hashtbl.t;
      (** resource name -> (digest when projected, projection).  The
          registry digest is incremental (every state mutation updates
          it), so an unchanged digest means an unchanged projection; the
          expensive Lo-slice walks only run when the resource actually
          changed between boundaries. *)
}

let obs_memo () =
  { m_threads = [||]; m_counts = [||]; m_accs = [||];
    m_res = Hashtbl.create 16 }

let project_memo memo r view =
  let key = Resource.digest r in
  let name = Resource.name r in
  match Hashtbl.find_opt memo.m_res name with
  | Some (k, v) when k = key -> v
  | _ ->
    let v = Resource.lo_project r view in
    Hashtbl.replace memo.m_res name (key, v);
    v

let rec take n = function
  | x :: r when n > 0 -> x :: take (n - 1) r
  | _ -> []

let fold_codes acc obs =
  List.fold_left (fun a o -> Rng.chain a (obs_code o)) acc obs

let obs_hash memo threads =
  let ths = Array.of_list threads in
  let n = Array.length ths in
  let same =
    n = Array.length memo.m_threads
    &&
    let ok = ref true in
    for i = 0 to n - 1 do
      if ths.(i) != memo.m_threads.(i) then ok := false
    done;
    !ok
  in
  if not same then begin
    (* thread set changed (first call, or a spawn): full refold *)
    memo.m_threads <- ths;
    memo.m_counts <- Array.make (max n 1) 0;
    memo.m_accs <- Array.make (max n 1) 0x11L;
    let acc = ref 0x11L in
    for i = 0 to n - 1 do
      acc := fold_codes !acc (Thread.observations ths.(i));
      memo.m_counts.(i) <- Thread.obs_count ths.(i);
      memo.m_accs.(i) <- !acc
    done
  end
  else begin
    let first = ref n in
    for i = n - 1 downto 0 do
      if Thread.obs_count ths.(i) <> memo.m_counts.(i) then first := i
    done;
    for i = !first to n - 1 do
      let th = ths.(i) in
      let count = Thread.obs_count th in
      let acc =
        if i = !first then
          (* append-only: extend this thread's own accumulator by the
             new tail (newest-first internally, so reverse the slice) *)
          fold_codes memo.m_accs.(i)
            (List.rev
               (take (count - memo.m_counts.(i)) (Thread.observations_rev th)))
        else
          (* an earlier thread grew, shifting this thread's starting
             accumulator: refold it entirely *)
          fold_codes
            (if i = 0 then 0x11L else memo.m_accs.(i - 1))
            (Thread.observations th)
      in
      memo.m_counts.(i) <- count;
      memo.m_accs.(i) <- acc
    done
  end;
  if n = 0 then 0x11L else memo.m_accs.(n - 1)

let lo_view ?memo k ~lo_dom =
  let dom = Kernel.domain k lo_dom in
  let m = Kernel.machine k in
  let core = dom.Domain.core in
  let threads =
    hash_int64s
      (List.map
         (fun th ->
           Int64.of_int
             ((th.Thread.pc lsl 16)
             lxor (state_code th.Thread.state lsl 4)
             lxor th.Thread.msg))
         (Domain.threads dom))
  in
  let observations =
    match memo with
    | Some m -> obs_hash m (Domain.threads dom)
    | None ->
      hash_int64s
        (List.concat_map
           (fun th -> List.map obs_code (Thread.observations th))
           (Domain.threads dom))
  in
  (* Registry fold: Lo's view of the microarchitecture is one component
     per registered in-scope resource, named by its obligation
     ([flush:<r>] / [partition:<r>]) and valued by the resource's own
     Lo-projection ([Resource.lo_project] — the whole digest for a
     flushable resource, the Lo-coloured slice for a partitioned one).
     Out-of-scope resources contribute nothing here; their absence is
     what the composed theorem's acknowledgement machinery makes loud.
     Comparing per-resource projections is component-wise at least as
     strict as the old chained "core-private"/"llc-partition" digests,
     and a divergence now names the lemma that broke. *)
  let view =
    {
      Resource.lo_colours = dom.Domain.colours;
      page_bits = Kernel.page_bits k;
    }
  in
  let project =
    match memo with
    | Some mm -> fun r -> project_memo mm r view
    | None -> fun r -> Resource.lo_project r view
  in
  let resources =
    List.filter_map
      (fun r ->
        match Resource.lemma_component r with
        | Some cid -> Some (cid, project r)
        | None -> None)
      (Machine.core_resources m ~core @ Machine.shared_resources m)
  in
  ("lo-threads", threads)
  :: ("lo-observations", observations)
  :: resources
  @ [ ("kernel:clock", Int64.of_int (Machine.now m ~core)) ]

(* Pacing: "Lo instruction boundary [k]" means the nominated observer
   domain has completed [k] instructions.  Only [lo_dom]'s threads are
   counted — an N-domain run's observer list spans every non-varied
   domain across all cores, and a cut placed by a *global* count lands
   at secret-dependent per-core positions (cross-core interleaving
   shifts inside the varied domain's slices), which would make even a
   leak-free topology's view sample mid-stream state at misaligned
   points.  In the legacy Hi/Lo runs every observer thread belongs to
   [lo_dom], so the filtered count is identical to the old global one. *)
let lo_count (run : Nonint.run) ~lo_dom =
  List.fold_left
    (fun acc th ->
      if th.Thread.dom = lo_dom then acc + Thread.cost_count th else acc)
    0 run.Nonint.observers

(* Advance one run until Lo has completed [target] instructions; [false]
   if the system quiesced first. *)
let advance (run : Nonint.run) ~lo_dom ~target =
  let rec go () =
    if lo_count run ~lo_dom >= target then true
    else if Kernel.step run.Nonint.kernel then go ()
    else false
  in
  go ()

let prepare build secret =
  let run = build ~secret in
  List.iter (fun th -> Thread.set_traced th true) run.Nonint.observers;
  run

(* The observer domain whose view the sweep compares: any domain of the
   run can be nominated (the pairwise topology campaigns evaluate every
   domain pair); by default it is the first observer thread's domain —
   the legacy Hi/Lo behaviour. *)
let observer_dom ~who lo_dom (run : Nonint.run) =
  match lo_dom with
  | Some d -> d
  | None -> (
    match run.Nonint.observers with
    | th :: _ -> th.Thread.dom
    | [] -> invalid_arg (who ^ ": no observers"))

let check_pair ?(max_lo_steps = 20_000) ?lo_dom ~build ~secret1 ~secret2 () =
  let a = prepare build secret1 in
  let b = prepare build secret2 in
  let lo_dom = observer_dom ~who:"Unwinding.check_pair" lo_dom a in
  let memo_a = obs_memo () and memo_b = obs_memo () in
  let rec go k =
    if k > max_lo_steps then None
    else begin
      let a_live = advance a ~lo_dom ~target:k in
      let b_live = advance b ~lo_dom ~target:k in
      if a_live <> b_live then
        Some { lo_step = k; component = "lo-progress" }
      else if not a_live then None
      else begin
        let va = lo_view ~memo:memo_a a.Nonint.kernel ~lo_dom in
        let vb = lo_view ~memo:memo_b b.Nonint.kernel ~lo_dom in
        match
          List.find_opt
            (fun ((na, da), (nb, db)) ->
              assert (na = nb);
              da <> db)
            (List.combine va vb)
        with
        | Some ((name, _), _) -> Some { lo_step = k; component = name }
        | None -> go (k + 1)
      end
    end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Full sweeps: the evidence-gathering form of [check_pair].

   [check_pair] stops at the first divergence — right for a pass/fail
   verdict, but the composed theorem needs to attribute a failure to
   *every* lemma whose component broke, and the fuzz oracle needs the
   two runs fully executed afterwards for the observation-trace
   comparison.  A sweep runs the same lockstep loop to quiescence,
   recording the first Lo step at which each view component diverged. *)

type sweep = {
  run_a : Nonint.run;
  run_b : Nonint.run;
  components : string list;
  diverged : (string * int) list;
  progress : int option;
  boundaries : int;
}

let sweep_pair ?(max_lo_steps = 20_000) ?max_kernel_steps ?lo_dom ~build
    ~secret1 ~secret2 () =
  let a = prepare build secret1 in
  let b = prepare build secret2 in
  let lo_dom = observer_dom ~who:"Unwinding.sweep_pair" lo_dom a in
  let memo_a = obs_memo () and memo_b = obs_memo () in
  let budget_a = ref (Option.value max_kernel_steps ~default:max_int) in
  let budget_b = ref (Option.value max_kernel_steps ~default:max_int) in
  (* like [advance], but bounded by a per-run kernel-step budget so the
     fuzz oracle can cap runaway scenarios *)
  let advance_b run budget ~target =
    let rec go () =
      if lo_count run ~lo_dom >= target then true
      else if !budget > 0 && Kernel.step run.Nonint.kernel then begin
        decr budget;
        go ()
      end
      else false
    in
    go ()
  in
  let components = ref [] in
  let seen = Hashtbl.create 16 in
  let diverged = ref [] in
  let progress = ref None in
  let boundaries = ref 0 in
  let rec go k =
    if k > max_lo_steps then ()
    else begin
      let a_live = advance_b a budget_a ~target:k in
      let b_live = advance_b b budget_b ~target:k in
      if a_live <> b_live then progress := Some k
      else if a_live then begin
        incr boundaries;
        let va = lo_view ~memo:memo_a a.Nonint.kernel ~lo_dom in
        let vb = lo_view ~memo:memo_b b.Nonint.kernel ~lo_dom in
        if !components = [] then components := List.map fst va;
        List.iter2
          (fun (na, da) (nb, db) ->
            assert (na = nb);
            if da <> db && not (Hashtbl.mem seen na) then begin
              Hashtbl.add seen na ();
              diverged := (na, k) :: !diverged
            end)
          va vb;
        go (k + 1)
      end
    end
  in
  go 1;
  {
    run_a = a;
    run_b = b;
    components = !components;
    diverged = List.rev !diverged;
    progress = !progress;
    boundaries = !boundaries;
  }

(* The first divergence in (Lo step, view order) — what [check_pair]
   would have reported.  [diverged] is recorded in discovery order
   (step-major, then view order within a step), so its head is exactly
   that; a progress divergence can only be last, because the sweep stops
   there. *)
let first_divergence ~diverged ~progress =
  match diverged with
  | (component, lo_step) :: _ -> Some { lo_step; component }
  | [] -> (
    match progress with
    | Some k -> Some { lo_step = k; component = "lo-progress" }
    | None -> None)

let sweep_divergence sw =
  first_divergence ~diverged:sw.diverged ~progress:sw.progress

(* ------------------------------------------------------------------ *)
(* Proof-obligation rendering, shared by [check] (which probes pairs
   itself) and [Theorem] (which replays recorded sweep evidence) — one
   formatter, so the two paths are byte-identical. *)

let unwinding_name = "unwinding"

let unwinding_description =
  "Lo's complete state view is preserved at every Lo instruction \
   boundary (state-level unwinding relation)"

let describe_divergence ~secret1 ~secret2 d =
  Printf.sprintf "secrets (%d,%d): %s differs at Lo step %d" secret1 secret2
    d.component d.lo_step

let no_secrets_check =
  {
    Proofs.name = unwinding_name;
    description = unwinding_description;
    holds = true;
    detail = Proofs.Stats "no secrets sampled";
  }

let summarise ~n_pairs failures =
  match failures with
  | [] ->
    {
      Proofs.name = unwinding_name;
      description = unwinding_description;
      holds = true;
      detail =
        Proofs.Stats
          (Printf.sprintf "%d secret pairs, Lo-equivalence preserved stepwise"
             n_pairs);
    }
  | d :: _ ->
    {
      Proofs.name = unwinding_name;
      description = unwinding_description;
      holds = false;
      detail =
        Proofs.Counter_example
          (Printf.sprintf "%d/%d pairs broke the relation; first: %s"
             (List.length failures) n_pairs d);
    }

let check ?max_lo_steps ~build ~secrets () =
  match secrets with
  | [] -> no_secrets_check
  | base :: rest ->
    let failures =
      List.filter_map
        (fun s ->
          Option.map
            (describe_divergence ~secret1:base ~secret2:s)
            (check_pair ?max_lo_steps ~build ~secret1:base ~secret2:s ()))
        rest
    in
    summarise ~n_pairs:(List.length rest) failures

let check_of_pairs ~secrets pairs =
  match secrets with
  | [] -> no_secrets_check
  | _ ->
    let failures =
      List.filter_map
        (fun ((s1, s2), d) ->
          Option.map (describe_divergence ~secret1:s1 ~secret2:s2) d)
        pairs
    in
    summarise ~n_pairs:(List.length pairs) failures
