open Tpro_hw
open Tpro_kernel

type divergence = { lo_step : int; component : string }

let hash_int64s = List.fold_left Rng.combine 0x11L

let obs_code = function
  | Event.Clock c -> Int64.of_int ((c lsl 2) lor 1)
  | Event.Latency l -> Int64.of_int ((l lsl 2) lor 2)
  | Event.Recv m -> Int64.of_int ((m lsl 2) lor 3)

let state_code = function
  | Thread.Ready -> 0
  | Thread.Blocked_send ep -> 4 + (ep lsl 2)
  | Thread.Blocked_recv ep -> 5 + (ep lsl 2)
  | Thread.Halted -> 2

let lo_view k ~lo_dom =
  let dom = Kernel.domain k lo_dom in
  let m = Kernel.machine k in
  let core = dom.Domain.core in
  let threads =
    hash_int64s
      (List.map
         (fun th ->
           Int64.of_int
             ((th.Thread.pc lsl 16)
             lxor (state_code th.Thread.state lsl 4)
             lxor th.Thread.msg))
         (Domain.threads dom))
  in
  let observations =
    hash_int64s
      (List.concat_map
         (fun th -> List.map obs_code (Thread.observations th))
         (Domain.threads dom))
  in
  let llc = Machine.llc m in
  let geom = Cache.geom llc in
  let page_bits = Kernel.page_bits k in
  let partition = ref 0x22L in
  for set = 0 to geom.Cache.sets - 1 do
    if List.mem (Cache.colour_of_set geom ~page_bits set) dom.Domain.colours
    then partition := Rng.combine !partition (Cache.digest_set llc set)
  done;
  [
    ("lo-threads", threads);
    ("lo-observations", observations);
    ("llc-partition", !partition);
    ("core-private", Machine.digest_core m ~core);
    ("clock", Int64.of_int (Machine.now m ~core));
  ]

let lo_count (run : Nonint.run) =
  List.fold_left
    (fun acc th -> acc + List.length (Thread.cost_trace th))
    0 run.Nonint.observers

(* Advance one run until Lo has completed [target] instructions; [false]
   if the system quiesced first. *)
let advance (run : Nonint.run) ~target =
  let rec go () =
    if lo_count run >= target then true
    else if Kernel.step run.Nonint.kernel then go ()
    else false
  in
  go ()

let prepare build secret =
  let run = build ~secret in
  List.iter (fun th -> Thread.set_traced th true) run.Nonint.observers;
  run

let check_pair ?(max_lo_steps = 20_000) ~build ~secret1 ~secret2 () =
  let a = prepare build secret1 in
  let b = prepare build secret2 in
  let lo_dom =
    match a.Nonint.observers with
    | th :: _ -> th.Thread.dom
    | [] -> invalid_arg "Unwinding.check_pair: no observers"
  in
  let rec go k =
    if k > max_lo_steps then None
    else begin
      let a_live = advance a ~target:k in
      let b_live = advance b ~target:k in
      if a_live <> b_live then
        Some { lo_step = k; component = "lo-progress" }
      else if not a_live then None
      else begin
        let va = lo_view a.Nonint.kernel ~lo_dom in
        let vb = lo_view b.Nonint.kernel ~lo_dom in
        match
          List.find_opt
            (fun ((na, da), (nb, db)) ->
              assert (na = nb);
              da <> db)
            (List.combine va vb)
        with
        | Some ((name, _), _) -> Some { lo_step = k; component = name }
        | None -> go (k + 1)
      end
    end
  in
  go 1

let check ?max_lo_steps ~build ~secrets () =
  let name = "unwinding" in
  let description =
    "Lo's complete state view is preserved at every Lo instruction \
     boundary (state-level unwinding relation)"
  in
  match secrets with
  | [] ->
    { Proofs.name; description; holds = true; detail = "no secrets sampled" }
  | base :: rest -> (
    let failures =
      List.filter_map
        (fun s ->
          match check_pair ?max_lo_steps ~build ~secret1:base ~secret2:s () with
          | Some d ->
            Some
              (Printf.sprintf "secrets (%d,%d): %s differs at Lo step %d"
                 base s d.component d.lo_step)
          | None -> None)
        rest
    in
    match failures with
    | [] ->
      {
        Proofs.name;
        description;
        holds = true;
        detail =
          Printf.sprintf "%d secret pairs, Lo-equivalence preserved stepwise"
            (List.length rest);
      }
    | d :: _ ->
      {
        Proofs.name;
        description;
        holds = false;
        detail =
          Printf.sprintf "%d/%d pairs broke the relation; first: %s"
            (List.length failures) (List.length rest) d;
      })
