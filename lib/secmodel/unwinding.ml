open Tpro_hw
open Tpro_kernel

type divergence = { lo_step : int; component : string }

let hash_int64s = List.fold_left Rng.combine 0x11L

let obs_code = function
  | Event.Clock c -> Int64.of_int ((c lsl 2) lor 1)
  | Event.Latency l -> Int64.of_int ((l lsl 2) lor 2)
  | Event.Recv m -> Int64.of_int ((m lsl 2) lor 3)

let state_code = function
  | Thread.Ready -> 0
  | Thread.Blocked_send ep -> 4 + (ep lsl 2)
  | Thread.Blocked_recv ep -> 5 + (ep lsl 2)
  | Thread.Halted -> 2

(* Incremental observation-trace hash.

   [lo_view] hashes Lo's complete observation trace at every Lo
   instruction boundary; folding the whole trace each time is quadratic
   in trace length and dominated E7.  Observation lists are strictly
   append-only, so the memo keeps, per thread, the running boundary
   accumulator of the original left fold and extends it by folding only
   the observations recorded since the previous boundary — the returned
   value is bit-identical to the from-scratch [hash_int64s] fold. *)
type obs_memo = {
  mutable m_threads : Thread.t array;
  mutable m_counts : int array;
  mutable m_accs : int64 array;
      (** [m_accs.(i)]: the fold accumulator after thread [i]'s codes *)
}

let obs_memo () = { m_threads = [||]; m_counts = [||]; m_accs = [||] }

let rec take n = function
  | x :: r when n > 0 -> x :: take (n - 1) r
  | _ -> []

let fold_codes acc obs =
  List.fold_left (fun a o -> Rng.chain a (obs_code o)) acc obs

let obs_hash memo threads =
  let ths = Array.of_list threads in
  let n = Array.length ths in
  let same =
    n = Array.length memo.m_threads
    &&
    let ok = ref true in
    for i = 0 to n - 1 do
      if ths.(i) != memo.m_threads.(i) then ok := false
    done;
    !ok
  in
  if not same then begin
    (* thread set changed (first call, or a spawn): full refold *)
    memo.m_threads <- ths;
    memo.m_counts <- Array.make (max n 1) 0;
    memo.m_accs <- Array.make (max n 1) 0x11L;
    let acc = ref 0x11L in
    for i = 0 to n - 1 do
      acc := fold_codes !acc (Thread.observations ths.(i));
      memo.m_counts.(i) <- Thread.obs_count ths.(i);
      memo.m_accs.(i) <- !acc
    done
  end
  else begin
    let first = ref n in
    for i = n - 1 downto 0 do
      if Thread.obs_count ths.(i) <> memo.m_counts.(i) then first := i
    done;
    for i = !first to n - 1 do
      let th = ths.(i) in
      let count = Thread.obs_count th in
      let acc =
        if i = !first then
          (* append-only: extend this thread's own accumulator by the
             new tail (newest-first internally, so reverse the slice) *)
          fold_codes memo.m_accs.(i)
            (List.rev
               (take (count - memo.m_counts.(i)) (Thread.observations_rev th)))
        else
          (* an earlier thread grew, shifting this thread's starting
             accumulator: refold it entirely *)
          fold_codes
            (if i = 0 then 0x11L else memo.m_accs.(i - 1))
            (Thread.observations th)
      in
      memo.m_counts.(i) <- count;
      memo.m_accs.(i) <- acc
    done
  end;
  if n = 0 then 0x11L else memo.m_accs.(n - 1)

let lo_view ?memo k ~lo_dom =
  let dom = Kernel.domain k lo_dom in
  let m = Kernel.machine k in
  let core = dom.Domain.core in
  let threads =
    hash_int64s
      (List.map
         (fun th ->
           Int64.of_int
             ((th.Thread.pc lsl 16)
             lxor (state_code th.Thread.state lsl 4)
             lxor th.Thread.msg))
         (Domain.threads dom))
  in
  let observations =
    match memo with
    | Some m -> obs_hash m (Domain.threads dom)
    | None ->
      hash_int64s
        (List.concat_map
           (fun th -> List.map obs_code (Thread.observations th))
           (Domain.threads dom))
  in
  let llc = Machine.llc m in
  let geom = Cache.geom llc in
  let page_bits = Kernel.page_bits k in
  (* This runs once per Lo instruction boundary, over every LLC set —
     the hottest digest loop in the unwinding check.  Hoist the colour
     membership test into a bool table; [Cache.digest_set] itself is
     served from the cache's per-set memo.  Fold order over the selected
     sets is unchanged, so the view digest is bit-identical. *)
  let owned = Array.make (max (Machine.n_colours m) 1) false in
  List.iter
    (fun c -> if c < Array.length owned then owned.(c) <- true)
    dom.Domain.colours;
  let partition = ref 0x22L in
  for set = 0 to geom.Cache.sets - 1 do
    if owned.(Cache.colour_of_set geom ~page_bits set) then
      partition := Rng.chain !partition (Cache.digest_set llc set)
  done;
  [
    ("lo-threads", threads);
    ("lo-observations", observations);
    ("llc-partition", !partition);
    ("core-private", Machine.digest_core m ~core);
    ("clock", Int64.of_int (Machine.now m ~core));
  ]

let lo_count (run : Nonint.run) =
  List.fold_left
    (fun acc th -> acc + Thread.cost_count th)
    0 run.Nonint.observers

(* Advance one run until Lo has completed [target] instructions; [false]
   if the system quiesced first. *)
let advance (run : Nonint.run) ~target =
  let rec go () =
    if lo_count run >= target then true
    else if Kernel.step run.Nonint.kernel then go ()
    else false
  in
  go ()

let prepare build secret =
  let run = build ~secret in
  List.iter (fun th -> Thread.set_traced th true) run.Nonint.observers;
  run

let check_pair ?(max_lo_steps = 20_000) ~build ~secret1 ~secret2 () =
  let a = prepare build secret1 in
  let b = prepare build secret2 in
  let lo_dom =
    match a.Nonint.observers with
    | th :: _ -> th.Thread.dom
    | [] -> invalid_arg "Unwinding.check_pair: no observers"
  in
  let memo_a = obs_memo () and memo_b = obs_memo () in
  let rec go k =
    if k > max_lo_steps then None
    else begin
      let a_live = advance a ~target:k in
      let b_live = advance b ~target:k in
      if a_live <> b_live then
        Some { lo_step = k; component = "lo-progress" }
      else if not a_live then None
      else begin
        let va = lo_view ~memo:memo_a a.Nonint.kernel ~lo_dom in
        let vb = lo_view ~memo:memo_b b.Nonint.kernel ~lo_dom in
        match
          List.find_opt
            (fun ((na, da), (nb, db)) ->
              assert (na = nb);
              da <> db)
            (List.combine va vb)
        with
        | Some ((name, _), _) -> Some { lo_step = k; component = name }
        | None -> go (k + 1)
      end
    end
  in
  go 1

let check ?max_lo_steps ~build ~secrets () =
  let name = "unwinding" in
  let description =
    "Lo's complete state view is preserved at every Lo instruction \
     boundary (state-level unwinding relation)"
  in
  match secrets with
  | [] ->
    { Proofs.name; description; holds = true; detail = "no secrets sampled" }
  | base :: rest -> (
    let failures =
      List.filter_map
        (fun s ->
          match check_pair ?max_lo_steps ~build ~secret1:base ~secret2:s () with
          | Some d ->
            Some
              (Printf.sprintf "secrets (%d,%d): %s differs at Lo step %d"
                 base s d.component d.lo_step)
          | None -> None)
        rest
    in
    match failures with
    | [] ->
      {
        Proofs.name;
        description;
        holds = true;
        detail =
          Printf.sprintf "%d secret pairs, Lo-equivalence preserved stepwise"
            (List.length rest);
      }
    | d :: _ ->
      {
        Proofs.name;
        description;
        holds = false;
        detail =
          Printf.sprintf "%d/%d pairs broke the relation; first: %s"
            (List.length failures) (List.length rest) d;
      })
