open Tpro_kernel

type universe = {
  hi_len : int;
  hi_alphabet : Program.instr list;
  seeds : int list;
}

let hi_buf = 0x4000_0000

let default_universe =
  {
    hi_len = 3;
    hi_alphabet =
      [
        Program.Load hi_buf;
        Program.Load (hi_buf + 64);
        Program.Load (hi_buf + 4096);
        Program.Store hi_buf;
        Program.Store (hi_buf + 128);
        Program.Compute 7;
        Program.Syscall Program.Sys_null;
      ];
    seeds = [ 0; 1 ];
  }

let enumerate u =
  let alphabet = Array.of_list u.hi_alphabet in
  let n = Array.length alphabet in
  let rec build len =
    if len = 0 then [ [] ]
    else
      let shorter = build (len - 1) in
      List.concat_map
        (fun tail -> List.init n (fun i -> alphabet.(i) :: tail))
        shorter
  in
  List.map
    (fun instrs -> Array.append (Array.of_list instrs) [| Program.Halt |])
    (build u.hi_len)

let universe_size u =
  let n = List.length u.hi_alphabet in
  let rec pow acc k = if k = 0 then acc else pow (acc * n) (k - 1) in
  pow 1 u.hi_len

let baseline u =
  Array.append (Array.make u.hi_len (Program.Compute 7)) [| Program.Halt |]

type result = {
  programs : int;
  executions : int;
  violations : int;
  first_violation : string option;
}

let observation_of run =
  List.map
    (fun th -> (Observation.of_thread th, Thread.cost_trace th))
    run.Nonint.observers

let check ~build u =
  let programs = enumerate u in
  let violations = ref 0 in
  let executions = ref 0 in
  let first = ref None in
  List.iter
    (fun seed ->
      let base_run = Nonint.execute (fun ~secret:_ -> build ~hi_prog:(baseline u) ~seed) 0 in
      let base_view = observation_of base_run in
      List.iter
        (fun prog ->
          incr executions;
          let run = Nonint.execute (fun ~secret:_ -> build ~hi_prog:prog ~seed) 0 in
          if observation_of run <> base_view then begin
            incr violations;
            if !first = None then
              first :=
                Some
                  (Format.asprintf "seed %d, Hi program: @[%a@]" seed
                     Program.pp prog)
          end)
        programs)
    u.seeds;
  {
    programs = List.length programs;
    executions = !executions;
    violations = !violations;
    first_violation = !first;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%d programs x %d executions: %d observation-divergent" r.programs
    r.executions r.violations;
  match r.first_violation with
  | Some v -> Format.fprintf ppf "; first: %s" v
  | None -> ()
