open Tpro_kernel

type universe = {
  hi_len : int;
  hi_alphabet : Program.instr list;
  seeds : int list;
}

let hi_buf = 0x4000_0000

let default_universe =
  {
    hi_len = 3;
    hi_alphabet =
      [
        Program.Load hi_buf;
        Program.Load (hi_buf + 64);
        Program.Load (hi_buf + 4096);
        Program.Store hi_buf;
        Program.Store (hi_buf + 128);
        Program.Compute 7;
        Program.Syscall Program.Sys_null;
      ];
    seeds = [ 0; 1 ];
  }

let enumerate u =
  let alphabet = Array.of_list u.hi_alphabet in
  let n = Array.length alphabet in
  let rec build len =
    if len = 0 then [ [] ]
    else
      let shorter = build (len - 1) in
      List.concat_map
        (fun tail -> List.init n (fun i -> alphabet.(i) :: tail))
        shorter
  in
  List.map
    (fun instrs -> Array.append (Array.of_list instrs) [| Program.Halt |])
    (build u.hi_len)

let universe_size u =
  let n = List.length u.hi_alphabet in
  let rec pow acc k = if k = 0 then acc else pow (acc * n) (k - 1) in
  pow 1 u.hi_len

let baseline u =
  Array.append (Array.make u.hi_len (Program.Compute 7)) [| Program.Halt |]

type result = {
  programs : int;
  executions : int;
  violations : int;
  first_violation : string option;
}

let observation_of run =
  List.map
    (fun th -> (Observation.of_thread th, Thread.cost_trace th))
    run.Nonint.observers

(* Core of the sweep, parameterised over the map used for the
   (seed x program) grid.  The baseline views are computed up front (one
   per seed, cheap), then every execution of the grid is independent —
   pure fan-out.  Results are folded in grid order, so the violation
   count and the *first* violation are identical whichever map runs the
   grid. *)
let check_with ~map ~build u =
  let programs = enumerate u in
  let grid =
    List.concat_map
      (fun seed ->
        let base_run =
          Nonint.execute (fun ~secret:_ -> build ~hi_prog:(baseline u) ~seed) 0
        in
        let base_view = observation_of base_run in
        List.map (fun prog -> (seed, base_view, prog)) programs)
      u.seeds
  in
  let divergent =
    map
      (fun (seed, base_view, prog) ->
        let run =
          Nonint.execute (fun ~secret:_ -> build ~hi_prog:prog ~seed) 0
        in
        if observation_of run <> base_view then Some (seed, prog) else None)
      grid
  in
  let violations = ref 0 in
  let first = ref None in
  List.iter
    (function
      | None -> ()
      | Some (seed, prog) ->
        incr violations;
        if !first = None then
          first :=
            Some
              (Format.asprintf "seed %d, Hi program: @[%a@]" seed Program.pp
                 prog))
    divergent;
  {
    programs = List.length programs;
    executions = List.length grid;
    violations = !violations;
    first_violation = !first;
  }

let check ~build u = check_with ~map:List.map ~build u

let check_par ?pool ?domains ~build u =
  let run p =
    check_with
      ~map:(Tpro_engine.Pool.map_auto ~label:"exhaustive-program" p)
      ~build u
  in
  match pool with
  | Some p -> run p
  | None -> Tpro_engine.Pool.with_pool ?domains run

let pp_result ppf r =
  Format.fprintf ppf
    "%d programs x %d executions: %d observation-divergent" r.programs
    r.executions r.violations;
  match r.first_violation with
  | Some v -> Format.fprintf ppf "; first: %s" v
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Per-resource-kind universes.

   One global universe can only ever exercise the structures its
   alphabet happens to touch; deriving the adversary alphabet from the
   *kind* of each registered resource makes the ∀ genuinely exhaustive
   per kind: loads at line/page granularity for caches, mapped-page
   churn for TLBs, biased branches for predictors, strided loads for
   prefetchers.  The small-program scenario maps two Hi pages, so every
   address stays within [hi_buf, hi_buf + 2 pages). *)

let universe_for_kind ?(hi_buf = hi_buf) kind =
  match (kind : Tpro_hw.Resource.kind) with
  | Tpro_hw.Resource.Cache_kind ->
    Some
      {
        hi_len = 2;
        hi_alphabet =
          [
            Program.Load hi_buf;
            Program.Load (hi_buf + 64);
            Program.Load (hi_buf + 4096);
            Program.Store hi_buf;
            Program.Compute 7;
          ];
        seeds = [ 0; 1 ];
      }
  | Tpro_hw.Resource.Tlb_kind ->
    Some
      {
        hi_len = 2;
        hi_alphabet =
          [
            Program.Load hi_buf;
            Program.Load (hi_buf + 4096);
            Program.Syscall Program.Sys_null;
            Program.Compute 7;
          ];
        seeds = [ 0; 1 ];
      }
  | Tpro_hw.Resource.Predictor_kind ->
    Some
      {
        hi_len = 2;
        hi_alphabet =
          [
            Program.Branch { tag = 0; taken = true };
            Program.Branch { tag = 0; taken = false };
            Program.Branch { tag = 1; taken = true };
            Program.Compute 7;
          ];
        seeds = [ 0; 1 ];
      }
  | Tpro_hw.Resource.Prefetcher_kind ->
    Some
      {
        hi_len = 3;
        hi_alphabet =
          [
            Program.Load hi_buf;
            Program.Load (hi_buf + 64);
            Program.Load (hi_buf + 128);
            Program.Compute 7;
          ];
        seeds = [ 0; 1 ];
      }
  | Tpro_hw.Resource.Interconnect_kind | Tpro_hw.Resource.Other_kind _ -> None

type kind_universe = {
  ku_label : string;
  ku_resources : string list;
  ku_universe : universe;
}

let kind_universes ?hi_buf ~machine () =
  let resources =
    List.concat
      [
        Tpro_hw.Machine.core_resources machine ~core:0;
        Tpro_hw.Machine.shared_resources machine;
      ]
  in
  (* group by kind, first-seen order, keeping each kind's resource
     names in registry order *)
  let seen = ref [] in
  List.iter
    (fun r ->
      let kind = Tpro_hw.Resource.kind r in
      let label = Tpro_hw.Resource.kind_label kind in
      match List.assoc_opt label !seen with
      | Some (k, names) ->
        seen :=
          List.map
            (fun (l, v) ->
              if String.equal l label then
                (l, (k, Tpro_hw.Resource.name r :: names))
              else (l, v))
            !seen
      | None ->
        seen := !seen @ [ (label, (kind, [ Tpro_hw.Resource.name r ])) ])
    resources;
  List.filter_map
    (fun (label, (kind, names)) ->
      match universe_for_kind ?hi_buf kind with
      | Some u ->
        Some
          {
            ku_label = label;
            ku_resources = List.rev names;
            ku_universe = u;
          }
      | None -> None)
    !seen
