(** State-level unwinding (after Murray et al., CPP 2012).

    The paper proposes phrasing time protection "akin to storage-channel
    freedom via a suitable noninterference property"; the workhorse of
    such proofs is an *unwinding relation*: if two system states are
    Lo-equivalent, they remain Lo-equivalent after every step.  This
    module checks the relation along paired executions: the two runs
    (differing only in Hi's secret) are advanced in lockstep to each
    successive Lo instruction boundary, and at every boundary *Lo's
    entire view of the machine state* — not merely its observations — is
    compared:

    - Lo's thread states (program counters, run states, messages);
    - Lo's observation trace so far;
    - the contents of every LLC set in Lo's cache partition;
    - all core-private micro-architectural state (valid at a Lo boundary,
      where Lo is current on the core);
    - the core's cycle counter.

    This is strictly stronger than comparing final observations: a
    divergence is caught at the first *state* difference, even if no
    observation has (yet) revealed it, and the report names the state
    component that broke. *)

open Tpro_kernel

type divergence = {
  lo_step : int;        (** Lo instruction boundary index *)
  component : string;   (** which part of Lo's view differs *)
}

type obs_memo
(** Incremental accumulator for the observation-trace component of the
    view.  Observation lists are append-only, so a memo carried across
    successive boundaries folds only the newly recorded observations —
    the value stays bit-identical to the from-scratch fold. *)

val obs_memo : unit -> obs_memo
(** A fresh memo; use one per run. *)

val lo_view : ?memo:obs_memo -> Kernel.t -> lo_dom:int -> (string * int64) list
(** Digest of each component of Lo's view of the current state.
    Without [memo] the observation trace is re-folded from scratch. *)

val check_pair :
  ?max_lo_steps:int ->
  build:(secret:int -> Nonint.run) ->
  secret1:int ->
  secret2:int ->
  unit ->
  divergence option
(** Lockstep comparison; [None] means the unwinding relation held at
    every Lo boundary reached by both runs. *)

val check :
  ?max_lo_steps:int ->
  build:(secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  Proofs.check
(** All secrets against the first, as a proof obligation. *)
