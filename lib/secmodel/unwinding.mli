(** State-level unwinding (after Murray et al., CPP 2012).

    The paper proposes phrasing time protection "akin to storage-channel
    freedom via a suitable noninterference property"; the workhorse of
    such proofs is an *unwinding relation*: if two system states are
    Lo-equivalent, they remain Lo-equivalent after every step.  This
    module checks the relation along paired executions: the two runs
    (differing only in Hi's secret) are advanced in lockstep to each
    successive Lo instruction boundary, and at every boundary *Lo's
    entire view of the machine state* — not merely its observations — is
    compared:

    - Lo's thread states (program counters, run states, messages);
    - Lo's observation trace so far;
    - one component per in-scope resource in the machine's registry —
      the resource's {!Tpro_hw.Resource.lo_project} under its obligation
      ([flush:<name>] for flushables, [partition:<name>] for
      partitionables; out-of-scope resources are excluded and surface
      through the theorem's acknowledgement machinery instead);
    - the core's cycle counter ([kernel:clock]).

    This is strictly stronger than comparing final observations: a
    divergence is caught at the first *state* difference, even if no
    observation has (yet) revealed it, and the report names the
    per-resource lemma that broke.  Because the view is a registry fold,
    a newly registered resource is covered with zero edits here. *)

open Tpro_kernel

type divergence = {
  lo_step : int;        (** Lo instruction boundary index *)
  component : string;   (** which part of Lo's view differs *)
}

type obs_memo
(** Incremental accumulator for the observation-trace component of the
    view.  Observation lists are append-only, so a memo carried across
    successive boundaries folds only the newly recorded observations —
    the value stays bit-identical to the from-scratch fold. *)

val obs_memo : unit -> obs_memo
(** A fresh memo; use one per run. *)

val lo_view : ?memo:obs_memo -> Kernel.t -> lo_dom:int -> (string * int64) list
(** Digest of each component of Lo's view of the current state.
    Without [memo] the observation trace is re-folded from scratch. *)

val check_pair :
  ?max_lo_steps:int ->
  ?lo_dom:int ->
  build:(secret:int -> Nonint.run) ->
  secret1:int ->
  secret2:int ->
  unit ->
  divergence option
(** Lockstep comparison; [None] means the unwinding relation held at
    every Lo boundary reached by both runs.  [lo_dom] nominates the
    observer domain whose view is compared — any domain of the run, so
    the same machinery evaluates every domain pair of an N-domain
    topology; the default (the first observer thread's domain) is the
    legacy Hi/Lo behaviour. *)

type sweep = {
  run_a : Nonint.run;
  run_b : Nonint.run;
  components : string list;
      (** view component names in view order (empty if the runs quiesced
          before the first Lo boundary) *)
  diverged : (string * int) list;
      (** for each component that ever diverged, the first Lo step at
          which it did — in discovery order (step-major, then view
          order), so the head is what {!check_pair} would report *)
  progress : int option;
      (** Lo step at which one run quiesced while the other continued *)
  boundaries : int;  (** Lo boundaries at which the view was compared *)
}
(** Evidence from a full lockstep sweep: unlike {!check_pair} it does
    not stop at the first divergence, so a failure can be attributed to
    every per-resource lemma that broke, and both runs are fully
    executed afterwards (the fuzz oracle compares their observation
    traces). *)

val sweep_pair :
  ?max_lo_steps:int ->
  ?max_kernel_steps:int ->
  ?lo_dom:int ->
  build:(secret:int -> Nonint.run) ->
  secret1:int ->
  secret2:int ->
  unit ->
  sweep
(** [max_kernel_steps] bounds each run's total kernel steps (the fuzz
    oracle's runaway cap); default unbounded.  [lo_dom] as in
    {!check_pair}. *)

val first_divergence :
  diverged:(string * int) list -> progress:int option -> divergence option
(** The (step, view-order) first divergence — [check_pair]'s verdict
    recovered from sweep evidence; a progress divergence reports
    component ["lo-progress"]. *)

val sweep_divergence : sweep -> divergence option

val check :
  ?max_lo_steps:int ->
  build:(secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  Proofs.check
(** All secrets against the first, as a proof obligation. *)

val check_of_pairs :
  secrets:int list -> ((int * int) * divergence option) list -> Proofs.check
(** The same proof obligation reconstructed from recorded evidence (one
    optional first divergence per secret pair, in pair order) — rendered
    through the same formatter as {!check}, so a theorem derived from
    sweeps reports byte-identically to a direct check. *)
