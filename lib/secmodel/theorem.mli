(** The composed time-protection theorem (after Buckley/Sison et al.).

    The verification story the paper argues for — and its follow-up
    realised — is compositional: one unwinding lemma per defence
    mechanism per resource, conjoined into a single top-level
    noninterference statement.  This module derives that structure
    {e from the machine's resource registry}:

    {ul
    {- every in-scope registered resource contributes one lemma, named
       by its obligation ([flush:<r>] / [partition:<r>]), whose verdict
       is read off recorded unwinding-sweep evidence;}
    {- every out-of-scope resource contributes a [scope:<r>] obligation
       that refutes the composed theorem unless explicitly
       acknowledged — registration is never silently ignored;}
    {- the kernel contributes the classic obligations (cases 1/2a/2b,
       top-level noninterference, invariants) as lemmas, refined by the
       view components they own (the boundary clock refutes the padding
       lemma, thread/observation divergence the noninterference one);}
    {- {!Exhaustive} small-model results attach as [exhaustive:<kind>]
       lemmas.}}

    Evidence collection ({!collect}) is separated from composition
    ({!compose}) so [tpro prove] can fan collection over the supervisor,
    checkpoint serialized evidence between processes, and compose at the
    end; {!checks_of_evidence} reconstructs the classic {!Proofs} check
    list from the same evidence byte-identically, which is how {!Verify}
    keeps its historical output stable while consuming the theorem. *)

open Tpro_hw

type subject = {
  s_name : string;
  s_kind : Resource.kind;
  s_obligation : Resource.obligation;
  s_defence : string;
}
(** What the registry declares about one resource — everything lemma
    derivation needs, detached from the live machine so it can cross a
    process boundary. *)

type pair_evidence = {
  pe_secrets : int * int;
  pe_diverged : (string * int) list;
      (** first Lo step each view component diverged at, discovery order *)
  pe_progress : int option;
  pe_boundaries : int;
}

type seed_evidence = {
  ev_seed : int;
  ev_checks : Proofs.check list;
      (** the five kernel obligations of [Proofs.all], in order *)
  ev_pairs : pair_evidence list;  (** one sweep per secret pair *)
}

type t = {
  lemmas : Lemma.t list;
  holds : bool;
      (** no lemma refuted {e and} no out-of-scope subject
          unacknowledged *)
  refuted : Lemma.t list;
  unacknowledged : string list;
  first_counter_example : (string * string) option;
      (** (lemma id, detail) of the first failure *)
}

val collect :
  ?max_steps:int ->
  ?max_lo_steps:int ->
  seed:int ->
  build:(secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  seed_evidence
(** Run one latency seed's worth of evidence: exactly the per-seed
    bodies of [Proofs.all] plus one full unwinding sweep per secret
    pair. *)

val subjects_of_run : Nonint.run -> subject list
(** The registry subjects visible to a run's observing (Lo) core, plus
    the shared resources — the set of resources lemmas are derived
    for. *)

val checks_of_evidence :
  secrets:int list -> evidence:seed_evidence list -> Proofs.check list
(** The classic six-check list (cases 1/2a/2b, noninterference,
    invariants, unwinding), each wrapped [across_seeds], reconstructed
    from evidence — byte-identical to computing them directly. *)

val resource_lemmas :
  ?acknowledge:string list ->
  subjects:subject list ->
  evidence:seed_evidence list ->
  unit ->
  Lemma.t list
(** One lemma per subject: [flush:]/[partition:] verdicts read off the
    sweep evidence; out-of-scope subjects become [scope:] lemmas,
    acknowledged iff named in [acknowledge]. *)

val kernel_lemmas :
  checks:Proofs.check list -> evidence:seed_evidence list -> Lemma.t list
(** The five kernel lemmas from a [checks_of_evidence] list, refined by
    the unwinding components they own. *)

val lemma_of_exhaustive :
  kind_label:string -> resources:string list -> Exhaustive.result -> Lemma.t

val compose : Lemma.t list -> t
(** Conjoin: holds iff nothing is refuted and nothing out-of-scope is
    unacknowledged; the first counter-example names the lemma. *)

type derivation = {
  theorem : t;
  checks : Proofs.check list;
  subjects : subject list;
  evidence : seed_evidence list;
}

val derive :
  ?acknowledge:string list ->
  ?max_steps:int ->
  ?max_lo_steps:int ->
  ?seeds:int list ->
  build:(seed:int -> secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  derivation
(** Collect over all seeds and compose in-process (the sequential path
    used by {!Verify}; [tpro prove] runs [collect] under the supervisor
    instead).  Default seeds [[0;1;2]] as in [Proofs.all]. *)

val evidence_to_string : seed_evidence -> string
val evidence_of_string : string -> (seed_evidence, string) result
(** Line-based serialisation for [tpro prove]'s checkpoints; free-text
    fields are {!Tpro_engine.Checkpoint.escape}d, so the blob survives a
    further escape onto a single checkpoint line. *)

val pp_verdict_table : Format.formatter -> Lemma.t list -> unit
val pp : Format.formatter -> t -> unit
