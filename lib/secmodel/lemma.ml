open Tpro_hw

type mechanism =
  | Flush
  | Partition
  | Padding
  | User_step
  | Trap
  | Invariants
  | Top_level
  | Scope
  | Small_model

let mechanism_label = function
  | Flush -> "flush-on-switch"
  | Partition -> "partitioning"
  | Padding -> "switch-padding"
  | User_step -> "constant-user-step"
  | Trap -> "constant-trap"
  | Invariants -> "invariants"
  | Top_level -> "noninterference"
  | Scope -> "out-of-scope"
  | Small_model -> "small-model"

type verdict =
  | Proved of string
  | Refuted of string
  | Unscoped of { acknowledged : bool }

type t = {
  lid : string;
  subject : string;
  mechanism : mechanism;
  statement : string;
  verdict : verdict;
}

let proved l = match l.verdict with Proved _ -> true | _ -> false
let refuted l = match l.verdict with Refuted _ -> true | _ -> false

let unacknowledged l =
  match l.verdict with
  | Unscoped { acknowledged } -> not acknowledged
  | Proved _ | Refuted _ -> false

let verdict_label l =
  match l.verdict with
  | Proved _ -> "proved"
  | Refuted _ -> "REFUTED"
  | Unscoped { acknowledged = true } -> "out-of-scope (acknowledged)"
  | Unscoped { acknowledged = false } -> "OUT-OF-SCOPE (unacknowledged)"

let detail l =
  match l.verdict with
  | Proved d | Refuted d -> d
  | Unscoped _ -> l.statement

let of_check ~lid ~subject mechanism (c : Proofs.check) =
  {
    lid;
    subject;
    mechanism;
    statement = c.Proofs.description;
    verdict =
      (if c.Proofs.holds then Proved (Proofs.detail_text c.Proofs.detail)
       else Refuted (Proofs.detail_text c.Proofs.detail));
  }

let pp ppf l =
  Format.fprintf ppf "%-28s %-22s %-18s %s" l.lid l.subject
    (mechanism_label l.mechanism) (verdict_label l)

(* ------------------------------------------------------------------ *)
(* The Sect. 5.3 TLB partitioning theorem (Syeda & Klein, ITP'18) as
   the functional sub-lemma behind the TLB's generic flush lemma: page-
   table operations under one ASID preserve TLB consistency for every
   other ASID.  Ported unchanged from the retired [Tlb_theorem] module;
   E8 and the secmodel tests exercise it through this new home. *)

module Tlb_asid = struct
  type page_table = (int, int) Hashtbl.t

  type op =
    | Map of { vpn : int; pfn : int }
    | Unmap of int
    | Touch of int
    | Flush_asid

  let apply ?(invalidate_on_update = true) tlb ~asid pt op =
    match op with
    | Map { vpn; pfn } ->
      Hashtbl.replace pt vpn pfn;
      if invalidate_on_update then Tlb.invalidate tlb ~asid ~vpn
    | Unmap vpn ->
      Hashtbl.remove pt vpn;
      if invalidate_on_update then Tlb.invalidate tlb ~asid ~vpn
    | Touch vpn -> (
      match Tlb.lookup tlb ~asid ~vpn with
      | Some _ -> ()
      | None -> (
        match Hashtbl.find_opt pt vpn with
        | Some pfn -> Tlb.insert tlb ~asid ~vpn ~pfn
        | None -> () (* fault; nothing cached *)))
    | Flush_asid -> ignore (Tlb.flush_asid tlb asid)

  let consistent tlb ~asid pt =
    List.for_all
      (fun (e : Tlb.entry) ->
        e.Tlb.global || e.Tlb.asid <> asid
        || Hashtbl.find_opt pt e.Tlb.vpn = Some e.Tlb.pfn)
      (Tlb.entries tlb)

  let partition_preserved tlb ~actor_asid ~ops ~actor_pt ~other_asid ~other_pt
      =
    ignore actor_pt;
    List.for_all
      (fun op ->
        apply tlb ~asid:actor_asid actor_pt op;
        consistent tlb ~asid:other_asid other_pt)
      ops

  let pp_op ppf = function
    | Map { vpn; pfn } -> Format.fprintf ppf "map %d -> %d" vpn pfn
    | Unmap vpn -> Format.fprintf ppf "unmap %d" vpn
    | Touch vpn -> Format.fprintf ppf "touch %d" vpn
    | Flush_asid -> Format.pp_print_string ppf "flush-asid"
end
