(** Lo-observations and their comparison.

    An observation trace is everything a user thread can see: its clock
    readings, the latencies of its timed loads, and the messages it
    received.  Noninterference compares the complete traces of the
    observing (Lo) threads across two runs that differ only in another
    domain's secret. *)

open Tpro_kernel

type t = Event.obs list

type divergence = {
  position : int;
  left : Event.obs option;   (** [None] = trace ended early *)
  right : Event.obs option;
}

val of_thread : Thread.t -> t

val of_threads : Thread.t list -> t list

val equal : t -> t -> bool

val first_divergence : t -> t -> divergence option

val compare_many : t list -> t list -> (int * divergence) option
(** First (thread index, divergence) across paired traces; the lists must
    have equal length. *)

val pp : Format.formatter -> t -> unit
val pp_divergence : Format.formatter -> divergence -> unit
