(** The micro-architectural state taxonomy (Sect. 4.1 and 5.1).

    The paper's key modelling requirement: the micro-architectural model
    must delineate *partitionable* state from *flushable* state, and every
    piece of state that influences execution time must be one or the other
    (for in-scope channels).  The augmented ISA (aISA) contract holds when
    this is true and the corresponding OS mechanism exists.

    The taxonomy is *derived*, not hand-kept: components come from the
    resource registry of a live {!Tpro_hw.Machine.t}, so the audit always
    describes the machine that actually runs — a resource added to the
    machine (the BTB, or anything registered at runtime) appears here with
    no change to this module.  The only synthetic entry is kernel global
    data, whose defence is a kernel policy rather than a hardware
    mechanism. *)

type classification = Tpro_hw.Resource.classification =
  | Flushable
      (** core-private, time-multiplexed: reset on domain switch *)
  | Partitionable
      (** concurrently shared, spatially divisible: partition by colour or
          reservation *)
  | Neither
      (** stateless bandwidth-shared: no OS defence exists (Sect. 2) *)

type component
(** One taxonomy entry: a named piece of state with its classification,
    scope and defence. *)

val of_machine : Tpro_hw.Machine.t -> component list
(** The taxonomy of this machine: core-0's registered private resources,
    the in-scope shared resources, kernel global data, then the
    out-of-scope shared resources. *)

val all : ?machine:Tpro_hw.Machine.t -> unit -> component list
(** [all ()] is [of_machine] of a default-configuration machine;
    [all ~machine ()] of the given one. *)

val find : component list -> string -> component option
(** Look a component up by name. *)

val name : component -> string
val classify : component -> classification
val in_scope : component -> bool
(** The paper explicitly excludes stateless interconnects from time
    protection's scope. *)

val defence : component -> string
(** Which kernel mechanism handles this component. *)

val aisa_satisfied : ?machine:Tpro_hw.Machine.t -> unit -> bool
(** Every in-scope component is flushable or partitionable — the
    hardware-software contract time protection requires. *)

val out_of_scope_components :
  ?machine:Tpro_hw.Machine.t -> unit -> component list

val pp_component : Format.formatter -> component -> unit
val pp_classification : Format.formatter -> classification -> unit
