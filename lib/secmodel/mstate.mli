(** The micro-architectural state taxonomy (Sect. 4.1 and 5.1).

    The paper's key modelling requirement: the micro-architectural model
    must delineate *partitionable* state from *flushable* state, and every
    piece of state that influences execution time must be one or the other
    (for in-scope channels).  The augmented ISA (aISA) contract holds when
    this is true and the corresponding OS mechanism exists. *)

type component =
  | L1I
  | L1D
  | TLB
  | Branch_predictor
  | Prefetcher
  | LLC
  | Kernel_global_data
  | Interconnect

type classification =
  | Flushable
      (** core-private, time-multiplexed: reset on domain switch *)
  | Partitionable
      (** concurrently shared, spatially divisible: partition by colour or
          reservation *)
  | Neither
      (** stateless bandwidth-shared: no OS defence exists (Sect. 2) *)

val all : component list

val classify : component -> classification

val in_scope : component -> bool
(** The paper explicitly excludes stateless interconnects from time
    protection's scope. *)

val defence : component -> string
(** Which kernel mechanism handles this component. *)

val aisa_satisfied : unit -> bool
(** Every in-scope component is flushable or partitionable — the
    hardware-software contract time protection requires. *)

val out_of_scope_components : unit -> component list

val name : component -> string

val pp_component : Format.formatter -> component -> unit
val pp_classification : Format.formatter -> classification -> unit
