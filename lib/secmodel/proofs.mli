(** Executable analogues of the paper's proof obligations (Sect. 5.2).

    Where the paper proposes Isabelle proofs over an abstract hardware
    model, this module provides machine-checked-by-execution counterparts
    over the same abstraction: each obligation is an exhaustive check over
    a sampled universe of programs, secrets and latency functions
    (remember the time model is an *unspecified* deterministic function —
    a claim must hold for every seed, so the checkers quantify over
    seeds).  A [check] failing pinpoints a counter-example. *)

open Tpro_kernel

type detail =
  | Counter_example of string
      (** a concrete witness that the obligation fails *)
  | Stats of string  (** summary statistics of a passing check *)

val detail_text : detail -> string
(** The payload string, for rendering.  [pp] and every CSV emitter go
    through this, so the rendered output is unchanged from when [detail]
    was a bare string. *)

type check = {
  name : string;
  description : string;
  holds : bool;
  detail : detail;
}

val case1_user_steps :
  ?max_steps:int ->
  build:(secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  check
(** Case 1: the cycle cost of every ordinary user-mode instruction
    executed by Lo is independent of Hi's secret. *)

val case2a_traps :
  ?max_steps:int ->
  build:(secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  check
(** Case 2a: the cycle cost of every Lo trap (system call, fault) is
    independent of Hi's secret. *)

val case2b_constant_switch : Kernel.t -> check
(** Case 2b: every padded domain switch completed exactly at
    [slice_start + slice + pad] of the switched-from domain, with no
    overruns.  Evaluated on a completed run's event trace. *)

val noninterference :
  ?max_steps:int ->
  build:(secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  check
(** The top-level property: Lo's complete observation traces agree across
    all secrets. *)

val invariants_throughout :
  ?max_steps:int ->
  ?check_every:int ->
  build:(secret:int -> Nonint.run) ->
  secret:int ->
  unit ->
  check
(** Partitioning invariants hold in every reachable state of a run
    (sampled every [check_every] steps, default 50, and at quiescence). *)

val across_seeds :
  seeds:int list -> (seed:int -> check) -> check
(** Conjunction of a check over several latency-function seeds; the
    paper's "deterministic yet unspecified" quantification. *)

val all :
  ?max_steps:int ->
  ?seeds:int list ->
  build:(seed:int -> secret:int -> Nonint.run) ->
  secrets:int list ->
  unit ->
  check list
(** The full proof stack: Cases 1, 2a, 2b, top-level noninterference and
    the partitioning invariants, each quantified over latency seeds. *)

val pp : Format.formatter -> check -> unit
