open Tpro_hw

type page_table = (int, int) Hashtbl.t

type op = Map of { vpn : int; pfn : int } | Unmap of int | Touch of int | Flush_asid

let apply ?(invalidate_on_update = true) tlb ~asid pt op =
  match op with
  | Map { vpn; pfn } ->
    Hashtbl.replace pt vpn pfn;
    if invalidate_on_update then Tlb.invalidate tlb ~asid ~vpn
  | Unmap vpn ->
    Hashtbl.remove pt vpn;
    if invalidate_on_update then Tlb.invalidate tlb ~asid ~vpn
  | Touch vpn -> (
    match Tlb.lookup tlb ~asid ~vpn with
    | Some _ -> ()
    | None -> (
      match Hashtbl.find_opt pt vpn with
      | Some pfn -> Tlb.insert tlb ~asid ~vpn ~pfn
      | None -> () (* fault; nothing cached *)))
  | Flush_asid -> ignore (Tlb.flush_asid tlb asid)

let consistent tlb ~asid pt =
  List.for_all
    (fun (e : Tlb.entry) ->
      e.Tlb.global || e.Tlb.asid <> asid
      || Hashtbl.find_opt pt e.Tlb.vpn = Some e.Tlb.pfn)
    (Tlb.entries tlb)

let partition_preserved tlb ~actor_asid ~ops ~actor_pt ~other_asid ~other_pt =
  ignore actor_pt;
  List.for_all
    (fun op ->
      apply tlb ~asid:actor_asid actor_pt op;
      consistent tlb ~asid:other_asid other_pt)
    ops

let pp_op ppf = function
  | Map { vpn; pfn } -> Format.fprintf ppf "map %d -> %d" vpn pfn
  | Unmap vpn -> Format.fprintf ppf "unmap %d" vpn
  | Touch vpn -> Format.fprintf ppf "touch %d" vpn
  | Flush_asid -> Format.pp_print_string ppf "flush-asid"
