open Tpro_hw
open Tpro_kernel

type subject = {
  s_name : string;
  s_kind : Resource.kind;
  s_obligation : Resource.obligation;
  s_defence : string;
}

type pair_evidence = {
  pe_secrets : int * int;
  pe_diverged : (string * int) list;
  pe_progress : int option;
  pe_boundaries : int;
}

type seed_evidence = {
  ev_seed : int;
  ev_checks : Proofs.check list;
  ev_pairs : pair_evidence list;
}

type t = {
  lemmas : Lemma.t list;
  holds : bool;
  refuted : Lemma.t list;
  unacknowledged : string list;
  first_counter_example : (string * string) option;
}

(* ------------------------------------------------------------------ *)
(* Evidence gathering.  [collect] runs, for one latency seed, exactly
   the per-seed bodies of [Proofs.all] (cases 1/2a/2b, top-level
   noninterference, invariants — same calls, same order) plus one full
   unwinding sweep per secret pair.  [checks_of_evidence] then re-wraps
   them [across_seeds] so the classic check list is reproduced
   byte-identically from recorded evidence — which is what lets
   [tpro prove] fan collection over the supervisor and checkpoint the
   evidence between processes. *)

let collect ?max_steps ?max_lo_steps ~seed ~build ~secrets () =
  let first_secret = match secrets with s :: _ -> s | [] -> 0 in
  let checks =
    [
      Proofs.case1_user_steps ?max_steps ~build ~secrets ();
      Proofs.case2a_traps ?max_steps ~build ~secrets ();
      (let run = Nonint.execute ?max_steps build first_secret in
       Proofs.case2b_constant_switch run.Nonint.kernel);
      Proofs.noninterference ?max_steps ~build ~secrets ();
      Proofs.invariants_throughout ?max_steps ~build ~secret:first_secret ();
    ]
  in
  let pairs =
    match secrets with
    | [] | [ _ ] -> []
    | base :: rest ->
      List.map
        (fun s ->
          let sw =
            Unwinding.sweep_pair ?max_lo_steps ~build ~secret1:base ~secret2:s
              ()
          in
          {
            pe_secrets = (base, s);
            pe_diverged = sw.Unwinding.diverged;
            pe_progress = sw.Unwinding.progress;
            pe_boundaries = sw.Unwinding.boundaries;
          })
        rest
  in
  { ev_seed = seed; ev_checks = checks; ev_pairs = pairs }

let subjects_of_run (run : Nonint.run) =
  let k = run.Nonint.kernel in
  let m = Kernel.machine k in
  let core =
    match run.Nonint.observers with
    | th :: _ -> (Kernel.domain k th.Thread.dom).Domain.core
    | [] -> 0
  in
  List.map
    (fun r ->
      {
        s_name = Resource.name r;
        s_kind = Resource.kind r;
        s_obligation = Resource.obligation r;
        s_defence = Resource.defence r;
      })
    (Machine.core_resources m ~core @ Machine.shared_resources m)

(* ------------------------------------------------------------------ *)
(* The classic check list, reconstructed from evidence. *)

let checks_of_evidence ~secrets ~evidence =
  let seeds = List.map (fun ev -> ev.ev_seed) evidence in
  let find seed = List.find (fun ev -> ev.ev_seed = seed) evidence in
  let nth i ~seed = List.nth (find seed).ev_checks i in
  let unwinding ~seed =
    Unwinding.check_of_pairs ~secrets
      (List.map
         (fun pe ->
           ( pe.pe_secrets,
             Unwinding.first_divergence ~diverged:pe.pe_diverged
               ~progress:pe.pe_progress ))
         (find seed).ev_pairs)
  in
  [
    Proofs.across_seeds ~seeds (nth 0);
    Proofs.across_seeds ~seeds (nth 1);
    Proofs.across_seeds ~seeds (nth 2);
    Proofs.across_seeds ~seeds (nth 3);
    Proofs.across_seeds ~seeds (nth 4);
    Proofs.across_seeds ~seeds unwinding;
  ]

(* ------------------------------------------------------------------ *)
(* Lemma derivation. *)

(* First divergence of one named view component across all evidence
   (seed-major, then pair order, then the per-pair discovery order). *)
let find_component ~evidence cid =
  List.find_map
    (fun ev ->
      List.find_map
        (fun pe ->
          List.find_map
            (fun (c, step) ->
              if String.equal c cid then
                Some (ev.ev_seed, pe.pe_secrets, step)
              else None)
            pe.pe_diverged)
        ev.ev_pairs)
    evidence

let find_progress ~evidence =
  List.find_map
    (fun ev ->
      List.find_map
        (fun pe ->
          Option.map (fun k -> (ev.ev_seed, pe.pe_secrets, k)) pe.pe_progress)
        ev.ev_pairs)
    evidence

let resource_lemmas ?(acknowledge = []) ~subjects ~evidence () =
  let n_seeds = List.length evidence in
  let n_pairs =
    match evidence with [] -> 0 | ev :: _ -> List.length ev.ev_pairs
  in
  let boundaries =
    List.fold_left
      (fun acc ev ->
        List.fold_left (fun a pe -> a + pe.pe_boundaries) acc ev.ev_pairs)
      0 evidence
  in
  List.map
    (fun s ->
      match Resource.component_id ~name:s.s_name s.s_obligation with
      | None ->
        {
          Lemma.lid = "scope:" ^ s.s_name;
          subject = s.s_name;
          mechanism = Lemma.Scope;
          statement =
            Printf.sprintf
              "no unwinding lemma: %s carries no OS defence (%s)" s.s_name
              s.s_defence;
          verdict =
            Lemma.Unscoped { acknowledged = List.mem s.s_name acknowledge };
        }
      | Some cid ->
        let mechanism, statement =
          match s.s_obligation with
          | Resource.Partition_equal ->
            ( Lemma.Partition,
              Printf.sprintf
                "the Lo-coloured slice of %s is equal across Hi's secrets \
                 at every Lo boundary"
                s.s_name )
          | Resource.Flush_equal | Resource.Out_of_scope ->
            ( Lemma.Flush,
              Printf.sprintf
                "the post-switch Lo view of %s is equal across Hi's \
                 secrets at every Lo boundary"
                s.s_name )
        in
        let verdict =
          match find_component ~evidence cid with
          | Some (seed, (s1, s2), step) ->
            Lemma.Refuted
              (Printf.sprintf
                 "under latency seed %d, secrets (%d,%d): Lo's view of %s \
                  differs at Lo step %d"
                 seed s1 s2 s.s_name step)
          | None ->
            Lemma.Proved
              (Printf.sprintf
                 "Lo-view equality held at %d Lo boundaries (%d latency \
                  seeds x %d secret pairs)"
                 boundaries n_seeds n_pairs)
        in
        { Lemma.lid = cid; subject = s.s_name; mechanism; statement; verdict })
    subjects

let kernel_lemmas ~checks ~evidence =
  let by_name n =
    match List.find_opt (fun c -> String.equal c.Proofs.name n) checks with
    | Some c -> c
    | None -> invalid_arg ("Theorem.kernel_lemmas: missing check " ^ n)
  in
  (* A kernel lemma can be refuted by its own check, or by the unwinding
     view component it owns: the boundary clock belongs to the padding
     lemma, Lo's threads/observations/progress to top-level
     noninterference. *)
  let refine base cid describe =
    if Lemma.refuted base then base
    else
      match find_component ~evidence cid with
      | Some (seed, (s1, s2), step) ->
        { base with Lemma.verdict = Lemma.Refuted (describe seed s1 s2 step) }
      | None -> base
  in
  let user_step =
    Lemma.of_check ~lid:"kernel:user-step" ~subject:"kernel" Lemma.User_step
      (by_name "case-1")
  in
  let trap =
    Lemma.of_check ~lid:"kernel:trap" ~subject:"kernel" Lemma.Trap
      (by_name "case-2a")
  in
  let padded_switch =
    refine
      (Lemma.of_check ~lid:"kernel:padded-switch" ~subject:"kernel"
         Lemma.Padding (by_name "case-2b"))
      "kernel:clock"
      (fun seed s1 s2 step ->
        Printf.sprintf
          "under latency seed %d, secrets (%d,%d): Lo's cycle counter \
           differs at Lo boundary %d (padding failed to mask the switch)"
          seed s1 s2 step)
  in
  let noninterference =
    let base =
      Lemma.of_check ~lid:"kernel:noninterference" ~subject:"kernel"
        Lemma.Top_level
        (by_name "noninterference")
    in
    let base =
      List.fold_left
        (fun acc (cid, what) ->
          refine acc cid (fun seed s1 s2 step ->
              Printf.sprintf
                "under latency seed %d, secrets (%d,%d): %s differ at Lo \
                 step %d"
                seed s1 s2 what step))
        base
        [
          ("lo-threads", "Lo's thread states");
          ("lo-observations", "Lo's observations");
        ]
    in
    if Lemma.refuted base then base
    else
      match find_progress ~evidence with
      | Some (seed, (s1, s2), step) ->
        {
          base with
          Lemma.verdict =
            Lemma.Refuted
              (Printf.sprintf
                 "under latency seed %d, secrets (%d,%d): one run quiesced \
                  at Lo step %d while the other continued"
                 seed s1 s2 step);
        }
      | None -> base
  in
  let invariants =
    Lemma.of_check ~lid:"kernel:invariants" ~subject:"kernel" Lemma.Invariants
      (by_name "invariants")
  in
  [ user_step; trap; padded_switch; noninterference; invariants ]

let lemma_of_exhaustive ~kind_label ~resources (r : Exhaustive.result) =
  {
    Lemma.lid = "exhaustive:" ^ kind_label;
    subject = String.concat ", " resources;
    mechanism = Lemma.Small_model;
    statement =
      Printf.sprintf
        "every Hi program over the %s small-model universe leaves Lo's \
         observations baseline-identical"
        kind_label;
    verdict =
      (if r.Exhaustive.violations = 0 then
         Lemma.Proved
           (Printf.sprintf "%d programs, %d executions, no violation"
              r.Exhaustive.programs r.Exhaustive.executions)
       else
         Lemma.Refuted
           (Printf.sprintf "%d/%d executions violated NI; first: %s"
              r.Exhaustive.violations r.Exhaustive.executions
              (Option.value r.Exhaustive.first_violation ~default:"?")));
  }

(* ------------------------------------------------------------------ *)
(* Composition. *)

let compose lemmas =
  let refuted = List.filter Lemma.refuted lemmas in
  let unack = List.filter Lemma.unacknowledged lemmas in
  let first_counter_example =
    match refuted with
    | l :: _ -> Some (l.Lemma.lid, Lemma.detail l)
    | [] -> (
      match unack with
      | l :: _ ->
        Some
          ( l.Lemma.lid,
            "out-of-scope resource never acknowledged: " ^ l.Lemma.subject )
      | [] -> None)
  in
  {
    lemmas;
    holds = refuted = [] && unack = [];
    refuted;
    unacknowledged = List.map (fun l -> l.Lemma.subject) unack;
    first_counter_example;
  }

type derivation = {
  theorem : t;
  checks : Proofs.check list;
  subjects : subject list;
  evidence : seed_evidence list;
}

let derive ?acknowledge ?max_steps ?max_lo_steps ?(seeds = [ 0; 1; 2 ])
    ~build ~secrets () =
  let evidence =
    List.map
      (fun seed ->
        collect ?max_steps ?max_lo_steps ~seed ~build:(build ~seed) ~secrets
          ())
      seeds
  in
  let subjects =
    match (seeds, secrets) with
    | seed :: _, secret :: _ -> subjects_of_run (build ~seed ~secret)
    | _ -> []
  in
  let checks = checks_of_evidence ~secrets ~evidence in
  let lemmas =
    resource_lemmas ?acknowledge ~subjects ~evidence ()
    @ kernel_lemmas ~checks ~evidence
  in
  { theorem = compose lemmas; checks; subjects; evidence }

(* ------------------------------------------------------------------ *)
(* Evidence (de)serialisation for [tpro prove]'s checkpoints: one line
   per record, tab-separated fields, each free-text field put through
   [Checkpoint.escape] (which escapes tabs and newlines), so the whole
   blob survives a further escape onto a single checkpoint line. *)

let evidence_to_string ev =
  let esc = Tpro_engine.Checkpoint.escape in
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "seed\t%d" ev.ev_seed);
  List.iter
    (fun c ->
      let tag, text =
        match c.Proofs.detail with
        | Proofs.Counter_example s -> ("C", s)
        | Proofs.Stats s -> ("S", s)
      in
      Buffer.add_string b
        (Printf.sprintf "\ncheck\t%s\t%s\t%d\t%s\t%s" (esc c.Proofs.name)
           (esc c.Proofs.description)
           (if c.Proofs.holds then 1 else 0)
           tag (esc text)))
    ev.ev_checks;
  List.iter
    (fun pe ->
      let s1, s2 = pe.pe_secrets in
      Buffer.add_string b
        (Printf.sprintf "\npair\t%d\t%d\t%d\t%s" s1 s2 pe.pe_boundaries
           (match pe.pe_progress with Some k -> string_of_int k | None -> "-"));
      List.iter
        (fun (c, step) ->
          Buffer.add_string b (Printf.sprintf "\ndiv\t%s\t%d" (esc c) step))
        pe.pe_diverged)
    ev.ev_pairs;
  Buffer.contents b

let evidence_of_string s =
  let unesc field =
    match Tpro_engine.Checkpoint.unescape field with
    | Some v -> v
    | None -> failwith "malformed escape"
  in
  try
    let seed = ref None in
    let checks = ref [] in
    (* pairs in reverse, each with its divergences in reverse *)
    let pairs = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char '\t' line with
        | [ "seed"; n ] -> seed := Some (int_of_string n)
        | [ "check"; name; description; holds; tag; text ] ->
          let text = unesc text in
          let detail =
            match tag with
            | "C" -> Proofs.Counter_example text
            | "S" -> Proofs.Stats text
            | _ -> failwith "bad detail tag"
          in
          checks :=
            {
              Proofs.name = unesc name;
              description = unesc description;
              holds = int_of_string holds <> 0;
              detail;
            }
            :: !checks
        | [ "pair"; s1; s2; boundaries; progress ] ->
          let pe =
            {
              pe_secrets = (int_of_string s1, int_of_string s2);
              pe_boundaries = int_of_string boundaries;
              pe_progress =
                (if String.equal progress "-" then None
                 else Some (int_of_string progress));
              pe_diverged = [];
            }
          in
          pairs := pe :: !pairs
        | [ "div"; c; step ] -> (
          match !pairs with
          | [] -> failwith "divergence before any pair"
          | pe :: rest ->
            pairs :=
              {
                pe with
                pe_diverged = (unesc c, int_of_string step) :: pe.pe_diverged;
              }
              :: rest)
        | _ -> failwith "unrecognised evidence line")
      (String.split_on_char '\n' s);
    match !seed with
    | None -> Error "evidence has no seed line"
    | Some ev_seed ->
      Ok
        {
          ev_seed;
          ev_checks = List.rev !checks;
          ev_pairs =
            List.rev_map
              (fun pe -> { pe with pe_diverged = List.rev pe.pe_diverged })
              !pairs;
        }
  with Failure m -> Error ("malformed evidence: " ^ m)

(* ------------------------------------------------------------------ *)

let pp_verdict_table ppf lemmas =
  Format.fprintf ppf "  %-28s %-22s %-18s %s" "lemma" "subject" "mechanism"
    "verdict";
  List.iter (fun l -> Format.fprintf ppf "@\n  %a" Lemma.pp l) lemmas

let pp ppf t =
  pp_verdict_table ppf t.lemmas;
  let n = List.length t.lemmas in
  let n_proved = List.length (List.filter Lemma.proved t.lemmas) in
  let n_refuted = List.length t.refuted in
  let n_scope =
    List.length
      (List.filter
         (fun l ->
           match l.Lemma.verdict with
           | Lemma.Unscoped _ -> true
           | _ -> false)
         t.lemmas)
  in
  Format.fprintf ppf
    "@\n  composed time-protection theorem: %s (%d lemmas: %d proved, %d \
     refuted, %d out-of-scope, %d unacknowledged)"
    (if t.holds then "HOLDS" else "REFUTED")
    n n_proved n_refuted n_scope
    (List.length t.unacknowledged);
  match t.first_counter_example with
  | Some (lid, d) ->
    Format.fprintf ppf "@\n  first counter-example [%s]: %s" lid d
  | None -> ()
