open Tpro_kernel

type run = { kernel : Kernel.t; observers : Thread.t list }

type divergence_report = {
  obs : (int * Observation.divergence) option;
  user_costs : (int * int * int * int) option;
  trap_costs : (int * int * int * int) option;
}

let secure r = r.obs = None && r.user_costs = None && r.trap_costs = None

(* The same run, seen from one domain: the observer list restricted to
   [dom]'s threads (in domain thread order).  [compare_runs] on two such
   views is the pairwise noninterference check of an N-domain topology —
   nothing about the comparison itself is Hi/Lo specific. *)
let view_from run ~dom =
  { run with observers = Domain.threads (Kernel.domain run.kernel dom) }

let execute ?(max_steps = 1_000_000) build secret =
  let run = build ~secret in
  List.iter (fun th -> Thread.set_traced th true) run.observers;
  Kernel.run ~max_steps run.kernel;
  run

let costs_of_kind kind th =
  List.filter_map
    (fun (k, c) -> if k = kind then Some c else None)
    (Thread.cost_trace th)

(* First position where two per-observer cost sequences differ. *)
let first_cost_divergence kind obs1 obs2 =
  let rec per_thread i ths1 ths2 =
    match (ths1, ths2) with
    | [], [] -> None
    | th1 :: r1, th2 :: r2 -> (
      let c1 = costs_of_kind kind th1 and c2 = costs_of_kind kind th2 in
      let rec step j a b =
        match (a, b) with
        | [], [] -> per_thread (i + 1) r1 r2
        | x :: a', y :: b' ->
          if x = y then step (j + 1) a' b' else Some (i, j, x, y)
        | x :: _, [] -> Some (i, j, x, -1)
        | [], y :: _ -> Some (i, j, -1, y)
      in
      step 0 c1 c2)
    | _, _ -> invalid_arg "Nonint: observer count mismatch"
  in
  per_thread 0 obs1 obs2

let compare_runs r1 r2 =
  {
    obs =
      Observation.compare_many
        (Observation.of_threads r1.observers)
        (Observation.of_threads r2.observers);
    user_costs = first_cost_divergence Thread.User r1.observers r2.observers;
    trap_costs = first_cost_divergence Thread.Trap r1.observers r2.observers;
  }

let two_run ?max_steps ~build ~secret1 ~secret2 () =
  let r1 = execute ?max_steps build secret1 in
  let r2 = execute ?max_steps build secret2 in
  compare_runs r1 r2

let check_secrets ?max_steps ~build ~secrets () =
  match secrets with
  | [] -> []
  | base :: rest ->
    List.filter_map
      (fun s ->
        let report = two_run ?max_steps ~build ~secret1:base ~secret2:s () in
        if secure report then None else Some (base, s, report))
      rest

let pp_report ppf r =
  if secure r then Format.pp_print_string ppf "no divergence"
  else begin
    (match r.obs with
    | Some (i, d) ->
      Format.fprintf ppf "observations[thread %d] %a; " i
        Observation.pp_divergence d
    | None -> ());
    (match r.user_costs with
    | Some (i, j, a, b) ->
      Format.fprintf ppf "user step cost[thread %d, step %d]: %d vs %d; " i j
        a b
    | None -> ());
    match r.trap_costs with
    | Some (i, j, a, b) ->
      Format.fprintf ppf "trap cost[thread %d, trap %d]: %d vs %d" i j a b
    | None -> ()
  end
