(** Runtime partitioning invariants.

    The paper reduces temporal isolation for partitionable state to a
    *functional invariant about correct partitioning* that can be verified
    without reference to time.  These are those invariants, checkable on
    any reachable kernel state.  The verification harness evaluates them
    after every kernel step; the proofs layer additionally samples them
    under random workloads. *)

open Tpro_kernel

type violation = { invariant : string; detail : string }

val colour_partition : Kernel.t -> violation list
(** With colouring on: every valid LLC line owned by domain [d] sits in a
    set of one of [d]'s colours; every kernel-owned (shared) line sits in
    the reserved kernel colour. *)

val frame_ownership : Kernel.t -> violation list
(** Every frame mapped by a domain's page table is owned by that domain
    and has one of its colours (colouring on); kernel image frames are
    owned by the kernel or the cloning domain. *)

val tlb_consistency : Kernel.t -> violation list
(** Every TLB entry tagged with a domain's ASID agrees with that domain's
    current page table (the Syeda & Klein-style consistency the Sect. 5.3
    theorem is about). *)

val irq_partitioning : Kernel.t -> violation list
(** With IRQ partitioning on: every [Irq_handled] event so far was handled
    while its owner domain was current. *)

val disjoint_domain_colours : Kernel.t -> violation list
(** With colouring on: domains' colour sets are pairwise disjoint and
    exclude the reserved kernel colour. *)

val check_all : Kernel.t -> violation list

val pp_violation : Format.formatter -> violation -> unit
