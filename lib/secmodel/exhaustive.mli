(** Exhaustive noninterference checking over a small universe.

    The sampled checks in {!Proofs} play the adversary with random
    programs; this module removes the sampling for universes small enough
    to enumerate: *every* Hi program over a given instruction alphabet up
    to a given length is executed, and Lo's observations must be
    identical to the baseline for each one.  A pass is a genuine
    ∀-statement over the whole (finite) universe — the closest an
    executable artefact gets to the paper's proof, and a useful
    regression net: any model change that opens a leak in the small
    universe fails loudly with the offending program. *)

open Tpro_kernel

type universe = {
  hi_len : int;                       (** Hi program length (before Halt) *)
  hi_alphabet : Program.instr list;   (** per-slot instruction choices *)
  seeds : int list;                   (** latency functions to cover *)
}

val default_universe : universe
(** 7-instruction alphabet (loads/stores over the Hi buffer, compute,
    a system call), length 3, two latency seeds: 343 programs,
    686 executions. *)

val enumerate : universe -> Program.t list
(** All [|alphabet|^len] programs, each Halt-terminated. *)

val universe_size : universe -> int

type result = {
  programs : int;
  executions : int;
  violations : int;
  first_violation : string option;  (** offending Hi program, printed *)
}

val check :
  build:(hi_prog:Program.t -> seed:int -> Nonint.run) ->
  universe ->
  result
(** Run every program under every seed and compare Lo's observations and
    step costs against the all-[Compute] baseline program of the same
    length. *)

val check_par :
  ?pool:Tpro_engine.Pool.t ->
  ?domains:int ->
  build:(hi_prog:Program.t -> seed:int -> Nonint.run) ->
  universe ->
  result
(** {!check} with the (seed x program) state-space sweep fanned out
    across a domain pool.  Each execution boots its own kernel, so the
    result — including which violation is reported [first] — is
    identical to the sequential {!check} for any pool size. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Per-resource-kind universes}

    The registry-driven generalisation: each {!Tpro_hw.Resource.kind}
    defines a small adversary universe tailored to the structures of
    that kind (loads at line/page granularity for caches, mapped-page
    churn for TLBs, biased branches for predictors, strided loads for
    prefetchers), so the ∀ is genuinely exhaustive per kind and a newly
    registered resource of a known kind inherits an exhaustive
    obligation with zero edits here. *)

val universe_for_kind : ?hi_buf:int -> Tpro_hw.Resource.kind -> universe option
(** [None] for kinds with no meaningful adversary program model
    (interconnects, ad-hoc resources).  [hi_buf] defaults to the
    standard Hi buffer base; all addresses stay within two pages of it,
    matching the small-program scenario's mapping. *)

type kind_universe = {
  ku_label : string;  (** {!Tpro_hw.Resource.kind_label} *)
  ku_resources : string list;  (** registry resources of that kind *)
  ku_universe : universe;
}

val kind_universes :
  ?hi_buf:int -> machine:Tpro_hw.Machine.t -> unit -> kind_universe list
(** The universes the machine's registry calls for: one per distinct
    resource kind (first-seen registry order, core 0 then shared) that
    has a universe. *)
