(** The Sect. 5.3 TLB partitioning theorem, after Syeda & Klein (ITP'18).

    The paper cites a functional-correctness logic for an ARM-style TLB in
    which it is "easy to show that page-table modifications under one ASID
    do not affect TLB consistency for any other ASID", and proposes the
    same abstraction style for timing.  This module states that theorem
    over our TLB model and checks it by executing operation sequences:

    [consistent tlb asid pt] — no TLB entry tagged [asid] contradicts the
    page table [pt].

    Theorem: for any sequence of address-space operations performed under
    ASID [a] (with the required hardware invalidations), consistency for
    any other ASID [b] is preserved.  The flip side is also exposed: a
    *faulty* OS that remaps without invalidating breaks consistency for
    its own ASID — but still not for others. *)

open Tpro_hw

type page_table = (int, int) Hashtbl.t

type op =
  | Map of { vpn : int; pfn : int }     (** create or change a mapping *)
  | Unmap of int
  | Touch of int
      (** access a page: TLB lookup, page walk + refill on miss *)
  | Flush_asid                           (** invalidate own entries *)

val apply :
  ?invalidate_on_update:bool ->
  Tlb.t ->
  asid:int ->
  page_table ->
  op ->
  unit
(** Perform one operation under [asid], maintaining the hardware
    discipline ([invalidate_on_update] defaults to [true]; pass [false] to
    model a buggy OS that skips the invalidation). *)

val consistent : Tlb.t -> asid:int -> page_table -> bool

val partition_preserved :
  Tlb.t -> actor_asid:int -> ops:op list -> actor_pt:page_table ->
  other_asid:int -> other_pt:page_table -> bool
(** Run [ops] under [actor_asid] and report whether consistency for
    [other_asid] held after every single operation. *)

val pp_op : Format.formatter -> op -> unit
