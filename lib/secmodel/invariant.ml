open Tpro_hw
open Tpro_kernel

type violation = { invariant : string; detail : string }

let v invariant fmt = Format.kasprintf (fun detail -> { invariant; detail }) fmt

let domain_by_id k did =
  List.find_opt (fun (d : Domain.t) -> d.Domain.did = did) (Kernel.domains k)

let colour_partition k =
  if not (Kernel.config k).Kernel.colouring then []
  else begin
    let m = Kernel.machine k in
    let llc = Machine.llc m in
    let geom = Cache.geom llc in
    let page_bits = Kernel.page_bits k in
    let acc = ref [] in
    Cache.iter_lines llc (fun ~set ~way:_ ~tag:_ ~dirty:_ ~owner ->
        let colour = Cache.colour_of_set geom ~page_bits set in
        if owner = Cache.shared_owner then begin
          if colour <> Frame_alloc.reserved_kernel_colour then
            acc :=
              v "colour-partition"
                "kernel-owned line in set %d (colour %d, expected kernel colour %d)"
                set colour Frame_alloc.reserved_kernel_colour
              :: !acc
        end
        else
          match domain_by_id k owner with
          | None ->
            acc :=
              v "colour-partition" "line owned by unknown domain %d" owner
              :: !acc
          | Some d ->
            if not (List.mem colour d.Domain.colours) then
              acc :=
                v "colour-partition"
                  "domain %d line in set %d of colour %d outside its colours"
                  owner set colour
                :: !acc);
    List.rev !acc
  end

let frame_ownership k =
  let mem = Machine.mem (Kernel.machine k) in
  let alloc = Kernel.allocator k in
  let colouring = (Kernel.config k).Kernel.colouring in
  List.concat_map
    (fun (d : Domain.t) ->
      List.filter_map
        (fun vpn ->
          match Domain.translate d vpn with
          | None -> None
          | Some pfn ->
            let owner = Mem.owner_of_frame mem pfn in
            if owner <> d.Domain.did then
              Some
                (v "frame-ownership"
                   "domain %d maps frame %d owned by %d" d.Domain.did pfn
                   owner)
            else if
              colouring
              && not
                   (List.mem
                      (Frame_alloc.colour_of_frame alloc pfn)
                      d.Domain.colours)
            then
              Some
                (v "frame-ownership"
                   "domain %d maps frame %d of foreign colour %d" d.Domain.did
                   pfn
                   (Frame_alloc.colour_of_frame alloc pfn))
            else None)
        (Domain.mapped_vpns d))
    (Kernel.domains k)

let tlb_consistency k =
  let m = Kernel.machine k in
  let acc = ref [] in
  for core = 0 to Machine.n_cores m - 1 do
    List.iter
      (fun (e : Tlb.entry) ->
        if not e.Tlb.global then
          match
            List.find_opt
              (fun (d : Domain.t) -> d.Domain.asid = e.Tlb.asid)
              (Kernel.domains k)
          with
          | None ->
            acc :=
              v "tlb-consistency" "TLB entry with unknown asid %d" e.Tlb.asid
              :: !acc
          | Some d ->
            if Domain.translate d e.Tlb.vpn <> Some e.Tlb.pfn then
              acc :=
                v "tlb-consistency"
                  "stale TLB entry: asid %d vpn %d -> pfn %d disagrees with page table"
                  e.Tlb.asid e.Tlb.vpn e.Tlb.pfn
                :: !acc)
      (Tlb.entries (Machine.tlb m ~core))
  done;
  List.rev !acc

let irq_partitioning k =
  if not (Kernel.config k).Kernel.partition_irqs then []
  else
    List.filter_map
      (fun e ->
        match e with
        | Event.Irq_handled { irq; owner_dom; during_dom; _ } ->
          if owner_dom <> during_dom then
            Some
              (v "irq-partitioning"
                 "irq %d (owner %d) handled while domain %d was current" irq
                 owner_dom during_dom)
          else None
        | _ -> None)
      (Kernel.events k)

let disjoint_domain_colours k =
  if not (Kernel.config k).Kernel.colouring then []
  else begin
    let doms = Kernel.domains k in
    let acc = ref [] in
    List.iter
      (fun (d : Domain.t) ->
        if List.mem Frame_alloc.reserved_kernel_colour d.Domain.colours then
          acc :=
            v "disjoint-colours" "domain %d holds the kernel colour"
              d.Domain.did
            :: !acc)
      doms;
    let rec pairs = function
      | [] -> ()
      | (d : Domain.t) :: rest ->
        List.iter
          (fun (d' : Domain.t) ->
            let common =
              List.filter
                (fun c -> List.mem c d'.Domain.colours)
                d.Domain.colours
            in
            if common <> [] then
              acc :=
                v "disjoint-colours" "domains %d and %d share colour %d"
                  d.Domain.did d'.Domain.did (List.hd common)
                :: !acc)
          rest;
        pairs rest
    in
    pairs doms;
    List.rev !acc
  end

let check_all k =
  colour_partition k @ frame_ownership k @ tlb_consistency k
  @ irq_partitioning k @ disjoint_domain_colours k

let pp_violation ppf { invariant; detail } =
  Format.fprintf ppf "[%s] %s" invariant detail
