open Tpro_kernel

type detail = Counter_example of string | Stats of string

let detail_text = function Counter_example s | Stats s -> s

type check = {
  name : string;
  description : string;
  holds : bool;
  detail : detail;
}

let cost_divergence_check ~name ~description ~select ?max_steps ~build ~secrets
    () =
  match secrets with
  | [] ->
    { name; description; holds = true; detail = Stats "no secrets sampled" }
  | base :: rest ->
    let failures =
      List.filter_map
        (fun s ->
          let report =
            Nonint.two_run ?max_steps ~build ~secret1:base ~secret2:s ()
          in
          match select report with
          | Some (i, j, a, b) ->
            Some
              (Format.asprintf
                 "secrets (%d,%d): thread %d step %d cost %d vs %d" base s i
                 j a b)
          | None -> None)
        rest
    in
    (match failures with
    | [] ->
      {
        name;
        description;
        holds = true;
        detail =
          Stats
            (Printf.sprintf "%d secret pairs compared, no divergence"
               (List.length rest));
      }
    | d :: _ ->
      {
        name;
        description;
        holds = false;
        detail =
          Counter_example
            (Printf.sprintf "%d/%d pairs diverged; first: %s"
               (List.length failures) (List.length rest) d);
      })

let case1_user_steps ?max_steps ~build ~secrets () =
  cost_divergence_check ~name:"case-1"
    ~description:
      "user-mode instruction cost of Lo is independent of Hi's secret"
    ~select:(fun r -> r.Nonint.user_costs)
    ?max_steps ~build ~secrets ()

let case2a_traps ?max_steps ~build ~secrets () =
  cost_divergence_check ~name:"case-2a"
    ~description:"trap cost of Lo is independent of Hi's secret"
    ~select:(fun r -> r.Nonint.trap_costs)
    ?max_steps ~build ~secrets ()

let case2b_constant_switch kernel =
  let name = "case-2b" in
  let description =
    "every padded domain switch ends exactly at slice_start + slice + pad"
  in
  let switches =
    List.filter_map
      (fun e ->
        match e with
        | Event.Switch { from_dom; slice_start; finish; padded = true; overrun; _ }
          ->
          Some (from_dom, finish - slice_start, overrun)
        | _ -> None)
      (Kernel.events kernel)
  in
  if switches = [] then
    {
      name;
      description;
      holds = true;
      detail = Stats "no padded switches occurred";
    }
  else begin
    let overruns = List.filter (fun (_, _, o) -> o) switches in
    let bad_slot =
      List.find_opt
        (fun (from_dom, slot, _) ->
          let d = Kernel.domain kernel from_dom in
          slot <> d.Domain.slice + d.Domain.pad_cycles)
        switches
    in
    match (overruns, bad_slot) with
    | [], None ->
      {
        name;
        description;
        holds = true;
        detail =
          Stats
            (Printf.sprintf "%d padded switches, all at their exact deadline"
               (List.length switches));
      }
    | (d, slot, _) :: _, _ | _, Some (d, slot, _) ->
      {
        name;
        description;
        holds = false;
        detail =
          Counter_example
            (Printf.sprintf
               "switch from domain %d took slot %d (expected slice+pad); %d \
                overruns"
               d slot (List.length overruns));
      }
  end

let noninterference ?max_steps ~build ~secrets () =
  let name = "noninterference" in
  let description =
    "Lo's complete observation trace is identical for every Hi secret"
  in
  match Nonint.check_secrets ?max_steps ~build ~secrets () with
  | [] ->
    {
      name;
      description;
      holds = true;
      detail =
        Stats
          (Printf.sprintf "%d secrets compared, traces identical"
             (List.length secrets));
    }
  | (s1, s2, report) :: _ as bad ->
    {
      name;
      description;
      holds = false;
      detail =
        Counter_example
          (Format.asprintf "%d insecure pairs; first (%d,%d): %a"
             (List.length bad) s1 s2 Nonint.pp_report report);
    }

let invariants_throughout ?(max_steps = 200_000) ?(check_every = 50) ~build
    ~secret () =
  let name = "invariants" in
  let description =
    "partitioning invariants hold in every reachable state"
  in
  let run = build ~secret in
  let k = run.Nonint.kernel in
  let violations = ref [] in
  let states_checked = ref 0 in
  let check () =
    incr states_checked;
    match Invariant.check_all k with
    | [] -> ()
    | vs -> violations := vs @ !violations
  in
  check ();
  let steps = ref 0 in
  while !steps < max_steps && Kernel.step k do
    incr steps;
    if !steps mod check_every = 0 then check ()
  done;
  check ();
  match !violations with
  | [] ->
    {
      name;
      description;
      holds = true;
      detail =
        Stats
          (Printf.sprintf "%d states checked over %d steps, no violation"
             !states_checked !steps);
    }
  | v :: _ ->
    {
      name;
      description;
      holds = false;
      detail =
        Counter_example
          (Format.asprintf "%d violations; first: %a"
             (List.length !violations) Invariant.pp_violation v);
    }

let across_seeds ~seeds f =
  match seeds with
  | [] -> invalid_arg "Proofs.across_seeds: no seeds"
  | first :: _ ->
    let results = List.map (fun seed -> (seed, f ~seed)) seeds in
    let template = snd (List.hd results) in
    (match List.find_opt (fun (_, c) -> not c.holds) results with
    | Some (seed, c) ->
      {
        c with
        detail =
          Counter_example
            (Printf.sprintf "failed under latency seed %d: %s" seed
               (detail_text c.detail));
      }
    | None ->
      ignore first;
      {
        template with
        detail =
          Stats
            (Printf.sprintf "holds for %d latency functions (%s)"
               (List.length seeds) (detail_text template.detail));
      })

let all ?max_steps ?(seeds = [ 0; 1; 2 ]) ~build ~secrets () =
  let first_secret = match secrets with s :: _ -> s | [] -> 0 in
  [
    across_seeds ~seeds (fun ~seed ->
        case1_user_steps ?max_steps ~build:(build ~seed) ~secrets ());
    across_seeds ~seeds (fun ~seed ->
        case2a_traps ?max_steps ~build:(build ~seed) ~secrets ());
    across_seeds ~seeds (fun ~seed ->
        let run =
          Nonint.execute ?max_steps (build ~seed) first_secret
        in
        case2b_constant_switch run.Nonint.kernel);
    across_seeds ~seeds (fun ~seed ->
        noninterference ?max_steps ~build:(build ~seed) ~secrets ());
    across_seeds ~seeds (fun ~seed ->
        invariants_throughout ?max_steps ~build:(build ~seed)
          ~secret:first_secret ());
  ]

let pp ppf c =
  Format.fprintf ppf "%s %s: %s — %s"
    (if c.holds then "[OK]  " else "[FAIL]")
    c.name c.description (detail_text c.detail)
