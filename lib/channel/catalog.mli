(** The catalogue of channels that full time protection claims to close.

    The fuzz harness's capacity oracle needs a machine-readable list of
    scenarios with their expected defence outcome: under [Presets.full]
    every catalogued channel must measure 0 bits, and under
    [Presets.none] the known-leaky ones must measure strictly more.
    Channels the paper places out of scope for the OS (the interconnect),
    or that full time protection deliberately leaves open (SMT siblings,
    Flush+Reload over a still-shared page), are excluded — asserting
    closure there would contradict the model. *)

type entry = {
  cname : string;  (** stable key, usable in replay files *)
  scenario : unit -> Attack.scenario;
  leaky : bool;
      (** whether capacity under [none] is expected to be strictly
          positive for any latency seed (known-leaky channel) *)
}

val all : entry list
(** Every channel closed by full time protection, cheapest first. *)

val find : string -> entry option
(** Look an entry up by [cname]. *)
