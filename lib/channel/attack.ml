open Tpro_kernel

type scenario = {
  name : string;
  symbols : int list;
  build : cfg:Kernel.config -> seed:int -> secret:int -> Kernel.t * Thread.t;
  decode : Event.obs list -> int;
  max_steps : int;
}

type outcome = {
  scenario_name : string;
  samples : (int * int) list;
  capacity_bits : float;
  distinct_outputs : int;
}

let run_trial scenario ~cfg ~seed ~secret =
  let kernel, spy = scenario.build ~cfg ~seed ~secret in
  Kernel.run ~max_steps:scenario.max_steps kernel;
  scenario.decode (Thread.observations spy)

let machine_cycles kernel =
  let m = Kernel.machine kernel in
  let worst = ref 0 in
  for core = 0 to Tpro_hw.Machine.n_cores m - 1 do
    worst := max !worst (Tpro_hw.Machine.now m ~core)
  done;
  !worst

let run_trial_timed scenario ~cfg ~seed ~secret =
  let kernel, spy = scenario.build ~cfg ~seed ~secret in
  Kernel.run ~max_steps:scenario.max_steps kernel;
  (scenario.decode (Thread.observations spy), machine_cycles kernel)

let default_seeds = List.init 10 (fun i -> i)

(* Count distinct outputs in one pass over the samples we already hold —
   no rebuilt list, no sort. *)
let distinct_outputs_of samples =
  let seen = Hashtbl.create 16 in
  List.iter (fun (_, out) -> Hashtbl.replace seen out ()) samples;
  Hashtbl.length seen

let outcome_of_samples scenario samples =
  {
    scenario_name = scenario.name;
    samples;
    capacity_bits = Capacity.of_samples samples;
    distinct_outputs = distinct_outputs_of samples;
  }

(* The (secret x seed) grid in the canonical order: secrets outer, seeds
   inner.  Both [measure] and [measure_par] sample in exactly this order,
   which is what makes their outcomes bit-identical. *)
let trial_grid scenario ~seeds =
  List.concat_map
    (fun secret -> List.map (fun seed -> (secret, seed)) seeds)
    scenario.symbols

let measure ?(seeds = default_seeds) scenario ~cfg () =
  outcome_of_samples scenario
    (List.map
       (fun (secret, seed) -> (secret, run_trial scenario ~cfg ~seed ~secret))
       (trial_grid scenario ~seeds))

let measure_par ?(seeds = default_seeds) ?pool ?domains scenario ~cfg () =
  let grid = trial_grid scenario ~seeds in
  let run p =
    let outputs =
      Tpro_engine.Pool.map_auto ~label:"attack-trial" p
        (fun (secret, seed) -> run_trial scenario ~cfg ~seed ~secret)
        grid
    in
    List.map2 (fun (secret, _) out -> (secret, out)) grid outputs
  in
  let samples =
    match pool with
    | Some p -> run p
    | None -> Tpro_engine.Pool.with_pool ?domains run
  in
  outcome_of_samples scenario samples

let matrix outcome = Matrix.of_samples outcome.samples

let pp_outcome ppf o =
  Format.fprintf ppf "%-28s capacity %.3f bits (%d samples, %d distinct outputs)"
    o.scenario_name o.capacity_bits (List.length o.samples) o.distinct_outputs
