open Tpro_kernel

type scenario = {
  name : string;
  symbols : int list;
  build : cfg:Kernel.config -> seed:int -> secret:int -> Kernel.t * Thread.t;
  decode : Event.obs list -> int;
  max_steps : int;
}

type outcome = {
  scenario_name : string;
  samples : (int * int) list;
  capacity_bits : float;
  distinct_outputs : int;
}

let run_trial scenario ~cfg ~seed ~secret =
  let kernel, spy = scenario.build ~cfg ~seed ~secret in
  Kernel.run ~max_steps:scenario.max_steps kernel;
  scenario.decode (Thread.observations spy)

let machine_cycles kernel =
  let m = Kernel.machine kernel in
  let worst = ref 0 in
  for core = 0 to Tpro_hw.Machine.n_cores m - 1 do
    worst := max !worst (Tpro_hw.Machine.now m ~core)
  done;
  !worst

let run_trial_timed scenario ~cfg ~seed ~secret =
  let kernel, spy = scenario.build ~cfg ~seed ~secret in
  Kernel.run ~max_steps:scenario.max_steps kernel;
  (scenario.decode (Thread.observations spy), machine_cycles kernel)

let default_seeds = List.init 10 (fun i -> i)

let measure ?(seeds = default_seeds) scenario ~cfg () =
  let samples =
    List.concat_map
      (fun secret ->
        List.map
          (fun seed -> (secret, run_trial scenario ~cfg ~seed ~secret))
          seeds)
      scenario.symbols
  in
  {
    scenario_name = scenario.name;
    samples;
    capacity_bits = Capacity.of_samples samples;
    distinct_outputs = List.length (List.sort_uniq compare (List.map snd samples));
  }

let matrix outcome = Matrix.of_samples outcome.samples

let pp_outcome ppf o =
  Format.fprintf ppf "%-28s capacity %.3f bits (%d samples, %d distinct outputs)"
    o.scenario_name o.capacity_bits (List.length o.samples) o.distinct_outputs
