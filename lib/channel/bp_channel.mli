(** The branch-predictor channel (Sect. 3.1, experiment E17).

    The predictor's pattern-history table is core-local state indexed by
    (pc, global history): a Trojan trains aliasing entries toward taken
    or not-taken depending on its secret, and the spy's own branches then
    mispredict at a secret-dependent rate — observable in the spy's own
    execution time.  (This is also the substrate Spectre-style attacks
    poison, which is the paper's opening motivation.)  Core-local and
    time-multiplexed, the predictor is flushable state: closed by
    [flush_on_switch]. *)

val scenario : unit -> Attack.scenario
(** 2 symbols: the Trojan trains the spy's branch slots toward taken (1)
    or not-taken (0). *)

val slice : int
val pad : int
