open Tpro_hw
open Tpro_kernel

let slice = 20_000
let pad = 12_000

let base_work = 3_000
let unit_work = 500
let n_secrets = 8
let wcet = base_work + ((n_secrets - 1) * unit_work) + 200

let machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
  }

let build_with ~crypto ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let hi = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let lo = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  ignore (Kernel.spawn k hi (crypto ~secret));
  let net =
    Kernel.spawn k lo
      [|
        Program.Syscall (Program.Sys_recv { ep = 0 });
        Program.Read_clock;
        Program.Halt;
      |]
  in
  (k, net)

(* The leaky crypto component: running time encodes the secret. *)
let crypto ~secret =
  [|
    Program.Compute (base_work + (secret * unit_work));
    Program.Syscall (Program.Sys_send { ep = 0; msg = 0 });
    Program.Halt;
  |]

(* Application-level padding (Sect. 4.3): compute, then busy-pad to the
   WCET bound before sending. *)
let crypto_padded ~secret =
  let work = base_work + (secret * unit_work) in
  [|
    Program.Compute work;
    Program.Compute (wcet - work);
    Program.Syscall (Program.Sys_send { ep = 0; msg = 0 });
    Program.Halt;
  |]

let decode obs =
  match Prime_probe.clock_values obs with [ t ] -> t | _ -> -1

let scenario () =
  {
    Attack.name = "downgrader arrival time (Fig. 1)";
    symbols = List.init n_secrets (fun i -> i);
    build = build_with ~crypto;
    decode;
    max_steps = 100_000;
  }

let padded_scenario () =
  {
    Attack.name = "downgrader, WCET-padded crypto";
    symbols = List.init n_secrets (fun i -> i);
    build = build_with ~crypto:crypto_padded;
    decode;
    max_steps = 100_000;
  }
