(** End-to-end covert-channel transmission (experiment E14).

    Turns a raw scenario into a working communication protocol, the way
    the empirical timing-channel studies (Cock et al. CCS'14) evaluate
    channels: a *training* phase learns a nearest-centroid decoder from
    labelled transmissions, then a *message* is sent symbol by symbol over
    fresh noise (unseen latency-function seeds) and the symbol error rate
    and achieved bandwidth are reported. *)

open Tpro_kernel

type decoder
(** Maps a raw spy output to the most plausible input symbol. *)

val train :
  ?seeds:int list -> Attack.scenario -> cfg:Kernel.config -> decoder
(** Nearest-centroid decoder from labelled training transmissions
    (default training seeds 100..104). *)

val decode : decoder -> int -> int

type transmission = {
  message : int list;
  received : int list;
  symbol_errors : int;
  error_rate : float;
  mean_cycles_per_symbol : float;
  capacity_bits : float;       (** Blahut–Arimoto over the test samples *)
  bandwidth_bits_per_mcycle : float;
      (** capacity x 10^6 / cycles-per-symbol: leakage rate per simulated
          megacycle *)
}

val transmit :
  ?train_seeds:int list ->
  ?test_seed_base:int ->
  Attack.scenario ->
  cfg:Kernel.config ->
  message:int list ->
  transmission
(** Send [message] (symbols must be in the scenario's alphabet), one
    fresh seed per symbol starting at [test_seed_base] (default 200). *)

val random_message : ?seed:int -> Attack.scenario -> len:int -> int list

val pp_transmission : Format.formatter -> transmission -> unit
