(** The hyperthreading channel (Sect. 4.1, experiment E12).

    Two hardware threads of one physical core share all core-private
    micro-architectural state *concurrently*, so flushing — a defence for
    time-multiplexed state — cannot apply, and the L1 has too few colours
    to partition.  The paper's conclusion: "hyperthreading is
    fundamentally insecure, and multiple hardware threads must never be
    allocated to different security domains."

    The scenario runs Trojan and spy as sibling hyperthreads hammering
    the shared L1; with [smt:false] the same pair runs on two *physical*
    cores (separate L1s), the only real defence. *)

val scenario : smt:bool -> unit -> Attack.scenario
(** 5 symbols: the Trojan keeps a working set of [secret * 32] L1 lines
    hot while the spy primes and probes. *)
