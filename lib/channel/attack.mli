(** Generic covert/side-channel experiment harness.

    A scenario packages a Trojan/spy pair: [build] constructs a booted
    kernel for one (latency seed, secret) pair and returns the spy thread;
    [decode] turns the spy's observations into an output symbol.  The
    harness samples the channel across secrets and latency seeds — the
    model is deterministic, so the seeds of the *unspecified latency
    function* play the role of environmental noise — and estimates the
    channel matrix and its Shannon capacity.

    A defence works iff the measured capacity collapses to ~0 bits. *)

open Tpro_kernel

type scenario = {
  name : string;
  symbols : int list;  (** the Trojan's input alphabet *)
  build : cfg:Kernel.config -> seed:int -> secret:int -> Kernel.t * Thread.t;
  decode : Event.obs list -> int;
  max_steps : int;
}

type outcome = {
  scenario_name : string;
  samples : (int * int) list;  (** (secret, decoded output) *)
  capacity_bits : float;
  distinct_outputs : int;
}

val run_trial : scenario -> cfg:Kernel.config -> seed:int -> secret:int -> int
(** One end-to-end transmission; returns the decoded output symbol. *)

val run_trial_timed :
  scenario -> cfg:Kernel.config -> seed:int -> secret:int -> int * int
(** Like {!run_trial} but also returns the wall-clock cycles the machine
    consumed (max over cores) — the cost of one channel use. *)

val measure :
  ?seeds:int list -> scenario -> cfg:Kernel.config -> unit -> outcome
(** Run every (symbol, seed) pair (default seeds 0..9). *)

val measure_par :
  ?seeds:int list ->
  ?pool:Tpro_engine.Pool.t ->
  ?domains:int ->
  scenario ->
  cfg:Kernel.config ->
  unit ->
  outcome
(** Like {!measure}, but fans the (symbol, seed) trial grid out across a
    domain pool.  Every trial builds its own fresh kernel, so the outcome
    — samples (in canonical grid order), capacity and distinct-output
    count — is bit-identical to {!measure} for any pool size.  Pass
    [?pool] to reuse an existing pool, otherwise a transient pool of
    [?domains] (default {!Tpro_engine.Pool.recommended}) is created and
    shut down around the call. *)

val matrix : outcome -> Matrix.t

val pp_outcome : Format.formatter -> outcome -> unit
