(** Attacker calibration helpers.

    Real cache attackers discover the page colours of their own buffers by
    timing (eviction-set construction).  In the model we let attack code
    read its own virtual-to-physical mapping through the kernel — the same
    information, obtained without simulating the tedious calibration
    phase.  Only addresses belonging to the attacker's *own* domain are
    exposed. *)

open Tpro_kernel

val colour_of_vaddr : Kernel.t -> Domain.t -> int -> int option
(** LLC page colour of one of the domain's own virtual addresses. *)

val pages_of_colour :
  Kernel.t -> Domain.t -> vbase:int -> pages:int -> colour:int -> int list
(** Virtual base addresses, within [vbase, vbase + pages), of the pages
    whose frames have the given colour. *)

val pick_colour_pages :
  Kernel.t -> Domain.t -> vbase:int -> pages:int -> colour:int -> want:int ->
  int list
(** [want] page vaddrs of the requested colour; if the domain does not own
    enough pages of that colour (e.g. because colouring confined it
    elsewhere), pads with its remaining pages.  The attack code stays the
    same; the defence changes what it can reach. *)
