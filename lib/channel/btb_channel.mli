(** The branch-target-buffer channel (experiment E20).

    The BTB caches branch targets by pc — core-local, time-multiplexed
    state just like the direction predictor, and the other half of the
    substrate Spectre-style attacks poison.  A Trojan executes taken
    branches at one of two agreed tag groups depending on its secret,
    installing those targets; the spy then times one taken branch per
    tag of each group, and the group that redirects without a second
    misprediction penalty names the secret.

    The resource exists in the machine only through the registry
    ([btb_entries] in {!Tpro_hw.Machine.config}): digesting, the kernel's
    switch flush, the Mstate taxonomy and the exhaustive checks all pick
    it up with no per-layer wiring — which is exactly the extensibility
    claim this channel exercises.  Flushable state: closed by
    [flush_on_switch]. *)

val scenario : unit -> Attack.scenario
(** 2 symbols: the Trojan primes tag group 0 or group 1. *)

val slice : int
val pad : int
