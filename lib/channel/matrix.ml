type t = {
  input_syms : int array;
  output_syms : int array;
  probs : float array array; (* rows: inputs, cols: outputs *)
}

let of_samples samples =
  if samples = [] then invalid_arg "Matrix.of_samples: no samples";
  let distinct_sorted xs =
    List.sort_uniq compare xs |> Array.of_list
  in
  let input_syms = distinct_sorted (List.map fst samples) in
  let output_syms = distinct_sorted (List.map snd samples) in
  let index arr x =
    let rec go lo hi =
      if lo >= hi then invalid_arg "Matrix: symbol not found"
      else
        let mid = (lo + hi) / 2 in
        if arr.(mid) = x then mid else if arr.(mid) < x then go (mid + 1) hi
        else go lo mid
    in
    go 0 (Array.length arr)
  in
  let counts =
    Array.make_matrix (Array.length input_syms) (Array.length output_syms) 0
  in
  List.iter
    (fun (i, o) ->
      let r = index input_syms i and c = index output_syms o in
      counts.(r).(c) <- counts.(r).(c) + 1)
    samples;
  let probs =
    Array.map
      (fun row ->
        let n = Array.fold_left ( + ) 0 row in
        if n = 0 then Array.map (fun _ -> 0.) row
        else Array.map (fun c -> float_of_int c /. float_of_int n) row)
      counts
  in
  { input_syms; output_syms; probs }

let n_inputs t = Array.length t.input_syms
let n_outputs t = Array.length t.output_syms
let inputs t = Array.copy t.input_syms
let outputs t = Array.copy t.output_syms
let prob t i j = t.probs.(i).(j)
let row t i = Array.copy t.probs.(i)

let deterministic t =
  Array.for_all
    (fun row -> Array.exists (fun p -> p = 1.) row)
    t.probs

let constant t =
  n_outputs t = 1

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "        ";
  Array.iter (fun o -> Format.fprintf ppf "%8d" o) t.output_syms;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun i sym ->
      Format.fprintf ppf "in=%4d " sym;
      Array.iteri (fun j _ -> Format.fprintf ppf "%8.3f" t.probs.(i).(j))
        t.output_syms;
      Format.fprintf ppf "@,")
    t.input_syms;
  Format.fprintf ppf "@]"
