(** Integer-valued histograms for latency and timing measurements. *)

type t

val create : unit -> t

val add : t -> int -> unit

val count : t -> int -> int

val total : t -> int

val bins : t -> (int * int) list
(** (value, count) pairs, values ascending. *)

val distinct : t -> int

val min_value : t -> int option
val max_value : t -> int option

val mean : t -> float
val variance : t -> float
val stddev : t -> float

val quantile : t -> float -> int
(** [quantile t q] for [0 <= q <= 1]; raises [Invalid_argument] on an
    empty histogram. *)

val of_list : int list -> t

val pp : Format.formatter -> t -> unit
