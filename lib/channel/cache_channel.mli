(** Prime-and-probe cache channels (Sect. 3.1, experiments E2/E3).

    Two variants of the same attack:

    - {!l1_scenario}: through the *time-shared, core-private* L1 data
      cache.  The Trojan encodes a symbol in how many cache sets it
      touches during its slice; the spy primes the L1 before, probes
      after, and counts slow probes.  Closed by [flush_on_switch]
      (+ [pad_switch] to hide the flush itself).

    - {!llc_scenario}: through the *concurrently shared* last-level
      cache, where flushing is no defence (the paper: partitioning is the
      only option).  Trojan and spy agree on a page colour and collide
      there; the spy counts probes evicted to DRAM.  Closed by
      [colouring]. *)

open Tpro_hw

val l1_machine : seed:int -> Machine.config
val llc_machine : seed:int -> Machine.config

val l1_scenario : unit -> Attack.scenario
(** 8 symbols: the Trojan touches [secret * 32] lines. *)

val llc_scenario : unit -> Attack.scenario
(** 5 symbols: the Trojan touches [secret] pages of the agreed colour. *)

val slice : int
val pad : int
(** Shared scheduling parameters, exposed for the experiment tables. *)

val target_colour : int
(** The colour Trojan and spy agree to collide on in the LLC variant. *)
