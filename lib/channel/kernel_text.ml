open Tpro_hw
open Tpro_kernel

let slice = 20_000
let pad = 15_000

let machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
  }

let build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let trojan_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let call = if secret = 0 then Program.Sys_null else Program.Sys_info in
  let encode = Array.make 8 (Program.Syscall call) in
  ignore (Kernel.spawn k trojan_dom (Program.halted encode));
  let spy =
    Kernel.spawn k spy_dom
      [|
        Program.Read_clock;
        Program.Syscall Program.Sys_null;
        Program.Read_clock;
        Program.Syscall Program.Sys_info;
        Program.Read_clock;
        Program.Halt;
      |]
  in
  (k, spy)

(* Output: (cost of own info handler) - (cost of own null handler); warm
   handler text shows up as the smaller side. *)
let decode obs =
  match Prime_probe.clock_values obs with
  | [ t0; t1; t2 ] -> t2 - t1 - (t1 - t0)
  | _ -> -1

let scenario () =
  {
    Attack.name = "shared kernel text (Flush+Reload style)";
    symbols = [ 0; 1 ];
    build;
    decode;
    max_steps = 100_000;
  }
