open Tpro_hw
open Tpro_kernel

let slice = 20_000
let pad = 12_000

let machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
  }

(* The Trojan targets the middle of the spy's first slice.  Its arm
   syscall completes around [arm_done]; under padded scheduling the spy
   starts exactly at slice + pad, otherwise shortly after the Trojan
   blocks.  Attackers know the system configuration, so computing the
   delay from it is fair play. *)
let aim ~cfg =
  let arm_done = 4_500 in
  let spy_start =
    if cfg.Kernel.deterministic_delivery || cfg.Kernel.pad_switch then
      slice + pad
    else 9_000
  in
  max 1 (spy_start + 5_000 - arm_done)

let build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let trojan_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  Kernel.set_irq_owner k ~irq:1 ~dom:trojan_dom;
  let encode =
    if secret = 1 then
      [| Program.Syscall (Program.Sys_arm_irq { irq = 1; delay = aim ~cfg });
         Program.Halt |]
    else [| Program.Syscall Program.Sys_null; Program.Halt |]
  in
  ignore (Kernel.spawn k trojan_dom encode);
  let spy =
    Kernel.spawn k spy_dom
      [|
        Program.Read_clock;
        Program.Compute 10_000;
        Program.Read_clock;
        Program.Halt;
      |]
  in
  (k, spy)

let decode obs =
  match Prime_probe.clock_values obs with
  | [ t0; t1 ] -> t1 - t0
  | _ -> -1

let scenario () =
  {
    Attack.name = "interrupt channel";
    symbols = [ 0; 1 ];
    build;
    decode;
    max_steps = 100_000;
  }
