open Tpro_hw
open Tpro_kernel

let spy_buf = 0x2000_0000
let trojan_buf = 0x3000_0000
let line_size = 64

let machine ~smt ~seed =
  {
    Machine.default_config with
    Machine.n_cores = 2;
    smt;
    lat = Latency.with_seed Latency.default seed;
  }

let build ~smt ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~smt ~seed) cfg in
  let spy_dom = Kernel.create_domain k ~core:0 ~slice:1_000_000 ~pad_cycles:0 () in
  let trojan_dom =
    Kernel.create_domain k ~core:1 ~slice:1_000_000 ~pad_cycles:0 ()
  in
  Kernel.map_region k spy_dom ~vbase:spy_buf ~pages:4;
  Kernel.map_region k trojan_dom ~vbase:trojan_buf ~pages:4;
  (* the Trojan keeps a secret-sized working set hot for the whole
     duration of the spy's prime+probe *)
  let round =
    Program.concat
      [
        Prime_probe.touch_lines ~base:trojan_buf ~lines:(secret * 32)
          ~line_size;
        [| Program.Compute 200 |];
      ]
  in
  let encode = Program.concat (List.init 40 (fun _ -> round)) in
  ignore (Kernel.spawn k trojan_dom (Program.halted encode));
  let spy =
    Kernel.spawn k spy_dom
      (Program.concat
         [
           Prime_probe.prime ~base:spy_buf ~lines:256 ~line_size;
           Prime_probe.probe_shuffled ~base:spy_buf ~lines:256 ~line_size ();
           [| Program.Halt |];
         ])
  in
  (k, spy)

let scenario ~smt () =
  {
    Attack.name =
      (if smt then "hyperthread-shared L1 (concurrent)"
       else "same pair on separate physical cores");
    symbols = [ 0; 1; 2; 3; 4 ];
    build = (fun ~cfg ~seed ~secret -> build ~smt ~cfg ~seed ~secret);
    decode = (fun obs -> Prime_probe.slow_count_relative obs ~margin:15);
    max_steps = 200_000;
  }
