open Tpro_hw
open Tpro_kernel

let slice = 30_000
let pad = 15_000

let machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
  }

(* The predictor is indexed by (pc xor history); Trojan and spy agree on
   branch tags, and the Trojan hammers each tag hard enough to saturate
   the 2-bit counters regardless of the interleaved history bits. *)
let tags = [ 3; 5; 7; 11 ]
let rounds = 48

(* Gshare indexes the pattern table with (pc xor history), so the spy
   must recreate the Trojan's training-time history (all-taken = 0xFF)
   before each probed branch; a run of taken warm-up branches on a
   bystander tag does that. *)
let warmup_tag = 99

let warmup = Array.make 8 (Program.Branch { tag = warmup_tag; taken = true })

let build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let trojan_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let taken = secret = 1 in
  let train =
    Array.concat
      (List.init rounds (fun _ ->
           Array.of_list
             (List.map (fun tag -> Program.Branch { tag; taken }) tags)))
  in
  ignore (Kernel.spawn k trojan_dom (Program.halted train));
  (* spy: under history 0xFF, probe each agreed tag with a not-taken
     branch — it lands exactly in the slot the Trojan trained iff the
     Trojan trained with taken branches, and then mispredicts *)
  let probe =
    Array.concat
      (List.init 12 (fun i ->
           Array.append warmup
             [|
               Program.Branch
                 { tag = List.nth tags (i mod List.length tags); taken = false };
             |]))
  in
  let spy =
    Kernel.spawn k spy_dom
      (Program.concat
         [ [| Program.Read_clock |]; probe; [| Program.Read_clock; Program.Halt |] ])
  in
  (k, spy)

let decode obs =
  match Prime_probe.clock_values obs with
  | [ t0; t1 ] -> t1 - t0
  | _ -> -1

let scenario () =
  {
    Attack.name = "branch-predictor training channel";
    symbols = [ 0; 1 ];
    build;
    decode;
    max_steps = 100_000;
  }
