(** The shared-kernel-text channel (Sect. 4.2, experiment E5).

    Even read-only sharing of code is enough to leak (Gullasch et al.;
    Yarom & Falkner): when all domains execute the *same* physical kernel
    image, which handler windows are warm in the shared LLC reveals which
    traps another domain performed.  The Trojan encodes a bit by choosing
    between two system calls; the spy times both handlers and compares.
    Core-local flushing does not help (the leak is through the LLC);
    colouring of user memory does not help (kernel text is kernel-owned);
    only the kernel-clone mechanism closes it. *)


val scenario : unit -> Attack.scenario
(** 2 symbols: Trojan performs 8x [Sys_null] (0) or 8x [Sys_info] (1). *)

val slice : int
val pad : int
