open Tpro_hw
open Tpro_kernel

let slice = 20_000
let pad = 12_000

let lib_victim = 0x5000_0000 (* victim's view of the library *)
let lib_spy = 0x6000_0000 (* spy's view *)
let monitored_lines = 8

let machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
  }

let build ~shared ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let victim_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  Kernel.map_region k victim_dom ~vbase:lib_victim ~pages:1;
  if shared then
    Kernel.share_region k ~owner:victim_dom ~guest:spy_dom ~vbase:lib_victim
      ~pages:1 ~guest_vbase:lib_spy
  else Kernel.map_region k spy_dom ~vbase:lib_spy ~pages:1;
  (* victim: use the library — touch the secret-indexed line a few times *)
  let touch = Program.Load (lib_victim + (secret * 64)) in
  ignore
    (Kernel.spawn k victim_dom
       [| touch; Program.Compute 50; touch; Program.Halt |]);
  (* spy: flush the monitored lines, let the victim's slice pass, reload
     each line timed *)
  let flushes =
    Array.init monitored_lines (fun i -> Program.Clflush (lib_spy + (i * 64)))
  in
  let reloads =
    Array.init monitored_lines (fun i ->
        Program.Timed_load (lib_spy + (i * 64)))
  in
  let spy =
    Kernel.spawn k spy_dom
      (Program.concat
         [
           flushes;
           Prime_probe.filler ~cycles:(slice + 8_000) ~chunk:20;
           reloads;
           [| Program.Halt |];
         ])
  in
  (k, spy)

(* Decode: index of the fastest reload (the line the victim warmed), or
   [monitored_lines] when nothing stands out. *)
let decode obs =
  match Prime_probe.latencies obs with
  | [] -> -1
  | lats ->
    let arr = Array.of_list lats in
    let best = ref 0 in
    Array.iteri (fun i l -> if l < arr.(!best) then best := i) arr;
    let min_lat = arr.(!best) in
    let others =
      Array.to_list arr |> List.filteri (fun i _ -> i <> !best)
    in
    let next_best = List.fold_left min max_int others in
    if next_best - min_lat > 30 then !best else monitored_lines

let scenario ~shared () =
  {
    Attack.name =
      (if shared then "Flush+Reload on a shared library page"
       else "same attack against per-domain copies");
    symbols = List.init monitored_lines (fun i -> i);
    build = (fun ~cfg ~seed ~secret -> build ~shared ~cfg ~seed ~secret);
    decode;
    max_steps = 100_000;
  }
