(** The TLB channel (Sect. 5.3, experiment E8).

    The TLB is ASID-tagged, so entries of different domains never alias
    *functionally* (the Syeda & Klein consistency theorem).  But capacity
    contention still leaks: the Trojan touches many pages, evicting the
    spy's translations, and the spy's page-walk count reveals how many.
    ASID tagging alone is therefore no timing defence — the TLB is
    core-local time-shared state and must be flushed, exactly the paper's
    classification. *)

val scenario : unit -> Attack.scenario
(** 5 symbols: the Trojan touches [secret * 8] distinct pages of a
    32-entry TLB. *)

val slice : int
val pad : int
