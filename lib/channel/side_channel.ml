open Tpro_hw
open Tpro_kernel

let slice = 60_000
let pad = 20_000

let spy_buf = 0x2000_0000
let table = 0x5000_0000 (* the victim's lookup table: one page *)
let line_size = 64
(* Table entries sit 256 bytes (4 L1 sets) apart, starting 1 KiB into
   the page: sets 16..44, clear of the sets the kernel's own switch-path
   data accesses pollute (an attacker maps the noise floor during
   calibration and avoids it). *)
let table_offset = 1024
let stride = 256

let machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
  }

(* The victim's "encryption round": the same code for every secret — the
   secret sits in r0 and selects the table line. *)
let victim_program =
  Program.concat
    [
      Array.concat
        (List.init 8 (fun _ ->
             [|
               Program.Load_idx
                 { base = table + table_offset; index = 0; scale = stride };
               Program.Compute 50;
             |]));
      [| Program.Halt |];
    ]

let build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let victim_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  Kernel.map_region k spy_dom ~vbase:spy_buf ~pages:4;
  Kernel.map_region k victim_dom ~vbase:table ~pages:1;
  (* identical program, secret-dependent data *)
  ignore (Kernel.spawn k victim_dom ~regs:[| secret |] victim_program);
  let spy =
    Kernel.spawn k spy_dom
      (Program.concat
         [
           Prime_probe.prime ~base:spy_buf ~lines:256 ~line_size;
           Prime_probe.filler ~cycles:(slice + 10_000) ~chunk:20;
           Prime_probe.probe_shuffled ~base:spy_buf ~lines:256 ~line_size ();
           [| Program.Halt |];
         ])
  in
  (k, spy)

(* Decode: per-L1-set probe latency sums; the hottest set's index bits
   are the victim's table index.  The L1 set of an address is determined
   by its page-offset bits, which the spy knows from its own vaddrs. *)
let decode obs =
  let order = Prime_probe.shuffled_addrs ~base:spy_buf ~lines:256 ~line_size () in
  let lats = Array.of_list (Prime_probe.latencies obs) in
  if Array.length lats <> Array.length order then -1
  else begin
    let per_set = Array.make 64 0 in
    Array.iteri
      (fun i addr ->
        let set = (addr lsr 6) land 63 in
        per_set.(set) <- per_set.(set) + lats.(i))
      order;
    (* consider only the quiet sets the table can map to *)
    let first_set = table_offset lsr 6 in
    let sets_per_entry = stride lsr 6 in
    let best = ref first_set in
    for s = first_set to first_set + (8 * sets_per_entry) - 1 do
      if per_set.(s) > per_set.(!best) then best := s
    done;
    (!best - first_set) / sets_per_entry
  end

let scenario () =
  {
    Attack.name = "AES-style table-lookup side channel (victim uncooperative)";
    symbols = List.init 8 (fun i -> i);
    build;
    decode;
    max_steps = 200_000;
  }
