(** The downgrader scenario of Figure 1 and Sect. 3.2 (experiment E1).

    Hi is a trusted encryption component whose running time depends on the
    secret (an algorithmic channel, e.g. secret-dependent code paths in a
    crypto routine); Lo is the network stack receiving the ciphertext.
    The *arrival time* of the message leaks the secret unless delivery is
    made deterministic — the Cock et al. discipline: the switch to the
    receiver happens no earlier than the sender's policy-determined slice
    boundary ([deterministic_delivery] + [pad_switch]). *)


val scenario : unit -> Attack.scenario
(** 8 symbols: the crypto routine computes [base + secret * unit]
    cycles before handing off the ciphertext. *)

val padded_scenario : unit -> Attack.scenario
(** Variant in which Hi itself pads its computation to a WCET bound
    before sending (the Sect. 4.3 application-level defence) — closes the
    channel even under a leaky (non-deterministic-delivery) kernel. *)

val slice : int
val pad : int
val wcet : int
(** Worst-case execution time of the crypto routine (used by
    [padded_scenario]). *)
