open Tpro_hw
open Tpro_kernel

let slice = 60_000
let pad = 20_000

let spy_buf = 0x2000_0000
let trojan_buf = 0x3000_0000
let page = 4096

let machine ~seed =
  {
    Machine.default_config with
    Machine.tlb_capacity = 32;
    lat = Latency.with_seed Latency.default seed;
  }

(* Spy: warm its own 16 translations, bridge the slice boundary, then
   touch one line per page again, timed — a page walk (TLB miss) is an
   order of magnitude slower than a TLB hit. *)
let build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let trojan_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  Kernel.map_region k spy_dom ~vbase:spy_buf ~pages:16;
  Kernel.map_region k trojan_dom ~vbase:trojan_buf ~pages:40;
  let warm =
    Array.init 16 (fun i -> Program.Load (spy_buf + (i * page)))
  in
  (* probe in reverse warm order: a walk's TLB refill then evicts an
     already-probed (or equally stale) entry instead of cascading through
     the not-yet-probed ones, keeping the walk count proportional to the
     Trojan's evictions *)
  let probe =
    Array.init 16 (fun i -> Program.Timed_load (spy_buf + ((15 - i) * page)))
  in
  let spy =
    Kernel.spawn k spy_dom
      (Program.concat
         [ warm; Prime_probe.filler ~cycles:(slice + 10_000) ~chunk:20; probe;
           [| Program.Halt |] ])
  in
  let encode =
    Array.init (secret * 8) (fun i -> Program.Load (trojan_buf + (i * page)))
  in
  ignore (Kernel.spawn k trojan_dom (Program.halted encode));
  (k, spy)

let scenario () =
  {
    Attack.name = "TLB contention (ASID-tagged)";
    symbols = [ 0; 1; 2; 3; 4 ];
    build;
    (* a page walk adds the walk latency (40) on top of whatever the cache
       part costs, so walks stand out against the run's own baseline *)
    decode = (fun obs -> Prime_probe.slow_count_relative obs ~margin:20);
    max_steps = 200_000;
  }
