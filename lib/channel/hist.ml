type t = { counts : (int, int) Hashtbl.t; mutable n : int }

let create () = { counts = Hashtbl.create 64; n = 0 }

let add t x =
  let c = Option.value ~default:0 (Hashtbl.find_opt t.counts x) in
  Hashtbl.replace t.counts x (c + 1);
  t.n <- t.n + 1

let count t x = Option.value ~default:0 (Hashtbl.find_opt t.counts x)

let total t = t.n

let bins t =
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) t.counts []
  |> List.sort compare

let distinct t = Hashtbl.length t.counts

let min_value t =
  match bins t with [] -> None | (v, _) :: _ -> Some v

let max_value t =
  match List.rev (bins t) with [] -> None | (v, _) :: _ -> Some v

let mean t =
  if t.n = 0 then 0.
  else
    let s =
      Hashtbl.fold (fun v c acc -> acc +. (float_of_int v *. float_of_int c))
        t.counts 0.
    in
    s /. float_of_int t.n

let variance t =
  if t.n = 0 then 0.
  else begin
    let m = mean t in
    let s =
      Hashtbl.fold
        (fun v c acc ->
          let d = float_of_int v -. m in
          acc +. (d *. d *. float_of_int c))
        t.counts 0.
    in
    s /. float_of_int t.n
  end

let stddev t = sqrt (variance t)

let quantile t q =
  if t.n = 0 then invalid_arg "Hist.quantile: empty histogram";
  if q < 0. || q > 1. then invalid_arg "Hist.quantile: q out of range";
  let target = int_of_float (ceil (q *. float_of_int t.n)) in
  let target = max 1 (min t.n target) in
  let rec go acc = function
    | [] -> assert false
    | (v, c) :: rest -> if acc + c >= target then v else go (acc + c) rest
  in
  go 0 (bins t)

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{n=%d mean=%.1f sd=%.1f" (total t) (mean t) (stddev t);
  (match (min_value t, max_value t) with
  | Some lo, Some hi -> Format.fprintf ppf " min=%d max=%d" lo hi
  | _ -> ());
  Format.pp_print_string ppf "}"
