open Tpro_hw

type decoder = (int * float) list (* (symbol, centroid of its outputs) *)

let default_train_seeds = [ 100; 101; 102; 103; 104 ]

let train ?(seeds = default_train_seeds) scenario ~cfg =
  List.map
    (fun symbol ->
      let outputs =
        List.map
          (fun seed ->
            float_of_int (Attack.run_trial scenario ~cfg ~seed ~secret:symbol))
          seeds
      in
      let centroid =
        List.fold_left ( +. ) 0. outputs /. float_of_int (List.length outputs)
      in
      (symbol, centroid))
    scenario.Attack.symbols

let decode decoder output =
  let x = float_of_int output in
  match decoder with
  | [] -> invalid_arg "Protocol.decode: empty decoder"
  | (s0, c0) :: rest ->
    let best, _ =
      List.fold_left
        (fun (bs, bd) (s, c) ->
          let d = Float.abs (x -. c) in
          if d < bd then (s, d) else (bs, bd))
        (s0, Float.abs (x -. c0))
        rest
    in
    best

type transmission = {
  message : int list;
  received : int list;
  symbol_errors : int;
  error_rate : float;
  mean_cycles_per_symbol : float;
  capacity_bits : float;
  bandwidth_bits_per_mcycle : float;
}

let transmit ?train_seeds ?(test_seed_base = 200) scenario ~cfg ~message =
  List.iter
    (fun s ->
      if not (List.mem s scenario.Attack.symbols) then
        invalid_arg "Protocol.transmit: symbol outside the alphabet")
    message;
  let decoder = train ?seeds:train_seeds scenario ~cfg in
  let outcomes =
    List.mapi
      (fun i symbol ->
        let output, cycles =
          Attack.run_trial_timed scenario ~cfg ~seed:(test_seed_base + i)
            ~secret:symbol
        in
        (symbol, output, cycles))
      message
  in
  let received = List.map (fun (_, o, _) -> decode decoder o) outcomes in
  let symbol_errors =
    List.fold_left2
      (fun acc sent got -> if sent = got then acc else acc + 1)
      0 message received
  in
  let total_cycles =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 outcomes
  in
  let n = max 1 (List.length message) in
  let mean_cycles = float_of_int total_cycles /. float_of_int n in
  (* Capacity from a balanced sample — every symbol measured under the
     same seed set — to avoid the small-sample bias of estimating from
     one observation per (symbol, seed). *)
  let capacity =
    (Attack.measure
       ~seeds:(List.init 5 (fun i -> test_seed_base + i))
       scenario ~cfg ())
      .Attack.capacity_bits
  in
  {
    message;
    received;
    symbol_errors;
    error_rate = float_of_int symbol_errors /. float_of_int n;
    mean_cycles_per_symbol = mean_cycles;
    capacity_bits = capacity;
    bandwidth_bits_per_mcycle =
      (if mean_cycles > 0. then capacity *. 1e6 /. mean_cycles else 0.);
  }

let random_message ?(seed = 42) scenario ~len =
  let rng = Rng.create seed in
  let alphabet = Array.of_list scenario.Attack.symbols in
  List.init len (fun _ -> alphabet.(Rng.int rng (Array.length alphabet)))

let pp_transmission ppf t =
  Format.fprintf ppf
    "%d symbols, %d errors (%.1f%%), %.0f cycles/symbol, %.3f bits/use, %.1f bits/Mcycle"
    (List.length t.message) t.symbol_errors (100. *. t.error_rate)
    t.mean_cycles_per_symbol t.capacity_bits t.bandwidth_bits_per_mcycle
