open Tpro_hw
open Tpro_kernel

let slice = 60_000
let pad = 20_000
let target_colour = 3

let spy_buf = 0x2000_0000
let trojan_buf = 0x3000_0000
let line_size = 64
let lines_per_page = 64

let l1_machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
  }

(* Small LLC so a 4-page buffer can cover a whole colour group:
   256 sets x 4 ways x 64 B = 64 KiB, 4 page colours. *)
let llc_machine ~seed =
  {
    Machine.default_config with
    Machine.l1_geom = Cache.geometry ~sets:16 ~ways:2 ~line_bits:6 ();
    llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
    n_frames = 512;
    lat = Latency.with_seed Latency.default seed;
  }

(* The spy's program: prime, burn the rest of the slice (and the boundary)
   with fine-grained compute so the Trojan's slice passes, then probe in
   shuffled order. *)
let spy_program ~prime ~probe =
  Program.concat
    [ prime; Prime_probe.filler ~cycles:(slice + 10_000) ~chunk:20; probe;
      [| Program.Halt |] ]

let two_domains k =
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let trojan_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  (spy_dom, trojan_dom)

(* ------------------------- L1 variant ----------------------------- *)

let l1_build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(l1_machine ~seed) cfg in
  let spy_dom, trojan_dom = two_domains k in
  (* 4 pages = 256 lines: exactly fills a 64-set x 4-way L1 *)
  Kernel.map_region k spy_dom ~vbase:spy_buf ~pages:4;
  Kernel.map_region k trojan_dom ~vbase:trojan_buf ~pages:4;
  let prime = Prime_probe.prime ~base:spy_buf ~lines:256 ~line_size in
  let probe = Prime_probe.probe_shuffled ~base:spy_buf ~lines:256 ~line_size () in
  let spy = Kernel.spawn k spy_dom (spy_program ~prime ~probe) in
  let encode =
    Prime_probe.touch_lines ~base:trojan_buf ~lines:(secret * 32) ~line_size
  in
  ignore (Kernel.spawn k trojan_dom (Program.halted encode));
  (k, spy)

let l1_scenario () =
  {
    Attack.name = "L1 prime-and-probe (time-shared)";
    symbols = List.init 8 (fun i -> i);
    build = l1_build;
    decode = (fun obs -> Prime_probe.slow_count obs ~threshold:20);
    max_steps = 200_000;
  }

(* ------------------------- LLC variant ---------------------------- *)

let llc_build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(llc_machine ~seed) cfg in
  let spy_dom, trojan_dom = two_domains k in
  Kernel.map_region k spy_dom ~vbase:spy_buf ~pages:16;
  Kernel.map_region k trojan_dom ~vbase:trojan_buf ~pages:16;
  (* both parties calibrate towards the agreed colour; under colouring
     each is confined to its own colour and they stop colliding *)
  let spy_pages =
    Calibrate.pick_colour_pages k spy_dom ~vbase:spy_buf ~pages:16
      ~colour:target_colour ~want:4
  in
  let trojan_pages =
    Calibrate.pick_colour_pages k trojan_dom ~vbase:trojan_buf ~pages:16
      ~colour:target_colour ~want:4
  in
  let prime =
    Prime_probe.prime_pages ~page_vaddrs:spy_pages ~lines_per_page ~line_size
  in
  let probe =
    Prime_probe.probe_pages ~page_vaddrs:spy_pages ~lines_per_page ~line_size ()
  in
  let spy = Kernel.spawn k spy_dom (spy_program ~prime ~probe) in
  let rec take n = function
    | [] -> []
    | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs
  in
  let encode =
    Prime_probe.prime_pages
      ~page_vaddrs:(take secret trojan_pages)
      ~lines_per_page ~line_size
  in
  ignore (Kernel.spawn k trojan_dom (Program.halted encode));
  (k, spy)

let llc_scenario () =
  {
    Attack.name = "LLC prime-and-probe (shared)";
    symbols = [ 0; 1; 2; 3; 4 ];
    build = llc_build;
    decode = (fun obs -> Prime_probe.slow_count obs ~threshold:60);
    max_steps = 200_000;
  }
