let log2 x = log x /. log 2.

let entropy dist =
  let total = Array.fold_left ( +. ) 0. dist in
  if total <= 0. then 0.
  else
    Array.fold_left
      (fun acc p ->
        let p = p /. total in
        if p > 0. then acc -. (p *. log2 p) else acc)
      0. dist

let mutual_information ?prior m =
  let ni = Matrix.n_inputs m and no = Matrix.n_outputs m in
  let p =
    match prior with
    | Some p ->
      if Array.length p <> ni then
        invalid_arg "Capacity.mutual_information: prior size mismatch";
      p
    | None -> Array.make ni (1. /. float_of_int ni)
  in
  (* I(X;Y) = H(Y) - H(Y|X) *)
  let py = Array.make no 0. in
  for i = 0 to ni - 1 do
    for j = 0 to no - 1 do
      py.(j) <- py.(j) +. (p.(i) *. Matrix.prob m i j)
    done
  done;
  let hy = entropy py in
  let hy_given_x = ref 0. in
  for i = 0 to ni - 1 do
    hy_given_x := !hy_given_x +. (p.(i) *. entropy (Matrix.row m i))
  done;
  Float.max 0. (hy -. !hy_given_x)

let blahut_arimoto ?(max_iterations = 200) ?(epsilon = 1e-9) m =
  let ni = Matrix.n_inputs m and no = Matrix.n_outputs m in
  if ni <= 1 then 0.
  else begin
    let p = Array.make ni (1. /. float_of_int ni) in
    let capacity = ref 0. in
    (try
       for _ = 1 to max_iterations do
         (* q(j) = sum_i p(i) W(j|i) *)
         let q = Array.make no 0. in
         for i = 0 to ni - 1 do
           for j = 0 to no - 1 do
             q.(j) <- q.(j) +. (p.(i) *. Matrix.prob m i j)
           done
         done;
         (* D(i) = exp( sum_j W(j|i) ln (W(j|i)/q(j)) ) *)
         let d = Array.make ni 0. in
         for i = 0 to ni - 1 do
           let s = ref 0. in
           for j = 0 to no - 1 do
             let w = Matrix.prob m i j in
             if w > 0. && q.(j) > 0. then s := !s +. (w *. log (w /. q.(j)))
           done;
           d.(i) <- exp !s
         done;
         let z = ref 0. in
         for i = 0 to ni - 1 do
           z := !z +. (p.(i) *. d.(i))
         done;
         let lower = log !z /. log 2. in
         let upper =
           let best = ref neg_infinity in
           Array.iter (fun di -> if di > !best then best := di) d;
           log !best /. log 2.
         in
         capacity := lower;
         if upper -. lower < epsilon then raise Exit;
         for i = 0 to ni - 1 do
           p.(i) <- p.(i) *. d.(i) /. !z
         done
       done
     with Exit -> ());
    Float.max 0. !capacity
  end

let of_samples samples =
  match List.sort_uniq compare (List.map fst samples) with
  | [] | [ _ ] -> 0.
  | _ -> blahut_arimoto (Matrix.of_samples samples)
