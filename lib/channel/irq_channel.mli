(** The interrupt channel (Sect. 4.2, experiment E6).

    The Trojan programs a device so its completion interrupt fires while
    the victim (here the spy, measuring itself) executes; handling the
    interrupt steals cycles from the victim's measured interval.  The
    Trojan knows the system's scheduling parameters and aims the
    interrupt at the middle of the spy's slice.  Closed by interrupt
    partitioning: non-owned interrupts stay masked until the owner runs. *)


val scenario : unit -> Attack.scenario
(** 2 symbols: arm an interrupt into the spy's slice (1) or stay quiet
    (0). *)

val slice : int
val pad : int
