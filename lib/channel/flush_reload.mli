(** Flush+Reload on shared user memory (Yarom & Falkner 2014; experiment
    E13).

    When two domains map the *same physical page* (a shared library, a
    deduplicated page), the spy can flush a line and later reload it,
    timing the reload: a fast reload means the victim touched that line in
    between — address-resolution leakage at line granularity.

    Crucially, sharing punctures every OS defence: the shared frame has
    one colour, so colouring cannot separate the parties, and the LLC is
    not flushed.  The only defence is not to share (per-domain copies) —
    which is exactly what the kernel-clone mechanism does for the one
    image the kernel cannot avoid sharing, and what a time-protecting
    system must do for user memory too. *)

val scenario : shared:bool -> unit -> Attack.scenario
(** 8 symbols: the victim touches line [secret] of the library page.
    [shared:false] gives each party a private copy of the library (the
    defence). *)

val slice : int
val pad : int
