open Tpro_kernel

let touch_lines ~base ~lines ~line_size =
  Array.init lines (fun i -> Program.Load (base + (i * line_size)))

let prime = touch_lines

let probe ~base ~lines ~line_size =
  Array.init lines (fun i -> Program.Timed_load (base + (i * line_size)))

let write_lines ~base ~lines ~line_size =
  Array.init lines (fun i -> Program.Store (base + (i * line_size)))

let shuffle ~seed arr =
  let rng = Tpro_hw.Rng.create seed in
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Tpro_hw.Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let shuffled_addrs ?(seed = 0x5EED) ~base ~lines ~line_size () =
  shuffle ~seed (Array.init lines (fun i -> base + (i * line_size)))

let probe_shuffled ?seed ~base ~lines ~line_size () =
  Array.map
    (fun a -> Program.Timed_load a)
    (shuffled_addrs ?seed ~base ~lines ~line_size ())

let probe_pages ?(seed = 0x5EED) ~page_vaddrs ~lines_per_page ~line_size () =
  let addrs =
    Array.concat
      (List.map
         (fun base -> Array.init lines_per_page (fun i -> base + (i * line_size)))
         page_vaddrs)
  in
  Array.map (fun a -> Program.Timed_load a) (shuffle ~seed addrs)

let prime_pages ~page_vaddrs ~lines_per_page ~line_size =
  Array.concat
    (List.map
       (fun base ->
         Array.init lines_per_page (fun i ->
             Program.Load (base + (i * line_size))))
       page_vaddrs)

let filler ~cycles ~chunk =
  if chunk <= 0 then invalid_arg "Prime_probe.filler: chunk";
  let n = (cycles + chunk - 1) / chunk in
  Array.make n (Program.Compute chunk)

let latencies obs =
  List.filter_map
    (function Event.Latency l -> Some l | Event.Clock _ | Event.Recv _ -> None)
    obs

let slow_count obs ~threshold =
  List.length (List.filter (fun l -> l > threshold) (latencies obs))

let latency_sum obs = List.fold_left ( + ) 0 (latencies obs)

let slow_count_relative obs ~margin =
  match latencies obs with
  | [] -> 0
  | l ->
    let base = List.fold_left min max_int l in
    List.length (List.filter (fun x -> x > base + margin) l)

let clock_values obs =
  List.filter_map
    (function Event.Clock c -> Some c | Event.Latency _ | Event.Recv _ -> None)
    obs
