(** Channel matrices.

    A covert or side channel is characterised by the conditional
    distribution P(output | input): the Trojan's symbol in, the spy's
    measurement out.  Built from empirical samples, it is the input to the
    capacity estimators — the methodology of Cock et al. (CCS'14). *)

type t

val of_samples : (int * int) list -> t
(** [(input symbol, observed output)] pairs.  Raises [Invalid_argument] on
    an empty list. *)

val n_inputs : t -> int
val n_outputs : t -> int

val inputs : t -> int array
(** Distinct input symbols, ascending. *)

val outputs : t -> int array

val prob : t -> int -> int -> float
(** [prob t i j]: P(output index [j] | input index [i]). *)

val row : t -> int -> float array

val deterministic : t -> bool
(** Every input produces exactly one output value. *)

val constant : t -> bool
(** All inputs produce the same single output — a dead channel. *)

val pp : Format.formatter -> t -> unit
