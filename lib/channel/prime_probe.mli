(** Program fragments for cache attacks (Sect. 3.1).

    Prime-and-probe (Percival 2005; Osvik et al. 2006): the spy fills a
    cache region with its own lines (prime), lets the victim run, then
    re-walks the buffer timing each access (probe) — a slow access means
    the victim evicted that line, revealing which sets it touched. *)

open Tpro_kernel

val touch_lines : base:int -> lines:int -> line_size:int -> Program.t
(** Plain loads over [lines] consecutive cache lines from [base]. *)

val prime : base:int -> lines:int -> line_size:int -> Program.t
(** Identical to [touch_lines]; named for the attack phase. *)

val probe : base:int -> lines:int -> line_size:int -> Program.t
(** Timed loads over the same region. *)

val shuffled_addrs :
  ?seed:int -> base:int -> lines:int -> line_size:int -> unit -> int array
(** The (deterministic) probe order used by {!probe_shuffled} — the
    decoder replays it to map each latency back to its address. *)

val probe_shuffled :
  ?seed:int -> base:int -> lines:int -> line_size:int -> unit -> Program.t
(** Timed loads in a pseudo-random (but fixed) order, so the stride
    prefetcher cannot mask evictions — the standard countermeasure real
    attackers use against hardware prefetching. *)

val probe_pages :
  ?seed:int -> page_vaddrs:int list -> lines_per_page:int -> line_size:int ->
  unit -> Program.t
(** Shuffled timed loads covering every line of the given pages. *)

val prime_pages :
  page_vaddrs:int list -> lines_per_page:int -> line_size:int -> Program.t
(** Plain loads covering every line of the given pages. *)

val write_lines : base:int -> lines:int -> line_size:int -> Program.t
(** Stores (used by Trojans that dirty the cache, e.g. for the
    flush-latency channel E4). *)

val filler : cycles:int -> chunk:int -> Program.t
(** Pure-compute padding totalling roughly [cycles], in [chunk]-sized
    instructions (the fine granularity lets the preemption timer interrupt
    it promptly). *)

val slow_count : Event.obs list -> threshold:int -> int
(** Number of [Latency] observations strictly above [threshold] — the
    spy's standard decoder. *)

val slow_count_relative : Event.obs list -> margin:int -> int
(** Number of latencies more than [margin] above the run's own minimum —
    robust to configuration-dependent base latency (e.g. whether the
    probe's cache lines survived in the LLC). *)

val latency_sum : Event.obs list -> int

val latencies : Event.obs list -> int list

val clock_values : Event.obs list -> int list
