type entry = {
  cname : string;
  scenario : unit -> Attack.scenario;
  leaky : bool;
}

(* Ordered roughly by cycles per transmitted symbol (E16's cost table):
   the fuzzer draws low indices more often, so cheap channels dominate
   the capacity-oracle trial budget. *)
let all =
  [
    { cname = "kernel_text"; scenario = Kernel_text.scenario; leaky = true };
    { cname = "btb"; scenario = Btb_channel.scenario; leaky = true };
    { cname = "tlb"; scenario = Tlb_channel.scenario; leaky = true };
    { cname = "bp"; scenario = Bp_channel.scenario; leaky = true };
    { cname = "irq"; scenario = Irq_channel.scenario; leaky = true };
    { cname = "downgrader"; scenario = Downgrader.scenario; leaky = true };
    { cname = "side"; scenario = Side_channel.scenario; leaky = true };
    { cname = "l1"; scenario = Cache_channel.l1_scenario; leaky = true };
    { cname = "llc"; scenario = Cache_channel.llc_scenario; leaky = true };
  ]

let find n = List.find_opt (fun e -> e.cname = n) all
