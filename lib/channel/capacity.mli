(** Channel-capacity estimation.

    [mutual_information] gives the leakage under a uniform input prior;
    [blahut_arimoto] computes the Shannon capacity C = max_p I(X;Y) — the
    upper bound on leakage per channel use, the figure of merit used by
    the seL4 timing-channel studies (Cock et al. 2014; Ge et al. 2019).
    A perfectly closed channel has capacity 0 bits. *)

val entropy : float array -> float
(** Shannon entropy in bits of a (possibly unnormalised) distribution. *)

val mutual_information : ?prior:float array -> Matrix.t -> float
(** I(X;Y) in bits.  Default prior: uniform over the matrix's inputs. *)

val blahut_arimoto : ?max_iterations:int -> ?epsilon:float -> Matrix.t -> float
(** Channel capacity in bits (defaults: 200 iterations, 1e-9 tolerance). *)

val of_samples : (int * int) list -> float
(** Convenience: build the matrix and return its Blahut–Arimoto
    capacity; 0 if all samples share one input symbol. *)
