open Tpro_hw
open Tpro_kernel

let slice = 30_000
let pad = 15_000

(* The default machine plus a BTB — configured purely through
   [btb_entries]; everything else (digesting, flushing, the taxonomy)
   picks the new resource up from the registry. *)
let machine ~seed =
  {
    Machine.default_config with
    Machine.lat = Latency.with_seed Latency.default seed;
    btb_entries = Some 64;
  }

(* Branch pc is tag*4 and the BTB is direct-mapped on (pc lsr 2) mod 64,
   so tags index the BTB directly; the two groups occupy disjoint BTB
   slots.  The Trojan executes taken branches at group [secret]'s tags,
   installing their targets; the spy then times one taken branch per tag
   of each group.  A probe whose target is already cached redirects
   immediately, one whose target is absent pays a second misprediction
   penalty — so the cheaper group names the secret. *)
let group0 = [ 17; 19; 23; 29 ]
let group1 = [ 33; 37; 41; 43 ]
let rounds = 24

let build ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~seed) cfg in
  let trojan_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let spy_dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let tags = if secret = 1 then group1 else group0 in
  let train =
    Array.concat
      (List.init rounds (fun _ ->
           Array.of_list
             (List.map (fun tag -> Program.Branch { tag; taken = true }) tags)))
  in
  ignore (Kernel.spawn k trojan_dom (Program.halted train));
  let probe tags =
    Array.of_list
      (List.map (fun tag -> Program.Branch { tag; taken = true }) tags)
  in
  let spy =
    Kernel.spawn k spy_dom
      (Program.concat
         [
           [| Program.Read_clock |];
           probe group0;
           [| Program.Read_clock |];
           probe group1;
           [| Program.Read_clock; Program.Halt |];
         ])
  in
  (k, spy)

(* Three clock reads bracket the two probe phases; the signed difference
   of the phase durations flips with the trained group. *)
let decode obs =
  match Prime_probe.clock_values obs with
  | [ t0; t1; t2 ] -> (t1 - t0) - (t2 - t1)
  | _ -> min_int

let scenario () =
  {
    Attack.name = "branch-target-buffer priming channel";
    symbols = [ 0; 1 ];
    build;
    decode;
    max_steps = 100_000;
  }
