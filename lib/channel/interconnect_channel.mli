(** The stateless-interconnect channel (Sect. 2, experiment E9).

    Trojan and spy run *concurrently on different cores*.  The Trojan
    modulates its memory traffic; the spy measures its own DRAM access
    latencies, which include queueing on the shared interconnect.  No OS
    mechanism closes this channel — the paper explicitly scopes it out —
    so its capacity survives full time protection.  Hypothetical hardware
    bandwidth partitioning (strict TDMA) does close it; both interconnect
    modes are exposed here to reproduce the two halves of the claim. *)

open Tpro_hw

val scenario : bus:Interconnect.mode -> unit -> Attack.scenario
(** 2 symbols: hammer the memory bus (1) or idle-compute (0). *)

val shared_bus : Interconnect.mode
val tdma_bus : Interconnect.mode

val mba_bus : Interconnect.mode
(** Intel MBA-style approximate per-domain bandwidth cap over a shared
    queue — reduces the channel but does not close it (the paper's
    footnote in Sect. 2). *)
