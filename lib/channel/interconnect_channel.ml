open Tpro_hw
open Tpro_kernel

let shared_bus = Interconnect.Shared
let tdma_bus = Interconnect.Partitioned { slot = 128; n_domains = 2 }

let mba_bus =
  Interconnect.Throttled { window = 1_024; max_per_window = 6; n_domains = 2 }

let spy_buf = 0x2000_0000
let trojan_buf = 0x3000_0000
let page = 4096

let machine ~bus ~seed =
  {
    Machine.default_config with
    Machine.n_cores = 2;
    bus_mode = bus;
    bus_service = 96;
    lat = Latency.with_seed Latency.default seed;
  }

(* Cold accesses: one distinct line per page, so every access goes to
   DRAM through the interconnect. *)
let cold_addrs ~buf ~n =
  List.init n (fun i -> buf + (i * page) + (i mod 64 * 64))

let build ~bus ~cfg ~seed ~secret =
  let k = Kernel.create ~machine_config:(machine ~bus ~seed) cfg in
  let spy_dom = Kernel.create_domain k ~core:0 ~slice:1_000_000 ~pad_cycles:0 () in
  let trojan_dom = Kernel.create_domain k ~core:1 ~slice:1_000_000 ~pad_cycles:0 () in
  Kernel.map_region k spy_dom ~vbase:spy_buf ~pages:32;
  Kernel.map_region k trojan_dom ~vbase:trojan_buf ~pages:32;
  let hammer =
    Array.of_list
      (List.concat
         [
           List.map (fun a -> Program.Load a) (cold_addrs ~buf:trojan_buf ~n:32);
           List.map
             (fun a -> Program.Load (a + 2048))
             (cold_addrs ~buf:trojan_buf ~n:32);
           List.map
             (fun a -> Program.Load (a + 1024))
             (cold_addrs ~buf:trojan_buf ~n:32);
         ])
  in
  let quiet = [| Program.Compute (96 * 250) |] in
  ignore
    (Kernel.spawn k trojan_dom
       (Program.halted (if secret = 1 then hammer else quiet)));
  let probe =
    Array.of_list
      (List.map (fun a -> Program.Timed_load a) (cold_addrs ~buf:spy_buf ~n:32))
  in
  let spy = Kernel.spawn k spy_dom (Program.halted probe) in
  (k, spy)

(* Bucket the total latency: jitter contributes tens of cycles, queueing
   contributes hundreds. *)
let decode obs = Prime_probe.latency_sum obs / 256

let scenario ~bus () =
  {
    Attack.name =
      (match bus with
      | Interconnect.Shared -> "stateless interconnect (shared bus)"
      | Interconnect.Partitioned _ -> "interconnect with TDMA partitioning"
      | Interconnect.Throttled _ ->
        "interconnect with MBA-style approximate throttling");
    symbols = [ 0; 1 ];
    build = (fun ~cfg ~seed ~secret -> build ~bus ~cfg ~seed ~secret);
    decode;
    max_steps = 200_000;
  }
