(** A true side channel: the AES-style table-lookup victim (Sect. 3.1).

    Unlike the covert channels, the victim here does not cooperate — its
    *program text is identical for every secret*; the secret is data (an
    initial register value) used to index a lookup table, exactly the
    paper's "the encoding is implicit in Hi's normal execution (e.g. via
    a secret-derived array index)", the access pattern of an AES T-table
    implementation (Osvik et al. 2006).

    The spy primes the L1, lets the victim's slice pass, probes in a
    deterministic shuffled order, and reports the *set index* with the
    slowest probes: "the address of the missing access reveals the index
    bits of Hi's access".  Closed by flushing — the defence for
    time-shared core-private state. *)

val scenario : unit -> Attack.scenario
(** 8 symbols: the secret selects one of 8 table lines, 512 bytes (8 L1
    sets) apart. *)

val victim_program : Tpro_kernel.Program.t
(** The fixed victim code, exposed to make "same program, different
    data" visible. *)

val slice : int
val pad : int
