open Tpro_kernel

let colour_of_vaddr k dom vaddr =
  match Kernel.vaddr_to_paddr k dom vaddr with
  | None -> None
  | Some paddr ->
    let frame = paddr lsr Kernel.page_bits k in
    Some (Frame_alloc.colour_of_frame (Kernel.allocator k) frame)

let pages_of_colour k dom ~vbase ~pages ~colour =
  let page = 1 lsl Kernel.page_bits k in
  List.filter_map
    (fun i ->
      let va = vbase + (i * page) in
      match colour_of_vaddr k dom va with
      | Some c when c = colour -> Some va
      | Some _ | None -> None)
    (List.init pages (fun i -> i))

let pick_colour_pages k dom ~vbase ~pages ~colour ~want =
  let page = 1 lsl Kernel.page_bits k in
  let preferred = pages_of_colour k dom ~vbase ~pages ~colour in
  let rest =
    List.filter_map
      (fun i ->
        let va = vbase + (i * page) in
        if List.mem va preferred then None else Some va)
      (List.init pages (fun i -> i))
  in
  let rec take n = function
    | [] -> []
    | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs
  in
  take want (preferred @ rest)
