(** Campaign jobs a serve daemon accepts over the wire.

    A job is an idempotent unit of campaign work: a client-chosen id
    (the idempotency key — resubmitting an id never runs the work
    twice), a deadline in fuel units enforced by the supervisor's
    watchdog, and a kind.  Every kind is a pure function of its fields,
    so a job re-executed after a crash-restart produces a result
    byte-identical to the first run — the property the serve daemon's
    zero-loss/zero-duplicate recovery contract rests on. *)

type kind =
  | Ping  (** liveness probe; the cheapest possible job *)
  | Spin of int
      (** burn exactly [n] fuel units — the load-generator's calibrated
          synthetic job, and (with [n] beyond the deadline) the hung-job
          fault of the injection matrix *)
  | Fuzz of { seed : int; idx : int; mutant : Tpro_fuzz.Scenario.mutant }
      (** one differential-oracle fuzz trial, as [tpro fuzz] runs *)
  | Topo of {
      seed : int;
      idx : int;
      max_domains : int;
      max_cores : int;
      mutant : Tpro_fuzz.Scenario.mutant;
    }  (** one pairwise topology sweep, as [tpro topo] runs *)
  | Prove of { preset : string; seed : int; secrets : int list }
      (** one latency seed's theorem evidence
          ({!Tpro_secmodel.Theorem.collect}), serialised *)
  | Table of { id : string; seeds : int list }
      (** one experiment table, serialised with
          {!Time_protection.Table.serialise} *)

type t = { id : string; deadline : int; kind : kind }
(** [deadline = 0] means "use the server's default". *)

val token_ok : string -> bool
(** Valid job id / tenant name: nonempty, printable, no whitespace. *)

val kind_to_string : kind -> string
(** One space-separated line, no newlines; round-trips through
    {!kind_of_string}. *)

val kind_of_string : string -> (kind, string) result

val execute :
  fuel:Tpro_engine.Supervisor.Fuel.t -> kind -> (string, string) result
(** Run the job, burning [fuel] roughly proportionally to the work (the
    deadline gauge).  [Ok payload] is the deterministic result —
    ["pass"]/["fail <msg>"] for oracle trials, the serialised table or
    evidence for sweeps.  [Error reason] is a rejection the job itself
    diagnosed (unknown preset, unknown experiment id); it never
    raises except through the fuel gauge. *)

val bench_kind : string -> (int -> kind, string) result
(** Parse a load-generator kind spec — ["ping"], ["spin:N"],
    ["fuzz:SEED"], ["topo:SEED"] — into a function from job index to
    kind (the index varies the trial, so a burst sweeps distinct
    scenarios). *)
