(* The serve client: blocking socket I/O, a bounded submission window,
   and a recovery loop that treats every connection failure the same
   way — reconnect, resubmit whatever has no result, dedup by id. *)

module Frame = Tpro_engine.Frame

type report = {
  total : int;
  results : (string * Wire.outcome) list;
  duration : float;
  latencies : float array;
  busy_retries : int;
  reconnects : int;
  duplicate_deliveries : int;
  recoveries : float list;
}

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | (_ : Sys.signal_behavior) -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                      *)

type conn = { fd : Unix.file_descr; dec : Frame.Decoder.t }

let connect_once ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error e

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring fd s off (len - off) with
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> Error `Drop
      | n -> go (off + n)
  in
  go 0

(* Pop one response, reading (with a stall timeout) as needed.  Any
   decode error — torn frame, bad CRC — is a drop: the stream cannot
   be resynchronised, only replaced. *)
let rec read_response c ~timeout =
  match Frame.Decoder.pop c.dec with
  | Error _ -> Error `Drop
  | Ok (Some payload) -> (
    match Wire.response_of_payload payload with
    | Ok r -> Ok r
    | Error _ -> Error `Drop)
  | Ok None -> (
    match Unix.select [ c.fd ] [] [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> read_response c ~timeout
    | [], _, _ -> Error `Drop
    | _ -> (
      let buf = Bytes.create 65536 in
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error (EINTR, _, _) -> read_response c ~timeout
      | exception Unix.Unix_error _ -> Error `Drop
      | 0 -> Error `Drop
      | n ->
        Frame.Decoder.feed c.dec (Bytes.sub_string buf 0 n);
        read_response c ~timeout))

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Connect + hello, retrying while the server is down or restarting. *)
let connect_and_hello ~socket ~tenant ~connect_timeout ~op_timeout =
  let t0 = Unix.gettimeofday () in
  let rec attempt () =
    if Unix.gettimeofday () -. t0 > connect_timeout then
      Error
        (Printf.sprintf "could not reach the server at %s within %.0fs" socket
           connect_timeout)
    else
      match connect_once ~socket with
      | Error (ECONNREFUSED | ENOENT | EAGAIN | EINTR) ->
        Unix.sleepf 0.05;
        attempt ()
      | Error e -> Error ("connect: " ^ Unix.error_message e)
      | Ok fd -> (
        let c = { fd; dec = Wire.decoder () } in
        match write_all fd (Wire.encode_request (Wire.Hello tenant)) with
        | Error `Drop ->
          close_conn c;
          Unix.sleepf 0.05;
          attempt ()
        | Ok () -> (
          match read_response c ~timeout:op_timeout with
          | Ok (Wire.Welcome _) -> Ok c
          | Ok _ ->
            close_conn c;
            Error "protocol: expected a welcome"
          | Error `Drop ->
            close_conn c;
            Unix.sleepf 0.05;
            attempt ()))
  in
  attempt ()

(* ------------------------------------------------------------------ *)
(* The campaign loop                                                    *)

type jstate = Unsent | Sent | Acked | Resolved

let run_jobs ~socket ~tenant ?(window = 64) ?(op_timeout = 30.)
    ?(connect_timeout = 30.) ?progress jobs =
  ignore_sigpipe ();
  let t0 = Unix.gettimeofday () in
  let order = Array.of_list jobs in
  let n = Array.length order in
  let index = Hashtbl.create (max 16 (2 * n)) in
  let dup_id = ref None in
  Array.iteri
    (fun i j ->
      let id = j.Job.id in
      if Hashtbl.mem index id then dup_id := Some id
      else Hashtbl.replace index id i)
    order;
  match !dup_id with
  | Some id -> Error ("duplicate job id in the submission set: " ^ id)
  | None ->
    let state = Array.make n Unsent in
    let results : Wire.outcome option array = Array.make n None in
    let submit_t = Array.make n 0. in
    let latency = Array.make n 0. in
    let to_send = Queue.create () in
    Array.iteri (fun i _ -> Queue.push i to_send) order;
    let conn = ref None in
    let outstanding = ref 0 in
    let connected_once = ref false in
    let reconnects = ref 0 in
    let busy_retries = ref 0 in
    let dups = ref 0 in
    let done_count = ref 0 in
    let recoveries = ref [] in
    let drop_at = ref None in
    let pause = ref 0. in
    let err = ref None in

    let drop () =
      match !conn with
      | None -> ()
      | Some c ->
        close_conn c;
        conn := None;
        drop_at := Some (Unix.gettimeofday ());
        outstanding := 0;
        Queue.clear to_send;
        Array.iteri
          (fun i _ ->
            if Option.is_none results.(i) then begin
              state.(i) <- Unsent;
              Queue.push i to_send
            end)
          order
    in

    let ensure_conn () =
      match !conn with
      | Some c -> Ok c
      | None -> (
        match connect_and_hello ~socket ~tenant ~connect_timeout ~op_timeout with
        | Error e -> Error e
        | Ok c ->
          if !connected_once then incr reconnects;
          connected_once := true;
          conn := Some c;
          Ok c)
    in

    let handle_response = function
      | Wire.Welcome _ | Wire.Pong | Wire.Bye | Wire.Stats_reply _ -> ()
      | Wire.Error_msg m -> err := Some ("server refused: " ^ m)
      | Wire.Accepted id -> (
        match Hashtbl.find_opt index id with
        | Some i when state.(i) = Sent ->
          state.(i) <- Acked;
          decr outstanding
        | _ -> ())
      | Wire.Busy { id; retry_after_ms; _ } -> (
        match Hashtbl.find_opt index id with
        | Some i when state.(i) = Sent ->
          state.(i) <- Unsent;
          decr outstanding;
          incr busy_retries;
          Queue.push i to_send;
          pause :=
            Float.max !pause (Float.min 2. (float_of_int retry_after_ms /. 1000.))
        | _ -> ())
      | Wire.Result { id; outcome } -> (
        match Hashtbl.find_opt index id with
        | None -> ()
        | Some i -> (
          match results.(i) with
          | Some prev ->
            (* At-least-once delivery collapses to exactly-once here —
               and a byte-differing duplicate means the server re-ran a
               "deterministic" job and got different bytes: fatal. *)
            incr dups;
            if prev <> outcome then
              err :=
                Some
                  (Printf.sprintf
                     "duplicate result for %s differs from the first copy" id)
          | None ->
            if state.(i) = Sent then decr outstanding;
            state.(i) <- Resolved;
            results.(i) <- Some outcome;
            let now = Unix.gettimeofday () in
            latency.(i) <- now -. submit_t.(i);
            incr done_count;
            (match !drop_at with
            | Some t ->
              recoveries := (now -. t) :: !recoveries;
              drop_at := None
            | None -> ());
            (match progress with
            | Some f -> f ~done_:!done_count ~total:n
            | None -> ())))
    in

    let rec loop () =
      if Option.is_some !err || !done_count >= n then ()
      else begin
        if !pause > 0. then begin
          Unix.sleepf !pause;
          pause := 0.
        end;
        (match ensure_conn () with
        | Error e -> err := Some e
        | Ok c -> (
          let dropped = ref false in
          (try
             while !outstanding < window && not (Queue.is_empty to_send) do
               let i = Queue.pop to_send in
               if Option.is_none results.(i) && state.(i) = Unsent then begin
                 if submit_t.(i) = 0. then submit_t.(i) <- Unix.gettimeofday ();
                 match
                   write_all c.fd (Wire.encode_request (Wire.Submit order.(i)))
                 with
                 | Ok () ->
                   state.(i) <- Sent;
                   incr outstanding
                 | Error `Drop ->
                   dropped := true;
                   raise Exit
               end
             done
           with Exit -> ());
          if !dropped then drop ()
          else
            match read_response c ~timeout:op_timeout with
            | Ok r ->
              handle_response r;
              if Option.is_some !err then drop ()
            | Error `Drop -> drop ()));
        loop ()
      end
    in
    loop ();
    (match !conn with Some c -> close_conn c | None -> ());
    (match !err with
    | Some e -> Error e
    | None ->
      Ok
        {
          total = n;
          results =
            Array.to_list
              (Array.mapi
                 (fun i j -> (j.Job.id, Option.get results.(i)))
                 order);
          duration = Unix.gettimeofday () -. t0;
          latencies = latency;
          busy_retries = !busy_retries;
          reconnects = !reconnects;
          duplicate_deliveries = !dups;
          recoveries = List.rev !recoveries;
        })

(* ------------------------------------------------------------------ *)
(* One-shot helpers                                                     *)

let one_shot ~socket ~request ~want =
  ignore_sigpipe ();
  match connect_once ~socket with
  | Error e -> Error ("connect: " ^ Unix.error_message e)
  | Ok fd -> (
    let c = { fd; dec = Wire.decoder () } in
    let finish r =
      close_conn c;
      r
    in
    match write_all fd (Wire.encode_request request) with
    | Error `Drop -> finish (Error "server dropped the request")
    | Ok () ->
      let rec await () =
        match read_response c ~timeout:10. with
        | Error `Drop -> Error "server dropped before replying"
        | Ok r -> ( match want r with Some v -> Ok v | None -> await ())
      in
      finish (await ()))

let server_stats ~socket =
  one_shot ~socket ~request:Wire.Get_stats ~want:(function
    | Wire.Stats_reply kvs -> Some kvs
    | _ -> None)

let shutdown_server ~socket =
  ignore_sigpipe ();
  match connect_once ~socket with
  | Error e -> Error ("connect: " ^ Unix.error_message e)
  | Ok fd -> (
    let c = { fd; dec = Wire.decoder () } in
    match write_all fd (Wire.encode_request Wire.Shutdown) with
    | Error `Drop ->
      close_conn c;
      Error "server dropped the shutdown request"
    | Ok () ->
      (* Bye, or the server closing first: both count as done. *)
      let r =
        match read_response c ~timeout:10. with
        | Ok Wire.Bye | Error `Drop -> Ok ()
        | Ok _ -> Ok ()
      in
      close_conn c;
      r)

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let bench_json ~kind ~jobs report =
  let lat = Array.copy report.latencies in
  Array.sort compare lat;
  let ms x = x *. 1000. in
  let worst_recovery =
    List.fold_left Float.max 0. report.recoveries
  in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"serve\",";
      Printf.sprintf "  \"kind\": %S," kind;
      Printf.sprintf "  \"jobs\": %d," jobs;
      Printf.sprintf "  \"duration_s\": %.3f," report.duration;
      Printf.sprintf "  \"jobs_per_sec\": %.1f,"
        (if report.duration > 0. then float_of_int jobs /. report.duration
         else 0.);
      Printf.sprintf "  \"latency_p50_ms\": %.3f," (ms (percentile lat 50.));
      Printf.sprintf "  \"latency_p99_ms\": %.3f," (ms (percentile lat 99.));
      Printf.sprintf "  \"busy_retries\": %d," report.busy_retries;
      Printf.sprintf "  \"reconnects\": %d," report.reconnects;
      Printf.sprintf "  \"duplicate_deliveries\": %d,"
        report.duplicate_deliveries;
      Printf.sprintf "  \"recovery_worst_s\": %.3f" worst_recovery;
      "}";
      "";
    ]

let dump_results report =
  String.concat ""
    (List.map
       (fun (id, outcome) ->
         Wire.response_to_payload (Wire.Result { id; outcome }) ^ "\n")
       report.results)
