(** The serve daemon's wire protocol.

    Requests and responses travel over a Unix-domain socket as
    {!Tpro_engine.Frame}s (magic ["tpro-wire"], version 1): a
    length-framed, CRC-32-checked envelope whose payload is one
    inspectable text line.  Free-text fields (result payloads, error
    messages) sit in final position and are {!Tpro_engine.Frame.escape}d
    so multi-line results — serialised experiment tables, theorem
    evidence — fit the line.  A frame that fails its CRC, promises an
    oversized payload or stops mid-stream is a typed decode error, never
    a crash: the peer is dropped (server side) or the connection retried
    (client side). *)

val magic : string
val version : int

type request =
  | Hello of string  (** tenant name: fairness and re-attach key *)
  | Submit of Job.t
  | Ping
  | Get_stats
  | Shutdown  (** graceful: drain writes, keep the journal, exit 0 *)

type failure_code =
  | Deadline  (** the fuel watchdog cut the job off *)
  | Raised  (** the job raised on every attempt (after retries) *)
  | Rejected  (** the job itself refused (unknown preset/experiment) *)

val failure_code_to_string : failure_code -> string

type outcome = (string, failure_code * string) result
(** A completed job: [Ok payload] or [Error (code, detail)].  Exactly
    what the journal's completion records persist. *)

type response =
  | Welcome of int  (** protocol version *)
  | Accepted of string  (** job id: durably journaled, will run *)
  | Busy of { id : string; retry_after_ms : int; queued : int }
      (** typed overload rejection: the accept queue is full; retry
          after the hint.  The job was {e not} accepted. *)
  | Result of { id : string; outcome : outcome }
  | Pong
  | Stats_reply of (string * string) list  (** ordered key/value pairs *)
  | Error_msg of string
      (** protocol violation (bad frame payload, submit before hello);
          the server closes the connection after sending it *)
  | Bye

val request_to_payload : request -> string
val request_of_payload : string -> (request, string) result
val response_to_payload : response -> string
val response_of_payload : string -> (response, string) result

val encode_request : request -> string
(** The full frame ({!Tpro_engine.Frame.encode} of the payload). *)

val encode_response : response -> string

val decoder : unit -> Tpro_engine.Frame.Decoder.t
(** A stream decoder configured with this protocol's magic/version. *)
