(* Wire protocol: framed single-line messages.  The first token is the
   verb; free text rides escaped in final position. *)

module Frame = Tpro_engine.Frame

let magic = "tpro-wire"
let version = 1

type request =
  | Hello of string
  | Submit of Job.t
  | Ping
  | Get_stats
  | Shutdown

type failure_code = Deadline | Raised | Rejected

let failure_code_to_string = function
  | Deadline -> "deadline"
  | Raised -> "raised"
  | Rejected -> "rejected"

let failure_code_of_string = function
  | "deadline" -> Some Deadline
  | "raised" -> Some Raised
  | "rejected" -> Some Rejected
  | _ -> None

type outcome = (string, failure_code * string) result

type response =
  | Welcome of int
  | Accepted of string
  | Busy of { id : string; retry_after_ms : int; queued : int }
  | Result of { id : string; outcome : outcome }
  | Pong
  | Stats_reply of (string * string) list
  | Error_msg of string
  | Bye

(* ------------------------------------------------------------------ *)

let request_to_payload = function
  | Hello tenant -> "hello " ^ tenant
  | Submit { Job.id; deadline; kind } ->
    Printf.sprintf "submit %s %d %s" id deadline (Job.kind_to_string kind)
  | Ping -> "ping"
  | Get_stats -> "stats"
  | Shutdown -> "shutdown"

let split_verb line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let request_of_payload line =
  let verb, rest = split_verb line in
  match verb with
  | "hello" ->
    if Job.token_ok rest then Ok (Hello rest)
    else Error "hello wants one tenant token"
  | "submit" -> (
    let id, rest = split_verb rest in
    let deadline, kind_line = split_verb rest in
    if not (Job.token_ok id) then Error "bad job id"
    else
      match int_of_string_opt deadline with
      | None -> Error "bad deadline"
      | Some d when d < 0 -> Error "negative deadline"
      | Some deadline -> (
        match Job.kind_of_string kind_line with
        | Ok kind -> Ok (Submit { Job.id; deadline; kind })
        | Error e -> Error e))
  | "ping" -> Ok Ping
  | "stats" -> Ok Get_stats
  | "shutdown" -> Ok Shutdown
  | _ -> Error ("unknown request verb: " ^ verb)

(* ------------------------------------------------------------------ *)

let response_to_payload = function
  | Welcome v -> Printf.sprintf "welcome %d" v
  | Accepted id -> "accepted " ^ id
  | Busy { id; retry_after_ms; queued } ->
    Printf.sprintf "busy %s %d %d" id retry_after_ms queued
  | Result { id; outcome = Ok payload } ->
    Printf.sprintf "result %s ok %s" id (Frame.escape payload)
  | Result { id; outcome = Error (code, detail) } ->
    Printf.sprintf "result %s failed %s %s" id (failure_code_to_string code)
      (Frame.escape detail)
  | Pong -> "pong"
  | Stats_reply kvs ->
    "stats"
    ^ String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) kvs)
  | Error_msg m -> "error " ^ Frame.escape m
  | Bye -> "bye"

let unescaped what s =
  match Frame.unescape s with
  | Some u -> Ok u
  | None -> Error ("malformed escape in " ^ what)

let ( let* ) = Result.bind

let response_of_payload line =
  let verb, rest = split_verb line in
  match verb with
  | "welcome" -> (
    match int_of_string_opt rest with
    | Some v -> Ok (Welcome v)
    | None -> Error "bad welcome version")
  | "accepted" ->
    if Job.token_ok rest then Ok (Accepted rest) else Error "bad accepted id"
  | "busy" -> (
    match String.split_on_char ' ' rest with
    | [ id; ms; queued ] -> (
      match (int_of_string_opt ms, int_of_string_opt queued) with
      | Some retry_after_ms, Some queued ->
        Ok (Busy { id; retry_after_ms; queued })
      | _ -> Error "bad busy hint")
    | _ -> Error "bad busy reply")
  | "result" -> (
    let id, rest = split_verb rest in
    let status, rest = split_verb rest in
    if not (Job.token_ok id) then Error "bad result id"
    else
      match status with
      | "ok" ->
        let* payload = unescaped "result payload" rest in
        Ok (Result { id; outcome = Ok payload })
      | "failed" -> (
        let code, detail = split_verb rest in
        match failure_code_of_string code with
        | None -> Error ("unknown failure code: " ^ code)
        | Some code ->
          let* detail = unescaped "failure detail" detail in
          Ok (Result { id; outcome = Error (code, detail) }))
      | _ -> Error ("unknown result status: " ^ status))
  | "pong" -> Ok Pong
  | "stats" ->
    let kvs =
      List.filter_map
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i ->
            Some
              ( String.sub tok 0 i,
                String.sub tok (i + 1) (String.length tok - i - 1) )
          | None -> None)
        (String.split_on_char ' ' rest)
    in
    Ok (Stats_reply kvs)
  | "error" ->
    let* m = unescaped "error message" rest in
    Ok (Error_msg m)
  | "bye" -> Ok Bye
  | _ -> Error ("unknown response verb: " ^ verb)

let encode_request r = Frame.encode ~magic ~version (request_to_payload r)
let encode_response r = Frame.encode ~magic ~version (response_to_payload r)

(* Wire frames are small except result payloads carrying serialised
   tables/evidence; 16 MiB is far above any real message and small
   enough to reject a garbage length immediately. *)
let decoder () =
  Frame.Decoder.create ~max_payload:(16 * 1024 * 1024) ~magic ~version ()
