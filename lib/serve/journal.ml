(* Append-only framed journal with group fsync and torn-tail recovery. *)

module Frame = Tpro_engine.Frame
module Checkpoint = Tpro_engine.Checkpoint

let magic = "tpro-journal"
let version = 1

type record =
  | Accepted of { job : Job.t; tenant : string }
  | Done of { id : string; outcome : Wire.outcome }

type t = { path : string; oc : out_channel; mutable dirty : bool }

(* Record payloads reuse the wire line shapes so the journal is
   inspectable with the same eyes as a protocol trace. *)
let record_to_payload = function
  | Accepted { job = { Job.id; deadline; kind }; tenant } ->
    Printf.sprintf "job %s %s %d %s" id tenant deadline
      (Job.kind_to_string kind)
  | Done { id; outcome = Ok payload } ->
    Printf.sprintf "done %s ok %s" id (Frame.escape payload)
  | Done { id; outcome = Error (code, detail) } ->
    Printf.sprintf "done %s failed %s %s"
      (id : string)
      (Wire.failure_code_to_string code)
      (Frame.escape detail)

let split_verb line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let record_of_payload line =
  let verb, rest = split_verb line in
  match verb with
  | "job" -> (
    let id, rest = split_verb rest in
    let tenant, rest = split_verb rest in
    let deadline, kind_line = split_verb rest in
    if not (Job.token_ok id && Job.token_ok tenant) then
      Error "bad job record tokens"
    else
      match int_of_string_opt deadline with
      | None -> Error "bad job record deadline"
      | Some deadline -> (
        match Job.kind_of_string kind_line with
        | Ok kind -> Ok (Accepted { job = { Job.id; deadline; kind }; tenant })
        | Error e -> Error e))
  | "done" -> (
    (* piggyback on the wire parser: a done record is a result line *)
    match Wire.response_of_payload ("result " ^ rest) with
    | Ok (Wire.Result { id; outcome }) -> Ok (Done { id; outcome })
    | Ok _ -> Error "done record parsed as a non-result"
    | Error e -> Error e)
  | _ -> Error ("unknown journal record verb: " ^ verb)

type recovery = {
  records : record list;
  dropped : bool;
  notes : string list;
}

let scan contents =
  let rec go pos acc =
    if pos >= String.length contents then (List.rev acc, pos, None)
    else
      match Frame.decode_prefix ~magic ~version ~pos contents with
      | `Frame (payload, next) -> (
        match record_of_payload payload with
        | Ok r -> go next (r :: acc)
        | Error e -> (List.rev acc, pos, Some ("unparseable record: " ^ e)))
      | `Incomplete ->
        (List.rev acc, pos, Some "torn record at the journal tail")
      | `Error e -> (List.rev acc, pos, Some (Frame.error_to_string e))
  in
  go 0 []

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

let open_ ~path ~resume =
  let contents = if resume then read_file path else "" in
  let records, valid_len, damage = scan contents in
  let notes =
    match damage with
    | None ->
      if resume && records <> [] then
        [
          Printf.sprintf "journal replayed: %d record%s" (List.length records)
            (if List.length records = 1 then "" else "s");
        ]
      else []
    | Some what ->
      [
        Printf.sprintf
          "journal damaged after %d good record%s (%s); dropped the suffix \
           and resumed from the valid prefix"
          (List.length records)
          (if List.length records = 1 then "" else "s")
          what;
      ]
  in
  (* Rewrite-free recovery: truncate back to the valid prefix and keep
     appending.  A fresh (non-resume) open truncates to zero. *)
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Unix.ftruncate fd valid_len;
  ignore (Unix.lseek fd valid_len Unix.SEEK_SET);
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  Checkpoint.fsync_dir (Filename.dirname path);
  ({ path; oc; dirty = false }, { records; dropped = damage <> None; notes })

let append t r =
  output_string t.oc (Frame.encode ~magic ~version (record_to_payload r));
  t.dirty <- true

let append_torn t r =
  output_string t.oc (Frame.encode_torn ~magic ~version (record_to_payload r));
  t.dirty <- true

let sync t =
  if t.dirty then begin
    flush t.oc;
    Unix.fsync (Unix.descr_of_out_channel t.oc);
    t.dirty <- false
  end

let close t =
  sync t;
  close_out_noerr t.oc
