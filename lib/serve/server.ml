(* The serve daemon: one single-threaded select loop owning every
   connection, with campaign jobs executed in batches on the shared
   supervised pool between I/O rounds.

   Durability discipline: journal appends accumulate during a read
   phase; one group fsync covers the round; acknowledgements are staged
   and only enqueued onto sockets after that sync.  Completion records
   sync before their results are delivered.  So everything a client has
   seen is already on disk — a SIGKILL at any instant is recoverable. *)

module Frame = Tpro_engine.Frame
module Supervisor = Tpro_engine.Supervisor
module Fuel = Supervisor.Fuel

type fault =
  | No_fault
  | Torn_result_frame
  | Drop_after_accept
  | Torn_journal_crash
  | Spawn_failure

type config = {
  socket : string;
  journal : string option;
  resume : bool;
  queue_max : int;
  default_deadline : int;
  retries : int;
  backoff : (float * float) option;
  domains : int option;
  batch : int;
  outq_limit : int;
  fault : fault;
}

let default_config ~socket =
  {
    socket;
    journal = None;
    resume = false;
    queue_max = 65536;
    default_deadline = 50_000_000;
    retries = 1;
    backoff = Some (0.05, 1.0);
    domains = None;
    batch = 32;
    outq_limit = 1024 * 1024;
    fault = No_fault;
  }

type stats = {
  accepted : int;
  completed : int;
  failed : int;
  busy_rejections : int;
  idempotent_hits : int;
  executed : int;
  tenants : int;
  recovered_jobs : int;
  recovered_results : int;
  degraded : bool;
  notes : string list;
}

(* ------------------------------------------------------------------ *)
(* State                                                                *)

type conn = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  outq : string Queue.t;  (** encoded frames; head may be part-written *)
  mutable out_off : int;
  mutable out_bytes : int;
  mutable tenant : string option;
  mutable closing : bool;  (** flush the outq, then close *)
  mutable dead : bool;
}

type entry = {
  job : Job.t;
  owner : string;
  mutable state : [ `Queued | `Done of Wire.outcome ];
}

type tenant = {
  name : string;
  pending : entry Queue.t;
  undelivered : string Queue.t;  (** completed job ids awaiting delivery *)
  mutable in_rr : bool;
  mutable conn : conn option;
}

type server = {
  cfg : config;
  listen_fd : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  tenants : (string, tenant) Hashtbl.t;
  rr : string Queue.t;  (** round-robin rotation of tenants with work *)
  jobs : (string, entry) Hashtbl.t;
  journal : Journal.t option;
  sup : Supervisor.t;
  mutable staged : (conn * Wire.response) list;  (** reversed *)
  mutable pending_total : int;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable busy : int;
  mutable idem : int;
  mutable executed : int;
  recovered_jobs : int;
  recovered_results : int;
  mutable notes : string list;  (** reversed *)
  mutable stop : bool;
  mutable stop_rounds : int;
  mutable fault_fired : bool;
}

exception Crash
(* Torn_journal_crash's exit: unwind without flushing or delivering,
   exactly as a power cut after the torn write would. *)

let note srv line = srv.notes <- line :: srv.notes

let tenant_of srv name =
  match Hashtbl.find_opt srv.tenants name with
  | Some t -> t
  | None ->
    let t =
      {
        name;
        pending = Queue.create ();
        undelivered = Queue.create ();
        in_rr = false;
        conn = None;
      }
    in
    Hashtbl.replace srv.tenants name t;
    t

let enqueue_job srv t e =
  Queue.push e t.pending;
  srv.pending_total <- srv.pending_total + 1;
  if not t.in_rr then begin
    t.in_rr <- true;
    Queue.push t.name srv.rr
  end

let close_conn srv conn =
  if not conn.dead then begin
    conn.dead <- true;
    Hashtbl.remove srv.conns conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    match conn.tenant with
    | None -> ()
    | Some name -> (
      match Hashtbl.find_opt srv.tenants name with
      | Some t -> (
        match t.conn with Some c when c == conn -> t.conn <- None | _ -> ())
      | None -> ())
  end

let enqueue_raw conn frame =
  if not conn.dead then begin
    Queue.push frame conn.outq;
    conn.out_bytes <- conn.out_bytes + String.length frame
  end

let stage srv conn resp = srv.staged <- (conn, resp) :: srv.staged

(* Group commit: one fsync covers every append of the round, then the
   staged acknowledgements (now durable) hit the sockets in order. *)
let commit_staged srv =
  (match srv.journal with Some j -> Journal.sync j | None -> ());
  List.iter
    (fun (conn, resp) -> enqueue_raw conn (Wire.encode_response resp))
    (List.rev srv.staged);
  srv.staged <- []

(* ------------------------------------------------------------------ *)
(* Request handling (read phase)                                        *)

let stats_kvs srv =
  [
    ("proto", string_of_int Wire.version);
    ("accepted", string_of_int srv.accepted);
    ("completed", string_of_int srv.completed);
    ("failed", string_of_int srv.failed);
    ("busy", string_of_int srv.busy);
    ("pending", string_of_int srv.pending_total);
    ("executed", string_of_int srv.executed);
    ("idempotent", string_of_int srv.idem);
    ("tenants", string_of_int (Hashtbl.length srv.tenants));
    ("recovered_jobs", string_of_int srv.recovered_jobs);
    ("recovered_results", string_of_int srv.recovered_results);
    ("degraded", string_of_bool (Supervisor.degraded srv.sup));
  ]

let handle_request srv conn = function
  | Wire.Hello name ->
    let t = tenant_of srv name in
    (match t.conn with
    | Some old when old != conn && not old.dead -> old.closing <- true
    | _ -> ());
    t.conn <- Some conn;
    conn.tenant <- Some name;
    stage srv conn (Wire.Welcome Wire.version)
  | Wire.Ping -> stage srv conn Wire.Pong
  | Wire.Get_stats -> stage srv conn (Wire.Stats_reply (stats_kvs srv))
  | Wire.Shutdown ->
    stage srv conn Wire.Bye;
    srv.stop <- true
  | Wire.Submit job -> (
    match conn.tenant with
    | None ->
      stage srv conn (Wire.Error_msg "submit before hello");
      conn.closing <- true
    | Some owner -> (
      match Hashtbl.find_opt srv.jobs job.Job.id with
      | Some e -> (
        (* Idempotency: the id is the key; never run twice. *)
        srv.idem <- srv.idem + 1;
        match e.state with
        | `Done outcome -> stage srv conn (Wire.Result { id = job.Job.id; outcome })
        | `Queued -> stage srv conn (Wire.Accepted job.Job.id))
      | None ->
        if srv.pending_total >= srv.cfg.queue_max then begin
          srv.busy <- srv.busy + 1;
          let retry_after_ms = max 10 (min 5000 (srv.pending_total / 8)) in
          stage srv conn
            (Wire.Busy
               { id = job.Job.id; retry_after_ms; queued = srv.pending_total })
        end
        else begin
          let deadline =
            if job.Job.deadline = 0 then srv.cfg.default_deadline
            else job.Job.deadline
          in
          let job = { job with Job.deadline } in
          let e = { job; owner; state = `Queued } in
          Hashtbl.replace srv.jobs job.Job.id e;
          enqueue_job srv (tenant_of srv owner) e;
          (match srv.journal with
          | Some j -> Journal.append j (Journal.Accepted { job; tenant = owner })
          | None -> ());
          srv.accepted <- srv.accepted + 1;
          stage srv conn (Wire.Accepted job.Job.id);
          if srv.cfg.fault = Drop_after_accept && not srv.fault_fired then begin
            srv.fault_fired <- true;
            note srv "fault: dropped a connection right after an accept";
            conn.closing <- true
          end
        end))

let rec drain_frames srv conn =
  if (not conn.closing) && not conn.dead then
    match Frame.Decoder.pop conn.dec with
    | Ok None -> ()
    | Ok (Some payload) ->
      (match Wire.request_of_payload payload with
      | Ok req -> handle_request srv conn req
      | Error e ->
        stage srv conn (Wire.Error_msg ("bad request: " ^ e));
        conn.closing <- true);
      drain_frames srv conn
    | Error e ->
      stage srv conn (Wire.Error_msg ("bad frame: " ^ Frame.error_to_string e));
      conn.closing <- true

let read_conn srv conn buf =
  let continue = ref true in
  while !continue && (not conn.closing) && not conn.dead do
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ ->
      close_conn srv conn;
      continue := false
    | 0 ->
      close_conn srv conn;
      continue := false
    | n ->
      Frame.Decoder.feed conn.dec (Bytes.sub_string buf 0 n);
      drain_frames srv conn
  done

(* ------------------------------------------------------------------ *)
(* Scheduling and execution                                             *)

(* One job per tenant per pass: a tenant with work left rotates to the
   back of the ring, so a huge tenant interleaves with small ones. *)
let pick_batch srv =
  let acc = ref [] in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < srv.cfg.batch do
    if Queue.is_empty srv.rr then continue := false
    else begin
      let name = Queue.pop srv.rr in
      let t = tenant_of srv name in
      if Queue.is_empty t.pending then t.in_rr <- false
      else begin
        let e = Queue.pop t.pending in
        srv.pending_total <- srv.pending_total - 1;
        incr n;
        acc := e :: !acc;
        if Queue.is_empty t.pending then t.in_rr <- false
        else Queue.push name srv.rr
      end
    end
  done;
  List.rev !acc

let outcome_of_settled = function
  | Ok (Ok payload) -> Ok payload
  | Ok (Error reason) -> Error (Wire.Rejected, reason)
  | Error (Supervisor.Fuel_exhausted { budget; _ }) ->
    Error
      (Wire.Deadline, Printf.sprintf "deadline: fuel budget %d exhausted" budget)
  | Error (Supervisor.Task_raised { attempts; message; _ }) ->
    Error
      ( Wire.Raised,
        Printf.sprintf "raised after %d attempt%s: %s" attempts
          (if attempts = 1 then "" else "s")
          message )
  | Error (Supervisor.Duplicate_submission _) ->
    Error (Wire.Raised, "internal: duplicate batch key")

let run_batch srv =
  let picked = pick_batch srv in
  if picked <> [] then begin
    srv.executed <- srv.executed + List.length picked;
    let tasks = List.mapi (fun i e -> (i, e)) picked in
    let settled =
      Supervisor.run srv.sup ~chunk:1 ~label:"serve" ~key:fst
        (fun ~fuel:_ (_, e) ->
          (* Each attempt runs under its own gauge sized to the job's
             deadline; the supervisor maps the trip to Fuel_exhausted. *)
          let gauge = Fuel.make (Some e.job.Job.deadline) in
          Job.execute ~fuel:gauge e.job.Job.kind)
        tasks
    in
    List.iter2
      (fun e settled ->
        let outcome = outcome_of_settled settled in
        (match srv.journal with
        | Some j ->
          let r = Journal.Done { id = e.job.Job.id; outcome } in
          if srv.cfg.fault = Torn_journal_crash && not srv.fault_fired then begin
            srv.fault_fired <- true;
            Journal.append_torn j r;
            Journal.sync j;
            raise Crash
          end
          else Journal.append j r
        | None -> ());
        e.state <- `Done outcome;
        srv.completed <- srv.completed + 1;
        (match outcome with
        | Error _ -> srv.failed <- srv.failed + 1
        | Ok _ -> ());
        Queue.push e.job.Job.id (tenant_of srv e.owner).undelivered)
      picked settled;
    match srv.journal with Some j -> Journal.sync j | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Delivery (with backpressure)                                         *)

let deliver_one srv conn id =
  match (Hashtbl.find_opt srv.jobs id : entry option) with
  | Some { state = `Done outcome; _ } ->
    let resp = Wire.Result { id; outcome } in
    if srv.cfg.fault = Torn_result_frame && not srv.fault_fired then begin
      srv.fault_fired <- true;
      note srv "fault: tore a result frame mid-payload";
      enqueue_raw conn
        (Frame.encode_torn ~magic:Wire.magic ~version:Wire.version
           (Wire.response_to_payload resp));
      (* close after the tear so the client sees EOF mid-frame *)
      conn.closing <- true
    end
    else enqueue_raw conn (Wire.encode_response resp)
  | _ -> ()

(* Push parked results while the connection's write queue is under the
   cap.  Results beyond the cap stay parked: a slow reader only delays
   itself, never the pool or other tenants. *)
let try_deliver srv t =
  match t.conn with
  | None -> ()
  | Some conn ->
    if (not conn.dead) && not conn.closing then begin
      let continue = ref true in
      while
        !continue
        && (not (Queue.is_empty t.undelivered))
        && conn.out_bytes < srv.cfg.outq_limit
        && not conn.closing
      do
        deliver_one srv conn (Queue.pop t.undelivered);
        if conn.dead then continue := false
      done
    end

(* ------------------------------------------------------------------ *)
(* Writes                                                               *)

let flush_conn srv conn =
  let continue = ref true in
  while !continue && (not conn.dead) && not (Queue.is_empty conn.outq) do
    let head = Queue.peek conn.outq in
    let len = String.length head - conn.out_off in
    match Unix.write_substring conn.fd head conn.out_off len with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ ->
      close_conn srv conn;
      continue := false
    | n ->
      conn.out_bytes <- conn.out_bytes - n;
      if n = len then begin
        ignore (Queue.pop conn.outq);
        conn.out_off <- 0
      end
      else conn.out_off <- conn.out_off + n
  done;
  if (not conn.dead) && conn.closing && Queue.is_empty conn.outq then
    close_conn srv conn

(* ------------------------------------------------------------------ *)
(* Startup: journal replay                                              *)

let replay srv records =
  let requeued = ref 0 in
  let replayed = ref 0 in
  List.iter
    (function
      | Journal.Accepted { job; tenant } ->
        if not (Hashtbl.mem srv.jobs job.Job.id) then
          Hashtbl.replace srv.jobs job.Job.id
            { job; owner = tenant; state = `Queued }
      | Journal.Done { id; outcome } -> (
        match Hashtbl.find_opt srv.jobs id with
        | Some e ->
          if e.state = `Queued then incr replayed;
          e.state <- `Done outcome
        | None -> note srv ("journal: completion for unknown job " ^ id)))
    records;
  (* Unfinished jobs re-queue in their original accept order; finished
     ones park for delivery when their tenant reconnects. *)
  List.iter
    (function
      | Journal.Accepted { job; tenant } -> (
        match Hashtbl.find_opt srv.jobs job.Job.id with
        | Some ({ state = `Queued; _ } as e) ->
          incr requeued;
          enqueue_job srv (tenant_of srv tenant) e
        | Some { state = `Done _; _ } ->
          Queue.push job.Job.id (tenant_of srv tenant).undelivered
        | None -> ())
      | Journal.Done _ -> ())
    records;
  (!requeued, !replayed)

(* ------------------------------------------------------------------ *)
(* The loop                                                             *)

let all_conns srv = Hashtbl.fold (fun _ c acc -> c :: acc) srv.conns []

let accept_loop srv =
  let continue = ref true in
  while !continue do
    match Unix.accept srv.listen_fd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error _ -> continue := false
    | fd, _ ->
      Unix.set_nonblock fd;
      let conn =
        {
          fd;
          dec = Wire.decoder ();
          outq = Queue.create ();
          out_off = 0;
          out_bytes = 0;
          tenant = None;
          closing = false;
          dead = false;
        }
      in
      Hashtbl.replace srv.conns fd conn
  done

let drained srv =
  srv.staged = []
  && Hashtbl.fold (fun _ c acc -> acc && Queue.is_empty c.outq) srv.conns true

let loop srv =
  let buf = Bytes.create 65536 in
  (* After a shutdown request: flush what clients are owed, with a
     bounded number of grace rounds so a vanished client cannot wedge
     the exit. *)
  while (not (srv.stop && drained srv)) && not (srv.stop && srv.stop_rounds > 400)
  do
    if srv.stop then srv.stop_rounds <- srv.stop_rounds + 1;
    let conns = all_conns srv in
    let rfds =
      (if srv.stop then [] else [ srv.listen_fd ])
      @ List.filter_map
          (fun c -> if c.closing then None else Some c.fd)
          conns
    in
    let wfds =
      List.filter_map
        (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
        conns
    in
    let timeout =
      if srv.pending_total > 0 && not srv.stop then 0.0
      else if srv.stop then 0.02
      else 0.25
    in
    (match Unix.select rfds wfds [] timeout with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, _, _ ->
      if List.mem srv.listen_fd readable then accept_loop srv;
      List.iter
        (fun fd ->
          if fd != srv.listen_fd then
            match Hashtbl.find_opt srv.conns fd with
            | Some c -> read_conn srv c buf
            | None -> ())
        readable);
    commit_staged srv;
    if (not srv.stop) && srv.pending_total > 0 then run_batch srv;
    Hashtbl.iter (fun _ t -> try_deliver srv t) srv.tenants;
    List.iter
      (fun c -> if (not c.dead) && not (Queue.is_empty c.outq) then flush_conn srv c)
      (all_conns srv)
  done

let run ?(on_ready = fun () -> ()) cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | (_ : Sys.signal_behavior) -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  if Sys.file_exists cfg.socket then (
    try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let journal, recovery =
    match cfg.journal with
    | None -> (None, None)
    | Some path ->
      let j, r = Journal.open_ ~path ~resume:cfg.resume in
      (Some j, Some r)
  in
  let sup =
    Supervisor.create ?domains:cfg.domains ~retries:cfg.retries
      ?backoff:cfg.backoff
      ~fault:
        (if cfg.fault = Spawn_failure then Supervisor.Spawn_failure
         else Supervisor.No_fault)
      ()
  in
  let srv =
    {
      cfg;
      listen_fd;
      conns = Hashtbl.create 16;
      tenants = Hashtbl.create 16;
      rr = Queue.create ();
      jobs = Hashtbl.create 1024;
      journal;
      sup;
      staged = [];
      pending_total = 0;
      accepted = 0;
      completed = 0;
      failed = 0;
      busy = 0;
      idem = 0;
      executed = 0;
      recovered_jobs = 0;
      recovered_results = 0;
      notes = [];
      stop = false;
      stop_rounds = 0;
      fault_fired = false;
    }
  in
  let srv =
    match recovery with
    | None -> srv
    | Some (r : Journal.recovery) ->
      List.iter (note srv) r.notes;
      let requeued, replayed = replay srv r.records in
      { srv with recovered_jobs = requeued; recovered_results = replayed }
  in
  on_ready ();
  let abrupt =
    match loop srv with
    | () -> false
    | exception Crash ->
      note srv "fault: simulated crash after a torn completion record";
      true
  in
  List.iter (fun c -> try Unix.close c.fd with _ -> ()) (all_conns srv);
  (try Unix.close srv.listen_fd with _ -> ());
  (match srv.journal with
  | Some j when not abrupt -> Journal.close j
  | _ -> ());
  Supervisor.shutdown srv.sup;
  if not abrupt then (
    try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let summary = Supervisor.summary srv.sup in
  List.iter (note srv) summary.Supervisor.warnings;
  {
    accepted = srv.accepted;
    completed = srv.completed;
    failed = srv.failed;
    busy_rejections = srv.busy;
    idempotent_hits = srv.idem;
    executed = srv.executed;
    tenants = Hashtbl.length srv.tenants;
    recovered_jobs = srv.recovered_jobs;
    recovered_results = srv.recovered_results;
    degraded = Supervisor.degraded srv.sup;
    notes = List.rev srv.notes;
  }
