(* Campaign jobs: the unit of work the daemon schedules, executes and
   journals.  Every kind is deterministic in its fields — the serve
   layer's recovery story (re-run anything whose completion record was
   lost) depends on it. *)

module Fuel = Tpro_engine.Supervisor.Fuel
module Scenario = Tpro_fuzz.Scenario
module Topology = Tpro_fuzz.Topology
module Oracle = Tpro_fuzz.Oracle

type kind =
  | Ping
  | Spin of int
  | Fuzz of { seed : int; idx : int; mutant : Scenario.mutant }
  | Topo of {
      seed : int;
      idx : int;
      max_domains : int;
      max_cores : int;
      mutant : Scenario.mutant;
    }
  | Prove of { preset : string; seed : int; secrets : int list }
  | Table of { id : string; seeds : int list }

type t = { id : string; deadline : int; kind : kind }

let token_ok s =
  s <> ""
  && String.for_all (fun c -> Char.code c > 0x20 && Char.code c < 0x7f) s

(* ------------------------------------------------------------------ *)
(* Serialisation: one space-separated line.  Integer lists are
   comma-joined, "-" when empty, so every field is one token.          *)

let ints_to_token = function
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let ints_of_token = function
  | "-" -> Ok []
  | s -> (
    let parts = String.split_on_char ',' s in
    match List.map int_of_string_opt parts with
    | exception _ -> Error ("bad integer list: " ^ s)
    | opts ->
      if List.for_all Option.is_some opts then
        Ok (List.map Option.get opts)
      else Error ("bad integer list: " ^ s))

let kind_to_string = function
  | Ping -> "ping"
  | Spin n -> Printf.sprintf "spin %d" n
  | Fuzz { seed; idx; mutant } ->
    Printf.sprintf "fuzz %d %d %s" seed idx (Scenario.mutant_to_string mutant)
  | Topo { seed; idx; max_domains; max_cores; mutant } ->
    Printf.sprintf "topo %d %d %d %d %s" seed idx max_domains max_cores
      (Scenario.mutant_to_string mutant)
  | Prove { preset; seed; secrets } ->
    Printf.sprintf "prove %s %d %s" preset seed (ints_to_token secrets)
  | Table { id; seeds } ->
    Printf.sprintf "table %s %s" id (ints_to_token seeds)

let int_of tok =
  match int_of_string_opt tok with
  | Some n -> Ok n
  | None -> Error ("bad integer: " ^ tok)

let ( let* ) = Result.bind

let mutant_of tok =
  match Scenario.mutant_of_string tok with
  | Some m -> Ok m
  | None -> Error ("unknown mutant: " ^ tok)

let kind_of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "ping" ] -> Ok Ping
  | [ "spin"; n ] ->
    let* n = int_of n in
    if n < 0 then Error "spin wants a non-negative count" else Ok (Spin n)
  | [ "fuzz"; seed; idx; mutant ] ->
    let* seed = int_of seed in
    let* idx = int_of idx in
    let* mutant = mutant_of mutant in
    Ok (Fuzz { seed; idx; mutant })
  | [ "topo"; seed; idx; max_domains; max_cores; mutant ] ->
    let* seed = int_of seed in
    let* idx = int_of idx in
    let* max_domains = int_of max_domains in
    let* max_cores = int_of max_cores in
    let* mutant = mutant_of mutant in
    Ok (Topo { seed; idx; max_domains; max_cores; mutant })
  | [ "prove"; preset; seed; secrets ] ->
    let* seed = int_of seed in
    let* secrets = ints_of_token secrets in
    if token_ok preset then Ok (Prove { preset; seed; secrets })
    else Error "bad preset token"
  | [ "table"; id; seeds ] ->
    let* seeds = ints_of_token seeds in
    if token_ok id then Ok (Table { id; seeds })
    else Error "bad experiment id token"
  | _ -> Error ("unparseable job kind: " ^ line)

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)

let presets =
  lazy (Time_protection.Presets.standard @ Time_protection.Presets.ablations)

let verdict_payload = function
  | Oracle.Pass -> "pass"
  | Oracle.Fail m -> "fail " ^ Tpro_engine.Frame.escape m

let execute ~fuel kind =
  match kind with
  | Ping ->
    Fuel.burn fuel;
    Ok "pong"
  | Spin n ->
    (* burn in unit steps so a deadline gauge trips mid-spin, the way a
       genuinely runaway job would be cut off part-way *)
    let acc = ref 0 in
    for i = 1 to n do
      Fuel.burn fuel;
      acc := !acc lxor i
    done;
    Ok (Printf.sprintf "spun %d (%d)" n (!acc land 0xff))
  | Fuzz { seed; idx; mutant } ->
    let s = Scenario.generate ~seed ~mutant idx in
    Fuel.burn ~amount:(Scenario.size s) fuel;
    Ok (verdict_payload (Oracle.check s))
  | Topo { seed; idx; max_domains; max_cores; mutant } ->
    let t = Topology.generate ~seed ~mutant ~max_domains ~max_cores idx in
    Fuel.burn ~amount:(Topology.size t) fuel;
    Ok (verdict_payload (Oracle.check_topology t))
  | Prove { preset; seed; secrets } -> (
    match List.assoc_opt preset (Lazy.force presets) with
    | None -> Error ("unknown preset: " ^ preset)
    | Some cfg ->
      let secrets = if secrets = [] then [ 0; 1 ] else secrets in
      Fuel.burn ~amount:(100 * List.length secrets) fuel;
      let ev =
        Tpro_secmodel.Theorem.collect ~seed
          ~build:(fun ~secret ->
            Time_protection.Ni_scenario.build_with ~with_btb:true ~cfg ~seed
              ~secret)
          ~secrets ()
      in
      Ok (Tpro_secmodel.Theorem.evidence_to_string ev))
  | Table { id; seeds } -> (
    match Time_protection.Experiments.by_id id with
    | None -> Error ("unknown experiment: " ^ id)
    | Some f ->
      Fuel.burn ~amount:100 fuel;
      let seeds = match seeds with [] -> None | l -> Some l in
      Ok (Time_protection.Table.serialise (f ?seeds ())))

(* ------------------------------------------------------------------ *)
(* Load-generator kind specs                                            *)

let bench_kind spec =
  match String.split_on_char ':' spec with
  | [ "ping" ] -> Ok (fun _ -> Ping)
  | [ "spin"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> Ok (fun _ -> Spin n)
    | _ -> Error ("bad spin count in kind spec: " ^ spec))
  | [ "fuzz"; seed ] -> (
    match int_of_string_opt seed with
    | Some seed ->
      Ok (fun idx -> Fuzz { seed; idx; mutant = Scenario.No_mutant })
    | None -> Error ("bad fuzz seed in kind spec: " ^ spec))
  | [ "topo"; seed ] -> (
    match int_of_string_opt seed with
    | Some seed ->
      Ok
        (fun idx ->
          Topo
            {
              seed;
              idx;
              max_domains = 4;
              max_cores = 2;
              mutant = Scenario.No_mutant;
            })
    | None -> Error ("bad topo seed in kind spec: " ^ spec))
  | _ ->
    Error
      (Printf.sprintf
         "unknown kind spec %s (expected ping, spin:N, fuzz:SEED or \
          topo:SEED)"
         spec)
