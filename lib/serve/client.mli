(** The serve client: submits campaign jobs, survives the server not
    surviving.

    [run_jobs] drives a full job set to completion over however many
    connections it takes.  The recovery contract mirrors the server's
    durability contract:

    - A connection drop, torn result frame, CRC error or read stall is
      handled by reconnecting (with bounded retry while the server
      restarts) and resubmitting every job that has no result yet.  Job
      ids are idempotency keys, so resubmission never re-runs finished
      work — the server re-acks queued ids and replays completed ones
      from its journal.
    - The server's delivery is at-least-once (after a crash it cannot
      know which results the dead connection carried); the client
      dedups by id, making delivery exactly-once at this layer.  A
      duplicate whose bytes differ from the first copy is a
      determinism violation and fails the run.
    - A typed [busy] rejection re-queues the job and pauses for the
      server's retry-after hint — overload slows a client down, it
      never loses work.

    Latencies are measured per job from first submission to result
    arrival, so restart gaps show up honestly in the tail. *)

type report = {
  total : int;
  results : (string * Wire.outcome) list;  (** in submission order *)
  duration : float;  (** wall-clock seconds for the whole run *)
  latencies : float array;  (** seconds, submission order *)
  busy_retries : int;
  reconnects : int;  (** connections after the first *)
  duplicate_deliveries : int;  (** redeliveries dropped by id-dedup *)
  recoveries : float list;
      (** per drop: seconds from detecting it to the next result *)
}

val run_jobs :
  socket:string ->
  tenant:string ->
  ?window:int ->
  ?op_timeout:float ->
  ?connect_timeout:float ->
  ?progress:(done_:int -> total:int -> unit) ->
  Job.t list ->
  (report, string) result
(** Submit every job (ids must be unique) and block until every result
    is in.  [window] (default 64) bounds unacknowledged submissions;
    [op_timeout] (default 30 s) is the read stall treated as a dead
    server; [connect_timeout] (default 30 s) bounds one (re)connect
    attempt loop.  [progress] is called as results arrive. *)

val server_stats :
  socket:string -> ((string * string) list, string) result
(** One-shot: connect, [stats], disconnect. *)

val shutdown_server : socket:string -> (unit, string) result
(** Ask the server to drain and exit. *)

val percentile : float array -> float -> float
(** [percentile sorted p] — nearest-rank percentile of a sorted array
    (0 on empty input). *)

val bench_json : kind:string -> jobs:int -> report -> string
(** The BENCH_serve.json body: jobs/sec, p50/p99 latency (ms),
    reconnects, busy retries, worst recovery time. *)

val dump_results : report -> string
(** One line per job in submission order — the exact [result] wire
    payload — so two runs can be diffed for bit-identity. *)
