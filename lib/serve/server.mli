(** The [tpro serve] daemon: a crash-restartable multi-tenant campaign
    service.

    One single-threaded event loop owns a Unix-domain listening socket
    and every client connection; campaign jobs execute in batches on the
    shared calibrated {!Tpro_engine.Supervisor} pool between I/O rounds.
    The robustness contract:

    - {b Durability}: an [accepted] acknowledgement is sent only after
      the job's journal record is fsynced (group-committed per accept
      round).  A SIGKILL at any instant loses zero acknowledged jobs: a
      restart with [resume = true] replays the journal, re-queues
      unfinished jobs and re-caches finished results, and clients that
      resubmit their unanswered ids receive each result exactly once,
      byte-identical to an uninterrupted run.
    - {b Idempotency}: job ids are idempotency keys.  Resubmitting a
      completed id returns the cached result without re-running; a
      queued id is simply re-acknowledged.
    - {b Fairness}: tenants' queues are drained round-robin, one job per
      tenant per scheduling pass — a 10k-job tenant cannot starve a
      10-job one.
    - {b Overload}: the accept queue is bounded; past [queue_max] a
      submission gets a typed [busy] rejection with a retry-after hint,
      never a hang and never an abort.
    - {b Backpressure}: results for a slow-reading client are parked
      once its write queue passes [outq_limit] bytes and delivered as it
      drains; the pool never blocks on client I/O.
    - {b Deadlines}: each job runs under its own fuel gauge; a job that
      burns past its deadline settles as a typed [deadline] failure (no
      retry — a deterministic runaway would only spin again).
    - {b Degradation}: if worker domains cannot be spawned the pool
      degrades to sequential execution with a warning; serving
      continues.

    The fault matrix covers the failure modes the tests drive: a torn
    result frame on the wire, a connection dropped right after an
    acknowledgement, a torn journal append followed by a simulated
    crash, and worker-spawn failure. *)

type fault =
  | No_fault
  | Torn_result_frame
      (** the first result frame is cut mid-payload and the connection
          closed — the client must detect the tear and recover by
          reconnect + resubmit *)
  | Drop_after_accept
      (** the first accepted submission's connection is closed right
          after the ack — the mid-job-disconnect case *)
  | Torn_journal_crash
      (** the first completion record is written torn and the daemon
          "crashes" (stops without delivering) — resume must drop the
          tear and re-run the job *)
  | Spawn_failure  (** worker domains fail to spawn; must degrade *)

type config = {
  socket : string;
  journal : string option;  (** no journal = no durability (tests) *)
  resume : bool;
  queue_max : int;
  default_deadline : int;  (** fuel units for jobs submitted with 0 *)
  retries : int;
  backoff : (float * float) option;  (** supervisor retry backoff *)
  domains : int option;  (** [None] = calibrated *)
  batch : int;  (** jobs per scheduling pass *)
  outq_limit : int;  (** per-connection write-queue bytes before parking *)
  fault : fault;
}

val default_config : socket:string -> config
(** queue_max 65536, default_deadline 50M fuel, retries 1, backoff
    (0.05 s, 1 s), calibrated domains, batch 32, outq_limit 1 MiB. *)

type stats = {
  accepted : int;  (** jobs durably accepted (not busy-rejected) *)
  completed : int;  (** outcomes settled, including typed failures *)
  failed : int;  (** subset of [completed] with a failure outcome *)
  busy_rejections : int;
  idempotent_hits : int;  (** resubmissions answered without re-running *)
  executed : int;  (** jobs actually run (≤ accepted after a resume) *)
  tenants : int;
  recovered_jobs : int;  (** re-queued from the journal on resume *)
  recovered_results : int;  (** completed results replayed on resume *)
  degraded : bool;
  notes : string list;
}

val run : ?on_ready:(unit -> unit) -> config -> stats
(** Serve until a [shutdown] request (or an injected crash).  Blocks;
    tests run it in a separate domain and use [on_ready] (called once
    the socket is listening) to sequence the client side.  Pending
    jobs at shutdown stay in the journal for the next [resume]. *)
