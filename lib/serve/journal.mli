(** The daemon's crash-safe job journal.

    An append-only file of {!Tpro_engine.Frame}s (magic
    ["tpro-journal"]), one record per event: a job accepted (with its
    owning tenant and deadline) or a job completed (with its full
    outcome).  Acceptance is acknowledged to the client only after the
    record is fsynced — group-committed once per accept round — so a
    SIGKILL at any instant loses zero acknowledged jobs.  Completion
    records make finished results durable; a completion lost to a tear
    merely re-runs its (deterministic) job on resume, reproducing the
    identical bytes.

    Loading tolerates exactly the damage a crash can cause: a torn
    final record is dropped with a note and the file truncated back to
    the valid prefix.  Damage a crash cannot cause (a corrupt record
    {e before} the tail) still recovers the prefix, but the note says
    the storage lied. *)

type record =
  | Accepted of { job : Job.t; tenant : string }
  | Done of { id : string; outcome : Wire.outcome }

type t

type recovery = {
  records : record list;  (** valid prefix, in append order *)
  dropped : bool;  (** a torn/corrupt suffix was discarded *)
  notes : string list;
}

val open_ : path:string -> resume:bool -> t * recovery
(** Open (creating if missing).  With [resume = false] any existing
    journal is truncated — a fresh campaign.  With [resume = true] the
    valid prefix is replayed and the file truncated to it, so new
    appends extend known-good state. *)

val append : t -> record -> unit
(** Buffered; not durable until {!sync}. *)

val append_torn : t -> record -> unit
(** Fault injection: append a record whose header promises the full
    payload but whose bytes are cut in half — the torn-tail state a
    power cut leaves. *)

val sync : t -> unit
(** Flush and fsync — the durability barrier acknowledgements wait
    behind. *)

val close : t -> unit

val record_to_payload : record -> string
val record_of_payload : string -> (record, string) result
