open Tpro_hw

exception Uncovered_flushable of string

type config = {
  colouring : bool;
  kernel_clone : bool;
  flush_on_switch : bool;
  pad_switch : bool;
  partition_irqs : bool;
  deterministic_delivery : bool;
}

let config_none =
  {
    colouring = false;
    kernel_clone = false;
    flush_on_switch = false;
    pad_switch = false;
    partition_irqs = false;
    deterministic_delivery = false;
  }

let config_full =
  {
    colouring = true;
    kernel_clone = true;
    flush_on_switch = true;
    pad_switch = true;
    partition_irqs = true;
    deterministic_delivery = true;
  }

let pp_config ppf c =
  let flag name b = if b then name else "no-" ^ name in
  Format.fprintf ppf "{%s %s %s %s %s %s}"
    (flag "colour" c.colouring)
    (flag "clone" c.kernel_clone)
    (flag "flush" c.flush_on_switch)
    (flag "pad" c.pad_switch)
    (flag "irq-part" c.partition_irqs)
    (flag "det-ipc" c.deterministic_delivery)

type core_state = {
  core : int;
  mutable sched : Sched.t option; (* None until a domain exists *)
  mutable current_dom : int;      (* index into [doms] *)
  mutable slice_start : int;
  mutable rr : int;               (* intra-domain round-robin cursor *)
}

type t = {
  m : Machine.t;
  cfg : config;
  alloc : Frame_alloc.t;
  shared_img : Kclone.image;
  images : (int, Kclone.image) Hashtbl.t; (* domain id -> image *)
  irq_ctl : Irq.t;
  eps : Ipc.t;
  mutable doms : Domain.t array;
  per_core : core_state array;
  mutable events_rev : Event.t list;
  mutable next_tid : int;
  mutable next_asid : int;
  mutable next_colour : int; (* next unassigned colour (colouring on) *)
  code_cursor : (int, int) Hashtbl.t; (* domain id -> next code vbase *)
}

let code_vbase_start = 0x0010_0000

let create ?(machine_config = Machine.default_config) ?(n_endpoints = 4)
    ?(n_irqs = 8) cfg =
  let m = Machine.create machine_config in
  if
    machine_config.Machine.l1_geom.Cache.line_bits
    <> machine_config.Machine.llc_geom.Cache.line_bits
  then invalid_arg "Kernel.create: L1 and LLC line sizes must agree";
  let n_colours = Machine.n_colours m in
  let alloc = Frame_alloc.create (Machine.mem m) ~n_colours in
  let line_bits = machine_config.Machine.llc_geom.Cache.line_bits in
  let shared_img = Kclone.boot alloc (Machine.mem m) ~line_bits in
  {
    m;
    cfg;
    alloc;
    shared_img;
    images = Hashtbl.create 8;
    irq_ctl = Irq.create ~n_irqs;
    eps = Ipc.create ~n_endpoints;
    doms = [||];
    per_core =
      Array.init (Machine.n_cores m) (fun core ->
          { core; sched = None; current_dom = -1; slice_start = 0; rr = 0 });
    events_rev = [];
    next_tid = 0;
    next_asid = 1;
    next_colour = 1; (* colour 0 is the kernel's *)
    code_cursor = Hashtbl.create 8;
  }

let machine t = t.m
let config t = t.cfg
let allocator t = t.alloc
let shared_image t = t.shared_img
let irqs t = t.irq_ctl
let domains t = Array.to_list t.doms
let domain t i = t.doms.(i)

let line_bits t = (Machine.config t.m).Machine.llc_geom.Cache.line_bits
let page_bits t = Machine.page_bits t.m
let n_colours t = Machine.n_colours t.m

let image_of_domain t (dom : Domain.t) =
  match Hashtbl.find_opt t.images dom.Domain.did with
  | Some img -> img
  | None -> t.shared_img

let record t e = t.events_rev <- e :: t.events_rev

let events t = List.rev t.events_rev

let last_event t =
  match t.events_rev with [] -> None | e :: _ -> Some e

let create_domain t ?(core = 0) ?(n_colours = 1) ~slice ~pad_cycles () =
  if core < 0 || core >= Machine.n_cores t.m then
    invalid_arg "Kernel.create_domain: core out of range";
  let total_colours = Machine.n_colours t.m in
  let colours =
    if t.cfg.colouring then begin
      if t.next_colour + n_colours > total_colours then
        failwith "Kernel.create_domain: out of page colours";
      let cs = List.init n_colours (fun i -> t.next_colour + i) in
      t.next_colour <- t.next_colour + n_colours;
      cs
    end
    else List.init total_colours (fun c -> c)
  in
  let did = Array.length t.doms in
  let dom =
    Domain.create ~did ~asid:t.next_asid ~colours ~slice ~pad_cycles ~core
      ~kernel_text_base:0
  in
  t.next_asid <- t.next_asid + 1;
  t.doms <- Array.append t.doms [| dom |];
  (if t.cfg.kernel_clone && t.cfg.colouring then
     let img =
       Kclone.clone t.alloc (Machine.mem t.m) ~line_bits:(line_bits t)
         ~shared:t.shared_img ~colours ~owner:did
     in
     Hashtbl.replace t.images did img);
  let cs = t.per_core.(core) in
  (match cs.sched with
  | None ->
    cs.sched <- Some (Sched.create [| did |]);
    cs.current_dom <- did;
    cs.slice_start <- Machine.now t.m ~core
  | Some s -> cs.sched <- Some (Sched.create (Array.append (Sched.order s) [| did |])));
  dom

(* Install a custom per-core scheduler order (replacing the default
   creation-order round-robin that [create_domain] accumulates).  The
   order is validated through [Sched.make] — empty or out-of-range
   orders are typed errors, caught at installation rather than mid-run —
   and every listed domain must actually be hosted on [core], since the
   switch path executes the incoming domain's threads on this core's
   clock. *)
let set_schedule t ~core order =
  if core < 0 || core >= Machine.n_cores t.m then
    invalid_arg "Kernel.set_schedule: core out of range";
  match Sched.make ~n_domains:(Array.length t.doms) order with
  | Error _ as e -> e
  | Ok s ->
    Array.iter
      (fun did ->
        if t.doms.(did).Domain.core <> core then
          invalid_arg
            (Printf.sprintf
               "Kernel.set_schedule: domain %d lives on core %d, not %d" did
               t.doms.(did).Domain.core core))
      order;
    let cs = t.per_core.(core) in
    cs.sched <- Some s;
    cs.current_dom <- Sched.current s;
    cs.slice_start <- Machine.now t.m ~core;
    cs.rr <- 0;
    Ok ()

let map_region t (dom : Domain.t) ~vbase ~pages =
  let pb = page_bits t in
  if vbase land ((1 lsl pb) - 1) <> 0 then
    invalid_arg "Kernel.map_region: vbase must be page-aligned";
  for i = 0 to pages - 1 do
    let vpn = (vbase lsr pb) + i in
    match Domain.translate dom vpn with
    | Some _ -> invalid_arg "Kernel.map_region: region already mapped"
    | None ->
      let frame =
        Frame_alloc.alloc_exn t.alloc ~owner:dom.Domain.did
          ~colours:dom.Domain.colours
      in
      Domain.map_page dom ~vpn ~pfn:frame
  done

(* Read-only sharing: map [owner]'s already-backed region into [guest]'s
   address space at [guest_vbase].  The frames keep their original owner
   and colour — which is precisely why sharing punches a hole in cache
   partitioning (Sect. 4.2: "even read-only sharing of code is
   sufficient for creating a channel"). *)
let share_region t ~(owner : Domain.t) ~(guest : Domain.t) ~vbase ~pages
    ~guest_vbase =
  let pb = page_bits t in
  if vbase land ((1 lsl pb) - 1) <> 0 || guest_vbase land ((1 lsl pb) - 1) <> 0
  then invalid_arg "Kernel.share_region: bases must be page-aligned";
  for i = 0 to pages - 1 do
    match Domain.translate owner ((vbase lsr pb) + i) with
    | None -> invalid_arg "Kernel.share_region: owner region not mapped"
    | Some pfn ->
      let guest_vpn = (guest_vbase lsr pb) + i in
      (match Domain.translate guest guest_vpn with
      | Some _ -> invalid_arg "Kernel.share_region: guest region already mapped"
      | None -> Domain.map_page guest ~vpn:guest_vpn ~pfn)
  done

let spawn ?regs t (dom : Domain.t) prog =
  let did = dom.Domain.did in
  let vbase =
    match Hashtbl.find_opt t.code_cursor did with
    | Some v -> v
    | None -> code_vbase_start
  in
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let thread = Thread.create ?regs ~tid ~dom:did ~code_vbase:vbase prog in
  let pages = Thread.code_pages thread ~page_bits:(page_bits t) in
  map_region t dom ~vbase ~pages;
  Hashtbl.replace t.code_cursor did
    (vbase + (pages lsl page_bits t) + (1 lsl page_bits t));
  Domain.add_thread dom thread;
  thread

let set_irq_owner t ~irq ~dom =
  Irq.set_owner t.irq_ctl ~irq ~dom:dom.Domain.did

let vaddr_to_paddr t (dom : Domain.t) vaddr =
  let pb = page_bits t in
  match Domain.translate dom (vaddr lsr pb) with
  | None -> None
  | Some pfn -> Some ((pfn lsl pb) lor (vaddr land ((1 lsl pb) - 1)))

let current_domain t ~core =
  let cs = t.per_core.(core) in
  if cs.current_dom < 0 then invalid_arg "Kernel.current_domain: no domains";
  t.doms.(cs.current_dom)

let now t ~core = Machine.now t.m ~core

(* ------------------------------------------------------------------ *)
(* Kernel execution paths                                              *)

(* A trap's kernel work: fetch the handler's text window from the
   domain's kernel image, then touch every kernel global-data line in a
   fixed order (writes on even lines).  The data pass both models real
   handler work and re-establishes a canonical cache state for the shared
   global data — the determinism Case 2a relies on. *)
let kernel_path t ~core (dom : Domain.t) kind =
  let img = image_of_domain t dom in
  let lb = line_bits t in
  let path = Kclone.path_of_kind kind in
  let cost = ref 0 in
  List.iter
    (fun pa ->
      cost := !cost + Machine.fetch_paddr t.m ~core ~owner:(Kclone.owner img) pa)
    (Kclone.text_paddrs img ~line_bits:lb path);
  List.iteri
    (fun i pa ->
      cost :=
        !cost
        + Machine.touch_paddr t.m ~core ~owner:Cache.shared_owner
            ~write:(i land 1 = 0) pa)
    (Kclone.data_paddrs img ~line_bits:lb);
  !cost

let runnable_threads (dom : Domain.t) =
  List.filter Thread.runnable (Domain.threads dom)

let live_thread_exists (dom : Domain.t) =
  List.exists
    (fun th -> th.Thread.state <> Thread.Halted)
    (Domain.threads dom)

(* ------------------------------------------------------------------ *)
(* Domain switch (Sect. 4.2): kernel entry on the outgoing domain's
   image, core-local flush, kernel exit on the incoming image, then
   padding to the deadline determined by the outgoing domain. *)

let do_switch t (cs : core_state) reason =
  let from_dom = t.doms.(cs.current_dom) in
  let core = cs.core in
  (* The Cock et al. discipline: an idle domain still occupies the core
     until its slice boundary, making the switch time policy-determined. *)
  let reason =
    match reason with
    | Event.Idle when t.cfg.deterministic_delivery ->
      let (_ : int) =
        Machine.wait_until t.m ~core (cs.slice_start + from_dom.Domain.slice)
      in
      Event.Idle
    | r -> r
  in
  let start = Machine.now t.m ~core in
  let (_ : int) = kernel_path t ~core from_dom "switch" in
  let flush_cycles =
    if t.cfg.flush_on_switch then begin
      let cycles, reports = Machine.flush_core_local_report t.m ~core in
      (* The registry is the kernel's flush obligation: every resource the
         machine registers as flushable must appear in the report, so the
         padded switch provably resets all of them — including any added
         after this code was written. *)
      List.iter
        (fun r ->
          if Resource.flushable r
             && not (List.mem_assoc (Resource.name r) reports)
          then raise (Uncovered_flushable (Resource.name r)))
        (Machine.core_resources t.m ~core);
      cycles
    end
    else 0
  in
  let sched =
    match cs.sched with Some s -> s | None -> assert false
  in
  let next = Sched.advance sched in
  let to_dom = t.doms.(next) in
  let (_ : int) = kernel_path t ~core to_dom "switch_exit" in
  let padded, overrun =
    if not t.cfg.pad_switch then (false, false)
    else begin
      let deadline =
        match reason with
        | Event.Timer -> cs.slice_start + from_dom.Domain.slice + from_dom.Domain.pad_cycles
        | Event.Idle ->
          if t.cfg.deterministic_delivery then
            cs.slice_start + from_dom.Domain.slice + from_dom.Domain.pad_cycles
          else start + from_dom.Domain.pad_cycles
      in
      let before = Machine.now t.m ~core in
      let (_ : int) = Machine.wait_until t.m ~core deadline in
      (true, before > deadline)
    end
  in
  let finish = Machine.now t.m ~core in
  record t
    (Event.Switch
       {
         core;
         from_dom = from_dom.Domain.did;
         to_dom = to_dom.Domain.did;
         reason;
         slice_start = cs.slice_start;
         start;
         finish;
         flush_cycles;
         padded;
         overrun;
       });
  cs.current_dom <- next;
  cs.slice_start <- finish;
  cs.rr <- 0

(* ------------------------------------------------------------------ *)
(* Instruction execution                                               *)

let deliver t ~ep ~(sender : Thread.t) ~(receiver : Thread.t) ~msg ~at =
  receiver.Thread.msg <- msg;
  Thread.observe receiver (Event.Recv msg);
  receiver.Thread.state <- Thread.Ready;
  record t
    (Event.Ipc_delivered
       {
         ep;
         sender_dom = sender.Thread.dom;
         receiver_dom = receiver.Thread.dom;
         at;
       })

let do_syscall t ~core (dom : Domain.t) (th : Thread.t) sc =
  let kind =
    match sc with
    | Program.Sys_null -> "null"
    | Program.Sys_info -> "info"
    | Program.Sys_send _ -> "send"
    | Program.Sys_recv _ -> "recv"
    | Program.Sys_arm_irq _ -> "arm_irq"
  in
  let start = Machine.now t.m ~core in
  let cycles = kernel_path t ~core dom kind in
  (match sc with
  | Program.Sys_null | Program.Sys_info -> ()
  | Program.Sys_send { ep; msg } -> (
    match Ipc.queued_receiver t.eps ~ep with
    | Some receiver ->
      Ipc.clear_receiver t.eps ~ep;
      deliver t ~ep ~sender:th ~receiver ~msg ~at:(Machine.now t.m ~core)
    | None ->
      th.Thread.state <- Thread.Blocked_send ep;
      Ipc.queue_sender t.eps ~ep th ~msg)
  | Program.Sys_recv { ep } -> (
    match Ipc.queued_sender t.eps ~ep with
    | Some (sender, msg) ->
      Ipc.clear_sender t.eps ~ep;
      sender.Thread.state <- Thread.Ready;
      deliver t ~ep ~sender ~receiver:th ~msg ~at:(Machine.now t.m ~core)
    | None ->
      th.Thread.state <- Thread.Blocked_recv ep;
      Ipc.queue_receiver t.eps ~ep th)
  | Program.Sys_arm_irq { irq; delay } ->
    Irq.arm t.irq_ctl ~irq ~at:(Machine.now t.m ~core + delay));
  record t
    (Event.Trap
       { core; dom = dom.Domain.did; kind; start; cycles });
  th.Thread.pc <- th.Thread.pc + 1

let do_fault t ~core (dom : Domain.t) (th : Thread.t) vaddr =
  let (_ : int) = kernel_path t ~core dom "fault" in
  record t
    (Event.Fault
       {
         thread = th.Thread.tid;
         dom = dom.Domain.did;
         vaddr;
         at = Machine.now t.m ~core;
       });
  th.Thread.state <- Thread.Halted

let halt_thread t ~core (dom : Domain.t) (th : Thread.t) =
  th.Thread.state <- Thread.Halted;
  record t
    (Event.Thread_halted
       {
         thread = th.Thread.tid;
         dom = dom.Domain.did;
         at = Machine.now t.m ~core;
       })

let exec_instr t ~core (dom : Domain.t) (th : Thread.t) =
  let translate = Domain.translate dom in
  let asid = dom.Domain.asid in
  let did = dom.Domain.did in
  let pc_vaddr = Thread.instr_vaddr th in
  let started = Machine.now t.m ~core in
  (* faults and system calls enter the kernel: Case 2a; everything else is
     an ordinary user step: Case 1 *)
  let kind =
    ref
      (match Thread.current_instr th with
      | Some (Program.Syscall _) -> Thread.Trap
      | Some _ | None -> Thread.User)
  in
  let finish () =
    Thread.record_cost th !kind (Machine.now t.m ~core - started)
  in
  Fun.protect ~finally:finish @@ fun () ->
  let do_fault t ~core dom th vaddr =
    kind := Thread.Trap;
    do_fault t ~core dom th vaddr
  in
  match Machine.fetch t.m ~core ~asid ~domain:did ~translate pc_vaddr with
  | Error `Fault -> do_fault t ~core dom th pc_vaddr
  | Ok (_ : int) -> (
    match Thread.current_instr th with
    | None | Some Program.Halt -> halt_thread t ~core dom th
    | Some instr -> (
      match instr with
      | Program.Load v | Program.Store v -> (
        let write = match instr with Program.Store _ -> true | _ -> false in
        let access =
          if write then Machine.store else Machine.load
        in
        match access t.m ~core ~asid ~domain:did ~translate ~pc:pc_vaddr v with
        | Error `Fault -> do_fault t ~core dom th v
        | Ok (_ : int) -> th.Thread.pc <- th.Thread.pc + 1)
      | Program.Timed_load v -> (
        match
          Machine.load t.m ~core ~asid ~domain:did ~translate ~pc:pc_vaddr v
        with
        | Error `Fault -> do_fault t ~core dom th v
        | Ok cycles ->
          Thread.observe th (Event.Latency cycles);
          th.Thread.pc <- th.Thread.pc + 1)
      | Program.Clflush v -> (
        match Machine.flush_line t.m ~core ~asid ~translate v with
        | Error `Fault -> do_fault t ~core dom th v
        | Ok (_ : int) -> th.Thread.pc <- th.Thread.pc + 1)
      | Program.Compute n ->
        let (_ : int) = Machine.compute t.m ~core ~cycles:n in
        th.Thread.pc <- th.Thread.pc + 1
      | Program.Branch { tag; taken } ->
        let (_ : int) = Machine.branch t.m ~core ~pc:(tag * 4) ~taken in
        th.Thread.pc <- th.Thread.pc + 1
      | Program.Read_clock ->
        let (_ : int) = Machine.compute t.m ~core ~cycles:1 in
        Thread.observe th (Event.Clock (Machine.now t.m ~core));
        th.Thread.pc <- th.Thread.pc + 1
      | Program.Set (r, v) ->
        Thread.set_reg th r v;
        let (_ : int) = Machine.compute t.m ~core ~cycles:1 in
        th.Thread.pc <- th.Thread.pc + 1
      | Program.Add (rd, rs, imm) ->
        Thread.set_reg th rd (Thread.reg th rs + imm);
        let (_ : int) = Machine.compute t.m ~core ~cycles:1 in
        th.Thread.pc <- th.Thread.pc + 1
      | Program.Load_idx { base; index; scale }
      | Program.Store_idx { base; index; scale } -> (
        let v = base + (Thread.reg th index * scale) in
        let write =
          match instr with Program.Store_idx _ -> true | _ -> false
        in
        let access = if write then Machine.store else Machine.load in
        match access t.m ~core ~asid ~domain:did ~translate ~pc:pc_vaddr v with
        | Error `Fault -> do_fault t ~core dom th v
        | Ok (_ : int) -> th.Thread.pc <- th.Thread.pc + 1)
      | Program.Syscall sc -> do_syscall t ~core dom th sc
      | Program.Halt -> halt_thread t ~core dom th))

(* ------------------------------------------------------------------ *)
(* Interrupts                                                          *)

let irq_allowed t (cs : core_state) irq =
  let owner = Irq.owner t.irq_ctl irq in
  if owner < 0 || owner >= Array.length t.doms then false
  else
    let owner_dom = t.doms.(owner) in
    (* interrupts are routed to their owner's core *)
    owner_dom.Domain.core = cs.core
    && ((not t.cfg.partition_irqs) || owner = cs.current_dom)

let handle_irq t (cs : core_state) irq =
  let core = cs.core in
  let dom = t.doms.(cs.current_dom) in
  let at = Machine.now t.m ~core in
  let cycles = kernel_path t ~core dom "irq" in
  record t
    (Event.Irq_handled
       {
         core;
         irq;
         owner_dom = Irq.owner t.irq_ctl irq;
         during_dom = dom.Domain.did;
         at;
         cycles;
       })

(* ------------------------------------------------------------------ *)
(* Top-level stepping                                                  *)

let core_live t (cs : core_state) =
  cs.sched <> None
  && (Array.exists
        (fun (d : Domain.t) -> d.Domain.core = cs.core && live_thread_exists d)
        t.doms
     || List.exists
          (fun (_, irq) ->
            let o = Irq.owner t.irq_ctl irq in
            o >= 0
            && o < Array.length t.doms
            && t.doms.(o).Domain.core = cs.core)
          (Irq.pending t.irq_ctl))

let pick_core t =
  let best = ref None in
  Array.iter
    (fun cs ->
      if core_live t cs then
        let now = Machine.now t.m ~core:cs.core in
        match !best with
        | Some (_, best_now) when best_now <= now -> ()
        | Some _ | None -> best := Some (cs, now))
    t.per_core;
  Option.map fst !best

(* Progress is impossible when no thread is ready anywhere and no armed
   interrupt can ever fire on a live core. *)
let can_progress t =
  Array.exists
    (fun (d : Domain.t) -> runnable_threads d <> [])
    t.doms
  || List.exists
       (fun (_, irq) ->
         let o = Irq.owner t.irq_ctl irq in
         o >= 0 && o < Array.length t.doms)
       (Irq.pending t.irq_ctl)

let all_halted t =
  Array.for_all (fun d -> not (live_thread_exists d)) t.doms

let next_runnable (cs : core_state) (dom : Domain.t) =
  let threads = Array.of_list (Domain.threads dom) in
  let n = Array.length threads in
  if n = 0 then None
  else
    let rec go k =
      if k >= n then None
      else
        let th = threads.((cs.rr + k) mod n) in
        if Thread.runnable th then begin
          cs.rr <- (cs.rr + k + 1) mod n;
          Some th
        end
        else go (k + 1)
    in
    go 0

let step t =
  if not (can_progress t) then false
  else
    match pick_core t with
    | None -> false
    | Some cs ->
      let core = cs.core in
      let dom = t.doms.(cs.current_dom) in
      let now = Machine.now t.m ~core in
      if now >= cs.slice_start + dom.Domain.slice then begin
        do_switch t cs Event.Timer;
        true
      end
      else begin
        match Irq.take_pending t.irq_ctl ~now ~allowed:(irq_allowed t cs) with
        | Some irq ->
          handle_irq t cs irq;
          true
        | None -> (
          match next_runnable cs dom with
          | Some th ->
            exec_instr t ~core dom th;
            true
          | None ->
            (* Domain idle: either hold the core to the slice boundary
               (deterministic delivery) or hand over immediately. *)
            if
              Sched.n_domains
                (match cs.sched with Some s -> s | None -> assert false)
              = 1
            then begin
              (* Sole domain on this core: roll the slice forward so armed
                 interrupts can still be delivered. *)
              let (_ : int) =
                Machine.wait_until t.m ~core (cs.slice_start + dom.Domain.slice)
              in
              cs.slice_start <- Machine.now t.m ~core;
              true
            end
            else begin
              do_switch t cs Event.Idle;
              true
            end)
      end

let run ?(max_steps = 1_000_000) t =
  let rec go k = if k > 0 && step t then go (k - 1) in
  go max_steps

let pp ppf t =
  Format.fprintf ppf "kernel %a: %d domains, %a" pp_config t.cfg
    (Array.length t.doms) Machine.pp t.m
