(** Page-colouring frame allocator (Sect. 4.1).

    Physical frames are grouped by the LLC page colour they map to.  With
    colouring enabled, each domain is restricted to a disjoint colour set,
    so its pages can only ever compete for its own portion of the shared
    cache.  With colouring disabled the allocator hands out frames in plain
    ascending order — exactly the behaviour that makes domains collide in
    the LLC. *)

open Tpro_hw

type t

val create : Mem.t -> n_colours:int -> t

val n_colours : t -> int

val colour_of_frame : t -> int -> int

val alloc : t -> owner:int -> colours:int list -> int option
(** Lowest-numbered free frame whose colour is in [colours]; marks it
    owned.  [None] when no such frame remains. *)

val alloc_exn : t -> owner:int -> colours:int list -> int

val free : t -> frame:int -> unit

val free_count : t -> colour:int -> int

val all_colours : t -> int list

val reserved_kernel_colour : int
(** Colour 0 is reserved for the (shared) kernel image and kernel global
    data; user domains are never given it when colouring is on. *)

val pp : Format.formatter -> t -> unit
