open Tpro_hw

type image = {
  text_frame_tbl : int array;  (* frame of each text frame-slot *)
  data_frame_tbl : int array;
  img_owner : int;
  page_bits : int;
}

let text_lines = 64
let data_lines = 16

type path = { first_line : int; n_lines : int }

(* Fixed layout of handler code within the kernel text.  Distinct trap
   kinds occupy disjoint line windows, so which kind ran is visible in the
   cache footprint of a *shared* image — the channel that kernel cloning
   closes. *)
let path_of_kind = function
  | "null" -> { first_line = 0; n_lines = 4 }
  | "info" -> { first_line = 8; n_lines = 8 }
  | "send" -> { first_line = 16; n_lines = 10 }
  | "recv" -> { first_line = 26; n_lines = 10 }
  | "arm_irq" -> { first_line = 36; n_lines = 6 }
  | "fault" -> { first_line = 42; n_lines = 8 }
  | "irq" -> { first_line = 50; n_lines = 6 }
  | "switch" -> { first_line = 56; n_lines = 6 }
  | "switch_exit" -> { first_line = 62; n_lines = 2 }
  | kind -> invalid_arg ("Kclone.path_of_kind: unknown trap kind " ^ kind)

let trap_kinds =
  [ "null"; "info"; "send"; "recv"; "arm_irq"; "fault"; "irq"; "switch";
    "switch_exit" ]

let owner img = img.img_owner

let frames_for mem ~line_bits ~lines =
  let bytes = lines lsl line_bits in
  let page = Mem.page_size mem in
  max 1 ((bytes + page - 1) / page)

let alloc_frames alloc ~owner ~colours ~n =
  Array.init n (fun _ -> Frame_alloc.alloc_exn alloc ~owner ~colours)

let boot alloc mem ~line_bits =
  let colours = [ Frame_alloc.reserved_kernel_colour ] in
  let owner = Cache.shared_owner in
  let text_n = frames_for mem ~line_bits ~lines:text_lines in
  let data_n = frames_for mem ~line_bits ~lines:data_lines in
  {
    text_frame_tbl = alloc_frames alloc ~owner ~colours ~n:text_n;
    data_frame_tbl = alloc_frames alloc ~owner ~colours ~n:data_n;
    img_owner = owner;
    page_bits = Mem.page_bits mem;
  }

let clone alloc mem ~line_bits ~shared ~colours ~owner =
  let text_n = frames_for mem ~line_bits ~lines:text_lines in
  {
    shared with
    text_frame_tbl = alloc_frames alloc ~owner ~colours ~n:text_n;
    img_owner = owner;
  }

let line_paddr img ~line_bits tbl line =
  let byte = line lsl line_bits in
  let frame_slot = byte lsr img.page_bits in
  let offset = byte land ((1 lsl img.page_bits) - 1) in
  (tbl.(frame_slot) lsl img.page_bits) lor offset

let text_paddrs img ~line_bits { first_line; n_lines } =
  if first_line < 0 || first_line + n_lines > text_lines then
    invalid_arg "Kclone.text_paddrs: path outside kernel text";
  List.init n_lines (fun i ->
      line_paddr img ~line_bits img.text_frame_tbl (first_line + i))

let data_paddrs img ~line_bits =
  List.init data_lines (fun i ->
      line_paddr img ~line_bits img.data_frame_tbl i)

let text_frames img = Array.to_list img.text_frame_tbl
let data_frames img = Array.to_list img.data_frame_tbl

let same_text a b = a.text_frame_tbl == b.text_frame_tbl
