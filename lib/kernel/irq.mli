(** Interrupt partitioning (Sect. 4.2).

    Interrupts are a channel: a Trojan can program a device so its
    completion interrupt fires during the victim's execution, perturbing
    the victim's observable timing.  The defence partitions interrupt
    sources between domains and keeps every interrupt masked whose owner
    is not the presently-executing domain (the preemption timer is modelled
    separately by the scheduler). *)

type t

val create : n_irqs:int -> t

val n_irqs : t -> int

val set_owner : t -> irq:int -> dom:int -> unit
val owner : t -> int -> int
(** [-1] if unassigned. *)

val arm : t -> irq:int -> at:int -> unit
(** Schedule [irq] to become pending at absolute time [at]. *)

val take_pending : t -> now:int -> allowed:(int -> bool) -> int option
(** Earliest armed irq with [at <= now] and [allowed irq]; removes it.
    Masked (not-allowed) interrupts stay pending — they are delivered when
    their owner next runs. *)

val pending : t -> (int * int) list
(** [(fire_at, irq)] pairs still armed, earliest first. *)

val pp : Format.formatter -> t -> unit
