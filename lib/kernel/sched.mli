(** Static domain scheduler (one instance per core).

    As in seL4's domain scheduler, the sequence of domains and their time
    slices are fixed at configuration time — scheduling decisions must not
    depend on domain behaviour, or the schedule itself becomes a channel. *)

type t

val create : int array -> t
(** [create order] with [order] the cyclic sequence of domain indices to
    run on this core. *)

val order : t -> int array
val current : t -> int
val advance : t -> int
(** Move to the next domain in the cycle and return its index. *)

val n_domains : t -> int

val pp : Format.formatter -> t -> unit
