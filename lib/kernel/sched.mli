(** Static domain scheduler (one instance per core).

    As in seL4's domain scheduler, the sequence of domains and their time
    slices are fixed at configuration time — scheduling decisions must not
    depend on domain behaviour, or the schedule itself becomes a channel. *)

type t

type error =
  | Empty_order
  | Out_of_range of { index : int; n_domains : int }
      (** the offending domain index and how many domains exist *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val make : n_domains:int -> int array -> (t, error) result
(** [make ~n_domains order] validates [order] against the number of
    domains in the system: an empty order or an entry outside
    [0, n_domains) is rejected with a typed error *at construction
    time*, rather than surfacing later as an array access deep inside a
    switch.  The order is copied, so later mutation of the argument
    cannot corrupt the schedule.  This is the entry point the
    multi-core topology campaigns install generated scheduler orders
    through ({!Kernel.set_schedule}). *)

val create : int array -> t
(** [create order] with [order] the cyclic sequence of domain indices to
    run on this core.  Raises [Invalid_argument] on an empty order; it
    cannot check domain indices (it does not know how many domains
    exist) — use {!make} for full validation. *)

val order : t -> int array
val current : t -> int
val advance : t -> int
(** Move to the next domain in the cycle and return its index. *)

val n_domains : t -> int

val pp : Format.formatter -> t -> unit
