type t = {
  did : int;
  asid : int;
  colours : int list;
  slice : int;
  pad_cycles : int;
  core : int;
  page_table : (int, int) Hashtbl.t;
  mutable threads : Thread.t list;
  mutable kernel_text_base : int;
}

let create ~did ~asid ~colours ~slice ~pad_cycles ~core ~kernel_text_base =
  if slice <= 0 then invalid_arg "Domain.create: slice must be positive";
  if pad_cycles < 0 then invalid_arg "Domain.create: negative padding";
  {
    did;
    asid;
    colours;
    slice;
    pad_cycles;
    core;
    page_table = Hashtbl.create 64;
    threads = [];
    kernel_text_base;
  }

let translate t vpn = Hashtbl.find_opt t.page_table vpn

let map_page t ~vpn ~pfn = Hashtbl.replace t.page_table vpn pfn

let unmap_page t ~vpn = Hashtbl.remove t.page_table vpn

let mapped_vpns t =
  Hashtbl.fold (fun vpn _ acc -> vpn :: acc) t.page_table []
  |> List.sort compare

let add_thread t thread = t.threads <- t.threads @ [ thread ]

let threads t = t.threads

let pp ppf t =
  Format.fprintf ppf "domain %d (asid %d, core %d): %d threads, colours [%s]"
    t.did t.asid t.core (List.length t.threads)
    (String.concat ";" (List.map string_of_int t.colours))
