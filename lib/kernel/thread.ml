type state = Ready | Blocked_send of int | Blocked_recv of int | Halted

type step_kind = User | Trap

type t = {
  tid : int;
  dom : int;
  prog : Program.t;
  code_vbase : int;
  mutable pc : int;
  mutable state : state;
  mutable obs_rev : Event.obs list;
  mutable n_obs : int;
  mutable msg : int;
  mutable traced : bool;
  mutable costs_rev : (step_kind * int) list;
  mutable n_costs : int;
  regs : int array;
}

let create ?regs ~tid ~dom ~code_vbase prog =
  let file = Array.make Program.n_registers 0 in
  (match regs with
  | Some init ->
    Array.blit init 0 file 0 (min (Array.length init) Program.n_registers)
  | None -> ());
  {
    tid;
    dom;
    prog;
    code_vbase;
    pc = 0;
    state = Ready;
    obs_rev = [];
    n_obs = 0;
    msg = 0;
    traced = false;
    costs_rev = [];
    n_costs = 0;
    regs = file;
  }

let check_reg r =
  if r < 0 || r >= Program.n_registers then invalid_arg "Thread: bad register"

let reg t r =
  check_reg r;
  t.regs.(r)

let set_reg t r v =
  check_reg r;
  t.regs.(r) <- v

let current_instr t =
  if t.pc >= 0 && t.pc < Array.length t.prog then Some t.prog.(t.pc) else None

let instr_vaddr t = t.code_vbase + (t.pc * 4)

let observe t o =
  t.obs_rev <- o :: t.obs_rev;
  t.n_obs <- t.n_obs + 1

let observations t = List.rev t.obs_rev

let observations_rev t = t.obs_rev

let obs_count t = t.n_obs

let runnable t = match t.state with Ready -> true | Blocked_send _ | Blocked_recv _ | Halted -> false

let set_traced t b = t.traced <- b

let record_cost t kind cycles =
  if t.traced then begin
    t.costs_rev <- (kind, cycles) :: t.costs_rev;
    t.n_costs <- t.n_costs + 1
  end

let cost_trace t = List.rev t.costs_rev

let cost_count t = t.n_costs

let code_pages t ~page_bits =
  let bytes = max 4 (Array.length t.prog * 4) in
  (bytes + (1 lsl page_bits) - 1) lsr page_bits

let pp ppf t =
  let state =
    match t.state with
    | Ready -> "ready"
    | Blocked_send ep -> Printf.sprintf "blocked-send(%d)" ep
    | Blocked_recv ep -> Printf.sprintf "blocked-recv(%d)" ep
    | Halted -> "halted"
  in
  Format.fprintf ppf "thread %d (dom %d) pc=%d %s" t.tid t.dom t.pc state
