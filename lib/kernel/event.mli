(** Kernel trace events and user-level observations.

    Events are the kernel's own audit trail (used by the verification layer
    to check, e.g., that every padded domain switch completed at the same
    deadline).  Observations are what a *user thread* can legitimately see:
    clock readings, latencies of its own timed loads, and received
    messages.  Noninterference (Sect. 5.2) is stated over observations —
    two runs differing only in another domain's secret must produce
    identical observation sequences. *)

type switch_reason =
  | Timer  (** preemption-timer interrupt at the end of a slice *)
  | Idle   (** domain had no runnable thread (blocked or halted) *)

type t =
  | Switch of {
      core : int;
      from_dom : int;
      to_dom : int;
      reason : switch_reason;
      slice_start : int;  (** when the outgoing domain's slice began *)
      start : int;        (** when the switch began *)
      finish : int;       (** when the incoming domain started running *)
      flush_cycles : int; (** history-dependent flush cost (0 if no flush) *)
      padded : bool;
      overrun : bool;     (** padding deadline was already past *)
    }
  | Trap of { core : int; dom : int; kind : string; start : int; cycles : int }
  | Irq_handled of { core : int; irq : int; owner_dom : int; during_dom : int; at : int; cycles : int }
  | Ipc_delivered of { ep : int; sender_dom : int; receiver_dom : int; at : int }
  | Thread_halted of { thread : int; dom : int; at : int }
  | Fault of { thread : int; dom : int; vaddr : int; at : int }

type obs =
  | Clock of int         (** a [Read_clock] result *)
  | Latency of int       (** cycles taken by a [Timed_load] *)
  | Recv of int          (** message value received over IPC *)

val pp : Format.formatter -> t -> unit
val pp_obs : Format.formatter -> obs -> unit

val switch_duration : t -> (int * int) option
(** For a [Switch] event, [(duration, finish - slice_start)]: the raw
    switch cost and the padded end-to-end slot. *)

val is_overrun : t -> bool
