(** The workload DSL.

    Victims, Trojans and spies are small deterministic programs over this
    instruction set.  The language is deliberately minimal: it contains
    exactly the actions whose timing the paper reasons about — memory
    accesses (cache/TLB/prefetcher state), branches (predictor state),
    pure compute, clock reads (the attacker's measuring instrument),
    system calls (kernel-text and kernel-data state, IPC, interrupts). *)

open Tpro_hw

type syscall =
  | Sys_null                               (** shortest kernel path *)
  | Sys_info                               (** longer kernel path *)
  | Sys_send of { ep : int; msg : int }    (** synchronous IPC send *)
  | Sys_recv of { ep : int }               (** synchronous IPC receive *)
  | Sys_arm_irq of { irq : int; delay : int }
      (** program a device to raise [irq] [delay] cycles from now *)

val n_registers : int
(** Threads carry 8 general-purpose registers; the initial register file
    is part of a thread's *data*, so a secret can enter a computation
    without appearing in the program text — the setting of true side
    channels ("the secret is used to index a table", Sect. 3.1). *)

type reg = int
(** Register index in [0, n_registers). *)

type instr =
  | Load of int        (** read the byte at a virtual address *)
  | Store of int
  | Timed_load of int  (** load + observe its latency (attack primitive) *)
  | Clflush of int
      (** evict the line at a virtual address from the whole hierarchy
          (cache-maintenance instruction; the Flush+Reload primitive) *)
  | Compute of int     (** [n] cycles of data-independent ALU work *)
  | Set of reg * int   (** load an immediate into a register (1 cycle) *)
  | Add of reg * reg * int
      (** [Add (rd, rs, imm)]: rd <- rs + imm (1 cycle) *)
  | Load_idx of { base : int; index : reg; scale : int }
      (** data-dependent load at [base + reg(index) * scale] — the
          table-lookup access pattern of, e.g., an AES T-table *)
  | Store_idx of { base : int; index : reg; scale : int }
  | Branch of { tag : int; taken : bool }
      (** conditional branch; [tag] selects the predictor slot *)
  | Read_clock         (** observe the cycle counter *)
  | Syscall of syscall
  | Halt

type t = instr array

val length : t -> int

val concat : t list -> t

val loads : int list -> t
val stores : int list -> t
val timed_loads : int list -> t

val strided :
  op:[ `Load | `Store | `Timed_load ] -> base:int -> stride:int -> n:int -> t
(** [n] accesses at [base], [base+stride], ... *)

val halted : t -> t
(** Append a [Halt]. *)

val random :
  ?syscalls:bool -> Rng.t -> len:int -> data_base:int -> data_bytes:int -> t
(** Random straight-line program touching only [data_base ..
    data_base+data_bytes): loads, stores, timed loads, computes, branches,
    clock reads and (unless [syscalls:false]) null/info syscalls, ending
    in [Halt].  Used by the property-based noninterference checks to
    quantify over programs. *)

val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> t -> unit
