type switch_reason = Timer | Idle

type t =
  | Switch of {
      core : int;
      from_dom : int;
      to_dom : int;
      reason : switch_reason;
      slice_start : int;
      start : int;
      finish : int;
      flush_cycles : int;
      padded : bool;
      overrun : bool;
    }
  | Trap of { core : int; dom : int; kind : string; start : int; cycles : int }
  | Irq_handled of {
      core : int;
      irq : int;
      owner_dom : int;
      during_dom : int;
      at : int;
      cycles : int;
    }
  | Ipc_delivered of { ep : int; sender_dom : int; receiver_dom : int; at : int }
  | Thread_halted of { thread : int; dom : int; at : int }
  | Fault of { thread : int; dom : int; vaddr : int; at : int }

type obs = Clock of int | Latency of int | Recv of int

let pp_reason ppf = function
  | Timer -> Format.pp_print_string ppf "timer"
  | Idle -> Format.pp_print_string ppf "idle"

let pp ppf = function
  | Switch s ->
    Format.fprintf ppf
      "[%d] switch %d->%d (%a) slice@%d start=%d finish=%d flush=%d%s%s"
      s.core s.from_dom s.to_dom pp_reason s.reason s.slice_start s.start
      s.finish s.flush_cycles
      (if s.padded then " padded" else "")
      (if s.overrun then " OVERRUN" else "")
  | Trap t ->
    Format.fprintf ppf "[%d] trap dom=%d %s @%d (%d cycles)" t.core t.dom
      t.kind t.start t.cycles
  | Irq_handled i ->
    Format.fprintf ppf "[%d] irq %d (owner %d) handled during dom %d @%d (%d cycles)"
      i.core i.irq i.owner_dom i.during_dom i.at i.cycles
  | Ipc_delivered i ->
    Format.fprintf ppf "ipc ep=%d %d->%d @%d" i.ep i.sender_dom i.receiver_dom
      i.at
  | Thread_halted h ->
    Format.fprintf ppf "thread %d (dom %d) halted @%d" h.thread h.dom h.at
  | Fault f ->
    Format.fprintf ppf "fault thread %d (dom %d) vaddr=%#x @%d" f.thread f.dom
      f.vaddr f.at

let pp_obs ppf = function
  | Clock c -> Format.fprintf ppf "clock=%d" c
  | Latency l -> Format.fprintf ppf "lat=%d" l
  | Recv m -> Format.fprintf ppf "recv=%d" m

let switch_duration = function
  | Switch s -> Some (s.finish - s.start, s.finish - s.slice_start)
  | Trap _ | Irq_handled _ | Ipc_delivered _ | Thread_halted _ | Fault _ ->
    None

let is_overrun = function
  | Switch s -> s.overrun
  | Trap _ | Irq_handled _ | Ipc_delivered _ | Thread_halted _ | Fault _ ->
    false
