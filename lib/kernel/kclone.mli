(** Kernel images and the kernel-clone mechanism (Sect. 4.2).

    Even read-only sharing of code creates a channel (Gullasch et al. 2011;
    Yarom & Falkner 2014), so the kernel image itself must be coloured.
    The clone mechanism sets up a domain-private copy of the kernel text in
    memory of the domain's own colours.  Kernel *global data* remains
    shared; the kernel accesses it deterministically and re-establishes a
    canonical cache state for it on every domain switch, which is what the
    paper's Case 2a argument relies on.

    A trap's kernel path is modelled as a fixed window of text lines per
    trap kind — enough structure for a spy to distinguish which paths a
    Trojan exercised when the image is shared, and for the clone to remove
    exactly that.  Because strict colouring makes physically-contiguous
    multi-frame runs of one colour impossible, an image addresses its lines
    through a frame table (the model's analogue of the kernel's virtual
    mapping of its own image). *)

open Tpro_hw

type image

val text_lines : int
(** Kernel text size in cache lines: 64 (one 4 KiB frame at 64-byte
    lines). *)

val data_lines : int
(** Kernel global data: 16 lines. *)

type path = { first_line : int; n_lines : int }

val path_of_kind : string -> path
(** Text window fetched by each trap kind: ["null"], ["info"], ["send"],
    ["recv"], ["arm_irq"], ["fault"], ["irq"], ["switch"], ["switch_exit"].
    Windows of distinct kinds are disjoint where it matters for the
    kernel-text channel (E5). *)

val trap_kinds : string list

val owner : image -> int
(** Cache-line owner recorded for this image's text. *)

val boot : Frame_alloc.t -> Mem.t -> line_bits:int -> image
(** Allocate the shared kernel image (text + global data) from the
    reserved kernel colour, owned by {!Cache.shared_owner}. *)

val clone :
  Frame_alloc.t ->
  Mem.t ->
  line_bits:int ->
  shared:image ->
  colours:int list ->
  owner:int ->
  image
(** Domain-private copy: fresh text frames of the domain's colours; global
    data frames are shared with [shared]. *)

val text_paddrs : image -> line_bits:int -> path -> int list
(** Physical addresses of the lines fetched along [path]. *)

val data_paddrs : image -> line_bits:int -> int list
(** Physical addresses of all kernel global-data lines. *)

val text_frames : image -> int list
val data_frames : image -> int list

val same_text : image -> image -> bool
(** Do two images share their text frames (i.e. no clone happened)? *)
