open Tpro_hw

type syscall =
  | Sys_null
  | Sys_info
  | Sys_send of { ep : int; msg : int }
  | Sys_recv of { ep : int }
  | Sys_arm_irq of { irq : int; delay : int }

let n_registers = 8

type reg = int

type instr =
  | Load of int
  | Store of int
  | Timed_load of int
  | Clflush of int
  | Compute of int
  | Set of reg * int
  | Add of reg * reg * int
  | Load_idx of { base : int; index : reg; scale : int }
  | Store_idx of { base : int; index : reg; scale : int }
  | Branch of { tag : int; taken : bool }
  | Read_clock
  | Syscall of syscall
  | Halt

type t = instr array

let length = Array.length

let concat = Array.concat

let loads addrs = Array.of_list (List.map (fun a -> Load a) addrs)
let stores addrs = Array.of_list (List.map (fun a -> Store a) addrs)
let timed_loads addrs = Array.of_list (List.map (fun a -> Timed_load a) addrs)

let strided ~op ~base ~stride ~n =
  Array.init n (fun i ->
      let a = base + (i * stride) in
      match op with
      | `Load -> Load a
      | `Store -> Store a
      | `Timed_load -> Timed_load a)

let halted t = Array.append t [| Halt |]

let random ?(syscalls = true) rng ~len ~data_base ~data_bytes =
  if data_bytes <= 0 then invalid_arg "Program.random: data_bytes";
  let addr () = data_base + Rng.int rng data_bytes in
  (* register values are kept small enough that indexed accesses (scale
     64, plus a few increments) stay inside the data window *)
  let max_index = max 1 ((data_bytes / 64) - 32) in
  let instr () =
    match Rng.int rng 13 with
    | 0 | 1 | 2 -> Load (addr ())
    | 3 | 4 -> Store (addr ())
    | 5 -> Timed_load (addr ())
    | 6 -> Compute (1 + Rng.int rng 20)
    | 7 -> Branch { tag = Rng.int rng 16; taken = Rng.bool rng }
    | 8 -> Read_clock
    | 9 -> Set (Rng.int rng n_registers, Rng.int rng max_index)
    | 10 ->
      Add (Rng.int rng n_registers, Rng.int rng n_registers, Rng.int rng 4)
    | 11 ->
      Load_idx { base = data_base; index = Rng.int rng n_registers; scale = 64 }
    | _ ->
      if syscalls then Syscall (if Rng.bool rng then Sys_null else Sys_info)
      else Compute (1 + Rng.int rng 20)
  in
  Array.append (Array.init len (fun _ -> instr ())) [| Halt |]

let pp_syscall ppf = function
  | Sys_null -> Format.pp_print_string ppf "null"
  | Sys_info -> Format.pp_print_string ppf "info"
  | Sys_send { ep; msg } -> Format.fprintf ppf "send(ep=%d, msg=%d)" ep msg
  | Sys_recv { ep } -> Format.fprintf ppf "recv(ep=%d)" ep
  | Sys_arm_irq { irq; delay } ->
    Format.fprintf ppf "arm_irq(irq=%d, +%d)" irq delay

let pp_instr ppf = function
  | Load a -> Format.fprintf ppf "load %#x" a
  | Store a -> Format.fprintf ppf "store %#x" a
  | Timed_load a -> Format.fprintf ppf "timed_load %#x" a
  | Clflush a -> Format.fprintf ppf "clflush %#x" a
  | Compute n -> Format.fprintf ppf "compute %d" n
  | Set (r, v) -> Format.fprintf ppf "set r%d, %d" r v
  | Add (rd, rs, imm) -> Format.fprintf ppf "add r%d, r%d, %d" rd rs imm
  | Load_idx { base; index; scale } ->
    Format.fprintf ppf "load [%#x + r%d*%d]" base index scale
  | Store_idx { base; index; scale } ->
    Format.fprintf ppf "store [%#x + r%d*%d]" base index scale
  | Branch { tag; taken } ->
    Format.fprintf ppf "branch #%d %s" tag (if taken then "taken" else "not-taken")
  | Read_clock -> Format.pp_print_string ppf "rdclock"
  | Syscall s -> Format.fprintf ppf "syscall %a" pp_syscall s
  | Halt -> Format.pp_print_string ppf "halt"

let pp ppf t =
  Array.iteri (fun i ins -> Format.fprintf ppf "%3d: %a@\n" i pp_instr ins) t
