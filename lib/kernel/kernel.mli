(** The kernel model: an seL4-style microkernel with switchable
    time-protection mechanisms (Sect. 4.2 of the paper).

    Each defence is an independent feature flag so experiments can ablate
    them one by one:

    - [colouring]: partition the LLC between domains by page colour
      (Sect. 4.1); colour 0 is reserved for the kernel.
    - [kernel_clone]: give each domain a private copy of the kernel text in
      its own colours (the policy-free clone mechanism).
    - [flush_on_switch]: reset all core-local micro-architectural state on
      each *domain* switch (never on intra-domain switches).
    - [pad_switch]: hide the history-dependent flush latency by padding the
      switch; the deadline is [slice_start + slice + pad_cycles] with the
      padding attribute supplied by the switched-from domain.
    - [partition_irqs]: keep interrupts masked unless owned by the current
      domain.
    - [deterministic_delivery]: the Cock et al. IPC discipline — a domain
      that runs out of runnable threads still occupies the processor until
      its padded slice boundary, so cross-domain message delivery times are
      policy-determined rather than behaviour-determined.

    The execution engine is event-driven over per-core cycle counters:
    each [step] runs one instruction (or one switch, interrupt or idle
    action) on the core whose clock is furthest behind. *)

open Tpro_hw

exception Uncovered_flushable of string
(** Raised by the switch path when [flush_on_switch] is on and the
    machine's flush report omits a resource the registry lists as
    flushable — the kernel's evidence obligation (every registered
    flushable resource is reset inside the padded switch) was not met.
    The payload is the uncovered resource's name. *)

type config = {
  colouring : bool;
  kernel_clone : bool;
  flush_on_switch : bool;
  pad_switch : bool;
  partition_irqs : bool;
  deterministic_delivery : bool;
}

val config_none : config
(** All defences off: a conventional OS. *)

val config_full : config
(** Full time protection. *)

val pp_config : Format.formatter -> config -> unit

type t

val create :
  ?machine_config:Machine.config ->
  ?n_endpoints:int ->
  ?n_irqs:int ->
  config ->
  t
(** Boot: build the machine, reserve kernel-colour frames and allocate the
    shared kernel image. *)

val machine : t -> Machine.t
val config : t -> config
val allocator : t -> Frame_alloc.t
val shared_image : t -> Kclone.image
val image_of_domain : t -> Domain.t -> Kclone.image
val irqs : t -> Irq.t
val domains : t -> Domain.t list
val domain : t -> int -> Domain.t

val create_domain :
  t -> ?core:int -> ?n_colours:int -> slice:int -> pad_cycles:int -> unit ->
  Domain.t
(** Create a domain and append it to its core's schedule.  With colouring
    on, it receives the next [n_colours] (default 1) unused colours and, if
    [kernel_clone] is configured, a private kernel image in those colours.
    With colouring off it may use every colour. *)

val set_schedule : t -> core:int -> int array -> (unit, Sched.error) result
(** Replace [core]'s scheduler order (by default, domains run in
    creation order).  The order is validated with {!Sched.make} — an
    empty order or an out-of-range domain index is a typed error — and
    every listed domain must be hosted on [core] (raises
    [Invalid_argument] otherwise, as does a [core] out of range).  The
    core's current domain becomes the order's head and its slice restarts
    at the core's current time; install schedules at boot, before
    threads run. *)

val map_region : t -> Domain.t -> vbase:int -> pages:int -> unit
(** Back a virtual region with freshly allocated frames of the domain's
    colours.  [vbase] must be page-aligned. *)

val spawn : ?regs:int array -> t -> Domain.t -> Program.t -> Thread.t
(** Create a thread, allocate and map its code image.  [regs]
    initialises the register file — the thread's *data*, where a secret
    lives in the side-channel scenarios. *)

val share_region :
  t ->
  owner:Domain.t ->
  guest:Domain.t ->
  vbase:int ->
  pages:int ->
  guest_vbase:int ->
  unit
(** Read-only sharing: map [owner]'s backed region (at [vbase]) into
    [guest]'s address space at [guest_vbase].  Shared frames keep the
    owner's colour, so sharing deliberately punctures cache partitioning
    — the substrate for the Flush+Reload experiment (E13).  A system
    aiming for time protection must simply not do this (or deduplicate
    with per-domain copies), which is the experiment's "defence" row. *)

val set_irq_owner : t -> irq:int -> dom:Domain.t -> unit

val vaddr_to_paddr : t -> Domain.t -> int -> int option

val step : t -> bool
(** Execute one action; [false] when no further action can change the
    system (all threads halted, or everything blocked with no pending
    interrupt). *)

val run : ?max_steps:int -> t -> unit
(** Step until quiescent or [max_steps] (default 1_000_000). *)

val all_halted : t -> bool
val events : t -> Event.t list
(** Chronological kernel trace. *)

val last_event : t -> Event.t option
(** Most recent trace event (O(1), unlike [events]). *)

val current_domain : t -> core:int -> Domain.t
val now : t -> core:int -> int

val line_bits : t -> int
val page_bits : t -> int
val n_colours : t -> int

val pp : Format.formatter -> t -> unit
