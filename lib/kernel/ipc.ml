type endpoint = {
  mutable sender : (Thread.t * int) option;
  mutable receiver : Thread.t option;
}

type t = endpoint array

let create ~n_endpoints =
  if n_endpoints <= 0 then invalid_arg "Ipc.create: n_endpoints";
  Array.init n_endpoints (fun _ -> { sender = None; receiver = None })

let n_endpoints t = Array.length t

let get t ep =
  if ep < 0 || ep >= Array.length t then invalid_arg "Ipc: endpoint out of range";
  t.(ep)

let queued_sender t ~ep = (get t ep).sender
let queued_receiver t ~ep = (get t ep).receiver

let queue_sender t ~ep thread ~msg =
  let e = get t ep in
  if e.sender <> None then invalid_arg "Ipc.queue_sender: endpoint busy";
  e.sender <- Some (thread, msg)

let queue_receiver t ~ep thread =
  let e = get t ep in
  if e.receiver <> None then invalid_arg "Ipc.queue_receiver: endpoint busy";
  e.receiver <- Some thread

let clear_sender t ~ep = (get t ep).sender <- None
let clear_receiver t ~ep = (get t ep).receiver <- None

let pp ppf t =
  let busy =
    Array.fold_left
      (fun n e -> if e.sender <> None || e.receiver <> None then n + 1 else n)
      0 t
  in
  Format.fprintf ppf "ipc: %d endpoints (%d busy)" (Array.length t) busy
