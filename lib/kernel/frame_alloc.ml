open Tpro_hw

type t = { mem : Mem.t; n_colours : int; free : bool array }

let reserved_kernel_colour = 0

let create mem ~n_colours =
  if n_colours <= 0 then invalid_arg "Frame_alloc.create: n_colours";
  let free = Array.make (Mem.n_frames mem) true in
  for f = 0 to Mem.n_frames mem - 1 do
    if Mem.owner_of_frame mem f <> Mem.free_owner then free.(f) <- false
  done;
  { mem; n_colours; free }

let n_colours t = t.n_colours

let colour_of_frame t frame = frame mod t.n_colours

let alloc t ~owner ~colours =
  let n = Array.length t.free in
  let rec go f =
    if f >= n then None
    else if t.free.(f) && List.mem (colour_of_frame t f) colours then begin
      t.free.(f) <- false;
      Mem.set_owner t.mem ~frame:f ~owner;
      Some f
    end
    else go (f + 1)
  in
  go 0

let alloc_exn t ~owner ~colours =
  match alloc t ~owner ~colours with
  | Some f -> f
  | None -> failwith "Frame_alloc: out of frames for requested colours"

let free t ~frame =
  if frame < 0 || frame >= Array.length t.free then
    invalid_arg "Frame_alloc.free: frame out of range";
  t.free.(frame) <- true;
  Mem.set_owner t.mem ~frame ~owner:Mem.free_owner

let free_count t ~colour =
  let n = ref 0 in
  Array.iteri (fun f b -> if b && colour_of_frame t f = colour then incr n) t.free;
  !n

let all_colours t = List.init t.n_colours (fun c -> c)

let pp ppf t =
  let free = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.free in
  Format.fprintf ppf "frame_alloc: %d free frames, %d colours" free t.n_colours
