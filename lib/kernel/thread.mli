(** Thread control blocks.

    Threads belong to exactly one security domain.  Intra-domain scheduling
    is unrestricted (intra-domain flows are not a policy concern, Sect. 2);
    only inter-domain switches carry time-protection obligations. *)

type state =
  | Ready
  | Blocked_send of int  (** waiting on endpoint *)
  | Blocked_recv of int
  | Halted

type step_kind =
  | User  (** an ordinary user-mode instruction — Case 1 of Sect. 5.2 *)
  | Trap  (** a system call, fault or exception — Case 2a *)

type t = {
  tid : int;
  dom : int;           (** owning domain id *)
  prog : Program.t;
  code_vbase : int;    (** virtual base of the code image *)
  mutable pc : int;    (** instruction index *)
  mutable state : state;
  mutable obs_rev : Event.obs list;
  mutable n_obs : int;  (** [List.length obs_rev], maintained so trace
                            consumers never pay a list walk *)
  mutable msg : int;   (** last message received *)
  mutable traced : bool;
  mutable costs_rev : (step_kind * int) list;
  mutable n_costs : int;  (** [List.length costs_rev] *)
  regs : int array;  (** general-purpose registers (initial values are
                         thread data, e.g. a secret) *)
}

val create : ?regs:int array -> tid:int -> dom:int -> code_vbase:int -> Program.t -> t
(** [regs] initialises the register file (default all zero; shorter
    arrays initialise a prefix). *)

val reg : t -> int -> int
val set_reg : t -> int -> int -> unit

val current_instr : t -> Program.instr option
(** [None] once the program counter ran off the end. *)

val instr_vaddr : t -> int
(** Virtual address of the current instruction (4 bytes per instruction). *)

val observe : t -> Event.obs -> unit

val observations : t -> Event.obs list
(** In program order.  Allocates (reverses the internal list): hot
    consumers should use {!observations_rev} + {!obs_count} and keep an
    incremental view instead. *)

val observations_rev : t -> Event.obs list
(** The raw internal list, newest first.  O(1), no allocation. *)

val obs_count : t -> int
(** Number of observations so far.  O(1). *)

val runnable : t -> bool

val set_traced : t -> bool -> unit
(** Enable per-instruction cost recording (used by the unwinding checks of
    the verification layer). *)

val record_cost : t -> step_kind -> int -> unit
(** No-op unless tracing is enabled. *)

val cost_trace : t -> (step_kind * int) list
(** Cycles consumed by each executed instruction, in program order,
    labelled user-step vs. trap.  Allocates; see {!cost_count} for the
    O(1) length. *)

val cost_count : t -> int
(** Number of recorded instruction costs.  O(1). *)

val code_pages : t -> page_bits:int -> int
(** Number of pages the code image occupies. *)

val pp : Format.formatter -> t -> unit
