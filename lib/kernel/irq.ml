type t = { owners : int array; mutable armed : (int * int) list }

let create ~n_irqs =
  if n_irqs <= 0 then invalid_arg "Irq.create: n_irqs";
  { owners = Array.make n_irqs (-1); armed = [] }

let n_irqs t = Array.length t.owners

let check t irq =
  if irq < 0 || irq >= n_irqs t then invalid_arg "Irq: irq out of range"

let set_owner t ~irq ~dom =
  check t irq;
  t.owners.(irq) <- dom

let owner t irq =
  check t irq;
  t.owners.(irq)

let arm t ~irq ~at =
  check t irq;
  t.armed <-
    List.sort compare ((at, irq) :: t.armed)

let take_pending t ~now ~allowed =
  let rec go acc = function
    | [] -> None
    | ((at, irq) as hd) :: rest ->
      if at > now then None
      else if allowed irq then begin
        t.armed <- List.rev_append acc rest;
        Some irq
      end
      else go (hd :: acc) rest
  in
  go [] t.armed

let pending t = t.armed

let pp ppf t =
  Format.fprintf ppf "irq: %d sources, %d armed" (n_irqs t)
    (List.length t.armed)
