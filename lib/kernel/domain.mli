(** Security domains.

    A domain is the unit the security policy treats as opaque (Sect. 2): a
    set of cooperating threads, an address space (ASID + page table), a
    set of LLC page colours, a core affinity, a time slice, and the
    padding attribute of Sect. 4.2 — the paper makes the padding time a
    property of the *switched-from* domain, set by the system designer,
    not by the kernel. *)

type t = {
  did : int;
  asid : int;
  colours : int list;   (** LLC page colours this domain may use *)
  slice : int;          (** time-slice length in cycles *)
  pad_cycles : int;     (** switch padding attribute (switched-from) *)
  core : int;           (** core affinity *)
  page_table : (int, int) Hashtbl.t;  (** vpn -> pfn *)
  mutable threads : Thread.t list;
  mutable kernel_text_base : int;
      (** physical base of the kernel text this domain executes; equals
          the shared image unless a kernel clone was performed *)
}

val create :
  did:int ->
  asid:int ->
  colours:int list ->
  slice:int ->
  pad_cycles:int ->
  core:int ->
  kernel_text_base:int ->
  t

val translate : t -> int -> int option
(** Page-table lookup: vpn to pfn. *)

val map_page : t -> vpn:int -> pfn:int -> unit
val unmap_page : t -> vpn:int -> unit

val mapped_vpns : t -> int list

val add_thread : t -> Thread.t -> unit

val threads : t -> Thread.t list
(** In creation order. *)

val pp : Format.formatter -> t -> unit
