(** Synchronous IPC endpoints.

    Rendezvous semantics as in seL4: a send blocks until a receiver is
    waiting and vice versa.  The *time-protection* aspect — when a
    cross-domain message's effect becomes visible — is governed by the
    kernel's switch policy (immediate switch on idle vs. delivery padded to
    the slice boundary, the Cock et al. model), not by this module. *)

type t

val create : n_endpoints:int -> t

val n_endpoints : t -> int

val queued_sender : t -> ep:int -> (Thread.t * int) option
val queued_receiver : t -> ep:int -> Thread.t option

val queue_sender : t -> ep:int -> Thread.t -> msg:int -> unit
val queue_receiver : t -> ep:int -> Thread.t -> unit

val clear_sender : t -> ep:int -> unit
val clear_receiver : t -> ep:int -> unit

val pp : Format.formatter -> t -> unit
