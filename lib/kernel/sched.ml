type t = { order : int array; mutable idx : int }

let create order =
  if Array.length order = 0 then invalid_arg "Sched.create: empty schedule";
  { order; idx = 0 }

let order t = Array.copy t.order

let current t = t.order.(t.idx)

let advance t =
  t.idx <- (t.idx + 1) mod Array.length t.order;
  t.order.(t.idx)

let n_domains t = Array.length t.order

let pp ppf t =
  Format.fprintf ppf "schedule [%s] at %d"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.order)))
    t.idx
