type t = { order : int array; mutable idx : int }

type error =
  | Empty_order
  | Out_of_range of { index : int; n_domains : int }

let error_to_string = function
  | Empty_order -> "empty schedule"
  | Out_of_range { index; n_domains } ->
    Printf.sprintf "domain index %d out of range (system has %d domain%s)"
      index n_domains
      (if n_domains = 1 then "" else "s")

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let make ~n_domains order =
  if Array.length order = 0 then Error Empty_order
  else
    match
      Array.find_opt (fun did -> did < 0 || did >= n_domains) order
    with
    | Some index -> Error (Out_of_range { index; n_domains })
    | None -> Ok { order = Array.copy order; idx = 0 }

let create order =
  if Array.length order = 0 then invalid_arg "Sched.create: empty schedule";
  { order; idx = 0 }

let order t = Array.copy t.order

let current t = t.order.(t.idx)

let advance t =
  t.idx <- (t.idx + 1) mod Array.length t.order;
  t.order.(t.idx)

let n_domains t = Array.length t.order

let pp ppf t =
  Format.fprintf ppf "schedule [%s] at %d"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.order)))
    t.idx
