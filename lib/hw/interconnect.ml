type mode =
  | Shared
  | Partitioned of { slot : int; n_domains : int }
  | Throttled of { window : int; max_per_window : int; n_domains : int }

type t = {
  service : int;
  ic_mode : mode;
  mutable busy_until : int; (* Shared/Throttled: global occupancy horizon *)
  mutable per_domain : int array; (* Partitioned: per-domain horizon *)
  win_idx : int array; (* Throttled: current window per domain *)
  win_count : int array; (* Throttled: transfers in the window *)
  mutable digest_cache : int64; (* Partitioned: memoised horizon chain *)
  mutable digest_clean : bool;
}

let create ?(service = 8) ?(mode = Shared) () =
  if service <= 0 then invalid_arg "Interconnect.create: service";
  let n =
    match mode with
    | Shared -> 0
    | Partitioned { n_domains; _ } | Throttled { n_domains; _ } -> n_domains
  in
  {
    service;
    ic_mode = mode;
    busy_until = 0;
    per_domain = Array.make (max n 1) 0;
    win_idx = Array.make (max n 1) (-1);
    win_count = Array.make (max n 1) 0;
    digest_cache = 0L;
    digest_clean = false;
  }

let mode t = t.ic_mode

(* In partitioned (TDMA) mode, domain [d] may only start a transfer inside
   its own slot: absolute cycles [k*slot*n + d*slot, k*slot*n + (d+1)*slot).
   The wait to reach the slot depends only on wall-clock time and the
   domain's own horizon, never on other domains' traffic. *)
let next_slot_start ~slot ~n_domains ~domain ~now =
  let frame = slot * n_domains in
  let base = now / frame * frame in
  let mine = base + (domain * slot) in
  if now < mine then mine
  else if now + 1 <= mine + slot - 1 then now
  else mine + frame

let request t ~domain ~now =
  match t.ic_mode with
  | Shared ->
    let start = max now t.busy_until in
    t.busy_until <- start + t.service;
    start - now + t.service
  | Partitioned { slot; n_domains } ->
    let d = ((domain mod n_domains) + n_domains) mod n_domains in
    let own = t.per_domain.(d) in
    let earliest = max now own in
    let start = next_slot_start ~slot ~n_domains ~domain:d ~now:earliest in
    t.per_domain.(d) <- start + t.service;
    t.digest_clean <- false;
    start - now + t.service
  | Throttled { window; max_per_window; n_domains } ->
    (* per-domain rate cap, but a single shared queue behind it *)
    let d = ((domain mod n_domains) + n_domains) mod n_domains in
    let rec release at =
      let w = at / window in
      if t.win_idx.(d) <> w then begin
        t.win_idx.(d) <- w;
        t.win_count.(d) <- 0
      end;
      if t.win_count.(d) >= max_per_window then release ((w + 1) * window)
      else at
    in
    let released = release now in
    t.win_count.(d) <- t.win_count.(d) + 1;
    let start = max released t.busy_until in
    t.busy_until <- start + t.service;
    start - now + t.service

(* From-scratch digest — the Shared/Throttled digest is a single O(1)
   hash of the occupancy horizon; only Partitioned folds per-domain
   horizons (and memoises the chain below). *)
let digest_fold t =
  match t.ic_mode with
  | Shared | Throttled _ -> Rng.hash64 (Int64.of_int t.busy_until)
  | Partitioned _ ->
    Array.fold_left (fun acc h -> Rng.chain_int acc h) 11L t.per_domain

let digest t =
  match t.ic_mode with
  | Shared | Throttled _ -> Rng.hash64 (Int64.of_int t.busy_until)
  | Partitioned _ ->
    if not t.digest_clean then begin
      t.digest_cache <- digest_fold t;
      t.digest_clean <- true
    end;
    t.digest_cache

let reset t =
  t.busy_until <- 0;
  Array.fill t.per_domain 0 (Array.length t.per_domain) 0;
  Array.fill t.win_idx 0 (Array.length t.win_idx) (-1);
  Array.fill t.win_count 0 (Array.length t.win_count) 0;
  t.digest_clean <- false

let pp ppf t =
  match t.ic_mode with
  | Shared -> Format.fprintf ppf "interconnect: shared, busy_until=%d" t.busy_until
  | Partitioned { slot; n_domains } ->
    Format.fprintf ppf "interconnect: TDMA %d-cycle slots over %d domains" slot
      n_domains
  | Throttled { window; max_per_window; n_domains } ->
    Format.fprintf ppf
      "interconnect: MBA-style cap %d transfers per %d cycles over %d domains"
      max_per_window window n_domains
