(** The whole abstract machine: per-core private state (L1 I/D caches,
    TLB, branch predictor, prefetcher, cycle counter) plus shared state
    (last-level cache, memory interconnect, physical memory).

    Every operation advances the issuing core's clock by the cycles it
    consumed and returns that cost.  Costs are computed from base latencies
    plus the unspecified jitter function applied to digests of exactly the
    state each event may legitimately depend on (Sect. 5.2, Case 1 of the
    paper): a hit examines the indexed set of the cache that hit; a miss
    additionally examines the next level; a DRAM access also queues on the
    interconnect. *)

type t

type fault =
  | Skip_flush of string
      (** [flush_core_local] neither flushes nor reports the named
          resource — the kernel's flush-coverage audit can observe the
          gap (it raises {!Kernel.Uncovered_flushable}) *)
  | Silent_skip_flush of string
      (** the named resource is left un-flushed but an empty
          {!Resource.flush_report} is filed for it anyway, so the
          kernel's audit passes and only behavioural oracles (digest or
          timing divergence) can catch the bypass *)

type config = {
  n_cores : int;
  l1_geom : Cache.geometry;
  l2_geom : Cache.geometry option;
      (** optional private second-level cache (the paper: "private L2
          caches (on Intel hardware)" are flushable core-local state) *)
  llc_geom : Cache.geometry;
  tlb_capacity : int;
  n_frames : int;
  page_bits : int;
  lat : Latency.t;
  bus_mode : Interconnect.mode;
  bus_service : int;  (** interconnect occupancy per transfer *)
  prefetch_enabled : bool;
  smt : bool;
      (** hardware multithreading: hardware thread [2k+1] shares all the
          private micro-architectural state of thread [2k] (only the
          cycle counter is per-thread) — the paper's "fundamentally
          insecure" configuration when threads belong to different
          domains *)
  replacement : Cache.replacement;  (** replacement policy for all caches *)
  btb_entries : int option;
      (** branch target buffer size; [None] (the default) omits the BTB,
          leaving digests and costs identical to pre-BTB machines *)
  fault : fault option;
      (** deliberate defence bypass, used only to validate that the fuzz
          oracles kill known-broken machines; [None] everywhere else *)
}

val default_config : config
(** 1 core, 64-set/4-way L1s (16 KiB — exactly one page colour, so the L1
    cannot be partitioned and must be flushed, as the paper observes),
    1024-set/8-way LLC (512 KiB, 16 page colours with 4 KiB pages),
    32-entry TLB, 1024 frames. *)

val create : config -> t

val config : t -> config
val n_cores : t -> int
val clock : t -> core:int -> Clock.t
val now : t -> core:int -> int
val llc : t -> Cache.t
val l1i : t -> core:int -> Cache.t
val l1d : t -> core:int -> Cache.t
val l2 : t -> core:int -> Cache.t option
val tlb : t -> core:int -> Tlb.t
val bpred : t -> core:int -> Bpred.t
val prefetch : t -> core:int -> Prefetch.t
val btb : t -> core:int -> Btb.t option
val bus : t -> Interconnect.t
val mem : t -> Mem.t
val lat : t -> Latency.t
val page_bits : t -> int
val n_colours : t -> int
(** Page colours exposed by the LLC. *)

(** {1 Resource registry}

    Every piece of micro-architectural state is also packed as a
    {!Resource.t} and registered: per-core registries hold the private
    (flushable) structures, the machine-wide registry holds the shared
    ones.  [digest_core], [digest_shared], [flush_core_local] and [pp]
    are folds over these registries, and the security model derives its
    taxonomy from them — so a resource registered here is automatically
    digested, flushed, audited and printed with no per-layer wiring. *)

val core_resources : t -> core:int -> Resource.t list
(** Present resources of one core, in registry (digest/flush) order. *)

val shared_resources : t -> Resource.t list
(** Present shared resources: the LLC (partitionable, with its colour
    count) and the interconnect (out of scope). *)

val register_core_resource : t -> core:int -> Resource.t -> unit
(** Append an extra resource to one core's registry.  It is appended as
    its own digest group, so digests of machines without it are
    unaffected; from now on it participates in [digest_core], in
    [flush_core_local] (if flushable) and in the derived taxonomy. *)

val register_shared_resource : t -> Resource.t -> unit

(** {1 Virtual accesses (user mode)} *)

val load :
  t ->
  core:int ->
  asid:int ->
  domain:int ->
  translate:(int -> int option) ->
  pc:int ->
  int ->
  (int, [ `Fault ]) result
(** [load t ~core ~asid ~domain ~translate ~pc vaddr] performs a data read:
    TLB lookup (page walk via [translate] on miss), then L1D → LLC → DRAM.
    Returns the cycles consumed, or [`Fault] if the translation is
    undefined (a trap — Case 2a).  [domain] is recorded as line owner for
    invariant checking only. *)

val store :
  t ->
  core:int ->
  asid:int ->
  domain:int ->
  translate:(int -> int option) ->
  pc:int ->
  int ->
  (int, [ `Fault ]) result

val fetch :
  t ->
  core:int ->
  asid:int ->
  domain:int ->
  translate:(int -> int option) ->
  int ->
  (int, [ `Fault ]) result
(** Instruction fetch at a virtual pc, through the L1 I-cache. *)

val branch : t -> core:int -> pc:int -> taken:bool -> int
(** Resolve a branch through the predictor; cost is [branch_hit] or
    [branch_miss]. *)

val compute : t -> core:int -> cycles:int -> int
(** Pure ALU work: data-independent, exactly [cycles]. *)

(** {1 Physical accesses (kernel mode)} *)

val touch_paddr : t -> core:int -> owner:int -> write:bool -> int -> int
(** Kernel data access by physical address (kernel runs untranslated),
    through L1D → LLC → DRAM. *)

val fetch_paddr : t -> core:int -> owner:int -> int -> int
(** Kernel text fetch by physical address, through L1I → LLC → DRAM. *)

val flush_line :
  t ->
  core:int ->
  asid:int ->
  translate:(int -> int option) ->
  int ->
  (int, [ `Fault ]) result
(** [clflush]-style line invalidation by virtual address: drops the line
    from every cache level on every core (cache maintenance is coherent).
    The attacker's tool in Flush+Reload.  Returns the cycles consumed. *)

(** {1 Time-protection primitives} *)

val flush_core_local : t -> core:int -> int
(** Flush all core-private state (every registered flushable resource:
    L1 I/D, private L2, TLB, branch predictor, prefetcher, BTB when
    configured, plus anything registered later).  The returned cost is
    *history-dependent* — base plus a per-dirty-line write-back term plus
    jitter over the pre-flush state — which is precisely why the paper
    pads the domain switch. *)

val flush_core_local_report :
  t -> core:int -> int * (string * Resource.flush_report) list
(** Like [flush_core_local], but also returns, per flushed resource and
    in flush order, its name and {!Resource.flush_report} — the kernel's
    evidence that the switch flush covered every registered flushable
    resource. *)

val wait_until : t -> core:int -> int -> int
(** Padding: spin the core's clock to an absolute deadline.  Returns
    cycles waited (0 if the deadline already passed). *)

val digest_shared : t -> int64
(** Digest of all shared (cross-core) state: LLC + interconnect.
    Resources maintain their digests incrementally, so this is an
    O(#resources) fold over cached values when nothing changed. *)

val digest_core : t -> core:int -> int64
(** Digest of one core's private micro-architectural state.  Same
    incremental-cache property as {!digest_shared}. *)

val digest_shared_fold : t -> int64
(** {!digest_shared} with every resource re-folded from scratch —
    differential ground truth (see {!Resource.set_digest_debug}). *)

val digest_core_fold : t -> core:int -> int64
(** {!digest_core} with every resource re-folded from scratch. *)

val pp : Format.formatter -> t -> unit
