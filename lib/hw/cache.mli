(** Set-associative cache model.

    This is the abstract micro-architectural resource at the heart of the
    paper: a stateful structure shared between security domains whose
    contents influence execution latency.  The model tracks, per line, the
    tag, validity, dirtiness and (for diagnostics and invariant checking
    only — real hardware has no such field) the owning security domain.

    Page colours: with [sets * line_size > page_size], the set index of a
    physical address extends above the page offset, so the OS controls the
    high index bits through frame allocation.  [n_colours] and
    [colour_of_paddr] expose this geometry exactly as used by page-colouring
    allocators (Kessler & Hill 1992; Liedtke et al. 1997). *)

type geometry = {
  sets : int;       (** number of sets; must be a power of two *)
  ways : int;       (** associativity *)
  line_bits : int;  (** log2 of the line size in bytes *)
}

type replacement =
  | Lru
  | Fifo
  | Pseudo_random of int
      (** victim chosen by hashing (seed, set index, per-set access count):
          arbitrary like a hardware LFSR, but a function of *set-local*
          history only, so it cannot itself become a cross-partition
          channel *)

type t

type evicted = { tag : int; dirty : bool; owner : int }

type access_result =
  | Hit
  | Miss of evicted option
      (** [Miss (Some e)] evicted a valid line [e]; [Miss None] filled an
          invalid way. *)

val shared_owner : int
(** Owner value used for lines that belong to no particular domain
    (e.g. shared kernel text before cloning). *)

val geometry :
  ?sets:int -> ?ways:int -> ?line_bits:int -> unit -> geometry
(** Geometry smart constructor with validation.  Defaults: 64 sets,
    4 ways, 64-byte lines (a typical L1). *)

val create : ?name:string -> ?replacement:replacement -> geometry -> t
(** Default replacement: [Lru]. *)

val replacement : t -> replacement

val name : t -> string
val geom : t -> geometry

val line_size : geometry -> int
val size_bytes : geometry -> int

val n_colours : geometry -> page_bits:int -> int
(** Number of page colours this cache exposes; at least 1. *)

val colour_of_paddr : geometry -> page_bits:int -> int -> int
(** Colour of the page containing a physical address. *)

val colour_of_set : geometry -> page_bits:int -> int -> int
(** Colour that a given set index belongs to. *)

val set_of_paddr : t -> int -> int
val tag_of_paddr : t -> int -> int

val paddr_of_line : t -> set:int -> tag:int -> int
(** Base physical address of the line with the given set index and tag —
    the inverse of ([set_of_paddr], [tag_of_paddr]) up to the line offset,
    computed from the shifts precomputed at [create] time.  Used to write
    evicted dirty lines back into the next level. *)

val access : t -> owner:int -> write:bool -> int -> access_result
(** [access t ~owner ~write paddr] performs an access, updating LRU state
    and allocating on miss (write-allocate, write-back). *)

val probe : t -> int -> bool
(** [probe t paddr] is [true] iff the access would hit.  Does not modify
    any state (used by attackers' timing analysis and by invariants). *)

val owner_of : t -> int -> int option
(** Owner of the line holding [paddr], if present. *)

val flush : t -> int
(** Invalidate everything; returns the number of dirty lines that had to be
    written back — the history-dependent component of flush latency that
    motivates padding (Sect. 4.2 of the paper).  The count comes from an
    O(1) per-resource dirty counter, and flushing a cache that has seen no
    access since the last flush is O(1) (the flat state is already the
    power-on image). *)

val invalidate_line : t -> int -> bool
(** [invalidate_line t paddr] drops the line holding [paddr] if present
    (a [clflush]-style maintenance operation); returns [true] iff the
    dropped line was dirty (and thus written back). *)

val dirty_count : t -> int
(** O(1): maintained incrementally in the flat store. *)

val valid_count : t -> int
(** O(1): maintained incrementally in the flat store. *)

val iter_lines : t -> (set:int -> way:int -> tag:int -> dirty:bool -> owner:int -> unit) -> unit
(** Iterate over all valid lines (for invariant checks). *)

val digest_set : t -> int -> int64
(** Deterministic digest of one set's contents (tags, validity, dirtiness,
    recency).  This is the state a single access's latency may legitimately
    depend on, per Sect. 5.2 Case 1 of the paper.  Memoised: O(1) unless
    the set changed since it was last digested. *)

val digest : t -> int64
(** Digest of the whole cache (used for flush latency and for the
    adversarial checker that detects illegitimate dependencies).

    Maintained incrementally: per-set digests are cached on write-through
    a stale watermark, so this is O(1) when the cache is unchanged since
    the last call and O(sets above the lowest changed set) otherwise —
    never the historical O(sets x ways) fold.  The value is bit-identical
    to {!digest_fold} by construction (both go through [Rng.chain]). *)

val digest_set_fold : t -> int -> int64
(** [digest_set] recomputed from scratch, bypassing the memo — ground
    truth for the debug re-fold assertion (see
    {!Resource.set_digest_debug}). *)

val digest_fold : t -> int64
(** [digest] recomputed from scratch as the historical O(sets x ways)
    fold, bypassing every cache.  Used by the debug re-fold assertion and
    by benchmarks as the "before" arm of incremental-vs-fold pairs. *)

val pp : Format.formatter -> t -> unit
