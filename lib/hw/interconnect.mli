(** Stateless shared interconnect with finite bandwidth.

    Sect. 2 of the paper explicitly *excludes* channels through stateless
    interconnects from time protection's scope: concurrent competition for
    bandwidth leaks, and only hardware bandwidth partitioning can stop it.
    We model the interconnect so experiment E9 can reproduce both halves of
    that claim — the channel stays open under full time protection, and
    closes under (hypothetical) strict per-domain bandwidth partitioning.

    The model is a single server with a FIFO occupancy horizon
    ([busy_until]): a request arriving at [now] waits for the horizon, then
    occupies the link for [service] cycles.  In partitioned mode each
    domain gets its own horizon advancing in fixed-width slots (TDMA). *)

type t

type mode =
  | Shared  (** realistic contemporary hardware: one queue for everyone *)
  | Partitioned of { slot : int; n_domains : int }
      (** hypothetical strict TDMA bandwidth partitioning *)
  | Throttled of { window : int; max_per_window : int; n_domains : int }
      (** Intel MBA-style *approximate* bandwidth limiting: each domain is
          capped at [max_per_window] transfers per [window] cycles, but
          the queue itself stays shared — the paper's footnote: "the
          approximate enforcement is not sufficient for preventing covert
          channels" *)

val create : ?service:int -> ?mode:mode -> unit -> t
(** [service] is the per-transfer occupancy in cycles (default 8). *)

val mode : t -> mode

val request : t -> domain:int -> now:int -> int
(** [request t ~domain ~now] returns the total interconnect latency (queue
    wait + service) of a transfer issued at absolute time [now], and
    advances the occupancy state. *)

val digest : t -> int64
(** O(1) for [Shared]/[Throttled] (a hash of the occupancy horizon);
    memoised for [Partitioned] (re-folded only after a request). *)

val digest_fold : t -> int64
(** [digest] recomputed from scratch, bypassing the memo. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
