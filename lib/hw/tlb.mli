(** ASID-tagged translation lookaside buffer.

    Modelled after the ARM-style TLB of Syeda & Klein (ITP 2018): entries
    are tagged with an address-space identifier (ASID), lookups only match
    entries of the querying ASID (or global entries), and the flush
    operations mirror the hardware's [invalidate all] / [invalidate by
    ASID] / [invalidate entry] instructions.  Sect. 5.3 of the paper uses
    exactly this structure to illustrate a partitioning theorem: page-table
    changes under one ASID cannot affect TLB consistency for another. *)

type t

type entry = { asid : int; vpn : int; pfn : int; global : bool }

val create : capacity:int -> t
(** Fully-associative TLB holding at most [capacity] entries, LRU
    replacement. *)

val capacity : t -> int

val lookup : t -> asid:int -> vpn:int -> int option
(** Translation hit for this ASID (or a global entry), refreshing LRU
    state. *)

val peek : t -> asid:int -> vpn:int -> int option
(** Like [lookup] but without modifying replacement state. *)

val insert : ?global:bool -> t -> asid:int -> vpn:int -> pfn:int -> unit
(** Fill after a page walk, evicting the LRU entry when full. *)

val flush_all : t -> int
(** Invalidate everything; returns the number of entries dropped. *)

val flush_asid : t -> int -> int
(** Invalidate all non-global entries of one ASID; returns count
    dropped. *)

val invalidate : t -> asid:int -> vpn:int -> unit

val entries : t -> entry list
(** All valid entries, for invariant checking. *)

val count : t -> int

val digest : t -> int64
(** Deterministic digest of TLB contents (for the latency model).
    Memoised: translation hits only refresh recency, which the digest
    does not cover, so the hot TLB-hit path reads a cached value —
    only inserts and invalidations force a re-fold. *)

val digest_fold : t -> int64
(** [digest] recomputed from scratch, bypassing the memo — ground truth
    for the debug re-fold assertion. *)

val pp : Format.formatter -> t -> unit
