(** The time model: latency parameters plus the paper's "deterministic yet
    unspecified function of the micro-architectural state" (Sect. 5.1).

    Base latencies are ordinary constants.  On top of each event we add a
    *jitter* term obtained by hashing a digest of exactly the state the
    event's latency may legitimately depend on (e.g. the one cache set an
    access indexes) with an arbitrary [seed].  Varying the seed varies the
    latency function while keeping it deterministic — the proof-style
    checks in [Tpro_secmodel] quantify over seeds, mirroring the paper's
    claim that the argument holds for *any* such function. *)

type t = {
  l1_hit : int;
  l2_hit : int;      (** private L2, when configured *)
  llc_hit : int;
  mem_lat : int;       (** DRAM access, excluding interconnect queueing *)
  tlb_hit : int;
  walk : int;          (** page-walk cost on TLB miss *)
  branch_hit : int;    (** correctly predicted branch *)
  branch_miss : int;   (** misprediction penalty *)
  dirty_wb : int;      (** per-dirty-line write-back cost during a flush *)
  flush_base : int;    (** fixed cost of the core-local flush sequence *)
  clflush_base : int;  (** fixed cost of a single-line [clflush] *)
  jitter_mag : int;    (** jitter is uniform in [0, jitter_mag] *)
  seed : int64;        (** selects the unspecified latency function *)
}

val default : t
(** Plausible relative magnitudes (L1 4, LLC 30, DRAM 120, ...); absolute
    values are irrelevant to every claim checked in this repository. *)

val with_seed : t -> int -> t

val jitter : t -> int64 -> int
(** [jitter t digest] — the unspecified deterministic component, in
    [0, jitter_mag]. *)

val pp : Format.formatter -> t -> unit
