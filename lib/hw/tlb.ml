type entry = { asid : int; vpn : int; pfn : int; global : bool }

(* Flat unboxed storage: one slot per index across parallel int arrays,
   with presence/globality packed into one byte per slot.  The digest is
   memoised: translation hits only refresh recency (which the digest does
   not cover), so the hot TLB-hit path never re-folds the table — only
   inserts and invalidations stale the cached digest. *)

let flag_present = 0x1
let flag_global = 0x2

type t = {
  asids : int array;
  vpns : int array;
  pfns : int array;
  flags : Bytes.t;
  stamps : int array;
  mutable tick : int;
  mutable n_entries : int;
  mutable digest_cache : int64;
  mutable digest_clean : bool;
  empty_digest : int64;
}

(* One slot's contribution to the digest chain — shared by the memoised
   recompute and the from-scratch re-fold. *)
let slot_bits ~flags ~asids ~vpns ~pfns i =
  let f = Char.code (Bytes.unsafe_get flags i) in
  if f land flag_present = 0 then 0
  else
    (Array.unsafe_get asids i lsl 40)
    lxor (Array.unsafe_get vpns i lsl 12)
    lxor Array.unsafe_get pfns i
    lxor if f land flag_global <> 0 then 1 lsl 62 else 0

let compute_digest t =
  let n = Array.length t.asids in
  let acc = ref 3L in
  for i = 0 to n - 1 do
    acc :=
      Rng.chain_int !acc
        (slot_bits ~flags:t.flags ~asids:t.asids ~vpns:t.vpns ~pfns:t.pfns i)
  done;
  !acc

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  let empty_digest =
    let acc = ref 3L in
    for _ = 1 to capacity do
      acc := Rng.chain_int !acc 0
    done;
    !acc
  in
  {
    asids = Array.make capacity 0;
    vpns = Array.make capacity 0;
    pfns = Array.make capacity 0;
    flags = Bytes.make capacity '\000';
    stamps = Array.make capacity 0;
    tick = 0;
    n_entries = 0;
    digest_cache = empty_digest;
    digest_clean = true;
    empty_digest;
  }

let capacity t = Array.length t.asids

let slot_matches t ~asid ~vpn i =
  let f = Char.code (Bytes.unsafe_get t.flags i) in
  f land flag_present <> 0
  && t.vpns.(i) = vpn
  && (f land flag_global <> 0 || t.asids.(i) = asid)

let find t ~asid ~vpn =
  let n = Array.length t.asids in
  let rec go i =
    if i >= n then -1 else if slot_matches t ~asid ~vpn i then i else go (i + 1)
  in
  go 0

let lookup t ~asid ~vpn =
  match find t ~asid ~vpn with
  | -1 -> None
  | i ->
    t.tick <- t.tick + 1;
    t.stamps.(i) <- t.tick;
    Some t.pfns.(i)

let peek t ~asid ~vpn =
  match find t ~asid ~vpn with -1 -> None | i -> Some t.pfns.(i)

let insert ?(global = false) t ~asid ~vpn ~pfn =
  t.tick <- t.tick + 1;
  let write i =
    (* re-inserting the identical translation only refreshes recency —
       the digest stays clean *)
    let f = Char.code (Bytes.unsafe_get t.flags i) in
    let new_f = flag_present lor if global then flag_global else 0 in
    if
      not
        (f = new_f && t.asids.(i) = asid && t.vpns.(i) = vpn
        && t.pfns.(i) = pfn)
    then begin
      if f land flag_present = 0 then t.n_entries <- t.n_entries + 1;
      t.asids.(i) <- asid;
      t.vpns.(i) <- vpn;
      t.pfns.(i) <- pfn;
      Bytes.unsafe_set t.flags i (Char.chr new_f);
      t.digest_clean <- false
    end;
    t.stamps.(i) <- t.tick
  in
  match find t ~asid ~vpn with
  | i when i >= 0 -> write i
  | _ ->
    let n = Array.length t.asids in
    let victim = ref 0 in
    (try
       for i = 0 to n - 1 do
         if Char.code (Bytes.unsafe_get t.flags i) land flag_present = 0
         then begin
           victim := i;
           raise Exit
         end
       done;
       for i = 1 to n - 1 do
         if t.stamps.(i) < t.stamps.(!victim) then victim := i
       done
     with Exit -> ());
    write !victim

(* [tick = 0] means no lookup hit or insert since the last full flush;
   entries only appear through inserts, so the TLB is already in the
   power-on state and the flush is O(1). *)
let flush_all t =
  let n = t.n_entries in
  if t.tick <> 0 then begin
    let cap = Array.length t.asids in
    Bytes.fill t.flags 0 cap '\000';
    Array.fill t.stamps 0 cap 0;
    t.tick <- 0;
    t.n_entries <- 0;
    t.digest_cache <- t.empty_digest;
    t.digest_clean <- true
  end;
  n

let flush_asid t asid =
  let n = ref 0 in
  let cap = Array.length t.asids in
  for i = 0 to cap - 1 do
    let f = Char.code (Bytes.unsafe_get t.flags i) in
    if f land flag_present <> 0 && f land flag_global = 0 && t.asids.(i) = asid
    then begin
      incr n;
      Bytes.unsafe_set t.flags i '\000';
      t.stamps.(i) <- 0;
      t.n_entries <- t.n_entries - 1
    end
  done;
  if !n > 0 then t.digest_clean <- false;
  !n

let invalidate t ~asid ~vpn =
  let cap = Array.length t.asids in
  for i = 0 to cap - 1 do
    if slot_matches t ~asid ~vpn i then begin
      Bytes.unsafe_set t.flags i '\000';
      t.stamps.(i) <- 0;
      t.n_entries <- t.n_entries - 1;
      t.digest_clean <- false
    end
  done

let entries t =
  let acc = ref [] in
  let cap = Array.length t.asids in
  for i = 0 to cap - 1 do
    let f = Char.code (Bytes.unsafe_get t.flags i) in
    if f land flag_present <> 0 then
      acc :=
        {
          asid = t.asids.(i);
          vpn = t.vpns.(i);
          pfn = t.pfns.(i);
          global = f land flag_global <> 0;
        }
        :: !acc
  done;
  !acc

let count t = t.n_entries

let digest t =
  if not t.digest_clean then begin
    t.digest_cache <- compute_digest t;
    t.digest_clean <- true
  end;
  t.digest_cache

let digest_fold t = compute_digest t

let pp ppf t =
  Format.fprintf ppf "tlb: %d/%d entries" (count t) (capacity t)
