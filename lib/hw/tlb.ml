type entry = { asid : int; vpn : int; pfn : int; global : bool }

type slot = { mutable e : entry option; mutable stamp : int }

type t = { slots : slot array; mutable tick : int }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  { slots = Array.init capacity (fun _ -> { e = None; stamp = 0 }); tick = 0 }

let capacity t = Array.length t.slots

let matches ~asid ~vpn = function
  | None -> false
  | Some e -> e.vpn = vpn && (e.global || e.asid = asid)

let find t ~asid ~vpn =
  let n = Array.length t.slots in
  let rec go i =
    if i >= n then None
    else if matches ~asid ~vpn t.slots.(i).e then Some i
    else go (i + 1)
  in
  go 0

let lookup t ~asid ~vpn =
  match find t ~asid ~vpn with
  | None -> None
  | Some i ->
    t.tick <- t.tick + 1;
    t.slots.(i).stamp <- t.tick;
    (match t.slots.(i).e with Some e -> Some e.pfn | None -> None)

let peek t ~asid ~vpn =
  match find t ~asid ~vpn with
  | None -> None
  | Some i -> (match t.slots.(i).e with Some e -> Some e.pfn | None -> None)

let insert ?(global = false) t ~asid ~vpn ~pfn =
  t.tick <- t.tick + 1;
  let entry = { asid; vpn; pfn; global } in
  match find t ~asid ~vpn with
  | Some i ->
    t.slots.(i).e <- Some entry;
    t.slots.(i).stamp <- t.tick
  | None ->
    let victim = ref 0 in
    let n = Array.length t.slots in
    (try
       for i = 0 to n - 1 do
         if t.slots.(i).e = None then begin
           victim := i;
           raise Exit
         end
       done;
       for i = 1 to n - 1 do
         if t.slots.(i).stamp < t.slots.(!victim).stamp then victim := i
       done
     with Exit -> ());
    t.slots.(!victim).e <- Some entry;
    t.slots.(!victim).stamp <- t.tick

let flush_all t =
  let n = ref 0 in
  Array.iter
    (fun s ->
      if s.e <> None then incr n;
      s.e <- None;
      s.stamp <- 0)
    t.slots;
  t.tick <- 0;
  !n

let flush_asid t asid =
  let n = ref 0 in
  Array.iter
    (fun s ->
      match s.e with
      | Some e when e.asid = asid && not e.global ->
        incr n;
        s.e <- None;
        s.stamp <- 0
      | Some _ | None -> ())
    t.slots;
  !n

let invalidate t ~asid ~vpn =
  Array.iter
    (fun s ->
      match s.e with
      | Some e when e.vpn = vpn && (e.global || e.asid = asid) ->
        s.e <- None;
        s.stamp <- 0
      | Some _ | None -> ())
    t.slots

let entries t =
  Array.fold_left
    (fun acc s -> match s.e with Some e -> e :: acc | None -> acc)
    [] t.slots

let count t =
  Array.fold_left (fun n s -> if s.e <> None then n + 1 else n) 0 t.slots

let digest t =
  Array.fold_left
    (fun acc s ->
      match s.e with
      | None -> Rng.combine acc 0L
      | Some e ->
        let bits =
          (e.asid lsl 40) lxor (e.vpn lsl 12) lxor e.pfn
          lxor if e.global then 1 lsl 62 else 0
        in
        Rng.combine acc (Int64.of_int bits))
    3L t.slots

let pp ppf t =
  Format.fprintf ppf "tlb: %d/%d entries" (count t) (capacity t)
