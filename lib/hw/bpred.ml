type t = {
  counters : int array; (* 2-bit saturating counters *)
  mutable history : int;
  history_mask : int;
  table_mask : int;
}

let create ?(history_bits = 8) ?(table_bits = 10) () =
  if history_bits < 1 || history_bits > 20 then
    invalid_arg "Bpred.create: history_bits out of range";
  if table_bits < 2 || table_bits > 20 then
    invalid_arg "Bpred.create: table_bits out of range";
  {
    counters = Array.make (1 lsl table_bits) 1;
    history = 0;
    history_mask = (1 lsl history_bits) - 1;
    table_mask = (1 lsl table_bits) - 1;
  }

let index t ~pc = ((pc lsr 2) lxor t.history) land t.table_mask

let predict t ~pc = t.counters.(index t ~pc) >= 2

let update t ~pc ~taken =
  let i = index t ~pc in
  let predicted = t.counters.(i) >= 2 in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history <- ((t.history lsl 1) lor (if taken then 1 else 0)) land t.history_mask;
  predicted = taken

let flush t =
  Array.fill t.counters 0 (Array.length t.counters) 1;
  t.history <- 0

let digest t =
  let acc = ref (Int64.of_int (t.history + 7)) in
  Array.iter (fun c -> acc := Rng.combine !acc (Int64.of_int c)) t.counters;
  !acc

let pp ppf t =
  Format.fprintf ppf "bpred: %d counters, history=%#x"
    (Array.length t.counters) t.history
