type t = {
  counters : int array; (* 2-bit saturating counters — flat, unboxed *)
  mutable history : int;
  history_mask : int;
  table_mask : int;
  mutable digest_cache : int64;
  mutable digest_clean : bool;
  mutable pristine : bool; (* exactly the power-on state: flush is O(1) *)
  empty_digest : int64;
}

(* The digest chain covers history and every counter, so it is memoised
   and staled only by updates that actually move a counter or the
   history register — a fully-trained (saturated, history-stable) branch
   stream leaves the cached digest valid. *)
let compute_digest ~history counters =
  let acc = ref (Int64.of_int (history + 7)) in
  for i = 0 to Array.length counters - 1 do
    acc := Rng.chain_int !acc (Array.unsafe_get counters i)
  done;
  !acc

(* Empty-state digest interned per table size: all counters at 1,
   history 0 — paid once per size per process, not per create/flush. *)
let empty_memo : (int, int64) Hashtbl.t = Hashtbl.create 4
let empty_memo_lock = Mutex.create ()

let empty_digest_for n =
  Mutex.lock empty_memo_lock;
  let d =
    match Hashtbl.find_opt empty_memo n with
    | Some d -> d
    | None ->
      let acc = ref 7L in
      for _ = 1 to n do
        acc := Rng.chain_int !acc 1
      done;
      Hashtbl.replace empty_memo n !acc;
      !acc
  in
  Mutex.unlock empty_memo_lock;
  d

let create ?(history_bits = 8) ?(table_bits = 10) () =
  if history_bits < 1 || history_bits > 20 then
    invalid_arg "Bpred.create: history_bits out of range";
  if table_bits < 2 || table_bits > 20 then
    invalid_arg "Bpred.create: table_bits out of range";
  let n = 1 lsl table_bits in
  let empty_digest = empty_digest_for n in
  {
    counters = Array.make n 1;
    history = 0;
    history_mask = (1 lsl history_bits) - 1;
    table_mask = n - 1;
    digest_cache = empty_digest;
    digest_clean = true;
    pristine = true;
    empty_digest;
  }

let index t ~pc = ((pc lsr 2) lxor t.history) land t.table_mask

let predict t ~pc = t.counters.(index t ~pc) >= 2

let update t ~pc ~taken =
  let i = index t ~pc in
  let predicted = t.counters.(i) >= 2 in
  let c = t.counters.(i) in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  let h' = ((t.history lsl 1) lor (if taken then 1 else 0)) land t.history_mask in
  if c' <> c || h' <> t.history then begin
    t.counters.(i) <- c';
    t.history <- h';
    t.digest_clean <- false;
    t.pristine <- false
  end;
  predicted = taken

let flush t =
  if not t.pristine then begin
    Array.fill t.counters 0 (Array.length t.counters) 1;
    t.history <- 0;
    t.digest_cache <- t.empty_digest;
    t.digest_clean <- true;
    t.pristine <- true
  end

let digest t =
  if not t.digest_clean then begin
    t.digest_cache <- compute_digest ~history:t.history t.counters;
    t.digest_clean <- true
  end;
  t.digest_cache

let digest_fold t = compute_digest ~history:t.history t.counters

let pp ppf t =
  Format.fprintf ppf "bpred: %d counters, history=%#x"
    (Array.length t.counters) t.history
