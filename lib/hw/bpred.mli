(** Gshare-style branch predictor with a branch target buffer.

    Branch-predictor state is core-local, time-multiplexed state in the
    paper's taxonomy: it must be flushed on domain switch (it cannot be
    partitioned by the OS, having no physical address).  Its contents
    influence latency through mispredictions. *)

type t

val create : ?history_bits:int -> ?table_bits:int -> unit -> t
(** Defaults: 8 bits of global history, 2^10 two-bit counters. *)

val predict : t -> pc:int -> bool
(** Predicted direction for the branch at [pc] (does not update state). *)

val update : t -> pc:int -> taken:bool -> bool
(** Record the branch outcome; returns [true] iff the prediction was
    correct (i.e. no misprediction penalty). *)

val flush : t -> unit
(** Reset counters, history and BTB to the power-on state.  O(1) if the
    predictor is already at power-on. *)

val digest : t -> int64
(** Memoised: O(1) unless an {!update} moved a counter or the history
    register since the last call. *)

val digest_fold : t -> int64
(** [digest] recomputed from scratch, bypassing the memo — ground truth
    for the debug re-fold assertion. *)

val pp : Format.formatter -> t -> unit
