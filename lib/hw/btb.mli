(** Branch target buffer: a direct-mapped table caching branch targets by
    pc.

    Like the direction predictor it is core-private, time-multiplexed
    state whose contents depend on which branches a domain executed —
    flushable state in the paper's Sect. 4.1/5.1 taxonomy.  The BTB is
    the resource added *end-to-end through the resource registry alone*:
    the machine registers it as a {!Resource.t} and digesting, kernel
    flushing, the taxonomy audit and the exhaustive checks all pick it up
    without any per-layer wiring. *)

type t

val create : ?entries:int -> unit -> t
(** Default: 64 entries, direct-mapped, indexed by [(pc lsr 2) mod
    entries] and tagged with the full pc. *)

val capacity : t -> int

val predict : t -> pc:int -> int option
(** Predicted target for a branch at [pc], if the BTB holds one. *)

val update : t -> pc:int -> target:int -> unit
(** Install (or overwrite) the entry for [pc]. *)

val entry_count : t -> int

val flush : t -> unit
(** Invalidate every entry (the time-protection reset).  BTB entries are
    never dirty: flushing writes nothing back. *)

val digest : t -> int64
(** Deterministic digest of the full BTB contents, in the same style as
    {!Cache.digest} / {!Bpred.digest}.  Memoised: O(1) unless an
    {!update} actually changed an entry since the last call. *)

val digest_fold : t -> int64
(** [digest] recomputed from scratch, bypassing the memo — ground truth
    for the debug re-fold assertion. *)

val pp : Format.formatter -> t -> unit
