type t = { mutable s : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { s = mix (Int64.of_int seed) }

let copy t = { s = t.s }

let next t =
  t.s <- Int64.add t.s golden;
  mix t.s

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

let split t = { s = mix (next t) }

let hash64 x = mix (Int64.add x golden)

let combine a b = hash64 (Int64.logxor (hash64 a) (Int64.add b golden))

(* The one routing point for state-digest chains: every digest in lib/hw
   — whether maintained incrementally or re-folded from scratch — must
   extend its accumulator through [chain]/[chain_int], so the two paths
   are the same arithmetic by construction and cannot drift. *)
let chain acc d = combine acc d

let chain_int acc bits = combine acc (Int64.of_int bits)

let hash_int seed digest =
  Int64.to_int (Int64.shift_right_logical (combine seed digest) 2)
