type classification = Flushable | Partitionable | Neither

type kind =
  | Cache_kind
  | Tlb_kind
  | Predictor_kind
  | Prefetcher_kind
  | Interconnect_kind
  | Other_kind of string

let kind_label = function
  | Cache_kind -> "cache"
  | Tlb_kind -> "tlb"
  | Predictor_kind -> "predictor"
  | Prefetcher_kind -> "prefetcher"
  | Interconnect_kind -> "interconnect"
  | Other_kind s -> s

type view = { lo_colours : int list; page_bits : int }

type obligation = Flush_equal | Partition_equal | Out_of_scope

type flush_report = { dirty_writebacks : int; extra_cycles : int }

let no_flush = { dirty_writebacks = 0; extra_cycles = 0 }

module type S = sig
  val name : string
  val classification : classification
  val kind : kind
  val in_scope : bool
  val defence : string
  val present : bool
  val colours : int option
  val digest : unit -> int64
  val digest_fold : unit -> int64
  val lo_project : view -> int64
  val flush : unit -> flush_report
end

type t = (module S)

exception Digest_divergence of { resource : string; cached : int64; fold : int64 }

(* Debug re-fold mode: while enabled (a nestable counter, so concurrent
   fuzz trials can each hold it), every [digest] also recomputes the
   from-scratch fold and raises if the incrementally-maintained value
   diverged — the enforcement of the "a digest is a pure function of
   state" invariant now that digests are cached. *)
let digest_debug = Atomic.make 0

let set_digest_debug = function
  | true -> Atomic.incr digest_debug
  | false -> Atomic.decr digest_debug

let digest_debug_enabled () = Atomic.get digest_debug > 0

let with_digest_debug f =
  set_digest_debug true;
  Fun.protect ~finally:(fun () -> set_digest_debug false) f

let name (module R : S) = R.name
let classification (module R : S) = R.classification
let kind (module R : S) = R.kind
let in_scope (module R : S) = R.in_scope
let defence (module R : S) = R.defence
let present (module R : S) = R.present
let colours (module R : S) = R.colours
let lo_project (module R : S) v = R.lo_project v

(* The unwinding obligation a resource's declared taxonomy entry
   implies.  Derived, not declared: a resource cannot promise a defence
   its classification does not support, and an out-of-scope resource can
   never silently acquire a lemma. *)
let obligation r =
  match classification r with
  | _ when not (in_scope r) -> Out_of_scope
  | Neither -> Out_of_scope
  | Partitionable -> Partition_equal
  | Flushable -> Flush_equal

(* Lemma/component naming is centralised here so the unwinding view, the
   theorem composer and the fuzz oracle all agree on the identifier of a
   resource's obligation. *)
let component_id ~name = function
  | Flush_equal -> Some ("flush:" ^ name)
  | Partition_equal -> Some ("partition:" ^ name)
  | Out_of_scope -> None

let lemma_component r = component_id ~name:(name r) (obligation r)

let digest (module R : S) =
  let d = R.digest () in
  if Atomic.get digest_debug > 0 then begin
    let f = R.digest_fold () in
    if d <> f then
      raise (Digest_divergence { resource = R.name; cached = d; fold = f })
  end;
  d

let digest_fold (module R : S) = R.digest_fold ()
let flush (module R : S) = R.flush ()

let flushable r = classification r = Flushable

(* Canonical defence text per class, matching the paper's Sect. 4
   mechanisms; adapters may override. *)
let default_defence = function
  | Flushable ->
    "flush_on_switch + pad_switch (latency of the flush is itself hidden)"
  | Partitionable -> "page colouring (colouring) + kernel_clone for kernel text"
  | Neither ->
    "out of scope: needs hardware bandwidth partitioning (e.g. strict TDMA)"

let make ~name:rname ~classification:cls ?kind:(knd = Other_kind rname)
    ?in_scope:(scope = cls <> Neither) ?defence:(def = default_defence cls)
    ?colours:cols ?digest_fold:dig_fold ?lo_project:lo_proj ~digest:dig
    ~flush:fl () : t =
  (module struct
    let name = rname
    let classification = cls
    let kind = knd
    let in_scope = scope
    let defence = def
    let present = true
    let colours = cols
    let digest = dig
    let digest_fold = Option.value dig_fold ~default:dig

    (* A flushable resource's Lo view is its whole digest (Lo may see all
       of it: it is reset before Lo runs); overridden by adapters that
       can project a partition. *)
    let lo_project = Option.value lo_proj ~default:(fun (_ : view) -> dig ())
    let flush = fl
  end)

(* A slot for a structure the configuration omits (e.g. the optional
   private L2).  It keeps the digest tree's shape stable — digesting to
   the fixed placeholder the pre-registry machine used — while staying
   invisible to the taxonomy ([present = false]). *)
let absent ~name:rname ~placeholder_digest : t =
  (module struct
    let name = rname
    let classification = Flushable
    let kind = Other_kind "absent"
    let in_scope = true
    let defence = "absent from this configuration"
    let present = false
    let colours = None
    let digest () = placeholder_digest
    let digest_fold () = placeholder_digest
    let lo_project (_ : view) = placeholder_digest
    let flush () = no_flush
  end)

(* ------------------------------------------------------------------ *)
(* Adapters                                                            *)

(* The Lo-coloured slice of a partitioned cache: chain the digest of
   every set whose colour Lo owns, in set order.  This runs once per Lo
   instruction boundary in the unwinding check — the colour-membership
   test is hoisted into a bool table and [Cache.digest_set] is served
   from the cache's per-set memo.  The 0x22L seed and the set-order fold
   reproduce the pre-registry "llc-partition" view component
   bit-identically. *)
let cache_lo_slice cache (v : view) =
  let g = Cache.geom cache in
  let n_colours = Cache.n_colours g ~page_bits:v.page_bits in
  let owned = Array.make (max n_colours 1) false in
  List.iter
    (fun c -> if c < Array.length owned then owned.(c) <- true)
    v.lo_colours;
  let d = ref 0x22L in
  for set = 0 to g.Cache.sets - 1 do
    if owned.(Cache.colour_of_set g ~page_bits:v.page_bits set) then
      d := Rng.chain !d (Cache.digest_set cache set)
  done;
  !d

let of_cache ~name:rname ?(classification = Flushable) ?defence ?colours cache
    : t =
  let lo_project =
    match classification with
    | Partitionable -> Some (cache_lo_slice cache)
    | Flushable | Neither -> None
  in
  make ~name:rname ~classification ~kind:Cache_kind ?defence ?colours
    ~digest:(fun () -> Cache.digest cache)
    ~digest_fold:(fun () -> Cache.digest_fold cache)
    ?lo_project
    ~flush:(fun () ->
      { dirty_writebacks = Cache.flush cache; extra_cycles = 0 })
    ()

let of_tlb ?(name = "TLB") tlb : t =
  make ~name ~classification:Flushable ~kind:Tlb_kind
    ~digest:(fun () -> Tlb.digest tlb)
    ~digest_fold:(fun () -> Tlb.digest_fold tlb)
    ~flush:(fun () ->
      (* flush_all reports evicted entries; TLB entries are never dirty,
         so none of them is a write-back *)
      let (_ : int) = Tlb.flush_all tlb in
      no_flush)
    ()

let of_bpred ?(name = "branch predictor") bp : t =
  make ~name ~classification:Flushable ~kind:Predictor_kind
    ~digest:(fun () -> Bpred.digest bp)
    ~digest_fold:(fun () -> Bpred.digest_fold bp)
    ~flush:(fun () ->
      Bpred.flush bp;
      no_flush)
    ()

let of_prefetch ?(name = "prefetcher") pf : t =
  make ~name ~classification:Flushable ~kind:Prefetcher_kind
    ~digest:(fun () -> Prefetch.digest pf)
    ~digest_fold:(fun () -> Prefetch.digest_fold pf)
    ~flush:(fun () ->
      Prefetch.flush pf;
      no_flush)
    ()

let of_btb ?(name = "branch target buffer") btb : t =
  make ~name ~classification:Flushable ~kind:Predictor_kind
    ~digest:(fun () -> Btb.digest btb)
    ~digest_fold:(fun () -> Btb.digest_fold btb)
    ~flush:(fun () ->
      Btb.flush btb;
      no_flush)
    ()

let of_interconnect ?(name = "memory interconnect") bus : t =
  (* Stateless bandwidth-shared: the paper's explicit scope exclusion.
     Its digest still participates in the shared-state digest (the
     adversarial checker watches it), but no OS defence exists and the
     kernel's flush must not pretend to reset it. *)
  make ~name ~classification:Neither ~kind:Interconnect_kind ~in_scope:false
    ~digest:(fun () -> Interconnect.digest bus)
    ~digest_fold:(fun () -> Interconnect.digest_fold bus)
    ~flush:(fun () -> no_flush)
    ()

(* ------------------------------------------------------------------ *)
(* Registry folds                                                      *)

(* [Rng.combine] is not associative, so the fold shape *is* the digest.
   A group digests as a right-assochain (combine r1 (combine r2 ...)),
   and a registry as the same chain over its group digests.  The machine
   arranges its registry so these folds are bit-identical to the
   hand-written pre-registry digests. *)
let rec rfold_right = function
  | [] -> invalid_arg "Resource: empty digest fold"
  | [ d ] -> d
  | d :: rest -> Rng.combine d (rfold_right rest)

let digest_group g = rfold_right (List.map digest g)

let digest_registry groups = rfold_right (List.map digest_group groups)

(* From-scratch mirrors of the registry folds: same shape, but every
   resource re-folds its state instead of reading the memoised value.
   The differential tests and the legacy-equivalence fuzz oracle compare
   these against the incremental path. *)
let digest_group_fold g = rfold_right (List.map digest_fold g)

let digest_registry_fold groups = rfold_right (List.map digest_group_fold groups)

let flush_group g =
  List.fold_left
    (fun acc r ->
      let rep = flush r in
      {
        dirty_writebacks = acc.dirty_writebacks + rep.dirty_writebacks;
        extra_cycles = acc.extra_cycles + rep.extra_cycles;
      })
    no_flush g

let flush_registry groups =
  List.fold_left
    (fun acc g ->
      let rep = flush_group g in
      {
        dirty_writebacks = acc.dirty_writebacks + rep.dirty_writebacks;
        extra_cycles = acc.extra_cycles + rep.extra_cycles;
      })
    no_flush groups

let pp_classification ppf = function
  | Flushable -> Format.pp_print_string ppf "flushable"
  | Partitionable -> Format.pp_print_string ppf "partitionable"
  | Neither -> Format.pp_print_string ppf "neither"

let pp ppf r =
  Format.fprintf ppf "%s [%a%s]" (name r) pp_classification (classification r)
    (if in_scope r then "" else ", out of scope")
