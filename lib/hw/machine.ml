type core = {
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t option;
  tlb : Tlb.t;
  bp : Bpred.t;
  pf : Prefetch.t;
  btb : Btb.t option;
  clk : Clock.t;
  mutable registry : Resource.t list list;
      (* every core-private resource, packed; digest_core and
         flush_core_local are folds over this *)
}

type fault =
  | Skip_flush of string
      (* the named resource is neither flushed nor reported — the kernel's
         coverage audit can see the gap *)
  | Silent_skip_flush of string
      (* the named resource is not flushed but an empty report is filed
         anyway — only behavioural oracles can see the gap *)

type config = {
  n_cores : int;
  l1_geom : Cache.geometry;
  l2_geom : Cache.geometry option;
  llc_geom : Cache.geometry;
  tlb_capacity : int;
  n_frames : int;
  page_bits : int;
  lat : Latency.t;
  bus_mode : Interconnect.mode;
  bus_service : int;
  prefetch_enabled : bool;
  smt : bool;
      (* hardware multithreading: odd-numbered cores share the private
         state of the preceding even-numbered core *)
  replacement : Cache.replacement;
  btb_entries : int option;
      (* branch target buffer size; [None] (the default) omits the BTB
         entirely, leaving digests identical to pre-BTB machines *)
  fault : fault option;
      (* deliberate defence bypass for mutant-kill validation of the fuzz
         oracles; [None] on every real configuration *)
}

type t = {
  cfg : config;
  cores : core array;
  shared_llc : Cache.t;
  shared_bus : Interconnect.t;
  phys : Mem.t;
  mutable shared_reg : Resource.t list list;
      (* shared (cross-core) resources; digest_shared folds over this *)
}

let default_config =
  {
    n_cores = 1;
    l1_geom = Cache.geometry ~sets:64 ~ways:4 ~line_bits:6 ();
    l2_geom = None;
    llc_geom = Cache.geometry ~sets:1024 ~ways:8 ~line_bits:6 ();
    tlb_capacity = 32;
    n_frames = 1024;
    page_bits = 12;
    lat = Latency.default;
    bus_mode = Interconnect.Shared;
    bus_service = 8;
    prefetch_enabled = true;
    smt = false;
    replacement = Cache.Lru;
    btb_entries = None;
    fault = None;
  }

(* The core registry's group structure reproduces the pre-registry digest
   tree exactly ([Rng.combine] is not associative, so the shape matters):
   group 1 is the cache hierarchy — l1i, l1d and the (possibly absent) L2
   slot — and group 2 the translation/speculation structures.  The BTB,
   when configured, simply extends group 2; with the default
   [btb_entries = None] every digest is bit-identical to older machines. *)
let core_registry c =
  let l2_slot =
    match c.l2 with
    | Some l2 -> Resource.of_cache ~name:(Cache.name l2) l2
    | None -> Resource.absent ~name:"private L2" ~placeholder_digest:17L
  in
  [
    [
      Resource.of_cache ~name:(Cache.name c.l1i) c.l1i;
      Resource.of_cache ~name:(Cache.name c.l1d) c.l1d;
      l2_slot;
    ];
    [ Resource.of_tlb c.tlb; Resource.of_bpred c.bp; Resource.of_prefetch c.pf ]
    @ (match c.btb with Some b -> [ Resource.of_btb b ] | None -> []);
  ]

let create cfg =
  if cfg.n_cores <= 0 then invalid_arg "Machine.create: n_cores";
  let mk_core i =
    let c =
      {
        l1i = Cache.create ~name:(Printf.sprintf "l1i%d" i)
            ~replacement:cfg.replacement cfg.l1_geom;
        l1d = Cache.create ~name:(Printf.sprintf "l1d%d" i)
            ~replacement:cfg.replacement cfg.l1_geom;
        l2 =
          Option.map
            (fun g ->
              Cache.create ~name:(Printf.sprintf "l2_%d" i)
                ~replacement:cfg.replacement g)
            cfg.l2_geom;
        tlb = Tlb.create ~capacity:cfg.tlb_capacity;
        bp = Bpred.create ();
        pf = Prefetch.create ();
        btb = Option.map (fun entries -> Btb.create ~entries ()) cfg.btb_entries;
        clk = Clock.create ();
        registry = [];
      }
    in
    c.registry <- core_registry c;
    c
  in
  (* With SMT, hardware thread 2k+1 shares every private structure of
     hardware thread 2k except the cycle counter — the model of two
     hyperthreads on one physical core.  The registry is shared too: both
     hardware threads see (and flush) the same resources. *)
  let cores = Array.make cfg.n_cores (mk_core 0) in
  for i = 1 to cfg.n_cores - 1 do
    cores.(i) <-
      (if cfg.smt && i land 1 = 1 then
         { (cores.(i - 1)) with clk = Clock.create () }
       else mk_core i)
  done;
  let shared_llc =
    Cache.create ~name:"llc" ~replacement:cfg.replacement cfg.llc_geom
  in
  let shared_bus =
    Interconnect.create ~service:cfg.bus_service ~mode:cfg.bus_mode ()
  in
  {
    cfg;
    cores;
    shared_llc;
    shared_bus;
    phys = Mem.create ~page_bits:cfg.page_bits ~n_frames:cfg.n_frames ();
    shared_reg =
      [
        [
          Resource.of_cache ~name:(Cache.name shared_llc)
            ~classification:Resource.Partitionable
            ~colours:(Cache.n_colours cfg.llc_geom ~page_bits:cfg.page_bits)
            shared_llc;
          Resource.of_interconnect shared_bus;
        ];
      ];
  }

let config t = t.cfg
let n_cores t = Array.length t.cores

let core t i =
  if i < 0 || i >= Array.length t.cores then
    invalid_arg "Machine: core index out of range";
  t.cores.(i)

let clock t ~core:i = (core t i).clk
let now t ~core:i = Clock.now (core t i).clk
let llc t = t.shared_llc
let l1i t ~core:i = (core t i).l1i
let l1d t ~core:i = (core t i).l1d
let l2 t ~core:i = (core t i).l2
let tlb t ~core:i = (core t i).tlb
let bpred t ~core:i = (core t i).bp
let prefetch t ~core:i = (core t i).pf
let btb t ~core:i = (core t i).btb
let bus t = t.shared_bus
let mem t = t.phys
let lat t = t.cfg.lat
let page_bits t = t.cfg.page_bits
let n_colours t = Cache.n_colours t.cfg.llc_geom ~page_bits:t.cfg.page_bits

(* ------------------------------------------------------------------ *)
(* Resource registry                                                   *)

let core_resources t ~core:i =
  List.concat_map (List.filter Resource.present) (core t i).registry

let shared_resources t =
  List.concat_map (List.filter Resource.present) t.shared_reg

let register_core_resource t ~core:i r =
  let c = core t i in
  c.registry <- c.registry @ [ [ r ] ]

let register_shared_resource t r = t.shared_reg <- t.shared_reg @ [ [ r ] ]

(* Access the LLC (and DRAM below it) for a physical line.  Used both as
   the second level of a core access and for L1 victim write-backs. *)
let llc_access t ~domain ~owner ~write ~now paddr =
  let l = t.cfg.lat in
  let set = Cache.set_of_paddr t.shared_llc paddr in
  match Cache.access t.shared_llc ~owner ~write paddr with
  | Cache.Hit -> l.Latency.llc_hit + Latency.jitter l (Cache.digest_set t.shared_llc set)
  | Cache.Miss _ ->
    let bus_cycles = Interconnect.request t.shared_bus ~domain ~now in
    l.Latency.llc_hit
    + l.Latency.mem_lat + bus_cycles
    + Latency.jitter l (Cache.digest_set t.shared_llc set)

(* The private L2 (when configured) sits between the L1s and the LLC. *)
let l2_access t ~core:ci ~domain ~owner ~write ~now paddr =
  let c = core t ci in
  match c.l2 with
  | None -> llc_access t ~domain ~owner ~write ~now paddr
  | Some l2 -> (
    let l = t.cfg.lat in
    let set = Cache.set_of_paddr l2 paddr in
    match Cache.access l2 ~owner ~write paddr with
    | Cache.Hit ->
      l.Latency.l2_hit + Latency.jitter l (Cache.digest_set l2 set)
    | Cache.Miss evicted ->
      (match evicted with
      | Some { Cache.tag; dirty = true; owner = victim_owner } ->
        let victim_paddr = Cache.paddr_of_line l2 ~set ~tag in
        let (_ : int) =
          llc_access t ~domain ~owner:victim_owner ~write:true ~now
            victim_paddr
        in
        ()
      | Some _ | None -> ());
      l.Latency.l2_hit
      + llc_access t ~domain ~owner ~write ~now paddr
      + Latency.jitter l (Cache.digest_set l2 set))

(* One level-1 access (instruction or data side), with L2/LLC/DRAM
   backing, victim write-back and optional prefetching. *)
let l1_access t ~core:ci ~which ~domain ~owner ~write ~pc paddr =
  let c = core t ci in
  let l1 = match which with `I -> c.l1i | `D -> c.l1d in
  let l = t.cfg.lat in
  let set = Cache.set_of_paddr l1 paddr in
  let cost =
    match Cache.access l1 ~owner ~write paddr with
    | Cache.Hit -> l.Latency.l1_hit + Latency.jitter l (Cache.digest_set l1 set)
    | Cache.Miss evicted ->
      (* Write back a dirty victim into the next level (state change only;
         the write buffer hides its latency). *)
      (match evicted with
      | Some { Cache.tag; dirty = true; owner = victim_owner } ->
        let victim_paddr = Cache.paddr_of_line l1 ~set ~tag in
        let (_ : int) =
          l2_access t ~core:ci ~domain ~owner:victim_owner ~write:true
            ~now:(Clock.now c.clk) victim_paddr
        in
        ()
      | Some _ | None -> ());
      l.Latency.l1_hit
      + l2_access t ~core:ci ~domain ~owner ~write ~now:(Clock.now c.clk)
          paddr
  in
  (* Stride prefetcher: observes data accesses, pulls predicted lines into
     the hierarchy off the critical path (state change, no direct cost).
     Prefetches never cross a page boundary. *)
  (if t.cfg.prefetch_enabled && which = `D then
     let page_mask = lnot ((1 lsl t.cfg.page_bits) - 1) in
     let predictions = Prefetch.observe c.pf ~pc ~addr:paddr in
     List.iter
       (fun a ->
         if a land page_mask = paddr land page_mask then begin
           (match Cache.access c.l1d ~owner ~write:false a with
           | Cache.Hit -> ()
           | Cache.Miss _ ->
             let (_ : Cache.access_result) =
               Cache.access t.shared_llc ~owner ~write:false a
             in
             ())
         end)
       predictions);
  cost

(* Virtual-address translation through the TLB. *)
let translate_cost t ~core:ci ~asid ~translate vaddr =
  let c = core t ci in
  let l = t.cfg.lat in
  let vpn = vaddr lsr t.cfg.page_bits in
  match Tlb.lookup c.tlb ~asid ~vpn with
  | Some pfn ->
    let cost = l.Latency.tlb_hit + Latency.jitter l (Tlb.digest c.tlb) in
    Ok (pfn, cost)
  | None -> (
    match translate vpn with
    | None -> Error `Fault
    | Some pfn ->
      Tlb.insert c.tlb ~asid ~vpn ~pfn;
      let cost = l.Latency.walk + Latency.jitter l (Tlb.digest c.tlb) in
      Ok (pfn, cost))

let virtual_access t ~core:ci ~which ~asid ~domain ~translate ~write ~pc vaddr =
  let c = core t ci in
  match translate_cost t ~core:ci ~asid ~translate vaddr with
  | Error `Fault -> Error `Fault
  | Ok (pfn, tcost) ->
    let offset = vaddr land ((1 lsl t.cfg.page_bits) - 1) in
    let paddr = (pfn lsl t.cfg.page_bits) lor offset in
    let acost =
      l1_access t ~core:ci ~which ~domain ~owner:domain ~write ~pc paddr
    in
    let total = tcost + acost in
    Clock.advance c.clk total;
    Ok total

let load t ~core ~asid ~domain ~translate ~pc vaddr =
  virtual_access t ~core ~which:`D ~asid ~domain ~translate ~write:false ~pc
    vaddr

let store t ~core ~asid ~domain ~translate ~pc vaddr =
  virtual_access t ~core ~which:`D ~asid ~domain ~translate ~write:true ~pc
    vaddr

let fetch t ~core ~asid ~domain ~translate vaddr =
  virtual_access t ~core ~which:`I ~asid ~domain ~translate ~write:false
    ~pc:vaddr vaddr

let branch t ~core:ci ~pc ~taken =
  let c = core t ci in
  let l = t.cfg.lat in
  let correct = Bpred.update c.bp ~pc ~taken in
  (* When a BTB is configured, a taken branch whose target is not cached
     there pays a second misprediction penalty (the front end cannot
     redirect until the target resolves), and the target is installed.
     Not-taken branches never touch the BTB. *)
  let btb_miss =
    match c.btb with
    | None -> false
    | Some b ->
      taken
      &&
      let hit = Btb.predict b ~pc <> None in
      Btb.update b ~pc ~target:(pc + 4);
      not hit
  in
  let cost =
    (if correct then l.Latency.branch_hit else l.Latency.branch_miss)
    + if btb_miss then l.Latency.branch_miss else 0
  in
  Clock.advance c.clk cost;
  cost

let compute t ~core:ci ~cycles =
  if cycles < 0 then invalid_arg "Machine.compute: negative cycles";
  let c = core t ci in
  Clock.advance c.clk cycles;
  cycles

let touch_paddr t ~core:ci ~owner ~write paddr =
  let c = core t ci in
  let cost =
    l1_access t ~core:ci ~which:`D ~domain:owner ~owner ~write ~pc:paddr paddr
  in
  Clock.advance c.clk cost;
  cost

let fetch_paddr t ~core:ci ~owner paddr =
  let c = core t ci in
  let cost =
    l1_access t ~core:ci ~which:`I ~domain:owner ~owner ~write:false ~pc:paddr
      paddr
  in
  Clock.advance c.clk cost;
  cost

let flush_line t ~core:ci ~asid ~translate vaddr =
  let c = core t ci in
  match translate_cost t ~core:ci ~asid ~translate vaddr with
  | Error `Fault -> Error `Fault
  | Ok (pfn, tcost) ->
    let offset = vaddr land ((1 lsl t.cfg.page_bits) - 1) in
    let paddr = (pfn lsl t.cfg.page_bits) lor offset in
    let wrote_back = ref 0 in
    let drop cache =
      if Cache.invalidate_line cache paddr then incr wrote_back
    in
    Array.iter
      (fun core ->
        drop core.l1i;
        drop core.l1d;
        match core.l2 with Some l2 -> drop l2 | None -> ())
      t.cores;
    drop t.shared_llc;
    let cost =
      tcost + t.cfg.lat.Latency.clflush_base
      + (!wrote_back * t.cfg.lat.Latency.dirty_wb)
    in
    Clock.advance c.clk cost;
    Ok cost

let digest_core t ~core:ci = Resource.digest_registry (core t ci).registry

let digest_shared t = Resource.digest_registry t.shared_reg

(* From-scratch mirrors (no digest memo): ground truth for differential
   tests and the incremental-vs-fold benchmarks. *)
let digest_core_fold t ~core:ci =
  Resource.digest_registry_fold (core t ci).registry

let digest_shared_fold t = Resource.digest_registry_fold t.shared_reg

(* Core-local flush: reset every *flushable* registered resource, in
   registry order, and bill the history-dependent cost — base, plus one
   write-back per dirty line any resource reported, plus any extra cycles
   a resource's own reset contributes, plus jitter over the pre-flush
   state.  Returns the per-resource reports so the kernel can audit that
   padding covered everything registered as flushable. *)
let flush_core_local_report t ~core:ci =
  let c = core t ci in
  let l = t.cfg.lat in
  let pre_digest = Resource.digest_registry c.registry in
  let reports =
    List.concat_map
      (List.filter_map (fun r ->
           if Resource.present r && Resource.flushable r then
             match t.cfg.fault with
             | Some (Skip_flush n) when Resource.name r = n -> None
             | Some (Silent_skip_flush n) when Resource.name r = n ->
               Some (Resource.name r, Resource.no_flush)
             | _ -> Some (Resource.name r, Resource.flush r)
           else None))
      c.registry
  in
  let dirty, extra =
    List.fold_left
      (fun (d, e) (_, rep) ->
        ( d + rep.Resource.dirty_writebacks,
          e + rep.Resource.extra_cycles ))
      (0, 0) reports
  in
  let cost =
    l.Latency.flush_base + (dirty * l.Latency.dirty_wb) + extra
    + Latency.jitter l pre_digest
  in
  Clock.advance c.clk cost;
  (cost, reports)

let flush_core_local t ~core:ci = fst (flush_core_local_report t ~core:ci)

let wait_until t ~core:ci deadline =
  let c = core t ci in
  Clock.wait_until c.clk deadline

let pp ppf t =
  Format.fprintf ppf "machine: %d cores, %a, %a" (n_cores t) Cache.pp
    t.shared_llc Interconnect.pp t.shared_bus;
  (* Registry-derived resource listing: one entry per core-0 private
     resource plus the shared ones, so the printed machine always agrees
     with what digesting and flushing actually cover. *)
  Format.fprintf ppf "@ resources:";
  List.iter
    (fun r -> Format.fprintf ppf "@ %a" Resource.pp r)
    (core_resources t ~core:0 @ shared_resources t)
