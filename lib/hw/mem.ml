type t = { page_bits : int; owners : int array }

let free_owner = -1

let create ?(page_bits = 12) ~n_frames () =
  if n_frames <= 0 then invalid_arg "Mem.create: n_frames must be positive";
  if page_bits < 6 || page_bits > 20 then
    invalid_arg "Mem.create: page_bits out of range";
  { page_bits; owners = Array.make n_frames free_owner }

let page_bits t = t.page_bits
let page_size t = 1 lsl t.page_bits
let n_frames t = Array.length t.owners

let check_frame t frame =
  if frame < 0 || frame >= n_frames t then
    invalid_arg "Mem: frame out of range"

let owner_of_frame t frame =
  check_frame t frame;
  t.owners.(frame)

let set_owner t ~frame ~owner =
  check_frame t frame;
  t.owners.(frame) <- owner

let paddr_of_frame t frame =
  check_frame t frame;
  frame lsl t.page_bits

let frame_of_paddr t paddr = paddr lsr t.page_bits

let frames_owned_by t owner =
  let acc = ref [] in
  for frame = n_frames t - 1 downto 0 do
    if t.owners.(frame) = owner then acc := frame :: !acc
  done;
  !acc

let pp ppf t =
  let used =
    Array.fold_left (fun n o -> if o <> free_owner then n + 1 else n) 0 t.owners
  in
  Format.fprintf ppf "mem: %d/%d frames used (%dB pages)" used (n_frames t)
    (page_size t)
