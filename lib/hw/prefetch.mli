(** Stride prefetcher state machine.

    Core-local, flushable state in the paper's taxonomy.  Tracks per-PC
    access strides; once confident, it predicts the next addresses, which
    the memory hierarchy then pulls into the caches — making future latency
    depend on past access patterns (the channel). *)

type t

val create : ?slots:int -> unit -> t
(** Defaults to 16 tracking slots. *)

val observe : t -> pc:int -> addr:int -> int list
(** Record a memory access; returns the addresses the prefetcher would
    fetch (empty unless a stable stride has been observed twice). *)

val flush : t -> unit
(** O(1) if no observation moved any slot since the last flush. *)

val digest : t -> int64
(** Memoised: O(1) unless an {!observe} moved slot state since the last
    call. *)

val digest_fold : t -> int64
(** [digest] recomputed from scratch, bypassing the memo — ground truth
    for the debug re-fold assertion. *)

val pp : Format.formatter -> t -> unit
