(** Physical memory: a pool of page frames with ownership tracking.

    Contents are not modelled — the paper assumes verified memory
    protection and storage-channel freedom (seL4), so only the *timing*
    relevance of physical placement matters here: which frame a page lives
    in decides its cache colour. *)

type t

val free_owner : int
(** Owner value of an unallocated frame. *)

val create : ?page_bits:int -> n_frames:int -> unit -> t

val page_bits : t -> int
val page_size : t -> int
val n_frames : t -> int

val owner_of_frame : t -> int -> int
val set_owner : t -> frame:int -> owner:int -> unit

val paddr_of_frame : t -> int -> int
(** Base physical address of a frame. *)

val frame_of_paddr : t -> int -> int

val frames_owned_by : t -> int -> int list

val pp : Format.formatter -> t -> unit
