(* Flat unboxed storage: parallel int arrays (pc tag -1 = invalid), with
   a memoised digest.  Installing an entry that is already present with
   the same target — the steady state of a hot loop — changes nothing
   and leaves the cached digest valid. *)
type t = {
  pcs : int array;
  targets : int array;
  mutable n_entries : int;
  mutable digest_cache : int64;
  mutable digest_clean : bool;
  empty_digest : int64;
}

(* One slot's contribution — shared by the memoised recompute and the
   from-scratch re-fold. *)
let slot_bits ~pcs ~targets i =
  let pc = Array.unsafe_get pcs i in
  if pc < 0 then 0
  else (pc lsl 20) lxor (Array.unsafe_get targets i lsl 1) lor 1

let compute_digest ~pcs ~targets =
  let acc = ref 13L in
  for i = 0 to Array.length pcs - 1 do
    acc := Rng.chain_int !acc (slot_bits ~pcs ~targets i)
  done;
  !acc

let create ?(entries = 64) () =
  if entries <= 0 then invalid_arg "Btb.create: entries must be positive";
  let empty_digest =
    let acc = ref 13L in
    for _ = 1 to entries do
      acc := Rng.chain_int !acc 0
    done;
    !acc
  in
  {
    pcs = Array.make entries (-1);
    targets = Array.make entries 0;
    n_entries = 0;
    digest_cache = empty_digest;
    digest_clean = true;
    empty_digest;
  }

let capacity t = Array.length t.pcs

let index t ~pc = (pc lsr 2) mod Array.length t.pcs

let predict t ~pc =
  let i = index t ~pc in
  if t.pcs.(i) = pc then Some t.targets.(i) else None

let update t ~pc ~target =
  let i = index t ~pc in
  if t.pcs.(i) <> pc || t.targets.(i) <> target then begin
    if t.pcs.(i) < 0 then t.n_entries <- t.n_entries + 1;
    t.pcs.(i) <- pc;
    t.targets.(i) <- target;
    t.digest_clean <- false
  end

let entry_count t = t.n_entries

(* Flushing an already-empty BTB is O(1). *)
let flush t =
  if t.n_entries > 0 then begin
    Array.fill t.pcs 0 (Array.length t.pcs) (-1);
    Array.fill t.targets 0 (Array.length t.targets) 0;
    t.n_entries <- 0;
    t.digest_cache <- t.empty_digest;
    t.digest_clean <- true
  end

let digest t =
  if not t.digest_clean then begin
    t.digest_cache <- compute_digest ~pcs:t.pcs ~targets:t.targets;
    t.digest_clean <- true
  end;
  t.digest_cache

let digest_fold t = compute_digest ~pcs:t.pcs ~targets:t.targets

let pp ppf t =
  Format.fprintf ppf "btb: %d/%d entries" (entry_count t) (capacity t)
