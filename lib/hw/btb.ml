type slot = {
  mutable pc : int;     (* tag: full pc; -1 = invalid *)
  mutable target : int;
}

type t = { slots : slot array }

let create ?(entries = 64) () =
  if entries <= 0 then invalid_arg "Btb.create: entries must be positive";
  { slots = Array.init entries (fun _ -> { pc = -1; target = 0 }) }

let capacity t = Array.length t.slots

let index t ~pc = (pc lsr 2) mod Array.length t.slots

let predict t ~pc =
  let s = t.slots.(index t ~pc) in
  if s.pc = pc then Some s.target else None

let update t ~pc ~target =
  let s = t.slots.(index t ~pc) in
  s.pc <- pc;
  s.target <- target

let entry_count t =
  Array.fold_left (fun n s -> if s.pc >= 0 then n + 1 else n) 0 t.slots

let flush t =
  Array.iter
    (fun s ->
      s.pc <- -1;
      s.target <- 0)
    t.slots

let digest t =
  Array.fold_left
    (fun acc s ->
      if s.pc < 0 then Rng.combine acc 0L
      else
        let bits = (s.pc lsl 20) lxor (s.target lsl 1) lor 1 in
        Rng.combine acc (Int64.of_int bits))
    13L t.slots

let pp ppf t =
  Format.fprintf ppf "btb: %d/%d entries" (entry_count t) (capacity t)
