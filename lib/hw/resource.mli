(** First-class microarchitectural resources: the paper's Sect. 5
    taxonomy as an interface.

    The paper's key modelling requirement is that every piece of
    microarchitectural state that influences execution time is
    delineated as *partitionable* (concurrently shared, spatially
    divisible — colours, reservations) or *flushable* (time-multiplexed,
    reset on domain switch); state that is neither must be explicitly out
    of scope (the stateless interconnect).  Before this module the
    taxonomy lived twice: implicitly in the hand-enumerated fields of
    {!Machine} and explicitly as a disconnected enum in the security
    model.  A resource packages one piece of state with its name,
    classification, digest and flush behind one first-class-module
    signature; {!Machine} carries a *registry* of them, and digesting,
    kernel flushing and the taxonomy audit are all folds over that
    registry — one source of truth the layers cannot drift from. *)

type classification =
  | Flushable
      (** core-private, time-multiplexed: reset on domain switch *)
  | Partitionable
      (** concurrently shared, spatially divisible: partition by colour
          or reservation *)
  | Neither
      (** stateless bandwidth-shared: no OS defence exists (Sect. 2) *)

type flush_report = {
  dirty_writebacks : int;
      (** dirty lines written back — the history-dependent flush-latency
          component that motivates padding (Sect. 4.2) *)
  extra_cycles : int;
      (** any fixed latency this resource's reset adds beyond the
          machine-level [flush_base] and per-write-back cost *)
}

val no_flush : flush_report
(** [{ dirty_writebacks = 0; extra_cycles = 0 }] *)

(** The resource signature.  State is captured in the module's closure,
    so a value of type [t] is one live structure of one machine. *)
module type S = sig
  val name : string

  val classification : classification

  val in_scope : bool
  (** Whether time protection claims to defend this resource.  Must be
      declared, not derived from [classification]: the aISA audit checks
      that a [Neither] resource is never claimed in scope. *)

  val defence : string
  (** Which kernel mechanism handles it (documentation for the audit). *)

  val present : bool
  (** [false] for placeholder slots ({!absent}) that keep the digest
      tree's shape but correspond to no hardware. *)

  val colours : int option
  (** Partition metadata: page colours exposed, for partitionable
      resources. *)

  val digest : unit -> int64
  (** May be served from an incrementally-maintained cache; must equal
      [digest_fold ()] at every instant. *)

  val digest_fold : unit -> int64
  (** The same digest recomputed from scratch (no memoisation) — ground
      truth for the debug re-fold assertion. *)

  val flush : unit -> flush_report
end

type t = (module S)

val name : t -> string
val classification : t -> classification
val in_scope : t -> bool
val defence : t -> string
val present : t -> bool
val colours : t -> int option
val digest : t -> int64
(** Reads the resource's (possibly cached) digest.  With the debug mode
    enabled ({!set_digest_debug}), also recomputes the from-scratch fold
    and raises {!Digest_divergence} if the two disagree. *)

val digest_fold : t -> int64
(** The from-scratch re-fold, bypassing any incremental cache. *)

val flush : t -> flush_report
val flushable : t -> bool

exception Digest_divergence of { resource : string; cached : int64; fold : int64 }
(** Raised by {!digest} in debug mode when an incrementally-maintained
    digest diverges from its from-scratch re-fold — i.e. the "digest is
    a pure function of state" invariant was broken by a missed cache
    invalidation. *)

val set_digest_debug : bool -> unit
(** Enable/disable the debug re-fold assertion globally.  Nestable
    (a counter, not a flag): concurrent holders compose. *)

val digest_debug_enabled : unit -> bool

val with_digest_debug : (unit -> 'a) -> 'a
(** Run [f] with the debug re-fold assertion enabled. *)

val default_defence : classification -> string

val make :
  name:string ->
  classification:classification ->
  ?in_scope:bool ->
  ?defence:string ->
  ?colours:int ->
  ?digest_fold:(unit -> int64) ->
  digest:(unit -> int64) ->
  flush:(unit -> flush_report) ->
  unit ->
  t
(** General constructor (used by the adapters below, by {!Machine} for
    built-in structures, and by tests/extensions for ad-hoc resources).
    [in_scope] defaults to [classification <> Neither]; [defence]
    defaults to {!default_defence}; [digest_fold] defaults to [digest]
    (correct for resources that do not cache their digest). *)

val absent : name:string -> placeholder_digest:int64 -> t
(** A slot for a structure this configuration omits: digests to the
    fixed placeholder, flushes to nothing, [present = false]. *)

(** {1 Adapters} *)

val of_cache :
  name:string ->
  ?classification:classification ->
  ?defence:string ->
  ?colours:int ->
  Cache.t ->
  t
(** Default classification [Flushable] (an L1); the machine passes
    [~classification:Partitionable ~colours] for the LLC. *)

val of_tlb : ?name:string -> Tlb.t -> t
val of_bpred : ?name:string -> Bpred.t -> t
val of_prefetch : ?name:string -> Prefetch.t -> t
val of_btb : ?name:string -> Btb.t -> t

val of_interconnect : ?name:string -> Interconnect.t -> t
(** Classified [Neither] and declared out of scope — the paper's
    explicit scope limit. *)

(** {1 Registry folds}

    [Rng.combine] is not associative, so the fold shape {e is} the
    digest.  A group digests as the right-associated chain
    [combine d1 (combine d2 (... dn))] and a registry as the same chain
    over its group digests; {!Machine} arranges its registry groups so
    these folds reproduce the pre-registry hand-written digests
    bit-identically. *)

val digest_group : t list -> int64
val digest_registry : t list list -> int64

val digest_group_fold : t list -> int64
val digest_registry_fold : t list list -> int64
(** The same folds with every resource re-folded from scratch — the
    differential ground truth for {!digest_group}/{!digest_registry}. *)

val flush_group : t list -> flush_report
(** Flush every resource in order; reports are summed. *)

val flush_registry : t list list -> flush_report

val pp_classification : Format.formatter -> classification -> unit
val pp : Format.formatter -> t -> unit
