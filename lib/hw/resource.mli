(** First-class microarchitectural resources: the paper's Sect. 5
    taxonomy as an interface.

    The paper's key modelling requirement is that every piece of
    microarchitectural state that influences execution time is
    delineated as *partitionable* (concurrently shared, spatially
    divisible — colours, reservations) or *flushable* (time-multiplexed,
    reset on domain switch); state that is neither must be explicitly out
    of scope (the stateless interconnect).  Before this module the
    taxonomy lived twice: implicitly in the hand-enumerated fields of
    {!Machine} and explicitly as a disconnected enum in the security
    model.  A resource packages one piece of state with its name,
    classification, digest and flush behind one first-class-module
    signature; {!Machine} carries a *registry* of them, and digesting,
    kernel flushing and the taxonomy audit are all folds over that
    registry — one source of truth the layers cannot drift from. *)

type classification =
  | Flushable
      (** core-private, time-multiplexed: reset on domain switch *)
  | Partitionable
      (** concurrently shared, spatially divisible: partition by colour
          or reservation *)
  | Neither
      (** stateless bandwidth-shared: no OS defence exists (Sect. 2) *)

type kind =
  | Cache_kind
  | Tlb_kind
  | Predictor_kind
  | Prefetcher_kind
  | Interconnect_kind
  | Other_kind of string
      (** Structural family of the resource — orthogonal to
          [classification].  The exhaustive small-model checker picks a
          per-kind universe of adversary programs from this (loads for
          caches, mapping churn for TLBs, branches for predictors), so a
          newly registered resource of a known kind inherits an
          exhaustive obligation for free. *)

val kind_label : kind -> string

type view = {
  lo_colours : int list;  (** the page colours Lo's domain owns *)
  page_bits : int;
}
(** Context for a Lo-view projection: everything a resource needs to
    know about the observing domain to project the slice of its state
    that Lo may legitimately see. *)

type obligation =
  | Flush_equal
      (** flushable and in scope: the post-switch Lo view of this
          resource must be equal across Hi's secrets at every Lo
          boundary *)
  | Partition_equal
      (** partitionable and in scope: the Lo-coloured slice must be
          equal across secrets at every Lo boundary *)
  | Out_of_scope
      (** no defence claimed: the composed theorem must carry an
          explicit acknowledgement, never a silent pass *)

type flush_report = {
  dirty_writebacks : int;
      (** dirty lines written back — the history-dependent flush-latency
          component that motivates padding (Sect. 4.2) *)
  extra_cycles : int;
      (** any fixed latency this resource's reset adds beyond the
          machine-level [flush_base] and per-write-back cost *)
}

val no_flush : flush_report
(** [{ dirty_writebacks = 0; extra_cycles = 0 }] *)

(** The resource signature.  State is captured in the module's closure,
    so a value of type [t] is one live structure of one machine. *)
module type S = sig
  val name : string

  val classification : classification

  val kind : kind

  val in_scope : bool
  (** Whether time protection claims to defend this resource.  Must be
      declared, not derived from [classification]: the aISA audit checks
      that a [Neither] resource is never claimed in scope. *)

  val defence : string
  (** Which kernel mechanism handles it (documentation for the audit). *)

  val present : bool
  (** [false] for placeholder slots ({!absent}) that keep the digest
      tree's shape but correspond to no hardware. *)

  val colours : int option
  (** Partition metadata: page colours exposed, for partitionable
      resources. *)

  val digest : unit -> int64
  (** May be served from an incrementally-maintained cache; must equal
      [digest_fold ()] at every instant. *)

  val digest_fold : unit -> int64
  (** The same digest recomputed from scratch (no memoisation) — ground
      truth for the debug re-fold assertion. *)

  val lo_project : view -> int64
  (** Digest of the slice of this resource's state the observing (Lo)
      domain may legitimately see.  For a flushable resource this is the
      whole digest (it is reset before Lo runs); for a partitioned cache
      it is the chained digest of Lo's coloured sets.  The unwinding
      relation compares exactly these projections across secrets. *)

  val flush : unit -> flush_report
end

type t = (module S)

val name : t -> string
val classification : t -> classification
val kind : t -> kind
val in_scope : t -> bool
val defence : t -> string
val present : t -> bool
val colours : t -> int option

val lo_project : t -> view -> int64

val obligation : t -> obligation
(** The unwinding obligation this resource's taxonomy entry implies.
    Derived, never declared: in-scope [Flushable] ⇒ [Flush_equal],
    in-scope [Partitionable] ⇒ [Partition_equal], [Neither] or
    out-of-scope ⇒ [Out_of_scope]. *)

val component_id : name:string -> obligation -> string option
(** ["flush:<name>"] / ["partition:<name>"]; [None] for out-of-scope.
    The single naming convention shared by the unwinding view, the lemma
    table and the fuzz oracle. *)

val lemma_component : t -> string option
(** [component_id ~name:(name r) (obligation r)]. *)

val digest : t -> int64
(** Reads the resource's (possibly cached) digest.  With the debug mode
    enabled ({!set_digest_debug}), also recomputes the from-scratch fold
    and raises {!Digest_divergence} if the two disagree. *)

val digest_fold : t -> int64
(** The from-scratch re-fold, bypassing any incremental cache. *)

val flush : t -> flush_report
val flushable : t -> bool

exception Digest_divergence of { resource : string; cached : int64; fold : int64 }
(** Raised by {!digest} in debug mode when an incrementally-maintained
    digest diverges from its from-scratch re-fold — i.e. the "digest is
    a pure function of state" invariant was broken by a missed cache
    invalidation. *)

val set_digest_debug : bool -> unit
(** Enable/disable the debug re-fold assertion globally.  Nestable
    (a counter, not a flag): concurrent holders compose. *)

val digest_debug_enabled : unit -> bool

val with_digest_debug : (unit -> 'a) -> 'a
(** Run [f] with the debug re-fold assertion enabled. *)

val default_defence : classification -> string

val make :
  name:string ->
  classification:classification ->
  ?kind:kind ->
  ?in_scope:bool ->
  ?defence:string ->
  ?colours:int ->
  ?digest_fold:(unit -> int64) ->
  ?lo_project:(view -> int64) ->
  digest:(unit -> int64) ->
  flush:(unit -> flush_report) ->
  unit ->
  t
(** General constructor (used by the adapters below, by {!Machine} for
    built-in structures, and by tests/extensions for ad-hoc resources).
    [kind] defaults to [Other_kind name]; [in_scope] defaults to
    [classification <> Neither]; [defence] defaults to
    {!default_defence}; [digest_fold] defaults to [digest] (correct for
    resources that do not cache their digest); [lo_project] defaults to
    the whole digest (correct for flushable resources). *)

val absent : name:string -> placeholder_digest:int64 -> t
(** A slot for a structure this configuration omits: digests to the
    fixed placeholder, flushes to nothing, [present = false]. *)

(** {1 Adapters} *)

val of_cache :
  name:string ->
  ?classification:classification ->
  ?defence:string ->
  ?colours:int ->
  Cache.t ->
  t
(** Default classification [Flushable] (an L1); the machine passes
    [~classification:Partitionable ~colours] for the LLC. *)

val of_tlb : ?name:string -> Tlb.t -> t
val of_bpred : ?name:string -> Bpred.t -> t
val of_prefetch : ?name:string -> Prefetch.t -> t
val of_btb : ?name:string -> Btb.t -> t

val of_interconnect : ?name:string -> Interconnect.t -> t
(** Classified [Neither] and declared out of scope — the paper's
    explicit scope limit. *)

(** {1 Registry folds}

    [Rng.combine] is not associative, so the fold shape {e is} the
    digest.  A group digests as the right-associated chain
    [combine d1 (combine d2 (... dn))] and a registry as the same chain
    over its group digests; {!Machine} arranges its registry groups so
    these folds reproduce the pre-registry hand-written digests
    bit-identically. *)

val digest_group : t list -> int64
val digest_registry : t list list -> int64

val digest_group_fold : t list -> int64
val digest_registry_fold : t list list -> int64
(** The same folds with every resource re-folded from scratch — the
    differential ground truth for {!digest_group}/{!digest_registry}. *)

val flush_group : t list -> flush_report
(** Flush every resource in order; reports are summed. *)

val flush_registry : t list list -> flush_report

val pp_classification : Format.formatter -> classification -> unit
val pp : Format.formatter -> t -> unit
