(* Flat unboxed storage: parallel int arrays per tracking slot (pc tag
   -1 = empty), with a memoised digest.  [observe] is on the data-access
   hot path, so it stales the cached digest only when it actually moves
   slot state (a zero-stride re-touch of the same address changes
   nothing). *)
type t = {
  tags : int array;
  lasts : int array;
  strides : int array;
  confidences : int array;
  mutable touched : bool; (* any slot differs from power-on: flush is O(1) otherwise *)
  mutable digest_cache : int64;
  mutable digest_clean : bool;
  empty_digest : int64;
}

(* One slot's contribution — shared by the memoised recompute and the
   from-scratch re-fold. *)
let slot_bits ~tags ~lasts ~strides ~confidences i =
  (Array.unsafe_get tags i lsl 24)
  lxor (Array.unsafe_get lasts i lsl 8)
  lxor (Array.unsafe_get strides i lsl 2)
  lxor Array.unsafe_get confidences i

let compute_digest t =
  let acc = ref 5L in
  for i = 0 to Array.length t.tags - 1 do
    acc :=
      Rng.chain_int !acc
        (slot_bits ~tags:t.tags ~lasts:t.lasts ~strides:t.strides
           ~confidences:t.confidences i)
  done;
  !acc

let create ?(slots = 16) () =
  if slots <= 0 then invalid_arg "Prefetch.create: slots must be positive";
  let empty_digest =
    let acc = ref 5L in
    for _ = 1 to slots do
      acc := Rng.chain_int !acc ((-1) lsl 24)
    done;
    !acc
  in
  {
    tags = Array.make slots (-1);
    lasts = Array.make slots 0;
    strides = Array.make slots 0;
    confidences = Array.make slots 0;
    touched = false;
    digest_cache = empty_digest;
    digest_clean = true;
    empty_digest;
  }

let degree = 2 (* prefetch depth once confident *)

let observe t ~pc ~addr =
  let i = (pc lsr 2) mod Array.length t.tags in
  if t.tags.(i) <> pc then begin
    t.tags.(i) <- pc;
    t.lasts.(i) <- addr;
    t.strides.(i) <- 0;
    t.confidences.(i) <- 0;
    t.digest_clean <- false;
    t.touched <- true;
    []
  end
  else begin
    let stride = addr - t.lasts.(i) in
    let conf' =
      if stride <> 0 && stride = t.strides.(i) then
        min 3 (t.confidences.(i) + 1)
      else 0
    in
    let stride' =
      if stride <> 0 && stride = t.strides.(i) then t.strides.(i) else stride
    in
    if
      stride' <> t.strides.(i) || conf' <> t.confidences.(i)
      || addr <> t.lasts.(i)
    then begin
      t.strides.(i) <- stride';
      t.confidences.(i) <- conf';
      t.lasts.(i) <- addr;
      t.digest_clean <- false;
      t.touched <- true
    end;
    if conf' >= 2 && stride' <> 0 then
      List.init degree (fun k -> addr + ((k + 1) * stride'))
    else []
  end

let flush t =
  if t.touched then begin
    let n = Array.length t.tags in
    Array.fill t.tags 0 n (-1);
    Array.fill t.lasts 0 n 0;
    Array.fill t.strides 0 n 0;
    Array.fill t.confidences 0 n 0;
    t.touched <- false;
    t.digest_cache <- t.empty_digest;
    t.digest_clean <- true
  end

let digest t =
  if not t.digest_clean then begin
    t.digest_cache <- compute_digest t;
    t.digest_clean <- true
  end;
  t.digest_cache

let digest_fold t = compute_digest t

let pp ppf t = Format.fprintf ppf "prefetch: %d slots" (Array.length t.tags)
