type slot = {
  mutable tag : int; (* pc tag; -1 = empty *)
  mutable last : int;
  mutable stride : int;
  mutable confidence : int;
}

type t = { slots : slot array }

let create ?(slots = 16) () =
  if slots <= 0 then invalid_arg "Prefetch.create: slots must be positive";
  {
    slots =
      Array.init slots (fun _ ->
          { tag = -1; last = 0; stride = 0; confidence = 0 });
  }

let degree = 2 (* prefetch depth once confident *)

let observe t ~pc ~addr =
  let i = (pc lsr 2) mod Array.length t.slots in
  let s = t.slots.(i) in
  if s.tag <> pc then begin
    s.tag <- pc;
    s.last <- addr;
    s.stride <- 0;
    s.confidence <- 0;
    []
  end
  else begin
    let stride = addr - s.last in
    if stride <> 0 && stride = s.stride then
      s.confidence <- min 3 (s.confidence + 1)
    else begin
      s.stride <- stride;
      s.confidence <- 0
    end;
    s.last <- addr;
    if s.confidence >= 2 && s.stride <> 0 then
      List.init degree (fun k -> addr + ((k + 1) * s.stride))
    else []
  end

let flush t =
  Array.iter
    (fun s ->
      s.tag <- -1;
      s.last <- 0;
      s.stride <- 0;
      s.confidence <- 0)
    t.slots

let digest t =
  Array.fold_left
    (fun acc s ->
      let bits =
        (s.tag lsl 24) lxor (s.last lsl 8) lxor (s.stride lsl 2)
        lxor s.confidence
      in
      Rng.combine acc (Int64.of_int bits))
    5L t.slots

let pp ppf t = Format.fprintf ppf "prefetch: %d slots" (Array.length t.slots)
