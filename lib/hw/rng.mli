(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single integer seed.  The pure hashing
    entry points ([hash64], [combine]) are used to build the paper's
    "deterministic yet unspecified function of the micro-architectural
    state": latencies are derived by hashing a state digest with a seed, so
    they are arbitrary but perfectly deterministic. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator determined by [seed]. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val next : t -> int64
(** Next 64-bit pseudo-random value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val bool : t -> bool
(** Fair pseudo-random boolean. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val hash64 : int64 -> int64
(** Pure SplitMix64 finalizer: a high-quality 64-bit mixing function. *)

val combine : int64 -> int64 -> int64
(** [combine a b] hashes two values into one, order-sensitive. *)

val chain : int64 -> int64 -> int64
(** [chain acc d] extends a state-digest chain with one element digest.
    Today it is exactly {!combine}; it exists as the {e single} routing
    point for digest chains so the incrementally-maintained digests and
    the from-scratch [digest_fold] re-folds in [lib/hw] share one
    definition and cannot drift. *)

val chain_int : int64 -> int -> int64
(** [chain_int acc bits] is [chain acc (Int64.of_int bits)]: extends a
    digest chain with one element's packed state bits. *)

val hash_int : int64 -> int64 -> int
(** [hash_int seed digest] maps a digest to a non-negative [int],
    deterministically under [seed]. *)
