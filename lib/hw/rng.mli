(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through this module so that every
    experiment is reproducible from a single integer seed.  The pure hashing
    entry points ([hash64], [combine]) are used to build the paper's
    "deterministic yet unspecified function of the micro-architectural
    state": latencies are derived by hashing a state digest with a seed, so
    they are arbitrary but perfectly deterministic. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator determined by [seed]. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val next : t -> int64
(** Next 64-bit pseudo-random value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val bool : t -> bool
(** Fair pseudo-random boolean. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val hash64 : int64 -> int64
(** Pure SplitMix64 finalizer: a high-quality 64-bit mixing function. *)

val combine : int64 -> int64 -> int64
(** [combine a b] hashes two values into one, order-sensitive. *)

val hash_int : int64 -> int64 -> int
(** [hash_int seed digest] maps a digest to a non-negative [int],
    deterministically under [seed]. *)
