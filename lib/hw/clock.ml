type t = { mutable now : int }

let create () = { now = 0 }

let now t = t.now

let advance t c =
  if c < 0 then invalid_arg "Clock.advance: negative cycles";
  t.now <- t.now + c

let wait_until t deadline =
  if deadline <= t.now then 0
  else begin
    let waited = deadline - t.now in
    t.now <- deadline;
    waited
  end

let pp ppf t = Format.fprintf ppf "t=%d" t.now
