(** Hardware cycle counter.

    The paper's "time model": a simple formalisation of a hardware clock
    sufficient to compare time stamps, which is all that verifying padding
    requires (Sect. 5).  One clock per core; cycles are abstract units. *)

type t

val create : unit -> t

val now : t -> int

val advance : t -> int -> unit
(** [advance t c] moves the clock forward by [c >= 0] cycles. *)

val wait_until : t -> int -> int
(** [wait_until t deadline] advances the clock to [deadline] if it is in
    the future and returns the number of cycles spent waiting (0 if the
    deadline already passed — the caller must treat that as a padding
    overrun). *)

val pp : Format.formatter -> t -> unit
