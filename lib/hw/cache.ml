type geometry = { sets : int; ways : int; line_bits : int }

type replacement = Lru | Fifo | Pseudo_random of int

type line = {
  mutable tag : int;
  mutable valid : bool;
  mutable dirty : bool;
  mutable owner : int;
  mutable stamp : int;      (* last-touch time (LRU) *)
  mutable fill_stamp : int; (* fill time (FIFO) *)
}

type t = {
  geometry : geometry;
  data : line array array; (* sets x ways *)
  set_ticks : int array;   (* per-set access counts (replacement state) *)
  mutable tick : int;
  repl : replacement;
  cache_name : string;
  set_mask : int;          (* sets - 1, for the set-index extraction *)
  tag_shift : int;         (* line_bits + log2 sets, precomputed *)
}

type evicted = { tag : int; dirty : bool; owner : int }

type access_result = Hit | Miss of evicted option

let shared_owner = -2

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let geometry ?(sets = 64) ?(ways = 4) ?(line_bits = 6) () =
  if not (is_power_of_two sets) then
    invalid_arg "Cache.geometry: sets must be a power of two";
  if ways <= 0 then invalid_arg "Cache.geometry: ways must be positive";
  if line_bits < 2 || line_bits > 12 then
    invalid_arg "Cache.geometry: line_bits out of range";
  { sets; ways; line_bits }

(* Takes (and ignores) the way index so it can be passed to [Array.init]
   directly — no per-set closure allocation on the create path. *)
let fresh_line _ =
  {
    tag = 0;
    valid = false;
    dirty = false;
    owner = shared_owner;
    stamp = 0;
    fill_stamp = 0;
  }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(name = "cache") ?(replacement = Lru) geometry =
  let ways = geometry.ways in
  let data = Array.init geometry.sets (fun _ -> Array.init ways fresh_line) in
  {
    geometry;
    data;
    set_ticks = Array.make geometry.sets 0;
    tick = 0;
    repl = replacement;
    cache_name = name;
    set_mask = geometry.sets - 1;
    tag_shift = geometry.line_bits + log2 geometry.sets;
  }

let replacement t = t.repl

let name t = t.cache_name
let geom t = t.geometry

let line_size g = 1 lsl g.line_bits
let size_bytes g = g.sets * g.ways * line_size g

let n_colours g ~page_bits =
  let span = g.sets * line_size g in
  max 1 (span lsr page_bits)

let colour_of_paddr g ~page_bits paddr =
  (paddr lsr page_bits) land (n_colours g ~page_bits - 1)

let colour_of_set g ~page_bits set =
  let sets_per_colour = max 1 (g.sets / n_colours g ~page_bits) in
  set / sets_per_colour

let set_of_paddr t paddr = (paddr lsr t.geometry.line_bits) land t.set_mask

let tag_of_paddr t paddr = paddr lsr t.tag_shift

(* Inverse of (set_of_paddr, tag_of_paddr), up to the line offset: rebuilds
   the base physical address of a line from the shifts precomputed at
   creation.  Used by the machine to write evicted dirty lines back into
   the next level. *)
let paddr_of_line t ~set ~tag = (tag lsl t.tag_shift) lor (set lsl t.geometry.line_bits)

let find_way set_lines tag =
  let n = Array.length set_lines in
  let rec go i =
    if i >= n then None
    else
      let l = set_lines.(i) in
      if l.valid && l.tag = tag then Some i else go (i + 1)
  in
  go 0

(* Victim selection: first invalid way, else per the replacement policy.
   Every policy depends only on the set's own history, which is what the
   paper's Case-1 argument needs. *)
let victim_way t ~set set_lines =
  let n = Array.length set_lines in
  let rec invalid i = if i >= n then None else if not set_lines.(i).valid then Some i else invalid (i + 1) in
  match invalid 0 with
  | Some i -> i
  | None -> (
    match t.repl with
    | Lru ->
      let best = ref 0 in
      for i = 1 to n - 1 do
        if set_lines.(i).stamp < set_lines.(!best).stamp then best := i
      done;
      !best
    | Fifo ->
      let best = ref 0 in
      for i = 1 to n - 1 do
        if set_lines.(i).fill_stamp < set_lines.(!best).fill_stamp then
          best := i
      done;
      !best
    | Pseudo_random seed ->
      let h =
        Rng.hash_int (Int64.of_int seed)
          (Int64.of_int ((set lsl 24) lxor t.set_ticks.(set)))
      in
      h mod n)

let access t ~owner ~write paddr =
  t.tick <- t.tick + 1;
  let set = set_of_paddr t paddr in
  t.set_ticks.(set) <- t.set_ticks.(set) + 1;
  let tag = tag_of_paddr t paddr in
  let lines = t.data.(set) in
  match find_way lines tag with
  | Some w ->
    let l = lines.(w) in
    l.stamp <- t.tick;
    if write then l.dirty <- true;
    Hit
  | None ->
    let w = victim_way t ~set lines in
    let l = lines.(w) in
    let evicted =
      if l.valid then Some { tag = l.tag; dirty = l.dirty; owner = l.owner }
      else None
    in
    l.tag <- tag;
    l.valid <- true;
    l.dirty <- write;
    l.owner <- owner;
    l.stamp <- t.tick;
    l.fill_stamp <- t.tick;
    Miss evicted

let probe t paddr =
  let set = set_of_paddr t paddr in
  find_way t.data.(set) (tag_of_paddr t paddr) <> None

let owner_of t paddr =
  let set = set_of_paddr t paddr in
  match find_way t.data.(set) (tag_of_paddr t paddr) with
  | Some w -> Some t.data.(set).(w).owner
  | None -> None

let flush t =
  let dirty = ref 0 in
  Array.iter
    (fun lines ->
      Array.iter
        (fun l ->
          if l.valid && l.dirty then incr dirty;
          l.valid <- false;
          l.dirty <- false;
          l.owner <- shared_owner;
          l.tag <- 0;
          l.stamp <- 0;
          l.fill_stamp <- 0)
        lines)
    t.data;
  Array.fill t.set_ticks 0 (Array.length t.set_ticks) 0;
  t.tick <- 0;
  !dirty

let invalidate_line t paddr =
  let set = set_of_paddr t paddr in
  match find_way t.data.(set) (tag_of_paddr t paddr) with
  | None -> false
  | Some w ->
    let l = t.data.(set).(w) in
    let was_dirty = l.dirty in
    l.valid <- false;
    l.dirty <- false;
    l.owner <- shared_owner;
    l.tag <- 0;
    l.stamp <- 0;
    l.fill_stamp <- 0;
    was_dirty

let dirty_count t =
  let n = ref 0 in
  Array.iter
    (fun lines -> Array.iter (fun l -> if l.valid && l.dirty then incr n) lines)
    t.data;
  !n

let valid_count t =
  let n = ref 0 in
  Array.iter
    (fun lines -> Array.iter (fun l -> if l.valid then incr n) lines)
    t.data;
  !n

let iter_lines t f =
  Array.iteri
    (fun set lines ->
      Array.iteri
        (fun way l ->
          if l.valid then f ~set ~way ~tag:l.tag ~dirty:l.dirty ~owner:l.owner)
        lines)
    t.data

(* These digests feed the latency functions, so their values must stay
   bit-identical across refactors; only the traversal is optimised
   (straight-line loops, no closures or intermediate lists). *)
let digest_set t set =
  let lines = t.data.(set) in
  let acc = ref (Int64.of_int (set + 1)) in
  for w = 0 to Array.length lines - 1 do
    let l = lines.(w) in
    acc :=
      if not l.valid then Rng.combine !acc 0L
      else
        let bits = (l.tag lsl 2) lor (if l.dirty then 2 else 0) lor 1 in
        Rng.combine !acc (Int64.of_int bits)
  done;
  !acc

let digest t =
  let acc = ref 1L in
  for set = 0 to t.geometry.sets - 1 do
    acc := Rng.combine !acc (digest_set t set)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "%s: %d sets x %d ways x %dB (%d valid, %d dirty)"
    t.cache_name t.geometry.sets t.geometry.ways (line_size t.geometry)
    (valid_count t) (dirty_count t)
