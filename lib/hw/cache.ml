type geometry = { sets : int; ways : int; line_bits : int }

type replacement = Lru | Fifo | Pseudo_random of int

(* Per-line state lives in flat unboxed storage, one slot per (set, way)
   at index [set * ways + way]: immediate-int arrays for tags, owners and
   stamps, and a packed byte per line for the valid/dirty bits.  No
   per-line records, no per-set boxes — a flush is a handful of
   [Array.fill]/[Bytes.fill] calls (memset) and the digest machinery
   below can cache per-set digests in an unboxed Bigarray. *)

let meta_valid = 0x1
let meta_dirty = 0x2

type int64_flat =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Digests must stay bit-identical to the historical fold (they feed the
   latency jitter), and [Rng.chain] is order-sensitive and
   non-invertible, so "incremental" means *memoised*, not algebraically
   updated: we keep every per-set digest plus the prefix chain
   [prefix.(s) = chain over sets 0..s] and a watermark [first_stale]
   below which every prefix entry is still valid.  A line write stales
   exactly its set; [digest] then re-chains only from the watermark using
   cached per-set digests, and returns the cached tail in O(1) when
   nothing changed.  The empty-state tables are interned per geometry so
   creating and flushing a cache never re-folds the empty state. *)
type empty_tables = {
  e_sets : int64_flat;       (* per-set digest of an empty set *)
  e_prefix : int64_flat;     (* prefix chain over the empty sets *)
}

type t = {
  geometry : geometry;
  tags : int array;          (* sets * ways *)
  meta : Bytes.t;            (* sets * ways: valid / dirty bits *)
  owner : int array;         (* sets * ways *)
  stamp : int array;         (* sets * ways: last touch (LRU) *)
  fill_stamp : int array;    (* sets * ways: fill time (FIFO) *)
  set_ticks : int array;     (* per-set access counts (replacement state) *)
  mutable tick : int;
  repl : replacement;
  cache_name : string;
  set_mask : int;            (* sets - 1, for the set-index extraction *)
  tag_shift : int;           (* line_bits + log2 sets, precomputed *)
  (* O(1) occupancy counters (flush reports, diagnostics) *)
  mutable n_valid : int;
  mutable n_dirty : int;
  (* incremental digest state *)
  set_digest : int64_flat;   (* cached per-set digests *)
  set_clean : Bytes.t;       (* 1 iff set_digest.(s) is current *)
  prefix : int64_flat;       (* cached digest prefix chain *)
  mutable first_stale : int; (* prefix valid strictly below this set *)
  empty : empty_tables;      (* power-on state, for flush resets *)
}

type evicted = { tag : int; dirty : bool; owner : int }

type access_result = Hit | Miss of evicted option

let shared_owner = -2

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let geometry ?(sets = 64) ?(ways = 4) ?(line_bits = 6) () =
  if not (is_power_of_two sets) then
    invalid_arg "Cache.geometry: sets must be a power of two";
  if ways <= 0 then invalid_arg "Cache.geometry: ways must be positive";
  if line_bits < 2 || line_bits > 12 then
    invalid_arg "Cache.geometry: line_bits out of range";
  { sets; ways; line_bits }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* ------------------------------------------------------------------ *)
(* Digest arithmetic — the single definition both the memoised path and
   the from-scratch re-fold go through (via Rng.chain/chain_int).       *)

(* One line's contribution to its set digest. *)
let line_bits_of ~m ~tag =
  if m land meta_valid = 0 then 0
  else (tag lsl 2) lor (if m land meta_dirty <> 0 then 2 else 0) lor 1

(* Set digest recomputed from the flat line state. *)
let compute_set_digest ~ways ~tags ~meta set =
  let base = set * ways in
  let acc = ref (Int64.of_int (set + 1)) in
  for w = 0 to ways - 1 do
    let m = Char.code (Bytes.unsafe_get meta (base + w)) in
    acc := Rng.chain_int !acc (line_bits_of ~m ~tag:(Array.unsafe_get tags (base + w)))
  done;
  !acc

(* Empty-state digest tables, interned per (sets, ways): computing them
   is the one remaining O(state) fold, paid once per geometry per
   process instead of once per create/flush. *)
let empty_memo : (int * int, empty_tables) Hashtbl.t = Hashtbl.create 8
let empty_memo_lock = Mutex.create ()

let empty_tables_for ~sets ~ways =
  Mutex.lock empty_memo_lock;
  let tables =
    match Hashtbl.find_opt empty_memo (sets, ways) with
    | Some e -> e
    | None ->
      let e_sets = Bigarray.(Array1.create int64 c_layout sets) in
      let e_prefix = Bigarray.(Array1.create int64 c_layout sets) in
      let acc = ref 1L in
      for set = 0 to sets - 1 do
        let d = ref (Int64.of_int (set + 1)) in
        for _ = 1 to ways do
          d := Rng.chain_int !d 0
        done;
        Bigarray.Array1.unsafe_set e_sets set !d;
        acc := Rng.chain !acc !d;
        Bigarray.Array1.unsafe_set e_prefix set !acc
      done;
      let e = { e_sets; e_prefix } in
      Hashtbl.replace empty_memo (sets, ways) e;
      e
  in
  Mutex.unlock empty_memo_lock;
  tables

let create ?(name = "cache") ?(replacement = Lru) geometry =
  let sets = geometry.sets and ways = geometry.ways in
  let n = sets * ways in
  let empty = empty_tables_for ~sets ~ways in
  let set_digest = Bigarray.(Array1.create int64 c_layout sets) in
  let prefix = Bigarray.(Array1.create int64 c_layout sets) in
  Bigarray.Array1.blit empty.e_sets set_digest;
  Bigarray.Array1.blit empty.e_prefix prefix;
  {
    geometry;
    tags = Array.make n 0;
    meta = Bytes.make n '\000';
    owner = Array.make n shared_owner;
    stamp = Array.make n 0;
    fill_stamp = Array.make n 0;
    set_ticks = Array.make sets 0;
    tick = 0;
    repl = replacement;
    cache_name = name;
    set_mask = sets - 1;
    tag_shift = geometry.line_bits + log2 sets;
    n_valid = 0;
    n_dirty = 0;
    set_digest;
    set_clean = Bytes.make sets '\001';
    prefix;
    first_stale = sets;
    empty;
  }

let replacement t = t.repl

let name t = t.cache_name
let geom t = t.geometry

let line_size g = 1 lsl g.line_bits
let size_bytes g = g.sets * g.ways * line_size g

let n_colours g ~page_bits =
  let span = g.sets * line_size g in
  max 1 (span lsr page_bits)

let colour_of_paddr g ~page_bits paddr =
  (paddr lsr page_bits) land (n_colours g ~page_bits - 1)

let colour_of_set g ~page_bits set =
  let sets_per_colour = max 1 (g.sets / n_colours g ~page_bits) in
  set / sets_per_colour

let set_of_paddr t paddr = (paddr lsr t.geometry.line_bits) land t.set_mask

let tag_of_paddr t paddr = paddr lsr t.tag_shift

(* Inverse of (set_of_paddr, tag_of_paddr), up to the line offset: rebuilds
   the base physical address of a line from the shifts precomputed at
   creation.  Used by the machine to write evicted dirty lines back into
   the next level. *)
let paddr_of_line t ~set ~tag = (tag lsl t.tag_shift) lor (set lsl t.geometry.line_bits)

(* A (valid, dirty, tag) change in [set] stales that set's cached digest
   and every prefix entry from it upward.  Recency/owner updates do not
   touch the digest and must not come through here. *)
let mark_set_changed t set =
  Bytes.unsafe_set t.set_clean set '\000';
  if set < t.first_stale then t.first_stale <- set

let find_way t ~base tag =
  let ways = t.geometry.ways in
  let rec go w =
    if w >= ways then -1
    else
      let i = base + w in
      if
        Char.code (Bytes.unsafe_get t.meta i) land meta_valid <> 0
        && Array.unsafe_get t.tags i = tag
      then w
      else go (w + 1)
  in
  go 0

(* Victim selection: first invalid way, else per the replacement policy.
   Every policy depends only on the set's own history, which is what the
   paper's Case-1 argument needs. *)
let victim_way t ~set ~base =
  let ways = t.geometry.ways in
  let rec invalid w =
    if w >= ways then -1
    else if Char.code (Bytes.unsafe_get t.meta (base + w)) land meta_valid = 0
    then w
    else invalid (w + 1)
  in
  match invalid 0 with
  | w when w >= 0 -> w
  | _ -> (
    match t.repl with
    | Lru ->
      let best = ref 0 in
      for w = 1 to ways - 1 do
        if t.stamp.(base + w) < t.stamp.(base + !best) then best := w
      done;
      !best
    | Fifo ->
      let best = ref 0 in
      for w = 1 to ways - 1 do
        if t.fill_stamp.(base + w) < t.fill_stamp.(base + !best) then
          best := w
      done;
      !best
    | Pseudo_random seed ->
      let h =
        Rng.hash_int (Int64.of_int seed)
          (Int64.of_int ((set lsl 24) lxor t.set_ticks.(set)))
      in
      h mod ways)

let access t ~owner ~write paddr =
  t.tick <- t.tick + 1;
  let set = set_of_paddr t paddr in
  t.set_ticks.(set) <- t.set_ticks.(set) + 1;
  let tag = tag_of_paddr t paddr in
  let base = set * t.geometry.ways in
  match find_way t ~base tag with
  | w when w >= 0 ->
    let i = base + w in
    t.stamp.(i) <- t.tick;
    (if write then
       let m = Char.code (Bytes.unsafe_get t.meta i) in
       if m land meta_dirty = 0 then begin
         Bytes.unsafe_set t.meta i (Char.chr (m lor meta_dirty));
         t.n_dirty <- t.n_dirty + 1;
         mark_set_changed t set
       end);
    Hit
  | _ ->
    let w = victim_way t ~set ~base in
    let i = base + w in
    let m = Char.code (Bytes.unsafe_get t.meta i) in
    let evicted =
      if m land meta_valid <> 0 then begin
        if m land meta_dirty <> 0 then t.n_dirty <- t.n_dirty - 1;
        Some
          {
            tag = t.tags.(i);
            dirty = m land meta_dirty <> 0;
            owner = t.owner.(i);
          }
      end
      else begin
        t.n_valid <- t.n_valid + 1;
        None
      end
    in
    t.tags.(i) <- tag;
    Bytes.unsafe_set t.meta i
      (Char.chr (meta_valid lor (if write then meta_dirty else 0)));
    if write then t.n_dirty <- t.n_dirty + 1;
    t.owner.(i) <- owner;
    t.stamp.(i) <- t.tick;
    t.fill_stamp.(i) <- t.tick;
    mark_set_changed t set;
    Miss evicted

let probe t paddr =
  let set = set_of_paddr t paddr in
  find_way t ~base:(set * t.geometry.ways) (tag_of_paddr t paddr) >= 0

let owner_of t paddr =
  let set = set_of_paddr t paddr in
  let base = set * t.geometry.ways in
  match find_way t ~base (tag_of_paddr t paddr) with
  | w when w >= 0 -> Some t.owner.(base + w)
  | _ -> None

(* Full invalidation.  [tick = 0] means no access has happened since the
   last flush (lines only become valid through accesses), so the cache is
   already in the power-on state and the flush is O(1) with an unchanged
   (zero write-back) report — the clean-flush fast path. *)
let flush t =
  let dirty = t.n_dirty in
  if t.tick <> 0 then begin
    let n = Array.length t.tags in
    Array.fill t.tags 0 n 0;
    Bytes.fill t.meta 0 n '\000';
    Array.fill t.owner 0 n shared_owner;
    Array.fill t.stamp 0 n 0;
    Array.fill t.fill_stamp 0 n 0;
    Array.fill t.set_ticks 0 t.geometry.sets 0;
    t.tick <- 0;
    t.n_valid <- 0;
    t.n_dirty <- 0;
    (* restore the interned empty-state digest tables wholesale *)
    Bigarray.Array1.blit t.empty.e_sets t.set_digest;
    Bigarray.Array1.blit t.empty.e_prefix t.prefix;
    Bytes.fill t.set_clean 0 t.geometry.sets '\001';
    t.first_stale <- t.geometry.sets
  end;
  dirty

let invalidate_line t paddr =
  let set = set_of_paddr t paddr in
  let base = set * t.geometry.ways in
  match find_way t ~base (tag_of_paddr t paddr) with
  | w when w >= 0 ->
    let i = base + w in
    let m = Char.code (Bytes.unsafe_get t.meta i) in
    let was_dirty = m land meta_dirty <> 0 in
    Bytes.unsafe_set t.meta i '\000';
    t.tags.(i) <- 0;
    t.owner.(i) <- shared_owner;
    t.stamp.(i) <- 0;
    t.fill_stamp.(i) <- 0;
    t.n_valid <- t.n_valid - 1;
    if was_dirty then t.n_dirty <- t.n_dirty - 1;
    mark_set_changed t set;
    was_dirty
  | _ -> false

let dirty_count t = t.n_dirty

let valid_count t = t.n_valid

let iter_lines t f =
  let ways = t.geometry.ways in
  for set = 0 to t.geometry.sets - 1 do
    for way = 0 to ways - 1 do
      let i = (set * ways) + way in
      let m = Char.code (Bytes.unsafe_get t.meta i) in
      if m land meta_valid <> 0 then
        f ~set ~way ~tag:t.tags.(i) ~dirty:(m land meta_dirty <> 0)
          ~owner:t.owner.(i)
    done
  done

(* These digests feed the latency functions, so their values must stay
   bit-identical across refactors; the flat-state rewrite only changes
   *when* they are computed (memoised per set, re-chained above the
   stale watermark) — never what they compute. *)
let digest_set t set =
  if Bytes.unsafe_get t.set_clean set = '\001' then
    Bigarray.Array1.unsafe_get t.set_digest set
  else begin
    let d = compute_set_digest ~ways:t.geometry.ways ~tags:t.tags ~meta:t.meta set in
    Bigarray.Array1.unsafe_set t.set_digest set d;
    Bytes.unsafe_set t.set_clean set '\001';
    d
  end

let digest t =
  let sets = t.geometry.sets in
  if t.first_stale < sets then begin
    let acc =
      ref
        (if t.first_stale = 0 then 1L
         else Bigarray.Array1.unsafe_get t.prefix (t.first_stale - 1))
    in
    for set = t.first_stale to sets - 1 do
      acc := Rng.chain !acc (digest_set t set);
      Bigarray.Array1.unsafe_set t.prefix set !acc
    done;
    t.first_stale <- sets
  end;
  Bigarray.Array1.unsafe_get t.prefix (sets - 1)

(* From-scratch re-folds, bypassing every cache: the ground truth the
   debug mode (Resource.set_digest_debug) asserts the memoised digests
   against.  Same arithmetic by construction — both paths go through
   [compute_set_digest] / Rng.chain. *)
let digest_set_fold t set =
  compute_set_digest ~ways:t.geometry.ways ~tags:t.tags ~meta:t.meta set

let digest_fold t =
  let acc = ref 1L in
  for set = 0 to t.geometry.sets - 1 do
    acc := Rng.chain !acc (digest_set_fold t set)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "%s: %d sets x %d ways x %dB (%d valid, %d dirty)"
    t.cache_name t.geometry.sets t.geometry.ways (line_size t.geometry)
    (valid_count t) (dirty_count t)
