type t = {
  l1_hit : int;
  l2_hit : int;
  llc_hit : int;
  mem_lat : int;
  tlb_hit : int;
  walk : int;
  branch_hit : int;
  branch_miss : int;
  dirty_wb : int;
  flush_base : int;
  clflush_base : int;
  jitter_mag : int;
  seed : int64;
}

let default =
  {
    l1_hit = 4;
    l2_hit = 12;
    llc_hit = 30;
    mem_lat = 120;
    tlb_hit = 1;
    walk = 40;
    branch_hit = 1;
    branch_miss = 15;
    dirty_wb = 2;
    flush_base = 200;
    clflush_base = 10;
    jitter_mag = 3;
    seed = 0x5EED_0F_71E_0CCL;
  }

let with_seed t seed = { t with seed = Rng.hash64 (Int64.of_int seed) }

let jitter t digest =
  if t.jitter_mag = 0 then 0
  else Rng.hash_int t.seed digest mod (t.jitter_mag + 1)

let pp ppf t =
  Format.fprintf ppf
    "latency: L1=%d LLC=%d mem=%d tlb=%d walk=%d br=%d/%d jitter<=%d"
    t.l1_hit t.llc_hit t.mem_lat t.tlb_hit t.walk t.branch_hit t.branch_miss
    t.jitter_mag
