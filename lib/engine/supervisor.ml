(* Fault-tolerant fan-out on top of [Pool].

   [Pool.map] settles every job but re-raises the first failure, tearing
   down the whole campaign.  The supervisor keeps the campaign alive:
   every task settles into a typed [('b, task_error) result], failed
   tasks are retried a bounded, deterministic number of times, runaway
   tasks are cut off by a cooperative fuel budget, and a pool whose
   worker domains cannot be spawned degrades to sequential execution
   with a warning instead of aborting.  Everything the supervisor
   absorbs is reported in the run summary — no fault is silent. *)

module Fuel = struct
  exception Out_of_fuel of { budget : int }

  type t = { budget : int option; mutable used : int }

  let make budget = { budget; used = 0 }

  let burn ?(amount = 1) t =
    t.used <- t.used + amount;
    match t.budget with
    | Some b when t.used > b -> raise (Out_of_fuel { budget = b })
    | Some _ | None -> ()

  let used t = t.used
end

type task_error =
  | Task_raised of { key : int; attempts : int; message : string }
  | Fuel_exhausted of { key : int; budget : int }
  | Duplicate_submission of { key : int }

let task_error_to_string = function
  | Task_raised { key; attempts; message } ->
    Printf.sprintf "task %d raised after %d attempt%s: %s" key attempts
      (if attempts = 1 then "" else "s")
      message
  | Fuel_exhausted { key; budget } ->
    Printf.sprintf "task %d exhausted its fuel budget (%d)" key budget
  | Duplicate_submission { key } ->
    Printf.sprintf "task %d submitted twice; duplicate rejected" key

type fault =
  | No_fault
  | Raise_once of { key : int }
  | Raise_always of { key : int }
  | Hang of { key : int }
  | Duplicate of { key : int }
  | Torn_checkpoint
  | Spawn_failure

exception Injected of int

let () =
  Printexc.register_printer (function
    | Injected k -> Some (Printf.sprintf "injected fault (task %d)" k)
    | _ -> None)

type summary = {
  total : int;
  ok : int;
  retried : int;
  failed : int;
  duplicates : int;
  degraded : bool;
  warnings : string list;
}

(* Deterministic exponential backoff before retry [attempt] (1-based):
   base * 2^(attempt-1), capped.  A pure function of the attempt
   number, so retried schedules are reproducible and results stay
   bit-identical with or without backoff. *)
let backoff_delay ~base ~cap attempt =
  let d = base *. (2. ** float_of_int (max 0 (attempt - 1))) in
  Float.min cap (Float.max 0. d)

type t = {
  pool : Pool.t option;
  domains : int;
  retries : int;
  backoff : (float * float) option;
  fuel_budget : int option;
  fault : fault;
  mutex : Mutex.t;
  raised_for : (int, int) Hashtbl.t;
      (* key -> injected raises fired so far *)
  mutable s_total : int;
  mutable s_ok : int;
  mutable s_retried : int;
  mutable s_failed : int;
  mutable s_duplicates : int;
  mutable s_degraded : bool;
  mutable s_warnings : string list; (* newest first *)
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let warn t msg = t.s_warnings <- msg :: t.s_warnings

let create ?domains ?(retries = 1) ?backoff ?fuel ?(fault = No_fault) () =
  let domains, calibration_note =
    match domains with
    | Some d -> (max 1 d, None)
    | None ->
      (* Calibrated default: on a 1-core (or CPU-quota'd) host the
         answer is 1 — sequential, zero worker domains — and the
         decision is recorded as a warning so campaign summaries say
         why no parallelism happened. *)
      let h = Calibrate.host () in
      let note =
        if h.Calibrate.recommended <= 1 then
          Some ("calibration: " ^ h.Calibrate.probe_note)
        else None
      in
      (h.Calibrate.recommended, note)
  in
  let fuel =
    (* the hang fault spins on the fuel gauge: give it a gauge even if
       the caller asked for an unlimited budget *)
    match (fuel, fault) with
    | None, Hang _ -> Some 1_000_000
    | f, _ -> f
  in
  let t =
    {
      pool = None;
      domains;
      retries = max 0 retries;
      backoff;
      fuel_budget = fuel;
      fault;
      mutex = Mutex.create ();
      raised_for = Hashtbl.create 7;
      s_total = 0;
      s_ok = 0;
      s_retried = 0;
      s_failed = 0;
      s_duplicates = 0;
      s_degraded = false;
      s_warnings = [];
    }
  in
  if domains <= 1 then begin
    Option.iter (warn t) calibration_note;
    t
  end
  else begin
    let spawn_result =
      match fault with
      | Spawn_failure -> Error "injected spawn failure"
      | _ -> Pool.create_opt ~domains ()
    in
    match spawn_result with
    | Ok pool -> { t with pool = Some pool }
    | Error msg ->
      t.s_degraded <- true;
      warn t
        (Printf.sprintf
           "worker domains failed to spawn (%s); degrading to sequential \
            execution"
           msg);
      t
  end

let pool t = t.pool
let degraded t = t.s_degraded
let fault t = t.fault

let shutdown t = Option.iter Pool.shutdown t.pool

let with_supervisor ?domains ?retries ?backoff ?fuel ?fault f =
  let t = create ?domains ?retries ?backoff ?fuel ?fault () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let summary t =
  locked t (fun () ->
      {
        total = t.s_total;
        ok = t.s_ok;
        retried = t.s_retried;
        failed = t.s_failed;
        duplicates = t.s_duplicates;
        degraded = t.s_degraded;
        warnings = List.rev t.s_warnings;
      })

let pp_summary ppf s =
  Format.fprintf ppf
    "supervisor: %d task%s: %d ok (%d retried), %d failed, %d duplicate%s \
     rejected%s"
    s.total
    (if s.total = 1 then "" else "s")
    s.ok s.retried s.failed s.duplicates
    (if s.duplicates = 1 then "" else "s")
    (if s.degraded then "; DEGRADED to sequential execution" else "");
  List.iter (fun w -> Format.fprintf ppf "@.  warning: %s" w) s.warnings

(* ------------------------------------------------------------------ *)
(* Task execution                                                       *)

(* Apply the injected fault, then the task.  The raise faults count
   firings per key under the supervisor mutex so retry behaviour is
   deterministic no matter which domain runs the attempt. *)
let run_with_fault t ~fuel ~key f x =
  (match t.fault with
  | Raise_once { key = k } when k = key ->
    let fire =
      locked t (fun () ->
          let n = Option.value ~default:0 (Hashtbl.find_opt t.raised_for k) in
          Hashtbl.replace t.raised_for k (n + 1);
          n = 0)
    in
    if fire then raise (Injected k)
  | Raise_always { key = k } when k = key -> raise (Injected k)
  | Hang { key = k } when k = key ->
    (* a runaway scenario: burns fuel forever, so the only way out is
       the watchdog tripping [Out_of_fuel] *)
    while true do
      Fuel.burn fuel
    done
  | _ -> ());
  f ~fuel x

let exec t ~key f x =
  let rec attempt n =
    let fuel = Fuel.make t.fuel_budget in
    match run_with_fault t ~fuel ~key f x with
    | v ->
      if n > 1 then
        locked t (fun () ->
            t.s_retried <- t.s_retried + 1;
            warn t
              (Printf.sprintf
                 "task %d succeeded on attempt %d (retried deterministically)"
                 key n));
      Ok v
    | exception Fuel.Out_of_fuel { budget } ->
      (* deterministic tasks would only spin again: no retry *)
      Error (Fuel_exhausted { key; budget })
    | exception e ->
      if n <= t.retries then begin
        (* Back off before retrying: transient failures (a peer
           restarting, a descriptor limit) deserve breathing room, and
           the deterministic schedule keeps retried runs reproducible.
           Tasks are pure, so the delay can never change a result. *)
        (match t.backoff with
        | Some (base, cap) ->
          let d = backoff_delay ~base ~cap n in
          if d > 0. then Unix.sleepf d
        | None -> ());
        attempt (n + 1)
      end
      else
        Error
          (Task_raised { key; attempts = n; message = Printexc.to_string e })
  in
  let r = attempt 1 in
  locked t (fun () ->
      t.s_total <- t.s_total + 1;
      match r with
      | Ok _ -> t.s_ok <- t.s_ok + 1
      | Error e ->
        t.s_failed <- t.s_failed + 1;
        warn t (task_error_to_string e));
  r

(* ------------------------------------------------------------------ *)
(* Fan-out                                                              *)

type 'a slot = Run of int * 'a | Dup of int

let run (type a b) (t : t) ?chunk ?label ~(key : a -> int)
    (f : fuel:Fuel.t -> a -> b) (xs : a list) :
    (b, task_error) result list =
  let tagged = List.map (fun x -> (key x, x)) xs in
  let n_real = List.length tagged in
  (* the duplicate fault re-enqueues one already-submitted task, the way
     a buggy resume path would *)
  let tagged =
    match t.fault with
    | Duplicate { key = k } -> (
      match List.find_opt (fun (k', _) -> k' = k) tagged with
      | Some item -> tagged @ [ item ]
      | None -> tagged)
    | _ -> tagged
  in
  (* duplicate detection happens at submission time, in input order, so
     which occurrence runs is deterministic: always the first *)
  let seen = Hashtbl.create (List.length tagged) in
  let slots =
    List.map
      (fun (k, x) ->
        if Hashtbl.mem seen k then Dup k
        else begin
          Hashtbl.add seen k ();
          Run (k, x)
        end)
      tagged
  in
  let jobs =
    List.filter_map (function Run (k, x) -> Some (k, x) | Dup _ -> None) slots
  in
  let job_results =
    let go (k, x) = exec t ~key:k f x in
    match t.pool with
    | Some p when Pool.size p > 1 -> (
      (* An explicit [chunk] is honoured; otherwise the pool's cost
         model sizes chunks from past observations of [label]. *)
      match chunk with
      | Some chunk -> Pool.map_chunks p ~chunk go jobs
      | None -> Pool.map_auto ?label p go jobs)
    | Some _ | None -> List.map go jobs
  in
  let results = Hashtbl.create (List.length jobs) in
  List.iter2 (fun (k, _) r -> Hashtbl.replace results k r) jobs job_results;
  let settled =
    List.map
      (function
        | Run (k, _) -> Hashtbl.find results k
        | Dup k ->
          locked t (fun () ->
              t.s_total <- t.s_total + 1;
              t.s_duplicates <- t.s_duplicates + 1;
              warn t (task_error_to_string (Duplicate_submission { key = k })));
          Error (Duplicate_submission { key = k }))
      slots
  in
  (* drop the injected duplicate's slot: callers get one result per
     input element; the detection lives on in the summary *)
  List.filteri (fun i _ -> i < n_real) settled

(* ------------------------------------------------------------------ *)
(* Checkpointing through the supervisor, so the torn-write fault can be
   injected at the engine level                                         *)

let checkpoint_save t ~path payload =
  let fault = match t.fault with Torn_checkpoint -> Some `Torn | _ -> None in
  Checkpoint.save ?fault ~path payload
