(* Adaptive work-stealing domain pool.

   Topology: [size - 1] worker domains, each owning a Chase–Lev
   [Deque.t] (owner pushes/pops LIFO at the bottom; thieves steal FIFO
   at the top), plus a mutex-guarded injector queue for submissions
   from domains outside the pool (the usual case: [map] called from
   the main domain).  The calling domain always helps drain its own
   call, so a pool is never idle while its owner waits — and a pool
   whose workers are gone (size 1, or after [shutdown]) degrades to
   plain in-order [List.map].

   Task acquisition order: own deque (LIFO, cache-warm), then the
   injector, then steal attempts over the other workers starting from
   a random victim.  A failed steal CAS ([Retry]) means somebody else
   is making progress on that deque, so the scanner spins rather than
   parks.

   Parking uses an eventcount to avoid lost wakeups: [epoch] is bumped
   (under the mutex) on every submission batch and at shutdown, and a
   worker only blocks on the condition variable if the epoch still
   equals what it read before its last full scan — any submission in
   between forces a rescan.

   Determinism: each [map]/[map_chunks]/[map_auto] call allocates a
   slot array; task [k] writes slot [k] and decrements an atomic
   countdown, and the caller assembles slots in index order once the
   countdown hits zero.  Steal order therefore never affects results,
   only timing.  The atomic countdown also publishes the plain slot
   writes to the assembling domain (release/acquire through the RMW
   chain).

   Failure semantics: a chunk task catches the exception of its first
   failing element; after all tasks settle, the lowest-indexed failure
   is re-raised — exactly the exception a sequential left-to-right map
   over the same chunking would have raised first. *)

type task = unit -> unit

type worker = {
  w_index : int;
  w_deque : task Deque.t;
  mutable w_steals : int;
  mutable w_executed : int;
}

type t = {
  id : int;
  size : int;
  injector : task Queue.t;
  mutex : Mutex.t;
  wake : Condition.t;
  epoch : int Atomic.t;
  mutable sleepers : int;
  mutable stop : bool;
  workers_state : worker array;
  mutable workers : unit Domain.t array;
  foreign_steals : int Atomic.t;
  foreign_executed : int Atomic.t;
  injected : int Atomic.t;
  minor_heap_words : int option;
  cost : Cost_model.t;
}

type stats = {
  pool_size : int;
  spawned_domains : int;
  steals : int;
  tasks_executed : int;
  tasks_injected : int;
  minor_heap_words : int option;
}

let next_id = Atomic.make 0

(* Which pool's worker is this domain?  Keyed by pool id so a nested
   [map] on a *different* pool is correctly treated as foreign. *)
let dls_key : (int * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_worker pool =
  match Domain.DLS.get dls_key with
  | Some (id, w) when id = pool.id -> Some w
  | _ -> None

let recommended () = Calibrate.recommended ()

(* Cheap xorshift for victim selection; only steal fairness depends on
   it, never results. *)
let rand_next r =
  let x = !r in
  let x = if x = 0 then 0x2545F4914F6CDD1D else x in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = (x lxor (x lsl 17)) land max_int in
  r := x;
  x

type got = Got of task | Contended | Nothing

let try_injector pool =
  (* Racy emptiness peek: keeps the common empty case lock-free.  A
     stale "empty" answer is caught by the eventcount rescan. *)
  if Queue.is_empty pool.injector then None
  else begin
    Mutex.lock pool.mutex;
    let r =
      if Queue.is_empty pool.injector then None
      else Some (Queue.pop pool.injector)
    in
    Mutex.unlock pool.mutex;
    r
  end

let try_steal pool self rr =
  let n = Array.length pool.workers_state in
  if n = 0 then Nothing
  else begin
    let start = rand_next rr mod n in
    let contended = ref false in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n do
      let v = pool.workers_state.((start + !i) mod n) in
      let skip = match self with Some w -> w == v | None -> false in
      (if not skip then
         match Deque.steal v.w_deque with
         | Deque.Stolen task -> found := Some task
         | Deque.Retry -> contended := true
         | Deque.Empty -> ());
      incr i
    done;
    match !found with
    | Some task ->
      (match self with
      | Some w -> w.w_steals <- w.w_steals + 1
      | None -> Atomic.incr pool.foreign_steals);
      Got task
    | None -> if !contended then Contended else Nothing
  end

let try_get pool self rr =
  match
    match self with Some w -> Deque.pop w.w_deque | None -> None
  with
  | Some task -> Got task
  | None -> (
    match try_injector pool with
    | Some task -> Got task
    | None -> try_steal pool self rr)

(* Bump the eventcount and wake sleepers; callers must have made the
   new work reachable (deque push / injector add) beforehand. *)
let signal pool =
  Mutex.lock pool.mutex;
  Atomic.incr pool.epoch;
  if pool.sleepers > 0 then Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex

let submit_batch pool self tasks =
  match self with
  | Some w ->
    List.iter (fun task -> Deque.push w.w_deque task) tasks;
    signal pool
  | None ->
    Mutex.lock pool.mutex;
    List.iter
      (fun task ->
        Queue.add task pool.injector;
        Atomic.incr pool.injected)
      tasks;
    Atomic.incr pool.epoch;
    if pool.sleepers > 0 then Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex

let worker_loop (pool : t) w =
  (match pool.minor_heap_words with
  | Some words -> Calibrate.apply_minor_heap words
  | None -> ());
  Domain.DLS.set dls_key (Some (pool.id, w));
  let rr = ref (0x9E3779B9 + w.w_index) in
  let rec loop () =
    let seen = Atomic.get pool.epoch in
    match try_get pool (Some w) rr with
    | Got task ->
      w.w_executed <- w.w_executed + 1;
      task ();
      loop ()
    | Contended ->
      Domain.cpu_relax ();
      loop ()
    | Nothing ->
      Mutex.lock pool.mutex;
      if Atomic.get pool.epoch <> seen then begin
        (* Work arrived between scan and lock: rescan. *)
        Mutex.unlock pool.mutex;
        loop ()
      end
      else if pool.stop then
        (* Epoch unchanged since a full empty scan, so nothing is left
           to drain (any submission bumps the epoch): exit. *)
        Mutex.unlock pool.mutex
      else begin
        pool.sleepers <- pool.sleepers + 1;
        Condition.wait pool.wake pool.mutex;
        pool.sleepers <- pool.sleepers - 1;
        Mutex.unlock pool.mutex;
        loop ()
      end
  in
  loop ();
  Domain.DLS.set dls_key None

(* Spawn all workers, or clean up whatever was spawned before the
   failure: a half-built pool must not leak running domains. *)
let spawn_workers pool =
  let spawned = ref [] in
  match
    Array.iter
      (fun w -> spawned := Domain.spawn (fun () -> worker_loop pool w) :: !spawned)
      pool.workers_state
  with
  | () -> Ok (Array.of_list !spawned)
  | exception e ->
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Atomic.incr pool.epoch;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    List.iter Domain.join !spawned;
    Error (Printexc.to_string e)

let fresh ?minor_heap_words size =
  {
    id = Atomic.fetch_and_add next_id 1;
    size;
    injector = Queue.create ();
    mutex = Mutex.create ();
    wake = Condition.create ();
    epoch = Atomic.make 0;
    sleepers = 0;
    stop = false;
    workers_state =
      Array.init (max 0 (size - 1)) (fun i ->
          { w_index = i; w_deque = Deque.create (); w_steals = 0; w_executed = 0 });
    workers = [||];
    foreign_steals = Atomic.make 0;
    foreign_executed = Atomic.make 0;
    injected = Atomic.make 0;
    minor_heap_words;
    cost = Cost_model.create ();
  }

(* Default sizing is calibrated; an explicit [~domains] is honoured
   verbatim (tests rely on forcing 4 domains on a 1-core host) and
   leaves the minor heap alone unless asked. *)
let resolve ?domains ?minor_heap_words () =
  match domains with
  | Some d -> (max 1 d, minor_heap_words)
  | None ->
    let h = Calibrate.host () in
    let mh =
      match minor_heap_words with
      | Some _ -> minor_heap_words
      | None ->
        if h.Calibrate.recommended > 1 then Some h.Calibrate.minor_heap_words
        else None
    in
    (h.Calibrate.recommended, mh)

let create ?domains ?minor_heap_words () =
  let size, mh = resolve ?domains ?minor_heap_words () in
  let pool = fresh ?minor_heap_words:mh size in
  if size > 1 then begin
    match spawn_workers pool with
    | Ok ws -> pool.workers <- ws
    | Error msg -> failwith ("Pool.create: cannot spawn workers: " ^ msg)
  end;
  pool

let create_opt ?domains ?minor_heap_words () =
  let size, mh = resolve ?domains ?minor_heap_words () in
  let pool = fresh ?minor_heap_words:mh size in
  if size <= 1 then Ok pool
  else
    match spawn_workers pool with
    | Ok ws ->
      pool.workers <- ws;
      Ok pool
    | Error msg -> Error msg

let size t = t.size
let parallel_available pool = Array.length pool.workers > 0

(* Help run tasks until this call's countdown hits zero.  The caller
   never blocks while any task is reachable (own deque, injector, or
   stealable), so every pending task is always either running or
   acquirable by somebody — the final decrement's broadcast is the
   only wakeup the wait needs. *)
let help_until pool self remaining call_mutex call_done =
  let rr = ref (match self with Some w -> 31 * (w.w_index + 1) | None -> 7) in
  let rec go () =
    if Atomic.get remaining > 0 then
      match try_get pool self rr with
      | Got task ->
        (match self with
        | Some w -> w.w_executed <- w.w_executed + 1
        | None -> Atomic.incr pool.foreign_executed);
        task ();
        go ()
      | Contended ->
        Domain.cpu_relax ();
        go ()
      | Nothing ->
        Mutex.lock call_mutex;
        if Atomic.get remaining > 0 then Condition.wait call_done call_mutex;
        Mutex.unlock call_mutex;
        go ()
  in
  go ()

let map_chunked pool ~chunk f xs =
  match xs with
  | [] -> []
  | _ when not (parallel_available pool) ->
    (* Sequential fallback: left-to-right, first failure raises —
       byte-identical results to the parallel path. *)
    List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let chunk = max 1 (min chunk n) in
    let nchunks = (n + chunk - 1) / chunk in
    let slots = Array.make nchunks None in
    let remaining = Atomic.make nchunks in
    let call_mutex = Mutex.create () in
    let call_done = Condition.create () in
    let self = current_worker pool in
    let run_chunk k () =
      let lo = k * chunk in
      let hi = min n (lo + chunk) - 1 in
      let r =
        try
          let out = ref [] in
          for i = lo to hi do
            out := f arr.(i) :: !out
          done;
          Ok (List.rev !out)
        with e -> Error e
      in
      slots.(k) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock call_mutex;
        Condition.broadcast call_done;
        Mutex.unlock call_mutex
      end
    in
    submit_batch pool self (List.init nchunks run_chunk);
    help_until pool self remaining call_mutex call_done;
    (* Re-raise the lowest-indexed failure: exactly the exception a
       sequential left-to-right map would have raised first. *)
    Array.iter
      (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
      slots;
    let out = ref [] in
    for k = nchunks - 1 downto 0 do
      match slots.(k) with
      | Some (Ok vs) -> out := vs @ !out
      | Some (Error _) | None -> assert false
    done;
    !out

let map pool f xs = map_chunked pool ~chunk:1 f xs

let map_chunks pool ~chunk f xs =
  if chunk <= 0 then invalid_arg "Pool.map_chunks: chunk must be positive";
  map_chunked pool ~chunk f xs

let map_auto ?(label = "default") pool f xs =
  match xs with
  | [] -> []
  | _ ->
    let n = List.length xs in
    let chunk = Cost_model.chunk pool.cost ~label ~items:n ~workers:pool.size in
    let t0 = Unix.gettimeofday () in
    let r = map_chunked pool ~chunk f xs in
    let dt = Unix.gettimeofday () -. t0 in
    (* Wall-clock under parallel execution undercounts per-item CPU
       cost by up to the pool size; scale so the estimate stays an
       upper bound and chunks stay conservatively small. *)
    let eff = if parallel_available pool then float_of_int pool.size else 1. in
    Cost_model.observe pool.cost ~label ~items:n ~seconds:(dt *. eff);
    r

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stop then Mutex.unlock pool.mutex
  else begin
    pool.stop <- true;
    Atomic.incr pool.epoch;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let stats (pool : t) =
  let ws = pool.workers_state in
  let steals =
    Array.fold_left (fun a w -> a + w.w_steals) (Atomic.get pool.foreign_steals) ws
  in
  let executed =
    Array.fold_left
      (fun a w -> a + w.w_executed)
      (Atomic.get pool.foreign_executed)
      ws
  in
  {
    pool_size = pool.size;
    spawned_domains = Array.length pool.workers;
    steals;
    tasks_executed = executed;
    tasks_injected = Atomic.get pool.injected;
    minor_heap_words = pool.minor_heap_words;
  }

let cost_model t = t.cost
