(* Fixed-size domain pool: a closure queue guarded by a mutex/condition
   pair, drained by [size - 1] worker domains plus the calling domain.

   [map] submits one job per element; each job records its result (or the
   exception it raised) into a slot of a per-call array, so results come
   back in input order no matter which domain ran what.  The caller helps
   drain the queue and then blocks on the call's own condition until the
   last job has settled. *)

type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let recommended () = Domain.recommended_domain_count ()

(* Workers drain the queue even after [stop] is set, so shutdown never
   drops submitted work. *)
let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    job ();
    worker_loop pool
  end

(* Spawn [n] workers, or clean up whatever was spawned before the
   failure: a half-built pool must not leak running domains. *)
let spawn_workers pool n =
  let spawned = ref [] in
  match
    for _ = 1 to n do
      spawned := Domain.spawn (fun () -> worker_loop pool) :: !spawned
    done
  with
  | () -> Ok (Array.of_list !spawned)
  | exception e ->
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    List.iter Domain.join !spawned;
    Error (Printexc.to_string e)

let fresh size =
  {
    size;
    queue = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    stop = false;
    workers = [||];
  }

let create ?domains () =
  let size =
    match domains with None -> recommended () | Some d -> max 1 d
  in
  let pool = fresh size in
  if size > 1 then begin
    match spawn_workers pool (size - 1) with
    | Ok ws -> pool.workers <- ws
    | Error msg -> failwith ("Pool.create: cannot spawn workers: " ^ msg)
  end;
  pool

let create_opt ?domains () =
  let size =
    match domains with None -> recommended () | Some d -> max 1 d
  in
  let pool = fresh size in
  if size <= 1 then Ok pool
  else
    match spawn_workers pool (size - 1) with
    | Ok ws ->
      pool.workers <- ws;
      Ok pool
    | Error msg -> Error msg

let size t = t.size

(* Pop-and-run until the shared queue is empty.  Used by the caller of
   [map]; it may execute jobs submitted by concurrent maps, which is
   harmless — every job carries its own completion state. *)
let rec help_drain pool =
  Mutex.lock pool.mutex;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    job ();
    help_drain pool
  end

let map_seq f xs =
  (* In-order sequential map with the same first-failure semantics as the
     parallel path. *)
  List.map f xs

let map pool f xs =
  if Array.length pool.workers = 0 then map_seq f xs
  else
    match xs with
    | [] -> []
    | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let call_mutex = Mutex.create () in
      let call_done = Condition.create () in
      let remaining = ref n in
      let run i =
        let r = try Ok (f arr.(i)) with e -> Error e in
        Mutex.lock call_mutex;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast call_done;
        Mutex.unlock call_mutex
      in
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run i) pool.queue
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      help_drain pool;
      Mutex.lock call_mutex;
      while !remaining > 0 do
        Condition.wait call_done call_mutex
      done;
      Mutex.unlock call_mutex;
      (* Re-raise the lowest-indexed failure: exactly the exception a
         sequential left-to-right map would have raised first. *)
      Array.iter
        (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
        results;
      Array.to_list
        (Array.map
           (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
           results)

(* Chunked map: one queue job per [chunk] consecutive elements instead of
   one per element, so very cheap per-element work (a fuzz trial on a tiny
   scenario) is not dominated by queue locking.  Results are flattened
   back in input order; failure semantics match [map] because the chunks
   themselves are mapped in order. *)
let map_chunks pool ~chunk f xs =
  if chunk <= 0 then invalid_arg "Pool.map_chunks: chunk must be positive";
  let rec split xs =
    match xs with
    | [] -> []
    | _ ->
      let rec take n acc rest =
        match (n, rest) with
        | 0, _ | _, [] -> (List.rev acc, rest)
        | n, x :: rest -> take (n - 1) (x :: acc) rest
      in
      let c, rest = take chunk [] xs in
      c :: split rest
  in
  List.concat (map pool (List.map f) (split xs))

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stop then Mutex.unlock pool.mutex
  else begin
    pool.stop <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
