(** Chase–Lev work-stealing deque.

    One domain — the {e owner} — pushes and pops at the bottom in LIFO
    order; any number of {e thief} domains steal from the top in FIFO
    order.  [push] and [pop] must only ever be called from the owning
    domain; [steal] is safe from anywhere.

    The implementation is the classic growable circular-array design:
    [top] and [bottom] are sequentially consistent atomics, the array
    is published through an atomic reference so thieves never observe
    a torn resize, and the owner/thief race on the last element is
    resolved by a compare-and-set on [top].  Indices increase
    monotonically, so there is no ABA hazard. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty deque.  [capacity] (default 64, rounded up
    to a power of two) is only the initial array size; the deque grows
    without bound. *)

val push : 'a t -> 'a -> unit
(** Owner only.  Push at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only.  Pop the most recently pushed element, or [None] if
    the deque is empty (a thief may win the race for the last
    element). *)

type 'a steal_result =
  | Empty  (** nothing to take at the time of the attempt *)
  | Retry  (** lost a race with the owner or another thief; work may remain *)
  | Stolen of 'a

val steal : 'a t -> 'a steal_result
(** Any domain.  Take the oldest element.  [Retry] means the
    compare-and-set on [top] failed — somebody else took index [top]
    — and the caller should either retry or move to another victim. *)

val steal_opt : 'a t -> 'a option
(** [steal] retried until it returns [Empty] or [Stolen]. *)

val size : 'a t -> int
(** Racy snapshot of the number of elements; exact when quiescent. *)

val is_empty : 'a t -> bool
(** [size t = 0] (same racy caveat). *)
