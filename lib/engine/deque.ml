(* Chase–Lev work-stealing deque on a growable circular array.

   Invariants:
   - [top <= bottom + 1]; the logical contents are indices
     [top .. bottom - 1].
   - [top] only ever increases (CAS by thieves, or by the owner when
     racing for the last element), so a successful CAS really did
     claim the index read — no ABA.
   - The live array is published via [Atomic.set arr]; a grow copies
     the logical window into a fresh array before publishing, and the
     old array is never mutated afterwards, so a thief holding a stale
     array still reads valid values for any index it can win.
   - Slots are cleared (set to [None]) only by the owner, and only for
     indices the owner has claimed, so a thief that wins the CAS for
     index [t] always finds the value it read beforehand. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  arr : 'a option array Atomic.t;
}

type 'a steal_result = Empty | Retry | Stolen of 'a

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 64) () =
  let cap = pow2 (max 2 capacity) 2 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    arr = Atomic.make (Array.make cap None);
  }

let slot a i = i land (Array.length a - 1)

(* Owner only: double the array, copying the window [t, b). *)
let grow q t b =
  let old = Atomic.get q.arr in
  let a = Array.make (2 * Array.length old) None in
  for i = t to b - 1 do
    a.(slot a i) <- old.(slot old i)
  done;
  Atomic.set q.arr a;
  a

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let a = Atomic.get q.arr in
  let a = if b - t >= Array.length a then grow q t b else a in
  a.(slot a b) <- Some x;
  (* The atomic store publishes the plain slot write to thieves. *)
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  let a = Atomic.get q.arr in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Already empty: restore bottom. *)
    Atomic.set q.bottom t;
    None
  end
  else if b > t then begin
    (* More than one element: the owner takes the bottom uncontended. *)
    let x = a.(slot a b) in
    a.(slot a b) <- None;
    x
  end
  else begin
    (* Exactly one element: race thieves for it via CAS on top. *)
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    if won then begin
      let x = a.(slot a b) in
      a.(slot a b) <- None;
      x
    end
    else None
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Empty
  else begin
    (* Read the array and candidate value before claiming the index;
       a successful CAS proves nobody else took index [t], and the
       publication order (slot write before the bottom store we just
       observed) makes the read value the real element. *)
    let a = Atomic.get q.arr in
    let x = a.(slot a t) in
    if Atomic.compare_and_set q.top t (t + 1) then
      match x with
      | Some v -> Stolen v
      | None -> assert false (* see invariants above *)
    else Retry
  end

let rec steal_opt q =
  match steal q with
  | Empty -> None
  | Stolen v -> Some v
  | Retry -> steal_opt q

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
let is_empty q = size q = 0
