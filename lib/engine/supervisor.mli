(** Fault-tolerant campaign supervision over {!Pool}.

    {!Pool.map} deterministically re-raises the first task failure —
    correct for the bit-identical experiment tables, fatal for a 10k
    trial campaign where one bad task should cost one result, not the
    run.  The supervisor settles {e every} task into a typed
    [('b, task_error) result]:

    - {b Retry}: a raising task is re-executed up to [retries] more
      times.  Tasks are pure functions of their input, so a retried
      task that succeeds returns a value bit-identical to a run that
      never faulted — retries are invisible in campaign output and
      visible in the {!summary}.
    - {b Watchdog}: each attempt gets a fresh {!Fuel.t}; a task that
      burns past the budget is cut off with {!Fuel_exhausted} (no
      retry — a deterministic runaway would only spin again).
    - {b Duplicate rejection}: task keys are tracked per fan-out call;
      a key submitted twice runs once, and every later occurrence
      settles as {!Duplicate_submission} — the guard a checkpoint
      resume path relies on.
    - {b Degradation}: if the worker domains cannot be spawned, the
      supervisor runs every task sequentially in the calling domain and
      flags [degraded] in the summary with a warning — never an abort.

    The supervisor also proves its own teeth: {!fault} injects each
    failure mode (task raises once/always, task hangs past the fuel
    budget, duplicate submission, torn checkpoint write) so tests can
    demonstrate that no fault is silently absorbed. *)

module Fuel : sig
  exception Out_of_fuel of { budget : int }

  type t

  val make : int option -> t
  (** [make (Some budget)] — a gauge that raises {!Out_of_fuel} once
      more than [budget] units burn; [make None] only counts. *)

  val burn : ?amount:int -> t -> unit
  val used : t -> int
end

type task_error =
  | Task_raised of { key : int; attempts : int; message : string }
      (** the task raised on every one of [attempts] executions *)
  | Fuel_exhausted of { key : int; budget : int }
      (** the watchdog cut off a runaway task *)
  | Duplicate_submission of { key : int }
      (** this key already ran in this fan-out call *)

val task_error_to_string : task_error -> string

type fault =
  | No_fault
  | Raise_once of { key : int }
      (** task [key] raises on its first execution only: a retry
          recovers it *)
  | Raise_always of { key : int }
      (** task [key] raises on every attempt: retries exhaust *)
  | Hang of { key : int }
      (** task [key] burns fuel forever: the watchdog must trip *)
  | Duplicate of { key : int }
      (** task [key] is enqueued twice, as a buggy resume would *)
  | Torn_checkpoint
      (** {!checkpoint_save} writes a file whose payload is cut
          mid-stream *)
  | Spawn_failure  (** worker-domain creation fails: must degrade *)

exception Injected of int
(** What the raise faults throw (carries the task key). *)

type summary = {
  total : int;  (** tasks settled, including rejected duplicates *)
  ok : int;
  retried : int;  (** subset of [ok] that needed more than one attempt *)
  failed : int;
  duplicates : int;
  degraded : bool;
  warnings : string list;  (** one line per absorbed fault, in order *)
}

type t

val create :
  ?domains:int ->
  ?retries:int ->
  ?backoff:float * float ->
  ?fuel:int ->
  ?fault:fault ->
  unit ->
  t
(** [create ~domains ~retries ~fuel ()] — [domains] defaults to the
    calibrated {!Pool.recommended} (values [<= 1] mean sequential; a
    calibrated-sequential host is recorded as a warning in the
    summary); [retries] (default 1) is the number of {e additional}
    attempts after a raise; [backoff] is an optional
    [(base_seconds, cap_seconds)] pair — before retry [n] the worker
    sleeps {!backoff_delay}[ ~base ~cap n], a deterministic capped
    exponential, so a flapping dependency is not hammered and retried
    results stay bit-identical to an unbacked-off run (tasks are pure;
    the delay only spaces attempts out); [fuel] (default unlimited) is
    the per-attempt watchdog budget.  Worker-spawn failure degrades to
    sequential execution instead of raising. *)

val backoff_delay : base:float -> cap:float -> int -> float
(** [backoff_delay ~base ~cap attempt] = [min cap (base * 2^(attempt-1))]
    seconds — the pure schedule behind [?backoff], exposed so tests
    can pin it. *)

val with_supervisor :
  ?domains:int ->
  ?retries:int ->
  ?backoff:float * float ->
  ?fuel:int ->
  ?fault:fault ->
  (t -> 'a) ->
  'a
(** Run [f] over a fresh supervisor and shut it down afterwards. *)

val run :
  t ->
  ?chunk:int ->
  ?label:string ->
  key:('a -> int) ->
  (fuel:Fuel.t -> 'a -> 'b) ->
  'a list ->
  ('b, task_error) result list
(** [run t ~key f xs] fans [xs] out over the supervised pool (or runs
    sequentially when degraded / sequential), returning one settled
    result per input element, in input order.  [key] must be injective
    over the call's genuinely distinct tasks — equal keys are treated
    as accidental resubmission and every occurrence after the first is
    rejected.  An explicit [chunk] batches tasks as in
    {!Pool.map_chunks}; when omitted, the chunk size is chosen
    adaptively by the pool's cost model under [label] (see
    {!Pool.map_auto}).  Chunking never affects results.  Never raises
    on task failure. *)

val summary : t -> summary
(** Cumulative over every {!run} call on this supervisor. *)

val pp_summary : Format.formatter -> summary -> unit

val pool : t -> Pool.t option
(** The underlying pool — [None] when sequential or degraded.  Nested
    fan-out (a supervised task that itself maps over the pool) reuses
    this. *)

val degraded : t -> bool
val fault : t -> fault
val shutdown : t -> unit

val checkpoint_save : t -> path:string -> string -> unit
(** {!Checkpoint.save} routed through the supervisor so
    {!Torn_checkpoint} can corrupt it on demand. *)
