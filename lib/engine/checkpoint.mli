(** Crash-safe campaign checkpoints: versioned, CRC-checked snapshots.

    Long campaigns (10k-trial fuzz runs, full experiment sweeps)
    periodically persist their progress through this module so a killed
    process resumes from the last completed chunk instead of starting
    over.  The write protocol is the classic crash-safe sequence: write
    a sibling [.tmp.<pid>] file (the pid suffix keeps two concurrent
    savers from tearing each other's tmp), [fsync] it, atomically
    rename it over the destination, then [fsync] the containing
    directory so the rename itself is durable across power loss.  A
    reader therefore sees either the previous snapshot or the new one,
    never a torn mixture.

    The on-disk format is one {!Frame} (the framing layer was factored
    out of this module and is byte-identical to the historical
    checkpoint format), deliberately inspectable text:
    {v
    tpro-checkpoint 1
    crc <decimal CRC-32 of the payload>
    len <payload length in bytes>
    <payload>
    v}

    Loads validate magic, version, length and CRC and return a typed
    {!error} on any mismatch — a resuming campaign treats every such
    error as "no usable checkpoint" and restarts cleanly from scratch
    rather than silently resuming wrong state. *)

val version : int
(** Current format version; {!load} rejects files written by any
    other. *)

type error =
  | Io of string  (** the file cannot be read at all *)
  | Bad_magic  (** not a checkpoint file, or an unparseable header *)
  | Bad_version of int  (** a checkpoint from another format version *)
  | Truncated of { expected : int; got : int }
      (** the payload is shorter (or longer) than the header promises *)
  | Bad_crc of { expected : int32; got : int32 }
      (** right length, corrupted bytes *)

val error_to_string : error -> string

val save : ?fault:[ `Torn ] -> path:string -> string -> unit
(** [save ~path payload] writes the checkpoint crash-safely
    (tmp + fsync + rename + directory fsync).  [~fault:`Torn] simulates
    storage that
    acknowledged a write it never completed: the renamed file carries
    only half the payload, which a subsequent {!load} must reject with
    {!Truncated} or {!Bad_crc} — the engine-level fault matrix uses
    this to prove resume never trusts a damaged snapshot. *)

val load : path:string -> (string, error) result
(** Read and validate a checkpoint, returning its payload. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string, exposed for tests. *)

val escape : string -> string
(** Escape backslash, newline and tab so an arbitrary string fits on
    one payload line. *)

val unescape : string -> string option
(** Inverse of {!escape}; [None] on a malformed escape sequence. *)

val fsync_dir : string -> unit
(** Fsync a directory so a rename or append inside it survives power
    loss; errors are ignored (some filesystems refuse directory
    fsync — durability degrades, correctness does not).  Shared with
    the serve daemon's journal. *)
