type entry = { mutable est_ns : float; mutable samples : int }

type t = {
  target_ns : float;
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
}

let create ?(target_ns = 1_000_000.) () =
  { target_ns; lock = Mutex.create (); tbl = Hashtbl.create 16 }

(* Keep most of the history but adapt within a few observations: the
   first campaigns after a label appears are the ones a bad static
   chunk would hurt. *)
let decay = 0.7

let observe t ~label ~items ~seconds =
  if items > 0 && seconds >= 0. then begin
    let per = seconds *. 1e9 /. float_of_int items in
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.tbl label with
    | Some e ->
      e.est_ns <- (decay *. e.est_ns) +. ((1. -. decay) *. per);
      e.samples <- e.samples + 1
    | None -> Hashtbl.add t.tbl label { est_ns = per; samples = 1 });
    Mutex.unlock t.lock
  end

let estimate_ns t ~label =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl label with
    | Some e -> Some e.est_ns
    | None -> None
  in
  Mutex.unlock t.lock;
  r

let chunk t ~label ~items ~workers =
  if items <= 1 then 1
  else begin
    let workers = max 1 workers in
    (* At least two chunks per worker, so late-started workers still
       find something to steal. *)
    let max_chunk = max 1 (items / (2 * workers)) in
    match estimate_ns t ~label with
    | None -> min max_chunk 8
    | Some ns ->
      let ideal =
        int_of_float (Float.round (t.target_ns /. Float.max ns 1.))
      in
      max 1 (min max_chunk ideal)
  end

let snapshot t =
  Mutex.lock t.lock;
  let xs =
    Hashtbl.fold (fun k e acc -> (k, e.est_ns, e.samples) :: acc) t.tbl []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) xs
