(** A fixed-size domain pool for fanning out independent trials.

    The experiment suite is embarrassingly parallel: every (secret, seed)
    trial builds its own fresh kernel and shares no mutable state with any
    other trial, and the experiment tables themselves are independent of
    one another.  This pool turns that independence into wall-clock
    speedup on OCaml 5 multicore without any external dependency: a work
    queue guarded by a [Mutex.t]/[Condition.t] pair, drained by
    [domains - 1] worker domains plus the calling domain itself.

    Determinism guarantee: {!map} returns results in input order, and
    because every submitted function is pure (no shared state), the
    result list is bit-identical to [List.map] regardless of the pool
    size or scheduling.  Parallelism never changes reported capacities.

    A pool of size 1 spawns no domains at all and degrades to plain
    in-order [List.map] — the sequential path and the parallel path are
    the same code. *)

type t

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism the
    runtime suggests (1 on a single-core container). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller
    is the remaining one).  [domains] defaults to {!recommended}; values
    [< 1] are clamped to 1. *)

val create_opt : ?domains:int -> unit -> (t, string) result
(** Like {!create}, but a worker-spawn failure (the runtime refusing
    more domains, resource exhaustion) returns [Error message] instead
    of raising, after joining any domains already spawned — nothing
    leaks.  The supervision layer uses this to degrade to sequential
    execution rather than abort a campaign. *)

val size : t -> int
(** Total parallelism of the pool, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], distributing
    the work across the pool, and returns the results in input order.
    The caller participates in draining the queue, so a pool is never
    idle while its owner waits.  If one or more applications raise, the
    exception of the {e lowest-indexed} failing element is re-raised
    after all submitted work has settled — deterministically, matching
    what sequential [List.map] would have raised first. *)

val map_chunks : t -> chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunks pool ~chunk f xs] is [map pool f xs] submitting [chunk]
    consecutive elements per queue job, for workloads where [f] is cheap
    enough that per-job queue traffic would dominate.  Results keep input
    order and the lowest-indexed failure is re-raised, like {!map}. *)

val shutdown : t -> unit
(** Graceful shutdown: signals the workers, lets them drain any jobs
    still queued, and joins them.  Idempotent.  A pool that has been shut
    down remains usable: {!map} simply runs sequentially. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
