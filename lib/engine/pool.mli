(** An adaptive work-stealing domain pool for fanning out independent
    trials.

    The experiment suite is embarrassingly parallel: every (secret, seed)
    trial builds its own fresh kernel and shares no mutable state with any
    other trial, and the experiment tables themselves are independent of
    one another.  This pool turns that independence into wall-clock
    speedup on OCaml 5 multicore without any external dependency.

    Scheduling: each worker domain owns a Chase–Lev {!Deque} it pushes
    and pops locally (LIFO, cache-friendly); idle workers steal the
    oldest task from a random victim (lock-free); submissions from
    domains outside the pool go through a small mutex-guarded injector
    queue.  Workers park on a condition variable through an eventcount
    (epoch counter) protocol, so an idle pool burns no CPU and a
    submission can never be missed.

    Sizing: the default domain count comes from {!Calibrate} — a
    1-core container (or a CPU-quota'd host whose probe shows no real
    concurrency) gets a pool of size 1, which spawns no domains at all
    and degrades to plain in-order [List.map].  Calibrated parallel
    pools also enlarge each worker's minor heap to space out
    stop-the-world minor collections.  An explicit [~domains] is
    always honoured verbatim.

    Determinism guarantee: {!map}, {!map_chunks} and {!map_auto}
    return results in input order — every task writes a dedicated slot
    of a per-call array — and because every submitted function is pure
    (no shared state), the result list is bit-identical to [List.map]
    regardless of pool size, chunking, or steal order.  Parallelism
    never changes reported capacities. *)

type t

val recommended : unit -> int
(** The calibrated domain count for this host
    ({!Calibrate.recommended}): the runtime's suggested parallelism,
    degraded to 1 when a measured probe shows the "cores" do not
    actually run concurrently (1-core container, CPU quota). *)

val create : ?domains:int -> ?minor_heap_words:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller
    is the remaining one).  [domains] defaults to {!recommended}; values
    [< 1] are clamped to 1.  [minor_heap_words] sets each worker
    domain's minor-heap size; it defaults to the {!Calibrate} policy
    when [domains] is defaulted and to "leave it alone" when [domains]
    is explicit. *)

val create_opt : ?domains:int -> ?minor_heap_words:int -> unit -> (t, string) result
(** Like {!create}, but a worker-spawn failure (the runtime refusing
    more domains, resource exhaustion) returns [Error message] instead
    of raising, after joining any domains already spawned — nothing
    leaks.  The supervision layer uses this to degrade to sequential
    execution rather than abort a campaign. *)

val size : t -> int
(** Total parallelism of the pool, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], distributing
    the work across the pool, and returns the results in input order.
    The caller participates in draining the work, so a pool is never
    idle while its owner waits.  If one or more applications raise, the
    exception of the {e lowest-indexed} failing element is re-raised
    after all submitted work has settled — deterministically, matching
    what sequential [List.map] would have raised first. *)

val map_chunks : t -> chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_chunks pool ~chunk f xs] is [map pool f xs] submitting [chunk]
    consecutive elements per task, for workloads where [f] is cheap
    enough that per-task scheduling traffic would dominate.  Results
    keep input order and the lowest-indexed failure is re-raised, like
    {!map}. *)

val map_auto : ?label:string -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_auto ~label pool f xs] is {!map_chunks} with the chunk size
    chosen by the pool's {!Cost_model} from past observations of
    [label] (E7-scale trials get chunk 1; E10-scale rows get hundreds
    per chunk), and the run's timing fed back into the model.
    Chunking affects scheduling only, never results. *)

val shutdown : t -> unit
(** Graceful shutdown: signals the workers, lets them drain any jobs
    still queued, and joins them.  Idempotent.  A pool that has been shut
    down remains usable: {!map} simply runs sequentially. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] over a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

(** {2 Introspection} *)

type stats = {
  pool_size : int;  (** {!size}: workers + the calling domain *)
  spawned_domains : int;  (** worker domains currently running *)
  steals : int;  (** tasks taken from another worker's deque *)
  tasks_executed : int;  (** tasks run by workers or helping callers *)
  tasks_injected : int;  (** tasks submitted from outside the pool *)
  minor_heap_words : int option;
      (** per-worker minor-heap sizing in force, if any *)
}

val stats : t -> stats
(** Scheduling counters since creation.  Counter reads are racy while
    work is in flight; exact when the pool is quiescent. *)

val cost_model : t -> Cost_model.t
(** The pool's chunk-size model ({!map_auto} feeds and consults it). *)
