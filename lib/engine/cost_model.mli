(** Per-label task-cost estimates driving adaptive chunk sizes.

    The experiment tables span ~6 orders of magnitude per item (an E7
    trial costs ~0.75 s, an E10 row ~1 µs), so no static chunk size
    works for both: chunks sized for E10 starve the pool on E7, and
    chunks sized for E7 drown E10 in per-task overhead.  Each fan-out
    call labels its workload; the model keeps an exponentially
    weighted moving average of nanoseconds per item under that label
    and sizes chunks so each task costs about [target_ns] while still
    leaving at least two chunks per worker to steal.

    Chunking affects scheduling only — results are reassembled in
    input order regardless, so estimates may be arbitrarily wrong
    without affecting outputs. *)

type t

val create : ?target_ns:float -> unit -> t
(** [target_ns] is the intended duration of one chunk (default 1 ms). *)

val observe : t -> label:string -> items:int -> seconds:float -> unit
(** Record that [items] items under [label] took [seconds] of
    (estimated CPU) time.  Thread-safe. *)

val estimate_ns : t -> label:string -> float option
(** Current ns/item estimate for [label], if any observation exists. *)

val chunk : t -> label:string -> items:int -> workers:int -> int
(** Chunk size for a fan-out of [items] items over [workers] workers:
    [clamp (target_ns / estimate) 1 (max 1 (items / (2 * workers)))].
    Unlabelled (never-observed) workloads get a small default batch so
    the first run is neither starved nor swamped. *)

val snapshot : t -> (string * float * int) list
(** [(label, ns_per_item, samples)] for every observed label, sorted
    by label — for bench attribution. *)
