(** Length-framed, CRC-32-checked message framing.

    One frame is an inspectable text header followed by an arbitrary
    binary payload:

    {v
    <magic> <version>
    crc <decimal CRC-32 of the payload>
    len <payload length in bytes>
    <payload>
    v}

    The format began life as {!Checkpoint}'s on-disk header and is now
    shared by every layer that needs torn-write/torn-read detection: the
    checkpoint files themselves ([magic = "tpro-checkpoint"]), the serve
    daemon's job journal, and the client/server wire protocol, which
    streams concatenated frames over a Unix-domain socket and feeds them
    through a {!Decoder}.  Checkpoint files written through this module
    are byte-identical to the pre-extraction format (asserted by a
    golden fixture test). *)

type error =
  | Bad_magic  (** wrong magic, or an unparseable header *)
  | Bad_version of int  (** a frame from another format version *)
  | Truncated of { expected : int; got : int }
      (** the payload is shorter (or longer) than the header promises *)
  | Bad_crc of { expected : int32; got : int32 }
      (** right length, corrupted bytes *)
  | Oversized of { limit : int; got : int }
      (** the header promises a payload larger than the decoder's
          limit — a flooded or garbage stream, rejected before
          buffering it *)

val error_to_string : error -> string

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string. *)

val escape : string -> string
(** Escape backslash, newline and tab so an arbitrary string fits on
    one payload line. *)

val unescape : string -> string option
(** Inverse of {!escape}; [None] on a malformed escape sequence. *)

val header : magic:string -> version:int -> string -> string
(** The three header lines for a payload (magic/version, crc, len). *)

val encode : magic:string -> version:int -> string -> string
(** [header ^ payload]: one complete frame. *)

val encode_torn : magic:string -> version:int -> string -> string
(** Fault injection: a frame whose header promises the full payload but
    carries only the first half — storage (or a peer) acknowledging a
    write it never completed.  Decoders must reject it with
    {!Truncated} or {!Bad_crc}. *)

val decode : magic:string -> version:int -> string -> (string, error) result
(** Decode a string holding exactly one frame.  Trailing bytes beyond
    the promised length are an error ({!Truncated}), matching
    {!Checkpoint}'s historical whole-file semantics. *)

val decode_prefix :
  magic:string ->
  version:int ->
  pos:int ->
  string ->
  [ `Frame of string * int  (** payload, position after the frame *)
  | `Incomplete  (** a valid prefix; more bytes may complete it *)
  | `Error of error ]
(** Decode one frame starting at [pos] in a buffer that may hold many
    concatenated frames (a journal file, a socket stream).  Unlike
    {!decode}, trailing bytes are expected — the frame ends exactly
    where its header says. *)

(** Incremental decoding of a byte stream into frames, for socket
    readers: feed whatever [read] returned, pop complete frames.
    Errors are sticky — a corrupt stream yields the same error on
    every subsequent {!Decoder.pop}, and the connection should be
    dropped. *)
module Decoder : sig
  type t

  val create : ?max_payload:int -> magic:string -> version:int -> unit -> t
  (** [max_payload] (default 64 MiB) bounds what a single header may
      promise; larger frames fail with {!Oversized}. *)

  val feed : t -> string -> unit

  val pop : t -> (string option, error) result
  (** [Ok (Some payload)]: one complete frame consumed.  [Ok None]:
      nothing complete yet.  [Error _]: the stream is corrupt (torn
      frame, bad CRC, garbage). *)

  val pending : t -> bool
  (** Bytes are buffered but do not yet form a complete frame — after
      EOF this means the peer died mid-frame. *)
end
