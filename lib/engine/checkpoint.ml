(* Crash-safe campaign checkpoints.

   A checkpoint is one {!Frame}: a versioned header carrying a CRC-32
   and the exact byte length of the payload, then the payload itself.
   Writes go to a sibling tmp file (suffixed with the writer's pid so
   two concurrent savers never tear each other's tmp) which is fsynced
   and then atomically renamed over the destination; the containing
   directory is fsynced afterwards so the rename itself survives power
   loss.  A crash at any point leaves either the previous checkpoint or
   the new one — never a torn file — unless the storage itself lies,
   which is exactly what the [`Torn] fault injection simulates and what
   the CRC/length checks on load are there to catch. *)

let magic = "tpro-checkpoint"
let version = 1

type error =
  | Io of string
  | Bad_magic
  | Bad_version of int
  | Truncated of { expected : int; got : int }
  | Bad_crc of { expected : int32; got : int32 }

let error_to_string = function
  | Io m -> "io error: " ^ m
  | Bad_magic -> "not a checkpoint file (bad magic)"
  | Bad_version v ->
    Printf.sprintf "stale checkpoint version %d (expected %d)" v version
  | Truncated { expected; got } ->
    Printf.sprintf "truncated payload: expected %d bytes, found %d" expected
      got
  | Bad_crc { expected; got } ->
    Printf.sprintf "payload CRC mismatch: header says %08lx, payload is %08lx"
      expected got

let crc32 = Frame.crc32
let escape = Frame.escape
let unescape = Frame.unescape

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let save ?fault ~path payload =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      (* [`Torn] models a crash window the rename cannot protect against
         (storage acknowledging a write it never completed): the payload
         is cut mid-stream but the header promises the full length. *)
      output_string oc
        (match fault with
        | Some `Torn -> Frame.encode_torn ~magic ~version payload
        | None -> Frame.encode ~magic ~version payload);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Io e)
  | contents -> (
    match Frame.decode ~magic ~version contents with
    | Ok payload -> Ok payload
    | Error (Frame.Bad_magic | Frame.Oversized _) -> Error Bad_magic
    | Error (Frame.Bad_version v) -> Error (Bad_version v)
    | Error (Frame.Truncated { expected; got }) ->
      Error (Truncated { expected; got })
    | Error (Frame.Bad_crc { expected; got }) ->
      Error (Bad_crc { expected; got }))
