(* Crash-safe campaign checkpoints.

   A checkpoint is a small text file: a versioned header carrying a
   CRC-32 and the exact byte length of the payload, then the payload
   itself.  Writes go to a sibling [.tmp] file which is fsynced and then
   atomically renamed over the destination, so a crash at any point
   leaves either the previous checkpoint or the new one — never a torn
   file — unless the storage itself lies, which is exactly what the
   [`Torn] fault injection simulates and what the CRC/length checks on
   load are there to catch. *)

let magic = "tpro-checkpoint"
let version = 1

type error =
  | Io of string
  | Bad_magic
  | Bad_version of int
  | Truncated of { expected : int; got : int }
  | Bad_crc of { expected : int32; got : int32 }

let error_to_string = function
  | Io m -> "io error: " ^ m
  | Bad_magic -> "not a checkpoint file (bad magic)"
  | Bad_version v ->
    Printf.sprintf "stale checkpoint version %d (expected %d)" v version
  | Truncated { expected; got } ->
    Printf.sprintf "truncated payload: expected %d bytes, found %d" expected
      got
  | Bad_crc { expected; got } ->
    Printf.sprintf "payload CRC mismatch: header says %08lx, payload is %08lx"
      expected got

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                    *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !c (Int32.of_int (Char.code ch)))
             0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Line escaping, for embedding multi-line strings as one payload line  *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] <> '\\' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 1 >= n then None
    else begin
      (match s.[i + 1] with
      | '\\' -> Buffer.add_char buf '\\'
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | _ -> ());
      if s.[i + 1] = '\\' || s.[i + 1] = 'n' || s.[i + 1] = 't' then
        go (i + 2)
      else None
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Save / load                                                          *)

let header payload =
  Printf.sprintf "%s %d\ncrc %lu\nlen %d\n" magic version (crc32 payload)
    (String.length payload)

let save ?fault ~path payload =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (header payload);
      (* [`Torn] models a crash window the rename cannot protect against
         (storage acknowledging a write it never completed): the payload
         is cut mid-stream but the header promises the full length. *)
      (match fault with
      | Some `Torn ->
        output_string oc
          (String.sub payload 0 (String.length payload / 2))
      | None -> output_string oc payload);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

exception Reject of error

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Io e)
  | contents -> (
    let line_end from =
      match String.index_from_opt contents from '\n' with
      | Some i -> (String.sub contents from (i - from), i + 1)
      | None -> raise (Reject (Truncated { expected = 0; got = 0 }))
    in
    let field prefix l =
      match String.split_on_char ' ' l with
      | [ k; v ] when k = prefix -> (
        match Int64.of_string_opt v with
        | Some n -> n
        | None -> raise (Reject Bad_magic))
      | _ -> raise (Reject Bad_magic)
    in
    try
      let l1, p1 = line_end 0 in
      (match String.split_on_char ' ' l1 with
      | [ m; v ] when m = magic -> (
        match int_of_string_opt v with
        | None -> raise (Reject Bad_magic)
        | Some v when v <> version -> raise (Reject (Bad_version v))
        | Some _ -> ())
      | _ -> raise (Reject Bad_magic));
      let l2, p2 = line_end p1 in
      let l3, p3 = line_end p2 in
      let expected_crc = Int64.to_int32 (field "crc" l2) in
      let expected_len = Int64.to_int (field "len" l3) in
      let payload = String.sub contents p3 (String.length contents - p3) in
      if String.length payload <> expected_len then
        Error
          (Truncated { expected = expected_len; got = String.length payload })
      else
        let got = crc32 payload in
        if got <> expected_crc then
          Error (Bad_crc { expected = expected_crc; got })
        else Ok payload
    with Reject e -> Error e)
