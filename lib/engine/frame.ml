(* Shared length-framed CRC-32 message framing.

   Factored out of [Checkpoint] so the serve daemon's journal and wire
   protocol reuse the exact header format (and fault-injection
   behaviour) the checkpoint files already proved out.  The byte format
   is unchanged: checkpoint files written through [encode] are
   byte-identical to the pre-extraction ones. *)

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated of { expected : int; got : int }
  | Bad_crc of { expected : int32; got : int32 }
  | Oversized of { limit : int; got : int }

let error_to_string = function
  | Bad_magic -> "not a frame (bad magic)"
  | Bad_version v -> Printf.sprintf "stale frame version %d" v
  | Truncated { expected; got } ->
    Printf.sprintf "truncated payload: expected %d bytes, found %d" expected
      got
  | Bad_crc { expected; got } ->
    Printf.sprintf "payload CRC mismatch: header says %08lx, payload is %08lx"
      expected got
  | Oversized { limit; got } ->
    Printf.sprintf "frame payload of %d bytes exceeds the %d-byte limit" got
      limit

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                    *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !c (Int32.of_int (Char.code ch)))
             0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Line escaping, for embedding multi-line strings as one payload line  *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] <> '\\' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 1 >= n then None
    else begin
      (match s.[i + 1] with
      | '\\' -> Buffer.add_char buf '\\'
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | _ -> ());
      if s.[i + 1] = '\\' || s.[i + 1] = 'n' || s.[i + 1] = 't' then
        go (i + 2)
      else None
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)

let header ~magic ~version payload =
  Printf.sprintf "%s %d\ncrc %lu\nlen %d\n" magic version (crc32 payload)
    (String.length payload)

let encode ~magic ~version payload = header ~magic ~version payload ^ payload

let encode_torn ~magic ~version payload =
  header ~magic ~version payload
  ^ String.sub payload 0 (String.length payload / 2)

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)

exception Reject of error

(* Parse the three header lines starting at [pos]; returns
   [`Header (crc, len, payload_start)], [`Incomplete] when the buffer
   ends before the third newline, or raises [Reject].  A header is at
   most a few dozen bytes, so a long newline-free prefix is garbage,
   not an incomplete header. *)
let max_header_len = 256

let parse_header ~magic ~version ~pos s =
  let n = String.length s in
  let line_end from =
    match String.index_from_opt s from '\n' with
    | Some i when i - pos <= max_header_len ->
      Some (String.sub s from (i - from), i + 1)
    | Some _ -> raise (Reject Bad_magic)
    | None ->
      if n - pos > max_header_len then raise (Reject Bad_magic) else None
  in
  match line_end pos with
  | None -> `Incomplete
  | Some (l1, p1) -> (
    (match String.split_on_char ' ' l1 with
    | [ m; v ] when m = magic -> (
      match int_of_string_opt v with
      | None -> raise (Reject Bad_magic)
      | Some v when v <> version -> raise (Reject (Bad_version v))
      | Some _ -> ())
    | _ -> raise (Reject Bad_magic));
    let field prefix l =
      match String.split_on_char ' ' l with
      | [ k; v ] when k = prefix -> (
        match Int64.of_string_opt v with
        | Some n -> n
        | None -> raise (Reject Bad_magic))
      | _ -> raise (Reject Bad_magic)
    in
    match line_end p1 with
    | None -> `Incomplete
    | Some (l2, p2) -> (
      match line_end p2 with
      | None -> `Incomplete
      | Some (l3, p3) ->
        let crc = Int64.to_int32 (field "crc" l2) in
        let len = Int64.to_int (field "len" l3) in
        if len < 0 then raise (Reject Bad_magic);
        `Header (crc, len, p3)))

let check_payload ~expected_crc payload =
  let got = crc32 payload in
  if got <> expected_crc then raise (Reject (Bad_crc { expected = expected_crc; got }))

let decode ~magic ~version s =
  try
    match parse_header ~magic ~version ~pos:0 s with
    | `Incomplete -> Error (Truncated { expected = 0; got = 0 })
    | `Header (expected_crc, expected_len, p) ->
      let payload = String.sub s p (String.length s - p) in
      if String.length payload <> expected_len then
        Error
          (Truncated { expected = expected_len; got = String.length payload })
      else begin
        check_payload ~expected_crc payload;
        Ok payload
      end
  with Reject e -> Error e

let decode_prefix ~magic ~version ~pos s =
  try
    match parse_header ~magic ~version ~pos s with
    | `Incomplete -> `Incomplete
    | `Header (expected_crc, expected_len, p) ->
      if String.length s - p < expected_len then `Incomplete
      else begin
        let payload = String.sub s p expected_len in
        check_payload ~expected_crc payload;
        `Frame (payload, p + expected_len)
      end
  with Reject e -> `Error e

(* ------------------------------------------------------------------ *)
(* Incremental stream decoder                                           *)

module Decoder = struct
  type t = {
    magic : string;
    version : int;
    max_payload : int;
    mutable buf : string;  (* unconsumed suffix of the stream *)
    mutable start : int;  (* parse position within [buf] *)
    mutable err : error option;  (* sticky *)
  }

  let create ?(max_payload = 64 * 1024 * 1024) ~magic ~version () =
    { magic; version; max_payload; buf = ""; start = 0; err = None }

  let compact t =
    if t.start > 0 then begin
      t.buf <- String.sub t.buf t.start (String.length t.buf - t.start);
      t.start <- 0
    end

  let feed t s =
    if t.err = None && String.length s > 0 then begin
      compact t;
      t.buf <- (if t.buf = "" then s else t.buf ^ s)
    end

  let pop t =
    match t.err with
    | Some e -> Error e
    | None -> (
      match
        parse_header ~magic:t.magic ~version:t.version ~pos:t.start t.buf
      with
      | exception Reject e ->
        t.err <- Some e;
        Error e
      | `Incomplete -> Ok None
      | `Header (_, len, _) when len > t.max_payload ->
        let e = Oversized { limit = t.max_payload; got = len } in
        t.err <- Some e;
        Error e
      | `Header _ -> (
        match
          decode_prefix ~magic:t.magic ~version:t.version ~pos:t.start t.buf
        with
        | `Incomplete -> Ok None
        | `Error e ->
          t.err <- Some e;
          Error e
        | `Frame (payload, next) ->
          t.start <- next;
          if t.start > 65536 then compact t;
          Ok (Some payload)))

  let pending t = t.err = None && String.length t.buf - t.start > 0
end
