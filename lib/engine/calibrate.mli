(** Host calibration: decide how many domains a pool should use.

    [Domain.recommended_domain_count] alone is not enough — a 1-core
    container (or a cgroup CPU quota that the runtime cannot see)
    turns domain fan-out into pure overhead: the committed PR 1 bench
    measured parallel 6× {e slower} than sequential on such a host.
    [probe] combines the runtime's count with a short measured
    parallel-speedup probe and degrades to a single domain whenever
    extra domains do not actually run concurrently. *)

type host = {
  cores_detected : int;
      (** [Domain.recommended_domain_count] at probe time. *)
  recommended : int;
      (** Domain count a default pool should use ([>= 1]).  [1] means
          "run sequentially; spawn no worker domains". *)
  minor_heap_words : int;
      (** Per-domain minor-heap size (words) worker domains should
          adopt when running in parallel. *)
  parallel_efficiency : float;
      (** Measured 2-domain speedup over sequential for the probe
          kernel ([1.0] when no probe ran, e.g. on a 1-core host). *)
  probe_note : string;  (** Human-readable summary of the decision. *)
}

val default_minor_heap_words : int
(** The runtime default (what sequential runs keep). *)

val parallel_minor_heap_words : int
(** Enlarged per-domain minor heap used for parallel pools, to space
    out stop-the-world minor collections. *)

val probe : ?force_cores:int -> unit -> host
(** Measure the host and pick a domain count.  On a 1-core host (or
    [~force_cores:1]) no measurement runs: the answer is immediately
    sequential.  On a multicore host a ~10 ms two-domain spin kernel
    is timed against its sequential twin; if the measured speedup is
    below the concurrency threshold (the domains are time-slicing,
    not running in parallel — typical of CPU quotas) the host is
    treated as 1-core.  [force_cores] substitutes the detected core
    count (for tests) and skips the measurement. *)

val host : unit -> host
(** Cached [probe ()] (first call probes; later calls are free),
    unless overridden with [set_override]/[with_override]. *)

val recommended : unit -> int
(** [(host ()).recommended]. *)

val set_override : host option -> unit
(** Test hook: force the result of [host]/[recommended]. *)

val with_override : host -> (unit -> 'a) -> 'a
(** Run a thunk with [host ()] forced to the given value, restoring
    the previous override afterwards (even on exceptions). *)

val apply_minor_heap : int -> unit
(** [apply_minor_heap words] resizes the calling domain's minor heap
    if it differs from [words]; failures are ignored (sizing is a
    performance policy, never a correctness requirement). *)

val pp_host : Format.formatter -> host -> unit
