type host = {
  cores_detected : int;
  recommended : int;
  minor_heap_words : int;
  parallel_efficiency : float;
  probe_note : string;
}

let default_minor_heap_words = 262_144
let parallel_minor_heap_words = 1_048_576

(* Below this measured 2-domain speedup the "cores" are time-slicing
   one another (CPU quota, busy host): parallelism is a net loss, so
   degrade to sequential.  A genuinely idle 2-core host measures close
   to 2.0 on the spin kernel. *)
let concurrency_threshold = 1.2

(* A busy-loop kernel that the compiler cannot elide and that does not
   allocate, so the probe measures CPU concurrency rather than
   GC behaviour. *)
let spin iters =
  let acc = ref 0 in
  for i = 1 to iters do
    acc := (!acc * 31) + i
  done;
  Sys.opaque_identity !acc

let time f =
  let t0 = Unix.gettimeofday () in
  let _ = f () in
  Unix.gettimeofday () -. t0

(* Size the kernel to a few milliseconds so the probe is fast but well
   above scheduler noise. *)
let probe_iters = 4_000_000

let measure_efficiency () =
  (* Warm up, then take the best of a few attempts for each side —
     min-of-k is robust against one-off scheduler preemptions. *)
  let _ = spin probe_iters in
  let best f =
    let b = ref infinity in
    for _ = 1 to 3 do
      let d = time f in
      if d < !b then b := d
    done;
    !b
  in
  let seq = best (fun () -> spin (2 * probe_iters)) in
  let par =
    best (fun () ->
        let d = Domain.spawn (fun () -> spin probe_iters) in
        let _ = spin probe_iters in
        Domain.join d)
  in
  if par <= 0. then 1.0 else seq /. par

let probe ?force_cores () =
  let cores, forced =
    match force_cores with
    | Some c -> (max 1 c, true)
    | None -> (Domain.recommended_domain_count (), false)
  in
  if cores <= 1 then
    {
      cores_detected = cores;
      recommended = 1;
      minor_heap_words = default_minor_heap_words;
      parallel_efficiency = 1.0;
      probe_note =
        "1 core detected; running sequentially (no worker domains)";
    }
  else if forced then
    {
      cores_detected = cores;
      recommended = cores;
      minor_heap_words = parallel_minor_heap_words;
      parallel_efficiency = 1.0;
      probe_note = Printf.sprintf "forced %d cores (probe skipped)" cores;
    }
  else
    let eff = measure_efficiency () in
    if eff < concurrency_threshold then
      {
        cores_detected = cores;
        recommended = 1;
        minor_heap_words = default_minor_heap_words;
        parallel_efficiency = eff;
        probe_note =
          Printf.sprintf
            "%d cores reported but 2-domain probe speedup %.2f < %.2f \
             (CPU quota?); running sequentially"
            cores eff concurrency_threshold;
      }
    else
      {
        cores_detected = cores;
        recommended = cores;
        minor_heap_words = parallel_minor_heap_words;
        parallel_efficiency = eff;
        probe_note =
          Printf.sprintf "%d cores, 2-domain probe speedup %.2f" cores eff;
      }

(* The cache and the override share one mutex so tests that flip the
   override from the main domain race neither the probe nor each
   other. *)
let lock = Mutex.create ()
let cached : host option ref = ref None
let override : host option ref = ref None

let host () =
  Mutex.lock lock;
  let o = !override in
  Mutex.unlock lock;
  match o with
  | Some h -> h
  | None -> (
    Mutex.lock lock;
    let c = !cached in
    Mutex.unlock lock;
    match c with
    | Some h -> h
    | None ->
      let h = probe () in
      Mutex.lock lock;
      let h = match !cached with Some h' -> h' | None -> cached := Some h; h in
      Mutex.unlock lock;
      h)

let recommended () = (host ()).recommended

let set_override h =
  Mutex.lock lock;
  override := h;
  Mutex.unlock lock

let with_override h f =
  Mutex.lock lock;
  let prev = !override in
  override := Some h;
  Mutex.unlock lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock lock;
      override := prev;
      Mutex.unlock lock)
    f

let apply_minor_heap words =
  try
    let g = Gc.get () in
    if g.Gc.minor_heap_size <> words then
      Gc.set { g with Gc.minor_heap_size = words }
  with _ -> ()

let pp_host ppf h =
  Format.fprintf ppf
    "@[<v>cores detected:      %d@,domains recommended: %d@,\
     minor heap (words):  %d@,parallel efficiency: %.2f@,note: %s@]"
    h.cores_detected h.recommended h.minor_heap_words h.parallel_efficiency
    h.probe_note
