(** Generated fuzz scenarios.

    A scenario is a small record of integers and flags, deterministically
    derived from [(seed, idx)] by {!generate}.  Everything the oracles
    execute — machine config, kernel config, Hi/Lo programs, channel
    choice — is rebuilt on demand from those fields.  This makes the
    three operations the harness needs trivial: {e replay} (serialise the
    fields, one [key value] pair per line), {e shrinking} (reduce a field
    and regenerate), and {e mutation testing} (a [mutant] field weakens
    exactly one defence mechanism when the workload is built). *)

open Tpro_hw
open Tpro_kernel
open Tpro_secmodel

type oracle =
  | Nonint
      (** vary only the Hi secret under [full]: Lo's observations, cost
          traces and Lo-visible machine digests must be bit-identical *)
  | Capacity
      (** a catalogued channel must measure 0 bits under [full] and, if
          known-leaky, more than 0 under [none] *)
  | Legacy
      (** registry-fold digests and flush costs must agree with a
          straight-line reimplementation *)

type mutant =
  | No_mutant
  | Skip_flush
      (** the machine silently skips flushing one core-local resource *)
  | Drop_padding  (** the kernel switches without padding *)
  | Miscolour  (** one Hi page is mapped to a Lo-coloured frame *)

type t = {
  seed : int;
  idx : int;
  oracle : oracle;
  mutant : mutant;
  preset : int;  (** index into {!machine_presets} *)
  btb : bool;
  lat_seed : int;  (** selects the unspecified latency function *)
  secret_a : int;
  secret_b : int;
  slice : int;
  pad_extra : int;  (** slack added on top of the WCET-recommended pad *)
  hi_seed : int;
  hi_sweep : int;
  hi_len : int;
  lo_phases : int;
  lo_lines : int;
  channel : int;  (** index into [Catalog.all] (capacity oracle) *)
  cap_seed : int;
  trace_steps : int;  (** legacy-oracle trace length *)
}

val machine_presets : (string * Machine.config) list
(** The six structural machine variants the fuzzer draws from. *)

val preset_name : t -> string
val skip_target : t -> string
(** Resource name the [Skip_flush] mutant silently skips. *)

val machine_config : t -> Machine.config
(** Preset + latency seed + optional BTB + the mutant's machine fault. *)

val kernel_config : t -> Kernel.config
(** [Presets.full], weakened by the mutant where applicable. *)

val hi_buf : int
val lo_buf : int
val hi_pages : int
val max_steps : int

val hi_program : t -> secret:int -> Program.t
(** Hi's secret-dependent workload: interrupt arming at a
    secret-dependent time, a secret-dependent kernel-path choice, a
    secret-scaled page sweep and a random tail derived from
    [hi_seed lxor secret]. *)

val lo_program : t -> Program.t
(** Lo's observer: clock reads, timed probes, traps, branches and filler
    per phase. *)

val miscolour_remap : Kernel.t -> victim:int -> thief:int -> vbase:int -> unit
(** Remap [victim]'s page at [vbase] onto a frame of [thief]'s first
    colour — the allocator bug that page colouring exists to rule out.
    Used as a {!Time_protection.Ni_scenario.spec} tweak by the
    [Miscolour] mutant here and by [Topology]'s pair-targeted variant. *)

val build_ni : t -> secret:int -> Nonint.run
(** Boot a kernel for the scenario (applying the mutant) and spawn the
    Hi/Lo pair — now a two-domain {!Time_protection.Ni_scenario.spec}. *)

val generate : seed:int -> ?mutant:mutant -> int -> t
(** [generate ~seed idx] — deterministic: equal arguments give equal
    scenarios. *)

val size : t -> int
(** Rough scenario weight; shrinking never increases it. *)

val oracle_to_string : oracle -> string
val mutant_to_string : mutant -> string
val mutant_of_string : string -> mutant option

type parse_error = { line : int; reason : string }
(** A malformed replay file: the offending 1-based line (0 when the
    problem is a missing key, a property of the whole file) and why it
    was rejected — missing value, non-integer, unknown key, duplicate
    key, unknown oracle/mutant name. *)

val pp_parse_error : Format.formatter -> parse_error -> unit

type load_error = Io of string | Parse of parse_error
(** Loading separates "the file cannot be read" from "the file does not
    parse" so the CLI can map the latter to its usage-error exit
    code. *)

val load_error_to_string : load_error -> string

val format_version : int
(** Replay-file format version written by {!to_string} (currently 1).
    Files with no [format] line — written before the key existed — are
    read as version 1; a different version is a {!parse_error} naming
    both versions. *)

val to_string : t -> string
val of_string : string -> (t, parse_error) result
(** Replay-file round-trip: [of_string (to_string s) = Ok s].  Never
    raises on malformed input — every defect is a typed
    {!parse_error}. *)

val save : string -> t -> unit
val load : string -> (t, load_error) result

val pp : Format.formatter -> t -> unit
