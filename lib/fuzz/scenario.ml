open Tpro_hw
open Tpro_kernel
open Tpro_channel
module Presets = Time_protection.Presets
module Wcet = Time_protection.Wcet
module Ni_scenario = Time_protection.Ni_scenario

(* Replay-file format version for {!to_string}/{!of_string}.  Version 1
   is the flat two-domain scenario; version 2 is [Topology]'s N-domain
   record.  [of_string] accepts files with no [format] line (pre-1.6
   scenarios) as version 1. *)
let format_version = 1

type oracle = Nonint | Capacity | Legacy

type mutant = No_mutant | Skip_flush | Drop_padding | Miscolour

type t = {
  seed : int;
  idx : int;
  oracle : oracle;
  mutant : mutant;
  preset : int;
  btb : bool;
  lat_seed : int;
  secret_a : int;
  secret_b : int;
  slice : int;
  pad_extra : int;
  hi_seed : int;
  hi_sweep : int;
  hi_len : int;
  lo_phases : int;
  lo_lines : int;
  channel : int;
  cap_seed : int;
  trace_steps : int;
}

(* ------------------------------------------------------------------ *)
(* Machine presets: the same six structural variants the resource-layer
   tests exercise, so the fuzzer quantifies over every config shape.    *)

let with_l2 =
  {
    Machine.default_config with
    Machine.l2_geom = Some (Cache.geometry ~sets:256 ~ways:8 ~line_bits:6 ());
  }

let quad = { Machine.default_config with Machine.n_cores = 4 }
let smt2 = { Machine.default_config with Machine.n_cores = 2; smt = true }

let prand =
  { Machine.default_config with Machine.replacement = Cache.Pseudo_random 7 }

let small_llc =
  {
    Machine.default_config with
    Machine.llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
    n_frames = 512;
  }

let machine_presets =
  [
    ("default", Machine.default_config);
    ("with-l2", with_l2);
    ("quad-core", quad);
    ("smt", smt2);
    ("pseudo-random", prand);
    ("small-llc", small_llc);
  ]

let n_presets = List.length machine_presets

let preset_name s = fst (List.nth machine_presets (s.preset mod n_presets))

(* The skip-flush mutant's victim, drawn from core-0 resources every
   preset has and every oracle workload exercises. *)
let skip_target s =
  List.nth [ "l1d0"; "l1i0"; "branch predictor" ] (s.hi_seed mod 3)

let machine_config s =
  let base = snd (List.nth machine_presets (s.preset mod n_presets)) in
  {
    base with
    Machine.lat = Latency.with_seed base.Machine.lat s.lat_seed;
    btb_entries = (if s.btb then Some 64 else base.Machine.btb_entries);
    fault =
      (match s.mutant with
      | Skip_flush -> Some (Machine.Silent_skip_flush (skip_target s))
      | No_mutant | Drop_padding | Miscolour -> None);
  }

(* The noninterference oracle only makes sense under the configuration
   that claims to enforce it; the mutants weaken exactly one mechanism. *)
let kernel_config s =
  match s.mutant with
  | Drop_padding -> { Presets.full with Kernel.pad_switch = false }
  | No_mutant | Skip_flush | Miscolour -> Presets.full

(* ------------------------------------------------------------------ *)
(* Generated programs.  Everything is derived from the scenario's
   integer fields, so shrinking a field shrinks the program and a saved
   scenario replays bit-identically.                                    *)

let hi_buf = 0x4000_0000
let lo_buf = 0x2000_0000
let hi_pages = 8
let lo_pages = 2
let max_steps = 300_000

let hi_program s ~secret =
  let call =
    if secret land 1 = 0 then Program.Sys_null else Program.Sys_info
  in
  let pages = 1 + ((s.hi_sweep + secret) mod hi_pages) in
  let sweep =
    Array.concat
      (List.init pages (fun p ->
           Array.init 8 (fun l ->
               Program.Load (hi_buf + (p * 4096) + (l * 64)))))
  in
  Program.concat
    [
      [|
        Program.Syscall
          (Program.Sys_arm_irq
             { irq = 1; delay = s.slice + 500 + (secret * 211) });
      |];
      Array.make (1 + (secret mod 3)) (Program.Syscall call);
      sweep;
      Program.random ~syscalls:false
        (Rng.create (s.hi_seed lxor (secret * 0x9E3779B9)))
        ~len:s.hi_len ~data_base:hi_buf ~data_bytes:(hi_pages * 4096);
    ]

let lo_program s =
  let phase i =
    Program.concat
      [
        [| Program.Read_clock |];
        Prime_probe.probe
          ~base:(lo_buf + (i * 256))
          ~lines:s.lo_lines ~line_size:64;
        [| Program.Syscall Program.Sys_null; Program.Read_clock |];
        Array.init 4 (fun b ->
            Program.Branch { tag = b; taken = (b + i) land 1 = 0 });
        Prime_probe.filler ~cycles:s.slice ~chunk:25;
      ]
  in
  Program.concat
    (List.init s.lo_phases phase @ [ [| Program.Read_clock; Program.Halt |] ])

let pad_cycles s mc = Wcet.recommended_pad ~max_compute:64 mc + s.pad_extra

(* Remap [victim]'s first page onto a frame of [thief]'s colour — the
   allocator bug page colouring exists to rule out.  Shared with
   [Topology], whose miscolour mutant plants the same bug between an
   arbitrary domain pair. *)
let miscolour_remap k ~victim ~thief ~vbase =
  let victim = Kernel.domain k victim and thief = Kernel.domain k thief in
  match thief.Domain.colours with
  | lc :: _ -> (
    match
      Frame_alloc.alloc (Kernel.allocator k) ~owner:victim.Domain.did
        ~colours:[ lc ]
    with
    | Some pfn ->
      let vpn = vbase lsr Kernel.page_bits k in
      Domain.unmap_page victim ~vpn;
      Domain.map_page victim ~vpn ~pfn
    | None -> ())
  | [] -> ()

let build_ni s ~secret =
  let mc = machine_config s in
  let pad = pad_cycles s mc in
  let tweak =
    match s.mutant with
    | Miscolour ->
      Some (fun k -> miscolour_remap k ~victim:0 ~thief:1 ~vbase:hi_buf)
    | No_mutant | Skip_flush | Drop_padding -> None
  in
  Ni_scenario.build_spec
    (Ni_scenario.spec ~machine:mc ~cfg:(kernel_config s) ?tweak
       [
         Ni_scenario.domain_spec ~slice:s.slice ~pad_cycles:pad
           ~regions:[ (hi_buf, hi_pages) ]
           ~programs:[ hi_program s ~secret ]
           ~irqs:[ 1 ] ();
         Ni_scenario.domain_spec ~slice:s.slice ~pad_cycles:pad
           ~regions:[ (lo_buf, lo_pages) ]
           ~programs:[ lo_program s ] ~observer:true ();
       ])

(* ------------------------------------------------------------------ *)
(* Deterministic generation                                            *)

let generate ~seed ?(mutant = No_mutant) idx =
  let rng =
    Rng.create (Rng.hash_int (Int64.of_int seed) (Int64.of_int idx))
  in
  let oracle =
    match mutant with
    | No_mutant ->
      (* weighted mix: noninterference trials dominate, the expensive
         end-to-end capacity trials are rationed *)
      let r = Rng.int rng 32 in
      if r < 20 then Nonint else if r < 31 then Legacy else Capacity
    | Skip_flush -> if idx land 1 = 0 then Nonint else Legacy
    | Drop_padding | Miscolour -> Nonint
  in
  let secret_a = Rng.int rng 8 in
  let n_chan = List.length Catalog.all in
  (* bias towards low (cheap) channel indices *)
  let c1 = Rng.int rng n_chan and c2 = Rng.int rng n_chan in
  {
    seed;
    idx;
    oracle;
    mutant;
    preset = Rng.int rng n_presets;
    btb = Rng.bool rng;
    lat_seed = Rng.int rng 1024;
    secret_a;
    secret_b = (secret_a + 1 + Rng.int rng 7) mod 8;
    slice = 3_000 + (500 * Rng.int rng 7);
    pad_extra = 500 * Rng.int rng 3;
    hi_seed = Rng.int rng 1_000_000;
    hi_sweep = 1 + Rng.int rng 4;
    hi_len = 20 + Rng.int rng 61;
    lo_phases = 1 + Rng.int rng 3;
    lo_lines = 4 + Rng.int rng 13;
    channel = min c1 c2;
    cap_seed = Rng.int rng 10;
    trace_steps = 100 + Rng.int rng 401;
  }

(* Rough scenario weight; the shrinker must never increase it. *)
let size s =
  s.hi_len + (s.lo_phases * s.lo_lines) + s.hi_sweep + s.trace_steps
  + (s.slice / 100) + s.pad_extra

(* ------------------------------------------------------------------ *)
(* Replay files: one [key value] pair per line                          *)

let oracle_to_string = function
  | Nonint -> "nonint"
  | Capacity -> "capacity"
  | Legacy -> "legacy"

let oracle_of_string = function
  | "nonint" -> Some Nonint
  | "capacity" -> Some Capacity
  | "legacy" -> Some Legacy
  | _ -> None

let mutant_to_string = function
  | No_mutant -> "none"
  | Skip_flush -> "skip-flush"
  | Drop_padding -> "drop-padding"
  | Miscolour -> "miscolour"

let mutant_of_string = function
  | "none" -> Some No_mutant
  | "skip-flush" -> Some Skip_flush
  | "drop-padding" -> Some Drop_padding
  | "miscolour" -> Some Miscolour
  | _ -> None

let int_fields s =
  [
    ("seed", s.seed);
    ("idx", s.idx);
    ("preset", s.preset);
    ("lat_seed", s.lat_seed);
    ("secret_a", s.secret_a);
    ("secret_b", s.secret_b);
    ("slice", s.slice);
    ("pad_extra", s.pad_extra);
    ("hi_seed", s.hi_seed);
    ("hi_sweep", s.hi_sweep);
    ("hi_len", s.hi_len);
    ("lo_phases", s.lo_phases);
    ("lo_lines", s.lo_lines);
    ("channel", s.channel);
    ("cap_seed", s.cap_seed);
    ("trace_steps", s.trace_steps);
  ]

let to_string s =
  String.concat "\n"
    ([
       "format " ^ string_of_int format_version;
       "oracle " ^ oracle_to_string s.oracle;
       "mutant " ^ mutant_to_string s.mutant;
       "btb " ^ string_of_bool s.btb;
     ]
    @ List.map (fun (k, v) -> k ^ " " ^ string_of_int v) (int_fields s))
  ^ "\n"

(* Hardened replay-file parser.  Every malformed line is rejected with
   a typed error carrying its 1-based line number: missing value,
   non-integer value, unknown key, duplicate key.  Missing required
   keys are reported at line 0 (they are a property of the whole file).
   A fuzz harness replays untrusted files — its parser must not throw
   [Failure]/[Not_found] at them. *)

type parse_error = { line : int; reason : string }

let pp_parse_error ppf e =
  if e.line = 0 then Format.fprintf ppf "%s" e.reason
  else Format.fprintf ppf "line %d: %s" e.line e.reason

let int_keys =
  [
    "seed"; "idx"; "preset"; "lat_seed"; "secret_a"; "secret_b"; "slice";
    "pad_extra"; "hi_seed"; "hi_sweep"; "hi_len"; "lo_phases"; "lo_lines";
    "channel"; "cap_seed"; "trace_steps";
  ]

let known_keys = [ "format"; "oracle"; "mutant"; "btb" ] @ int_keys

exception Bad of parse_error

let of_string str =
  let tbl = Hashtbl.create 32 in
  match
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let fail reason = raise (Bad { line = lineno; reason }) in
        if String.trim line <> "" then begin
          let key, value =
            match String.index_opt line ' ' with
            | None ->
              raise
                (Bad
                   {
                     line = lineno;
                     reason =
                       Printf.sprintf "missing value (expected `key value`, \
                                       got %S)" line;
                   })
            | Some i ->
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          in
          if not (List.mem key known_keys) then
            fail (Printf.sprintf "unknown key `%s`" key);
          if Hashtbl.mem tbl key then
            fail (Printf.sprintf "duplicate key `%s`" key);
          if String.trim value = "" then
            fail (Printf.sprintf "missing value for key `%s`" key);
          (match key with
          | "format" -> (
            (* forward compatibility: name the version we cannot read *)
            match int_of_string_opt value with
            | Some v when v = format_version -> ()
            | Some v ->
              fail
                (Printf.sprintf
                   "unsupported replay format %d (this build reads format %d)"
                   v format_version)
            | None ->
              fail (Printf.sprintf "key `format` wants an integer, got %S" value)
            )
          | "oracle" ->
            if oracle_of_string value = None then
              fail (Printf.sprintf "unknown oracle %S" value)
          | "mutant" ->
            if mutant_of_string value = None then
              fail (Printf.sprintf "unknown mutant %S" value)
          | "btb" ->
            if bool_of_string_opt value = None then
              fail (Printf.sprintf "`btb` wants true/false, got %S" value)
          | k ->
            if int_of_string_opt value = None then
              fail
                (Printf.sprintf "key `%s` wants an integer, got %S" k value));
          Hashtbl.add tbl key value
        end)
      (String.split_on_char '\n' str)
  with
  | exception Bad e -> Error e
  | () -> (
    let require k =
      match Hashtbl.find_opt tbl k with
      | Some v -> v
      | None -> raise (Bad { line = 0; reason = "missing key `" ^ k ^ "`" })
    in
    let geti k = int_of_string (require k) in
    match
      {
        seed = geti "seed";
        idx = geti "idx";
        oracle = Option.get (oracle_of_string (require "oracle"));
        mutant = Option.get (mutant_of_string (require "mutant"));
        preset = geti "preset";
        btb = bool_of_string (require "btb");
        lat_seed = geti "lat_seed";
        secret_a = geti "secret_a";
        secret_b = geti "secret_b";
        slice = geti "slice";
        pad_extra = geti "pad_extra";
        hi_seed = geti "hi_seed";
        hi_sweep = geti "hi_sweep";
        hi_len = geti "hi_len";
        lo_phases = geti "lo_phases";
        lo_lines = geti "lo_lines";
        channel = geti "channel";
        cap_seed = geti "cap_seed";
        trace_steps = geti "trace_steps";
      }
    with
    | s -> Ok s
    | exception Bad e -> Error e)

type load_error = Io of string | Parse of parse_error

let load_error_to_string = function
  | Io e -> e
  | Parse e -> Format.asprintf "%a" pp_parse_error e

let save path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string s))

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Io e)
  | ic -> (
    match
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> of_string (really_input_string ic (in_channel_length ic)))
    with
    | Ok s -> Ok s
    | Error e -> Error (Parse e))

let pp ppf s =
  Format.fprintf ppf
    "trial %d/%d: %s oracle, %s machine%s, mutant %s, secrets (%d,%d), \
     slice %d"
    s.seed s.idx (oracle_to_string s.oracle) (preset_name s)
    (if s.btb then "+btb" else "")
    (mutant_to_string s.mutant) s.secret_a s.secret_b s.slice
