(* Greedy scenario shrinking: try a fixed list of field reductions, keep
   any that still fails the oracle, loop to a fixpoint (or until the
   evaluation budget runs out).  Scenarios are first-order data, so every
   candidate is just a smaller record — regeneration of programs and
   machines happens inside the oracle. *)

let candidates (s : Scenario.t) =
  let open Scenario in
  List.filter
    (fun c -> c <> s)
    [
      { s with hi_len = s.hi_len / 2 };
      { s with hi_len = max 0 (s.hi_len - 1) };
      { s with trace_steps = max 20 (s.trace_steps / 2) };
      { s with lo_phases = max 1 (s.lo_phases - 1) };
      { s with lo_lines = max 1 (s.lo_lines / 2) };
      { s with lo_lines = max 1 (s.lo_lines - 1) };
      { s with hi_sweep = max 1 (s.hi_sweep / 2) };
      { s with slice = max 2_000 (s.slice / 2) };
      { s with pad_extra = 0 };
      { s with btb = false };
      { s with preset = 0 };
      { s with lat_seed = 0 };
      { s with cap_seed = 0 };
      { s with channel = 0 };
      { s with secret_a = 0; secret_b = 1 };
    ]

let minimise ?(budget = 60) check (s0 : Scenario.t) =
  let evals = ref 0 in
  let still_fails c =
    incr evals;
    match check c with Oracle.Fail _ -> true | Oracle.Pass -> false
  in
  let rec loop s =
    if !evals >= budget then s
    else
      match
        List.find_opt
          (fun c -> !evals < budget && still_fails c)
          (candidates s)
      with
      | Some c -> loop c
      | None -> s
  in
  loop s0
