open Tpro_hw
open Tpro_kernel
open Tpro_secmodel
open Tpro_channel
module Presets = Time_protection.Presets
module Wcet = Time_protection.Wcet
module Ni_scenario = Time_protection.Ni_scenario

(* Replay-file format version (see {!Scenario.format_version}): topology
   files are format 2 — the same [key value] line shape, with repeated
   [dom]/[sched]/[ipc] lines for the variable-length parts. *)
let format_version = 2

type dom_spec = {
  d_core : int;
  d_colours : int;
  d_pages : int;
  d_workload : int;
  d_wseed : int;
  d_slice : int;
}

type t = {
  seed : int;
  idx : int;
  mutant : Scenario.mutant;
  n_cores : int;
  smt : bool;
  btb : bool;
  lat_seed : int;
  secret_a : int;  (** every domain's baseline secret *)
  secret_b : int;  (** the varied domain's alternative secret *)
  bus_slot : int;  (** TDMA slot width; 0 = shared bus (single core) *)
  pad_extra : int;
  domains : dom_spec array;
  scheds : (int * int array) list;
      (** per populated core, the installed schedule (a permutation of
          that core's domains) *)
  ipc : (int * int) list;
      (** IPC edges [src < dst]; the endpoint index is the edge's
          position in this list *)
  deep_hi : int;  (** focus pair: varied domain of the unwinding sweep *)
  deep_lo : int;  (** focus pair: observer domain of the unwinding sweep *)
  cap_dom : int;  (** varied domain of the capacity probe *)
  cap_obs : int;  (** observer domain of the capacity probe *)
  skip_idx : int; (** selects the skip-flush mutant's core and resource *)
  mis_src : int;  (** miscolour mutant: domain whose page is remapped *)
  mis_dst : int;  (** miscolour mutant: domain whose colour it steals *)
}

let n_domains t = Array.length t.domains

(* ------------------------------------------------------------------ *)
(* Deterministic generation.  Side-effecting draws go through [gen_list]
   so the Rng stream order is pinned by construction ([Array.init] and
   [List.init] leave application order unspecified).                    *)

let gen_list n f =
  List.rev (List.fold_left (fun acc i -> f i :: acc) [] (List.init n Fun.id))

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let generate ~seed ?(mutant = Scenario.No_mutant) ?(max_domains = 8)
    ?(max_cores = 4) idx =
  let max_domains = max 2 (min 8 max_domains) in
  let max_cores = max 1 (min 4 max_cores) in
  let rng =
    Rng.create
      (Rng.hash_int (Int64.of_int seed) (Int64.of_int (idx lxor 0x7070)))
  in
  let n = 2 + Rng.int rng (max_domains - 1) in
  let core_choices = List.filter (fun c -> c <= max_cores) [ 1; 2; 4 ] in
  let n_cores = List.nth core_choices (Rng.int rng (List.length core_choices)) in
  let smt = n_cores >= 2 && Rng.int rng 4 = 0 in
  (* With SMT, odd cores share their even sibling's private structures:
     co-scheduling distrusting domains on siblings is fundamentally
     insecure (Ge et al.), so topologies only populate even cores. *)
  let usable =
    if smt then List.init (n_cores / 2) (fun i -> 2 * i)
    else List.init n_cores Fun.id
  in
  let nu = List.length usable in
  let base_slice = 3_000 + (500 * Rng.int rng 7) in
  (* Colour budget: 16 LLC colours, colour 0 reserved for the kernel. *)
  let budget = ref 15 in
  let domains =
    Array.of_list
      (gen_list n (fun d ->
           let c =
             if !budget - (n - d) >= 1 && Rng.int rng 3 = 0 then 2 else 1
           in
           budget := !budget - c;
           {
             d_core = List.nth usable (Rng.int rng nu);
             d_colours = c;
             d_pages = 2 + Rng.int rng 5;
             d_workload = Rng.int rng 4;
             d_wseed = Rng.int rng 1_000_000;
             d_slice = base_slice + (500 * Rng.int rng 3);
           }))
  in
  let populated =
    List.filter
      (fun core -> Array.exists (fun ds -> ds.d_core = core) domains)
      (List.init n_cores Fun.id)
  in
  let bus_slot =
    if List.length populated > 1 then 64 * (1 + Rng.int rng 2) else 0
  in
  let scheds =
    List.rev
      (List.fold_left
         (fun acc core ->
           let mine = ref [] in
           Array.iteri
             (fun d ds -> if ds.d_core = core then mine := d :: !mine)
             domains;
           let a = Array.of_list (List.rev !mine) in
           shuffle rng a;
           (core, a) :: acc)
         [] populated)
  in
  let ipc =
    List.filter_map Fun.id
      (gen_list (n - 1) (fun i ->
           let dst = i + 1 in
           if Rng.int rng 2 = 0 then Some (Rng.int rng dst, dst) else None))
  in
  let other d = (d + 1 + Rng.int rng (n - 1)) mod n in
  let deep_hi = Rng.int rng n in
  let deep_lo = other deep_hi in
  let cap_dom = Rng.int rng n in
  let cap_obs = other cap_dom in
  let skip_idx = Rng.int rng (3 * n) in
  let mis_src = deep_hi in
  let mis_dst = other mis_src in
  let secret_a = Rng.int rng 8 in
  {
    seed;
    idx;
    mutant;
    n_cores;
    smt;
    btb = Rng.bool rng;
    lat_seed = Rng.int rng 1024;
    secret_a;
    secret_b = (secret_a + 1 + Rng.int rng 7) mod 8;
    bus_slot;
    pad_extra = 500 * Rng.int rng 3;
    domains;
    scheds;
    ipc;
    deep_hi;
    deep_lo;
    cap_dom;
    cap_obs;
    skip_idx;
    mis_src;
    mis_dst;
  }

(* ------------------------------------------------------------------ *)
(* Derived configurations                                               *)

(* The skip-flush mutant's victim: a flushable resource on one of the
   populated cores (the branch predictor's registered name carries no
   core suffix, so skipping it skips every core's). *)
let skip_target t =
  let ds = t.domains.(t.skip_idx mod n_domains t) in
  match t.skip_idx mod 3 with
  | 0 -> "l1d" ^ string_of_int ds.d_core
  | 1 -> "l1i" ^ string_of_int ds.d_core
  | _ -> "branch predictor"

let machine_config t =
  let base = Machine.default_config in
  {
    base with
    Machine.n_cores = t.n_cores;
    smt = t.smt;
    lat = Latency.with_seed base.Machine.lat t.lat_seed;
    btb_entries = (if t.btb then Some 64 else base.Machine.btb_entries);
    (* With more than one populated core, domains run concurrently and a
       shared bus would leak through contention — out of scope for the
       OS-level defences (the paper's explicit exclusion), so multi-core
       topologies get a TDMA-partitioned interconnect.  Slots are
       indexed by accessing domain; [n + 2] slots park the kernel's
       shared-owner traffic (owner -2, normalised to slot [n]) away
       from every domain's slot. *)
    bus_mode =
      (if t.bus_slot > 0 then
         Interconnect.Partitioned
           { slot = t.bus_slot; n_domains = n_domains t + 2 }
       else base.Machine.bus_mode);
    fault =
      (match t.mutant with
      | Scenario.Skip_flush -> Some (Machine.Silent_skip_flush (skip_target t))
      | Scenario.No_mutant | Scenario.Drop_padding | Scenario.Miscolour ->
        None);
  }

let kernel_config t =
  match t.mutant with
  | Scenario.Drop_padding -> { Presets.full with Kernel.pad_switch = false }
  | Scenario.No_mutant | Scenario.Skip_flush | Scenario.Miscolour ->
    Presets.full

let buf d = 0x2000_0000 + (d * 0x0100_0000)
let max_steps t = 200_000 + (60_000 * n_domains t)

(* ------------------------------------------------------------------ *)
(* Generated programs                                                   *)

(* The IPC prefix is secret-independent and runs before any
   secret-dependent instruction: delivery times may only depend on
   policy, never on a secret.  Edges form a DAG (src < dst) and every
   domain receives before it sends, so the prefix is deadlock-free by
   induction on the domain index. *)
let ipc_prefix t d =
  let recvs = ref [] and sends = ref [] in
  List.iteri
    (fun ep (src, dst) ->
      if dst = d then
        recvs := Program.Syscall (Program.Sys_recv { ep }) :: !recvs;
      if src = d then
        sends :=
          Program.Syscall
            (Program.Sys_send
               { ep; msg = (t.domains.(d).d_wseed + ep) land 0xFFFF })
          :: !sends)
    t.ipc;
  Array.of_list (List.rev !recvs @ List.rev !sends)

(* The secret-dependent tail, exercising every mechanism: an interrupt
   armed at a secret-dependent time, a secret-dependent kernel-path
   choice, a secret-scaled sweep over the domain's pages (page 0 first —
   the page the miscolour mutant remaps), and a random program derived
   from the secret.  In the baseline system every domain evaluates this
   at [secret_a], so the baseline run is one global system shared by
   every (varied, observer) pair. *)
let secret_tail t d ~secret =
  let ds = t.domains.(d) in
  let call =
    if secret land 1 = 0 then Program.Sys_null else Program.Sys_info
  in
  let pages = 1 + ((ds.d_wseed + secret) mod ds.d_pages) in
  (* Page 0 is swept at line granularity with a secret-dependent extent:
     a page maps to one LLC colour's worth of consecutive sets, so the
     *set* of cache sets dirtied through page 0's frame varies with the
     secret.  Against the miscolour mutant (which remaps page 0 into
     another domain's colour) this turns the planted breach into a
     state-level [partition:llc] divergence in the thief's slice, not
     merely a timing shift. *)
  let lines0 = 2 + ((ds.d_wseed + (5 * secret)) mod 14) in
  let sweep =
    Array.append
      (Array.init lines0 (fun l -> Program.Load (buf d + (l * 64))))
      (Array.concat
         (List.init (pages - 1) (fun p ->
              Array.init 8 (fun l ->
                  Program.Load (buf d + ((p + 1) * 4096) + (l * 64))))))
  in
  Program.concat
    [
      [|
        Program.Syscall
          (Program.Sys_arm_irq
             { irq = d + 1; delay = ds.d_slice + 500 + (secret * 211) });
      |];
      Array.make (1 + (secret mod 3)) (Program.Syscall call);
      sweep;
      Program.random ~syscalls:false
        (Rng.create (ds.d_wseed lxor (secret * 0x9E3779B9)))
        ~len:(30 + (ds.d_wseed mod 40))
        ~data_base:(buf d)
        ~data_bytes:(min ds.d_pages 4 * 4096);
    ]

(* Per-domain workload mix, derived from the domain's own seed. *)
let body t d =
  let ds = t.domains.(d) in
  match ds.d_workload mod 4 with
  | 0 ->
    (* prober: clock reads around timed probes of its own buffer *)
    Program.concat
      [
        [| Program.Read_clock |];
        Prime_probe.probe ~base:(buf d)
          ~lines:(8 + (ds.d_wseed mod 9))
          ~line_size:64;
        [| Program.Syscall Program.Sys_null; Program.Read_clock |];
        Array.init 4 (fun b ->
            Program.Branch { tag = b; taken = (b + ds.d_wseed) land 1 = 0 });
        Prime_probe.filler ~cycles:ds.d_slice ~chunk:25;
        [| Program.Read_clock |];
      ]
  | 1 ->
    (* trapper: kernel-path heavy *)
    Program.concat
      [
        [| Program.Read_clock |];
        Array.init
          (3 + (ds.d_wseed mod 4))
          (fun i ->
            Program.Syscall
              (if (i + ds.d_wseed) land 1 = 0 then Program.Sys_null
               else Program.Sys_info));
        Array.init 6 (fun b ->
            Program.Branch { tag = b; taken = (b + ds.d_wseed) land 1 = 1 });
        Prime_probe.filler ~cycles:ds.d_slice ~chunk:30;
        [| Program.Read_clock |];
      ]
  | 2 ->
    (* sweeper: walks all its pages, then a random tail *)
    Program.concat
      [
        Array.concat
          (List.init ds.d_pages (fun p ->
               Array.init 8 (fun l ->
                   Program.Load (buf d + (p * 4096) + (l * 64)))));
        Program.random ~syscalls:false
          (Rng.create (ds.d_wseed lxor 0x5CA1AB1E))
          ~len:(20 + (ds.d_wseed mod 30))
          ~data_base:(buf d)
          ~data_bytes:(ds.d_pages * 4096);
      ]
  | _ ->
    (* mixed: a bit of everything *)
    Program.concat
      [
        [| Program.Read_clock |];
        Prime_probe.probe ~base:(buf d) ~lines:8 ~line_size:64;
        [| Program.Syscall Program.Sys_info |];
        Program.random ~syscalls:false
          (Rng.create (ds.d_wseed lxor 0x0DDBA11))
          ~len:(25 + (ds.d_wseed mod 25))
          ~data_base:(buf d)
          ~data_bytes:(min ds.d_pages 2 * 4096);
        Prime_probe.filler ~cycles:(ds.d_slice / 2) ~chunk:25;
        [| Program.Read_clock |];
      ]

let program t d ~secret =
  Program.concat
    [ ipc_prefix t d; secret_tail t d ~secret; body t d; [| Program.Halt |] ]

(* ------------------------------------------------------------------ *)
(* System construction                                                  *)

let build t ~vary ~secret =
  let n = n_domains t in
  if vary < 0 || vary >= n then invalid_arg "Topology.build: vary";
  let mc = machine_config t in
  let pad = Wcet.recommended_pad ~max_compute:64 mc + t.pad_extra in
  let specs =
    List.map
      (fun d ->
        let ds = t.domains.(d) in
        Ni_scenario.domain_spec ~core:ds.d_core ~n_colours:ds.d_colours
          ~regions:[ (buf d, ds.d_pages) ]
          ~programs:
            [ program t d ~secret:(if d = vary then secret else t.secret_a) ]
          ~irqs:[ d + 1 ]
          ~observer:(d <> vary)
          ~slice:ds.d_slice ~pad_cycles:pad ())
      (List.init n Fun.id)
  in
  let tweak =
    match t.mutant with
    | Scenario.Miscolour ->
      Some
        (fun k ->
          Scenario.miscolour_remap k ~victim:t.mis_src ~thief:t.mis_dst
            ~vbase:(buf t.mis_src))
    | Scenario.No_mutant | Scenario.Skip_flush | Scenario.Drop_padding ->
      None
  in
  let run =
    Ni_scenario.build_spec
      (Ni_scenario.spec
         ~n_endpoints:(max 4 (List.length t.ipc))
         ~n_irqs:(n + 1) ~schedules:t.scheds ?tweak ~machine:mc
         ~cfg:(kernel_config t) specs)
  in
  (* Trace every thread, not just the observers: the baseline run is
     shared across all (varied, observer) pairs, so any domain's cost
     trace may be compared later. *)
  List.iter
    (fun (dom : Domain.t) ->
      List.iter (fun th -> Thread.set_traced th true) (Domain.threads dom))
    (Kernel.domains run.Nonint.kernel);
  run

let pairs t =
  let n = n_domains t in
  List.concat_map
    (fun v ->
      List.filter_map
        (fun o -> if o <> v then Some (v, o) else None)
        (List.init n Fun.id))
    (List.init n Fun.id)

(* Rough weight for fuel accounting: executions scale with N, and each
   execution with the per-domain work. *)
let size t =
  Array.fold_left
    (fun acc ds -> acc + (ds.d_pages * 8) + (ds.d_wseed mod 40) + 60)
    (100 * n_domains t)
    t.domains

(* ------------------------------------------------------------------ *)
(* Replay files: format 2                                               *)

let int_fields t =
  [
    ("seed", t.seed);
    ("idx", t.idx);
    ("n_cores", t.n_cores);
    ("lat_seed", t.lat_seed);
    ("secret_a", t.secret_a);
    ("secret_b", t.secret_b);
    ("bus_slot", t.bus_slot);
    ("pad_extra", t.pad_extra);
    ("deep_hi", t.deep_hi);
    ("deep_lo", t.deep_lo);
    ("cap_dom", t.cap_dom);
    ("cap_obs", t.cap_obs);
    ("skip_idx", t.skip_idx);
    ("mis_src", t.mis_src);
    ("mis_dst", t.mis_dst);
  ]

let to_string t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "format %d" format_version;
  line "mutant %s" (Scenario.mutant_to_string t.mutant);
  line "smt %b" t.smt;
  line "btb %b" t.btb;
  List.iter (fun (k, v) -> line "%s %d" k v) (int_fields t);
  Array.iter
    (fun ds ->
      line "dom %d %d %d %d %d %d" ds.d_core ds.d_colours ds.d_pages
        ds.d_workload ds.d_wseed ds.d_slice)
    t.domains;
  List.iter
    (fun (core, order) ->
      line "sched %d %s" core
        (String.concat " "
           (List.map string_of_int (Array.to_list order))))
    t.scheds;
  List.iter (fun (src, dst) -> line "ipc %d %d" src dst) t.ipc;
  Buffer.contents b

exception Bad of Scenario.parse_error

let int_keys =
  [
    "seed"; "idx"; "n_cores"; "lat_seed"; "secret_a"; "secret_b"; "bus_slot";
    "pad_extra"; "deep_hi"; "deep_lo"; "cap_dom"; "cap_obs"; "skip_idx";
    "mis_src"; "mis_dst";
  ]

let of_string str =
  let scalars = Hashtbl.create 32 in
  let doms = ref [] and scheds = ref [] and ipc = ref [] in
  let known_scalar =
    [ "format"; "mutant"; "smt"; "btb" ] @ int_keys
  in
  match
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let fail reason = raise (Bad { Scenario.line = lineno; reason }) in
        if String.trim line <> "" then begin
          let key, value =
            match String.index_opt line ' ' with
            | None ->
              fail
                (Printf.sprintf
                   "missing value (expected `key value`, got %S)" line)
            | Some i ->
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          in
          let ints () =
            List.map
              (fun w ->
                match int_of_string_opt w with
                | Some v -> v
                | None ->
                  fail
                    (Printf.sprintf "key `%s` wants integers, got %S" key w))
              (List.filter (fun w -> w <> "")
                 (String.split_on_char ' ' value))
          in
          match key with
          | "dom" -> (
            match ints () with
            | [ d_core; d_colours; d_pages; d_workload; d_wseed; d_slice ] ->
              doms :=
                { d_core; d_colours; d_pages; d_workload; d_wseed; d_slice }
                :: !doms
            | l ->
              fail
                (Printf.sprintf "`dom` wants 6 integers, got %d"
                   (List.length l)))
          | "sched" -> (
            match ints () with
            | core :: (_ :: _ as order) ->
              scheds := (core, Array.of_list order) :: !scheds
            | _ -> fail "`sched` wants a core and at least one domain index")
          | "ipc" -> (
            match ints () with
            | [ src; dst ] -> ipc := (src, dst) :: !ipc
            | l ->
              fail
                (Printf.sprintf "`ipc` wants 2 integers, got %d"
                   (List.length l)))
          | _ ->
            if not (List.mem key known_scalar) then
              fail (Printf.sprintf "unknown key `%s`" key);
            if Hashtbl.mem scalars key then
              fail (Printf.sprintf "duplicate key `%s`" key);
            if String.trim value = "" then
              fail (Printf.sprintf "missing value for key `%s`" key);
            (match key with
            | "format" -> (
              match int_of_string_opt value with
              | Some v when v = format_version -> ()
              | Some v ->
                fail
                  (Printf.sprintf
                     "unsupported replay format %d (this reader reads \
                      format %d)"
                     v format_version)
              | None ->
                fail
                  (Printf.sprintf "key `format` wants an integer, got %S"
                     value))
            | "mutant" ->
              if Scenario.mutant_of_string value = None then
                fail (Printf.sprintf "unknown mutant %S" value)
            | "smt" | "btb" ->
              if bool_of_string_opt value = None then
                fail
                  (Printf.sprintf "`%s` wants true/false, got %S" key value)
            | k ->
              if int_of_string_opt value = None then
                fail
                  (Printf.sprintf "key `%s` wants an integer, got %S" k value));
            Hashtbl.add scalars key value
        end)
      (String.split_on_char '\n' str)
  with
  | exception Bad e -> Error e
  | () -> (
    let fail0 reason = raise (Bad { Scenario.line = 0; reason }) in
    let require k =
      match Hashtbl.find_opt scalars k with
      | Some v -> v
      | None -> fail0 ("missing key `" ^ k ^ "`")
    in
    match
      let () =
        if not (Hashtbl.mem scalars "format") then
          fail0 "missing key `format` (topology files are format 2)"
      in
      let geti k = int_of_string (require k) in
      let domains = Array.of_list (List.rev !doms) in
      let n = Array.length domains in
      if n < 2 then fail0 "a topology wants at least 2 `dom` lines";
      let n_cores = geti "n_cores" in
      Array.iteri
        (fun d ds ->
          if ds.d_core < 0 || ds.d_core >= n_cores then
            fail0
              (Printf.sprintf "dom %d: core %d out of range (%d cores)" d
                 ds.d_core n_cores))
        domains;
      let check_dom what v =
        if v < 0 || v >= n then
          fail0
            (Printf.sprintf "%s: domain index %d out of range (%d domains)"
               what v n)
      in
      let scheds = List.rev !scheds in
      List.iter
        (fun (core, order) ->
          if core < 0 || core >= n_cores then
            fail0 (Printf.sprintf "sched: core %d out of range" core);
          Array.iter (check_dom "sched") order;
          Array.iter
            (fun d ->
              if domains.(d).d_core <> core then
                fail0
                  (Printf.sprintf
                     "sched: domain %d lives on core %d, not %d" d
                     domains.(d).d_core core))
            order)
        scheds;
      let ipc = List.rev !ipc in
      List.iter
        (fun (src, dst) ->
          check_dom "ipc" src;
          check_dom "ipc" dst;
          if src >= dst then
            fail0
              (Printf.sprintf "ipc: edges must go low to high (got %d %d)"
                 src dst))
        ipc;
      List.iter (fun k -> check_dom k (geti k))
        [ "deep_hi"; "deep_lo"; "cap_dom"; "cap_obs"; "mis_src"; "mis_dst" ];
      {
        seed = geti "seed";
        idx = geti "idx";
        mutant =
          Option.get (Scenario.mutant_of_string (require "mutant"));
        n_cores;
        smt = bool_of_string (require "smt");
        btb = bool_of_string (require "btb");
        lat_seed = geti "lat_seed";
        secret_a = geti "secret_a";
        secret_b = geti "secret_b";
        bus_slot = geti "bus_slot";
        pad_extra = geti "pad_extra";
        domains;
        scheds;
        ipc;
        deep_hi = geti "deep_hi";
        deep_lo = geti "deep_lo";
        cap_dom = geti "cap_dom";
        cap_obs = geti "cap_obs";
        skip_idx = geti "skip_idx";
        mis_src = geti "mis_src";
        mis_dst = geti "mis_dst";
      }
    with
    | t -> Ok t
    | exception Bad e -> Error e)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Scenario.Io e)
  | ic -> (
    match
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> of_string (really_input_string ic (in_channel_length ic)))
    with
    | Ok t -> Ok t
    | Error e -> Error (Scenario.Parse e))

let pp ppf t =
  Format.fprintf ppf
    "topology %d/%d: %d domains on %d core%s%s%s, mutant %s, bus %s, \
     focus pair (%d,%d), %d ipc edge%s"
    t.seed t.idx (n_domains t) t.n_cores
    (if t.n_cores = 1 then "" else "s")
    (if t.smt then "+smt" else "")
    (if t.btb then "+btb" else "")
    (Scenario.mutant_to_string t.mutant)
    (if t.bus_slot > 0 then Printf.sprintf "tdma-%d" t.bus_slot else "shared")
    t.deep_hi t.deep_lo (List.length t.ipc)
    (if List.length t.ipc = 1 then "" else "s")
