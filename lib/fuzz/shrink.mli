(** Greedy counterexample minimisation.

    [minimise check s] assumes [check s] fails and returns a scenario
    that still fails but is no larger under {!Scenario.size}: each round
    tries a fixed list of single-field reductions and keeps the first
    one that still fails, until a fixpoint or the evaluation [budget]
    (default 60 oracle runs) is exhausted. *)

val candidates : Scenario.t -> Scenario.t list
(** The reductions attempted at each step, strictly smaller first. *)

val minimise :
  ?budget:int -> (Scenario.t -> Oracle.verdict) -> Scenario.t -> Scenario.t
